lib/fuzzing/mucfuzz.ml: Array Ast Cparse Fragility Fuzz_result List Mutators Parser Pretty Rng Simcomp
