lib/fuzzing/fuzz_result.mli: Hashtbl Simcomp
