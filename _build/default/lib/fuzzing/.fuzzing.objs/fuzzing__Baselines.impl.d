lib/fuzzing/baselines.ml: Array Ast_gen Bytes Char Cparse Fuzz_result List Mucfuzz Mutators Rng Simcomp Uast
