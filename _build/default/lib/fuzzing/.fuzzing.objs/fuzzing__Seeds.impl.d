lib/fuzzing/seeds.ml: Ast_gen Cparse List Parser Pretty Rng Typecheck
