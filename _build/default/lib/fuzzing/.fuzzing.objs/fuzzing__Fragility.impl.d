lib/fuzzing/fragility.ml: Cparse Mutators Pretty Rng String
