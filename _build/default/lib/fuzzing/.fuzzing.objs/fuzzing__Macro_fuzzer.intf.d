lib/fuzzing/macro_fuzzer.mli: Cparse Fuzz_result Mutators Simcomp
