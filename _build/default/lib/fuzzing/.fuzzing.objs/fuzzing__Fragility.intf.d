lib/fuzzing/fragility.mli: Cparse Mutators
