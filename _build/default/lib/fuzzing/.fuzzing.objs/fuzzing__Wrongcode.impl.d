lib/fuzzing/wrongcode.ml: Array Cparse Hashtbl List Mutators Parser Pretty Rng Simcomp String
