lib/fuzzing/campaign.ml: Baselines Cparse Fuzz_result Hashtbl List Mucfuzz Mutators Rng Seeds Simcomp
