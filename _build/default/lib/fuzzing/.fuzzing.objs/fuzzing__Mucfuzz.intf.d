lib/fuzzing/mucfuzz.mli: Cparse Fuzz_result Mutators Simcomp
