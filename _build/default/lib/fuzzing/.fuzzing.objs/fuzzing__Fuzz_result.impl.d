lib/fuzzing/fuzz_result.ml: Hashtbl List Simcomp
