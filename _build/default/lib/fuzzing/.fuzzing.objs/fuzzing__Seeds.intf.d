lib/fuzzing/seeds.mli: Cparse
