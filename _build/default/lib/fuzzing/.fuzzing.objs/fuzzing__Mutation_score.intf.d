lib/fuzzing/mutation_score.mli: Cparse Mutators
