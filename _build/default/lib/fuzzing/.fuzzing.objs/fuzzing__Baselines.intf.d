lib/fuzzing/baselines.mli: Cparse Fuzz_result Mutators Simcomp
