lib/fuzzing/wrongcode.mli: Cparse Mutators Simcomp
