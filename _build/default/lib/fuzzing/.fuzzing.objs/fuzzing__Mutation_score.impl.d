lib/fuzzing/mutation_score.ml: Ast Ast_ids Cparse List Mutators Rng Simcomp String Typecheck Visit
