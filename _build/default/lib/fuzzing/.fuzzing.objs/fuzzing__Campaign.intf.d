lib/fuzzing/campaign.mli: Fuzz_result Hashtbl Simcomp
