(** EMI-style wrong-code detection (extension beyond the paper's
    crash-oriented campaign, following its Orion/EMI related work).

    Compiles the same program at -O0 and at the target level, executes
    both IRs in the IR interpreter, and flags observable differences —
    exposing the silent miscompilations of [Simcomp.Bugdb.miscompiles]
    that never crash the compiler. *)

type mismatch = {
  mm_source : string;
  mm_options : Simcomp.Compiler.options;
  mm_reference : int * bool;  (** (exit code, trapped) at -O0 *)
  mm_observed : int * bool;   (** at the target level *)
}

val check_program :
  Simcomp.Compiler.compiler ->
  Simcomp.Compiler.options ->
  string ->
  mismatch option
(** Difference one program against its -O0 baseline; [None] when the
    program is outside the IR interpreter's subset or behaves equally. *)

type report = { r_mismatches : mismatch list; r_checked : int }

val hunt :
  ?mutators:Mutators.Mutator.t list ->
  rng:Cparse.Rng.t ->
  compiler:Simcomp.Compiler.compiler ->
  seeds:string list ->
  iterations:int ->
  unit ->
  report
(** Mutate seeds with the corpus and difference every mutant
    (deduplicated by difference signature). *)
