(** The RQ1 experiment driver: run all six fuzzers against both simulated
    compilers under an equal *wall-clock* budget (per-tool throughput
    factors from Table 5) and collect the statistics behind Figures 7-9
    and Tables 4-5. *)

type fuzzer_id =
  | MuCFuzz_s   (** μCFuzz with the 68 supervised mutators *)
  | MuCFuzz_u   (** μCFuzz with the 50 unsupervised mutators *)
  | AFLpp       (** byte-level havoc baseline *)
  | GrayC       (** five semantic-aware mutators *)
  | Csmith      (** generation-based, closed grammar *)
  | YARPGen     (** generation-based, loop-focused *)

val fuzzer_name : fuzzer_id -> string
val all_fuzzers : fuzzer_id list

type config = {
  iterations : int;    (** time-unit budget (generators get a fraction) *)
  seeds : int;         (** seed-corpus size *)
  sample_every : int;
  seed_value : int;    (** RNG seed: campaigns are deterministic *)
  max_attempts : int;  (** μCFuzz per-iteration mutator budget *)
}

val default_config : config

val run_one :
  config -> fuzzer_id -> Simcomp.Compiler.compiler -> Fuzz_result.t

type t = {
  config : config;
  results : ((fuzzer_id * Simcomp.Compiler.compiler) * Fuzz_result.t) list;
}

val run :
  ?cfg:config ->
  ?fuzzers:fuzzer_id list ->
  ?compilers:Simcomp.Compiler.compiler list ->
  unit ->
  t

val result : t -> fuzzer_id -> Simcomp.Compiler.compiler -> Fuzz_result.t option

val crash_set : t -> fuzzer_id -> (string, unit) Hashtbl.t
(** Crashes of one fuzzer across both compilers; keys are prefixed with
    the compiler name so GCC and Clang crashes never collide. *)

val all_crashes : t -> string list
(** Sorted union of all crash keys (the Fig. 8 universe). *)
