(** μCFuzz: the paper's micro coverage-guided fuzzer (Algorithm 1).

    Given seed programs S, mutators M, and a compiler C, each iteration
    picks a random pool program P, shuffles M, and applies mutators until
    one produces a mutant covering a branch the pool has not covered; the
    mutant then joins the pool (only if it compiles — breeding from broken
    mutants would collapse the pool).  No havoc, no forking, no culling. *)

type config = {
  mutators : Mutators.Mutator.t list;
  fragility : bool;
      (** apply the text-rewriting fragility model (see {!Fragility}) *)
  coverage_guided : bool;
      (** ablation switch: accept every mutant when [false] *)
  max_attempts_per_iteration : int;
      (** mutator budget per iteration (|M| in the paper) *)
  sample_every : int;  (** coverage-trend sampling period *)
}

val default_config : ?mutators:Mutators.Mutator.t list -> unit -> config
(** Defaults to the 118-mutator core corpus with fragility and coverage
    guidance on. *)

type pool_entry = { src : string; tu : Cparse.Ast.tu }

type state = {
  cfg : config;
  rng : Cparse.Rng.t;
  compiler : Simcomp.Compiler.compiler;
  options : Simcomp.Compiler.options;
  mutable pool : pool_entry array;
  mutable result : Fuzz_result.t;
  mutable trend_rev : (int * int) list;
}

val init :
  ?options:Simcomp.Compiler.options ->
  cfg:config ->
  rng:Cparse.Rng.t ->
  compiler:Simcomp.Compiler.compiler ->
  seeds:string list ->
  unit ->
  state
(** Parse the seeds into the pool and record their baseline coverage. *)

val step : state -> iteration:int -> unit
(** One iteration of Algorithm 1. *)

val sample_trend : state -> iteration:int -> unit

val run :
  ?options:Simcomp.Compiler.options ->
  ?cfg:config ->
  rng:Cparse.Rng.t ->
  compiler:Simcomp.Compiler.compiler ->
  seeds:string list ->
  iterations:int ->
  name:string ->
  unit ->
  Fuzz_result.t
(** Run a whole campaign and return the accumulated statistics. *)
