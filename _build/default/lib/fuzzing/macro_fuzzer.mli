(** The macro fuzzer (§3.4): μCFuzz plus the engineering used for the
    paper's eight-month bug hunt — havoc mutation rounds, random
    command-line sampling, a shared coverage map across simulated
    parallel instances, and resource limits. *)

type config = {
  mutators : Mutators.Mutator.t list;
  havoc_rounds_max : int;   (** stacked mutator applications per mutant *)
  instances : int;          (** simulated parallel fuzzing processes *)
  max_program_bytes : int;  (** resource limit (OOM-guard stand-in) *)
  sample_every : int;
  fragility : bool;
}

val default_config : config
(** 118-mutator corpus, up to 6 havoc rounds, 4 instances, 64 KiB cap. *)

val run :
  ?cfg:config ->
  rng:Cparse.Rng.t ->
  compiler:Simcomp.Compiler.compiler ->
  seeds:string list ->
  iterations:int ->
  unit ->
  Fuzz_result.t
