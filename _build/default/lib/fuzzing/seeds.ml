(* Seed corpus.

   The paper bootstraps its fuzzers with 1,839 seeds from the GCC and
   Clang test suites: small, feature-rich, well-formed C programs.  We
   synthesize an equivalent corpus from (a) hand-written templates that
   cover libc calls, strings, gotos, switches and structs the way
   compiler test suites do (including the shapes behind the paper's case
   studies), and (b) generated programs from Ast_gen. *)

open Cparse

(* Templates modelled on the compiler-test-suite idioms the paper's bug
   cases started from (e.g. GCC test #20001226-1's label-dense functions
   and the strlen-optimization sprintf test). *)
let templates : string list =
  [
    (* sprintf / strlen-optimization shape *)
    {|
static char buffer[32];
int test4(void) { return sprintf(buffer, "%s", "bar"); }
void main_test(void) {
  memset(buffer, 65, 32);
  if (test4() != 3) abort();
}
int main(void) { main_test(); return 0; }
|};
    (* label-dense function (GCC #20001226-1 flavour) *)
    {|
unsigned int foo(int x, int y) {
  if (x > y) goto gt;
  if (x < y) goto lt;
  return 19088743;
gt:
  return 305419896;
lt:
  return 4027576406U;
}
int main(void) { return foo(1, 2) != 0 ? 0 : 1; }
|};
    (* complex-ish global with address-of member access *)
    {|
struct complex_ish { double re; double im; };
struct complex_ish x;
double *bar(void) { return &x.im; }
int main(void) { *bar() = 1.5; return x.im > 1.0; }
|};
    (* array reduction loops *)
    {|
int r[6];
void f(int n) {
  while (--n) {
    r[0] += r[5];
    r[1] += r[0];
    r[2] += r[1];
    r[3] += r[2];
    r[4] += r[3];
    r[5] += r[4];
  }
}
int main(void) { f(3); return r[5] & 255; }
|};
    (* struct assignment through pointers *)
    {|
struct s2 { int a; int b; };
void foo(struct s2 *ptr) { ptr->a = 1; ptr->b = 2; }
int main(void) {
  struct s2 v;
  foo(&v);
  return v.a + v.b;
}
|};
    (* switch with fall-through *)
    {|
int classify(int c) {
  int r = 0;
  switch (c) {
  case 0:
  case 1:
    r = 10;
    break;
  case 2:
    r = 20;
  case 3:
    r += 1;
    break;
  default:
    r = -1;
    break;
  }
  return r;
}
int main(void) { return classify(2) == 21 ? 0 : 1; }
|};
    (* string processing with a loop *)
    {|
int my_strlen(char *s) {
  int n = 0;
  while (s[n]) n++;
  return n;
}
int main(void) {
  char buf[16];
  strcpy(buf, "hello");
  printf("%d\n", my_strlen(buf));
  return 0;
}
|};
    (* nested loops and accumulation *)
    {|
int acc;
int kernel(int n, int m) {
  int i, j;
  int total = 0;
  for (i = 0; i < n; i++) {
    for (j = 0; j < m; j++) {
      total += i * j;
    }
  }
  return total;
}
int main(void) {
  acc = kernel(5, 7);
  printf("%d\n", acc);
  return acc & 255;
}
|};
    (* function pointers avoided; recursion instead *)
    {|
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
int main(void) { return fib(10) == 55 ? 0 : 1; }
|};
    (* unsigned wrap and shifts *)
    {|
unsigned int hash(unsigned int x) {
  x ^= x >> 16;
  x *= 2654435769U;
  x ^= x >> 13;
  return x;
}
int main(void) { return (int)(hash(12345) & 255); }
|};
    (* do-while and continue *)
    {|
int count_odd(int n) {
  int count = 0;
  int i = 0;
  do {
    i++;
    if (i % 2 == 0) continue;
    count++;
  } while (i < n);
  return count;
}
int main(void) { return count_odd(9); }
|};
    (* ternary chains and comma *)
    {|
int sel(int a, int b, int c) {
  int m = a > b ? (a > c ? a : c) : (b > c ? b : c);
  return m;
}
int main(void) {
  int x = 3, y = 9, z = 5;
  printf("%d\n", sel(x, y, z));
  return 0;
}
|};
    (* enums and typedefs *)
    {|
typedef long long big_t;
enum color { RED, GREEN = 5, BLUE };
big_t scale(big_t v) { return v * (GREEN + 1); }
int main(void) { return (int)(scale(7) % 100); }
|};
    (* char arithmetic and casts *)
    {|
char rot13(char c) {
  if (c >= 97 && c <= 122) return (char)((c - 97 + 13) % 26 + 97);
  return c;
}
int main(void) {
  char s[6];
  strcpy(s, "hello");
  int i;
  for (i = 0; i < 5; i++) s[i] = rot13(s[i]);
  puts(s);
  return 0;
}
|};
    (* global state machine with switch in loop *)
    {|
int state;
int step(int input) {
  switch (state) {
  case 0:
    state = input ? 1 : 0;
    break;
  case 1:
    state = input ? 2 : 0;
    break;
  case 2:
    state = 2;
    break;
  default:
    state = 0;
    break;
  }
  return state;
}
int main(void) {
  int i;
  for (i = 0; i < 8; i++) step(i & 1);
  return state;
}
|};
  ]

(* Validate and normalise a template into the canonical pretty-printed
   form used by the fuzzers. *)
let of_template (src : string) : string option =
  match Parser.parse src with
  | Ok tu when (Typecheck.check tu).r_ok -> Some (Pretty.tu_to_string tu)
  | Ok _ | Error _ -> None

(* Build a corpus of [n] seeds: every template plus generated programs. *)
let corpus ?(n = 200) (rng : Rng.t) : string list =
  let from_templates = List.filter_map of_template templates in
  let generated =
    List.init
      (max 0 (n - List.length from_templates))
      (fun _ -> Ast_gen.gen_source rng)
  in
  from_templates @ generated

(* The paper's seed count. *)
let paper_seed_count = 1839
