(* μCFuzz: the paper's micro coverage-guided fuzzer (Algorithm 1).

   Given seed programs S, mutators M and a compiler C, each iteration
   picks a random pool program P, shuffles M, and applies mutators until
   one produces a mutant P' covering a branch not covered by the pool;
   P' then joins the pool.  No havoc, no forking, no pool culling. *)

open Cparse

type config = {
  mutators : Mutators.Mutator.t list;
  fragility : bool;       (* apply the text-rewriting fragility model *)
  coverage_guided : bool; (* ablation: accept every mutant when false *)
  max_attempts_per_iteration : int; (* |M| in the paper *)
  sample_every : int;     (* coverage-trend sampling period *)
}

let default_config ?(mutators = Mutators.Registry.core) () =
  {
    mutators;
    fragility = true;
    coverage_guided = true;
    max_attempts_per_iteration = List.length mutators;
    sample_every = 25;
  }

type pool_entry = { src : string; tu : Ast.tu }

type state = {
  cfg : config;
  rng : Rng.t;
  compiler : Simcomp.Compiler.compiler;
  options : Simcomp.Compiler.options;
  mutable pool : pool_entry array;
  mutable result : Fuzz_result.t;
  mutable trend_rev : (int * int) list;
}

let init ?(options = Simcomp.Compiler.default_options) ~cfg ~rng ~compiler
    ~(seeds : string list) () : state =
  let pool =
    List.filter_map
      (fun src ->
        match Parser.parse src with
        | Ok tu -> Some { src; tu }
        | Error _ -> None)
      seeds
  in
  let st =
    {
      cfg;
      rng;
      compiler;
      options;
      pool = Array.of_list pool;
      result =
        Fuzz_result.make
          ~fuzzer_name:
            (if cfg.mutators == Mutators.Registry.supervised then "uCFuzz.s"
             else "uCFuzz")
          ~compiler;
      trend_rev = [];
    }
  in
  (* the pool's baseline coverage comes from compiling the seeds *)
  Array.iter
    (fun e ->
      let cov = Simcomp.Coverage.create () in
      (match Simcomp.Compiler.compile ~cov compiler options e.src with
      | _ -> ());
      ignore (Simcomp.Coverage.merge ~into:st.result.Fuzz_result.coverage cov))
    st.pool;
  st

(* One iteration of Algorithm 1. *)
let step (st : state) ~iteration : unit =
  if Array.length st.pool = 0 then ()
  else begin
    let entry = st.pool.(Rng.int st.rng (Array.length st.pool)) in
    let shuffled = Rng.shuffle st.rng st.cfg.mutators in
    let attempts = ref 0 in
    let found = ref false in
    let rec try_mutators = function
      | [] -> ()
      | m :: rest ->
        if !found || !attempts >= st.cfg.max_attempts_per_iteration then ()
        else begin
          incr attempts;
          (match Mutators.Mutator.apply m ~rng:st.rng entry.tu with
          | None -> ()
          | Some tu' ->
            let src' =
              if st.cfg.fragility then Fragility.render st.rng m tu'
              else Pretty.tu_to_string tu'
            in
            st.result <-
              {
                st.result with
                total_mutants = st.result.total_mutants + 1;
                throughput_mutants = st.result.throughput_mutants + 1;
              };
            let cov = Simcomp.Coverage.create () in
            let outcome =
              Simcomp.Compiler.compile ~cov st.compiler st.options src'
            in
            (match outcome with
            | Simcomp.Compiler.Compiled _ ->
              st.result <-
                {
                  st.result with
                  compilable_mutants = st.result.compilable_mutants + 1;
                }
            | Simcomp.Compiler.Crashed c ->
              Fuzz_result.record_crash st.result ~iteration ~input:src' c
            | Simcomp.Compiler.Compile_error _ -> ());
            let new_cov =
              Simcomp.Coverage.has_new_coverage
                ~seen:st.result.Fuzz_result.coverage cov
            in
            ignore
              (Simcomp.Coverage.merge ~into:st.result.Fuzz_result.coverage cov);
            if (new_cov || not st.cfg.coverage_guided) && not !found then begin
              (* P' joins the pool only when it compiles: broken mutants
                 still contribute (error-path) coverage but breeding from
                 them would collapse the pool's compilable ratio *)
              match outcome with
              | Simcomp.Compiler.Compiled _ -> (
                match Parser.parse src' with
                | Ok tu'' ->
                  st.pool <-
                    Array.append st.pool [| { src = src'; tu = tu'' } |];
                  found := true
                | Error _ -> ())
              | Simcomp.Compiler.Compile_error _
              | Simcomp.Compiler.Crashed _ -> ()
            end);
          try_mutators rest
        end
    in
    try_mutators shuffled
  end

let sample_trend (st : state) ~iteration =
  if iteration mod st.cfg.sample_every = 0 then
    st.trend_rev <-
      (iteration, Simcomp.Coverage.covered st.result.Fuzz_result.coverage)
      :: st.trend_rev

let run ?options ?(cfg = default_config ()) ~rng ~compiler ~seeds ~iterations
    ~name () : Fuzz_result.t =
  let st = init ?options ~cfg ~rng ~compiler ~seeds () in
  st.result <- { st.result with fuzzer_name = name };
  for i = 1 to iterations do
    step st ~iteration:i;
    sample_trend st ~iteration:i
  done;
  {
    st.result with
    iterations;
    coverage_trend = List.rev st.trend_rev;
  }
