(* Mutation-testing potency scoring (the paper's §6 discussion:
   "MetaMut may also be potentially useful in mutation testing").

   For a corpus of executable programs, apply each mutator repeatedly and
   classify every mutant by its observable behaviour relative to the
   original (the reference interpreter is the oracle):

   - [killed]: output/exit differs — the mutation is semantically potent;
   - [equivalent]: compiles and behaves identically (an "equivalent
     mutant" in mutation-testing terms);
   - [invalid]: the mutant does not compile;
   - [inconclusive]: original or mutant exhausts fuel.

   The per-mutator kill rate measures how deeply a mutator perturbs
   semantics — complementary to the coverage signal used for fuzzing. *)

open Cparse

type classification = Killed | Equivalent | Invalid | Inconclusive

type score = {
  s_mutator : string;
  s_applied : int;
  s_killed : int;
  s_equivalent : int;
  s_invalid : int;
  s_inconclusive : int;
}

let kill_rate s =
  let decided = s.s_killed + s.s_equivalent in
  if decided = 0 then 0.
  else 100. *. float_of_int s.s_killed /. float_of_int decided

(* Strengthen the test oracle: print arithmetic globals at the end of
   main, so mutations of otherwise-unobserved state are killable (the
   "strong oracle" of mutation testing).  [names] restricts printing to a
   common observable interface when comparing programs whose global sets
   differ (interface-changing mutators would otherwise be "killed" by the
   oracle itself). *)
let instrument_observability ?names (tu : Ast.tu) : Ast.tu =
  let open Ast in
  let wanted v =
    match names with None -> true | Some ns -> List.mem v.v_name ns
  in
  let prints =
    List.filter_map
      (fun (v : var_decl) ->
        if not (wanted v) then None
        else if is_integer_ty v.v_ty then
          Some
            (sexpr
               (call (ident "printf")
                  [ mk_expr (Str_lit "%d "); ident v.v_name ]))
        else if is_float_ty v.v_ty then
          Some
            (sexpr
               (call (ident "printf")
                  [ mk_expr (Str_lit "%g "); ident v.v_name ]))
        else None)
      (Visit.global_vars tu)
  in
  let globals =
    List.map
      (function
        | Gfun fd when String.equal fd.f_name "main" ->
          (* insert before the trailing return *)
          let rec insert = function
            | [ ({ sk = Sreturn _; _ } as r) ] -> prints @ [ r ]
            | s :: rest -> s :: insert rest
            | [] -> prints
          in
          Gfun { fd with f_body = insert fd.f_body }
        | g -> g)
      tu.globals
  in
  Ast_ids.renumber { globals }

let observe ?(fuel = 300_000) (tu : Ast.tu) : (int * string) option =
  let o = Simcomp.Interp.run ~fuel tu in
  if o.Simcomp.Interp.o_hang then None
  else Some (o.Simcomp.Interp.o_exit, o.Simcomp.Interp.o_output)

(* Classify one mutant of [tu] whose original behaviour is [reference]. *)
let classify ?(fuel = 300_000) ~(reference : int * string) (tu' : Ast.tu) :
    classification =
  if not (Typecheck.check tu').Typecheck.r_ok then Invalid
  else
    match observe ~fuel tu' with
    | None -> Inconclusive
    | Some behaviour -> if behaviour = reference then Equivalent else Killed

(* Score every mutator in [mutators] over [programs], applying each
   [tries] times per program with fresh RNG draws. *)
let score ?(tries = 3) ~(rng : Rng.t) ~(mutators : Mutators.Mutator.t list)
    ~(programs : Ast.tu list) () : score list =
  (* common interface = globals present in both programs with the same
     arithmetic type (a retyped global is not value-comparable) *)
  let global_sigs tu =
    List.filter_map
      (fun (v : Ast.var_decl) ->
        if Ast.is_arith_ty v.Ast.v_ty then Some (v.Ast.v_name, v.Ast.v_ty)
        else None)
      (Visit.global_vars tu)
  in
  let runnable =
    List.filter_map
      (fun tu ->
        match observe (instrument_observability tu) with
        | Some _ -> Some tu
        | None -> None)
      programs
  in
  List.map
    (fun (m : Mutators.Mutator.t) ->
      let applied = ref 0 and killed = ref 0 and equivalent = ref 0 in
      let invalid = ref 0 and inconclusive = ref 0 in
      List.iter
        (fun tu ->
          for _ = 1 to tries do
            match Mutators.Mutator.apply m ~rng tu with
            | None -> ()
            | Some tu' -> (
              incr applied;
              (* compare on the common observable interface *)
              let sigs' = global_sigs tu' in
              let names =
                List.filter_map
                  (fun (n, ty) ->
                    match List.assoc_opt n sigs' with
                    | Some ty' when Ast.ty_equal ty ty' -> Some n
                    | _ -> None)
                  (global_sigs tu)
              in
              match observe (instrument_observability ~names tu) with
              | None -> incr inconclusive
              | Some reference -> (
                match
                  classify ~reference (instrument_observability ~names tu')
                with
                | Killed -> incr killed
                | Equivalent -> incr equivalent
                | Invalid -> incr invalid
                | Inconclusive -> incr inconclusive))
          done)
        runnable;
      {
        s_mutator = m.Mutators.Mutator.name;
        s_applied = !applied;
        s_killed = !killed;
        s_equivalent = !equivalent;
        s_invalid = !invalid;
        s_inconclusive = !inconclusive;
      })
    mutators

(* Aggregate kill rate over a whole corpus of mutators. *)
let aggregate (scores : score list) : score =
  List.fold_left
    (fun acc s ->
      {
        s_mutator = "<all>";
        s_applied = acc.s_applied + s.s_applied;
        s_killed = acc.s_killed + s.s_killed;
        s_equivalent = acc.s_equivalent + s.s_equivalent;
        s_invalid = acc.s_invalid + s.s_invalid;
        s_inconclusive = acc.s_inconclusive + s.s_inconclusive;
      })
    {
      s_mutator = "<all>";
      s_applied = 0;
      s_killed = 0;
      s_equivalent = 0;
      s_invalid = 0;
      s_inconclusive = 0;
    }
    scores
