(** Mutation-testing potency scoring (the paper's §6: "MetaMut may also
    be potentially useful in mutation testing").

    Applies each mutator to executable programs and classifies every
    mutant against the reference interpreter's behaviour, yielding a
    per-mutator kill rate — a semantic-potency measure complementary to
    coverage. *)

type classification =
  | Killed        (** observable behaviour differs: a potent mutation *)
  | Equivalent    (** compiles and behaves identically *)
  | Invalid       (** does not compile *)
  | Inconclusive  (** fuel exhausted *)

type score = {
  s_mutator : string;
  s_applied : int;
  s_killed : int;
  s_equivalent : int;
  s_invalid : int;
  s_inconclusive : int;
}

val kill_rate : score -> float
(** Killed over decided (killed + equivalent), in percent. *)

val instrument_observability :
  ?names:string list -> Cparse.Ast.tu -> Cparse.Ast.tu
(** Print arithmetic globals at the end of [main] — the strong oracle
    that makes state-only mutations killable.  [names] restricts printing
    to a common observable interface when comparing programs whose global
    sets differ. *)

val observe : ?fuel:int -> Cparse.Ast.tu -> (int * string) option
(** Exit code and output of a program; [None] on fuel exhaustion. *)

val classify :
  ?fuel:int -> reference:int * string -> Cparse.Ast.tu -> classification

val score :
  ?tries:int ->
  rng:Cparse.Rng.t ->
  mutators:Mutators.Mutator.t list ->
  programs:Cparse.Ast.tu list ->
  unit ->
  score list

val aggregate : score list -> score
