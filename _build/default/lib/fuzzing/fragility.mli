(** Text-rewriting fragility model.

    The paper's mutators edit source {e text} through the Clang Rewriter;
    the failure modes it reports (Table 1 goal #6, §4.1 "unthorough test
    cases") are local textual slips — a missed call-site rewrite, a
    dangling token, an overlapping edit.  The reproduction's mutators are
    AST-level and type-safe by construction, so this module re-introduces
    that fragility explicitly to preserve the paper's compilable-mutant
    ratios (Table 5: ~72-75 % for μCFuzz vs ~99 % for generators). *)

val supervised_slip_probability : float
(** Slip probability for Ms mutators (manually debugged, hence lower). *)

val unsupervised_slip_probability : float

val slip_probability : Mutators.Mutator.provenance -> float

val corrupt : Cparse.Rng.t -> string -> string
(** One local textual corruption mimicking a Rewriter edit mistake
    (dropped token, duplicated range, stray delimiter, missed identifier
    rewrite, truncated replacement). *)

val render : Cparse.Rng.t -> Mutators.Mutator.t -> Cparse.Ast.tu -> string
(** Render a mutated unit to text, applying a slip with the mutator's
    provenance-dependent probability. *)
