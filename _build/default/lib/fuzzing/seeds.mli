(** Seed corpus.

    The paper bootstraps its fuzzers with 1,839 seeds from the GCC and
    Clang test suites.  This module synthesizes an equivalent corpus from
    hand-written templates covering test-suite idioms (libc calls,
    strings, gotos, switch fall-through, structs — including the shapes
    behind the paper's case studies) plus generated programs. *)

val templates : string list
(** The hand-written, feature-rich templates (all parse and type check —
    enforced by the test suite). *)

val of_template : string -> string option
(** Validate and normalise a template into canonical printed form. *)

val corpus : ?n:int -> Cparse.Rng.t -> string list
(** [corpus ~n rng]: every template plus generated programs up to [n]
    seeds (deterministic in [rng]). *)

val paper_seed_count : int
(** 1,839 — the paper's seed count, for documentation purposes. *)
