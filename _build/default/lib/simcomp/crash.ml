(* Crash identity.

   Following the paper's methodology, a crash is uniquely identified by
   its top two stack frames; helper frames (report_error wrappers) are
   excluded from the identity. *)

type kind = Assertion_failure | Segfault | Hang

type stage = Front_end | Ir_gen | Optimization | Back_end

type t = {
  bug_id : string;
  stage : stage;
  kind : kind;
  frames : string list; (* synthetic stack, innermost first *)
}

exception Compiler_crash of t

let kind_to_string = function
  | Assertion_failure -> "assertion failure"
  | Segfault -> "segmentation fault"
  | Hang -> "hang"

let stage_to_string = function
  | Front_end -> "Front-End"
  | Ir_gen -> "IR"
  | Optimization -> "Opt"
  | Back_end -> "Back-End"

let helper_frames = [ "report_error"; "internal_error"; "fancy_abort"; "llvm_unreachable" ]

(* The unique key: top two non-helper frames. *)
let unique_key (t : t) : string =
  let frames =
    List.filter (fun f -> not (List.mem f helper_frames)) t.frames
  in
  match frames with
  | a :: b :: _ -> a ^ "|" ^ b
  | [ a ] -> a
  | [] -> "<unknown>"

let to_string (t : t) =
  Fmt.str "[%s] %s in %s (%s)"
    (stage_to_string t.stage)
    (kind_to_string t.kind)
    (unique_key t) t.bug_id
