(* Branch-coverage instrumentation for the simulated compilers.

   Each decision point in the pipeline reports a (site, context) pair;
   context captures what the real compiler's branch would depend on (node
   kind, type class, pass decision...), so coverage grows with program
   diversity exactly as it does when fuzzing an instrumented GCC/Clang.
   Ids are hashed into a bounded space like AFL's edge map. *)

type t = {
  map : (int, int) Hashtbl.t;
  mutable hits : int;
}

let map_bits = 20
let map_size = 1 lsl map_bits

let create () = { map = Hashtbl.create 4096; hits = 0 }

let hit cov id =
  let id = id land (map_size - 1) in
  cov.hits <- cov.hits + 1;
  match Hashtbl.find_opt cov.map id with
  | Some n -> Hashtbl.replace cov.map id (n + 1)
  | None -> Hashtbl.replace cov.map id 1

(* Report a branch at [site] with contextual values. *)
let branch cov ~site ?(a = 0) ?(b = 0) () =
  hit cov (Hashtbl.hash (site, a, b))

let covered cov = Hashtbl.length cov.map

let total_hits cov = cov.hits

let branch_ids cov = Hashtbl.fold (fun k _ acc -> k :: acc) cov.map []

(* Merge [src] into [dst] (the macro fuzzer's shared coverage map).
   Returns the number of branches new to [dst]. *)
let merge ~into:dst src =
  let fresh = ref 0 in
  Hashtbl.iter
    (fun k v ->
      match Hashtbl.find_opt dst.map k with
      | Some n -> Hashtbl.replace dst.map k (n + v)
      | None ->
        incr fresh;
        Hashtbl.replace dst.map k v)
    src.map;
  dst.hits <- dst.hits + src.hits;
  !fresh

(* Does [src] cover any branch absent from [dst]?  (Alg. 1's test.) *)
let has_new_coverage ~seen:dst src =
  Hashtbl.fold
    (fun k _ acc -> acc || not (Hashtbl.mem dst.map k))
    src.map false

let reset cov =
  Hashtbl.reset cov.map;
  cov.hits <- 0

let copy cov = { map = Hashtbl.copy cov.map; hits = cov.hits }
