(** Program feature extraction.

    The latent-bug database keys compiler bugs on conjunctions of these
    features, so reaching a bug requires the program shape the
    corresponding real-world bug required.  Text-level features exist
    even for programs that do not parse (front-end error-path bugs,
    reachable by byte-level fuzzers); AST features require a parse. *)

(** Features computable from raw bytes. *)
type text = {
  tx_len : int;
  tx_max_ident_len : int;
  tx_paren_depth : int;
  tx_brace_depth : int;
  tx_has_control_chars : bool;
  tx_has_high_bytes : bool;
  tx_digit_run : int;          (** longest run of digits *)
  tx_semi_count : int;
  tx_hash_count : int;
  tx_quote_imbalance : bool;
}

val text_features : string -> text

(** Structural and semantic features of a parsed unit.  The [has_*]
    booleans mark shapes the seed generator never produces — they are the
    signal that a semantic-aware mutation happened (and what several bug
    gates require). *)
type ast = {
  n_functions : int;
  n_globals : int;
  n_structs : int;
  n_ifs : int;
  n_loops : int;
  n_switches : int;
  n_gotos : int;
  n_labels : int;
  n_calls : int;
  n_casts : int;
  n_commas : int;
  n_conds : int;
  n_ptr_ops : int;
  n_incdec : int;
  n_compound_assigns : int;
  max_loop_depth : int;
  max_cast_chain : int;
  max_switch_cases : int;
  max_call_args : int;
  has_const_qual : bool;
  has_volatile_qual : bool;
  has_const_write_warning : bool;
      (** a const buffer written via sprintf/memset/strcpy/memcpy *)
  has_void_fn_with_labels : bool;   (** Clang #63762 shape *)
  has_labels_no_return : bool;
  has_decreasing_loop : bool;       (** [while (--n)] style *)
  has_zero_init_decreasing_loop : bool;  (** GCC #111820 shape *)
  has_scalar_accum_chain : bool;    (** three or more [x += e] in a row *)
  has_sprintf_self : bool;          (** [sprintf(buf, "%s", buf)] *)
  has_struct_cast : bool;
  has_compound_literal : bool;
  has_ptr_arith_cast_chain : bool;  (** GCC #111819 shape *)
  has_fallthrough : bool;
  has_empty_loop_body : bool;
  has_shift_overflow : bool;
  has_div_by_literal_zero : bool;
  has_uninit_use : bool;
  has_array_param : bool;
  has_variadic_call : bool;
  has_recursion : bool;
  n_returns : int;
  n_void_returns : int;
  n_exprs : int;
  n_stmts : int;
}

val ast_features : Cparse.Ast.tu -> ast
