(** Branch-coverage instrumentation for the simulated compilers.

    Each decision point in the pipeline reports a (site, context) pair —
    context captures what the real compiler's branch would depend on
    (node kind, type class, pass decision) — so coverage grows with
    program diversity the way instrumented GCC/Clang coverage does.
    Ids are hashed into a bounded AFL-style edge map. *)

type t
(** A mutable coverage map. *)

val map_bits : int
val map_size : int
(** The id space is [\[0, map_size)] ([1 lsl map_bits]). *)

val create : unit -> t

val hit : t -> int -> unit
(** Record one execution of branch [id mod map_size]. *)

val branch : t -> site:int -> ?a:int -> ?b:int -> unit -> unit
(** Report a branch at [site] with contextual values [a], [b]; the id is
    [hash (site, a, b)]. *)

val covered : t -> int
(** Number of distinct branches covered. *)

val total_hits : t -> int

val branch_ids : t -> int list

val merge : into:t -> t -> int
(** [merge ~into src] accumulates [src] and returns the number of
    branches new to [into] — the macro fuzzer's shared coverage map. *)

val has_new_coverage : seen:t -> t -> bool
(** Does the second map cover a branch absent from [seen]?  This is the
    acceptance test of the paper's Algorithm 1. *)

val reset : t -> unit
val copy : t -> t
