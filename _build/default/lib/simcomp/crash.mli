(** Crash identity.

    Following the paper's methodology (§5.1), a crash is uniquely
    identified by its top two stack frames, with helper frames
    ([report_error]-style wrappers) excluded. *)

type kind = Assertion_failure | Segfault | Hang

type stage = Front_end | Ir_gen | Optimization | Back_end
(** The compiler component blamed for the crash (Table 4 / Table 6). *)

type t = {
  bug_id : string;        (** stable id in the latent-bug database *)
  stage : stage;
  kind : kind;
  frames : string list;   (** synthetic stack, innermost first *)
}

exception Compiler_crash of t
(** Raised inside the pipeline when a latent bug fires. *)

val kind_to_string : kind -> string
val stage_to_string : stage -> string

val helper_frames : string list
(** Frames excluded from crash identity. *)

val unique_key : t -> string
(** Top two non-helper frames, joined — the dedup key. *)

val to_string : t -> string
