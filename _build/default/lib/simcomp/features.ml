(* Program feature extraction.

   The injected-bug database (bugdb.ml) keys latent compiler bugs on
   conjunctions of these features, so that reaching a bug requires the
   kind of program shape the corresponding real-world bug required.
   Text-level features exist even for programs that do not parse
   (front-end error-path bugs, reachable by byte-level fuzzers). *)

open Cparse
open Ast

type text = {
  tx_len : int;
  tx_max_ident_len : int;
  tx_paren_depth : int;
  tx_brace_depth : int;
  tx_has_control_chars : bool;
  tx_has_high_bytes : bool;
  tx_digit_run : int;          (* longest run of digits *)
  tx_semi_count : int;
  tx_hash_count : int;
  tx_quote_imbalance : bool;
}

let text_features (src : string) : text =
  let n = String.length src in
  let max_ident = ref 0 and cur_ident = ref 0 in
  let depth = ref 0 and max_depth = ref 0 in
  let bdepth = ref 0 and max_bdepth = ref 0 in
  let ctrl = ref false and high = ref false in
  let digit_run = ref 0 and cur_digits = ref 0 in
  let semis = ref 0 and hashes = ref 0 and quotes = ref 0 in
  String.iter
    (fun c ->
      (match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | '0' .. '9' ->
        incr cur_ident;
        if !cur_ident > !max_ident then max_ident := !cur_ident
      | _ -> cur_ident := 0);
      (match c with
      | '0' .. '9' ->
        incr cur_digits;
        if !cur_digits > !digit_run then digit_run := !cur_digits
      | _ -> cur_digits := 0);
      (match c with
      | '(' ->
        incr depth;
        if !depth > !max_depth then max_depth := !depth
      | ')' -> decr depth
      | '{' ->
        incr bdepth;
        if !bdepth > !max_bdepth then max_bdepth := !bdepth
      | '}' -> decr bdepth
      | ';' -> incr semis
      | '#' -> incr hashes
      | '"' -> incr quotes
      | '\n' | '\t' | '\r' -> ()
      | c when Char.code c < 32 -> ctrl := true
      | c when Char.code c >= 127 -> high := true
      | _ -> ()))
    src;
  {
    tx_len = n;
    tx_max_ident_len = !max_ident;
    tx_paren_depth = !max_depth;
    tx_brace_depth = !max_bdepth;
    tx_has_control_chars = !ctrl;
    tx_has_high_bytes = !high;
    tx_digit_run = !digit_run;
    tx_semi_count = !semis;
    tx_hash_count = !hashes;
    tx_quote_imbalance = !quotes mod 2 = 1;
  }

type ast = {
  n_functions : int;
  n_globals : int;
  n_structs : int;
  n_ifs : int;
  n_loops : int;
  n_switches : int;
  n_gotos : int;
  n_labels : int;
  n_calls : int;
  n_casts : int;
  n_commas : int;
  n_conds : int;                     (* ternary operators *)
  n_ptr_ops : int;                   (* deref + addrof *)
  n_incdec : int;
  n_compound_assigns : int;
  max_loop_depth : int;
  max_cast_chain : int;
  max_switch_cases : int;
  max_call_args : int;
  has_const_qual : bool;
  has_volatile_qual : bool;
  has_const_write_warning : bool;    (* const var subject to sprintf-style write *)
  has_void_fn_with_labels : bool;    (* Clang #63762 shape *)
  has_labels_no_return : bool;
  has_decreasing_loop : bool;        (* while (--n) style *)
  has_zero_init_decreasing_loop : bool; (* GCC #111820 shape *)
  has_scalar_accum_chain : bool;     (* r += r; r += r; ... *)
  has_sprintf_self : bool;           (* sprintf(buf, "%s", buf) *)
  has_struct_cast : bool;            (* (T){...} or struct cast involved *)
  has_compound_literal : bool;
  has_ptr_arith_cast_chain : bool;   (* GCC #111819 shape *)
  has_fallthrough : bool;
  has_empty_loop_body : bool;
  has_shift_overflow : bool;         (* shift amount >= width *)
  has_div_by_literal_zero : bool;
  has_uninit_use : bool;             (* scalar local read before any write *)
  has_array_param : bool;
  has_variadic_call : bool;
  has_recursion : bool;
  n_returns : int;
  n_void_returns : int;
  n_exprs : int;
  n_stmts : int;
}

let ast_features (tu : tu) : ast =
  let n_ifs = ref 0 and n_loops = ref 0 and n_switches = ref 0 in
  let n_gotos = ref 0 and n_labels = ref 0 in
  let n_calls = ref 0 and n_casts = ref 0 and n_commas = ref 0 in
  let n_conds = ref 0 and n_ptr_ops = ref 0 and n_incdec = ref 0 in
  let n_compound = ref 0 in
  let max_switch = ref 0 and max_args = ref 0 in
  let n_returns = ref 0 and n_void_returns = ref 0 in
  let n_exprs = ref 0 and n_stmts = ref 0 in
  let has_fallthrough = ref false and has_empty_loop = ref false in
  let has_shift_over = ref false and has_div0 = ref false in
  let has_compound_lit = ref false and has_struct_cast = ref false in
  let has_ptr_chain = ref false in
  let has_sprintf_self = ref false in
  let has_variadic_call = ref false in
  let fe (e : expr) =
    incr n_exprs;
    match e.ek with
    | Call ({ ek = Ident f; _ }, args) ->
      incr n_calls;
      if List.length args > !max_args then max_args := List.length args;
      if List.mem f [ "printf"; "sprintf"; "snprintf" ] then
        has_variadic_call := true;
      (match f, args with
      | "sprintf", dst :: _ :: rest ->
        let same a b =
          match a.ek, b.ek with
          | Ident x, Ident y -> String.equal x y
          | _ -> false
        in
        if List.exists (fun a -> same a dst) rest then has_sprintf_self := true
      | _ -> ())
    | Call (_, args) ->
      incr n_calls;
      if List.length args > !max_args then max_args := List.length args
    | Cast (ty, inner) ->
      incr n_casts;
      (match inner.ek with
      | Init_list _ ->
        has_compound_lit := true;
        (match ty with
        | Tstruct _ | Tunion _ | Tint _ -> has_struct_cast := true
        | _ -> ())
      | _ -> ());
      (* cast of pointer arithmetic over a casted address: #111819 shape *)
      (match ty, inner.ek with
      | Tptr _, Binop ((Add | Sub), { ek = Cast (Tptr _, { ek = Addrof _; _ }); _ }, _) ->
        has_ptr_chain := true
      | _ -> ())
    | Comma _ -> incr n_commas
    | Cond _ -> incr n_conds
    | Deref _ | Addrof _ -> incr n_ptr_ops
    | Incdec _ -> incr n_incdec
    | Assign (op, _, _) when op <> A_none -> incr n_compound
    | Binop ((Shl | Shr), _, { ek = Int_lit (v, _, _); _ }) ->
      if v >= 32L || v < 0L then has_shift_over := true
    | Binop ((Div | Mod), _, { ek = Int_lit (0L, _, _); _ }) -> has_div0 := true
    | _ -> ()
  in
  let fs (s : stmt) =
    incr n_stmts;
    match s.sk with
    | Sif _ -> incr n_ifs
    | Swhile (_, b) | Sdo (b, _) ->
      incr n_loops;
      (match b.sk with Snull | Sblock [] -> has_empty_loop := true | _ -> ())
    | Sfor (_, _, _, b) ->
      incr n_loops;
      (match b.sk with Snull | Sblock [] -> has_empty_loop := true | _ -> ())
    | Sswitch (_, cases) ->
      incr n_switches;
      if List.length cases > !max_switch then max_switch := List.length cases;
      List.iter
        (fun c ->
          match List.rev c.case_body with
          | { sk = Sbreak; _ } :: _ -> ()
          | [] -> ()
          | _ -> has_fallthrough := true)
        cases
    | Sgoto _ -> incr n_gotos
    | Slabel _ -> incr n_labels
    | Sreturn (Some _) -> incr n_returns
    | Sreturn None ->
      incr n_returns;
      incr n_void_returns
    | _ -> ()
  in
  Visit.iter_tu tu ~fe ~fs;
  (* per-function / structural features *)
  let funcs = Visit.functions tu in
  let has_void_fn_with_labels = ref false in
  let has_labels_no_return = ref false in
  let has_recursion = ref false in
  let has_decreasing = ref false in
  let has_zero_init_decreasing = ref false in
  let has_accum_chain = ref false in
  let max_loop_depth = ref 0 in
  let max_cast_chain = ref 0 in
  List.iter
    (fun fd ->
      let labels = ref 0 and returns = ref 0 in
      let rec loop_depth d (s : stmt) =
        if d > !max_loop_depth then max_loop_depth := d;
        match s.sk with
        | Swhile (_, b) | Sdo (b, _) | Sfor (_, _, _, b) -> loop_depth (d + 1) b
        | Sblock ss -> List.iter (loop_depth d) ss
        | Sif (_, t, f) ->
          loop_depth d t;
          Option.iter (loop_depth d) f
        | Sswitch (_, cases) ->
          List.iter (fun c -> List.iter (loop_depth d) c.case_body) cases
        | Slabel (_, inner) -> loop_depth d inner
        | _ -> ()
      in
      List.iter (loop_depth 0) fd.f_body;
      List.iter
        (Visit.iter_stmt
           ~fe:(fun e ->
             (* cast chain depth *)
             let rec chain n e =
               match e.ek with Cast (_, inner) -> chain (n + 1) inner | _ -> n
             in
             let c = chain 0 e in
             if c > !max_cast_chain then max_cast_chain := c;
             (match e.ek with
             | Call ({ ek = Ident n; _ }, _) when String.equal n fd.f_name ->
               has_recursion := true
             | _ -> ());
             (* accumulation chains: x op= e or x = x + e, three or more in
                one basic run detected statistically via count below *)
             ())
           ~fs:(fun s ->
             match s.sk with
             | Slabel _ -> incr labels
             | Sreturn _ -> incr returns
             | Swhile ({ ek = Incdec (false, true, _); _ }, _)
             | Sdo (_, { ek = Incdec (false, true, _); _ }) ->
               has_decreasing := true
             | _ -> ()))
        fd.f_body;
      if !labels >= 2 && is_void_ty fd.f_ret then has_void_fn_with_labels := true;
      if !labels >= 1 && !returns = 0 && is_void_ty fd.f_ret then
        has_labels_no_return := true;
      (* zero-initialised variable driven to negative infinity: local n = 0
         followed by while (--n) — the #111820 trigger *)
      let zero_init = Hashtbl.create 4 in
      List.iter
        (Visit.iter_stmt
           ~fe:(fun _ -> ())
           ~fs:(fun s ->
             match s.sk with
             | Sdecl vs ->
               List.iter
                 (fun v ->
                   match v.v_init with
                   | Some { ek = Int_lit (0L, _, _); _ } ->
                     Hashtbl.replace zero_init v.v_name ()
                   | _ -> ())
                 vs
             | Swhile ({ ek = Incdec (false, true, { ek = Ident n; _ }); _ }, _) ->
               if Hashtbl.mem zero_init n then has_zero_init_decreasing := true
             | _ -> ()))
        fd.f_body;
      (* accumulation chain: >=3 compound-add assignments to scalars in a
         single block *)
      List.iter
        (Visit.iter_stmt
           ~fe:(fun _ -> ())
           ~fs:(fun s ->
             match s.sk with
             | Sblock ss | Sswitch (_, [ { case_body = ss; _ } ]) ->
               let adds =
                 List.length
                   (List.filter
                      (fun s' ->
                        match s'.sk with
                        | Sexpr { ek = Assign (A_add, _, _); _ } -> true
                        | _ -> false)
                      ss)
               in
               if adds >= 3 then has_accum_chain := true
             | _ -> ()))
        fd.f_body;
      let body_adds =
        List.length
          (List.filter
             (fun s' ->
               match s'.sk with
               | Sexpr { ek = Assign (A_add, _, _); _ } -> true
               | _ -> false)
             fd.f_body)
      in
      if body_adds >= 3 then has_accum_chain := true)
    funcs;
  (* const/volatile and writes to const *)
  let has_const = ref false and has_volatile = ref false in
  let const_names = Hashtbl.create 8 in
  let scan_decl (v : var_decl) =
    if v.v_quals.q_const then begin
      has_const := true;
      Hashtbl.replace const_names v.v_name ()
    end;
    if v.v_quals.q_volatile then has_volatile := true
  in
  List.iter
    (function
      | Gvar v -> scan_decl v
      | _ -> ())
    tu.globals;
  Visit.iter_tu tu ~fs:(fun s ->
      match s.sk with Sdecl vs -> List.iter scan_decl vs | _ -> ());
  let has_const_write = ref false in
  Visit.iter_tu tu ~fe:(fun e ->
      match e.ek with
      | Call ({ ek = Ident ("sprintf" | "memset" | "strcpy" | "memcpy"); _ }, { ek = Ident dst; _ } :: _)
        when Hashtbl.mem const_names dst ->
        has_const_write := true
      | _ -> ());
  (* uninitialized use: first statement reads a local declared w/o init *)
  let has_uninit = ref false in
  List.iter
    (fun fd ->
      let uninit = Hashtbl.create 4 in
      List.iter
        (fun s ->
          match s.sk with
          | Sdecl vs ->
            List.iter
              (fun v ->
                if v.v_init = None && is_arith_ty v.v_ty then
                  Hashtbl.replace uninit v.v_name ())
              vs
          | Sexpr { ek = Assign (A_none, { ek = Ident n; _ }, _); _ } ->
            Hashtbl.remove uninit n
          | Sexpr e ->
            Visit.iter_expr
              (fun e' ->
                match e'.ek with
                | Ident n when Hashtbl.mem uninit n -> has_uninit := true
                | _ -> ())
              e
          | Sreturn (Some e) ->
            Visit.iter_expr
              (fun e' ->
                match e'.ek with
                | Ident n when Hashtbl.mem uninit n -> has_uninit := true
                | _ -> ())
              e
          | _ -> ())
        fd.f_body)
    funcs;
  let n_structs =
    List.length
      (List.filter
         (function Gstruct _ | Gunion _ -> true | _ -> false)
         tu.globals)
  in
  {
    n_functions = List.length funcs;
    n_globals = List.length (Visit.global_vars tu);
    n_structs;
    n_ifs = !n_ifs;
    n_loops = !n_loops;
    n_switches = !n_switches;
    n_gotos = !n_gotos;
    n_labels = !n_labels;
    n_calls = !n_calls;
    n_casts = !n_casts;
    n_commas = !n_commas;
    n_conds = !n_conds;
    n_ptr_ops = !n_ptr_ops;
    n_incdec = !n_incdec;
    n_compound_assigns = !n_compound;
    max_loop_depth = !max_loop_depth;
    max_cast_chain = !max_cast_chain;
    max_switch_cases = !max_switch;
    max_call_args = !max_args;
    has_const_qual = !has_const;
    has_volatile_qual = !has_volatile;
    has_const_write_warning = !has_const_write;
    has_void_fn_with_labels = !has_void_fn_with_labels;
    has_labels_no_return = !has_labels_no_return;
    has_decreasing_loop = !has_decreasing;
    has_zero_init_decreasing_loop = !has_zero_init_decreasing;
    has_scalar_accum_chain = !has_accum_chain;
    has_sprintf_self = !has_sprintf_self;
    has_struct_cast = !has_struct_cast;
    has_compound_literal = !has_compound_lit;
    has_ptr_arith_cast_chain = !has_ptr_chain;
    has_fallthrough = !has_fallthrough;
    has_empty_loop_body = !has_empty_loop;
    has_shift_overflow = !has_shift_over;
    has_div_by_literal_zero = !has_div0;
    has_uninit_use = !has_uninit;
    has_array_param =
      List.exists
        (fun fd ->
          List.exists
            (fun p -> match p.p_ty with Tptr _ -> true | _ -> false)
            fd.f_params)
        funcs;
    has_variadic_call = !has_variadic_call;
    has_recursion = !has_recursion;
    n_returns = !n_returns;
    n_void_returns = !n_void_returns;
    n_exprs = !n_exprs;
    n_stmts = !n_stmts;
  }
