(** Back-end of the simulated compiler: instruction selection to a small
    RISC-flavoured target, linear-scan register allocation over
    {!phys_regs} physical registers, and assembly emission.  Selection
    patterns and allocation decisions report branch coverage. *)

type asm_instr = { mnemonic : string; operands : string list }

val phys_regs : int
(** Number of physical registers (8). *)

val select : ?cov:Coverage.t -> Ir.instr -> asm_instr list
(** Instruction selection for one IR instruction (immediate forms,
    addressing modes, call sequences). *)

val select_term : ?cov:Coverage.t -> Ir.terminator -> asm_instr list
(** Terminator selection; dense switches become a jump table, sparse
    ones a compare chain. *)

val regalloc : ?cov:Coverage.t -> Ir.func -> (int * int) list * int
(** Linear-scan allocation over live intervals.  Returns the
    [(virtual, physical)] assignment (-1 = spilled) and the spill count. *)

val emit_function : ?cov:Coverage.t -> Ir.func -> string * int
(** Assembly text and spill count for one function. *)

val emit_program : ?cov:Coverage.t -> Ir.program -> string * int
(** Assembly for the whole program (data directives + functions). *)
