lib/simcomp/backend.ml: Array Buffer Coverage Cparse Fmt Hashtbl Int64 Ir List Lower Option String
