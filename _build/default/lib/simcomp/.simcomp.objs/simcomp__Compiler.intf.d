lib/simcomp/compiler.mli: Bugdb Coverage Cparse Crash Ir
