lib/simcomp/opt.mli: Coverage Ir
