lib/simcomp/lower.mli: Coverage Cparse Ir
