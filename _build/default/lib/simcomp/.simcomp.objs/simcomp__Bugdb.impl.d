lib/simcomp/bugdb.ml: Crash Features Fmt Hashtbl List
