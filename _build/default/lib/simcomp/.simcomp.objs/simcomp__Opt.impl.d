lib/simcomp/opt.ml: Coverage Cparse Hashtbl Int64 Ir List Option String
