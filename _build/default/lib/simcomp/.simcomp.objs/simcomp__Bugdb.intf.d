lib/simcomp/bugdb.mli: Crash Features
