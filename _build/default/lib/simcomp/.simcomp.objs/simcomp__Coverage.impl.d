lib/simcomp/coverage.ml: Hashtbl
