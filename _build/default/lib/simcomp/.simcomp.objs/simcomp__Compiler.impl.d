lib/simcomp/compiler.ml: Array Ast Backend Bool Buffer Bugdb Coverage Cparse Crash Features Fmt Hashtbl Int64 Ir Lexer List Loc Lower Opt Option Parser Rng String Token Typecheck
