lib/simcomp/interp.ml: Array Ast Buffer Char Const_eval Cparse Float Fmt Hashtbl Int64 List Option Parser String
