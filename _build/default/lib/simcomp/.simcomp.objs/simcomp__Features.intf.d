lib/simcomp/features.mli: Cparse
