lib/simcomp/crash.mli:
