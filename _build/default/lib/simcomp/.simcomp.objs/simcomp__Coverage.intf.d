lib/simcomp/coverage.mli:
