lib/simcomp/ir_interp.mli: Ir
