lib/simcomp/backend.mli: Coverage Ir
