lib/simcomp/features.ml: Ast Char Cparse Hashtbl List Option String Visit
