lib/simcomp/ir_interp.ml: Array Cparse Float Fmt Hashtbl Int64 Ir List Option String
