lib/simcomp/interp.mli: Cparse Hashtbl
