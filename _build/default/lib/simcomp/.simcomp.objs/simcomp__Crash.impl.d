lib/simcomp/crash.ml: Fmt List
