lib/simcomp/lower.ml: Ast Char Const_eval Coverage Cparse Fmt Hashtbl Int64 Ir List Option String Typecheck
