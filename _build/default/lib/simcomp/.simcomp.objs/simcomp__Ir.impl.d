lib/simcomp/ir.ml: Buffer Cparse Fmt Int64 List String
