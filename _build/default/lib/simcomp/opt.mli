(** The optimizer of the simulated compiler.

    Pass pipeline by level:
    {ul
    {- [-O1]: constfold, simplify-cfg, dce}
    {- [-O2]: + inline, strlen-opt}
    {- [-O3]: + loop-opt (the "vectorizer" of the GCC #111820 hang)}}

    Passes mutate the IR in place, report branch coverage per decision,
    and are semantics-preserving (verified by differential tests against
    {!Ir_interp}). *)

type pass = {
  pass_name : string;
  run : ?cov:Coverage.t -> Ir.program -> int;  (** returns changes made *)
}

val const_fold_pass : pass
(** Per-block constant folding and copy propagation; folds constant
    branches, switches, and returns. *)

val simplify_cfg_pass : pass
(** Jump threading through empty forwarding blocks and unreachable-block
    elimination. *)

val dce_pass : pass
(** Removes pure instructions whose destinations are never read. *)

val inline_pass : pass
(** Folds calls to functions that immediately return a constant. *)

val strlen_pass : pass
(** The GCC strlen-pass analogue: rewrites the result of
    [sprintf(dst, "%s", src)] into [strlen(src)]. *)

val loop_pass : pass
(** Back-edge detection and trip-count analysis (coverage-bearing; the
    stage where the vectorizer-hang bug is keyed). *)

val passes_for_level : int -> pass list

val run_pipeline :
  ?cov:Coverage.t ->
  level:int ->
  disabled:string list ->
  Ir.program ->
  (string * int) list
(** Run the pipeline, skipping [disabled] pass names; returns
    [(pass, changes)] per executed pass. *)
