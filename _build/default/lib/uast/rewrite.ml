(* μAST rewriting APIs.

   These provide what the paper's Rewriter + helper APIs do (ReplaceText,
   removeParmFromFuncDecl, removeArgFromExpr, ...) but as type-safe AST
   edits: replace/remove/insert statements, edit function signatures, and
   update call sites.  All functions are pure: they return a new unit. *)

open Cparse
open Ast

let replace_expr = Visit.replace_expr
let replace_stmt = Visit.replace_stmt
let remove_stmt = Visit.remove_stmt

(* Rewrite statement lists everywhere (function bodies, blocks, case
   bodies) with [f], which maps each statement to a replacement list.
   This is the workhorse for insertion and removal. *)
let map_stmt_lists (tu : tu) ~(f : stmt -> stmt list) : tu =
  let rec do_stmt (s : stmt) : stmt =
    let sk =
      match s.sk with
      | Sblock ss -> Sblock (do_list ss)
      | Sif (c, t, e) -> Sif (c, do_stmt t, Option.map do_stmt e)
      | Swhile (c, b) -> Swhile (c, do_stmt b)
      | Sdo (b, c) -> Sdo (do_stmt b, c)
      | Sfor (i, c, st, b) -> Sfor (i, c, st, do_stmt b)
      | Sswitch (e, cases) ->
        Sswitch
          ( e,
            List.map
              (fun cs -> { cs with case_body = do_list cs.case_body })
              cases )
      | Slabel (l, inner) -> Slabel (l, do_stmt inner)
      | sk -> sk
    in
    { s with sk }
  and do_list ss = List.concat_map (fun s -> f (do_stmt s)) ss in
  let globals =
    List.map
      (function
        | Gfun fd -> Gfun { fd with f_body = do_list fd.f_body }
        | g -> g)
      tu.globals
  in
  { globals }

(* Insert statements immediately before the statement with id [sid]. *)
let insert_before (tu : tu) ~sid ~stmts : tu =
  map_stmt_lists tu ~f:(fun s -> if s.sid = sid then stmts @ [ s ] else [ s ])

(* Insert statements immediately after the statement with id [sid]. *)
let insert_after (tu : tu) ~sid ~stmts : tu =
  map_stmt_lists tu ~f:(fun s -> if s.sid = sid then s :: stmts else [ s ])

(* Delete the statement with id [sid] from its enclosing list. *)
let delete_stmt (tu : tu) ~sid : tu =
  map_stmt_lists tu ~f:(fun s -> if s.sid = sid then [] else [ s ])

(* Append statements at the end of the body of function [fname]. *)
let append_to_function (tu : tu) ~fname ~stmts : tu =
  let globals =
    List.map
      (function
        | Gfun fd when String.equal fd.f_name fname ->
          Gfun { fd with f_body = fd.f_body @ stmts }
        | g -> g)
      tu.globals
  in
  { globals }

(* Prepend statements at the start of the body of function [fname]. *)
let prepend_to_function (tu : tu) ~fname ~stmts : tu =
  let globals =
    List.map
      (function
        | Gfun fd when String.equal fd.f_name fname ->
          Gfun { fd with f_body = stmts @ fd.f_body }
        | g -> g)
      tu.globals
  in
  { globals }

(* Replace a whole function definition. *)
let replace_function (tu : tu) ~fname ~(f : fundef -> fundef) : tu =
  let globals =
    List.map
      (function
        | Gfun fd when String.equal fd.f_name fname -> Gfun (f fd)
        | g -> g)
      tu.globals
  in
  { globals }

(* Insert a global before the first function definition (so it is in scope
   for every function, mirroring how the paper's mutators add decls). *)
let insert_global_before_functions (tu : tu) ~(g : global) : tu =
  let rec ins = function
    | [] -> [ g ]
    | Gfun _ :: _ as rest -> g :: rest
    | x :: rest -> x :: ins rest
  in
  { globals = ins tu.globals }

let append_global (tu : tu) ~(g : global) : tu = { globals = tu.globals @ [ g ] }

(* μAST: removeParmFromFuncDecl — drop parameter [index] of [fname] and
   remove the corresponding argument from every call site. *)
let remove_param (tu : tu) ~fname ~index : tu =
  let drop_nth l n = List.filteri (fun i _ -> i <> n) l in
  let tu =
    replace_function tu ~fname ~f:(fun fd ->
        { fd with f_params = drop_nth fd.f_params index })
  in
  Visit.map_tu tu ~fe:(fun e ->
      match e.ek with
      | Call (({ ek = Ident n; _ } as f), args)
        when String.equal n fname && List.length args > index ->
        { e with ek = Call (f, drop_nth args index) }
      | _ -> e)

(* μAST: removeArgFromExpr — remove argument [index] of the call with id
   [eid] (call-site-local variant). *)
let remove_arg (tu : tu) ~eid ~index : tu =
  Visit.map_tu tu ~fe:(fun e ->
      match e.ek with
      | Call (f, args) when e.eid = eid && List.length args > index ->
        { e with ek = Call (f, List.filteri (fun i _ -> i <> index) args) }
      | _ -> e)

(* Rename every use of variable [old_name] within function [fname]. *)
let rename_var_in_function (tu : tu) ~fname ~old_name ~new_name : tu =
  let rename_decl (v : var_decl) =
    if String.equal v.v_name old_name then { v with v_name = new_name } else v
  in
  let globals =
    List.map
      (function
        | Gfun fd when String.equal fd.f_name fname ->
          let fe e =
            match e.ek with
            | Ident n when String.equal n old_name ->
              { e with ek = Ident new_name }
            | _ -> e
          in
          let fs s =
            match s.sk with
            | Sdecl vs -> { s with sk = Sdecl (List.map rename_decl vs) }
            | Sfor (Some (Fi_decl vs), c, st, b) ->
              { s with sk = Sfor (Some (Fi_decl (List.map rename_decl vs)), c, st, b) }
            | _ -> s
          in
          let fd = Visit.map_fundef ~fe ~fs fd in
          Gfun
            {
              fd with
              f_params =
                List.map
                  (fun p ->
                    if String.equal p.p_name old_name then
                      { p with p_name = new_name }
                    else p)
                  fd.f_params;
            }
        | g -> g)
      tu.globals
  in
  { globals }
