(* μAST query APIs: AST traversal and node retrieval.

   These are the OCaml analogues of the paper's query APIs: getSourceText,
   randElement over collected node vectors, and the per-node-type visitor
   collections the generated mutators build in their Visit* callbacks. *)

open Cparse
open Ast

(* μAST: getSourceText — extract the source of a node for replication. *)
let source_of_expr (e : expr) : string = Pretty.expr_to_string e

let source_of_stmt (s : stmt) : string =
  let buf = Buffer.create 64 in
  Pretty.stmt_to_buf buf 0 s;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Collectors with enclosing-function context                          *)
(* ------------------------------------------------------------------ *)

type 'a in_func = { node : 'a; func : fundef }

let exprs_in_functions (tu : tu) ~pred : expr in_func list =
  let acc = ref [] in
  Visit.iter_tu_in_functions tu ~f:(fun fd ->
      List.iter
        (Visit.iter_stmt
           ~fe:(fun e -> if pred e then acc := { node = e; func = fd } :: !acc)
           ~fs:(fun _ -> ()))
        fd.f_body);
  List.rev !acc

let stmts_in_functions (tu : tu) ~pred : stmt in_func list =
  let acc = ref [] in
  Visit.iter_tu_in_functions tu ~f:(fun fd ->
      List.iter
        (Visit.iter_stmt
           ~fe:(fun _ -> ())
           ~fs:(fun s -> if pred s then acc := { node = s; func = fd } :: !acc))
        fd.f_body);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Node-kind collectors (the VisitXxx vectors of generated mutators)   *)
(* ------------------------------------------------------------------ *)

let binops tu =
  Visit.collect_exprs (fun e -> match e.ek with Binop _ -> true | _ -> false) tu

let unops tu =
  Visit.collect_exprs (fun e -> match e.ek with Unop _ -> true | _ -> false) tu

let calls tu =
  Visit.collect_exprs (fun e -> match e.ek with Call _ -> true | _ -> false) tu

let int_literals tu =
  Visit.collect_exprs
    (fun e -> match e.ek with Int_lit _ -> true | _ -> false)
    tu

let literals tu =
  Visit.collect_exprs
    (fun e ->
      match e.ek with
      | Int_lit _ | Float_lit _ | Char_lit _ | Str_lit _ -> true
      | _ -> false)
    tu

let idents tu =
  Visit.collect_exprs (fun e -> match e.ek with Ident _ -> true | _ -> false) tu

let assignments tu =
  Visit.collect_exprs (fun e -> match e.ek with Assign _ -> true | _ -> false) tu

let if_stmts tu =
  Visit.collect_stmts (fun s -> match s.sk with Sif _ -> true | _ -> false) tu

let loops tu =
  Visit.collect_stmts
    (fun s -> match s.sk with Swhile _ | Sdo _ | Sfor _ -> true | _ -> false)
    tu

let switches tu =
  Visit.collect_stmts
    (fun s -> match s.sk with Sswitch _ -> true | _ -> false)
    tu

let returns tu =
  Visit.collect_stmts
    (fun s -> match s.sk with Sreturn _ -> true | _ -> false)
    tu

let decl_stmts tu =
  Visit.collect_stmts (fun s -> match s.sk with Sdecl _ -> true | _ -> false) tu

(* All local variable declarations, with the declaring function. *)
let local_var_decls (tu : tu) : (var_decl * fundef) list =
  let acc = ref [] in
  Visit.iter_tu_in_functions tu ~f:(fun fd ->
      List.iter
        (Visit.iter_stmt
           ~fe:(fun _ -> ())
           ~fs:(fun s ->
             match s.sk with
             | Sdecl vs -> List.iter (fun v -> acc := (v, fd) :: !acc) vs
             | Sfor (Some (Fi_decl vs), _, _, _) ->
               List.iter (fun v -> acc := (v, fd) :: !acc) vs
             | _ -> ()))
        fd.f_body);
  List.rev !acc

(* Uses (reads or writes) of a variable name inside a function body. *)
let uses_of_var (fd : fundef) name : expr list =
  let acc = ref [] in
  List.iter
    (Visit.iter_stmt
       ~fe:(fun e ->
         match e.ek with
         | Ident n when String.equal n name -> acc := e :: !acc
         | _ -> ())
       ~fs:(fun _ -> ()))
    fd.f_body;
  List.rev !acc

(* Calls to a named function anywhere in the unit. *)
let calls_to (tu : tu) name : expr list =
  Visit.collect_exprs
    (fun e ->
      match e.ek with
      | Call ({ ek = Ident n; _ }, _) -> String.equal n name
      | _ -> false)
    tu

(* Return statements inside one function. *)
let returns_of (fd : fundef) : stmt list =
  let acc = ref [] in
  List.iter
    (Visit.iter_stmt
       ~fe:(fun _ -> ())
       ~fs:(fun s ->
         match s.sk with Sreturn _ -> acc := s :: !acc | _ -> ()))
    fd.f_body;
  List.rev !acc

(* Labels defined in a function. *)
let labels_of (fd : fundef) : string list =
  let acc = ref [] in
  List.iter
    (Visit.iter_stmt
       ~fe:(fun _ -> ())
       ~fs:(fun s ->
         match s.sk with Slabel (l, _) -> acc := l :: !acc | _ -> ()))
    fd.f_body;
  List.rev !acc

(* Variables visible at the top level of a function (params + top-level
   locals declared directly in the body), with their types. *)
let toplevel_vars_of (fd : fundef) : (string * ty) list =
  let params = List.map (fun p -> (p.p_name, p.p_ty)) fd.f_params in
  let locals =
    List.concat_map
      (fun s ->
        match s.sk with
        | Sdecl vs -> List.map (fun v -> (v.v_name, v.v_ty)) vs
        | _ -> [])
      fd.f_body
  in
  params @ locals

(* Declarations grouped by the block that contains them: used by mutators
   that must respect scoping (e.g. SwitchInitExpr's "same scope"). *)
let decls_by_block (fd : fundef) : var_decl list list =
  let acc = ref [] in
  let block_decls ss =
    List.concat_map
      (fun s -> match s.sk with Sdecl vs -> vs | _ -> [])
      ss
  in
  acc := [ block_decls fd.f_body ];
  List.iter
    (Visit.iter_stmt
       ~fe:(fun _ -> ())
       ~fs:(fun s ->
         match s.sk with
         | Sblock ss -> acc := block_decls ss :: !acc
         | _ -> ()))
    fd.f_body;
  List.filter (fun l -> l <> []) !acc
