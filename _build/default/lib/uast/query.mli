(** μAST query APIs: AST traversal and node retrieval.

    The OCaml analogues of the paper's query APIs — [getSourceText],
    [randElement] over collected node vectors, and the per-node-type
    visitor collections generated mutators build in their Visit*
    callbacks. *)

val source_of_expr : Cparse.Ast.expr -> string
(** μAST [getSourceText] for expressions. *)

val source_of_stmt : Cparse.Ast.stmt -> string

type 'a in_func = { node : 'a; func : Cparse.Ast.fundef }
(** A collected node together with its enclosing function. *)

val exprs_in_functions :
  Cparse.Ast.tu -> pred:(Cparse.Ast.expr -> bool) -> Cparse.Ast.expr in_func list

val stmts_in_functions :
  Cparse.Ast.tu -> pred:(Cparse.Ast.stmt -> bool) -> Cparse.Ast.stmt in_func list

(** {2 Node-kind collectors} *)

val binops : Cparse.Ast.tu -> Cparse.Ast.expr list
val unops : Cparse.Ast.tu -> Cparse.Ast.expr list
val calls : Cparse.Ast.tu -> Cparse.Ast.expr list
val int_literals : Cparse.Ast.tu -> Cparse.Ast.expr list
val literals : Cparse.Ast.tu -> Cparse.Ast.expr list
val idents : Cparse.Ast.tu -> Cparse.Ast.expr list
val assignments : Cparse.Ast.tu -> Cparse.Ast.expr list
val if_stmts : Cparse.Ast.tu -> Cparse.Ast.stmt list
val loops : Cparse.Ast.tu -> Cparse.Ast.stmt list
val switches : Cparse.Ast.tu -> Cparse.Ast.stmt list
val returns : Cparse.Ast.tu -> Cparse.Ast.stmt list
val decl_stmts : Cparse.Ast.tu -> Cparse.Ast.stmt list

(** {2 Semantic lookups} *)

val local_var_decls :
  Cparse.Ast.tu -> (Cparse.Ast.var_decl * Cparse.Ast.fundef) list
(** Every local declaration with its declaring function. *)

val uses_of_var : Cparse.Ast.fundef -> string -> Cparse.Ast.expr list
(** Identifier occurrences of a name within a function body. *)

val calls_to : Cparse.Ast.tu -> string -> Cparse.Ast.expr list
(** Call sites of a named function anywhere in the unit. *)

val returns_of : Cparse.Ast.fundef -> Cparse.Ast.stmt list

val labels_of : Cparse.Ast.fundef -> string list

val toplevel_vars_of : Cparse.Ast.fundef -> (string * Cparse.Ast.ty) list
(** Parameters plus body-top-level locals. *)

val decls_by_block : Cparse.Ast.fundef -> Cparse.Ast.var_decl list list
(** Declarations grouped by the block containing them — the scoping
    information SwitchInitExpr-style mutators must respect. *)
