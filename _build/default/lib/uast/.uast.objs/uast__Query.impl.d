lib/uast/query.ml: Ast Buffer Cparse List Pretty String Visit
