lib/uast/check.mli: Cparse
