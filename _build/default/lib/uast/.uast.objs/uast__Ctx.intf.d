lib/uast/ctx.mli: Cparse
