lib/uast/ctx.ml: Ast Ast_ids Cparse Fmt Hashtbl Rng Typecheck
