lib/uast/check.ml: Ast Cparse String Typecheck
