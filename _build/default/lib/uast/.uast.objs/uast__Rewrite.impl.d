lib/uast/rewrite.ml: Ast Cparse List Option String Visit
