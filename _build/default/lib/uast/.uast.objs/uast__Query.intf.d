lib/uast/query.mli: Cparse
