lib/uast/rewrite.mli: Cparse
