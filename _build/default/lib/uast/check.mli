(** μAST semantic-checking APIs (paper Fig. 6).

    These let a mutator verify that a mutation is type-valid {e before}
    applying it — the source of the generated mutators' high
    compilable-mutant ratio. *)

val check_binop : Cparse.Ast.binop -> Cparse.Ast.ty -> Cparse.Ast.ty -> bool
(** [check_binop op lhs rhs]: can [op] be applied to operands of these
    types (after array decay)?  The paper's [checkBinop]. *)

val check_assignment : dst:Cparse.Ast.ty -> src:Cparse.Ast.ty -> bool
(** Can a value of [src] be assigned to [dst] without a compile error
    (warnings are acceptable)?  The paper's [checkAssignment]. *)

val check_unop : Cparse.Ast.unop -> Cparse.Ast.ty -> bool
(** Can the unary operator apply to the type? *)

val check_condition : Cparse.Ast.ty -> bool
(** Can the type appear as an [if]/loop condition (scalar)? *)

val compatible_for_swap : Cparse.Ast.ty -> Cparse.Ast.ty -> bool
(** Symmetric assignability for swap-style mutations; pointers are
    excluded to avoid aliasing surprises. *)
