(** μAST rewriting APIs.

    Type-safe AST analogues of the paper's Rewriter + helper APIs
    ([ReplaceText], [removeParmFromFuncDecl], [removeArgFromExpr], ...).
    All functions are pure: they return a new translation unit. *)

val replace_expr : Cparse.Ast.tu -> eid:int -> repl:Cparse.Ast.expr -> Cparse.Ast.tu
val replace_stmt : Cparse.Ast.tu -> sid:int -> repl:Cparse.Ast.stmt -> Cparse.Ast.tu
val remove_stmt : Cparse.Ast.tu -> sid:int -> Cparse.Ast.tu

val map_stmt_lists :
  Cparse.Ast.tu -> f:(Cparse.Ast.stmt -> Cparse.Ast.stmt list) -> Cparse.Ast.tu
(** Rewrite statement lists everywhere (function bodies, blocks, case
    bodies): [f] maps each statement to its replacement list — the
    workhorse behind insertion and deletion. *)

val insert_before :
  Cparse.Ast.tu -> sid:int -> stmts:Cparse.Ast.stmt list -> Cparse.Ast.tu

val insert_after :
  Cparse.Ast.tu -> sid:int -> stmts:Cparse.Ast.stmt list -> Cparse.Ast.tu

val delete_stmt : Cparse.Ast.tu -> sid:int -> Cparse.Ast.tu
(** Remove the statement from its enclosing list (no null residue). *)

val append_to_function :
  Cparse.Ast.tu -> fname:string -> stmts:Cparse.Ast.stmt list -> Cparse.Ast.tu

val prepend_to_function :
  Cparse.Ast.tu -> fname:string -> stmts:Cparse.Ast.stmt list -> Cparse.Ast.tu

val replace_function :
  Cparse.Ast.tu -> fname:string -> f:(Cparse.Ast.fundef -> Cparse.Ast.fundef) -> Cparse.Ast.tu

val insert_global_before_functions :
  Cparse.Ast.tu -> g:Cparse.Ast.global -> Cparse.Ast.tu
(** Place a global before the first function so every function sees it. *)

val append_global : Cparse.Ast.tu -> g:Cparse.Ast.global -> Cparse.Ast.tu

val remove_param : Cparse.Ast.tu -> fname:string -> index:int -> Cparse.Ast.tu
(** μAST [removeParmFromFuncDecl]: drop a parameter and the matching
    argument at every call site. *)

val remove_arg : Cparse.Ast.tu -> eid:int -> index:int -> Cparse.Ast.tu
(** μAST [removeArgFromExpr]: call-site-local argument removal. *)

val rename_var_in_function :
  Cparse.Ast.tu -> fname:string -> old_name:string -> new_name:string -> Cparse.Ast.tu
(** Rename a variable's declarations, parameter, and uses within one
    function. *)
