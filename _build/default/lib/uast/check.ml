(* μAST semantic-checking APIs (paper Fig. 6: checkBinop, checkAssignment).

   These let mutators verify a mutation is type-valid *before* applying it,
   which is what gives the generated mutators their high compilable-mutant
   ratio. *)

open Cparse
open Ast

(* μAST: checkBinop — can [op] be applied to operands of these types? *)
let check_binop (op : binop) (lhs : ty) (rhs : ty) : bool =
  let lhs = Typecheck.decay lhs and rhs = Typecheck.decay rhs in
  match op with
  | Add ->
    (is_arith_ty lhs && is_arith_ty rhs)
    || (is_pointer_ty lhs && is_integer_ty rhs)
    || (is_integer_ty lhs && is_pointer_ty rhs)
  | Sub ->
    (is_arith_ty lhs && is_arith_ty rhs)
    || (is_pointer_ty lhs && is_integer_ty rhs)
    || (is_pointer_ty lhs && is_pointer_ty rhs)
  | Mul | Div -> is_arith_ty lhs && is_arith_ty rhs
  | Mod | Shl | Shr | Band | Bxor | Bor ->
    is_integer_ty lhs && is_integer_ty rhs
  | Lt | Gt | Le | Ge | Eq | Ne ->
    (is_arith_ty lhs && is_arith_ty rhs)
    || (is_pointer_ty lhs && is_pointer_ty rhs)
  | Land | Lor -> is_scalar_ty lhs && is_scalar_ty rhs

(* μAST: checkAssignment — can a value of [src] be assigned to [dst]
   without a compile error (warnings are fine)? *)
let check_assignment ~(dst : ty) ~(src : ty) : bool =
  let dst = Typecheck.decay dst and src = Typecheck.decay src in
  match dst, src with
  | t1, t2 when is_arith_ty t1 && is_arith_ty t2 -> true
  | Tptr _, Tptr _ -> true
  | Tptr _, t when is_integer_ty t -> true
  | t, Tptr _ when is_integer_ty t -> true
  | Tstruct a, Tstruct b | Tunion a, Tunion b -> String.equal a b
  | _ -> false

let check_unop (op : unop) (ty : ty) : bool =
  let ty = Typecheck.decay ty in
  match op with
  | Neg | Uplus -> is_arith_ty ty
  | Bitnot -> is_integer_ty ty
  | Lognot -> is_scalar_ty ty

(* Can [ty] appear as a condition? *)
let check_condition (ty : ty) : bool = is_scalar_ty (Typecheck.decay ty)

(* Two variable types are "compatible" for swap-style mutations when a
   value of each can initialise the other. *)
let compatible_for_swap a b =
  check_assignment ~dst:a ~src:b && check_assignment ~dst:b ~src:a
  && not (is_pointer_ty a) && not (is_pointer_ty b)
