(* Expression mutators: casts, conditionals, expression copying. *)

open Cparse
open Ast
open Mk

let copy_expr_mut =
  Mutator.make ~name:"CopyExpr"
    ~description:
      "Copy one expression over another expression of an assignable type \
       elsewhere in the program."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      let pure_arith e =
        is_arith_ty (ty_of ctx e) && is_pure e
        && (match e.ek with Init_list _ -> false | _ -> true)
      in
      let candidates = Visit.collect_exprs pure_arith ctx.Uast.Ctx.tu in
      if List.length candidates < 2 then None
      else begin
        let* src = Uast.Ctx.rand_element ctx candidates in
        let targets = List.filter (fun e -> e.eid <> src.eid) candidates in
        let* dst = Uast.Ctx.rand_element ctx targets in
        if Uast.Check.check_assignment ~dst:(ty_of ctx dst) ~src:(ty_of ctx src)
        then Some (Visit.replace_expr ctx.Uast.Ctx.tu ~eid:dst.eid ~repl:src)
        else None
      end)

let insert_cast =
  Mutator.make ~name:"InsertExplicitCast"
    ~description:
      "Insert an explicit cast to a randomly chosen arithmetic type around \
       an arithmetic expression."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          is_arith_ty (ty_of ctx e)
          && (match e.ek with Init_list _ | Str_lit _ -> false | _ -> true))
        ~f:(fun e ->
          let tys =
            [ Tint (Ichar, true); Tint (Ishort, true); Tint (Iint, true);
              Tint (Iint, false); Tint (Ilong, true); Tint (Ilonglong, true);
              Tfloat; Tdouble ]
          in
          let ty = Rng.choose ctx.Uast.Ctx.rng tys in
          Some (mk_expr (Cast (ty, { e with eid = no_id })))))

let remove_cast =
  Mutator.make ~name:"RemoveExplicitCast"
    ~description:"Remove an explicit cast, keeping the casted expression."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Cast (_, { ek = Init_list _; _ }) -> false (* compound literal *)
          | Cast _ -> true
          | _ -> false)
        ~f:(fun e -> match e.ek with Cast (_, a) -> Some a | _ -> None))

let change_cast_type =
  Mutator.make ~name:"ChangeCastType"
    ~description:"Change the target type of an existing cast expression."
    ~category:Expression ~provenance:Unsupervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Cast (t, { ek = Init_list _; _ }) -> ignore t; false
          | Cast (t, _) -> is_arith_ty t
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Cast (_, a) ->
            let tys =
              [ Tint (Ichar, true); Tint (Ichar, false); Tint (Ishort, true);
                Tint (Iint, true); Tint (Ilong, true); Tint (Ilonglong, false);
                Tfloat; Tdouble; Tbool ]
            in
            Some { e with ek = Cast (Rng.choose ctx.Uast.Ctx.rng tys, a) }
          | _ -> None))

let cast_chain =
  Mutator.make ~name:"BuildCastChain"
    ~description:
      "Expand a cast (T)e into a chain of casts through an intermediate \
       type, (T)(U)e, probing conversion lowering."
    ~category:Expression ~provenance:Unsupervised ~creative:true
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Cast (t, { ek = Init_list _; _ }) -> ignore t; false
          | Cast (t, _) -> is_arith_ty t
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Cast (t, a) ->
            let mid =
              Rng.choose ctx.Uast.Ctx.rng
                [ Tint (Ichar, true); Tint (Ishort, false); Tfloat; Tint (Ilonglong, true) ]
            in
            Some { e with ek = Cast (t, mk_expr (Cast (mid, a))) }
          | _ -> None))

let cond_swap_arms =
  Mutator.make ~name:"SwapConditionalArms"
    ~description:
      "Swap the two arms of a conditional expression while negating its \
       condition, preserving semantics with inverted control flow."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e -> match e.ek with Cond _ -> true | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Cond (c, t, f) -> Some { e with ek = Cond (unop Lognot c, f, t) }
          | _ -> None))

let cond_collapse =
  Mutator.make ~name:"CollapseConditionalToArm"
    ~description:
      "Collapse a conditional expression to one of its arms, removing the \
       branch."
    ~category:Expression ~provenance:Unsupervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Cond (c, _, _) -> is_pure c
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Cond (_, t, f) -> Some (if Uast.Ctx.flip ctx 0.5 then t else f)
          | _ -> None))

let wrap_in_conditional =
  Mutator.make ~name:"WrapExpressionInConditional"
    ~description:
      "Wrap an expression e into the degenerate conditional (1 ? e : d) \
       where d is a default of the same type."
    ~category:Expression ~provenance:Supervised ~creative:true
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          is_arith_ty (ty_of ctx e) && is_pure e
          && (match e.ek with Init_list _ | Str_lit _ -> false | _ -> true))
        ~f:(fun e ->
          let d = default_of_ty (ty_of ctx e) in
          Some (mk_expr (Cond (int_lit 1, { e with eid = no_id }, d)))))

let duplicate_into_cond =
  Mutator.make ~name:"DuplicateExpressionIntoConditional"
    ~description:
      "Duplicate an expression into both arms of a fresh opaque \
       conditional: e becomes (x ? e : e) for an in-scope scalar x."
    ~category:Expression ~provenance:Unsupervised ~creative:true
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          is_arith_ty (ty_of ctx e) && is_pure e
          && (match e.ek with Init_list _ | Str_lit _ -> false | _ -> true))
        ~f:(fun e ->
          let e1 = { e with eid = no_id } in
          let e2 = { e with eid = no_id } in
          Some (mk_expr (Cond (int_lit 1, e1, e2)))))

let sizeof_to_literal =
  Mutator.make ~name:"FoldSizeofToLiteral"
    ~description:"Replace a sizeof(type) expression by its constant value."
    ~category:Expression ~provenance:Unsupervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e -> match e.ek with Sizeof_ty _ -> true | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Sizeof_ty t -> Some (int_lit (sizeof_ty t))
          | _ -> None))

let comma_expand_statement =
  Mutator.make ~name:"MergeStatementsIntoComma"
    ~description:
      "Merge two adjacent expression statements into a single comma \
       expression statement."
    ~category:Expression ~provenance:Supervised ~creative:true
    (fun ctx ->
      (* find a block containing two adjacent expression statements *)
      let target = ref None in
      Visit.iter_tu ctx.Uast.Ctx.tu ~fs:(fun s ->
          match s.sk with
          | Sblock ss ->
            let rec scan = function
              | ({ sk = Sexpr _; _ } as a) :: ({ sk = Sexpr _; _ } as b) :: _ ->
                if !target = None then target := Some (s.sid, a, b)
              | _ :: rest -> scan rest
              | [] -> ()
            in
            scan ss
          | _ -> ());
      let* block_sid, a, b = !target in
      let merged =
        match a.sk, b.sk with
        | Sexpr ea, Sexpr eb -> sexpr (mk_expr (Comma (ea, eb)))
        | _ -> a
      in
      let tu =
        Visit.map_tu ctx.Uast.Ctx.tu ~fs:(fun s ->
            if s.sid = block_sid then
              match s.sk with
              | Sblock ss ->
                let rec rebuild = function
                  | x :: y :: rest when x.sid = a.sid && y.sid = b.sid ->
                    merged :: rest
                  | x :: rest -> x :: rebuild rest
                  | [] -> []
                in
                { s with sk = Sblock (rebuild ss) }
              | _ -> s
            else s)
      in
      Some tu)

let all : Mutator.t list =
  [
    copy_expr_mut;
    insert_cast;
    remove_cast;
    change_cast_type;
    cast_chain;
    cond_swap_arms;
    cond_collapse;
    wrap_in_conditional;
    duplicate_into_cond;
    sizeof_to_literal;
    comma_expand_statement;
  ]
