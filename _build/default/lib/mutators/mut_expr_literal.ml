(* Expression mutators targeting literals. *)

open Cparse
open Ast
open Mk

let is_int_lit e = match e.ek with Int_lit _ -> true | _ -> false

let modify_integer_literal =
  Mutator.make ~name:"ModifyIntegerLiteral"
    ~description:
      "Modify an integer literal into a nearby value (off-by-one, doubled, \
       or halved), perturbing constant folding and range analyses."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      rewrite_one_expr ctx ~pred:is_int_lit ~f:(fun e ->
          match e.ek with
          | Int_lit (v, k, u) ->
            let v' =
              match Uast.Ctx.rand_int ctx 4 with
              | 0 -> Int64.add v 1L
              | 1 -> Int64.sub v 1L
              | 2 -> Int64.mul v 2L
              | _ -> Int64.div v 2L
            in
            Some { e with ek = Int_lit (v', k, u) }
          | _ -> None))

let replace_literal_with_random =
  Mutator.make ~name:"ReplaceLiteralWithRandomValue"
    ~description:
      "Replace an integer literal with a freshly sampled random value."
    ~category:Expression ~provenance:Unsupervised
    (fun ctx ->
      rewrite_one_expr ctx ~pred:is_int_lit ~f:(fun e ->
          match e.ek with
          | Int_lit (_, k, u) ->
            let v = Int64.of_int (Uast.Ctx.rand_int ctx 65536 - 32768) in
            Some { e with ek = Int_lit (v, k, u) }
          | _ -> None))

let negate_integer_literal =
  Mutator.make ~name:"NegateIntegerLiteral"
    ~description:"Negate the value of an integer literal."
    ~category:Expression ~provenance:Unsupervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with Int_lit (v, _, _) -> v <> 0L | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Int_lit (v, k, u) -> Some { e with ek = Int_lit (Int64.neg v, k, u) }
          | _ -> None))

let literal_to_boundary =
  Mutator.make ~name:"ReplaceLiteralWithBoundaryValue"
    ~description:
      "Replace an integer literal with a type-boundary value such as \
       INT_MAX, INT_MIN, 0, or a power of two, probing overflow handling."
    ~category:Expression ~provenance:Supervised ~creative:true
    (fun ctx ->
      rewrite_one_expr ctx ~pred:is_int_lit ~f:(fun e ->
          match e.ek with
          | Int_lit (_, k, u) ->
            let boundaries =
              [ 0L; 1L; -1L; 127L; 128L; 255L; 256L; 32767L; 32768L;
                65535L; 65536L; 2147483647L; -2147483648L; 4294967295L ]
            in
            let v = Rng.choose ctx.Uast.Ctx.rng boundaries in
            Some { e with ek = Int_lit (v, k, u) }
          | _ -> None))

let literal_to_expression =
  Mutator.make ~name:"ExpandLiteralToExpression"
    ~description:
      "Expand an integer literal N into an equivalent constant expression \
       (e.g. (N+1)-1 or N^0), feeding extra work to constant folding."
    ~category:Expression ~provenance:Unsupervised ~creative:true
    (fun ctx ->
      rewrite_one_expr ctx ~pred:is_int_lit ~f:(fun e ->
          match e.ek with
          | Int_lit (v, k, u) ->
            let lit x = mk_expr (Int_lit (x, k, u)) in
            let repl =
              match Uast.Ctx.rand_int ctx 3 with
              | 0 -> binop Sub (binop Add (lit v) (int_lit 1)) (int_lit 1)
              | 1 -> binop Bxor (lit v) (int_lit 0)
              | _ -> binop Add (lit (Int64.div v 2L)) (lit (Int64.sub v (Int64.div v 2L)))
            in
            Some repl
          | _ -> None))

let char_to_int_literal =
  Mutator.make ~name:"ConvertCharLiteralToInt"
    ~description:"Replace a character literal with its integer code."
    ~category:Expression ~provenance:Unsupervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e -> match e.ek with Char_lit _ -> true | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Char_lit c -> Some (int_lit (Char.code c))
          | _ -> None))

let int_to_char_literal =
  Mutator.make ~name:"ConvertIntToCharLiteral"
    ~description:
      "Replace a small printable integer literal with the equivalent \
       character literal."
    ~category:Expression ~provenance:Unsupervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Int_lit (v, _, _) -> v >= 32L && v < 127L
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Int_lit (v, _, _) ->
            Some (mk_expr (Char_lit (Char.chr (Int64.to_int v))))
          | _ -> None))

let float_precision_change =
  Mutator.make ~name:"SwitchFloatLiteralPrecision"
    ~description:
      "Switch a floating-point literal between float and double precision \
       (toggling the f suffix)."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e -> match e.ek with Float_lit _ -> true | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Float_lit (v, d) -> Some { e with ek = Float_lit (v, not d) }
          | _ -> None))

let shift_amount_mutate =
  Mutator.make ~name:"ModifyShiftAmount"
    ~description:
      "Modify the constant shift amount of a shift expression, including \
       to boundary values like 0, 31, or 63."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Binop ((Shl | Shr), _, { ek = Int_lit _; _ }) -> true
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Binop (op, a, _) ->
            let amounts = [ 0; 1; 7; 8; 15; 16; 31; 32; 63 ] in
            Some { e with ek = Binop (op, a, int_lit (Rng.choose ctx.Uast.Ctx.rng amounts)) }
          | _ -> None))

let literal_to_sizeof =
  Mutator.make ~name:"ReplaceLiteralWithSizeof"
    ~description:
      "Replace an integer literal whose value matches the size of a basic \
       type with the corresponding sizeof expression."
    ~category:Expression ~provenance:Unsupervised 
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Int_lit (v, _, _) -> List.mem v [ 1L; 2L; 4L; 8L ]
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Int_lit (v, _, _) ->
            let ty =
              match v with
              | 1L -> Tint (Ichar, true)
              | 2L -> Tint (Ishort, true)
              | 4L -> Tint (Iint, true)
              | _ -> Tint (Ilong, true)
            in
            Some (mk_expr (Cast (Tint (Iint, true), mk_expr (Sizeof_ty ty))))
          | _ -> None))

let all : Mutator.t list =
  [
    modify_integer_literal;
    replace_literal_with_random;
    negate_integer_literal;
    literal_to_boundary;
    literal_to_expression;
    char_to_int_literal;
    int_to_char_literal;
    float_precision_change;
    shift_amount_mutate;
    literal_to_sizeof;
  ]
