(* Expression mutators targeting memory access: array subscripts, struct
   members, pointers. *)

open Cparse
open Ast
open Mk

let modify_array_index =
  Mutator.make ~name:"ModifyArrayIndex"
    ~description:
      "Modify a constant array subscript to another in-bounds index of the \
       same array."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Index (a, { ek = Int_lit _; _ }) -> (
            match Uast.Ctx.type_of ctx a with
            | Some (Tarray (_, Some n)) -> n > 1
            | _ -> false)
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Index (a, _) ->
            let n =
              match Uast.Ctx.type_of ctx a with
              | Some (Tarray (_, Some n)) -> n
              | _ -> 1
            in
            Some { e with ek = Index (a, int_lit (Uast.Ctx.rand_int ctx n)) }
          | _ -> None))

let index_to_zero =
  Mutator.make ~name:"ResetArrayIndexToZero"
    ~description:"Reset an array subscript expression to index zero."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Index (_, { ek = Int_lit (v, _, _); _ }) -> v <> 0L
          | Index (_, { ek = Ident _; _ }) -> true
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Index (a, _) -> Some { e with ek = Index (a, int_lit 0) }
          | _ -> None))

let index_arithmetic =
  Mutator.make ~name:"ComplicateArrayIndex"
    ~description:
      "Rewrite an array subscript i into an equivalent expression (i + 1 - \
       1), exercising index simplification and bounds analyses."
    ~category:Expression ~provenance:Unsupervised 
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Index (_, i) -> is_int_expr ctx i && is_pure i
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Index (a, i) ->
            Some
              { e with ek = Index (a, binop Sub (binop Add i (int_lit 1)) (int_lit 1)) }
          | _ -> None))

let member_to_arrow =
  Mutator.make ~name:"ConvertMemberToArrowAccess"
    ~description:
      "Convert a struct member access through a dereferenced pointer, \
       (*p).f, into the arrow form p->f."
    ~category:Expression ~provenance:Unsupervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Member ({ ek = Deref _; _ }, _) -> true
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Member ({ ek = Deref p; _ }, fld) -> Some { e with ek = Arrow (p, fld) }
          | _ -> None))

let arrow_to_member =
  Mutator.make ~name:"ConvertArrowToMemberAccess"
    ~description:
      "Convert an arrow access p->f into the explicit dereference form \
       (*p).f."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e -> match e.ek with Arrow _ -> true | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Arrow (p, fld) -> Some { e with ek = Member (mk_expr (Deref p), fld) }
          | _ -> None))

let deref_addrof_wrap =
  Mutator.make ~name:"WrapLvalueInDerefAddrof"
    ~description:
      "Wrap an lvalue x into the equivalent *(&x), adding a pointer \
       round-trip the optimizer must see through."
    ~category:Expression ~provenance:Supervised ~creative:true
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Ident n -> (
            (* only variables, not function designators or array names *)
            match Uast.Ctx.type_of ctx e with
            | Some t -> is_scalar_ty t && not (is_pointer_ty t)
            | None -> false && n = n)
          | _ -> false)
        ~f:(fun e -> Some (mk_expr (Deref (mk_expr (Addrof { e with eid = no_id }))))))

let simplify_deref_addrof =
  Mutator.make ~name:"SimplifyDerefAddrof"
    ~description:"Simplify *(&x) back into the direct access x."
    ~category:Expression ~provenance:Unsupervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Deref { ek = Addrof _; _ } -> true
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Deref { ek = Addrof inner; _ } -> Some inner
          | _ -> None))

let subscript_commute =
  Mutator.make ~name:"CommuteArraySubscript"
    ~description:
      "Rewrite a[i] into the equivalent-but-unusual i[a] form, probing \
       front-end normalization of subscript expressions."
    ~category:Expression ~provenance:Unsupervised ~creative:true
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Index (a, i) ->
            is_pointer_ty (ty_of ctx a) && is_integer_ty (ty_of ctx i)
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Index (a, i) -> Some { e with ek = Index (i, a) }
          | _ -> None))

let all : Mutator.t list =
  [
    modify_array_index;
    index_to_zero;
    index_arithmetic;
    member_to_arrow;
    arrow_to_member;
    deref_addrof_wrap;
    simplify_deref_addrof;
    subscript_commute;
  ]
