(* Type mutators — the smallest category in the paper (6 of 118) but the
   one behind several of its headline bugs (GCC #111819/#111820, Clang
   #69213). *)

open Cparse
open Ast
open Mk

(* Paper example (Clang #69213): StructToInt. *)
let struct_to_int =
  Mutator.make ~name:"StructToInt"
    ~description:
      "Change a struct type annotation to int at a declaration or cast, \
       leaving member accesses and initializer lists behind for the \
       front-end to cope with."
    ~category:Type_ ~provenance:Unsupervised ~creative:true
    (fun ctx ->
      (* Prefer casts of compound literals: (struct s){...} -> (int){...} *)
      let cast_sites =
        Visit.collect_exprs
          (fun e ->
            match e.ek with
            | Cast ((Tstruct _ | Tunion _), _) -> true
            | _ -> false)
          ctx.Uast.Ctx.tu
      in
      match Uast.Ctx.rand_element ctx cast_sites with
      | Some site ->
        Some
          (Visit.map_tu ctx.Uast.Ctx.tu ~fe:(fun e ->
               if e.eid = site.eid then
                 match e.ek with
                 | Cast (_, inner) -> { e with ek = Cast (Tint (Iint, true), inner) }
                 | _ -> e
               else e))
      | None ->
        (* otherwise retype a struct-typed local as int *)
        let locals =
          List.filter
            (fun (v, _) ->
              match v.v_ty with Tstruct _ | Tunion _ -> true | _ -> false)
            (Uast.Query.local_var_decls ctx.Uast.Ctx.tu)
        in
        let* v, _ = Uast.Ctx.rand_element ctx locals in
        let name = v.v_name in
        let retype v =
          if String.equal v.v_name name then { v with v_ty = Tint (Iint, true) }
          else v
        in
        Some
          (Visit.map_tu ctx.Uast.Ctx.tu ~fs:(fun s ->
               match s.sk with
               | Sdecl vs -> { s with sk = Sdecl (List.map retype vs) }
               | _ -> s)))

(* Paper example (GCC #111819): DecaySmallStruct. *)
let decay_small_struct =
  Mutator.make ~name:"DecaySmallStruct"
    ~description:
      "Cast a small struct variable into a long long variable and change \
       all references into pointer arithmetic between the long long \
       variable and field offsets."
    ~category:Type_ ~provenance:Supervised ~creative:true
    (fun ctx ->
      let tu = ctx.Uast.Ctx.tu in
      let struct_fields tag =
        List.find_map
          (function
            | Gstruct (t, fields) when String.equal t tag -> Some fields
            | _ -> None)
          tu.globals
      in
      let locals =
        List.filter_map
          (fun (v, fd) ->
            match v.v_ty with
            | Tstruct tag -> (
              match struct_fields tag with
              | Some fields
                when List.for_all (fun f -> is_arith_ty f.fld_ty) fields
                     && List.length fields <= 2 ->
                Some (v, fd, fields)
              | _ -> None)
            | _ -> None)
          (Uast.Query.local_var_decls tu)
      in
      let* v, fd, fields = Uast.Ctx.rand_element ctx locals in
      let combined = Uast.Ctx.generate_unique_name ctx "combinedVar" in
      (* the struct decl becomes a long long decl *)
      let retype vd =
        if String.equal vd.v_name v.v_name then
          { vd with v_name = combined; v_ty = Tint (Ilonglong, true); v_init = None }
        else vd
      in
      let tu =
        Visit.map_tu tu ~fs:(fun s ->
            match s.sk with
            | Sdecl vs -> { s with sk = Sdecl (List.map retype vs) }
            | _ -> s)
      in
      (* member accesses x.f become casts over pointer arithmetic on a
         char-pointer to &combinedVar plus a field offset — the paper's
         exact shape *)
      let offset_of fld =
        let rec go acc = function
          | [] -> acc
          | f :: rest ->
            if String.equal f.fld_name fld then acc
            else go (acc + sizeof_ty f.fld_ty) rest
        in
        go 0 fields
      in
      let field_ty fld =
        match List.find_opt (fun f -> String.equal f.fld_name fld) fields with
        | Some f -> f.fld_ty
        | None -> Tint (Iint, true)
      in
      let rewrite_access e =
        match e.ek with
        | Member ({ ek = Ident n; _ }, fld) when String.equal n v.v_name ->
          let ptr =
            binop Add
              (mk_expr
                 (Cast (Tptr (Tint (Ichar, true)), mk_expr (Addrof (ident combined)))))
              (int_lit (offset_of fld))
          in
          mk_expr (Deref (mk_expr (Cast (Tptr (field_ty fld), ptr))))
        | _ -> e
      in
      let tu =
        Uast.Rewrite.replace_function tu ~fname:fd.f_name ~f:(fun fd ->
            Visit.map_fundef ~fe:rewrite_access ~fs:(fun s -> s) fd)
      in
      Some tu)

(* Paper example (GCC #111820): ReduceArrayDimension. *)
let reduce_array_dimension =
  Mutator.make ~name:"ReduceArrayDimension"
    ~description:
      "Simplify an array variable into a zero-dimension scalar and update \
       all of its subscripted references."
    ~category:Type_ ~provenance:Supervised ~creative:true
    (fun ctx ->
      let arrays =
        List.filter
          (fun v ->
            match v.v_ty with
            | Tarray (t, Some _) -> is_arith_ty t
            | _ -> false)
          (Visit.global_vars ctx.Uast.Ctx.tu)
      in
      let* v = Uast.Ctx.rand_element ctx arrays in
      let elt = match v.v_ty with Tarray (t, _) -> t | t -> t in
      let globals =
        List.map
          (function
            | Gvar g when String.equal g.v_name v.v_name ->
              Gvar { g with v_ty = elt; v_init = None }
            | g -> g)
          ctx.Uast.Ctx.tu.globals
      in
      let tu =
        Visit.map_tu { globals } ~fe:(fun e ->
            match e.ek with
            | Index ({ ek = Ident n; _ }, _) when String.equal n v.v_name ->
              ident v.v_name
            | _ -> e)
      in
      Some tu)

let expand_to_array =
  Mutator.make ~name:"ExpandScalarToArray"
    ~description:
      "Expand a scalar global variable into a one-element array, rewriting \
       every use into a subscripted access."
    ~category:Type_ ~provenance:Unsupervised
    (fun ctx ->
      let scalars =
        List.filter
          (fun v -> is_arith_ty v.v_ty)
          (Visit.global_vars ctx.Uast.Ctx.tu)
      in
      let* v = Uast.Ctx.rand_element ctx scalars in
      let globals =
        List.map
          (function
            | Gvar g when String.equal g.v_name v.v_name ->
              Gvar
                {
                  g with
                  v_ty = Tarray (v.v_ty, Some 1);
                  v_init =
                    Option.map (fun i -> mk_expr (Init_list [ i ])) g.v_init;
                }
            | g -> g)
          ctx.Uast.Ctx.tu.globals
      in
      (* every bare use g becomes g[0] *)
      let tu =
        Visit.map_tu { globals } ~fe:(fun e ->
            match e.ek with
            | Ident n when String.equal n v.v_name ->
              mk_expr (Index (ident n, int_lit 0))
            | _ -> e)
      in
      (* avoid double-wrapping the indices we just created: g[0][0] *)
      let tu =
        Visit.map_tu tu ~fe:(fun e ->
            match e.ek with
            | Index ({ ek = Index (({ ek = Ident n; _ } as base), z); _ }, _)
              when String.equal n v.v_name ->
              { e with ek = Index (base, z) }
            | _ -> e)
      in
      Some tu)

let flip_signedness =
  Mutator.make ~name:"FlipIntegerSignedness"
    ~description:
      "Flip the signedness of an integer variable's type, changing \
       comparison and division semantics downstream."
    ~category:Type_ ~provenance:Supervised
    (fun ctx ->
      let locals =
        List.filter
          (fun (v, _) -> match v.v_ty with Tint _ -> true | _ -> false)
          (Uast.Query.local_var_decls ctx.Uast.Ctx.tu)
      in
      let* v, _ = Uast.Ctx.rand_element ctx locals in
      let name = v.v_name in
      let flip vd =
        if String.equal vd.v_name name then
          match vd.v_ty with
          | Tint (k, s) -> { vd with v_ty = Tint (k, not s) }
          | _ -> vd
        else vd
      in
      Some
        (Visit.map_tu ctx.Uast.Ctx.tu ~fs:(fun s ->
             match s.sk with
             | Sdecl vs -> { s with sk = Sdecl (List.map flip vs) }
             | Sfor (Some (Fi_decl vs), c, st, b) ->
               { s with sk = Sfor (Some (Fi_decl (List.map flip vs)), c, st, b) }
             | _ -> s)))

(* Paper example (GCC #111820): AggregateMemberToScalarVariable. *)
let aggregate_member_to_scalar =
  Mutator.make ~name:"AggregateMemberToScalarVariable"
    ~description:
      "Transform a constant array subscript expression (like r[0]) into a \
       fresh scalar variable, adding a declaration for it."
    ~category:Type_ ~provenance:Supervised ~creative:true
    (fun ctx ->
      let sites =
        Uast.Query.exprs_in_functions ctx.Uast.Ctx.tu ~pred:(fun e ->
            match e.ek with
            | Index ({ ek = Ident _; _ }, { ek = Int_lit _; _ }) ->
              is_arith_ty (ty_of ctx e)
            | _ -> false)
      in
      let* site = Uast.Ctx.rand_element ctx sites in
      let arr_name, idx =
        match site.node.ek with
        | Index ({ ek = Ident n; _ }, { ek = Int_lit (v, _, _); _ }) ->
          (n, Int64.to_int v)
        | _ -> ("", 0)
      in
      let scalar =
        Uast.Ctx.generate_unique_name ctx (Fmt.str "%s_%d" arr_name idx)
      in
      let ty = ty_of ctx site.node in
      (* rewrite every occurrence of arr[idx] in that function *)
      let tu =
        Uast.Rewrite.replace_function ctx.Uast.Ctx.tu ~fname:site.func.f_name
          ~f:(fun fd ->
            Visit.map_fundef
              ~fe:(fun e ->
                match e.ek with
                | Index ({ ek = Ident n; _ }, { ek = Int_lit (v, _, _); _ })
                  when String.equal n arr_name && Int64.to_int v = idx ->
                  ident scalar
                | _ -> e)
              ~fs:(fun s -> s)
              fd)
      in
      let tu =
        Uast.Rewrite.prepend_to_function tu ~fname:site.func.f_name
          ~stmts:[ decl_stmt ~name:scalar ~ty (Some (default_of_ty ty)) ]
      in
      Some tu)

let all : Mutator.t list =
  [
    struct_to_int;
    decay_small_struct;
    reduce_array_dimension;
    expand_to_array;
    flip_signedness;
    aggregate_member_to_scalar;
  ]
