(* Function mutators, part 2: body-level mutations (inlining, outlining,
   body surgery).  Includes the paper's SimpleUninliner. *)

open Cparse
open Ast
open Mk

let non_main fd = not (String.equal fd.f_name "main")

(* Does a statement subtree reference only global variables and functions
   (no locals/params of the enclosing function)? *)
let stmts_use_only_globals (tu : tu) (fd : fundef) (ss : stmt list) : bool =
  let locals = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace locals p.p_name ()) fd.f_params;
  List.iter
    (Visit.iter_stmt
       ~fe:(fun _ -> ())
       ~fs:(fun s ->
         match s.sk with
         | Sdecl vs -> List.iter (fun v -> Hashtbl.replace locals v.v_name ()) vs
         | Sfor (Some (Fi_decl vs), _, _, _) ->
           List.iter (fun v -> Hashtbl.replace locals v.v_name ()) vs
         | _ -> ()))
    fd.f_body;
  let funcs = Hashtbl.create 16 in
  List.iter
    (fun f -> Hashtbl.replace funcs f.f_name ())
    (Visit.functions tu);
  let ok = ref true in
  List.iter
    (Visit.iter_stmt
       ~fe:(fun e ->
         match e.ek with
         | Ident n when Hashtbl.mem locals n && not (Hashtbl.mem funcs n) ->
           ok := false
         | _ -> ())
       ~fs:(fun s ->
         match s.sk with
         | Sreturn _ | Sbreak | Scontinue | Sgoto _ -> ok := false
         | Sdecl _ -> ok := false
         | _ -> ()))
    ss;
  !ok

(* Paper example (Ms, creative): SimpleUninliner. *)
let simple_uninliner =
  Mutator.make ~name:"SimpleUninliner"
    ~description:"Turn a block of code into a function call."
    ~category:Function ~provenance:Supervised ~creative:true
    (fun ctx ->
      let tu = ctx.Uast.Ctx.tu in
      let candidates = ref [] in
      Visit.iter_tu_in_functions tu ~f:(fun fd ->
          List.iter
            (Visit.iter_stmt
               ~fe:(fun _ -> ())
               ~fs:(fun s ->
                 match s.sk with
                 | Sblock ss
                   when ss <> [] && stmts_use_only_globals tu fd ss ->
                   candidates := (fd, s, ss) :: !candidates
                 | _ -> ()))
            fd.f_body);
      let* _fd, block, ss = Uast.Ctx.rand_element ctx !candidates in
      let fname = Uast.Ctx.generate_unique_name ctx "uninlined" in
      let newf =
        {
          f_id = no_id;
          f_name = fname;
          f_ret = Tvoid;
          f_params = [];
          f_variadic = false;
          f_body = List.map (fun s -> { s with sid = no_id }) ss;
          f_static = false;
          f_inline = false;
        }
      in
      let tu =
        Visit.replace_stmt tu ~sid:block.sid ~repl:(sexpr (call (ident fname) []))
      in
      Some (Uast.Rewrite.insert_global_before_functions tu ~g:(Gfun newf)))

(* Inline a call to a "simple" function: body is a single return of a pure
   expression over its parameters and globals. *)
let inline_function_call =
  Mutator.make ~name:"InlineSimpleFunctionCall"
    ~description:
      "Inline a call to a function whose body is a single return of a pure \
       expression, substituting arguments for parameters."
    ~category:Function ~provenance:Supervised ~creative:true
    (fun ctx ->
      let tu = ctx.Uast.Ctx.tu in
      let simple_body fd =
        match fd.f_body with
        | [ { sk = Sreturn (Some e); _ } ] when is_pure e -> Some e
        | _ -> None
      in
      let inlinable =
        List.filter_map
          (fun fd ->
            match simple_body fd with
            | Some e when non_main fd -> Some (fd, e)
            | _ -> None)
          (Visit.functions tu)
      in
      let* fd, body_expr = Uast.Ctx.rand_element ctx inlinable in
      let sites =
        List.filter
          (fun e ->
            match e.ek with
            | Call (_, args) ->
              List.length args = List.length fd.f_params
              && List.for_all is_pure args
            | _ -> false)
          (Uast.Query.calls_to tu fd.f_name)
      in
      let* site = Uast.Ctx.rand_element ctx sites in
      let args = match site.ek with Call (_, args) -> args | _ -> [] in
      let subst = List.combine (List.map (fun p -> p.p_name) fd.f_params) args in
      let inlined =
        Visit.map_expr
          (fun e ->
            match e.ek with
            | Ident n -> (
              match List.assoc_opt n subst with
              | Some arg -> { arg with eid = no_id }
              | None -> e)
            | _ -> e)
          body_expr
      in
      Some (Visit.replace_expr tu ~eid:site.eid ~repl:inlined))

let split_function =
  Mutator.make ~name:"SplitFunctionTail"
    ~description:
      "Split the trailing statements of a function body into a fresh \
       helper function called in their place."
    ~category:Function ~provenance:Unsupervised ~creative:true
    (fun ctx ->
      let tu = ctx.Uast.Ctx.tu in
      let candidates =
        List.filter_map
          (fun fd ->
            if not (non_main fd) || List.length fd.f_body < 2 then None
            else
              (* split before the final return, moving the middle chunk *)
              let n = List.length fd.f_body in
              let k = n / 2 in
              let head = List.filteri (fun i _ -> i < k) fd.f_body in
              let tail = List.filteri (fun i _ -> i >= k) fd.f_body in
              let movable, rest =
                List.partition
                  (fun s ->
                    match s.sk with
                    | Sreturn _ -> false
                    | _ -> stmts_use_only_globals tu fd [ s ])
                  tail
              in
              if movable = [] then None else Some (fd, head, movable, rest))
          (Visit.functions tu)
      in
      let* fd, head, movable, rest = Uast.Ctx.rand_element ctx candidates in
      let hname = Uast.Ctx.generate_unique_name ctx (fd.f_name ^ "_tail") in
      let helper =
        {
          f_id = no_id;
          f_name = hname;
          f_ret = Tvoid;
          f_params = [];
          f_variadic = false;
          f_body = List.map (fun s -> { s with sid = no_id }) movable;
          f_static = false;
          f_inline = false;
        }
      in
      let tu =
        Uast.Rewrite.replace_function tu ~fname:fd.f_name ~f:(fun fd ->
            { fd with f_body = head @ (sexpr (call (ident hname) []) :: rest) })
      in
      Some (Uast.Rewrite.insert_global_before_functions tu ~g:(Gfun helper)))

let swap_function_bodies =
  Mutator.make ~name:"SwapFunctionBodies"
    ~description:
      "Swap the bodies of two functions that share the same signature."
    ~category:Function ~provenance:Unsupervised ~creative:true
    (fun ctx ->
      let funcs = List.filter non_main (Visit.functions ctx.Uast.Ctx.tu) in
      let same_sig a b =
        ty_equal a.f_ret b.f_ret
        && List.length a.f_params = List.length b.f_params
        && List.for_all2 (fun p q -> ty_equal p.p_ty q.p_ty) a.f_params b.f_params
        && List.for_all2
             (fun p q -> String.equal p.p_name q.p_name)
             a.f_params b.f_params
      in
      let pairs = ref [] in
      let rec go = function
        | [] -> ()
        | a :: rest ->
          List.iter (fun b -> if same_sig a b then pairs := (a, b) :: !pairs) rest;
          go rest
      in
      go funcs;
      let* a, b = Uast.Ctx.rand_element ctx !pairs in
      let globals =
        List.map
          (function
            | Gfun fd when String.equal fd.f_name a.f_name ->
              Gfun { fd with f_body = b.f_body }
            | Gfun fd when String.equal fd.f_name b.f_name ->
              Gfun { fd with f_body = a.f_body }
            | g -> g)
          ctx.Uast.Ctx.tu.globals
      in
      Some { globals })

let change_return_expr =
  Mutator.make ~name:"PerturbReturnExpression"
    ~description:
      "Perturb the expression of a return statement by an additive \
       constant (for arithmetic return types)."
    ~category:Function ~provenance:Supervised
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s ->
          match s.sk with
          | Sreturn (Some e) -> is_arith_ty (ty_of ctx e)
          | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Sreturn (Some e) ->
            Some { s with sk = Sreturn (Some (binop Add e (int_lit 1))) }
          | _ -> None))

let return_default =
  Mutator.make ~name:"ReplaceReturnWithDefault"
    ~description:
      "Replace the expression of a return statement with a default \
       constant of the function's return type."
    ~category:Function ~provenance:Unsupervised
    (fun ctx ->
      let targets = ref [] in
      Visit.iter_tu_in_functions ctx.Uast.Ctx.tu ~f:(fun fd ->
          if not (is_void_ty fd.f_ret) then
            List.iter
              (fun s ->
                match s.sk with
                | Sreturn (Some _) -> targets := (fd, s) :: !targets
                | _ -> ())
              (Uast.Query.returns_of fd));
      let* fd, s = Uast.Ctx.rand_element ctx !targets in
      Some
        (Visit.replace_stmt ctx.Uast.Ctx.tu ~sid:s.sid
           ~repl:{ s with sk = Sreturn (Some (default_of_ty fd.f_ret)) }))

let append_trailing_return =
  Mutator.make ~name:"AppendTrailingReturn"
    ~description:
      "Append an explicit trailing return statement to a function body."
    ~category:Function ~provenance:Unsupervised
    (fun ctx ->
      let* fd =
        pick_function ctx (fun fd ->
            match List.rev fd.f_body with
            | { sk = Sreturn _; _ } :: _ -> false
            | _ -> true)
      in
      let ret =
        if is_void_ty fd.f_ret then sreturn None
        else sreturn (Some (default_of_ty fd.f_ret))
      in
      Some
        (Uast.Rewrite.append_to_function ctx.Uast.Ctx.tu ~fname:fd.f_name
           ~stmts:[ ret ]))

let remove_trailing_after_return =
  Mutator.make ~name:"DropCodeAfterReturn"
    ~description:
      "Drop the unreachable statements that follow a top-level return in a \
       function body."
    ~category:Function ~provenance:Supervised
    (fun ctx ->
      let candidates =
        List.filter
          (fun fd ->
            let rec has_early = function
              | { sk = Sreturn _; _ } :: _ :: _ -> true
              | _ :: rest -> has_early rest
              | [] -> false
            in
            has_early fd.f_body)
          (Visit.functions ctx.Uast.Ctx.tu)
      in
      let* fd = Uast.Ctx.rand_element ctx candidates in
      Some
        (Uast.Rewrite.replace_function ctx.Uast.Ctx.tu ~fname:fd.f_name
           ~f:(fun fd ->
             let rec cut = function
               | ({ sk = Sreturn _; _ } as r) :: _ -> [ r ]
               | s :: rest -> s :: cut rest
               | [] -> []
             in
             { fd with f_body = cut fd.f_body })))

let redirect_call =
  Mutator.make ~name:"RedirectCallToSignatureTwin"
    ~description:
      "Redirect one call site to a different function with a compatible \
       signature."
    ~category:Function ~provenance:Unsupervised ~creative:true
    (fun ctx ->
      let funcs = List.filter non_main (Visit.functions ctx.Uast.Ctx.tu) in
      let compatible a b =
        (not (String.equal a.f_name b.f_name))
        && ty_equal a.f_ret b.f_ret
        && List.length a.f_params = List.length b.f_params
        && List.for_all2 (fun p q -> ty_equal p.p_ty q.p_ty) a.f_params b.f_params
      in
      let options = ref [] in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if compatible a b then
                List.iter
                  (fun site -> options := (site, b.f_name) :: !options)
                  (Uast.Query.calls_to ctx.Uast.Ctx.tu a.f_name))
            funcs)
        funcs;
      let* site, new_target = Uast.Ctx.rand_element ctx !options in
      Some
        (Visit.map_tu ctx.Uast.Ctx.tu ~fe:(fun e ->
             if e.eid = site.eid then
               match e.ek with
               | Call (f, args) ->
                 { e with ek = Call ({ f with ek = Ident new_target }, args) }
               | _ -> e
             else e)))

let all : Mutator.t list =
  [
    simple_uninliner;
    inline_function_call;
    split_function;
    swap_function_bodies;
    change_return_expr;
    return_default;
    append_trailing_return;
    remove_trailing_after_return;
    redirect_call;
  ]
