(* Function mutators, part 1: signature-level mutations.

   Includes the paper's running example ModifyFunctionReturnTypeToVoid
   (Ret2V), whose refined implementation removes the function's return
   statements and replaces every call-site use with a default constant. *)

open Cparse
open Ast
open Mk

let non_main fd = not (String.equal fd.f_name "main")

(* The paper's Ret2V (Figures 3-5). *)
let ret2v =
  Mutator.make ~name:"ModifyFunctionReturnTypeToVoid"
    ~description:
      "Change a function's return type to void, remove all return \
       statements, and replace all uses of the function's result with a \
       default value."
    ~category:Function ~provenance:Supervised ~creative:true
    (fun ctx ->
      let* fd =
        pick_function ctx (fun fd -> non_main fd && not (is_void_ty fd.f_ret))
      in
      let default =
        if is_float_ty fd.f_ret then float_lit 0.0 else int_lit 0
      in
      (* replace result uses at call sites (calls in expression position);
         calls in statement position stay as calls *)
      let tu =
        Visit.map_tu ctx.Uast.Ctx.tu ~fs:(fun s ->
            match s.sk with
            | Sexpr { ek = Call ({ ek = Ident n; _ }, _); _ }
              when String.equal n fd.f_name ->
              s (* pure call statement keeps calling the void function *)
            | _ -> s)
      in
      let in_stmt_call = Hashtbl.create 8 in
      Visit.iter_tu tu ~fs:(fun s ->
          match s.sk with
          | Sexpr ({ ek = Call ({ ek = Ident n; _ }, _); _ } as e)
            when String.equal n fd.f_name ->
            Hashtbl.replace in_stmt_call e.eid ()
          | _ -> ());
      let tu =
        Visit.map_tu tu ~fe:(fun e ->
            match e.ek with
            | Call ({ ek = Ident n; _ }, _)
              when String.equal n fd.f_name
                   && not (Hashtbl.mem in_stmt_call e.eid) ->
              { default with eid = no_id }
            | _ -> e)
      in
      (* remove returns (Fig. 4: only this function's returns) and change
         the return type *)
      let tu =
        Uast.Rewrite.replace_function tu ~fname:fd.f_name ~f:(fun fd ->
            let fd =
              Visit.map_fundef
                ~fe:(fun e -> e)
                ~fs:(fun s ->
                  match s.sk with
                  | Sreturn _ -> { s with sk = Sreturn None }
                  | _ -> s)
                fd
            in
            { fd with f_ret = Tvoid })
      in
      Some tu)

let void_to_int =
  Mutator.make ~name:"ModifyFunctionReturnTypeToInt"
    ~description:
      "Change a void function's return type to int, rewriting bare returns \
       and appending a final return 0."
    ~category:Function ~provenance:Unsupervised
    (fun ctx ->
      let* fd = pick_function ctx (fun fd -> is_void_ty fd.f_ret) in
      Some
        (Uast.Rewrite.replace_function ctx.Uast.Ctx.tu ~fname:fd.f_name
           ~f:(fun fd ->
             let fd =
               Visit.map_fundef
                 ~fe:(fun e -> e)
                 ~fs:(fun s ->
                   match s.sk with
                   | Sreturn None -> { s with sk = Sreturn (Some (int_lit 0)) }
                   | _ -> s)
                 fd
             in
             {
               fd with
               f_ret = Tint (Iint, true);
               f_body = fd.f_body @ [ sreturn (Some (int_lit 0)) ];
             })))

let remove_parameter =
  Mutator.make ~name:"RemoveFunctionParameter"
    ~description:
      "Remove a parameter from a function declaration and the matching \
       argument from every call (uses of the parameter become a fresh \
       local with a default value)."
    ~category:Function ~provenance:Supervised
    (fun ctx ->
      let* fd = pick_function ctx (fun fd -> non_main fd && fd.f_params <> []) in
      let index = Uast.Ctx.rand_int ctx (List.length fd.f_params) in
      let p = List.nth fd.f_params index in
      let tu = Uast.Rewrite.remove_param ctx.Uast.Ctx.tu ~fname:fd.f_name ~index in
      (* keep uses of the removed parameter compiling *)
      let decl =
        decl_stmt ~name:p.p_name ~ty:p.p_ty (Some (default_of_ty p.p_ty))
      in
      Some (Uast.Rewrite.prepend_to_function tu ~fname:fd.f_name ~stmts:[ decl ]))

let add_parameter =
  Mutator.make ~name:"AddFunctionParameter"
    ~description:
      "Add a fresh integer parameter to a function, passing zero at every \
       call site."
    ~category:Function ~provenance:Unsupervised
    (fun ctx ->
      let* fd =
        pick_function ctx (fun fd -> non_main fd && not fd.f_variadic)
      in
      let pname = Uast.Ctx.generate_unique_name ctx "extra_param" in
      let tu =
        Uast.Rewrite.replace_function ctx.Uast.Ctx.tu ~fname:fd.f_name
          ~f:(fun fd ->
            { fd with f_params = fd.f_params @ [ { p_name = pname; p_ty = Tint (Iint, true) } ] })
      in
      let tu =
        Visit.map_tu tu ~fe:(fun e ->
            match e.ek with
            | Call (({ ek = Ident n; _ } as f), args) when String.equal n fd.f_name ->
              { e with ek = Call (f, args @ [ int_lit 0 ]) }
            | _ -> e)
      in
      Some tu)

let reorder_parameters =
  Mutator.make ~name:"ReorderFunctionParameters"
    ~description:
      "Reverse the parameter order of a function whose parameters share \
       one type, updating every call site consistently."
    ~category:Function ~provenance:Supervised
    (fun ctx ->
      let* fd =
        pick_function ctx (fun fd ->
            non_main fd
            && List.length fd.f_params >= 2
            &&
            match fd.f_params with
            | p :: rest -> List.for_all (fun q -> ty_equal q.p_ty p.p_ty) rest
            | [] -> false)
      in
      let tu =
        Uast.Rewrite.replace_function ctx.Uast.Ctx.tu ~fname:fd.f_name
          ~f:(fun fd -> { fd with f_params = List.rev fd.f_params })
      in
      let tu =
        Visit.map_tu tu ~fe:(fun e ->
            match e.ek with
            | Call (({ ek = Ident n; _ } as f), args) when String.equal n fd.f_name ->
              { e with ek = Call (f, List.rev args) }
            | _ -> e)
      in
      Some tu)

let make_function_static =
  Mutator.make ~name:"ToggleFunctionStatic"
    ~description:"Toggle the static storage class of a function definition."
    ~category:Function ~provenance:Unsupervised
    (fun ctx ->
      let* fd = pick_function ctx non_main in
      Some
        (Uast.Rewrite.replace_function ctx.Uast.Ctx.tu ~fname:fd.f_name
           ~f:(fun fd -> { fd with f_static = not fd.f_static })))

let make_function_inline =
  Mutator.make ~name:"MarkFunctionInline"
    ~description:
      "Mark a function definition inline (with static linkage), inviting \
       the inliner."
    ~category:Function ~provenance:Unsupervised
    (fun ctx ->
      let* fd = pick_function ctx (fun fd -> non_main fd && not fd.f_inline) in
      Some
        (Uast.Rewrite.replace_function ctx.Uast.Ctx.tu ~fname:fd.f_name
           ~f:(fun fd -> { fd with f_inline = true; f_static = true })))

let duplicate_function =
  Mutator.make ~name:"DuplicateFunction"
    ~description:
      "Clone a function under a fresh name and redirect one call site to \
       the clone."
    ~category:Function ~provenance:Supervised
    (fun ctx ->
      let* fd = pick_function ctx non_main in
      let clone_name = Uast.Ctx.generate_unique_name ctx (fd.f_name ^ "_clone") in
      let clone = { fd with f_name = clone_name; f_id = no_id } in
      let tu = Uast.Rewrite.append_global ctx.Uast.Ctx.tu ~g:(Gfun clone) in
      let sites = Uast.Query.calls_to tu fd.f_name in
      match Uast.Ctx.rand_element ctx sites with
      | Some site ->
        Some
          (Visit.map_tu tu ~fe:(fun e ->
               if e.eid = site.eid then
                 match e.ek with
                 | Call (f, args) ->
                   { e with ek = Call ({ f with ek = Ident clone_name }, args) }
                 | _ -> e
               else e))
      | None -> Some tu)

let add_function_wrapper =
  Mutator.make ~name:"AddFunctionWrapper"
    ~description:
      "Introduce a wrapper function that forwards to an existing function \
       and redirect all call sites through the wrapper."
    ~category:Function ~provenance:Unsupervised ~creative:true
    (fun ctx ->
      let* fd =
        pick_function ctx (fun fd ->
            non_main fd && not fd.f_variadic
            && List.for_all (fun p -> is_arith_ty p.p_ty) fd.f_params)
      in
      let wname = Uast.Ctx.generate_unique_name ctx (fd.f_name ^ "_wrapper") in
      let args = List.map (fun p -> ident p.p_name) fd.f_params in
      let callee = call (ident fd.f_name) args in
      let body =
        if is_void_ty fd.f_ret then [ sexpr callee; sreturn None ]
        else [ sreturn (Some callee) ]
      in
      let wrapper =
        {
          f_id = no_id;
          f_name = wname;
          f_ret = fd.f_ret;
          f_params = fd.f_params;
          f_variadic = false;
          f_body = body;
          f_static = false;
          f_inline = false;
        }
      in
      (* redirect existing call sites (before appending the wrapper, whose
         own call must keep targeting the original) *)
      let tu =
        Visit.map_tu ctx.Uast.Ctx.tu ~fe:(fun e ->
            match e.ek with
            | Call (({ ek = Ident n; _ } as f), args) when String.equal n fd.f_name ->
              { e with ek = Call ({ f with ek = Ident wname }, args) }
            | _ -> e)
      in
      Some (Uast.Rewrite.append_global tu ~g:(Gfun wrapper)))

let recursion_injection =
  Mutator.make ~name:"InjectGuardedRecursion"
    ~description:
      "Inject an opaquely-false guarded self-call at the start of a \
       function, making it syntactically recursive."
    ~category:Function ~provenance:Unsupervised ~creative:true
    (fun ctx ->
      let* fd =
        pick_function ctx (fun fd ->
            non_main fd && not fd.f_variadic
            && List.for_all (fun p -> is_arith_ty p.p_ty) fd.f_params)
      in
      let args = List.map (fun p -> default_of_ty p.p_ty) fd.f_params in
      let self_call = sexpr (call (ident fd.f_name) args) in
      let guard = mk_stmt (Sif (binop Gt (int_lit 0) (int_lit 1), self_call, None)) in
      Some
        (Uast.Rewrite.prepend_to_function ctx.Uast.Ctx.tu ~fname:fd.f_name
           ~stmts:[ guard ]))

let all : Mutator.t list =
  [
    ret2v;
    void_to_int;
    remove_parameter;
    add_parameter;
    reorder_parameters;
    make_function_static;
    make_function_inline;
    duplicate_function;
    add_function_wrapper;
    recursion_injection;
  ]
