(* Expression mutators targeting function calls and assignments. *)

open Cparse
open Ast
open Mk

let is_user_call ctx e =
  match e.ek with
  | Call ({ ek = Ident n; _ }, _) ->
    List.exists (fun fd -> String.equal fd.f_name n) (Visit.functions ctx.Uast.Ctx.tu)
  | _ -> false

let swap_call_arguments =
  Mutator.make ~name:"SwapCallArguments"
    ~description:
      "Swap two arguments of a function call whose parameter types are \
       mutually assignable."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Call (_, args) when List.length args >= 2 ->
            List.for_all (fun a -> is_arith_ty (ty_of ctx a)) args
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Call (f, args) ->
            let n = List.length args in
            let i = Uast.Ctx.rand_int ctx n in
            let j = (i + 1 + Uast.Ctx.rand_int ctx (n - 1)) mod n in
            let arr = Array.of_list args in
            let tmp = arr.(i) in
            arr.(i) <- arr.(j);
            arr.(j) <- tmp;
            Some { e with ek = Call (f, Array.to_list arr) }
          | _ -> None))

let replace_call_arg_with_default =
  Mutator.make ~name:"ReplaceCallArgumentWithDefault"
    ~description:
      "Replace one argument of a function call with a default constant of \
       the argument's type."
    ~category:Expression ~provenance:Unsupervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Call (_, args) ->
            List.exists (fun a -> is_arith_ty (ty_of ctx a)) args
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Call (f, args) ->
            let arith_args =
              List.filter (fun a -> is_arith_ty (ty_of ctx a)) args
            in
            let* victim = Uast.Ctx.rand_element ctx arith_args in
            let args' =
              List.map
                (fun a ->
                  if a.eid = victim.eid then default_of_ty (ty_of ctx a) else a)
                args
            in
            Some { e with ek = Call (f, args') }
          | _ -> None))

let replace_call_with_constant =
  Mutator.make ~name:"ReplaceCallWithConstant"
    ~description:
      "Replace a call to a function returning an arithmetic value with a \
       default constant, leaving the callee compiled but uncalled."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e -> is_user_call ctx e && is_arith_ty (ty_of ctx e))
        ~f:(fun e -> Some (default_of_ty (ty_of ctx e))))

let duplicate_call_statement =
  Mutator.make ~name:"DuplicateCallStatement"
    ~description:
      "Duplicate a call statement so the callee runs twice, doubling its \
       side effects."
    ~category:Expression ~provenance:Unsupervised
    (fun ctx ->
      let* s =
        pick_stmt ctx (fun s ->
            match s.sk with Sexpr { ek = Call _; _ } -> true | _ -> false)
      in
      Some (Uast.Rewrite.insert_after ctx.Uast.Ctx.tu ~sid:s.sid ~stmts:[ s ]))

let wrap_call_in_comma =
  Mutator.make ~name:"WrapExpressionInCommaOperator"
    ~description:
      "Wrap an expression into a comma expression with a leading no-op \
       constant: e becomes (0, e)."
    ~category:Expression ~provenance:Unsupervised 
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          is_arith_ty (ty_of ctx e)
          && (match e.ek with Init_list _ | Str_lit _ -> false | _ -> true))
        ~f:(fun e -> Some (mk_expr (Comma (int_lit 0, { e with eid = no_id })))))

let expand_compound_assignment =
  Mutator.make ~name:"ExpandCompoundAssignment"
    ~description:
      "Expand a compound assignment into a plain assignment: x += e \
       becomes x = x + e."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Assign (op, lhs, _) -> op <> A_none && is_pure lhs
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Assign (op, lhs, rhs) ->
            let bop =
              match op with
              | A_add -> Add | A_sub -> Sub | A_mul -> Mul | A_div -> Div
              | A_mod -> Mod | A_shl -> Shl | A_shr -> Shr
              | A_band -> Band | A_bxor -> Bxor | A_bor -> Bor
              | A_none -> Add
            in
            Some (assign lhs (binop bop (copy_expr lhs) rhs))
          | _ -> None))

let contract_to_compound_assignment =
  Mutator.make ~name:"ContractToCompoundAssignment"
    ~description:
      "Contract x = x op e into the compound assignment x op= e when the \
       left-hand sides match syntactically."
    ~category:Expression ~provenance:Unsupervised
    (fun ctx ->
      let same_var a b =
        match a.ek, b.ek with
        | Ident x, Ident y -> String.equal x y
        | _ -> false
      in
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Assign (A_none, lhs, { ek = Binop ((Add | Sub | Mul | Div | Mod | Band | Bxor | Bor), l, _); _ }) ->
            same_var lhs l
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Assign (A_none, lhs, { ek = Binop (op, _, rhs); _ }) ->
            let aop =
              match op with
              | Add -> A_add | Sub -> A_sub | Mul -> A_mul | Div -> A_div
              | Mod -> A_mod | Band -> A_band | Bxor -> A_bxor | Bor -> A_bor
              | _ -> A_add
            in
            Some (assign ~op:aop lhs rhs)
          | _ -> None))

let chain_assignment =
  Mutator.make ~name:"ChainAssignmentThroughTemporary"
    ~description:
      "Route an assignment's value through the assignment expression \
       itself: y = (x = e) where a fresh statement previously wrote x."
    ~category:Expression ~provenance:Unsupervised 
    (fun ctx ->
      (* turn `x = e;` into `x = (x = e);` — a redundant chained assign *)
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Assign (A_none, { ek = Ident _; _ }, rhs) -> is_pure rhs
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Assign (A_none, lhs, rhs) ->
            Some (assign lhs (assign (copy_expr lhs) rhs))
          | _ -> None))

let all : Mutator.t list =
  [
    swap_call_arguments;
    replace_call_arg_with_default;
    replace_call_with_constant;
    duplicate_call_statement;
    wrap_call_in_comma;
    expand_compound_assignment;
    contract_to_compound_assignment;
    chain_assignment;
  ]
