(* Expression mutators targeting unary operators and inc/dec. *)

open Cparse
open Ast
open Mk

let inverse_unary_operator =
  Mutator.make ~name:"InverseUnaryOperator"
    ~description:
      "Select a unary operation (like unary minus or logical not) and \
       inverse it: -a becomes -(-a) and !a becomes !!a."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with Unop ((Neg | Lognot), _) -> true | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Unop (op, _) -> Some (unop op { e with eid = no_id })
          | _ -> None))

let remove_unary_operator =
  Mutator.make ~name:"RemoveUnaryOperator"
    ~description:"Remove a unary operator, keeping its operand."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e -> match e.ek with Unop _ -> true | _ -> false)
        ~f:(fun e -> match e.ek with Unop (_, a) -> Some a | _ -> None))

let add_unary_minus =
  Mutator.make ~name:"AddUnaryMinus"
    ~description:"Wrap an arithmetic expression in a unary minus."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e -> is_arith_expr ctx e && is_pure e
                        && (match e.ek with Init_list _ | Str_lit _ -> false | _ -> true))
        ~f:(fun e -> Some (unop Neg { e with eid = no_id })))

let add_logical_not =
  Mutator.make ~name:"AddLogicalNot"
    ~description:
      "Wrap a scalar expression in a logical negation, flipping its truth \
       value."
    ~category:Expression ~provenance:Unsupervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          is_scalar_ty (ty_of ctx e) && is_pure e
          && (match e.ek with Init_list _ | Str_lit _ -> false | _ -> true))
        ~f:(fun e -> Some (unop Lognot { e with eid = no_id })))

let add_bitwise_not_twice =
  Mutator.make ~name:"AddDoubleBitwiseNot"
    ~description:
      "Wrap an integer expression in a double bitwise complement ~~e, a \
       semantic no-op that stresses pattern-matching simplifications."
    ~category:Expression ~provenance:Unsupervised ~creative:true
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e -> is_int_expr ctx e && is_pure e
                        && (match e.ek with Init_list _ -> false | _ -> true))
        ~f:(fun e -> Some (unop Bitnot (unop Bitnot { e with eid = no_id }))))

let prefix_to_postfix =
  Mutator.make ~name:"SwitchIncrementFixity"
    ~description:
      "Switch a prefix increment/decrement to postfix or vice versa, \
       changing the value of the enclosing expression."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e -> match e.ek with Incdec _ -> true | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Incdec (inc, pre, a) -> Some { e with ek = Incdec (inc, not pre, a) }
          | _ -> None))

let inc_to_dec =
  Mutator.make ~name:"InverseIncrementDirection"
    ~description:"Change an increment into a decrement or vice versa."
    ~category:Expression ~provenance:Unsupervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e -> match e.ek with Incdec _ -> true | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Incdec (inc, pre, a) -> Some { e with ek = Incdec (not inc, pre, a) }
          | _ -> None))

let incdec_to_compound =
  Mutator.make ~name:"ExpandIncrementToAssignment"
    ~description:
      "Expand an increment/decrement used as a statement into the \
       equivalent compound assignment (x++ becomes x += 1)."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s ->
          match s.sk with
          | Sexpr { ek = Incdec _; _ } -> true
          | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Sexpr { ek = Incdec (inc, _, a); _ } ->
            let op = if inc then A_add else A_sub in
            Some (sexpr (assign ~op a (int_lit 1)))
          | _ -> None))

let all : Mutator.t list =
  [
    inverse_unary_operator;
    remove_unary_operator;
    add_unary_minus;
    add_logical_not;
    add_bitwise_not_twice;
    prefix_to_postfix;
    inc_to_dec;
    incdec_to_compound;
  ]
