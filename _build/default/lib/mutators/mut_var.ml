(* Variable mutators. *)

open Cparse
open Ast
open Mk

(* Paper example (Ms): SwitchInitExpr. *)
let switch_init_expr =
  Mutator.make ~name:"SwitchInitExpr"
    ~description:
      "Randomly select a VarDecl and swap its init expression with the \
       init expression of another randomly selected VarDecl in the same \
       scope, while ensuring the types of the variables are compatible."
    ~category:Variable ~provenance:Supervised
    (fun ctx ->
      (* candidate pairs: two initialised decls in the same block *)
      let pairs = ref [] in
      List.iter
        (fun fd ->
          List.iter
            (fun group ->
              let inits =
                List.filter
                  (fun v ->
                    v.v_init <> None
                    && (match (Option.get v.v_init).ek with
                       | Init_list _ -> false
                       | _ -> true)
                    && is_arith_ty v.v_ty)
                  group
              in
              let rec all_pairs = function
                | [] -> ()
                | a :: rest ->
                  List.iter
                    (fun b ->
                      if Uast.Check.compatible_for_swap a.v_ty b.v_ty then
                        pairs := (a, b) :: !pairs)
                    rest;
                  all_pairs rest
              in
              all_pairs inits)
            (Uast.Query.decls_by_block fd))
        (Visit.functions ctx.Uast.Ctx.tu);
      let* a, b = Uast.Ctx.rand_element ctx !pairs in
      let ia = Option.get a.v_init and ib = Option.get b.v_init in
      let swap_decl v =
        if v.v_name = a.v_name && v.v_ty = a.v_ty then { v with v_init = Some ib }
        else if v.v_name = b.v_name && v.v_ty = b.v_ty then { v with v_init = Some ia }
        else v
      in
      let tu =
        Visit.map_tu ctx.Uast.Ctx.tu ~fs:(fun s ->
            match s.sk with
            | Sdecl vs -> { s with sk = Sdecl (List.map swap_decl vs) }
            | _ -> s)
      in
      Some tu)

(* Paper example: ChangeVarDeclQualifier (used in the strlen-opt crash). *)
let change_var_decl_qualifier =
  Mutator.make ~name:"ChangeVarDeclQualifier"
    ~description:
      "Toggle the const qualifier of a variable declaration, changing \
       which stores are legal and which optimizations fire."
    ~category:Variable ~provenance:Supervised
    (fun ctx ->
      let locals = Uast.Query.local_var_decls ctx.Uast.Ctx.tu in
      let globals = Visit.global_vars ctx.Uast.Ctx.tu in
      let names =
        List.map (fun (v, _) -> v.v_name) locals
        @ List.map (fun v -> v.v_name) globals
      in
      let* name = Uast.Ctx.rand_element ctx names in
      let toggle v =
        if String.equal v.v_name name then
          { v with v_quals = { v.v_quals with q_const = not v.v_quals.q_const } }
        else v
      in
      let tu =
        Visit.map_tu ctx.Uast.Ctx.tu ~fs:(fun s ->
            match s.sk with
            | Sdecl vs -> { s with sk = Sdecl (List.map toggle vs) }
            | _ -> s)
      in
      let globals' =
        List.map
          (function Gvar v -> Gvar (toggle v) | g -> g)
          tu.globals
      in
      Some { globals = globals' })

let add_volatile_qualifier =
  Mutator.make ~name:"AddVolatileQualifier"
    ~description:
      "Mark a variable declaration volatile, forcing the compiler to keep \
       every access."
    ~category:Variable ~provenance:Unsupervised
    (fun ctx ->
      let locals = Uast.Query.local_var_decls ctx.Uast.Ctx.tu in
      let* v, _ =
        Uast.Ctx.rand_element ctx
          (List.filter (fun (v, _) -> not v.v_quals.q_volatile) locals)
      in
      let name = v.v_name in
      let mark v =
        if String.equal v.v_name name then
          { v with v_quals = { v.v_quals with q_volatile = true } }
        else v
      in
      Some
        (Visit.map_tu ctx.Uast.Ctx.tu ~fs:(fun s ->
             match s.sk with
             | Sdecl vs -> { s with sk = Sdecl (List.map mark vs) }
             | Sfor (Some (Fi_decl vs), c, st, b) ->
               { s with sk = Sfor (Some (Fi_decl (List.map mark vs)), c, st, b) }
             | _ -> s)))

let rename_variable =
  Mutator.make ~name:"RenameVariable"
    ~description:
      "Rename a local variable and every use of it within its function."
    ~category:Variable ~provenance:Unsupervised
    (fun ctx ->
      let locals = Uast.Query.local_var_decls ctx.Uast.Ctx.tu in
      let* v, fd = Uast.Ctx.rand_element ctx locals in
      let fresh = Uast.Ctx.generate_unique_name ctx "renamed" in
      Some
        (Uast.Rewrite.rename_var_in_function ctx.Uast.Ctx.tu ~fname:fd.f_name
           ~old_name:v.v_name ~new_name:fresh))

let remove_var_init =
  Mutator.make ~name:"RemoveVariableInitializer"
    ~description:
      "Remove the initializer of a local variable declaration, leaving the \
       variable uninitialized."
    ~category:Variable ~provenance:Supervised
    (fun ctx ->
      let locals =
        List.filter
          (fun (v, _) -> v.v_init <> None && not v.v_quals.q_const)
          (Uast.Query.local_var_decls ctx.Uast.Ctx.tu)
      in
      let* v, _ = Uast.Ctx.rand_element ctx locals in
      let name = v.v_name in
      let strip v =
        if String.equal v.v_name name then { v with v_init = None } else v
      in
      Some
        (Visit.map_tu ctx.Uast.Ctx.tu ~fs:(fun s ->
             match s.sk with
             | Sdecl vs -> { s with sk = Sdecl (List.map strip vs) }
             | _ -> s)))

let add_var_init =
  Mutator.make ~name:"AddVariableInitializer"
    ~description:
      "Add a default initializer to an uninitialized scalar local variable."
    ~category:Variable ~provenance:Unsupervised
    (fun ctx ->
      let locals =
        List.filter
          (fun (v, _) -> v.v_init = None && is_arith_ty v.v_ty)
          (Uast.Query.local_var_decls ctx.Uast.Ctx.tu)
      in
      let* v, _ = Uast.Ctx.rand_element ctx locals in
      let name = v.v_name in
      let fill v =
        if String.equal v.v_name name then
          { v with v_init = Some (default_of_ty v.v_ty) }
        else v
      in
      Some
        (Visit.map_tu ctx.Uast.Ctx.tu ~fs:(fun s ->
             match s.sk with
             | Sdecl vs -> { s with sk = Sdecl (List.map fill vs) }
             | _ -> s)))

let widen_int_var =
  Mutator.make ~name:"WidenIntegerVariableType"
    ~description:
      "Widen the integer type of a variable declaration (e.g. int to long \
       long), changing overflow behaviour downstream."
    ~category:Variable ~provenance:Supervised
    (fun ctx ->
      let locals =
        List.filter
          (fun (v, _) ->
            match v.v_ty with
            | Tint ((Ichar | Ishort | Iint), _) -> true
            | _ -> false)
          (Uast.Query.local_var_decls ctx.Uast.Ctx.tu)
      in
      let* v, _ = Uast.Ctx.rand_element ctx locals in
      let name = v.v_name in
      let widen v =
        if String.equal v.v_name name then
          match v.v_ty with
          | Tint (_, s) -> { v with v_ty = Tint (Ilonglong, s) }
          | _ -> v
        else v
      in
      Some
        (Visit.map_tu ctx.Uast.Ctx.tu ~fs:(fun s ->
             match s.sk with
             | Sdecl vs -> { s with sk = Sdecl (List.map widen vs) }
             | _ -> s)))

let narrow_int_var =
  Mutator.make ~name:"NarrowIntegerVariableType"
    ~description:
      "Narrow the integer type of a variable declaration (e.g. long to \
       char), injecting truncation into its data flow."
    ~category:Variable ~provenance:Unsupervised
    (fun ctx ->
      let locals =
        List.filter
          (fun (v, _) ->
            match v.v_ty with
            | Tint ((Iint | Ilong | Ilonglong), _) -> true
            | _ -> false)
          (Uast.Query.local_var_decls ctx.Uast.Ctx.tu)
      in
      let* v, _ = Uast.Ctx.rand_element ctx locals in
      let name = v.v_name in
      let narrow v =
        if String.equal v.v_name name then
          match v.v_ty with
          | Tint (_, s) -> { v with v_ty = Tint (Ichar, s) }
          | _ -> v
        else v
      in
      Some
        (Visit.map_tu ctx.Uast.Ctx.tu ~fs:(fun s ->
             match s.sk with
             | Sdecl vs -> { s with sk = Sdecl (List.map narrow vs) }
             | _ -> s)))

(* Paper example (GCC #111820): ChangeParamScope. *)
let change_param_scope =
  Mutator.make ~name:"ChangeParamScope"
    ~description:
      "Move a function parameter from the parameter scope into the local \
       scope of the function, initializing it with a default value; the \
       parameter and all call-site arguments are removed."
    ~category:Variable ~provenance:Supervised ~creative:true
    (fun ctx ->
      let* fd =
        pick_function ctx (fun fd ->
            fd.f_params <> []
            && List.exists (fun p -> is_arith_ty p.p_ty) fd.f_params
            && not (String.equal fd.f_name "main"))
      in
      let idx_candidates =
        List.filteri (fun _ p -> is_arith_ty p.p_ty) fd.f_params
      in
      let* victim = Uast.Ctx.rand_element ctx idx_candidates in
      let index =
        let rec find i = function
          | [] -> 0
          | p :: rest -> if p == victim then i else find (i + 1) rest
        in
        find 0 fd.f_params
      in
      let tu = Uast.Rewrite.remove_param ctx.Uast.Ctx.tu ~fname:fd.f_name ~index in
      let decl =
        decl_stmt ~name:victim.p_name ~ty:victim.p_ty
          (Some (default_of_ty victim.p_ty))
      in
      Some (Uast.Rewrite.prepend_to_function tu ~fname:fd.f_name ~stmts:[ decl ]))

let promote_local_to_global =
  Mutator.make ~name:"PromoteLocalToGlobal"
    ~description:
      "Promote a top-level local variable declaration to a global \
       variable, turning its initializer into a first-use assignment."
    ~category:Variable ~provenance:Supervised
    (fun ctx ->
      let candidates = ref [] in
      Visit.iter_tu_in_functions ctx.Uast.Ctx.tu ~f:(fun fd ->
          List.iter
            (fun s ->
              match s.sk with
              | Sdecl [ v ]
                when is_arith_ty v.v_ty && v.v_storage = S_none
                     && not v.v_quals.q_const ->
                candidates := (fd, s, v) :: !candidates
              | _ -> ())
            fd.f_body);
      let* fd, s, v = Uast.Ctx.rand_element ctx !candidates in
      let fresh = Uast.Ctx.generate_unique_name ctx ("g_" ^ v.v_name) in
      let repl =
        match v.v_init with
        | Some init -> sexpr (assign (ident fresh) init)
        | None -> mk_stmt Snull
      in
      let tu = Visit.replace_stmt ctx.Uast.Ctx.tu ~sid:s.sid ~repl in
      let tu =
        Uast.Rewrite.rename_var_in_function tu ~fname:fd.f_name
          ~old_name:v.v_name ~new_name:fresh
      in
      let g =
        Gvar { v with v_name = fresh; v_init = None; v_storage = S_none }
      in
      Some (Uast.Rewrite.insert_global_before_functions tu ~g))

let demote_global_to_local =
  Mutator.make ~name:"DemoteGlobalToLocal"
    ~description:
      "Demote a global variable used by exactly one function into a local \
       variable of that function."
    ~category:Variable ~provenance:Unsupervised
    (fun ctx ->
      let funcs = Visit.functions ctx.Uast.Ctx.tu in
      let candidates =
        List.filter_map
          (fun (v : var_decl) ->
            if not (is_arith_ty v.v_ty) then None
            else
              let users =
                List.filter
                  (fun fd -> Uast.Query.uses_of_var fd v.v_name <> [])
                  funcs
              in
              match users with [ fd ] -> Some (v, fd) | _ -> None)
          (Visit.global_vars ctx.Uast.Ctx.tu)
      in
      let* v, fd = Uast.Ctx.rand_element ctx candidates in
      let globals =
        List.filter
          (function
            | Gvar v' -> not (String.equal v'.v_name v.v_name)
            | _ -> true)
          ctx.Uast.Ctx.tu.globals
      in
      let decl =
        decl_stmt ~quals:v.v_quals ~name:v.v_name ~ty:v.v_ty
          (Some
             (match v.v_init with
             | Some i -> i
             | None -> default_of_ty v.v_ty))
      in
      Some
        (Uast.Rewrite.prepend_to_function { globals } ~fname:fd.f_name
           ~stmts:[ decl ]))

let split_declaration =
  Mutator.make ~name:"SplitMultiDeclaration"
    ~description:
      "Split a declaration statement that declares several variables into \
       one declaration statement per variable."
    ~category:Variable ~provenance:Unsupervised
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s ->
          match s.sk with Sdecl vs -> List.length vs >= 2 | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Sdecl vs ->
            Some (sblock (List.map (fun v -> mk_stmt (Sdecl [ v ])) vs))
          | _ -> None))

let duplicate_var_decl =
  Mutator.make ~name:"DuplicateVariableWithAlias"
    ~description:
      "Introduce an alias variable initialized from an existing local and \
       redirect subsequent reads through the alias."
    ~category:Variable ~provenance:Supervised ~creative:true
    (fun ctx ->
      let candidates = ref [] in
      Visit.iter_tu_in_functions ctx.Uast.Ctx.tu ~f:(fun fd ->
          List.iter
            (fun s ->
              match s.sk with
              | Sdecl [ v ] when is_arith_ty v.v_ty ->
                candidates := (fd, s, v) :: !candidates
              | _ -> ())
            fd.f_body);
      let* _fd, s, v = Uast.Ctx.rand_element ctx !candidates in
      let alias = Uast.Ctx.generate_unique_name ctx (v.v_name ^ "_alias") in
      let decl = decl_stmt ~name:alias ~ty:v.v_ty (Some (ident v.v_name)) in
      Some (Uast.Rewrite.insert_after ctx.Uast.Ctx.tu ~sid:s.sid ~stmts:[ decl ]))

let shadow_variable =
  Mutator.make ~name:"ShadowVariableInInnerBlock"
    ~description:
      "Re-declare an in-scope variable inside a nested block, shadowing \
       the outer declaration within that block."
    ~category:Variable ~provenance:Unsupervised ~creative:true
    (fun ctx ->
      let candidates = ref [] in
      Visit.iter_tu_in_functions ctx.Uast.Ctx.tu ~f:(fun fd ->
          let top = Uast.Query.toplevel_vars_of fd in
          List.iter
            (Visit.iter_stmt
               ~fe:(fun _ -> ())
               ~fs:(fun s ->
                 match s.sk with
                 | Sblock _ ->
                   List.iter
                     (fun (n, t) ->
                       if is_arith_ty t then candidates := (s, n, t) :: !candidates)
                     top
                 | _ -> ()))
            fd.f_body);
      let* block, name, ty = Uast.Ctx.rand_element ctx !candidates in
      let decl = decl_stmt ~name ~ty (Some (default_of_ty ty)) in
      match block.sk with
      | Sblock ss ->
        Some
          (Visit.replace_stmt ctx.Uast.Ctx.tu ~sid:block.sid
             ~repl:{ block with sk = Sblock (decl :: ss) })
      | _ -> None)

let modify_global_init =
  Mutator.make ~name:"ModifyGlobalInitializer"
    ~description:"Modify the constant initializer of a global variable."
    ~category:Variable ~provenance:Unsupervised
    (fun ctx ->
      let candidates =
        List.filter
          (fun v ->
            match v.v_init with
            | Some { ek = Int_lit _; _ } -> true
            | _ -> false)
          (Visit.global_vars ctx.Uast.Ctx.tu)
      in
      let* v = Uast.Ctx.rand_element ctx candidates in
      let v' =
        { v with v_init = Some (int_lit (Uast.Ctx.rand_int ctx 1024 - 512)) }
      in
      let globals =
        List.map
          (function
            | Gvar g when String.equal g.v_name v.v_name -> Gvar v'
            | g -> g)
          ctx.Uast.Ctx.tu.globals
      in
      Some { globals })

(* Paper example (GCC #111819): CombineVariable. *)
let combine_variables =
  Mutator.make ~name:"CombineVariable"
    ~description:
      "Combine two same-typed scalar locals declared in the same function \
       into a two-element array, rewriting all uses into subscripts."
    ~category:Variable ~provenance:Supervised ~creative:true
    (fun ctx ->
      let candidates = ref [] in
      Visit.iter_tu_in_functions ctx.Uast.Ctx.tu ~f:(fun fd ->
          let decls =
            List.filter_map
              (fun s ->
                match s.sk with
                | Sdecl [ v ] when v.v_ty = Tint (Iint, true) && v.v_init <> None ->
                  Some (s, v)
                | _ -> None)
              fd.f_body
          in
          match decls with
          | (s1, v1) :: (s2, v2) :: _ -> candidates := (fd, s1, v1, s2, v2) :: !candidates
          | _ -> ());
      let* fd, s1, v1, s2, v2 = Uast.Ctx.rand_element ctx !candidates in
      let arr = Uast.Ctx.generate_unique_name ctx "combinedVar" in
      let decl =
        decl_stmt ~name:arr ~ty:(Tarray (Tint (Iint, true), Some 2)) None
      in
      let init1 = sexpr (assign (mk_expr (Index (ident arr, int_lit 0))) (Option.get v1.v_init)) in
      let init2 = sexpr (assign (mk_expr (Index (ident arr, int_lit 1))) (Option.get v2.v_init)) in
      (* the array declaration must stay in function scope: insert it as a
         sibling statement, never inside a fresh block *)
      let tu = Uast.Rewrite.insert_before ctx.Uast.Ctx.tu ~sid:s1.sid ~stmts:[ decl ] in
      let tu = Visit.replace_stmt tu ~sid:s1.sid ~repl:init1 in
      let tu = Visit.replace_stmt tu ~sid:s2.sid ~repl:init2 in
      (* rewrite uses *)
      let tu =
        Uast.Rewrite.replace_function tu ~fname:fd.f_name ~f:(fun fd ->
            Visit.map_fundef
              ~fe:(fun e ->
                match e.ek with
                | Ident n when String.equal n v1.v_name ->
                  mk_expr (Index (ident arr, int_lit 0))
                | Ident n when String.equal n v2.v_name ->
                  mk_expr (Index (ident arr, int_lit 1))
                | _ -> e)
              ~fs:(fun s -> s)
              fd)
      in
      Some tu)

let all : Mutator.t list =
  [
    switch_init_expr;
    change_var_decl_qualifier;
    add_volatile_qualifier;
    rename_variable;
    remove_var_init;
    add_var_init;
    widen_int_var;
    narrow_int_var;
    change_param_scope;
    promote_local_to_global;
    demote_global_to_local;
    split_declaration;
    duplicate_var_decl;
    shadow_variable;
    modify_global_init;
    combine_variables;
  ]
