(* Statement mutators on blocks and generic statements. *)

open Cparse
open Ast
open Mk

let is_simple_stmt s =
  match s.sk with
  | Sexpr _ | Snull -> true
  | _ -> false

let delete_statement =
  Mutator.make ~name:"DeleteStatement"
    ~description:
      "Delete a randomly selected expression statement from its enclosing \
       block."
    ~category:Statement ~provenance:Supervised
    (fun ctx ->
      let* s = pick_stmt ctx (fun s -> match s.sk with Sexpr _ -> true | _ -> false) in
      Some (Uast.Rewrite.delete_stmt ctx.Uast.Ctx.tu ~sid:s.sid))

let duplicate_statement =
  Mutator.make ~name:"DuplicateStatement"
    ~description:"Duplicate an expression statement immediately after itself."
    ~category:Statement ~provenance:Unsupervised
    (fun ctx ->
      let* s = pick_stmt ctx is_simple_stmt in
      Some
        (Uast.Rewrite.insert_after ctx.Uast.Ctx.tu ~sid:s.sid
           ~stmts:[ { s with sid = no_id } ]))

let swap_adjacent_statements =
  Mutator.make ~name:"SwapAdjacentStatements"
    ~description:
      "Swap two adjacent expression statements within a block, reordering \
       side effects."
    ~category:Statement ~provenance:Supervised
    (fun ctx ->
      let blocks = ref [] in
      let scan_list sid ss =
        let rec scan = function
          | ({ sk = Sexpr _; _ } as a) :: ({ sk = Sexpr _; _ } as b) :: _ ->
            blocks := (sid, a.sid, b.sid) :: !blocks
          | _ :: rest -> scan rest
          | [] -> ()
        in
        scan ss
      in
      Visit.iter_tu ctx.Uast.Ctx.tu ~fs:(fun s ->
          match s.sk with Sblock ss -> scan_list s.sid ss | _ -> ());
      List.iter
        (function
          | Gfun fd -> scan_list (-1) fd.f_body
          | _ -> ())
        ctx.Uast.Ctx.tu.globals;
      let* _, aid, bid = Uast.Ctx.rand_element ctx !blocks in
      let swap ss =
        let rec go = function
          | a :: b :: rest when a.sid = aid && b.sid = bid -> b :: a :: rest
          | x :: rest -> x :: go rest
          | [] -> []
        in
        go ss
      in
      let tu =
        Visit.map_tu ctx.Uast.Ctx.tu ~fs:(fun s ->
            match s.sk with
            | Sblock ss -> { s with sk = Sblock (swap ss) }
            | _ -> s)
      in
      let globals =
        List.map
          (function
            | Gfun fd -> Gfun { fd with f_body = swap fd.f_body }
            | g -> g)
          tu.globals
      in
      Some { globals })

let wrap_stmt_in_block =
  Mutator.make ~name:"WrapStatementInBlock"
    ~description:"Wrap a statement into a fresh nested block scope."
    ~category:Statement ~provenance:Unsupervised
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s ->
          match s.sk with
          | Sexpr _ | Sif _ | Swhile _ -> true
          | _ -> false)
        ~f:(fun s -> Some (sblock [ { s with sid = no_id } ])))

let wrap_stmt_in_once_loop =
  Mutator.make ~name:"WrapStatementInSingleIterationLoop"
    ~description:
      "Wrap a statement into a loop that executes exactly once, creating a \
       trivially-unrollable loop."
    ~category:Statement ~provenance:Supervised ~creative:true
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s -> match s.sk with Sexpr _ -> true | _ -> false)
        ~f:(fun s ->
          let i = Uast.Ctx.generate_unique_name ctx "once" in
          Some
            (mk_stmt
               (Sfor
                  ( Some
                      (Fi_decl
                         [
                           {
                             v_name = i;
                             v_ty = Tint (Iint, true);
                             v_quals = no_quals;
                             v_storage = S_none;
                             v_init = Some (int_lit 0);
                           };
                         ]),
                    Some (binop Lt (ident i) (int_lit 1)),
                    Some (mk_expr (Incdec (true, false, ident i))),
                    sblock [ { s with sid = no_id } ] )))))

let insert_early_return =
  Mutator.make ~name:"InsertGuardedEarlyReturn"
    ~description:
      "Insert an opaquely-false guarded early return at the start of a \
       function body."
    ~category:Statement ~provenance:Unsupervised ~creative:true
    (fun ctx ->
      let* fd = pick_function ctx (fun fd -> fd.f_body <> []) in
      let ret =
        match fd.f_ret with
        | Tvoid -> sreturn None
        | t -> sreturn (Some (default_of_ty t))
      in
      let guard = mk_stmt (Sif (binop Lt (int_lit 2) (int_lit 1), ret, None)) in
      Some
        (Uast.Rewrite.prepend_to_function ctx.Uast.Ctx.tu ~fname:fd.f_name
           ~stmts:[ guard ]))

let add_label_and_goto =
  Mutator.make ~name:"InjectForwardGoto"
    ~description:
      "Inject a goto over one statement to a fresh label placed after it, \
       making the statement conditionally skipped control flow."
    ~category:Statement ~provenance:Supervised ~creative:true
    (fun ctx ->
      let* s =
        pick_stmt ctx (fun s -> match s.sk with Sexpr _ -> true | _ -> false)
      in
      let label = Uast.Ctx.generate_unique_name ctx "skip" in
      let tu =
        Uast.Rewrite.insert_before ctx.Uast.Ctx.tu ~sid:s.sid
          ~stmts:
            [ mk_stmt (Sif (binop Eq (int_lit 1) (int_lit 2), mk_stmt (Sgoto label), None)) ]
      in
      Some
        (Uast.Rewrite.insert_after tu ~sid:s.sid
           ~stmts:[ mk_stmt (Slabel (label, mk_stmt Snull)) ]))

let hoist_declaration =
  Mutator.make ~name:"HoistDeclarationToFunctionTop"
    ~description:
      "Hoist a local variable declaration from a nested block to the top \
       of the function body, splitting declaration from initialization."
    ~category:Statement ~provenance:Unsupervised
    (fun ctx ->
      (* pick a decl statement inside a nested block with a single decl *)
      let candidates = ref [] in
      Visit.iter_tu_in_functions ctx.Uast.Ctx.tu ~f:(fun fd ->
          List.iter
            (Visit.iter_stmt
               ~fe:(fun _ -> ())
               ~fs:(fun s ->
                 match s.sk with
                 | Sblock ss ->
                   List.iter
                     (fun s' ->
                       match s'.sk with
                       | Sdecl [ v ] when v.v_init <> None && not (is_aggregate_ty v.v_ty) ->
                         candidates := (fd, s', v) :: !candidates
                       | _ -> ())
                     ss
                 | _ -> ()))
            fd.f_body);
      let* fd, decl_stmt_node, v = Uast.Ctx.rand_element ctx !candidates in
      (* rename to avoid capture, declare at top, assign in place *)
      let fresh = Uast.Ctx.generate_unique_name ctx v.v_name in
      let init = Option.get v.v_init in
      let assign_stmt = sexpr (assign (ident fresh) init) in
      let tu =
        Visit.replace_stmt ctx.Uast.Ctx.tu ~sid:decl_stmt_node.sid ~repl:assign_stmt
      in
      (* rewrite uses of the old name within the function *)
      let tu = Uast.Rewrite.rename_var_in_function tu ~fname:fd.f_name ~old_name:v.v_name ~new_name:fresh in
      let decl =
        Mk.decl_stmt ~quals:v.v_quals ~name:fresh ~ty:v.v_ty None
      in
      Some (Uast.Rewrite.prepend_to_function tu ~fname:fd.f_name ~stmts:[ decl ]))

let statement_to_comma_in_for =
  Mutator.make ~name:"SinkStatementIntoForStep"
    ~description:
      "Sink the expression statement immediately preceding a for loop into \
       the loop's init clause via the comma operator."
    ~category:Statement ~provenance:Unsupervised ~creative:true
    (fun ctx ->
      let found = ref None in
      let scan ss =
        let rec go = function
          | { sk = Sexpr e; _ } :: ({ sk = Sfor (Some (Fi_expr i), _, _, _); _ } as f) :: _ ->
            if !found = None then found := Some (e, i, f)
          | _ :: rest -> go rest
          | [] -> ()
        in
        go ss
      in
      Visit.iter_tu ctx.Uast.Ctx.tu ~fs:(fun s ->
          match s.sk with Sblock ss -> scan ss | _ -> ());
      List.iter
        (function Gfun fd -> scan fd.f_body | _ -> ())
        ctx.Uast.Ctx.tu.globals;
      let* e, i, f = !found in
      match f.sk with
      | Sfor (_, c, st, b) ->
        let merged = mk_expr (Comma ({ e with eid = no_id }, i)) in
        let tu =
          Visit.replace_stmt ctx.Uast.Ctx.tu ~sid:f.sid
            ~repl:{ f with sk = Sfor (Some (Fi_expr merged), c, st, b) }
        in
        (* remove the original preceding statement: find it by matching e *)
        let removed = ref false in
        let prune ss =
          List.filter
            (fun s ->
              match s.sk with
              | Sexpr e' when e'.eid = e.eid && not !removed ->
                removed := true;
                false
              | _ -> true)
            ss
        in
        let tu = Visit.map_tu tu ~fs:(fun s ->
            match s.sk with Sblock ss -> { s with sk = Sblock (prune ss) } | _ -> s)
        in
        let globals =
          List.map
            (function Gfun fd -> Gfun { fd with f_body = prune fd.f_body } | g -> g)
            tu.globals
        in
        Some { globals }
      | _ -> None)

let all : Mutator.t list =
  [
    delete_statement;
    duplicate_statement;
    swap_adjacent_statements;
    wrap_stmt_in_block;
    wrap_stmt_in_once_loop;
    insert_early_return;
    add_label_and_goto;
    hoist_declaration;
    statement_to_comma_in_for;
  ]
