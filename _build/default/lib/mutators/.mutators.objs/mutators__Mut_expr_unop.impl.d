lib/mutators/mut_expr_unop.ml: Ast Cparse Mk Mutator
