lib/mutators/mut_func_body.ml: Ast Cparse Hashtbl List Mk Mutator String Uast Visit
