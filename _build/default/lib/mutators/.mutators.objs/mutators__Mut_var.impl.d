lib/mutators/mut_var.ml: Ast Cparse List Mk Mutator Option String Uast Visit
