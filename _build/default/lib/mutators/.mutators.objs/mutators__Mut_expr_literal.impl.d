lib/mutators/mut_expr_literal.ml: Ast Char Cparse Int64 List Mk Mutator Rng Uast
