lib/mutators/mut_expr_call.ml: Array Ast Cparse List Mk Mutator String Uast Visit
