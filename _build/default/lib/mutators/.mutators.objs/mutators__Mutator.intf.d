lib/mutators/mutator.mli: Cparse Uast
