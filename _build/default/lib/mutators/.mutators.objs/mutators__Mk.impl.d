lib/mutators/mk.ml: Ast Cparse List Option Typecheck Uast Visit
