lib/mutators/registry.mli: Mutator
