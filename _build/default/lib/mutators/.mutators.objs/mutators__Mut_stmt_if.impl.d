lib/mutators/mut_stmt_if.ml: Ast Cparse Mk Mutator Rng String Uast
