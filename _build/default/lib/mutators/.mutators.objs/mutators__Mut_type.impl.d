lib/mutators/mut_type.ml: Ast Cparse Fmt Int64 List Mk Mutator Option String Uast Visit
