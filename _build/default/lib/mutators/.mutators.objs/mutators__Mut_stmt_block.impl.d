lib/mutators/mut_stmt_block.ml: Ast Cparse List Mk Mutator Option Uast Visit
