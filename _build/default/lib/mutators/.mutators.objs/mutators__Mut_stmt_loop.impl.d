lib/mutators/mut_stmt_loop.ml: Ast Cparse Int64 Mk Mutator Uast Visit
