lib/mutators/mut_expr_binop.ml: Ast Cparse Int64 List Mk Mutator Uast
