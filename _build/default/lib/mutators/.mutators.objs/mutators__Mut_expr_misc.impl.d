lib/mutators/mut_expr_misc.ml: Ast Cparse List Mk Mutator Rng Uast Visit
