lib/mutators/mut_func.ml: Ast Cparse Hashtbl List Mk Mutator String Uast Visit
