lib/mutators/mut_stmt_switch.ml: Ast Const_eval Cparse Int64 List Mk Mutator Rng Uast Visit
