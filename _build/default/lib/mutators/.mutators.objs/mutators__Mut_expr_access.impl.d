lib/mutators/mut_expr_access.ml: Ast Cparse Mk Mutator Uast
