lib/mutators/mutator.ml: Ast Ast_ids Cparse Option Parser Pretty Rng Uast
