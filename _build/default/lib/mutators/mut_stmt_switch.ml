(* Statement mutators targeting switch statements. *)

open Cparse
open Ast
open Mk

let is_switch s = match s.sk with Sswitch _ -> true | _ -> false

(* The paper's TransformSwitchToIfElse (unsupervised, "creative"). *)
let transform_switch_to_if_else =
  Mutator.make ~name:"TransformSwitchToIfElse"
    ~description:
      "Identify a 'switch' statement and transform it into an equivalent \
       series of 'if-else' statements, effectively altering the control \
       flow structure."
    ~category:Statement ~provenance:Unsupervised ~creative:true
    (fun ctx ->
      let case_has_fallthrough body =
        match List.rev body with
        | { sk = Sbreak; _ } :: _ -> false
        | _ -> true
      in
      rewrite_one_stmt ctx
        ~pred:(fun s ->
          match s.sk with
          | Sswitch (e, cases) ->
            is_pure e
            && List.for_all
                 (fun c ->
                   (not (case_has_fallthrough c.case_body))
                   && List.length c.case_labels = 1
                   &&
                   (* no nested break semantics to worry about *)
                   List.for_all
                     (fun st ->
                       let bad = ref false in
                       Visit.iter_stmt ~fe:(fun _ -> ())
                         ~fs:(fun s' ->
                           match s'.sk with
                           | Sbreak -> ()
                           | Swhile _ | Sdo _ | Sfor _ | Sswitch _ ->
                             bad := true
                           | _ -> ())
                         st;
                       not !bad)
                     c.case_body)
                 cases
          | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Sswitch (e, cases) ->
            let strip_break body =
              List.filter (fun st -> st.sk <> Sbreak) body
            in
            let rec build = function
              | [] -> mk_stmt Snull
              | c :: rest -> (
                let body = sblock (strip_break c.case_body) in
                match c.case_labels with
                | [ L_case v ] ->
                  let cond = binop Eq { e with eid = no_id } v in
                  mk_stmt (Sif (cond, body, Some (build rest)))
                | [ L_default ] | _ -> body)
            in
            (* put default last so the if-else chain is equivalent *)
            let defaults, others =
              List.partition
                (fun c -> List.mem L_default c.case_labels)
                cases
            in
            Some (build (others @ defaults))
          | _ -> None))

let shuffle_switch_cases =
  Mutator.make ~name:"ShuffleSwitchCases"
    ~description:
      "Randomly permute the case groups of a switch statement (only when \
       every group ends in break, so semantics are preserved)."
    ~category:Statement ~provenance:Supervised
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s ->
          match s.sk with
          | Sswitch (_, cases) ->
            List.length cases >= 2
            && List.for_all
                 (fun c ->
                   match List.rev c.case_body with
                   | { sk = Sbreak; _ } :: _ -> true
                   | _ -> false)
                 cases
          | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Sswitch (e, cases) ->
            Some { s with sk = Sswitch (e, Rng.shuffle ctx.Uast.Ctx.rng cases) }
          | _ -> None))

let remove_switch_case =
  Mutator.make ~name:"RemoveSwitchCase"
    ~description:"Remove one non-default case group from a switch statement."
    ~category:Statement ~provenance:Unsupervised
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s ->
          match s.sk with
          | Sswitch (_, cases) ->
            List.exists
              (fun c -> not (List.mem L_default c.case_labels))
              cases
            && List.length cases >= 2
          | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Sswitch (e, cases) ->
            let removable =
              List.filter (fun c -> not (List.mem L_default c.case_labels)) cases
            in
            let* victim = Uast.Ctx.rand_element ctx removable in
            Some { s with sk = Sswitch (e, List.filter (fun c -> c != victim) cases) }
          | _ -> None))

let add_switch_case =
  Mutator.make ~name:"AddSwitchCase"
    ~description:
      "Add a fresh case group with an unused case value and an empty body \
       ending in break."
    ~category:Statement ~provenance:Supervised
    (fun ctx ->
      rewrite_one_stmt ctx ~pred:is_switch ~f:(fun s ->
          match s.sk with
          | Sswitch (e, cases) ->
            let used =
              List.concat_map
                (fun c ->
                  List.filter_map
                    (function
                      | L_case ce -> Const_eval.eval_int ce
                      | L_default -> None)
                    c.case_labels)
                cases
            in
            let rec fresh v = if List.mem v used then fresh (Int64.add v 1L) else v in
            let v = fresh (Int64.of_int (1000 + Uast.Ctx.rand_int ctx 1000)) in
            let case =
              { case_labels = [ L_case (int64_lit v) ]; case_body = [ mk_stmt Sbreak ] }
            in
            Some { s with sk = Sswitch (e, cases @ [ case ]) }
          | _ -> None))

let remove_switch_default =
  Mutator.make ~name:"RemoveSwitchDefault"
    ~description:"Remove the default group of a switch statement."
    ~category:Statement ~provenance:Unsupervised
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s ->
          match s.sk with
          | Sswitch (_, cases) ->
            List.exists (fun c -> List.mem L_default c.case_labels) cases
          | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Sswitch (e, cases) ->
            Some
              {
                s with
                sk =
                  Sswitch
                    ( e,
                      List.filter
                        (fun c -> not (List.mem L_default c.case_labels))
                        cases );
              }
          | _ -> None))

let remove_break_from_switch =
  Mutator.make ~name:"RemoveBreakFromSwitchCase"
    ~description:
      "Remove the trailing break of a case group, introducing fall-through \
       into the next case."
    ~category:Statement ~provenance:Supervised
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s ->
          match s.sk with
          | Sswitch (_, cases) ->
            List.exists
              (fun c ->
                match List.rev c.case_body with
                | { sk = Sbreak; _ } :: _ -> true
                | _ -> false)
              cases
          | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Sswitch (e, cases) ->
            let candidates =
              List.filter
                (fun c ->
                  match List.rev c.case_body with
                  | { sk = Sbreak; _ } :: _ -> true
                  | _ -> false)
                cases
            in
            let* victim = Uast.Ctx.rand_element ctx candidates in
            let cases' =
              List.map
                (fun c ->
                  if c == victim then
                    match List.rev c.case_body with
                    | _ :: rest -> { c with case_body = List.rev rest }
                    | [] -> c
                  else c)
                cases
            in
            Some { s with sk = Sswitch (e, cases') }
          | _ -> None))

let duplicate_case_value_probe =
  Mutator.make ~name:"SpreadCaseLabels"
    ~description:
      "Split a case group with multiple labels into separate adjacent \
       groups sharing one body via fall-through."
    ~category:Statement ~provenance:Unsupervised ~creative:true
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s ->
          match s.sk with
          | Sswitch (_, cases) ->
            List.exists (fun c -> List.length c.case_labels >= 2) cases
          | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Sswitch (e, cases) ->
            let cases' =
              List.concat_map
                (fun c ->
                  if List.length c.case_labels >= 2 then
                    match c.case_labels with
                    | first :: rest ->
                      { case_labels = [ first ]; case_body = [] }
                      :: [ { case_labels = rest; case_body = c.case_body } ]
                    | [] -> [ c ]
                  else [ c ])
                cases
            in
            Some { s with sk = Sswitch (e, cases') }
          | _ -> None))

let wrap_in_switch =
  Mutator.make ~name:"WrapStatementInSwitch"
    ~description:
      "Wrap a statement into a single-case switch over a constant \
       scrutinee, adding a trivial multi-way branch."
    ~category:Statement ~provenance:Unsupervised ~creative:true
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s ->
          match s.sk with
          | Sexpr _ -> true
          | _ -> false)
        ~f:(fun s ->
          let v = Uast.Ctx.rand_int ctx 4 in
          Some
            (mk_stmt
               (Sswitch
                  ( int_lit v,
                    [
                      {
                        case_labels = [ L_case (int_lit v) ];
                        case_body = [ { s with sid = no_id }; mk_stmt Sbreak ];
                      };
                      { case_labels = [ L_default ]; case_body = [ mk_stmt Sbreak ] };
                    ] )))))

let all : Mutator.t list =
  [
    transform_switch_to_if_else;
    shuffle_switch_cases;
    remove_switch_case;
    add_switch_case;
    remove_switch_default;
    remove_break_from_switch;
    duplicate_case_value_probe;
    wrap_in_switch;
  ]
