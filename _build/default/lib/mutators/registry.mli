(** The mutator registry.

    {!core} reproduces the paper's 118 valid mutators: 68 supervised (Ms)
    + 50 unsupervised (Mu), distributed over the five categories exactly
    as reported in §4.1 (Variable 16, Expression 50, Statement 27,
    Function 19, Type 6), with 33 "creative" mutators.

    {!extended} adds 15 extension mutators beyond the published corpus
    (the paper's future-work direction of enlarging the search space); an
    ablation bench compares core vs extended. *)

type t = Mutator.t

val extended : Mutator.t list
(** All implemented mutators (133). *)

val extension_names : string list
(** Names excluded from the published 118-strong corpus. *)

val core : Mutator.t list
(** The 118 mutators of the paper. *)

val supervised : Mutator.t list
(** Ms — the 68 supervised mutators. *)

val unsupervised : Mutator.t list
(** Mu — the 50 unsupervised mutators. *)

val find_opt : string -> Mutator.t option
(** Look a mutator up by its exact name (searches {!extended}). *)

val by_category : Mutator.category -> Mutator.t list

val category_counts : unit -> (Mutator.category * int) list
(** Category histogram of {!core} (matches the paper's Table in §4.1). *)

val creative : Mutator.t list
(** The 33 mutators outside the "[Action] on [Structure]" template. *)
