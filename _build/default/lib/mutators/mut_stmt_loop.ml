(* Statement mutators targeting loops. *)

open Cparse
open Ast
open Mk

let while_to_for =
  Mutator.make ~name:"ConvertWhileToFor"
    ~description:
      "Convert a while loop into an equivalent for loop with empty init \
       and step clauses."
    ~category:Statement ~provenance:Supervised
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s -> match s.sk with Swhile _ -> true | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Swhile (c, b) -> Some { s with sk = Sfor (None, Some c, None, b) }
          | _ -> None))

let for_to_while =
  Mutator.make ~name:"ConvertForToWhile"
    ~description:
      "Convert a for loop into the equivalent while loop, hoisting the \
       init clause and sinking the step into the body."
    ~category:Statement ~provenance:Supervised
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s ->
          match s.sk with
          | Sfor (_, Some _, _, b) ->
            (* only loop bodies without continue: sinking the step past a
               continue would change semantics *)
            let has_continue = ref false in
            Visit.iter_stmt ~fe:(fun _ -> ())
              ~fs:(fun s' ->
                match s'.sk with Scontinue -> has_continue := true | _ -> ())
              b;
            not !has_continue
          | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Sfor (init, Some cond, step, b) ->
            let body_stmts =
              (match b.sk with Sblock ss -> ss | _ -> [ b ])
              @ match step with Some e -> [ sexpr e ] | None -> []
            in
            let loop = mk_stmt (Swhile (cond, sblock body_stmts)) in
            let prefix =
              match init with
              | Some (Fi_expr e) -> [ sexpr e ]
              | Some (Fi_decl vs) -> [ mk_stmt (Sdecl vs) ]
              | None -> []
            in
            Some (sblock (prefix @ [ loop ]))
          | _ -> None))

let do_while_to_while =
  Mutator.make ~name:"ConvertDoWhileToWhile"
    ~description:
      "Convert a do-while loop into a while loop preceded by one unrolled \
       copy of the body."
    ~category:Statement ~provenance:Unsupervised
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s -> match s.sk with Sdo _ -> true | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Sdo (b, c) ->
            Some (sblock [ { b with sid = no_id }; mk_stmt (Swhile (c, b)) ])
          | _ -> None))

let while_to_do_while =
  Mutator.make ~name:"ConvertWhileToDoWhile"
    ~description:
      "Convert a while loop into a do-while loop guarded by an if with the \
       same condition."
    ~category:Statement ~provenance:Supervised
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s ->
          match s.sk with Swhile (c, _) -> is_pure c | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Swhile (c, b) ->
            Some
              (mk_stmt
                 (Sif (c, mk_stmt (Sdo (b, { c with eid = no_id })), None)))
          | _ -> None))

let loop_unroll_once =
  Mutator.make ~name:"PeelLoopIteration"
    ~description:
      "Peel one iteration off a while loop: an if-guarded copy of the body \
       is placed before the loop."
    ~category:Statement ~provenance:Supervised ~creative:true
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s ->
          match s.sk with
          | Swhile (c, b) ->
            is_pure c
            &&
            (* bodies containing break/continue cannot be peeled into an if *)
            let bad = ref false in
            Visit.iter_stmt ~fe:(fun _ -> ())
              ~fs:(fun s' ->
                match s'.sk with Sbreak | Scontinue -> bad := true | _ -> ())
              b;
            not !bad
          | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Swhile (c, b) ->
            let peeled =
              mk_stmt (Sif ({ c with eid = no_id }, { b with sid = no_id }, None))
            in
            Some (sblock [ peeled; s ])
          | _ -> None))

let loop_bound_nudge =
  Mutator.make ~name:"ModifyLoopBound"
    ~description:
      "Modify the constant bound of a counted for loop by a small delta, \
       perturbing trip-count analysis."
    ~category:Statement ~provenance:Supervised
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s ->
          match s.sk with
          | Sfor (_, Some { ek = Binop ((Lt | Le | Gt | Ge), _, { ek = Int_lit _; _ }); _ }, _, _) ->
            true
          | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Sfor (i, Some ({ ek = Binop (op, l, { ek = Int_lit (v, k, u); _ }); _ } as c), st, b) ->
            let delta = Int64.of_int (Uast.Ctx.rand_int ctx 5 - 2) in
            let c' =
              { c with ek = Binop (op, l, mk_expr (Int_lit (Int64.add v delta, k, u))) }
            in
            Some { s with sk = Sfor (i, Some c', st, b) }
          | _ -> None))

let reverse_loop_direction =
  Mutator.make ~name:"ReverseLoopDirection"
    ~description:
      "Reverse a canonical counted loop: for (i = 0; i < N; i++) becomes \
       for (i = N - 1; i >= 0; i--)."
    ~category:Statement ~provenance:Unsupervised ~creative:true
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s ->
          match s.sk with
          | Sfor
              ( Some (Fi_decl [ { v_init = Some { ek = Int_lit (0L, _, _); _ }; _ } ]),
                Some { ek = Binop (Lt, { ek = Ident _; _ }, { ek = Int_lit _; _ }); _ },
                Some { ek = Incdec (true, _, { ek = Ident _; _ }); _ },
                _ ) ->
            true
          | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Sfor
              ( Some (Fi_decl [ v ]),
                Some { ek = Binop (Lt, ({ ek = Ident _; _ } as iv), { ek = Int_lit (n, k, u); _ }); _ },
                Some { ek = Incdec (true, pre, iv2); _ },
                b ) ->
            let v' = { v with v_init = Some (mk_expr (Int_lit (Int64.sub n 1L, k, u))) } in
            let cond = binop Ge { iv with eid = no_id } (int_lit 0) in
            let step = mk_expr (Incdec (false, pre, iv2)) in
            Some { s with sk = Sfor (Some (Fi_decl [ v' ]), Some cond, Some step, b) }
          | _ -> None))

let loop_to_goto =
  Mutator.make ~name:"LowerWhileToGoto"
    ~description:
      "Lower a while loop into explicit label/goto control flow, the form \
       the front-end otherwise never produces."
    ~category:Statement ~provenance:Supervised ~creative:true
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s ->
          match s.sk with
          | Swhile (_, b) ->
            (* break/continue inside would escape the lowered form *)
            let bad = ref false in
            Visit.iter_stmt ~fe:(fun _ -> ())
              ~fs:(fun s' ->
                match s'.sk with Sbreak | Scontinue -> bad := true | _ -> ())
              b;
            not !bad
          | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Swhile (c, b) ->
            let top = Uast.Ctx.generate_unique_name ctx "loop_top" in
            let done_ = Uast.Ctx.generate_unique_name ctx "loop_done" in
            Some
              (sblock
                 [
                   mk_stmt
                     (Slabel
                        ( top,
                          mk_stmt
                            (Sif (unop Lognot c, mk_stmt (Sgoto done_), None)) ));
                   b;
                   mk_stmt (Sgoto top);
                   mk_stmt (Slabel (done_, mk_stmt Snull));
                 ])
          | _ -> None))

let add_loop_counter_guard =
  Mutator.make ~name:"InjectLoopIterationGuard"
    ~description:
      "Inject a fresh bounded counter into a while loop so the loop also \
       exits after a fixed number of iterations."
    ~category:Statement ~provenance:Unsupervised ~creative:true
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s -> match s.sk with Swhile _ -> true | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Swhile (c, b) ->
            let g = Uast.Ctx.generate_unique_name ctx "guard" in
            let decl = decl_stmt ~name:g ~ty:(Tint (Iint, true)) (Some (int_lit 0)) in
            let cond =
              binop Land
                (binop Lt (mk_expr (Incdec (true, false, ident g))) (int_lit 64))
                c
            in
            Some (sblock [ decl; mk_stmt (Swhile (cond, b)) ])
          | _ -> None))

let all : Mutator.t list =
  [
    while_to_for;
    for_to_while;
    do_while_to_while;
    while_to_do_while;
    loop_unroll_once;
    loop_bound_nudge;
    reverse_loop_direction;
    loop_to_goto;
    add_loop_counter_guard;
  ]
