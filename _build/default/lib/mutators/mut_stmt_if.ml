(* Statement mutators targeting if statements. *)

open Cparse
open Ast
open Mk

let is_if s = match s.sk with Sif _ -> true | _ -> false

let duplicate_branch =
  Mutator.make ~name:"DuplicateBranch"
    ~description:
      "Find an IfStmt, duplicate one of its branches (then or else), and \
       replace the other branch with the duplicated one."
    ~category:Statement ~provenance:Supervised
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s -> match s.sk with Sif (_, _, Some _) -> true | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Sif (c, t, Some e) ->
            if Uast.Ctx.flip ctx 0.5 then Some { s with sk = Sif (c, t, Some t) }
            else Some { s with sk = Sif (c, e, Some e) }
          | _ -> None))

let negate_if_condition =
  Mutator.make ~name:"NegateIfCondition"
    ~description:
      "Negate the condition of an if statement and swap its branches, \
       preserving semantics with inverted control flow."
    ~category:Statement ~provenance:Supervised
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s -> match s.sk with Sif (_, _, Some _) -> true | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Sif (c, t, Some e) -> Some { s with sk = Sif (unop Lognot c, e, Some t) }
          | _ -> None))

let unwrap_if =
  Mutator.make ~name:"UnwrapIfStatement"
    ~description:
      "Remove an if statement's condition, keeping only its then branch \
       (the branch becomes unconditional)."
    ~category:Statement ~provenance:Supervised
    (fun ctx ->
      rewrite_one_stmt ctx ~pred:is_if ~f:(fun s ->
          match s.sk with Sif (_, t, _) -> Some t | _ -> None))

let remove_else_branch =
  Mutator.make ~name:"RemoveElseBranch"
    ~description:"Remove the else branch of an if statement."
    ~category:Statement ~provenance:Unsupervised
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s -> match s.sk with Sif (_, _, Some _) -> true | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Sif (c, t, Some _) -> Some { s with sk = Sif (c, t, None) }
          | _ -> None))

let add_else_branch =
  Mutator.make ~name:"AddElseBranch"
    ~description:
      "Add an else branch to an if statement that lacks one, containing a \
       copy of the then branch."
    ~category:Statement ~provenance:Supervised
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s -> match s.sk with Sif (_, _, None) -> true | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Sif (c, t, None) -> Some { s with sk = Sif (c, t, Some t) }
          | _ -> None))

let wrap_stmt_in_if =
  Mutator.make ~name:"WrapStatementInIf"
    ~description:
      "Wrap a statement in an if with an always-true condition, adding an \
       opaque guard the optimizer must discharge."
    ~category:Statement ~provenance:Supervised
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s ->
          match s.sk with
          | Sexpr _ | Sblock _ -> true
          | _ -> false)
        ~f:(fun s ->
          let cond =
            Rng.choose ctx.Uast.Ctx.rng
              [ int_lit 1; binop Eq (int_lit 0) (int_lit 0);
                binop Lt (int_lit 1) (int_lit 2) ]
          in
          Some (mk_stmt (Sif (cond, { s with sid = no_id }, None)))))

let if_to_conditional_assign =
  Mutator.make ~name:"LowerIfToConditionalExpression"
    ~description:
      "Lower an if/else whose branches assign the same variable into a \
       single conditional-expression assignment."
    ~category:Statement ~provenance:Unsupervised ~creative:true
    (fun ctx ->
      let assign_target s =
        match s.sk with
        | Sexpr { ek = Assign (A_none, ({ ek = Ident n; _ } as lhs), rhs); _ } ->
          Some (n, lhs, rhs)
        | Sblock [ { sk = Sexpr { ek = Assign (A_none, ({ ek = Ident n; _ } as lhs), rhs); _ }; _ } ] ->
          Some (n, lhs, rhs)
        | _ -> None
      in
      rewrite_one_stmt ctx
        ~pred:(fun s ->
          match s.sk with
          | Sif (c, t, Some e) -> (
            is_pure c
            &&
            match assign_target t, assign_target e with
            | Some (n1, _, _), Some (n2, _, _) -> String.equal n1 n2
            | _ -> false)
          | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Sif (c, t, Some e) -> (
            match assign_target t, assign_target e with
            | Some (_, lhs, rt), Some (_, _, re) ->
              Some (sexpr (assign lhs (mk_expr (Cond (c, rt, re)))))
            | _ -> None)
          | _ -> None))

let conditional_assign_to_if =
  Mutator.make ~name:"RaiseConditionalExpressionToIf"
    ~description:
      "Raise an assignment of a conditional expression into an explicit \
       if/else statement."
    ~category:Statement ~provenance:Unsupervised
    (fun ctx ->
      rewrite_one_stmt ctx
        ~pred:(fun s ->
          match s.sk with
          | Sexpr { ek = Assign (A_none, { ek = Ident _; _ }, { ek = Cond _; _ }); _ } ->
            true
          | _ -> false)
        ~f:(fun s ->
          match s.sk with
          | Sexpr { ek = Assign (A_none, lhs, { ek = Cond (c, t, f); _ }); _ } ->
            Some
              (mk_stmt
                 (Sif
                    ( c,
                      sexpr (assign { lhs with eid = no_id } t),
                      Some (sexpr (assign { lhs with eid = no_id } f)) )))
          | _ -> None))

let insert_dead_guard =
  Mutator.make ~name:"InsertDeadCodeGuard"
    ~description:
      "Insert before a statement an if (0) guard containing a copy of that \
       statement: dead code that still must be compiled."
    ~category:Statement ~provenance:Supervised ~creative:true
    (fun ctx ->
      let* s =
        pick_stmt ctx (fun s ->
            match s.sk with
            | Sexpr _ -> true
            | _ -> false)
      in
      let dead = mk_stmt (Sif (int_lit 0, { s with sid = no_id }, None)) in
      Some (Uast.Rewrite.insert_before ctx.Uast.Ctx.tu ~sid:s.sid ~stmts:[ dead ]))

let all : Mutator.t list =
  [
    duplicate_branch;
    negate_if_condition;
    unwrap_if;
    remove_else_branch;
    add_else_branch;
    wrap_stmt_in_if;
    if_to_conditional_assign;
    conditional_assign_to_if;
    insert_dead_guard;
  ]
