(* The mutator registry.

   [core] is the reproduction of the paper's 118 valid mutators: 68
   supervised (Ms) + 50 unsupervised (Mu), distributed over the five
   categories as reported in §4.1 (Variable 16, Expression 50, Statement
   27, Function 19, Type 6).

   [extended] additionally contains mutators beyond the published corpus
   (the paper's "future work" direction of enlarging the search space);
   an ablation bench compares core vs extended. *)

type t = Mutator.t

let extended : Mutator.t list =
  Mut_expr_binop.all
  @ Mut_expr_literal.all
  @ Mut_expr_unop.all
  @ Mut_expr_call.all
  @ Mut_expr_access.all
  @ Mut_expr_misc.all
  @ Mut_stmt_if.all
  @ Mut_stmt_loop.all
  @ Mut_stmt_switch.all
  @ Mut_stmt_block.all
  @ Mut_var.all
  @ Mut_func.all
  @ Mut_func_body.all
  @ Mut_type.all

(* Mutators kept out of the 118-strong published corpus. *)
let extension_names =
  [
    (* Expression extensions *)
    "RotateNonCommutativeOperands";
    "InverseComparisonViaNegation";
    "ExpandShiftToMultiplication";
    "ExpandLiteralToExpression";
    "ConvertIntToCharLiteral";
    "BuildCastChain";
    "DuplicateExpressionIntoConditional";
    (* Statement extensions *)
    "WrapStatementInBlock";
    "WrapStatementInSwitch";
    "SpreadCaseLabels";
    "SinkStatementIntoForStep";
    "InjectLoopIterationGuard";
    "ConvertDoWhileToWhile";
    "RaiseConditionalExpressionToIf";
    "HoistDeclarationToFunctionTop";
  ]

let core : Mutator.t list =
  List.filter
    (fun (m : Mutator.t) -> not (List.mem m.Mutator.name extension_names))
    extended

let supervised : Mutator.t list =
  List.filter (fun m -> m.Mutator.provenance = Mutator.Supervised) core

let unsupervised : Mutator.t list =
  List.filter (fun m -> m.Mutator.provenance = Mutator.Unsupervised) core

let find_opt name =
  List.find_opt (fun m -> String.equal m.Mutator.name name) extended

let by_category cat =
  List.filter (fun m -> m.Mutator.category = cat) core

let category_counts () =
  List.map
    (fun c -> (c, List.length (by_category c)))
    Mutator.[ Variable; Expression; Statement; Function; Type_ ]

let creative = List.filter (fun m -> m.Mutator.creative) core
