(* Shared building blocks for mutator implementations.

   Mirrors the steps of the paper's mutator template (Fig. 2):
   collect mutation instances during traversal, select one at random,
   check validity, perform the rewrite. *)

open Cparse
open Ast

(* Step 1-3 of the template: traverse, collect, select. *)
let pick_expr (ctx : Uast.Ctx.t) pred : expr option =
  Uast.Ctx.rand_element ctx (Visit.collect_exprs pred ctx.tu)

let pick_stmt (ctx : Uast.Ctx.t) pred : stmt option =
  Uast.Ctx.rand_element ctx (Visit.collect_stmts pred ctx.tu)

let pick_function (ctx : Uast.Ctx.t) pred : fundef option =
  Uast.Ctx.rand_element ctx (List.filter pred (Visit.functions ctx.tu))

(* Monadic composition for "not applicable" fall-through. *)
let ( let* ) = Option.bind

(* Replace one expression node, selected by predicate, with [f e]. *)
let rewrite_one_expr (ctx : Uast.Ctx.t) ~pred ~f : Ast.tu option =
  let* e = pick_expr ctx pred in
  let* repl = f e in
  Some (Visit.replace_expr ctx.tu ~eid:e.eid ~repl)

(* Replace one statement node, selected by predicate, with [f s]. *)
let rewrite_one_stmt (ctx : Uast.Ctx.t) ~pred ~f : Ast.tu option =
  let* s = pick_stmt ctx pred in
  let* repl = f s in
  Some (Visit.replace_stmt ctx.tu ~sid:s.sid ~repl)

(* Type of an expression under the current analysis, decayed. *)
let ty_of ctx e = Typecheck.decay (Uast.Ctx.type_of_exn ctx e)

let is_int_expr ctx e = is_integer_ty (ty_of ctx e)
let is_arith_expr ctx e = is_arith_ty (ty_of ctx e)

(* Deep-copy an expression (ids are refreshed by the final renumber). *)
let copy_expr (e : expr) : expr = e

(* Default value expression of a given type (the paper's Ret2V uses "0"
   or "0.0" depending on the return type). *)
let default_of_ty = zero_of_ty

(* A fresh declaration statement. *)
let decl_stmt ?(quals = no_quals) ?(storage = S_none) ~name ~ty init =
  mk_stmt
    (Sdecl
       [ { v_name = name; v_ty = ty; v_quals = quals; v_storage = storage; v_init = init } ])

(* All integer-typed variables in scope at function top level. *)
let int_vars_of fd =
  List.filter (fun (_, t) -> is_integer_ty t) (Uast.Query.toplevel_vars_of fd)
