(* Expression mutators targeting binary operators. *)

open Cparse
open Ast
open Mk

let is_binop e = match e.ek with Binop _ -> true | _ -> false

let swap_binary_operands =
  Mutator.make ~name:"SwapBinaryOperands"
    ~description:
      "Swap the two operands of a commutative binary operator, exercising \
       operand-order-sensitive compiler paths."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Binop (op, _, _) -> binop_is_commutative op
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Binop (op, a, b) -> Some { e with ek = Binop (op, b, a) }
          | _ -> None))

let rotate_noncommutative_operands =
  Mutator.make ~name:"RotateNonCommutativeOperands"
    ~description:
      "Swap the operands of a non-commutative arithmetic operator (e.g. \
       a - b becomes b - a), changing data flow while preserving types."
    ~category:Expression ~provenance:Unsupervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Binop ((Sub | Div | Mod | Shl | Shr) as op, a, b) ->
            Uast.Check.check_binop op (ty_of ctx b) (ty_of ctx a)
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Binop (op, a, b) -> Some { e with ek = Binop (op, b, a) }
          | _ -> None))

let change_binary_operator =
  Mutator.make ~name:"ChangeBinaryOperator"
    ~description:
      "Replace a binary operator with a different operator that is valid \
       for the operand types (checked via checkBinop)."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Binop (op, _, _) -> not (binop_is_logical op)
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Binop (op, a, b) ->
            let ta = ty_of ctx a and tb = ty_of ctx b in
            let candidates =
              List.filter
                (fun op' -> op' <> op && Uast.Check.check_binop op' ta tb)
                [ Add; Sub; Mul; Div; Mod; Shl; Shr; Band; Bxor; Bor; Lt; Gt; Le; Ge; Eq; Ne ]
            in
            let* op' = Uast.Ctx.rand_element ctx candidates in
            Some { e with ek = Binop (op', a, b) }
          | _ -> None))

let swap_logical_operator =
  Mutator.make ~name:"SwapLogicalOperator"
    ~description:
      "Switch a logical AND into a logical OR (or vice versa), altering \
       short-circuit control flow."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with Binop ((Land | Lor), _, _) -> true | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Binop (Land, a, b) -> Some { e with ek = Binop (Lor, a, b) }
          | Binop (Lor, a, b) -> Some { e with ek = Binop (Land, a, b) }
          | _ -> None))

let comparison_boundary =
  Mutator.make ~name:"ComparisonBoundaryShift"
    ~description:
      "Modify a relational operator into its boundary-inclusive or \
       -exclusive variant (< into <=, > into >=, and vice versa)."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Binop ((Lt | Le | Gt | Ge), _, _) -> true
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Binop (Lt, a, b) -> Some { e with ek = Binop (Le, a, b) }
          | Binop (Le, a, b) -> Some { e with ek = Binop (Lt, a, b) }
          | Binop (Gt, a, b) -> Some { e with ek = Binop (Ge, a, b) }
          | Binop (Ge, a, b) -> Some { e with ek = Binop (Gt, a, b) }
          | _ -> None))

let equality_flip =
  Mutator.make ~name:"InverseEqualityOperator"
    ~description:"Inverse an equality comparison (== into !=, != into ==)."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with Binop ((Eq | Ne), _, _) -> true | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Binop (Eq, a, b) -> Some { e with ek = Binop (Ne, a, b) }
          | Binop (Ne, a, b) -> Some { e with ek = Binop (Eq, a, b) }
          | _ -> None))

let strength_reduce =
  Mutator.make ~name:"StrengthReduceMultiplication"
    ~description:
      "Rewrite a multiplication by a power-of-two constant into a left \
       shift, steering the optimizer's strength-reduction patterns."
    ~category:Expression ~provenance:Unsupervised ~creative:true
    (fun ctx ->
      let pow2 v = Int64.logand v (Int64.sub v 1L) = 0L && v > 1L in
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Binop (Mul, a, { ek = Int_lit (v, _, _); _ }) ->
            pow2 v && is_int_expr ctx a
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Binop (Mul, a, { ek = Int_lit (v, _, _); _ }) ->
            let rec log2 v acc = if v <= 1L then acc else log2 (Int64.div v 2L) (acc + 1) in
            Some { e with ek = Binop (Shl, a, int_lit (log2 v 0)) }
          | _ -> None))

let strength_dereduce =
  Mutator.make ~name:"ExpandShiftToMultiplication"
    ~description:
      "Rewrite a left shift by a constant into the equivalent \
       multiplication by a power of two."
    ~category:Expression ~provenance:Unsupervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Binop (Shl, a, { ek = Int_lit (v, _, _); _ }) ->
            v >= 0L && v < 31L && is_int_expr ctx a
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Binop (Shl, a, { ek = Int_lit (v, _, _); _ }) ->
            Some
              { e with ek = Binop (Mul, a, int64_lit (Int64.shift_left 1L (Int64.to_int v))) }
          | _ -> None))

let add_neutral_element =
  Mutator.make ~name:"AddNeutralElement"
    ~description:
      "Wrap an arithmetic expression with a semantically neutral operation \
       (+ 0 or * 1), creating folding opportunities for the optimizer."
    ~category:Expression ~provenance:Supervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          (match e.ek with Init_list _ | Str_lit _ -> false | _ -> true)
          && is_arith_expr ctx e && is_pure e)
        ~f:(fun e ->
          let op, n = if Uast.Ctx.flip ctx 0.5 then (Add, 0) else (Mul, 1) in
          Some (binop op (copy_expr e) (int_lit n))))

let reassociate =
  Mutator.make ~name:"ReassociateBinaryOperator"
    ~description:
      "Reassociate a chain of identical associative integer operators: \
       (a op b) op c becomes a op (b op c)."
    ~category:Expression ~provenance:Unsupervised
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Binop ((Add | Mul | Band | Bxor | Bor) as op, { ek = Binop (op', _, _); _ }, _) ->
            op = op' && is_int_expr ctx e
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Binop (op, { ek = Binop (_, a, b); _ }, c) ->
            Some { e with ek = Binop (op, a, binop op b c) }
          | _ -> None))

let distribute_mul =
  Mutator.make ~name:"DistributeMultiplication"
    ~description:
      "Distribute a multiplication over an addition: a * (b + c) becomes \
       a * b + a * c (duplicating the multiplier expression)."
    ~category:Expression ~provenance:Supervised ~creative:true
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Binop (Mul, a, { ek = Binop (Add, _, _); _ }) ->
            is_pure a && is_int_expr ctx e
          | _ -> false)
        ~f:(fun e ->
          match e.ek with
          | Binop (Mul, a, { ek = Binop (Add, b, c); _ }) ->
            Some (binop Add (binop Mul (copy_expr a) b) (binop Mul (copy_expr a) c))
          | _ -> None))

let inverse_comparison =
  Mutator.make ~name:"InverseComparisonViaNegation"
    ~description:
      "Replace a relational comparison by the logical negation of its \
       complement: a < b becomes !(a >= b)."
    ~category:Expression ~provenance:Unsupervised ~creative:true
    (fun ctx ->
      rewrite_one_expr ctx
        ~pred:(fun e ->
          match e.ek with
          | Binop ((Lt | Le | Gt | Ge), _, _) -> true
          | _ -> false)
        ~f:(fun e ->
          let complement = function
            | Lt -> Ge | Le -> Gt | Gt -> Le | Ge -> Lt
            | op -> op
          in
          match e.ek with
          | Binop (op, a, b) ->
            Some (unop Lognot (binop (complement op) a b))
          | _ -> None))

let all : Mutator.t list =
  [
    swap_binary_operands;
    rotate_noncommutative_operands;
    change_binary_operator;
    swap_logical_operator;
    comparison_boundary;
    equality_flip;
    strength_reduce;
    strength_dereduce;
    add_neutral_element;
    reassociate;
    distribute_mul;
    inverse_comparison;
  ]
