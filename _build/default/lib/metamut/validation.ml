(* Validation of a synthesized mutator implementation (§3.3).

   Goals are checked from simplest (#1) to most complex (#6).  Goals 1-5
   concern the mutator binary itself and are observed through the
   oracle's defect flags (our OCaml mutators cannot literally fail to
   compile); goal 6 — every mutant of the test suite must compile — is
   checked *for real*: the intended mutator is applied to the generated
   unit tests and each mutant goes through the front-end. *)

open Cparse

type goal_violation = {
  gv_goal : int;            (* 1..6 *)
  gv_message : string;
}

type verdict =
  | Pass
  | Fail of goal_violation

(* Apply the intended mutator to every test program and type-check the
   mutants; also run them in the reference interpreter to catch mutants
   that break execution of the validation harness. *)
let check_goal6 ~(rng : Rng.t) (m : Mutators.Mutator.t)
    (tests : Ast.tu list) : goal_violation option =
  let failures = ref [] in
  List.iter
    (fun tu ->
      match Mutators.Mutator.apply m ~rng tu with
      | None -> ()
      | Some tu' ->
        let src = Pretty.tu_to_string tu' in
        (match Parser.parse src with
        | Error e -> failures := e :: !failures
        | Ok tu'' ->
          let r = Typecheck.check tu'' in
          if not r.Typecheck.r_ok then
            failures :=
              List.map Typecheck.diag_to_string (Typecheck.errors r)
              @ !failures))
    tests;
  match !failures with
  | [] -> None
  | e :: _ ->
    Some { gv_goal = 6; gv_message = Fmt.str "mutant does not compile: %s" e }

(* Does the mutator apply to at least one test (goal #5's "changes
   something")? *)
let check_applicability ~(rng : Rng.t) (m : Mutators.Mutator.t)
    (tests : Ast.tu list) : bool =
  List.exists (fun tu -> Mutators.Mutator.apply m ~rng tu <> None) tests

(* Full validation: returns the simplest unmet goal.  Applicability
   (goal #5) is checked against the whole targeted pool — the LLM
   generated those tests specifically for this mutator — while the
   mutant-compilability check (#6) uses the sampled [tests]. *)
let validate ~(rng : Rng.t) ?(pool : Ast.tu list option)
    (impl : Llm_sim.impl) (tests : Ast.tu list) : verdict =
  (* goals 1-5: the oracle's defect flags, simplest first *)
  let flagged =
    List.sort compare (List.map Llm_sim.defect_goal impl.Llm_sim.im_defects)
  in
  match flagged with
  | g :: _ when g < 6 ->
    let d =
      List.find
        (fun d -> Llm_sim.defect_goal d = g)
        impl.Llm_sim.im_defects
    in
    Fail { gv_goal = g; gv_message = Llm_sim.defect_to_string d }
  | _ -> (
    (* goal 6: flagged, or detected for real on the test suite *)
    let flagged6 = List.mem 6 flagged in
    match impl.Llm_sim.im_invention.Llm_sim.i_intended with
    | None ->
      if flagged6 then
        Fail { gv_goal = 6; gv_message = "mutant does not compile" }
      else Pass (* unimplementable designs can masquerade as valid *)
    | Some m ->
      if flagged6 then
        Fail { gv_goal = 6; gv_message = "mutant does not compile" }
      else if
        not (check_applicability ~rng m (Option.value ~default:tests pool))
      then
        Fail { gv_goal = 5; gv_message = "mutator does not rewrite any test" }
      else (
        match check_goal6 ~rng m tests with
        | Some gv -> Fail gv
        | None -> Pass))

(* The authors' post-hoc manual check (§4): a mutator that survived the
   automatic loop is valid only if it is consistent with its description
   on all (including author-added) test cases, and is not a duplicate. *)
type manual_check = Accepted | Rejected of string

let manual_review (impl : Llm_sim.impl) ~(accepted_names : string list) :
    manual_check =
  match impl.Llm_sim.im_flaw with
  | Llm_sim.F_mismatched_implementation ->
    Rejected "implementation does not match its description"
  | Llm_sim.F_unthorough_tests ->
    Rejected "produces compile-error mutants on more complex tests"
  | Llm_sim.F_duplicate -> Rejected "duplicate of a previous mutator"
  | Llm_sim.F_none ->
    if
      List.mem impl.Llm_sim.im_invention.Llm_sim.i_name accepted_names
    then Rejected "duplicate of a previous mutator"
    else Accepted
