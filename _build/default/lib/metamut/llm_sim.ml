(* Deterministic LLM oracle.

   The paper's contribution is the *process* around the LLM, so the
   oracle's job is to exhibit GPT-4's empirically observed behaviour:

   - invention samples plausible mutator designs from the action x
     structure space (with ~28 % "creative" deviations from the template);
   - synthesis produces a tentative implementation carrying a sampled set
     of defects (Table 1's distribution: mostly "does not compile" and
     "creates compile-error mutants");
   - each QA round consumes tokens and wall-clock time drawn from
     distributions calibrated to Tables 2-3;
   - bug-fix requests repair the targeted defect with high (not certain)
     probability.

   Determinism: everything is drawn from an explicit Rng.t. *)

open Cparse

(* Defect classes = the violation classes of validation goals #1-#6. *)
type defect =
  | D_not_compile        (* goal 1: mutator does not compile *)
  | D_hangs              (* goal 2 *)
  | D_crashes            (* goal 3 *)
  | D_outputs_nothing    (* goal 4 *)
  | D_no_rewrite         (* goal 5 *)
  | D_compile_error_mutant (* goal 6 *)

let defect_goal = function
  | D_not_compile -> 1
  | D_hangs -> 2
  | D_crashes -> 3
  | D_outputs_nothing -> 4
  | D_no_rewrite -> 5
  | D_compile_error_mutant -> 6

let defect_to_string = function
  | D_not_compile -> "mutator does not compile"
  | D_hangs -> "mutator hangs"
  | D_crashes -> "mutator crashes"
  | D_outputs_nothing -> "mutator outputs nothing"
  | D_no_rewrite -> "mutator does not rewrite"
  | D_compile_error_mutant -> "mutator creates compile-error mutant"

(* Latent flaws that survive the refinement loop but fail the authors'
   manual validation (§4.1's invalid-mutator breakdown). *)
type latent_flaw =
  | F_none
  | F_mismatched_implementation (* e.g. the broken InverseUnaryOperator *)
  | F_unthorough_tests          (* breaks on more complex programs *)
  | F_duplicate

type usage = {
  u_prompt_tokens : int;
  u_completion_tokens : int;
  u_wait_s : float;     (* time awaiting the response *)
  u_prepare_s : float;  (* request preparation: compile, run, collect *)
}

let tokens u = u.u_prompt_tokens + u.u_completion_tokens

type t = {
  rng : Rng.t;
  mutable history : string list; (* names already invented this session *)
}

let create ?(seed = 1) () = { rng = Rng.create seed; history = [] }

(* ------------------------------------------------------------------ *)
(* Cost sampling (calibrated to Tables 2-3)                            *)
(* ------------------------------------------------------------------ *)

(* Right-skewed sampler: median ~ [median], occasionally up to [max]. *)
let skewed rng ~min ~median ~max =
  let u = Rng.float rng in
  if u < 0.5 then min + Rng.int rng (Stdlib.max 1 (median - min))
  else if u < 0.9 then median + Rng.int rng (Stdlib.max 1 ((max - median) / 6))
  else median + Rng.int rng (Stdlib.max 1 (max - median))

let invention_usage rng =
  let total = skewed rng ~min:359 ~median:1130 ~max:2240 in
  {
    u_prompt_tokens = total * 7 / 10;
    u_completion_tokens = total - (total * 7 / 10);
    u_wait_s = float_of_int (skewed rng ~min:11 ~median:15 ~max:21);
    u_prepare_s = 0.;
  }

let synthesis_usage rng =
  let total = skewed rng ~min:372 ~median:2488 ~max:3870 in
  {
    u_prompt_tokens = total / 2;
    u_completion_tokens = total - (total / 2);
    u_wait_s = float_of_int (skewed rng ~min:14 ~median:45 ~max:101);
    u_prepare_s = float_of_int (skewed rng ~min:0 ~median:4 ~max:9);
  }

let bugfix_usage rng =
  let total = skewed rng ~min:335 ~median:1100 ~max:11000 in
  {
    u_prompt_tokens = total * 6 / 10;
    u_completion_tokens = total - (total * 6 / 10);
    u_wait_s = float_of_int (skewed rng ~min:11 ~median:46 ~max:123);
    u_prepare_s = float_of_int (skewed rng ~min:0 ~median:9 ~max:69);
  }

(* ------------------------------------------------------------------ *)
(* Step 1: invention                                                   *)
(* ------------------------------------------------------------------ *)

type invention = {
  i_name : string;
  i_description : string;
  i_creative : bool;
  i_intended : Mutators.Mutator.t option;
      (* the behaviour this design denotes, when it corresponds to a
         mutator of the reproduction corpus *)
}

(* The oracle invents designs by sampling the corpus (these are, after
   all, the designs GPT-4 actually produced) plus occasional designs with
   no valid implementation. *)
let invent (llm : t) ~(pool : Mutators.Mutator.t list) : invention * usage =
  let usage = invention_usage llm.rng in
  let fresh =
    List.filter
      (fun (m : Mutators.Mutator.t) -> not (List.mem m.name llm.history))
      pool
  in
  let pick_known () =
    match Rng.choose_opt llm.rng fresh with
    | Some m ->
      {
        i_name = m.Mutators.Mutator.name;
        i_description = m.Mutators.Mutator.description;
        i_creative = m.Mutators.Mutator.creative;
        i_intended = Some m;
      }
    | None ->
      (* pool exhausted: duplicate of something already generated *)
      let m = Rng.choose llm.rng pool in
      {
        i_name = m.Mutators.Mutator.name;
        i_description = m.Mutators.Mutator.description;
        i_creative = m.Mutators.Mutator.creative;
        i_intended = Some m;
      }
  in
  let inv =
    if Rng.flip llm.rng 0.04 then begin
      (* a design with no workable implementation in this language *)
      let action = Rng.choose llm.rng Prompts.actions in
      let structure = Rng.choose llm.rng Prompts.program_structures in
      {
        i_name = Fmt.str "%s%s" action structure;
        i_description =
          Fmt.str "This mutator performs %s on %s." action structure;
        i_creative = false;
        i_intended = None;
      }
    end
    else pick_known ()
  in
  llm.history <- inv.i_name :: llm.history;
  (inv, usage)

(* ------------------------------------------------------------------ *)
(* Step 2: synthesis                                                   *)
(* ------------------------------------------------------------------ *)

type impl = {
  im_invention : invention;
  im_defects : defect list;
  im_flaw : latent_flaw;
}

(* Sample initial defects following Table 1's class distribution.  About
   46 % of syntheses are correct on the first attempt ("nearly half"). *)
let sample_defects rng =
  if Rng.flip rng 0.46 then []
  else begin
    let n = 1 + Rng.weighted rng [ (5, 0); (3, 1); (2, 2); (1, 3) ] in
    List.init n (fun _ ->
        Rng.weighted rng
          [
            (51, D_not_compile);
            (3, D_hangs);
            (4, D_crashes);
            (14, D_outputs_nothing);
            (1, D_no_rewrite);
            (27, D_compile_error_mutant);
          ])
  end

let sample_flaw rng (inv : invention) =
  if inv.i_intended = None then F_mismatched_implementation
  else if Rng.flip rng 0.05 then F_mismatched_implementation
  else if Rng.flip rng 0.07 then F_unthorough_tests
  else F_none

let synthesize (llm : t) (inv : invention) : impl * usage =
  let usage = synthesis_usage llm.rng in
  ( {
      im_invention = inv;
      im_defects = sample_defects llm.rng;
      im_flaw = sample_flaw llm.rng inv;
    },
    usage )

(* ------------------------------------------------------------------ *)
(* Step 3a: unit-test generation                                       *)
(* ------------------------------------------------------------------ *)

(* Targeted unit tests containing structures the seed templates lack:
   char literals, explicit deref-of-addressof, sizeof, dual same-signature
   functions, if/else assignments — exactly the structures a prompted LLM
   produces when told which mutator the tests are for. *)
let targeted_snippets : string list =
  [
    {|
int pick(int mode) {
  char tag = 'x';
  int r = 0;
  if (mode > 0)
    r = 10;
  else
    r = 20;
  return r + *(&mode) + tag + (int)sizeof(int);
}
int main(void) { return pick(1) & 255; }
|};
    {|
struct pt { int x; int y; };
int getx(struct pt *p) { return (*p).x; }
int combine_a(int a, int b) { return a + b; }
int combine_b(int a, int b) { return a * b; }
int main(void) {
  struct pt p;
  p.x = 3;
  p.y = 4;
  return getx(&p) + combine_a(1, 2) + combine_b(2, 3);
}
|};
    {|
int main(void) {
  int i;
  int s = 0;
  s = 1;
  for (i = 0; i < 3; i++)
    s += i;
  return s;
}
|};
  ]

(* "Generate test cases for which the mutator can be applied": the
   oracle emits compilable programs rich in the targeted structures —
   modelled as a mix of feature-rich templates, targeted snippets, and
   generated programs. *)
let generate_tests (llm : t) ~(count : int) : Cparse.Ast.tu list =
  let parse_all srcs =
    List.filter_map
      (fun src ->
        match Parser.parse src with Ok tu -> Some tu | Error _ -> None)
      srcs
  in
  parse_all Fuzzing.Seeds.templates
  @ parse_all targeted_snippets
  @ List.init count (fun _ -> Ast_gen.gen_tu llm.rng)

(* ------------------------------------------------------------------ *)
(* Step 3b: bug fixing                                                 *)
(* ------------------------------------------------------------------ *)

(* Ask the LLM to fix the defect behind [goal]; succeeds with high
   probability, except hangs which GPT-4 could not fix (§5.4 limitation 2). *)
let fix (llm : t) (impl : impl) ~(goal : int) : impl * usage * bool =
  let usage = bugfix_usage llm.rng in
  let success_p = if goal = 2 then 0.05 else 0.85 in
  if Rng.flip llm.rng success_p then begin
    let removed = ref false in
    let defects =
      List.filter
        (fun d ->
          if (not !removed) && defect_goal d = goal then begin
            removed := true;
            false
          end
          else true)
        impl.im_defects
    in
    ({ impl with im_defects = defects }, usage, true)
  end
  else (impl, usage, false)
