lib/metamut/prompts.ml: Fmt String
