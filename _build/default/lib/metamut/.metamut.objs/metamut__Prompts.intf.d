lib/metamut/prompts.mli:
