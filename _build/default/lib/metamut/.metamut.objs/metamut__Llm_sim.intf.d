lib/metamut/llm_sim.mli: Cparse Mutators
