lib/metamut/pipeline.ml: Cparse Hashtbl List Llm_sim Mutators Option Rng Validation
