lib/metamut/validation.mli: Cparse Llm_sim Mutators
