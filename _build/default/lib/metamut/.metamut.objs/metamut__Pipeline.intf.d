lib/metamut/pipeline.mli: Llm_sim Mutators
