lib/metamut/validation.ml: Ast Cparse Fmt List Llm_sim Mutators Option Parser Pretty Rng Typecheck
