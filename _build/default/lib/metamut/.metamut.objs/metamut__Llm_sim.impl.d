lib/metamut/llm_sim.ml: Ast_gen Cparse Fmt Fuzzing List Mutators Parser Prompts Rng Stdlib
