(** The prompt content of the MetaMut framework (§3.1-§3.3).

    The invention prompt instantiates
    ["A semantic-aware mutation operator that performs [Action] on
    [Program Structure]"] with the action list (derived from AST/IR API
    member functions) and the program-structure list (AST node types),
    plus the paper's creativity and sampling hints. *)

val actions : string list
(** The [Action] list of the invention prompt. *)

val program_structures : string list
(** The [Program Structure] list (AST node types). *)

val invention_prompt : history:string list -> string
(** The full invention prompt, with previously generated mutator names
    included as the duplicate-avoidance sampling hint. *)

val implementation_template : string
(** The mutator implementation template of Fig. 2, with the six
    chain-of-thought steps. *)

val synthesis_prompt : name:string -> description:string -> string

val test_generation_prompt : name:string -> description:string -> string

val feedback_prompt : goal:int -> message:string -> string
(** The refinement-loop feedback message for an unmet validation goal. *)
