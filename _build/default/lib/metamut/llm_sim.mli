(** Deterministic LLM oracle.

    The paper's contribution is the process around the LLM; the oracle's
    job is to exhibit GPT-4's empirically observed behaviour — invention
    sampling, defect-carrying syntheses (Table 1's distribution), token
    and latency costs (Tables 2-3), and imperfect bug fixing.  Everything
    is drawn from an explicit {!Cparse.Rng.t}, so generation campaigns
    are reproducible. *)

(** Defect classes, one per validation goal #1-#6. *)
type defect =
  | D_not_compile
  | D_hangs
  | D_crashes
  | D_outputs_nothing
  | D_no_rewrite
  | D_compile_error_mutant

val defect_goal : defect -> int
val defect_to_string : defect -> string

(** Latent flaws that survive the refinement loop but fail the authors'
    manual review (§4.1's invalid-mutator breakdown). *)
type latent_flaw =
  | F_none
  | F_mismatched_implementation
  | F_unthorough_tests
  | F_duplicate

type usage = {
  u_prompt_tokens : int;
  u_completion_tokens : int;
  u_wait_s : float;
  u_prepare_s : float;
}

val tokens : usage -> int

type t = {
  rng : Cparse.Rng.t;
  mutable history : string list;  (** names invented this session *)
}

val create : ?seed:int -> unit -> t

val invention_usage : Cparse.Rng.t -> usage
val synthesis_usage : Cparse.Rng.t -> usage
val bugfix_usage : Cparse.Rng.t -> usage

type invention = {
  i_name : string;
  i_description : string;
  i_creative : bool;
  i_intended : Mutators.Mutator.t option;
      (** the behaviour this design denotes, when it corresponds to a
          corpus mutator; [None] for unimplementable designs *)
}

val invent : t -> pool:Mutators.Mutator.t list -> invention * usage
(** Step 1 (Fig. 1): sample a mutator design, avoiding duplicates of the
    session history while the pool lasts. *)

type impl = {
  im_invention : invention;
  im_defects : defect list;
  im_flaw : latent_flaw;
}

val sample_defects : Cparse.Rng.t -> defect list
(** Table 1's class distribution; empty ~46 % of the time ("nearly half
    correct on the first attempt"). *)

val synthesize : t -> invention -> impl * usage
(** Step 2: a tentative implementation with sampled defects. *)

val targeted_snippets : string list
(** Unit-test programs containing structures the seed templates lack. *)

val generate_tests : t -> count:int -> Cparse.Ast.tu list
(** Step 3a: "Generate test cases for which the mutator can be applied" —
    templates, targeted snippets, and [count] generated programs. *)

val fix : t -> impl -> goal:int -> impl * usage * bool
(** Step 3b: request a fix for the defect behind [goal]; succeeds with
    high probability except for hangs (§5.4 limitation 2). *)
