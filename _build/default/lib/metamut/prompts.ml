(* The prompt content of the MetaMut framework (§3.1).

   The invention prompt instantiates the template
     "A semantic-aware mutation operator that performs [Action] on
      [Program Structure]"
   with the action list (derived from AST/IR API member functions) and the
   program-structure list (AST node types), plus creativity and sampling
   hints. *)

let actions =
  [
    "Add"; "Modify"; "Copy"; "Swap"; "Inline"; "Destruct"; "Group";
    "Combine"; "Lift"; "Switch"; "Inverse"; "Remove"; "Duplicate";
    "Wrap"; "Expand"; "Contract"; "Reorder"; "Rename"; "Replace";
    "Split"; "Merge"; "Promote"; "Demote"; "Negate"; "Convert";
  ]

let program_structures =
  [
    "BinaryOperator"; "UnaryOperator"; "LogicalExpr"; "IntegerLiteral";
    "CharLiteral"; "FloatingLiteral"; "StringLiteral"; "IfStmt";
    "WhileStmt"; "DoStmt"; "ForStmt"; "SwitchStmt"; "CaseStmt";
    "ReturnStmt"; "GotoStmt"; "LabelStmt"; "CompoundStmt"; "VarDecl";
    "ParmVarDecl"; "FunctionDecl"; "CallExpr"; "ArraySubscriptExpr";
    "MemberExpr"; "CastExpr"; "ConditionalOperator"; "CommaOperator";
    "InitListExpr"; "Attribute"; "Builtins"; "ArrayDimension";
    "TypeQualifier"; "StorageClass"; "StructType"; "PointerType";
  ]

let invention_prompt ~(history : string list) : string =
  Fmt.str
    "Give me the name and a brief description of a semantic-aware mutation \
     operator that performs [Action] on [Program Structure], where both \
     the action and the program structure are selected from the lists \
     below.\n\
     Actions: %s\n\
     Program Structures: %s\n\
     You are encouraged to explore actions and program structures that are \
     related to, but not limited to, those listed.\n\
     Avoid duplicating these previously generated mutators: %s"
    (String.concat ", " actions)
    (String.concat ", " program_structures)
    (String.concat ", " history)

(* The mutator implementation template (Fig. 2). *)
let implementation_template : string =
  {|#include "Mutator.h"
#include "Manager.h"
{{Includes}}

class {{MutatorName}}: public Mutator, public ASTVisitor {
  bool {{Visitor}}({{NodeType}}) {
    // Step 2, Collect mutation instances
  }
  bool mutate() override {
    // Step 1, Traverse the AST
    // Step 3, Select a mutation instance
    // Step 4, Check mutation validity
    // Step 5, Perform mutation
    // Step 6, Return true if changed
  }
  {{VarsToStoreMutationInstances}}
};

static RegisterMutator<{{MutatorName}}>
  M("{{MutatorName}}", "{{MutatorDescription}}")|}

let synthesis_prompt ~name ~description : string =
  Fmt.str
    "Implement the mutator %s (%s) by completing the following template \
     using the µAST APIs declared in Mutator.h.  Follow the numbered steps \
     in the comments.\n%s"
    name description implementation_template

let test_generation_prompt ~name ~description : string =
  Fmt.str
    "Generate test cases for which the mutator %s (%s) can be applied."
    name description

let feedback_prompt ~goal ~message : string =
  Fmt.str
    "The mutator implementation violates validation goal #%d: %s.\n\
     Provide a corrected implementation."
    goal message
