(** Validation of a synthesized mutator implementation (§3.3).

    Goals are checked from simplest (#1) to most complex (#6).  Goals 1-5
    concern the mutator binary itself and are observed through the
    oracle's defect flags; goal #6 — every mutant of the unit-test suite
    must compile — is checked {e for real} by applying the intended
    mutator and type checking its mutants. *)

type goal_violation = { gv_goal : int; gv_message : string }

type verdict = Pass | Fail of goal_violation

val check_goal6 :
  rng:Cparse.Rng.t ->
  Mutators.Mutator.t ->
  Cparse.Ast.tu list ->
  goal_violation option
(** Apply the mutator to every test and type check the mutants. *)

val check_applicability :
  rng:Cparse.Rng.t -> Mutators.Mutator.t -> Cparse.Ast.tu list -> bool
(** Does the mutator rewrite at least one test (goal #5)? *)

val validate :
  rng:Cparse.Rng.t ->
  ?pool:Cparse.Ast.tu list ->
  Llm_sim.impl ->
  Cparse.Ast.tu list ->
  verdict
(** Return the simplest unmet goal.  Applicability is checked against the
    full targeted [pool] (the tests were generated for this mutator);
    the mutant-compilability check uses the sampled test list. *)

type manual_check = Accepted | Rejected of string

val manual_review :
  Llm_sim.impl -> accepted_names:string list -> manual_check
(** The authors' post-hoc review: consistent-with-description on all
    test cases and not a duplicate of an accepted mutator. *)
