(* ASCII rendering of the paper's figures: multi-series trends (Figs 7
   and 9) as both a data table and a coarse line plot. *)

type series = { label : string; points : (int * int) list }

let make ~label ~points = { label; points }

(* Print each series as rows of (x, y) samples. *)
let render_data ~title (series : series list) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf ("== " ^ title ^ " ==\n");
  List.iter
    (fun s ->
      Buffer.add_string buf (Fmt.str "%-12s" s.label);
      List.iter
        (fun (x, y) -> Buffer.add_string buf (Fmt.str " %d:%d" x y))
        s.points;
      Buffer.add_char buf '\n')
    series;
  Buffer.contents buf

(* A coarse ASCII plot: rows are series, columns are time buckets, cells
   are normalised heights 0-9. *)
let render_plot ?(width = 40) ~title (series : series list) : string =
  let max_y =
    List.fold_left
      (fun acc s ->
        List.fold_left (fun acc (_, y) -> max acc y) acc s.points)
      1 series
  in
  let max_x =
    List.fold_left
      (fun acc s ->
        List.fold_left (fun acc (x, _) -> max acc x) acc s.points)
      1 series
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Fmt.str "== %s ==  (x: 0..%d, y: 0..%d)\n" title max_x max_y);
  List.iter
    (fun s ->
      let cells = Bytes.make width ' ' in
      List.iter
        (fun (x, y) ->
          let col = min (width - 1) (x * width / max 1 max_x) in
          let h = Char.chr (Char.code '0' + min 9 (y * 10 / max 1 (max_y + 1))) in
          Bytes.set cells col h)
        s.points;
      (* fill gaps with the previous height for readability *)
      let last = ref ' ' in
      Bytes.iteri
        (fun i c ->
          if c = ' ' && !last <> ' ' then Bytes.set cells i !last
          else if c <> ' ' then last := c)
        cells;
      Buffer.add_string buf (Fmt.str "%-12s|%s|\n" s.label (Bytes.to_string cells)))
    series;
  Buffer.contents buf

(* Venn-style summary of crash sets (Fig. 8): per-set sizes, exclusive
   counts, and the grand union. *)
let render_venn ~title (sets : (string * (string, unit) Hashtbl.t) list) :
    string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ title ^ " ==\n");
  let union = Hashtbl.create 64 in
  List.iter
    (fun (_, s) -> Hashtbl.iter (fun k () -> Hashtbl.replace union k ()) s)
    sets;
  let exclusive name set =
    Hashtbl.fold
      (fun k () acc ->
        let elsewhere =
          List.exists
            (fun (n, s) -> n <> name && Hashtbl.mem s k)
            sets
        in
        if elsewhere then acc else acc + 1)
      set 0
  in
  List.iter
    (fun (name, set) ->
      Buffer.add_string buf
        (Fmt.str "%-10s total=%2d exclusive=%2d\n" name (Hashtbl.length set)
           (exclusive name set)))
    sets;
  Buffer.add_string buf (Fmt.str "union of unique crashes: %d\n" (Hashtbl.length union));
  (* pairwise intersections *)
  let rec pairs = function
    | [] -> ()
    | (n1, s1) :: rest ->
      List.iter
        (fun (n2, s2) ->
          let inter =
            Hashtbl.fold
              (fun k () acc -> if Hashtbl.mem s2 k then acc + 1 else acc)
              s1 0
          in
          if inter > 0 then
            Buffer.add_string buf (Fmt.str "  %s ∩ %s = %d\n" n1 n2 inter))
        rest;
      pairs rest
  in
  pairs sets;
  Buffer.contents buf
