(** Aligned ASCII tables for reproducing the paper's tables. *)

type t

val create : title:string -> header:string list -> t

val add_row : t -> string list -> unit

val add_int_row : t -> string -> int list -> unit
(** [add_int_row t label ints] — a label column followed by integers. *)

val render : t -> string
(** First column left-aligned, the rest right-aligned, with a separator
    under the header. *)

val print : t -> unit
