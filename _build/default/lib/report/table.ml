(* Aligned ASCII tables for reproducing the paper's tables. *)

type t = {
  title : string;
  header : string list;
  mutable rows : string list list;
}

let create ~title ~header = { title; header; rows = [] }

let add_row t row = t.rows <- t.rows @ [ row ]

let add_int_row t label ints =
  add_row t (label :: List.map string_of_int ints)

let render (t : t) : string =
  let all = t.header :: t.rows in
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) 0 all
  in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun i w ->
           let cell = Option.value ~default:"" (List.nth_opt row i) in
           (* left-align the first column, right-align the rest *)
           if i = 0 then Fmt.str "%-*s" w cell else Fmt.str "%*s" w cell)
         widths)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (render_row t.header ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (render_row r ^ "\n")) t.rows;
  Buffer.contents buf

let print t = print_string (render t)
