(** ASCII rendering of the paper's figures: multi-series trends (Figs 7
    and 9) and crash-set Venn summaries (Fig. 8). *)

type series = { label : string; points : (int * int) list }

val make : label:string -> points:(int * int) list -> series

val render_data : title:string -> series list -> string
(** Each series as rows of [x:y] samples. *)

val render_plot : ?width:int -> title:string -> series list -> string
(** Coarse line plot: one row per series, cells are normalised heights
    0-9 over [width] time buckets. *)

val render_venn :
  title:string -> (string * (string, unit) Hashtbl.t) list -> string
(** Per-set sizes, exclusive counts, grand union, and non-empty pairwise
    intersections. *)
