lib/report/series.ml: Buffer Bytes Char Fmt Hashtbl List
