lib/report/table.mli:
