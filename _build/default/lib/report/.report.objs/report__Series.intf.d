lib/report/series.mli: Hashtbl
