lib/report/table.ml: Buffer Fmt List Option String
