(** Source locations (1-based line/column plus byte offset). *)

type t = { line : int; col : int; offset : int }

val dummy : t

val make : line:int -> col:int -> offset:int -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val compare : t -> t -> int
(** Orders by byte offset. *)
