(** Generic traversal and rewriting combinators over the AST.

    [map_*] apply a transformation bottom-up (children first), so a
    rewrite function can simply test node ids against a target and return
    a replacement.  [iter_*] visit nodes top-down. *)

val map_expr : (Ast.expr -> Ast.expr) -> Ast.expr -> Ast.expr
val map_var_decl : (Ast.expr -> Ast.expr) -> Ast.var_decl -> Ast.var_decl

val map_stmt :
  fe:(Ast.expr -> Ast.expr) -> fs:(Ast.stmt -> Ast.stmt) -> Ast.stmt -> Ast.stmt

val map_fundef :
  fe:(Ast.expr -> Ast.expr) ->
  fs:(Ast.stmt -> Ast.stmt) ->
  Ast.fundef ->
  Ast.fundef

val map_tu :
  ?fe:(Ast.expr -> Ast.expr) ->
  ?fs:(Ast.stmt -> Ast.stmt) ->
  Ast.tu ->
  Ast.tu
(** Map every expression and statement of a translation unit. *)

val replace_expr : Ast.tu -> eid:int -> repl:Ast.expr -> Ast.tu
(** Replace the expression with id [eid]. *)

val replace_stmt : Ast.tu -> sid:int -> repl:Ast.stmt -> Ast.tu

val remove_stmt : Ast.tu -> sid:int -> Ast.tu
(** Replace the statement by a null statement (dropped when it sits
    directly in a block). *)

val iter_expr : (Ast.expr -> unit) -> Ast.expr -> unit
val iter_var_decl : (Ast.expr -> unit) -> Ast.var_decl -> unit

val iter_stmt :
  fe:(Ast.expr -> unit) -> fs:(Ast.stmt -> unit) -> Ast.stmt -> unit

val iter_tu :
  ?fe:(Ast.expr -> unit) -> ?fs:(Ast.stmt -> unit) -> Ast.tu -> unit

val iter_tu_in_functions : Ast.tu -> f:(Ast.fundef -> unit) -> unit

val collect_exprs : (Ast.expr -> bool) -> Ast.tu -> Ast.expr list
val collect_stmts : (Ast.stmt -> bool) -> Ast.tu -> Ast.stmt list
val count_exprs : (Ast.expr -> bool) -> Ast.tu -> int
val count_stmts : (Ast.stmt -> bool) -> Ast.tu -> int
val find_expr : Ast.tu -> eid:int -> Ast.expr option
val find_stmt : Ast.tu -> sid:int -> Ast.stmt option
val functions : Ast.tu -> Ast.fundef list
val global_vars : Ast.tu -> Ast.var_decl list
