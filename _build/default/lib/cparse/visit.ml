(* Generic traversal and rewriting combinators over the AST.

   [map_*] apply a transformation bottom-up (children first, then the node
   itself), which lets a rewrite function simply test [e.eid] against a
   target id and return a replacement.  [iter_*] visit nodes top-down. *)

open Ast

(* ------------------------------------------------------------------ *)
(* Mapping                                                             *)
(* ------------------------------------------------------------------ *)

let rec map_expr f (e : expr) : expr =
  let recur = map_expr f in
  let ek =
    match e.ek with
    | Int_lit _ | Float_lit _ | Char_lit _ | Str_lit _ | Ident _ | Sizeof_ty _ ->
      e.ek
    | Binop (op, a, b) -> Binop (op, recur a, recur b)
    | Unop (op, a) -> Unop (op, recur a)
    | Assign (op, a, b) -> Assign (op, recur a, recur b)
    | Incdec (i, p, a) -> Incdec (i, p, recur a)
    | Call (g, args) -> Call (recur g, List.map recur args)
    | Index (a, b) -> Index (recur a, recur b)
    | Member (a, n) -> Member (recur a, n)
    | Arrow (a, n) -> Arrow (recur a, n)
    | Deref a -> Deref (recur a)
    | Addrof a -> Addrof (recur a)
    | Cast (t, a) -> Cast (t, recur a)
    | Cond (c, t, f') -> Cond (recur c, recur t, recur f')
    | Comma (a, b) -> Comma (recur a, recur b)
    | Sizeof_expr a -> Sizeof_expr (recur a)
    | Init_list es -> Init_list (List.map recur es)
  in
  f { e with ek }

let map_var_decl fe (v : var_decl) =
  { v with v_init = Option.map (map_expr fe) v.v_init }

let rec map_stmt ~fe ~fs (s : stmt) : stmt =
  let me = map_expr fe in
  let ms = map_stmt ~fe ~fs in
  let sk =
    match s.sk with
    | Sexpr e -> Sexpr (me e)
    | Sdecl vs -> Sdecl (List.map (map_var_decl fe) vs)
    | Sif (c, t, f) -> Sif (me c, ms t, Option.map ms f)
    | Swhile (c, b) -> Swhile (me c, ms b)
    | Sdo (b, c) -> Sdo (ms b, me c)
    | Sfor (init, cond, step, b) ->
      let init =
        Option.map
          (function
            | Fi_expr e -> Fi_expr (me e)
            | Fi_decl vs -> Fi_decl (List.map (map_var_decl fe) vs))
          init
      in
      Sfor (init, Option.map me cond, Option.map me step, ms b)
    | Sreturn e -> Sreturn (Option.map me e)
    | Sbreak -> Sbreak
    | Scontinue -> Scontinue
    | Sblock ss -> Sblock (List.map ms ss)
    | Sswitch (e, cases) ->
      let map_case c =
        let case_labels =
          List.map
            (function L_case e -> L_case (me e) | L_default -> L_default)
            c.case_labels
        in
        { case_labels; case_body = List.map ms c.case_body }
      in
      Sswitch (me e, List.map map_case cases)
    | Sgoto l -> Sgoto l
    | Slabel (l, inner) -> Slabel (l, ms inner)
    | Snull -> Snull
  in
  fs { s with sk }

let map_fundef ~fe ~fs (fd : fundef) =
  { fd with f_body = List.map (map_stmt ~fe ~fs) fd.f_body }

let map_tu ?(fe = fun e -> e) ?(fs = fun s -> s) (tu : tu) : tu =
  let map_global = function
    | Gfun fd -> Gfun (map_fundef ~fe ~fs fd)
    | Gvar v -> Gvar (map_var_decl fe v)
    | (Gtypedef _ | Gstruct _ | Gunion _ | Genum _ | Gproto _) as g -> g
  in
  { globals = List.map map_global tu.globals }

(* Replace the expression with id [eid] by [repl] everywhere. *)
let replace_expr tu ~eid ~repl =
  map_tu tu ~fe:(fun e -> if e.eid = eid then repl else e)

(* Replace the statement with id [sid] by [repl]. *)
let replace_stmt tu ~sid ~repl =
  map_tu tu ~fs:(fun s -> if s.sid = sid then repl else s)

(* Remove the statement with id [sid]; it becomes a null statement.  When a
   block contains it directly the null statement is dropped. *)
let remove_stmt tu ~sid =
  let tu = replace_stmt tu ~sid ~repl:(mk_stmt Snull) in
  let prune s =
    match s.sk with
    | Sblock ss ->
      { s with sk = Sblock (List.filter (fun s' -> s'.sk <> Snull) ss) }
    | _ -> s
  in
  map_tu tu ~fs:prune

(* ------------------------------------------------------------------ *)
(* Iteration                                                           *)
(* ------------------------------------------------------------------ *)

let rec iter_expr f (e : expr) =
  f e;
  let recur = iter_expr f in
  match e.ek with
  | Int_lit _ | Float_lit _ | Char_lit _ | Str_lit _ | Ident _ | Sizeof_ty _ ->
    ()
  | Binop (_, a, b) | Assign (_, a, b) | Index (a, b) | Comma (a, b) ->
    recur a; recur b
  | Unop (_, a) | Incdec (_, _, a) | Member (a, _) | Arrow (a, _)
  | Deref a | Addrof a | Cast (_, a) | Sizeof_expr a -> recur a
  | Call (g, args) -> recur g; List.iter recur args
  | Cond (c, t, f') -> recur c; recur t; recur f'
  | Init_list es -> List.iter recur es

let iter_var_decl fe (v : var_decl) = Option.iter (iter_expr fe) v.v_init

let rec iter_stmt ~fe ~fs (s : stmt) =
  fs s;
  let ie = iter_expr fe in
  let is' = iter_stmt ~fe ~fs in
  match s.sk with
  | Sexpr e -> ie e
  | Sdecl vs -> List.iter (iter_var_decl fe) vs
  | Sif (c, t, f) -> ie c; is' t; Option.iter is' f
  | Swhile (c, b) -> ie c; is' b
  | Sdo (b, c) -> is' b; ie c
  | Sfor (init, cond, step, b) ->
    Option.iter
      (function
        | Fi_expr e -> ie e
        | Fi_decl vs -> List.iter (iter_var_decl fe) vs)
      init;
    Option.iter ie cond;
    Option.iter ie step;
    is' b
  | Sreturn e -> Option.iter ie e
  | Sbreak | Scontinue | Sgoto _ | Snull -> ()
  | Sblock ss -> List.iter is' ss
  | Sswitch (e, cases) ->
    ie e;
    List.iter
      (fun c ->
        List.iter
          (function L_case e -> ie e | L_default -> ())
          c.case_labels;
        List.iter is' c.case_body)
      cases
  | Slabel (_, inner) -> is' inner

let iter_tu ?(fe = fun _ -> ()) ?(fs = fun _ -> ()) (tu : tu) =
  List.iter
    (function
      | Gfun fd -> List.iter (iter_stmt ~fe ~fs) fd.f_body
      | Gvar v -> iter_var_decl fe v
      | Gtypedef _ | Gstruct _ | Gunion _ | Genum _ | Gproto _ -> ())
    tu.globals

(* Iterate with the enclosing function definition available. *)
let iter_tu_in_functions tu ~f =
  List.iter
    (function
      | Gfun fd -> f fd
      | Gvar _ | Gtypedef _ | Gstruct _ | Gunion _ | Genum _ | Gproto _ -> ())
    tu.globals

(* ------------------------------------------------------------------ *)
(* Folds and queries                                                   *)
(* ------------------------------------------------------------------ *)

let collect_exprs pred tu =
  let acc = ref [] in
  iter_tu tu ~fe:(fun e -> if pred e then acc := e :: !acc);
  List.rev !acc

let collect_stmts pred tu =
  let acc = ref [] in
  iter_tu tu ~fs:(fun s -> if pred s then acc := s :: !acc);
  List.rev !acc

let count_exprs pred tu = List.length (collect_exprs pred tu)
let count_stmts pred tu = List.length (collect_stmts pred tu)

let find_expr tu ~eid =
  let found = ref None in
  iter_tu tu ~fe:(fun e -> if e.eid = eid && !found = None then found := Some e);
  !found

let find_stmt tu ~sid =
  let found = ref None in
  iter_tu tu ~fs:(fun s -> if s.sid = sid && !found = None then found := Some s);
  !found

let functions tu =
  List.filter_map
    (function Gfun fd -> Some fd | _ -> None)
    tu.globals

let global_vars tu =
  List.filter_map (function Gvar v -> Some v | _ -> None) tu.globals
