(* Constant-expression evaluation (integer constant expressions as needed
   for case labels, array sizes, and global initializers). *)

open Ast

let rec eval_int (e : expr) : int64 option =
  let ( let* ) = Option.bind in
  match e.ek with
  | Int_lit (v, _, _) -> Some v
  | Char_lit c -> Some (Int64.of_int (Char.code c))
  | Unop (Neg, a) ->
    let* v = eval_int a in
    Some (Int64.neg v)
  | Unop (Uplus, a) -> eval_int a
  | Unop (Bitnot, a) ->
    let* v = eval_int a in
    Some (Int64.lognot v)
  | Unop (Lognot, a) ->
    let* v = eval_int a in
    Some (if Int64.equal v 0L then 1L else 0L)
  | Binop (op, a, b) -> (
    let* va = eval_int a in
    let* vb = eval_int b in
    let open Int64 in
    let bool_ x = if x then 1L else 0L in
    match op with
    | Add -> Some (add va vb)
    | Sub -> Some (sub va vb)
    | Mul -> Some (mul va vb)
    | Div -> if equal vb 0L then None else Some (div va vb)
    | Mod -> if equal vb 0L then None else Some (rem va vb)
    | Shl ->
      let s = to_int vb in
      if s < 0 || s > 63 then None else Some (shift_left va s)
    | Shr ->
      let s = to_int vb in
      if s < 0 || s > 63 then None else Some (shift_right va s)
    | Lt -> Some (bool_ (compare va vb < 0))
    | Gt -> Some (bool_ (compare va vb > 0))
    | Le -> Some (bool_ (compare va vb <= 0))
    | Ge -> Some (bool_ (compare va vb >= 0))
    | Eq -> Some (bool_ (equal va vb))
    | Ne -> Some (bool_ (not (equal va vb)))
    | Band -> Some (logand va vb)
    | Bxor -> Some (logxor va vb)
    | Bor -> Some (logor va vb)
    | Land -> Some (bool_ ((not (equal va 0L)) && not (equal vb 0L)))
    | Lor -> Some (bool_ ((not (equal va 0L)) || not (equal vb 0L))))
  | Cond (c, t, f) ->
    let* vc = eval_int c in
    if Int64.equal vc 0L then eval_int f else eval_int t
  | Cast (ty, a) -> (
    let* v = eval_int a in
    match ty with
    | Tint (Ichar, true) -> Some (Int64.of_int (Int64.to_int v land 0xff))
    | Tint (Ishort, true) ->
      Some (Int64.of_int ((Int64.to_int v land 0xffff) - if Int64.to_int v land 0x8000 <> 0 then 0x10000 else 0))
    | Tint _ | Tbool -> Some v
    | _ -> None)
  | Sizeof_ty t -> Some (Int64.of_int (sizeof_ty t))
  | _ -> None

(* Syntactically constant (for global initializers): literals, address
   constants, and arithmetic over them. *)
let rec is_constant_expr (e : expr) : bool =
  match e.ek with
  | Int_lit _ | Float_lit _ | Char_lit _ | Str_lit _ | Sizeof_ty _ -> true
  | Ident _ -> false (* enum constants are handled upstream; be strict *)
  | Unop (_, a) | Cast (_, a) -> is_constant_expr a
  | Addrof { ek = Ident _; _ } -> true
  | Binop (_, a, b) -> is_constant_expr a && is_constant_expr b
  | Cond (c, t, f) ->
    is_constant_expr c && is_constant_expr t && is_constant_expr f
  | Init_list es -> List.for_all is_constant_expr es
  | Sizeof_expr _ -> true
  | _ -> false
