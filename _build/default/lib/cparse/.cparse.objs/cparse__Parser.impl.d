lib/cparse/parser.ml: Array Ast Ast_ids Buffer Fmt Hashtbl Int64 Lexer List Loc Result String Token
