lib/cparse/parser.mli: Ast Loc
