lib/cparse/visit.mli: Ast
