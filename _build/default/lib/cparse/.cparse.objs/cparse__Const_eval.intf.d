lib/cparse/const_eval.mli: Ast
