lib/cparse/rng.mli:
