lib/cparse/ast.ml: Int64 List String
