lib/cparse/pretty.ml: Ast Buffer Char Float Fmt Int64 List String
