lib/cparse/loc.ml: Fmt
