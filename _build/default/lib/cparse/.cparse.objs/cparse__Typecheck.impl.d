lib/cparse/typecheck.ml: Ast Const_eval Fmt Hashtbl Int64 List Option Parser Pretty Stdlib String
