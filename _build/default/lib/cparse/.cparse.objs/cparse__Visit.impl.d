lib/cparse/visit.ml: Ast List Option
