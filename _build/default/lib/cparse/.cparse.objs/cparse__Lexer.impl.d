lib/cparse/lexer.ml: Array Ast Buffer Char Fmt Int64 List Loc String Token
