lib/cparse/ast_gen.ml: Ast Ast_ids Float Fmt List Pretty Rng String
