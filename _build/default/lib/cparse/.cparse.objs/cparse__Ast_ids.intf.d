lib/cparse/ast_ids.mli: Ast
