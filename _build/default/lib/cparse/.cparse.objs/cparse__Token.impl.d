lib/cparse/token.ml: Ast Fmt Int64
