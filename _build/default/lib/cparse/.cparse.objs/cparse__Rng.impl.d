lib/cparse/rng.ml: Array Float Int64 List
