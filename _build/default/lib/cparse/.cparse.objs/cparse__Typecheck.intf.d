lib/cparse/typecheck.mli: Ast Hashtbl
