lib/cparse/const_eval.ml: Ast Char Int64 List Option
