lib/cparse/lexer.mli: Loc Token
