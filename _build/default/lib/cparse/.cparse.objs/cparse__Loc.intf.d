lib/cparse/loc.mli: Format
