lib/cparse/ast_gen.mli: Ast Rng
