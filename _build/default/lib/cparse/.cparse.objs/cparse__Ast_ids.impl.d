lib/cparse/ast_ids.ml: Ast Hashtbl Int64 List Visit
