lib/cparse/pretty.mli: Ast Buffer
