(** Constant-expression evaluation (integer constant expressions, as
    required for case labels, array sizes, and global initializers). *)

val eval_int : Ast.expr -> int64 option
(** Evaluate an integer constant expression; [None] when the expression
    is non-constant or undefined (division by zero, oversized shift). *)

val is_constant_expr : Ast.expr -> bool
(** Syntactic constant-expression check for global initializers:
    literals, address constants, and arithmetic over them. *)
