(* Random generator of well-typed C programs.

   Three roles in the reproduction:
   - seed-corpus synthesis (stand-in for the GCC/Clang test suites);
   - the Csmith-sim and YARPGen-sim baseline generators (via [config]);
   - qcheck generators for property tests.

   Programs are well-typed by construction and loops are bounded, so the
   AST interpreter can execute them under a small fuel budget. *)

open Ast

type config = {
  max_functions : int;
  max_stmts : int;          (* statements per block *)
  max_depth : int;          (* statement nesting depth *)
  max_expr_depth : int;
  allow_goto : bool;
  allow_switch : bool;
  allow_structs : bool;
  allow_pointers : bool;
  allow_arrays : bool;
  allow_floats : bool;
  allow_unsigned : bool;
  allow_strings : bool;
  allow_labels : bool;
  loop_weight : int;        (* relative weight of loop statements *)
  decreasing_loops : bool;  (* emit while (--n) style loops (YARPGen focus) *)
  call_weight : int;
  seed_globals : int;
}

let default_config = {
  max_functions = 4;
  max_stmts = 6;
  max_depth = 3;
  max_expr_depth = 4;
  allow_goto = true;
  allow_switch = true;
  allow_structs = true;
  allow_pointers = true;
  allow_arrays = true;
  allow_floats = true;
  allow_unsigned = true;
  allow_strings = true;
  allow_labels = true;
  loop_weight = 3;
  call_weight = 3;
  seed_globals = 3;
  decreasing_loops = false;
}

(* Conservative, saturating feature set: models Csmith's closed grammar. *)
let csmith_like_config = {
  default_config with
  max_functions = 5;
  allow_goto = false;
  allow_labels = false;
  allow_strings = false;
  max_depth = 3;
  max_expr_depth = 3;
}

(* Loop/arithmetic-focused: models YARPGen's loop-optimization target. *)
let yarpgen_like_config = {
  default_config with
  max_functions = 3;
  allow_goto = false;
  allow_labels = false;
  allow_switch = false;
  allow_structs = false;
  allow_strings = false;
  loop_weight = 8;
  max_depth = 4;
  decreasing_loops = true;
}

type env = {
  cfg : config;
  rng : Rng.t;
  mutable vars : (string * ty) list;        (* in scope, innermost first *)
  mutable funcs : (string * ty * ty list) list; (* callable functions *)
  mutable structs : (string * field list) list;
  mutable label_count : int;
  mutable name_count : int;
  mutable depth : int;
}

let fresh_name env prefix =
  env.name_count <- env.name_count + 1;
  Fmt.str "%s_%d" prefix env.name_count

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let gen_int_ty env =
  let kinds = [ Ichar; Ishort; Iint; Iint; Iint; Ilong; Ilonglong ] in
  let k = Rng.choose env.rng kinds in
  let signed = if env.cfg.allow_unsigned then Rng.flip env.rng 0.75 else true in
  Tint (k, signed)

let gen_scalar_ty env =
  if env.cfg.allow_floats && Rng.flip env.rng 0.2 then
    if Rng.bool env.rng then Tfloat else Tdouble
  else gen_int_ty env

let gen_var_ty env =
  let r = Rng.float env.rng in
  if env.cfg.allow_arrays && r < 0.15 then
    Tarray (gen_scalar_ty env, Some (Rng.int_in env.rng 2 16))
  else if env.cfg.allow_structs && env.structs <> [] && r < 0.25 then
    Tstruct (fst (Rng.choose env.rng env.structs))
  else gen_scalar_ty env

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let vars_of_ty env pred =
  List.filter (fun (_, t) -> pred t) env.vars

let gen_int_literal env =
  let v =
    Rng.weighted env.rng
      [
        (4, Rng.int_in env.rng 0 10);
        (2, Rng.int_in env.rng 0 255);
        (1, Rng.int_in env.rng 0 65535);
        (1, Rng.choose env.rng [ 0; 1; -1; 2; 127; 128; 255; 256; 1024 ]);
      ]
  in
  int_lit v

(* Generate an expression of roughly integer type. *)
let rec gen_int_expr env depth : expr =
  let leaf () =
    let candidates = vars_of_ty env is_integer_ty in
    if candidates <> [] && Rng.flip env.rng 0.6 then
      ident (fst (Rng.choose env.rng candidates))
    else gen_int_literal env
  in
  if depth <= 0 then leaf ()
  else
    Rng.weighted env.rng
      [
        (3, `Leaf);
        (4, `Bin);
        (1, `Un);
        (1, `Cmp);
        (1, `Cond);
        ((if env.cfg.allow_arrays then 1 else 0), `Idx);
        ((if env.funcs <> [] then env.cfg.call_weight else 0), `Call);
      ]
    |> function
    | `Leaf -> leaf ()
    | `Bin ->
      let op =
        Rng.choose env.rng
          [ Add; Sub; Mul; Add; Sub; Band; Bxor; Bor; Shl; Shr ]
      in
      let a = gen_int_expr env (depth - 1) in
      let b =
        match op with
        | Shl | Shr -> int_lit (Rng.int_in env.rng 0 7)
        | _ -> gen_int_expr env (depth - 1)
      in
      binop op a b
    | `Un ->
      let op = Rng.choose env.rng [ Neg; Bitnot; Lognot ] in
      unop op (gen_int_expr env (depth - 1))
    | `Cmp ->
      let op = Rng.choose env.rng [ Lt; Gt; Le; Ge; Eq; Ne ] in
      binop op (gen_int_expr env (depth - 1)) (gen_int_expr env (depth - 1))
    | `Cond ->
      mk_expr
        (Cond
           ( gen_cond_expr env (depth - 1),
             gen_int_expr env (depth - 1),
             gen_int_expr env (depth - 1) ))
    | `Idx -> (
      let arrays =
        vars_of_ty env (function
          | Tarray (t, Some _) -> is_integer_ty t
          | _ -> false)
      in
      match arrays with
      | [] -> leaf ()
      | _ ->
        let name, ty = Rng.choose env.rng arrays in
        let n = match ty with Tarray (_, Some n) -> n | _ -> 1 in
        mk_expr (Index (ident name, int_lit (Rng.int env.rng (max 1 n)))))
    | `Call -> (
      let int_funcs =
        List.filter (fun (_, ret, _) -> is_integer_ty ret) env.funcs
      in
      match int_funcs with
      | [] -> leaf ()
      | _ ->
        let name, _, params = Rng.choose env.rng int_funcs in
        let args = List.map (fun t -> gen_expr_of_ty env (depth - 1) t) params in
        call (ident name) args)

and gen_cond_expr env depth : expr =
  if depth <= 0 then gen_int_expr env 0
  else
    Rng.weighted env.rng
      [ (3, `Cmp); (1, `Logical); (1, `Plain) ]
    |> function
    | `Cmp ->
      let op = Rng.choose env.rng [ Lt; Gt; Le; Ge; Eq; Ne ] in
      binop op (gen_int_expr env (depth - 1)) (gen_int_expr env (depth - 1))
    | `Logical ->
      let op = if Rng.bool env.rng then Land else Lor in
      binop op (gen_cond_expr env (depth - 1)) (gen_cond_expr env (depth - 1))
    | `Plain -> gen_int_expr env (depth - 1)

and gen_float_expr env depth : expr =
  let leaf () =
    let candidates = vars_of_ty env is_float_ty in
    if candidates <> [] && Rng.flip env.rng 0.6 then
      ident (fst (Rng.choose env.rng candidates))
    else float_lit (Float.of_int (Rng.int_in env.rng 0 100) /. 4.)
  in
  if depth <= 0 then leaf ()
  else if Rng.flip env.rng 0.5 then
    let op = Rng.choose env.rng [ Add; Sub; Mul ] in
    binop op (gen_float_expr env (depth - 1)) (gen_float_expr env (depth - 1))
  else leaf ()

and gen_expr_of_ty env depth (ty : ty) : expr =
  match ty with
  | Tfloat | Tdouble -> gen_float_expr env depth
  | Tbool -> gen_cond_expr env depth
  | Tint _ -> gen_int_expr env depth
  | Tptr t -> (
    let ptr_vars = vars_of_ty env (fun t' -> ty_equal t' ty) in
    let pointee_vars =
      vars_of_ty env (fun t' -> ty_equal t' t)
    in
    match ptr_vars, pointee_vars with
    | (_ :: _), _ when Rng.bool env.rng ->
      ident (fst (Rng.choose env.rng ptr_vars))
    | _, (_ :: _) -> mk_expr (Addrof (ident (fst (Rng.choose env.rng pointee_vars))))
    | (_ :: _), _ -> ident (fst (Rng.choose env.rng ptr_vars))
    | [], [] -> mk_expr (Cast (ty, int_lit 0)))
  | Tarray _ | Tstruct _ | Tunion _ | Tvoid | Tnamed _ | Tfunc _ ->
    gen_int_expr env depth

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let gen_decl env : stmt * (string * ty) =
  let ty = gen_var_ty env in
  let name = fresh_name env "v" in
  let init =
    match ty with
    | Tarray _ | Tstruct _ | Tunion _ -> None
    | _ when Rng.flip env.rng 0.8 -> Some (gen_expr_of_ty env 2 ty)
    | _ -> None
  in
  ( mk_stmt
      (Sdecl
         [
           {
             v_name = name;
             v_ty = ty;
             v_quals = no_quals;
             v_storage = S_none;
             v_init = init;
           };
         ]),
    (name, ty) )

(* Loop counters (names prefixed i_ or w_) are never assignment targets:
   generated loops must terminate so the interpreter can execute seeds
   under small fuel. *)
let assignable env pred =
  List.filter
    (fun (n, t) ->
      pred t
      && not (String.length n > 1 && (n.[0] = 'i' || n.[0] = 'w') && n.[1] = '_'))
    env.vars

let gen_assign env : stmt option =
  let targets = assignable env is_arith_ty in
  match targets with
  | [] -> None
  | _ ->
    let name, ty = Rng.choose env.rng targets in
    let op =
      if is_integer_ty ty && Rng.flip env.rng 0.3 then
        Rng.choose env.rng [ A_add; A_sub; A_mul; A_band; A_bxor; A_bor ]
      else A_none
    in
    Some (sexpr (assign ~op (ident name) (gen_expr_of_ty env env.cfg.max_expr_depth ty)))

let rec gen_stmt env depth : stmt list =
  let cfg = env.cfg in
  let choice =
    Rng.weighted env.rng
      [
        (3, `Decl);
        (6, `Assign);
        ((if depth > 0 then 3 else 0), `If);
        ((if depth > 0 then cfg.loop_weight else 0), `For);
        ((if depth > 0 then 1 else 0), `While);
        ((if depth > 0 && cfg.allow_switch then 1 else 0), `Switch);
        ((if cfg.allow_arrays then 2 else 0), `ArrStore);
        (1, `Incdec);
      ]
  in
  match choice with
  | `Decl ->
    let s, binding = gen_decl env in
    env.vars <- binding :: env.vars;
    [ s ]
  | `Assign -> (
    match gen_assign env with Some s -> [ s ] | None -> gen_stmt env depth)
  | `If ->
    let saved = env.vars in
    let cond = gen_cond_expr env 2 in
    let then_ = gen_block env (depth - 1) in
    env.vars <- saved;
    let else_ =
      if Rng.flip env.rng 0.5 then begin
        let b = gen_block env (depth - 1) in
        env.vars <- saved;
        Some b
      end
      else None
    in
    [ mk_stmt (Sif (cond, then_, else_)) ]
  | `For ->
    (* bounded counted loop so generated programs terminate *)
    let i = fresh_name env "i" in
    let bound = Rng.int_in env.rng 1 12 in
    let saved = env.vars in
    env.vars <- (i, Tint (Iint, true)) :: env.vars;
    let body = gen_block env (depth - 1) in
    env.vars <- saved;
    [
      mk_stmt
        (Sfor
           ( Some
               (Fi_decl
                  [
                    {
                      v_name = i;
                      v_ty = Tint (Iint, true);
                      v_quals = no_quals;
                      v_storage = S_none;
                      v_init = Some (int_lit 0);
                    };
                  ]),
             Some (binop Lt (ident i) (int_lit bound)),
             Some (mk_expr (Incdec (true, false, ident i))),
             body ));
    ]
  | `While ->
    (* decrementing counter loop *)
    let c = fresh_name env "w" in
    let bound = Rng.int_in env.rng 1 8 in
    let decl =
      mk_stmt
        (Sdecl
           [
             {
               v_name = c;
               v_ty = Tint (Iint, true);
               v_quals = no_quals;
               v_storage = S_none;
               v_init = Some (int_lit bound);
             };
           ])
    in
    let saved = env.vars in
    env.vars <- (c, Tint (Iint, true)) :: env.vars;
    let body = gen_block env (depth - 1) in
    env.vars <- saved;
    if cfg.decreasing_loops && Rng.flip env.rng 0.15 then
      (* YARPGen-style: while (--n) decrement-in-condition loop *)
      [ decl;
        mk_stmt (Swhile (mk_expr (Incdec (false, true, ident c)), body)) ]
    else begin
      let body =
        match body.sk with
        | Sblock ss ->
          { body with sk = Sblock (ss @ [ sexpr (mk_expr (Incdec (false, false, ident c))) ]) }
        | _ -> body
      in
      [ decl; mk_stmt (Swhile (binop Gt (ident c) (int_lit 0), body)) ]
    end
  | `Switch ->
    let scrutinee = gen_int_expr env 2 in
    let ncases = Rng.int_in env.rng 2 4 in
    let saved = env.vars in
    let cases =
      List.init ncases (fun i ->
          let body =
            (match gen_block env (depth - 1) with
            | { sk = Sblock ss; _ } -> ss
            | s -> [ s ])
            @ if Rng.flip env.rng 0.8 then [ mk_stmt Sbreak ] else []
          in
          env.vars <- saved;
          { case_labels = [ L_case (int_lit i) ]; case_body = body })
    in
    let cases =
      if Rng.flip env.rng 0.7 then
        cases @ [ { case_labels = [ L_default ]; case_body = [ mk_stmt Sbreak ] } ]
      else cases
    in
    [ mk_stmt (Sswitch (scrutinee, cases)) ]
  | `ArrStore -> (
    let arrays =
      vars_of_ty env (function
        | Tarray (t, Some _) -> is_arith_ty t
        | _ -> false)
    in
    match arrays with
    | [] -> (match gen_assign env with Some s -> [ s ] | None -> [])
    | _ ->
      let name, ty = Rng.choose env.rng arrays in
      let n, elt =
        match ty with
        | Tarray (t, Some n) -> n, t
        | _ -> 1, Tint (Iint, true)
      in
      let idx = int_lit (Rng.int env.rng (max 1 n)) in
      [
        sexpr
          (assign
             (mk_expr (Index (ident name, idx)))
             (gen_expr_of_ty env 2 elt));
      ])
  | `Incdec -> (
    let targets = assignable env is_integer_ty in
    match targets with
    | [] -> []
    | _ ->
      let name, _ = Rng.choose env.rng targets in
      [ sexpr (mk_expr (Incdec (Rng.bool env.rng, Rng.bool env.rng, ident name))) ])

and gen_block env depth : stmt =
  let saved = env.vars in
  let n = Rng.int_in env.rng 1 env.cfg.max_stmts in
  let stmts = List.concat (List.init n (fun _ -> gen_stmt env depth)) in
  env.vars <- saved;
  sblock stmts

(* ------------------------------------------------------------------ *)
(* Functions and translation units                                     *)
(* ------------------------------------------------------------------ *)

let gen_function env ~name : fundef =
  let nparams = Rng.int_in env.rng 0 3 in
  let params =
    List.init nparams (fun _ ->
        { p_name = fresh_name env "p"; p_ty = gen_scalar_ty env })
  in
  let ret = if Rng.flip env.rng 0.85 then gen_scalar_ty env else Tvoid in
  let saved = env.vars in
  env.vars <- List.map (fun p -> (p.p_name, p.p_ty)) params @ env.vars;
  let n = Rng.int_in env.rng 2 env.cfg.max_stmts in
  let body = List.concat (List.init n (fun _ -> gen_stmt env env.cfg.max_depth)) in
  let body =
    if is_void_ty ret then body
    else body @ [ sreturn (Some (gen_expr_of_ty env 3 ret)) ]
  in
  env.vars <- saved;
  {
    f_id = no_id;
    f_name = name;
    f_ret = ret;
    f_params = params;
    f_variadic = false;
    f_body = body;
    f_static = Rng.flip env.rng 0.2;
    f_inline = false;
  }

let gen_struct env : global =
  let tag = fresh_name env "s" in
  let nfields = Rng.int_in env.rng 1 4 in
  let fields =
    List.init nfields (fun _ ->
        { fld_name = fresh_name env "f"; fld_ty = gen_scalar_ty env })
  in
  env.structs <- (tag, fields) :: env.structs;
  Gstruct (tag, fields)

let gen_tu ?(cfg = default_config) (rng : Rng.t) : tu =
  let env =
    {
      cfg;
      rng;
      vars = [];
      funcs = [];
      structs = [];
      label_count = 0;
      name_count = 0;
      depth = 0;
    }
  in
  ignore env.label_count;
  ignore env.depth;
  let structs =
    if cfg.allow_structs then
      List.init (Rng.int_in rng 0 2) (fun _ -> gen_struct env)
    else []
  in
  let globals =
    List.init cfg.seed_globals (fun _ ->
        let ty = gen_scalar_ty env in
        let name = fresh_name env "g" in
        (* constant initializer only: global inits must be constant in C *)
        let init =
          if is_float_ty ty then
            float_lit (Float.of_int (Rng.int_in rng 0 100) /. 4.)
          else gen_int_literal env
        in
        env.vars <- (name, ty) :: env.vars;
        Gvar
          {
            v_name = name;
            v_ty = ty;
            v_quals = no_quals;
            v_storage = S_none;
            v_init = Some init;
          })
  in
  let nfuncs = Rng.int_in rng 1 cfg.max_functions in
  let funcs =
    List.init nfuncs (fun i ->
        let name = Fmt.str "fn_%d" i in
        let fd = gen_function env ~name in
        env.funcs <-
          (name, fd.f_ret, List.map (fun p -> p.p_ty) fd.f_params) :: env.funcs;
        Gfun fd)
  in
  (* main: call each function and fold results into a checksum *)
  let calls =
    List.filter_map
      (function
        | Gfun fd when not (is_void_ty fd.f_ret) && not fd.f_static ->
          let args = List.map (fun p -> zero_of_ty p.p_ty) fd.f_params in
          Some
            (sexpr
               (assign ~op:A_add (ident "csum")
                  (mk_expr (Cast (Tint (Iint, true), call (ident fd.f_name) args)))))
        | Gfun fd when is_void_ty fd.f_ret && not fd.f_static ->
          let args = List.map (fun p -> zero_of_ty p.p_ty) fd.f_params in
          Some (sexpr (call (ident fd.f_name) args))
        | _ -> None)
      funcs
  in
  let main =
    Gfun
      {
        f_id = no_id;
        f_name = "main";
        f_ret = Tint (Iint, true);
        f_params = [];
        f_variadic = false;
        f_body =
          mk_stmt
            (Sdecl
               [
                 {
                   v_name = "csum";
                   v_ty = Tint (Iint, true);
                   v_quals = no_quals;
                   v_storage = S_none;
                   v_init = Some (int_lit 0);
                 };
               ])
          :: calls
          @ [ sreturn (Some (binop Band (ident "csum") (int_lit 255))) ];
        f_static = false;
        f_inline = false;
      }
  in
  Ast_ids.renumber { globals = structs @ globals @ funcs @ [ main ] }

let gen_source ?cfg rng = Pretty.tu_to_string (gen_tu ?cfg rng)
