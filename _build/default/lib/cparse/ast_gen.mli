(** Random generator of well-typed C programs.

    Three roles in the reproduction: synthesizing the seed corpus (the
    stand-in for the GCC/Clang test suites), powering the Csmith-sim and
    YARPGen-sim baseline generators via {!config}, and driving property
    tests.  Programs are well-typed by construction; loops are bounded,
    so the reference interpreter can execute them. *)

type config = {
  max_functions : int;
  max_stmts : int;          (** statements per block *)
  max_depth : int;          (** statement nesting depth *)
  max_expr_depth : int;
  allow_goto : bool;
  allow_switch : bool;
  allow_structs : bool;
  allow_pointers : bool;
  allow_arrays : bool;
  allow_floats : bool;
  allow_unsigned : bool;
  allow_strings : bool;
  allow_labels : bool;
  loop_weight : int;        (** relative weight of loop statements *)
  decreasing_loops : bool;  (** emit [while (--n)] loops (YARPGen focus) *)
  call_weight : int;
  seed_globals : int;
}

val default_config : config
(** Balanced feature mix used for the seed corpus. *)

val csmith_like_config : config
(** Conservative closed grammar: no gotos/labels/strings — models
    Csmith's saturating feature space. *)

val yarpgen_like_config : config
(** Loop/arithmetic-heavy: models YARPGen's loop-optimization focus,
    including decrement-in-condition loops. *)

val gen_tu : ?cfg:config -> Rng.t -> Ast.tu
(** Generate a translation unit (always includes a [main] computing a
    checksum over the generated functions). *)

val gen_source : ?cfg:config -> Rng.t -> string
(** [Pretty.tu_to_string (gen_tu ...)]. *)
