(* Abstract syntax for the C subset used throughout the reproduction.

   Every expression, statement, and function definition carries a unique
   integer id (within a translation unit) so that mutators can select a
   node during traversal and later rewrite exactly that node.  Fresh nodes
   are created with [no_id]; {!Ast_ids.renumber} reassigns ids after a
   mutation. *)

type ikind = Ichar | Ishort | Iint | Ilong | Ilonglong

type ty =
  | Tvoid
  | Tbool
  | Tint of ikind * bool          (* kind, signed *)
  | Tfloat
  | Tdouble
  | Tptr of ty
  | Tarray of ty * int option
  | Tstruct of string
  | Tunion of string
  | Tnamed of string              (* typedef name *)
  | Tfunc of ty * ty list * bool  (* return, params, variadic *)

type quals = { q_const : bool; q_volatile : bool }

let no_quals = { q_const = false; q_volatile = false }

type storage = S_none | S_static | S_extern | S_register

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr
  | Lt | Gt | Le | Ge | Eq | Ne
  | Band | Bxor | Bor
  | Land | Lor

type assign_op =
  | A_none
  | A_add | A_sub | A_mul | A_div | A_mod
  | A_shl | A_shr | A_band | A_bxor | A_bor

type unop = Neg | Lognot | Bitnot | Uplus

let no_id = -1

type expr = { eid : int; ek : ekind }

and ekind =
  | Int_lit of int64 * ikind * bool     (* value, kind, unsigned *)
  | Float_lit of float * bool           (* value, is_double *)
  | Char_lit of char
  | Str_lit of string
  | Ident of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Assign of assign_op * expr * expr
  | Incdec of bool * bool * expr        (* is_increment, is_prefix, operand *)
  | Call of expr * expr list
  | Index of expr * expr
  | Member of expr * string
  | Arrow of expr * string
  | Deref of expr
  | Addrof of expr
  | Cast of ty * expr
  | Cond of expr * expr * expr
  | Comma of expr * expr
  | Sizeof_expr of expr
  | Sizeof_ty of ty
  | Init_list of expr list              (* only valid as an initializer *)

type var_decl = {
  v_name : string;
  v_ty : ty;
  v_quals : quals;
  v_storage : storage;
  v_init : expr option;
}

type stmt = { sid : int; sk : skind }

and skind =
  | Sexpr of expr
  | Sdecl of var_decl list
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdo of stmt * expr
  | Sfor of for_init option * expr option * expr option * stmt
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list
  | Sswitch of expr * switch_case list
  | Sgoto of string
  | Slabel of string * stmt
  | Snull

and for_init = Fi_expr of expr | Fi_decl of var_decl list

(* A switch is kept structured: each case group is a list of labels followed
   by a body.  Fall-through happens when the body does not end in a break. *)
and switch_case = { case_labels : case_label list; case_body : stmt list }

and case_label = L_case of expr | L_default

type param = { p_name : string; p_ty : ty }

type fundef = {
  f_id : int;
  f_name : string;
  f_ret : ty;
  f_params : param list;
  f_variadic : bool;
  f_body : stmt list;
  f_static : bool;
  f_inline : bool;
}

type field = { fld_name : string; fld_ty : ty }

type global =
  | Gfun of fundef
  | Gvar of var_decl
  | Gtypedef of string * ty
  | Gstruct of string * field list
  | Gunion of string * field list
  | Genum of string * (string * int64 option) list
  | Gproto of { pr_name : string; pr_ret : ty; pr_params : ty list; pr_variadic : bool }

type tu = { globals : global list }

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let mk_expr ek = { eid = no_id; ek }
let mk_stmt sk = { sid = no_id; sk }

let int_lit ?(kind = Iint) ?(unsigned = false) v =
  mk_expr (Int_lit (Int64.of_int v, kind, unsigned))

let int64_lit ?(kind = Iint) ?(unsigned = false) v = mk_expr (Int_lit (v, kind, unsigned))
let float_lit ?(double = true) v = mk_expr (Float_lit (v, double))
let ident n = mk_expr (Ident n)
let binop op a b = mk_expr (Binop (op, a, b))
let unop op a = mk_expr (Unop (op, a))
let assign ?(op = A_none) lhs rhs = mk_expr (Assign (op, lhs, rhs))
let call f args = mk_expr (Call (f, args))
let sexpr e = mk_stmt (Sexpr e)
let sblock ss = mk_stmt (Sblock ss)
let sreturn e = mk_stmt (Sreturn e)

let zero_of_ty ty =
  match ty with
  | Tfloat -> mk_expr (Float_lit (0.0, false))
  | Tdouble -> mk_expr (Float_lit (0.0, true))
  | Tptr _ -> mk_expr (Cast (ty, int_lit 0))
  | _ -> int_lit 0

(* ------------------------------------------------------------------ *)
(* Type helpers                                                        *)
(* ------------------------------------------------------------------ *)

let rec ty_equal a b =
  match a, b with
  | Tvoid, Tvoid | Tbool, Tbool | Tfloat, Tfloat | Tdouble, Tdouble -> true
  | Tint (k1, s1), Tint (k2, s2) -> k1 = k2 && s1 = s2
  | Tptr t1, Tptr t2 -> ty_equal t1 t2
  | Tarray (t1, n1), Tarray (t2, n2) -> ty_equal t1 t2 && n1 = n2
  | Tstruct a, Tstruct b | Tunion a, Tunion b | Tnamed a, Tnamed b -> String.equal a b
  | Tfunc (r1, p1, v1), Tfunc (r2, p2, v2) ->
    v1 = v2 && ty_equal r1 r2
    && List.length p1 = List.length p2
    && List.for_all2 ty_equal p1 p2
  | (Tvoid | Tbool | Tint _ | Tfloat | Tdouble | Tptr _ | Tarray _
    | Tstruct _ | Tunion _ | Tnamed _ | Tfunc _), _ -> false

let is_integer_ty = function Tbool | Tint _ -> true | _ -> false
let is_float_ty = function Tfloat | Tdouble -> true | _ -> false
let is_arith_ty t = is_integer_ty t || is_float_ty t
let is_pointer_ty = function Tptr _ | Tarray _ -> true | _ -> false
let is_scalar_ty t = is_arith_ty t || is_pointer_ty t
let is_void_ty = function Tvoid -> true | _ -> false
let is_aggregate_ty = function Tstruct _ | Tunion _ | Tarray _ -> true | _ -> false

let ikind_rank = function
  | Ichar -> 1 | Ishort -> 2 | Iint -> 4 | Ilong -> 8 | Ilonglong -> 8

(* Size in bytes under an LP64-like model. *)
let rec sizeof_ty = function
  | Tvoid -> 1
  | Tbool -> 1
  | Tint (k, _) -> ikind_rank k
  | Tfloat -> 4
  | Tdouble -> 8
  | Tptr _ -> 8
  | Tarray (t, Some n) -> n * sizeof_ty t
  | Tarray (t, None) -> sizeof_ty t
  | Tstruct _ | Tunion _ -> 16 (* resolved properly by the type checker *)
  | Tnamed _ -> 8
  | Tfunc _ -> 8

(* ------------------------------------------------------------------ *)
(* Expression/statement utilities                                      *)
(* ------------------------------------------------------------------ *)

let is_lvalue_expr e =
  match e.ek with
  | Ident _ | Index _ | Member _ | Arrow _ | Deref _ -> true
  | _ -> false

let binop_is_comparison = function
  | Lt | Gt | Le | Ge | Eq | Ne -> true
  | _ -> false

let binop_is_logical = function Land | Lor -> true | _ -> false

let binop_is_arith = function
  | Add | Sub | Mul | Div | Mod -> true
  | _ -> false

let binop_is_bitwise = function
  | Band | Bxor | Bor | Shl | Shr -> true
  | _ -> false

let binop_is_commutative = function
  | Add | Mul | Eq | Ne | Band | Bxor | Bor | Land | Lor -> true
  | _ -> false

(* Whether an expression is free of side effects (conservative). *)
let rec is_pure e =
  match e.ek with
  | Int_lit _ | Float_lit _ | Char_lit _ | Str_lit _ | Ident _
  | Sizeof_expr _ | Sizeof_ty _ -> true
  | Binop (_, a, b) | Index (a, b) | Comma (a, b) -> is_pure a && is_pure b
  | Unop (_, a) | Member (a, _) | Arrow (a, _) | Deref a | Addrof a
  | Cast (_, a) -> is_pure a
  | Cond (c, t, f) -> is_pure c && is_pure t && is_pure f
  | Init_list es -> List.for_all is_pure es
  | Assign _ | Incdec _ | Call _ -> false
