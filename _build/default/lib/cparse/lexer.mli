(** Hand-written lexer for the C subset.

    Preprocessor lines ([#include], [#define], ...) are skipped
    wholesale: seeds and generated programs are self-contained and the
    type checker treats a small libc set as builtins. *)

exception Error of string * Loc.t

type lexeme = { tok : Token.t; loc : Loc.t }

type state

val make : string -> state

val next_token : state -> lexeme
(** Produce the next token (an [Eof] lexeme at the end). *)

val tokenize : string -> lexeme array
(** Lex a whole buffer; raises {!Error} on malformed input. *)
