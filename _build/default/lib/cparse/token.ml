(* Tokens of the C subset.  Keywords are distinguished from identifiers by
   the lexer; typedef names are resolved by the parser. *)

type kw =
  | Kvoid | Kchar | Kshort | Kint | Klong | Kfloat | Kdouble
  | Ksigned | Kunsigned | Kbool
  | Kconst | Kvolatile | Kstatic | Kextern | Kinline | Kregister
  | Kstruct | Kunion | Kenum | Ktypedef | Ksizeof
  | Kif | Kelse | Kwhile | Kdo | Kfor | Kreturn | Kbreak | Kcontinue
  | Kswitch | Kcase | Kdefault | Kgoto

type t =
  | Ident of string
  | Int_lit of int64 * Ast.ikind * bool   (* value, kind, unsigned *)
  | Float_lit of float * bool             (* value, is_double *)
  | Char_lit of char
  | Str_lit of string
  | Kw of kw
  (* punctuation / operators *)
  | Lparen | Rparen | Lbrace | Rbrace | Lbracket | Rbracket
  | Semi | Comma | Colon | Question | Ellipsis
  | Dot | Arrow
  | Plus | Minus | Star | Slash | Percent
  | PlusPlus | MinusMinus
  | Amp | Pipe | Caret | Tilde | Bang
  | AmpAmp | PipePipe
  | Shl | Shr
  | Lt | Gt | Le | Ge | EqEq | BangEq
  | Eq | PlusEq | MinusEq | StarEq | SlashEq | PercentEq
  | ShlEq | ShrEq | AmpEq | PipeEq | CaretEq
  | Eof

let keyword_of_string = function
  | "void" -> Some Kvoid
  | "char" -> Some Kchar
  | "short" -> Some Kshort
  | "int" -> Some Kint
  | "long" -> Some Klong
  | "float" -> Some Kfloat
  | "double" -> Some Kdouble
  | "signed" -> Some Ksigned
  | "unsigned" -> Some Kunsigned
  | "_Bool" -> Some Kbool
  | "const" -> Some Kconst
  | "volatile" -> Some Kvolatile
  | "static" -> Some Kstatic
  | "extern" -> Some Kextern
  | "inline" -> Some Kinline
  | "register" -> Some Kregister
  | "struct" -> Some Kstruct
  | "union" -> Some Kunion
  | "enum" -> Some Kenum
  | "typedef" -> Some Ktypedef
  | "sizeof" -> Some Ksizeof
  | "if" -> Some Kif
  | "else" -> Some Kelse
  | "while" -> Some Kwhile
  | "do" -> Some Kdo
  | "for" -> Some Kfor
  | "return" -> Some Kreturn
  | "break" -> Some Kbreak
  | "continue" -> Some Kcontinue
  | "switch" -> Some Kswitch
  | "case" -> Some Kcase
  | "default" -> Some Kdefault
  | "goto" -> Some Kgoto
  | _ -> None

let kw_to_string = function
  | Kvoid -> "void" | Kchar -> "char" | Kshort -> "short" | Kint -> "int"
  | Klong -> "long" | Kfloat -> "float" | Kdouble -> "double"
  | Ksigned -> "signed" | Kunsigned -> "unsigned" | Kbool -> "_Bool"
  | Kconst -> "const" | Kvolatile -> "volatile" | Kstatic -> "static"
  | Kextern -> "extern" | Kinline -> "inline" | Kregister -> "register"
  | Kstruct -> "struct" | Kunion -> "union" | Kenum -> "enum"
  | Ktypedef -> "typedef" | Ksizeof -> "sizeof"
  | Kif -> "if" | Kelse -> "else" | Kwhile -> "while" | Kdo -> "do"
  | Kfor -> "for" | Kreturn -> "return" | Kbreak -> "break"
  | Kcontinue -> "continue" | Kswitch -> "switch" | Kcase -> "case"
  | Kdefault -> "default" | Kgoto -> "goto"

let to_string = function
  | Ident s -> s
  | Int_lit (v, _, _) -> Int64.to_string v
  | Float_lit (v, _) -> string_of_float v
  | Char_lit c -> Fmt.str "%C" c
  | Str_lit s -> Fmt.str "%S" s
  | Kw k -> kw_to_string k
  | Lparen -> "(" | Rparen -> ")" | Lbrace -> "{" | Rbrace -> "}"
  | Lbracket -> "[" | Rbracket -> "]"
  | Semi -> ";" | Comma -> "," | Colon -> ":" | Question -> "?"
  | Ellipsis -> "..."
  | Dot -> "." | Arrow -> "->"
  | Plus -> "+" | Minus -> "-" | Star -> "*" | Slash -> "/" | Percent -> "%"
  | PlusPlus -> "++" | MinusMinus -> "--"
  | Amp -> "&" | Pipe -> "|" | Caret -> "^" | Tilde -> "~" | Bang -> "!"
  | AmpAmp -> "&&" | PipePipe -> "||"
  | Shl -> "<<" | Shr -> ">>"
  | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">=" | EqEq -> "==" | BangEq -> "!="
  | Eq -> "=" | PlusEq -> "+=" | MinusEq -> "-=" | StarEq -> "*=" | SlashEq -> "/="
  | PercentEq -> "%=" | ShlEq -> "<<=" | ShrEq -> ">>="
  | AmpEq -> "&=" | PipeEq -> "|=" | CaretEq -> "^="
  | Eof -> "<eof>"
