(* Source locations for diagnostics.  Offsets are byte offsets into the
   original source buffer; line/col are 1-based. *)

type t = { line : int; col : int; offset : int }

let dummy = { line = 0; col = 0; offset = -1 }

let make ~line ~col ~offset = { line; col; offset }

let pp ppf { line; col; _ } = Fmt.pf ppf "%d:%d" line col

let to_string l = Fmt.str "%a" pp l

let compare a b = compare a.offset b.offset
