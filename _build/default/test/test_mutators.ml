(* Tests for the mutator corpus: registry invariants, a generic soundness
   battery over all mutators, and behavioural checks for the paper's
   named mutators. *)

open Cparse

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let parse src =
  match Parser.parse src with
  | Ok tu -> tu
  | Error e -> Alcotest.failf "parse failed: %s" e

let rich_seeds =
  lazy
    (List.filter_map
       (fun src ->
         match Parser.parse src with Ok tu -> Some tu | Error _ -> None)
       (Fuzzing.Seeds.templates @ Metamut.Llm_sim.targeted_snippets)
    @ List.init 10 (fun i -> Ast_gen.gen_tu (Rng.create (100 + i))))

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry_tests =
  [
    tc "core corpus has 118 mutators" (fun () ->
        check Alcotest.int "core" 118 (List.length Mutators.Registry.core));
    tc "68 supervised + 50 unsupervised" (fun () ->
        check Alcotest.int "Ms" 68 (List.length Mutators.Registry.supervised);
        check Alcotest.int "Mu" 50 (List.length Mutators.Registry.unsupervised));
    tc "category distribution matches the paper" (fun () ->
        let counts = Mutators.Registry.category_counts () in
        let get c = List.assoc c counts in
        check Alcotest.int "Variable" 16 (get Mutators.Mutator.Variable);
        check Alcotest.int "Expression" 50 (get Mutators.Mutator.Expression);
        check Alcotest.int "Statement" 27 (get Mutators.Mutator.Statement);
        check Alcotest.int "Function" 19 (get Mutators.Mutator.Function);
        check Alcotest.int "Type" 6 (get Mutators.Mutator.Type_));
    tc "33 creative mutators" (fun () ->
        check Alcotest.int "creative" 33
          (List.length Mutators.Registry.creative));
    tc "names are unique" (fun () ->
        let names =
          List.map (fun m -> m.Mutators.Mutator.name) Mutators.Registry.extended
        in
        check Alcotest.int "unique" (List.length names)
          (List.length (List.sort_uniq compare names)));
    tc "descriptions are non-empty" (fun () ->
        List.iter
          (fun m ->
            check Alcotest.bool m.Mutators.Mutator.name true
              (String.length m.Mutators.Mutator.description > 10))
          Mutators.Registry.extended);
    tc "find_opt resolves known names" (fun () ->
        check Alcotest.bool "Ret2V" true
          (Mutators.Registry.find_opt "ModifyFunctionReturnTypeToVoid" <> None);
        check Alcotest.bool "unknown" true
          (Mutators.Registry.find_opt "NoSuchMutator" = None));
    tc "paper-named mutators are present" (fun () ->
        List.iter
          (fun n ->
            check Alcotest.bool n true (Mutators.Registry.find_opt n <> None))
          [
            "ModifyFunctionReturnTypeToVoid"; "DuplicateBranch";
            "SwitchInitExpr"; "InverseUnaryOperator"; "SimpleUninliner";
            "TransformSwitchToIfElse"; "ChangeVarDeclQualifier"; "CopyExpr";
            "ChangeParamScope"; "AggregateMemberToScalarVariable";
            "ReduceArrayDimension"; "CombineVariable"; "DecaySmallStruct";
            "StructToInt"; "ModifyIntegerLiteral";
            "ReplaceLiteralWithRandomValue";
          ]);
    tc "extension corpus is disjoint from core" (fun () ->
        let core =
          List.map (fun m -> m.Mutators.Mutator.name) Mutators.Registry.core
        in
        List.iter
          (fun n -> check Alcotest.bool n false (List.mem n core))
          Mutators.Registry.extension_names);
  ]

(* ------------------------------------------------------------------ *)
(* Generic soundness battery: for every mutator in the extended corpus *)
(* ------------------------------------------------------------------ *)

(* Applying any mutator to any seed either reports "not applicable" or
   produces a mutant that (a) pretty-prints to re-parseable C and (b) has
   unique node ids. *)
let generic_battery =
  List.map
    (fun m ->
      tc (Fmt.str "sound: %s" m.Mutators.Mutator.name) (fun () ->
          let rng = Rng.create 7 in
          let applied = ref 0 in
          List.iter
            (fun tu ->
              match Mutators.Mutator.apply m ~rng tu with
              | None -> ()
              | Some tu' ->
                incr applied;
                check Alcotest.bool "ids unique" true (Ast_ids.well_formed tu');
                let printed = Pretty.tu_to_string tu' in
                (match Parser.parse printed with
                | Ok _ -> ()
                | Error e ->
                  Alcotest.failf "%s produced unparseable mutant: %s\n%s"
                    m.Mutators.Mutator.name e printed))
            (Lazy.force rich_seeds);
          check Alcotest.bool "applicable to at least one seed" true
            (!applied > 0)))
    Mutators.Registry.extended

(* The corpus-wide compilable-mutant rate on first application should be
   high (the validation loop accepted these implementations). *)
let corpus_rate_test =
  tc "corpus-wide compilable rate above 90%" (fun () ->
      let rng = Rng.create 11 in
      let total = ref 0 and ok = ref 0 in
      List.iter
        (fun m ->
          List.iter
            (fun tu ->
              match Mutators.Mutator.apply m ~rng tu with
              | None -> ()
              | Some tu' ->
                incr total;
                if (Typecheck.check tu').Typecheck.r_ok then incr ok)
            (Lazy.force rich_seeds))
        Mutators.Registry.core;
      let rate = 100. *. float_of_int !ok /. float_of_int (max 1 !total) in
      if rate < 90. then Alcotest.failf "rate too low: %.1f%%" rate)

(* ------------------------------------------------------------------ *)
(* Behavioural tests for named mutators                                *)
(* ------------------------------------------------------------------ *)

let apply_to name src =
  let m =
    match Mutators.Registry.find_opt name with
    | Some m -> m
    | None -> Alcotest.failf "unknown mutator %s" name
  in
  let tu = parse src in
  let rec try_seeds i =
    if i > 40 then None
    else
      match Mutators.Mutator.apply m ~rng:(Rng.create i) tu with
      | Some tu' -> Some tu'
      | None -> try_seeds (i + 1)
  in
  try_seeds 1

let apply_exn name src =
  match apply_to name src with
  | Some tu -> tu
  | None -> Alcotest.failf "%s was not applicable" name

let behaviour_tests =
  [
    tc "Ret2V: return type becomes void, returns stripped" (fun () ->
        let tu =
          apply_exn "ModifyFunctionReturnTypeToVoid"
            "int f(void) { return 42; }\n\
             int main(void) { int x = f(); return x; }"
        in
        let f = List.find (fun fd -> fd.Ast.f_name = "f") (Visit.functions tu) in
        check Alcotest.bool "void ret" true (Ast.is_void_ty f.Ast.f_ret);
        List.iter
          (fun s ->
            match s.Ast.sk with
            | Ast.Sreturn (Some _) -> Alcotest.fail "return with value remains"
            | _ -> ())
          (Uast.Query.returns_of f);
        (* result uses replaced: the mutant still compiles *)
        check Alcotest.bool "compiles" true (Typecheck.check tu).Typecheck.r_ok);
    tc "DuplicateBranch duplicates one branch over the other" (fun () ->
        let tu =
          apply_exn "DuplicateBranch"
            "int main(void) { int x = 0; if (x) { x = 1; } else { x = 2; } return x; }"
        in
        match
          Visit.collect_stmts
            (fun s -> match s.Ast.sk with Ast.Sif _ -> true | _ -> false)
            tu
        with
        | [ { Ast.sk = Ast.Sif (_, t, Some e); _ } ] ->
          check Alcotest.string "same branch" (Uast.Query.source_of_stmt t)
            (Uast.Query.source_of_stmt e)
        | _ -> Alcotest.fail "bad if");
    tc "SwitchInitExpr swaps initializers in the same scope" (fun () ->
        let tu =
          apply_exn "SwitchInitExpr"
            "int main(void) { int a = 111; int b = 222; return a + b; }"
        in
        let inits =
          List.filter_map
            (fun (v, _) ->
              match v.Ast.v_init with
              | Some { Ast.ek = Ast.Int_lit (n, _, _); _ } -> Some n
              | _ -> None)
            (Uast.Query.local_var_decls tu)
        in
        check (Alcotest.list Alcotest.int64) "swapped" [ 222L; 111L ] inits);
    tc "InverseUnaryOperator doubles the operator" (fun () ->
        let tu =
          apply_exn "InverseUnaryOperator"
            "int main(void) { int a = 5; return -a; }"
        in
        let found = ref false in
        Visit.iter_tu tu ~fe:(fun e ->
            match e.Ast.ek with
            | Ast.Unop (Ast.Neg, { ek = Ast.Unop (Ast.Neg, _); _ }) ->
              found := true
            | _ -> ());
        check Alcotest.bool "-(-a)" true !found);
    tc "TransformSwitchToIfElse removes the switch" (fun () ->
        let tu =
          apply_exn "TransformSwitchToIfElse"
            "int main(void) { int x = 1; int r = 0; switch (x) { case 0: r = \
             1; break; case 1: r = 2; break; default: r = 3; break; } return \
             r; }"
        in
        check Alcotest.int "no switch" 0 (List.length (Uast.Query.switches tu));
        check Alcotest.bool "has ifs" true (Uast.Query.if_stmts tu <> []);
        check Alcotest.bool "compiles" true (Typecheck.check tu).Typecheck.r_ok);
    tc "TransformSwitchToIfElse preserves behaviour" (fun () ->
        let src =
          "int classify(int x) { int r = 0; switch (x) { case 0: r = 10; \
           break; case 1: r = 20; break; default: r = 30; break; } return r; \
           }\n\
           int main(void) { return classify(1); }"
        in
        let tu = parse src in
        let before = (Simcomp.Interp.run tu).Simcomp.Interp.o_exit in
        let tu' = apply_exn "TransformSwitchToIfElse" src in
        let after = (Simcomp.Interp.run tu').Simcomp.Interp.o_exit in
        check Alcotest.int "same exit" before after);
    tc "ChangeVarDeclQualifier toggles const" (fun () ->
        let tu =
          apply_exn "ChangeVarDeclQualifier"
            "int main(void) { int x = 1; return x; }"
        in
        let consts =
          List.filter
            (fun (v, _) -> v.Ast.v_quals.Ast.q_const)
            (Uast.Query.local_var_decls tu)
        in
        check Alcotest.int "one const" 1 (List.length consts));
    tc "ChangeParamScope moves the parameter into the body" (fun () ->
        let tu =
          apply_exn "ChangeParamScope"
            "void f(int n) { while (n > 0) n--; }\n\
             int main(void) { f(3); return 0; }"
        in
        let f = List.find (fun fd -> fd.Ast.f_name = "f") (Visit.functions tu) in
        check Alcotest.int "no params" 0 (List.length f.Ast.f_params);
        (* call sites updated *)
        List.iter
          (fun e ->
            match e.Ast.ek with
            | Ast.Call (_, args) -> check Alcotest.int "no args" 0 (List.length args)
            | _ -> ())
          (Uast.Query.calls_to tu "f");
        check Alcotest.bool "compiles" true (Typecheck.check tu).Typecheck.r_ok);
    tc "ReduceArrayDimension turns array into scalar" (fun () ->
        let tu =
          apply_exn "ReduceArrayDimension"
            "int r[6];\nint main(void) { r[0] = 1; return r[5]; }"
        in
        (match Visit.global_vars tu with
        | [ v ] ->
          check Alcotest.bool "scalar now" false
            (match v.Ast.v_ty with Ast.Tarray _ -> true | _ -> false)
        | _ -> Alcotest.fail "bad globals");
        check Alcotest.bool "compiles" true (Typecheck.check tu).Typecheck.r_ok);
    tc "AggregateMemberToScalarVariable introduces a scalar" (fun () ->
        let tu =
          apply_exn "AggregateMemberToScalarVariable"
            "int main(void) { int r[4]; r[0] = 3; return r[0]; }"
        in
        check Alcotest.bool "compiles" true (Typecheck.check tu).Typecheck.r_ok;
        (* the subscript expression was replaced by an identifier *)
        let subscripts =
          Visit.collect_exprs
            (fun e ->
              match e.Ast.ek with
              | Ast.Index (_, { ek = Ast.Int_lit (0L, _, _); _ }) -> true
              | _ -> false)
            tu
        in
        check Alcotest.int "no r[0] left" 0 (List.length subscripts));
    tc "StructToInt retypes a struct cast" (fun () ->
        match
          apply_to "StructToInt"
            "struct s2 { int a; int b; };\n\
             int main(void) { struct s2 v; v.a = 1; return v.a; }"
        with
        | Some tu ->
          let still_struct =
            List.exists
              (fun (v, _) ->
                match v.Ast.v_ty with Ast.Tstruct _ -> true | _ -> false)
              (Uast.Query.local_var_decls tu)
          in
          check Alcotest.bool "retyped" false still_struct
        | None -> Alcotest.fail "not applicable");
    tc "RemoveFunctionParameter keeps program compiling" (fun () ->
        let tu =
          apply_exn "RemoveFunctionParameter"
            "int f(int a, int b) { return a + b; }\n\
             int main(void) { return f(1, 2); }"
        in
        check Alcotest.bool "compiles" true (Typecheck.check tu).Typecheck.r_ok);
    tc "AddFunctionParameter updates all call sites" (fun () ->
        let tu =
          apply_exn "AddFunctionParameter"
            "int f(int a) { return a; }\n\
             int main(void) { return f(1) + f(2); }"
        in
        List.iter
          (fun e ->
            match e.Ast.ek with
            | Ast.Call (_, args) -> check Alcotest.int "two args" 2 (List.length args)
            | _ -> ())
          (Uast.Query.calls_to tu "f");
        check Alcotest.bool "compiles" true (Typecheck.check tu).Typecheck.r_ok);
    tc "SimpleUninliner extracts a block into a function" (fun () ->
        let tu =
          apply_exn "SimpleUninliner"
            "int g;\nint main(void) { { g = 1; g = g + 2; } return g; }"
        in
        check Alcotest.int "two functions" 2
          (List.length (Visit.functions tu));
        check Alcotest.bool "compiles" true (Typecheck.check tu).Typecheck.r_ok);
    tc "SimpleUninliner preserves behaviour" (fun () ->
        let src = "int g;\nint main(void) { { g = 1; g = g + 2; } return g; }" in
        let before = (Simcomp.Interp.run (parse src)).Simcomp.Interp.o_exit in
        let tu' = apply_exn "SimpleUninliner" src in
        let after = (Simcomp.Interp.run tu').Simcomp.Interp.o_exit in
        check Alcotest.int "same exit" before after);
    tc "InlineSimpleFunctionCall inlines the body" (fun () ->
        let src =
          "int twice(int a) { return a + a; }\n\
           int main(void) { return twice(21); }"
        in
        let tu = apply_exn "InlineSimpleFunctionCall" src in
        check Alcotest.int "no calls left" 0
          (List.length (Uast.Query.calls_to tu "twice"));
        let after = (Simcomp.Interp.run tu).Simcomp.Interp.o_exit in
        check Alcotest.int "same value" 42 after);
    tc "DeleteStatement removes one statement" (fun () ->
        let src = "int g;\nint main(void) { g = 1; g = 2; return g; }" in
        let before =
          Visit.count_stmts
            (fun s -> match s.Ast.sk with Ast.Sexpr _ -> true | _ -> false)
            (parse src)
        in
        let tu = apply_exn "DeleteStatement" src in
        let after =
          Visit.count_stmts
            (fun s -> match s.Ast.sk with Ast.Sexpr _ -> true | _ -> false)
            tu
        in
        check Alcotest.int "one fewer" (before - 1) after);
    tc "ConvertForToWhile eliminates the for" (fun () ->
        let src =
          "int main(void) { int s = 0; for (int i = 0; i < 4; i++) s += i; \
           return s; }"
        in
        let tu = apply_exn "ConvertForToWhile" src in
        check Alcotest.int "no for" 0
          (Visit.count_stmts
             (fun s -> match s.Ast.sk with Ast.Sfor _ -> true | _ -> false)
             tu);
        let after = (Simcomp.Interp.run tu).Simcomp.Interp.o_exit in
        check Alcotest.int "same sum" 6 after);
    tc "LowerWhileToGoto produces goto control flow" (fun () ->
        let src =
          "int main(void) { int n = 3; int s = 0; while (n > 0) { s += n; n \
           = n - 1; } return s; }"
        in
        let tu = apply_exn "LowerWhileToGoto" src in
        check Alcotest.bool "has goto" true
          (Visit.count_stmts
             (fun s -> match s.Ast.sk with Ast.Sgoto _ -> true | _ -> false)
             tu
          > 0);
        check Alcotest.bool "compiles" true (Typecheck.check tu).Typecheck.r_ok;
        let after = (Simcomp.Interp.run tu).Simcomp.Interp.o_exit in
        check Alcotest.int "same sum" 6 after);
    tc "CombineVariable merges two ints into an array" (fun () ->
        let src =
          "int main(void) { int a = 1; int b = 2; a = a + b; return a; }"
        in
        let tu = apply_exn "CombineVariable" src in
        check Alcotest.bool "compiles" true (Typecheck.check tu).Typecheck.r_ok;
        let arrays =
          List.filter
            (fun (v, _) ->
              match v.Ast.v_ty with Ast.Tarray _ -> true | _ -> false)
            (Uast.Query.local_var_decls tu)
        in
        check Alcotest.int "one array" 1 (List.length arrays));
    tc "PromoteLocalToGlobal adds a global" (fun () ->
        let src = "int main(void) { int x = 3; x = x + 1; return x; }" in
        let tu = apply_exn "PromoteLocalToGlobal" src in
        check Alcotest.bool "has global" true (Visit.global_vars tu <> []);
        check Alcotest.bool "compiles" true (Typecheck.check tu).Typecheck.r_ok);
    tc "ExpandCompoundAssignment rewrites +=" (fun () ->
        let src = "int main(void) { int x = 1; x += 2; return x; }" in
        let tu = apply_exn "ExpandCompoundAssignment" src in
        let compounds =
          Visit.collect_exprs
            (fun e ->
              match e.Ast.ek with
              | Ast.Assign (Ast.A_add, _, _) -> true
              | _ -> false)
            tu
        in
        check Alcotest.int "no compound" 0 (List.length compounds);
        let after = (Simcomp.Interp.run tu).Simcomp.Interp.o_exit in
        check Alcotest.int "same value" 3 after);
    tc "NegateIfCondition preserves semantics" (fun () ->
        let src =
          "int main(void) { int x = 5; if (x > 3) { x = 1; } else { x = 2; } \
           return x; }"
        in
        let tu = apply_exn "NegateIfCondition" src in
        let after = (Simcomp.Interp.run tu).Simcomp.Interp.o_exit in
        check Alcotest.int "same result" 1 after);
    tc "SwapConditionalArms preserves semantics" (fun () ->
        let src = "int main(void) { int x = 5; return x > 3 ? 7 : 9; }" in
        let tu = apply_exn "SwapConditionalArms" src in
        let after = (Simcomp.Interp.run tu).Simcomp.Interp.o_exit in
        check Alcotest.int "same result" 7 after);
    tc "GrayC InjectControlFlow wraps a statement in a loop" (fun () ->
        let m =
          List.find
            (fun m -> m.Mutators.Mutator.name = "GrayC.InjectControlFlow")
            Fuzzing.Baselines.grayc_mutators
        in
        let tu = parse "int g;\nint main(void) { g = 2; return g; }" in
        match Mutators.Mutator.apply m ~rng:(Rng.create 1) tu with
        | Some tu' ->
          check Alcotest.bool "has loop" true (Uast.Query.loops tu' <> []);
          check Alcotest.bool "compiles" true
            (Typecheck.check tu').Typecheck.r_ok
        | None -> Alcotest.fail "not applicable");
  ]

(* ------------------------------------------------------------------ *)
(* Cross-cutting invariants                                            *)
(* ------------------------------------------------------------------ *)

let invariant_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"mutator application is deterministic"
         ~count:60 QCheck.small_int
         (fun seed ->
           let tu = Ast_gen.gen_tu (Rng.create (seed + 9001)) in
           let m =
             List.nth Mutators.Registry.core
               (seed mod List.length Mutators.Registry.core)
           in
           let a = Mutators.Mutator.apply m ~rng:(Rng.create 5) tu in
           let b = Mutators.Mutator.apply m ~rng:(Rng.create 5) tu in
           match a, b with
           | None, None -> true
           | Some x, Some y ->
             String.equal (Pretty.tu_to_string x) (Pretty.tu_to_string y)
           | _ -> false));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"mutators never modify their input unit"
         ~count:40 QCheck.small_int
         (fun seed ->
           let tu = Ast_gen.gen_tu (Rng.create (seed + 9501)) in
           let before = Pretty.tu_to_string tu in
           let m =
             List.nth Mutators.Registry.core
               ((seed * 7) mod List.length Mutators.Registry.core)
           in
           ignore (Mutators.Mutator.apply m ~rng:(Rng.create 9) tu);
           String.equal before (Pretty.tu_to_string tu)));
    (* "changes something" (validation goal #5) holds almost always; an
       identity outcome is legal when a stochastic choice happens to pick
       a no-op (e.g. shuffling two equal switch cases), so the assertion
       is statistical *)
    tc "mutants almost always differ from their originals" (fun () ->
        let differed = ref 0 and applied = ref 0 in
        for seed = 1 to 120 do
          let tu = Ast_gen.gen_tu (Rng.create (seed + 9901)) in
          let m =
            List.nth Mutators.Registry.core
              ((seed * 13) mod List.length Mutators.Registry.core)
          in
          match Mutators.Mutator.apply m ~rng:(Rng.create 11) tu with
          | None -> ()
          | Some tu' ->
            incr applied;
            if
              not
                (String.equal (Pretty.tu_to_string tu)
                   (Pretty.tu_to_string tu'))
            then incr differed
        done;
        check Alcotest.bool "applied often" true (!applied > 60);
        let rate = float_of_int !differed /. float_of_int !applied in
        if rate < 0.9 then
          Alcotest.failf "only %.0f%% of mutants differ" (100. *. rate));
  ]

let () =
  Alcotest.run "mutators"
    [
      ("registry", registry_tests);
      ("generic-soundness", generic_battery @ [ corpus_rate_test ]);
      ("behaviour", behaviour_tests);
      ("invariants", invariant_tests);
    ]
