(* Tests for the μAST API layer: context, queries, rewriting, checks. *)

open Cparse

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.equal (String.sub haystack i nn) needle then true
    else go (i + 1)
  in
  go 0

let parse src =
  match Parser.parse src with
  | Ok tu -> tu
  | Error e -> Alcotest.failf "parse failed: %s" e

let sample =
  parse
    "int g = 3;\n\
     int add(int a, int b) { return a + b; }\n\
     int main(void) {\n\
     \  int x = 1;\n\
     \  int y = 2;\n\
     \  if (x < y) { x = add(x, y); } else { y = add(y, x); }\n\
     \  while (x < 10) x++;\n\
     \  switch (y) { case 1: y = 0; break; default: break; }\n\
     \  return x + y + g;\n\
     }\n"

let ctx_of tu = Uast.Ctx.create ~rng:(Rng.create 1) tu

let ctx_tests =
  [
    tc "type_of computes expression types" (fun () ->
        let ctx = ctx_of sample in
        let binops = Uast.Query.binops ctx.Uast.Ctx.tu in
        check Alcotest.bool "has binops" true (binops <> []);
        List.iter
          (fun e ->
            match Uast.Ctx.type_of ctx e with
            | Some _ -> ()
            | None -> Alcotest.fail "missing type")
          binops);
    tc "generate_unique_name never repeats" (fun () ->
        let ctx = ctx_of sample in
        let names =
          List.init 50 (fun _ -> Uast.Ctx.generate_unique_name ctx "tmp")
        in
        check Alcotest.int "unique" 50
          (List.length (List.sort_uniq compare names)));
    tc "rand_element on empty list" (fun () ->
        let ctx = ctx_of sample in
        check Alcotest.bool "none" true
          (Uast.Ctx.rand_element ctx ([] : int list) = None));
    tc "rand_element picks members" (fun () ->
        let ctx = ctx_of sample in
        for _ = 1 to 20 do
          match Uast.Ctx.rand_element ctx [ 1; 2; 3 ] with
          | Some v -> check Alcotest.bool "member" true (List.mem v [ 1; 2; 3 ])
          | None -> Alcotest.fail "none"
        done);
  ]

let query_tests =
  [
    tc "functions found" (fun () ->
        check Alcotest.int "count" 2 (List.length (Visit.functions sample)));
    tc "if statements found" (fun () ->
        check Alcotest.int "ifs" 1 (List.length (Uast.Query.if_stmts sample)));
    tc "loops found" (fun () ->
        check Alcotest.int "loops" 1 (List.length (Uast.Query.loops sample)));
    tc "switches found" (fun () ->
        check Alcotest.int "switches" 1
          (List.length (Uast.Query.switches sample)));
    tc "calls_to finds call sites" (fun () ->
        check Alcotest.int "calls to add" 2
          (List.length (Uast.Query.calls_to sample "add")));
    tc "uses_of_var in function" (fun () ->
        match Visit.functions sample with
        | [ _; main ] ->
          check Alcotest.bool "x used" true
            (List.length (Uast.Query.uses_of_var main "x") >= 3)
        | _ -> Alcotest.fail "bad functions");
    tc "returns_of" (fun () ->
        match Visit.functions sample with
        | [ add; _ ] ->
          check Alcotest.int "returns" 1
            (List.length (Uast.Query.returns_of add))
        | _ -> Alcotest.fail "bad functions");
    tc "toplevel_vars_of includes params and locals" (fun () ->
        match Visit.functions sample with
        | [ add; main ] ->
          check Alcotest.int "add vars" 2
            (List.length (Uast.Query.toplevel_vars_of add));
          check Alcotest.int "main vars" 2
            (List.length (Uast.Query.toplevel_vars_of main))
        | _ -> Alcotest.fail "bad functions");
    tc "local_var_decls" (fun () ->
        check Alcotest.int "locals" 2
          (List.length (Uast.Query.local_var_decls sample)));
    tc "labels_of" (fun () ->
        let tu = parse "void f(void) { a: ; b: ; goto a; }" in
        match Visit.functions tu with
        | [ fd ] ->
          check
            Alcotest.(list string)
            "labels" [ "a"; "b" ]
            (List.sort compare (Uast.Query.labels_of fd))
        | _ -> Alcotest.fail "bad fn");
    tc "source_of_expr matches pretty" (fun () ->
        let e = Ast.binop Ast.Add (Ast.ident "a") (Ast.int_lit 1) in
        check Alcotest.string "text" "a + 1" (Uast.Query.source_of_expr e));
    tc "exprs_in_functions carries enclosing function" (fun () ->
        let hits =
          Uast.Query.exprs_in_functions sample ~pred:(fun e ->
              match e.Ast.ek with Ast.Binop _ -> true | _ -> false)
        in
        check Alcotest.bool "nonempty" true (hits <> []);
        List.iter
          (fun h ->
            check Alcotest.bool "fn name" true
              (List.mem h.Uast.Query.func.Ast.f_name [ "add"; "main" ]))
          hits);
    tc "decls_by_block groups by scope" (fun () ->
        match Visit.functions sample with
        | [ _; main ] ->
          let groups = Uast.Query.decls_by_block main in
          check Alcotest.bool "top group has x and y" true
            (List.exists (fun g -> List.length g = 2) groups)
        | _ -> Alcotest.fail "bad functions");
  ]

let count_stmts tu = Visit.count_stmts (fun _ -> true) tu

let rewrite_tests =
  [
    tc "replace_expr swaps exactly one node" (fun () ->
        let target = List.hd (Uast.Query.int_literals sample) in
        let tu =
          Visit.replace_expr sample ~eid:target.Ast.eid ~repl:(Ast.int_lit 99)
        in
        let nines =
          Visit.collect_exprs
            (fun e ->
              match e.Ast.ek with Ast.Int_lit (99L, _, _) -> true | _ -> false)
            tu
        in
        check Alcotest.int "one 99" 1 (List.length nines));
    tc "insert_before grows the statement list" (fun () ->
        let s = List.hd (Uast.Query.if_stmts sample) in
        let before = count_stmts sample in
        let tu =
          Uast.Rewrite.insert_before sample ~sid:s.Ast.sid
            ~stmts:[ Ast.mk_stmt Ast.Snull ]
        in
        check Alcotest.int "one more" (before + 1) (count_stmts tu));
    tc "insert_after places statement later" (fun () ->
        let s = List.hd (Uast.Query.if_stmts sample) in
        let tu =
          Uast.Rewrite.insert_after sample ~sid:s.Ast.sid
            ~stmts:[ Ast.sexpr (Ast.assign (Ast.ident "g") (Ast.int_lit 7)) ]
        in
        check Alcotest.bool "contains" true
          (contains (Pretty.tu_to_string tu) "g = 7"));
    tc "delete_stmt removes the statement" (fun () ->
        let s = List.hd (Uast.Query.loops sample) in
        let tu = Uast.Rewrite.delete_stmt sample ~sid:s.Ast.sid in
        check Alcotest.int "no loops" 0 (List.length (Uast.Query.loops tu)));
    tc "append/prepend to function" (fun () ->
        let tu =
          Uast.Rewrite.prepend_to_function sample ~fname:"main"
            ~stmts:[ Ast.mk_stmt Ast.Snull ]
        in
        let tu =
          Uast.Rewrite.append_to_function tu ~fname:"main"
            ~stmts:[ Ast.mk_stmt Ast.Snull ]
        in
        match Visit.functions tu with
        | [ _; main ] ->
          (match main.Ast.f_body with
          | { Ast.sk = Ast.Snull; _ } :: _ -> ()
          | _ -> Alcotest.fail "prepend missing");
          (match List.rev main.Ast.f_body with
          | { Ast.sk = Ast.Snull; _ } :: _ -> ()
          | _ -> Alcotest.fail "append missing")
        | _ -> Alcotest.fail "bad functions");
    tc "remove_param drops parameter and call arguments" (fun () ->
        let tu = Uast.Rewrite.remove_param sample ~fname:"add" ~index:1 in
        (match Visit.functions tu with
        | [ add; _ ] ->
          check Alcotest.int "one param" 1 (List.length add.Ast.f_params)
        | _ -> Alcotest.fail "bad functions");
        List.iter
          (fun e ->
            match e.Ast.ek with
            | Ast.Call (_, args) ->
              check Alcotest.int "one arg" 1 (List.length args)
            | _ -> ())
          (Uast.Query.calls_to tu "add"));
    tc "remove_arg drops one call-site argument" (fun () ->
        let site = List.hd (Uast.Query.calls_to sample "add") in
        let tu = Uast.Rewrite.remove_arg sample ~eid:site.Ast.eid ~index:0 in
        let lengths =
          List.map
            (fun e ->
              match e.Ast.ek with
              | Ast.Call (_, args) -> List.length args
              | _ -> 0)
            (Uast.Query.calls_to tu "add")
        in
        check
          (Alcotest.list Alcotest.int)
          "arities" [ 1; 2 ]
          (List.sort compare lengths));
    tc "rename_var_in_function renames decl and uses" (fun () ->
        let tu =
          Uast.Rewrite.rename_var_in_function sample ~fname:"main"
            ~old_name:"x" ~new_name:"renamed_x"
        in
        (match Visit.functions tu with
        | [ _; main ] ->
          check Alcotest.int "no old uses" 0
            (List.length (Uast.Query.uses_of_var main "x"));
          check Alcotest.bool "new uses" true
            (Uast.Query.uses_of_var main "renamed_x" <> [])
        | _ -> Alcotest.fail "bad functions");
        check Alcotest.bool "compiles" true (Typecheck.check tu).Typecheck.r_ok);
    tc "insert_global_before_functions keeps program valid" (fun () ->
        let g =
          Ast.Gvar
            {
              Ast.v_name = "fresh_g";
              v_ty = Ast.Tint (Ast.Iint, true);
              v_quals = Ast.no_quals;
              v_storage = Ast.S_none;
              v_init = Some (Ast.int_lit 0);
            }
        in
        let tu = Uast.Rewrite.insert_global_before_functions sample ~g in
        check Alcotest.bool "compiles" true (Typecheck.check tu).Typecheck.r_ok;
        let rec before_fn = function
          | Ast.Gvar { Ast.v_name = "fresh_g"; _ } :: _ -> true
          | Ast.Gfun _ :: _ -> false
          | _ :: rest -> before_fn rest
          | [] -> false
        in
        check Alcotest.bool "position" true (before_fn tu.Ast.globals));
    tc "replace_function rewrites the body" (fun () ->
        let tu =
          Uast.Rewrite.replace_function sample ~fname:"add" ~f:(fun fd ->
              { fd with Ast.f_body = [ Ast.sreturn (Some (Ast.int_lit 0)) ] })
        in
        match Visit.functions tu with
        | [ add; _ ] -> check Alcotest.int "body" 1 (List.length add.Ast.f_body)
        | _ -> Alcotest.fail "bad functions");
  ]

let int_ty = Ast.Tint (Ast.Iint, true)
let ptr_ty = Ast.Tptr int_ty
let struct_ty = Ast.Tstruct "s"

let check_tests =
  [
    tc "checkBinop arithmetic" (fun () ->
        check Alcotest.bool "int+int" true
          (Uast.Check.check_binop Ast.Add int_ty int_ty);
        check Alcotest.bool "float%float" false
          (Uast.Check.check_binop Ast.Mod Ast.Tdouble Ast.Tdouble));
    tc "checkBinop pointer arithmetic" (fun () ->
        check Alcotest.bool "ptr+int" true
          (Uast.Check.check_binop Ast.Add ptr_ty int_ty);
        check Alcotest.bool "ptr*ptr" false
          (Uast.Check.check_binop Ast.Mul ptr_ty ptr_ty);
        check Alcotest.bool "ptr-ptr" true
          (Uast.Check.check_binop Ast.Sub ptr_ty ptr_ty));
    tc "checkBinop bitwise needs integers" (fun () ->
        check Alcotest.bool "float^float" false
          (Uast.Check.check_binop Ast.Bxor Ast.Tfloat Ast.Tfloat));
    tc "checkAssignment" (fun () ->
        check Alcotest.bool "int<-float" true
          (Uast.Check.check_assignment ~dst:int_ty ~src:Ast.Tdouble);
        check Alcotest.bool "struct<-int" false
          (Uast.Check.check_assignment ~dst:struct_ty ~src:int_ty);
        check Alcotest.bool "same struct" true
          (Uast.Check.check_assignment ~dst:struct_ty ~src:struct_ty));
    tc "checkUnop" (fun () ->
        check Alcotest.bool "-float" true
          (Uast.Check.check_unop Ast.Neg Ast.Tfloat);
        check Alcotest.bool "~float" false
          (Uast.Check.check_unop Ast.Bitnot Ast.Tfloat);
        check Alcotest.bool "!ptr" true
          (Uast.Check.check_unop Ast.Lognot ptr_ty));
    tc "compatible_for_swap excludes pointers" (fun () ->
        check Alcotest.bool "int~long" true
          (Uast.Check.compatible_for_swap int_ty (Ast.Tint (Ast.Ilong, true)));
        check Alcotest.bool "ptr~ptr" false
          (Uast.Check.compatible_for_swap ptr_ty ptr_ty));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"check_assignment agrees with the typechecker"
         ~count:100
         QCheck.(pair small_int small_int)
         (fun (a, b) ->
           let tys =
             [| int_ty; Ast.Tint (Ast.Ichar, true);
                Ast.Tint (Ast.Ilong, false); Ast.Tfloat; Ast.Tdouble; Ast.Tbool |]
           in
           let dst = tys.(a mod Array.length tys) in
           let src = tys.(b mod Array.length tys) in
           if Uast.Check.check_assignment ~dst ~src then
             Typecheck.compiles_src
               (Fmt.str "int main(void) { %s = 0; %s; d = s; return 0; }"
                  (Pretty.decl_string src "s")
                  (Pretty.decl_string dst "d"))
           else true));
  ]

let () =
  Alcotest.run "uast"
    [
      ("ctx", ctx_tests);
      ("query", query_tests);
      ("rewrite", rewrite_tests);
      ("check", check_tests);
    ]
