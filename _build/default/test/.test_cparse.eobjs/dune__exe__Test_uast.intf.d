test/test_uast.mli:
