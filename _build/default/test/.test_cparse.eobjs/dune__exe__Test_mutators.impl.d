test/test_mutators.ml: Alcotest Ast Ast_gen Ast_ids Cparse Fmt Fuzzing Lazy List Metamut Mutators Parser Pretty QCheck QCheck_alcotest Rng Simcomp String Typecheck Uast Visit
