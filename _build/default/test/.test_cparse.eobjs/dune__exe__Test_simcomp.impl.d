test/test_simcomp.ml: Alcotest Ast_gen Cparse Fmt List Mutators Parser QCheck QCheck_alcotest Rng Simcomp String Typecheck
