test/test_metamut.ml: Alcotest Ast Cparse List Metamut Mutators Option Rng String Typecheck Uast Visit
