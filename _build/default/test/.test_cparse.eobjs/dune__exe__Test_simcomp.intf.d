test/test_simcomp.mli:
