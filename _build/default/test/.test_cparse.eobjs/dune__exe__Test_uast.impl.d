test/test_uast.ml: Alcotest Array Ast Cparse Fmt List Parser Pretty QCheck QCheck_alcotest Rng String Typecheck Uast Visit
