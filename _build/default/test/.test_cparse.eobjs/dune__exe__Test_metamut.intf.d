test/test_metamut.mli:
