test/test_fuzzing.mli:
