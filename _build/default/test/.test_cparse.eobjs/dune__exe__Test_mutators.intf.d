test/test_mutators.mli:
