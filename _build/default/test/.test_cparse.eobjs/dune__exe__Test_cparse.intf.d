test/test_cparse.mli:
