test/test_cparse.ml: Alcotest Array Ast Ast_gen Ast_ids Const_eval Cparse Fmt Hashtbl Lexer List Loc Parser Pretty QCheck QCheck_alcotest Rng String Token Typecheck Visit
