test/test_fuzzing.ml: Alcotest Ast_gen Cparse Fmt Fuzzing Hashtbl Lazy List Mutators Option Parser Pretty Report Result Rng Simcomp String Typecheck
