(* Tests for the C front-end substrate: lexer, parser, pretty-printer,
   constant evaluation, type checker, id management, program generator. *)

open Cparse

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let parse_ok src =
  match Parser.parse src with
  | Ok tu -> tu
  | Error e -> Alcotest.failf "parse failed: %s\nsource:\n%s" e src

let parse_err src =
  match Parser.parse src with
  | Ok _ -> Alcotest.failf "expected parse error for:\n%s" src
  | Error _ -> ()

let typecheck_ok src =
  let tu = parse_ok src in
  let r = Typecheck.check tu in
  if not r.Typecheck.r_ok then
    Alcotest.failf "typecheck failed: %s\nsource:\n%s"
      (String.concat "; "
         (List.map Typecheck.diag_to_string (Typecheck.errors r)))
      src

let typecheck_err src =
  let tu = parse_ok src in
  let r = Typecheck.check tu in
  if r.Typecheck.r_ok then
    Alcotest.failf "expected a type error for:\n%s" src

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let toks src =
  Array.to_list (Lexer.tokenize src)
  |> List.map (fun l -> l.Lexer.tok)
  |> List.filter (fun t -> t <> Token.Eof)

let lexer_tests =
  [
    tc "keywords vs identifiers" (fun () ->
        match toks "int intx" with
        | [ Token.Kw Token.Kint; Token.Ident "intx" ] -> ()
        | _ -> Alcotest.fail "bad tokens");
    tc "decimal literal" (fun () ->
        match toks "42" with
        | [ Token.Int_lit (42L, Ast.Iint, false) ] -> ()
        | _ -> Alcotest.fail "bad literal");
    tc "hex literal" (fun () ->
        match toks "0xFF" with
        | [ Token.Int_lit (255L, _, _) ] -> ()
        | _ -> Alcotest.fail "bad hex");
    tc "suffixes" (fun () ->
        match toks "1u 2L 3ULL" with
        | [ Token.Int_lit (1L, Ast.Iint, true);
            Token.Int_lit (2L, Ast.Ilong, false);
            Token.Int_lit (3L, Ast.Ilonglong, true) ] -> ()
        | _ -> Alcotest.fail "bad suffixes");
    tc "float literals" (fun () ->
        match toks "1.5 2.0f 3e2" with
        | [ Token.Float_lit (1.5, true); Token.Float_lit (2.0, false);
            Token.Float_lit (300., true) ] -> ()
        | _ -> Alcotest.fail "bad floats");
    tc "char literal with escape" (fun () ->
        match toks {|'\n' 'a'|} with
        | [ Token.Char_lit '\n'; Token.Char_lit 'a' ] -> ()
        | _ -> Alcotest.fail "bad chars");
    tc "string literal escapes" (fun () ->
        match toks {|"a\tb"|} with
        | [ Token.Str_lit "a\tb" ] -> ()
        | _ -> Alcotest.fail "bad string");
    tc "line comment skipped" (fun () ->
        check Alcotest.int "count" 1 (List.length (toks "1 // 2 3\n")));
    tc "block comment skipped" (fun () ->
        check Alcotest.int "count" 2 (List.length (toks "1 /* x */ 2")));
    tc "preprocessor line skipped" (fun () ->
        check Alcotest.int "count" 1
          (List.length (toks "#include <stdio.h>\n1")));
    tc "multi-char operators" (fun () ->
        match toks "<<= >>= && || -> ..." with
        | [ Token.ShlEq; Token.ShrEq; Token.AmpAmp; Token.PipePipe;
            Token.Arrow; Token.Ellipsis ] -> ()
        | _ -> Alcotest.fail "bad operators");
    tc "unterminated string is an error" (fun () ->
        match Lexer.tokenize "\"abc" with
        | _ -> Alcotest.fail "expected lex error"
        | exception Lexer.Error _ -> ());
    tc "unterminated comment is an error" (fun () ->
        match Lexer.tokenize "/* abc" with
        | _ -> Alcotest.fail "expected lex error"
        | exception Lexer.Error _ -> ());
    tc "locations track lines" (fun () ->
        let ls = Lexer.tokenize "a\nb" in
        check Alcotest.int "line of b" 2 ls.(1).Lexer.loc.Loc.line);
  ]

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let expr_of src =
  let tu = parse_ok (Fmt.str "int f(int a, int b, int c) { return %s; }" src) in
  match Visit.functions tu with
  | [ fd ] -> (
    match List.rev fd.Ast.f_body with
    | { Ast.sk = Ast.Sreturn (Some e); _ } :: _ -> e
    | _ -> Alcotest.fail "no return")
  | _ -> Alcotest.fail "no function"

let parser_tests =
  [
    tc "precedence: a + b * c" (fun () ->
        match (expr_of "a + b * c").Ast.ek with
        | Ast.Binop (Ast.Add, _, { ek = Ast.Binop (Ast.Mul, _, _); _ }) -> ()
        | _ -> Alcotest.fail "wrong precedence");
    tc "left associativity of -" (fun () ->
        match (expr_of "a - b - c").Ast.ek with
        | Ast.Binop (Ast.Sub, { ek = Ast.Binop (Ast.Sub, _, _); _ }, _) -> ()
        | _ -> Alcotest.fail "wrong associativity");
    tc "comparison below logical and" (fun () ->
        match (expr_of "a < b && b < c").Ast.ek with
        | Ast.Binop (Ast.Land, _, _) -> ()
        | _ -> Alcotest.fail "wrong nesting");
    tc "ternary is right-associative" (fun () ->
        match (expr_of "a ? 1 : b ? 2 : 3").Ast.ek with
        | Ast.Cond (_, _, { ek = Ast.Cond (_, _, _); _ }) -> ()
        | _ -> Alcotest.fail "wrong ternary");
    tc "assignment is right-associative" (fun () ->
        let tu = parse_ok "void f(void) { int a; int b; a = b = 1; }" in
        let found = ref false in
        Visit.iter_tu tu ~fe:(fun e ->
            match e.Ast.ek with
            | Ast.Assign (_, _, { ek = Ast.Assign (_, _, _); _ }) ->
              found := true
            | _ -> ());
        check Alcotest.bool "nested" true !found);
    tc "unary binds tighter than binary" (fun () ->
        match (expr_of "-a * b").Ast.ek with
        | Ast.Binop (Ast.Mul, { ek = Ast.Unop (Ast.Neg, _); _ }, _) -> ()
        | _ -> Alcotest.fail "wrong unary");
    tc "postfix binds tighter than prefix" (fun () ->
        match (expr_of "-a[0]").Ast.ek with
        | Ast.Unop (Ast.Neg, { ek = Ast.Index _; _ }) -> ()
        | _ -> Alcotest.fail "wrong postfix");
    tc "cast expression" (fun () ->
        match (expr_of "(long)a").Ast.ek with
        | Ast.Cast (Ast.Tint (Ast.Ilong, true), _) -> ()
        | _ -> Alcotest.fail "wrong cast");
    tc "sizeof type and expr" (fun () ->
        (match (expr_of "(int)sizeof(int)").Ast.ek with
        | Ast.Cast (_, { ek = Ast.Sizeof_ty _; _ }) -> ()
        | _ -> Alcotest.fail "sizeof(ty)");
        match (expr_of "(int)sizeof a").Ast.ek with
        | Ast.Cast (_, { ek = Ast.Sizeof_expr _; _ }) -> ()
        | _ -> Alcotest.fail "sizeof e");
    tc "pointer declarator" (fun () ->
        let tu = parse_ok "int *p;" in
        match Visit.global_vars tu with
        | [ { Ast.v_ty = Ast.Tptr (Ast.Tint (Ast.Iint, true)); _ } ] -> ()
        | _ -> Alcotest.fail "bad pointer decl");
    tc "array declarator" (fun () ->
        let tu = parse_ok "int a[8];" in
        match Visit.global_vars tu with
        | [ { Ast.v_ty = Ast.Tarray (_, Some 8); _ } ] -> ()
        | _ -> Alcotest.fail "bad array decl");
    tc "2d array declarator" (fun () ->
        let tu = parse_ok "int m[2][3];" in
        match Visit.global_vars tu with
        | [ { Ast.v_ty = Ast.Tarray (Ast.Tarray (_, Some 3), Some 2); _ } ] ->
          ()
        | _ -> Alcotest.fail "bad 2d array");
    tc "function prototype" (fun () ->
        let tu = parse_ok "int add(int, int);" in
        match tu.Ast.globals with
        | [ Ast.Gproto { pr_params = [ _; _ ]; _ } ] -> ()
        | _ -> Alcotest.fail "bad proto");
    tc "variadic prototype" (fun () ->
        let tu = parse_ok "int f(int, ...);" in
        match tu.Ast.globals with
        | [ Ast.Gproto { pr_variadic = true; _ } ] -> ()
        | _ -> Alcotest.fail "bad variadic");
    tc "typedef usage" (fun () ->
        typecheck_ok "typedef int myint; myint g; int main(void) { g = 3; return g; }");
    tc "struct definition and member access" (fun () ->
        typecheck_ok
          "struct p { int x; int y; };\n\
           int main(void) { struct p v; v.x = 1; v.y = 2; return v.x + v.y; }");
    tc "enum constants" (fun () ->
        typecheck_ok
          "enum e { A, B = 5, C };\n\
           int main(void) { return A + B + C; }");
    tc "switch with fallthrough parses" (fun () ->
        let tu =
          parse_ok
            "int f(int x) { switch (x) { case 0: case 1: x = 2; case 2: \
             break; default: x = 9; } return x; }"
        in
        match Visit.collect_stmts (fun s -> match s.Ast.sk with Ast.Sswitch _ -> true | _ -> false) tu with
        | [ { Ast.sk = Ast.Sswitch (_, cases); _ } ] ->
          check Alcotest.int "case groups" 3 (List.length cases)
        | _ -> Alcotest.fail "bad switch");
    tc "goto and labels" (fun () ->
        typecheck_ok
          "int main(void) { int x = 0; goto end; x = 1; end: return x; }");
    tc "do-while" (fun () ->
        typecheck_ok "int main(void) { int i = 0; do i++; while (i < 3); return i; }");
    tc "for with decl init" (fun () ->
        typecheck_ok
          "int main(void) { int s = 0; for (int i = 0; i < 4; i++) s += i; return s; }");
    tc "adjacent string literals concatenate" (fun () ->
        let tu = parse_ok {|int main(void) { printf("a" "b"); return 0; }|} in
        let found = ref false in
        Visit.iter_tu tu ~fe:(fun e ->
            match e.Ast.ek with
            | Ast.Str_lit "ab" -> found := true
            | _ -> ());
        check Alcotest.bool "concatenated" true !found);
    tc "missing semicolon is an error" (fun () -> parse_err "int x");
    tc "unbalanced braces is an error" (fun () ->
        parse_err "int main(void) { return 0;");
    tc "garbage is an error" (fun () -> parse_err "$$$");
    tc "empty parameter list means no params" (fun () ->
        let tu = parse_ok "int f(void) { return 1; }" in
        match Visit.functions tu with
        | [ fd ] -> check Alcotest.int "params" 0 (List.length fd.Ast.f_params)
        | _ -> Alcotest.fail "bad fn");
  ]

(* ------------------------------------------------------------------ *)
(* Pretty-printer round trips                                          *)
(* ------------------------------------------------------------------ *)

let roundtrip_tests =
  let cases =
    [
      "int main(void) {\n  return 1 + 2 * 3;\n}\n";
      "int f(int a) {\n  return a < 0 ? -a : a;\n}\n";
      "int g;\n\nvoid h(void) {\n  g = (int)1.5;\n}\n";
    ]
  in
  List.mapi
    (fun i src ->
      tc (Fmt.str "fixed roundtrip %d" i) (fun () ->
          let tu = parse_ok src in
          let printed = Pretty.tu_to_string tu in
          let tu2 = parse_ok printed in
          check Alcotest.string "idempotent print" printed
            (Pretty.tu_to_string tu2)))
    cases
  @ [
      tc "print respects precedence" (fun () ->
          let e =
            Ast.binop Ast.Mul
              (Ast.binop Ast.Add (Ast.ident "a") (Ast.ident "b"))
              (Ast.ident "c")
          in
          check Alcotest.string "parens" "(a + b) * c" (Pretty.expr_to_string e));
      tc "negative literal survives reparse" (fun () ->
          let src = "int main(void) { return (-2147483648L) + 1; }" in
          let tu = parse_ok src in
          let printed = Pretty.tu_to_string tu in
          ignore (parse_ok printed));
      tc "nested unary minus spaced" (fun () ->
          let e = Ast.unop Ast.Neg (Ast.unop Ast.Neg (Ast.ident "x")) in
          let s = Pretty.expr_to_string e in
          let reparsed = expr_of (Fmt.str "a + %s" s) in
          ignore reparsed);
    ]

(* Property tests using our own deterministic generator (QCheck drives the
   iteration; program generation uses a per-case seed). *)
let prop_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"gen/print/parse roundtrip is stable" ~count:120
         QCheck.small_int
         (fun seed ->
           let rng = Rng.create (seed + 1) in
           let tu = Ast_gen.gen_tu rng in
           let printed = Pretty.tu_to_string tu in
           match Parser.parse printed with
           | Error _ -> false
           | Ok tu2 -> String.equal printed (Pretty.tu_to_string tu2)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"generated programs type check" ~count:120
         QCheck.small_int
         (fun seed ->
           let rng = Rng.create (seed + 1000) in
           let tu = Ast_gen.gen_tu rng in
           (Typecheck.check tu).Typecheck.r_ok));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"generated ASTs are structurally id-unique"
         ~count:60 QCheck.small_int
         (fun seed ->
           let rng = Rng.create (seed + 2000) in
           Ast_ids.well_formed (Ast_gen.gen_tu rng)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"csmith-like config avoids gotos and strings"
         ~count:40 QCheck.small_int
         (fun seed ->
           let rng = Rng.create (seed + 3000) in
           let tu = Ast_gen.gen_tu ~cfg:Ast_gen.csmith_like_config rng in
           let bad = ref false in
           Visit.iter_tu tu ~fs:(fun s ->
               match s.Ast.sk with
               | Ast.Sgoto _ | Ast.Slabel _ -> bad := true
               | _ -> ());
           not !bad));
  ]

(* ------------------------------------------------------------------ *)
(* Constant evaluation                                                 *)
(* ------------------------------------------------------------------ *)

let const_tests =
  let eval src = Const_eval.eval_int (expr_of src) in
  [
    tc "arithmetic" (fun () ->
        check Alcotest.(option int64) "2+3*4" (Some 14L) (eval "2 + 3 * 4"));
    tc "division by zero is not constant" (fun () ->
        check Alcotest.(option int64) "1/0" None (eval "1 / 0"));
    tc "shifts" (fun () ->
        check Alcotest.(option int64) "1<<4" (Some 16L) (eval "1 << 4"));
    tc "comparisons yield 0/1" (fun () ->
        check Alcotest.(option int64) "3<5" (Some 1L) (eval "3 < 5"));
    tc "conditional folds" (fun () ->
        check Alcotest.(option int64) "cond" (Some 7L) (eval "0 ? 3 : 7"));
    tc "char cast truncates" (fun () ->
        check Alcotest.(option int64) "(char)257" (Some 1L)
          (eval "(char)257"));
    tc "non-constant expression" (fun () ->
        check Alcotest.(option int64) "a+1" None (eval "a + 1"));
    tc "sizeof folds" (fun () ->
        check Alcotest.(option int64) "sizeof(int)" (Some 4L)
          (Const_eval.eval_int (Ast.mk_expr (Ast.Sizeof_ty (Ast.Tint (Ast.Iint, true))))));
  ]

(* ------------------------------------------------------------------ *)
(* Type checker                                                        *)
(* ------------------------------------------------------------------ *)

let typecheck_tests =
  [
    tc "valid hello world" (fun () ->
        typecheck_ok {|int main(void) { printf("hi\n"); return 0; }|});
    tc "undeclared variable" (fun () ->
        typecheck_err "int main(void) { return nope; }");
    tc "unknown function" (fun () ->
        typecheck_err "int main(void) { return mystery(1); }");
    tc "too few arguments" (fun () ->
        typecheck_err
          "int add(int a, int b) { return a + b; }\n\
           int main(void) { return add(1); }");
    tc "too many arguments" (fun () ->
        typecheck_err
          "int add(int a) { return a; }\nint main(void) { return add(1, 2); }");
    tc "variadic call accepts extras" (fun () ->
        typecheck_ok {|int main(void) { printf("%d %d", 1, 2); return 0; }|});
    tc "assignment to const is an error" (fun () ->
        typecheck_err "int main(void) { const int x = 1; x = 2; return x; }");
    tc "assignment to array is an error" (fun () ->
        typecheck_err "int main(void) { int a[3]; int b[3]; a = b; return 0; }");
    tc "void variable is an error" (fun () ->
        typecheck_err "int main(void) { void v; return 0; }");
    tc "break outside loop is an error" (fun () ->
        typecheck_err "int main(void) { break; return 0; }");
    tc "continue outside loop is an error" (fun () ->
        typecheck_err "int main(void) { continue; return 0; }");
    tc "break inside switch is fine" (fun () ->
        typecheck_ok
          "int main(void) { switch (1) { case 1: break; } return 0; }");
    tc "duplicate case values" (fun () ->
        typecheck_err
          "int main(void) { switch (1) { case 1: break; case 1: break; } return 0; }");
    tc "duplicate labels" (fun () ->
        typecheck_err "int main(void) { l: ; l: ; return 0; }");
    tc "goto to missing label" (fun () ->
        typecheck_err "int main(void) { goto missing; return 0; }");
    tc "return value in void function" (fun () ->
        typecheck_err "void f(void) { return 3; } int main(void) { f(); return 0; }");
    tc "bare return in int function is only a warning" (fun () ->
        typecheck_ok "int f(void) { return; } int main(void) { f(); return 0; }");
    tc "int/pointer conversion warns but compiles" (fun () ->
        let tu = parse_ok "int main(void) { int *p; int x = 0; p = x; return 0; }" in
        let r = Typecheck.check tu in
        check Alcotest.bool "compiles" true r.Typecheck.r_ok;
        check Alcotest.bool "warns" true (Typecheck.warnings r <> []));
    tc "incompatible struct assignment" (fun () ->
        typecheck_err
          "struct a { int x; }; struct b { int x; };\n\
           int main(void) { struct a va; struct b vb; va = vb; return 0; }");
    tc "same struct assignment ok" (fun () ->
        typecheck_ok
          "struct a { int x; };\n\
           int main(void) { struct a u; struct a v; u.x = 1; v = u; return v.x; }");
    tc "unknown member" (fun () ->
        typecheck_err
          "struct a { int x; };\n\
           int main(void) { struct a v; return v.nope; }");
    tc "arrow on non-pointer" (fun () ->
        typecheck_err
          "struct a { int x; };\n\
           int main(void) { struct a v; return v->x; }");
    tc "deref of non-pointer" (fun () ->
        typecheck_err "int main(void) { int x = 1; return *x; }");
    tc "mod on floats is an error" (fun () ->
        typecheck_err "int main(void) { double d = 1.0; d = d % 2.0; return 0; }");
    tc "redefinition of function" (fun () ->
        typecheck_err "int f(void) { return 1; } int f(void) { return 2; }");
    tc "redefinition of local" (fun () ->
        typecheck_err "int main(void) { int x = 1; int x = 2; return x; }");
    tc "shadowing in nested block ok" (fun () ->
        typecheck_ok
          "int main(void) { int x = 1; { int x = 2; x = x + 1; } return x; }");
    tc "global initializer must be constant" (fun () ->
        typecheck_err "int g; int h = g + 1;");
    tc "constant global initializer ok" (fun () -> typecheck_ok "int h = 3 + 4;");
    tc "expr types recorded" (fun () ->
        let tu = parse_ok "int main(void) { return 1 + 2; }" in
        let r = Typecheck.check tu in
        check Alcotest.bool "has types" true (Hashtbl.length r.Typecheck.r_types > 0));
  ]

(* ------------------------------------------------------------------ *)
(* Ids and RNG                                                         *)
(* ------------------------------------------------------------------ *)

let id_rng_tests =
  [
    tc "renumber restores uniqueness" (fun () ->
        let tu = parse_ok "int main(void) { return 1 + 2; }" in
        (* duplicate a subtree to break uniqueness *)
        let broken =
          Visit.map_tu tu ~fe:(fun e ->
              match e.Ast.ek with
              | Ast.Binop (op, a, _) -> { e with Ast.ek = Ast.Binop (op, a, a) }
              | _ -> e)
        in
        check Alcotest.bool "broken" false (Ast_ids.well_formed broken);
        check Alcotest.bool "fixed" true
          (Ast_ids.well_formed (Ast_ids.renumber broken)));
    tc "max_id is an upper bound" (fun () ->
        let tu = parse_ok "int main(void) { return 1; }" in
        let m = Ast_ids.max_id tu in
        Visit.iter_tu tu ~fe:(fun e ->
            check Alcotest.bool "bound" true (e.Ast.eid <= m)));
    tc "rng determinism" (fun () ->
        let a = Rng.create 5 and b = Rng.create 5 in
        for _ = 1 to 50 do
          check Alcotest.int "same" (Rng.int a 1000) (Rng.int b 1000)
        done);
    tc "rng bounds" (fun () ->
        let r = Rng.create 1 in
        for _ = 1 to 200 do
          let v = Rng.int r 7 in
          check Alcotest.bool "in range" true (v >= 0 && v < 7)
        done);
    tc "rng int_in inclusive" (fun () ->
        let r = Rng.create 2 in
        let saw_lo = ref false and saw_hi = ref false in
        for _ = 1 to 500 do
          let v = Rng.int_in r 3 5 in
          if v = 3 then saw_lo := true;
          if v = 5 then saw_hi := true;
          check Alcotest.bool "range" true (v >= 3 && v <= 5)
        done;
        check Alcotest.bool "hits bounds" true (!saw_lo && !saw_hi));
    tc "shuffle preserves elements" (fun () ->
        let r = Rng.create 3 in
        let xs = [ 1; 2; 3; 4; 5; 6 ] in
        check
          Alcotest.(list int)
          "same multiset" xs
          (List.sort compare (Rng.shuffle r xs)));
    tc "weighted respects zero weights" (fun () ->
        let r = Rng.create 4 in
        for _ = 1 to 100 do
          check Alcotest.int "never zero-weight" 1
            (Rng.weighted r [ (0, 0); (5, 1) ])
        done);
    tc "split streams are independent" (fun () ->
        let r = Rng.create 9 in
        let a = Rng.split r and b = Rng.split r in
        let va = List.init 10 (fun _ -> Rng.int a 1000) in
        let vb = List.init 10 (fun _ -> Rng.int b 1000) in
        check Alcotest.bool "different" true (va <> vb));
  ]

let () =
  Alcotest.run "cparse"
    [
      ("lexer", lexer_tests);
      ("parser", parser_tests);
      ("pretty", roundtrip_tests);
      ("properties", prop_tests);
      ("const-eval", const_tests);
      ("typecheck", typecheck_tests);
      ("ids-and-rng", id_rng_tests);
    ]
