(* Bug hunting with the macro fuzzer (the paper's RQ2 field study, §5.3):
   run the coverage-guided macro fuzzer — havoc mutation rounds, random
   command lines, shared coverage — against both simulated compilers and
   triage what it finds.

     dune exec examples/bughunt.exe *)

let () =
  let rng = Cparse.Rng.create 4242 in
  let seeds = Fuzzing.Seeds.corpus ~n:60 (Cparse.Rng.create 1) in
  Fmt.pr "seed corpus: %d programs (stand-in for the GCC/Clang test suites)@."
    (List.length seeds);
  List.iter
    (fun compiler ->
      Fmt.pr "@.=== hunting in %s-sim ===@."
        (Simcomp.Bugdb.compiler_to_string compiler);
      let r =
        Fuzzing.Macro_fuzzer.run
          ~rng:(Cparse.Rng.split rng)
          ~compiler ~seeds ~iterations:400 ()
      in
      Fmt.pr "mutants tried: %d (%.1f%% compilable)@."
        r.Fuzzing.Fuzz_result.total_mutants
        (Fuzzing.Fuzz_result.compilable_ratio r);
      Fmt.pr "coverage: %d branches@."
        (Simcomp.Coverage.covered r.Fuzzing.Fuzz_result.coverage);
      Fmt.pr "unique crashes: %d@." (Fuzzing.Fuzz_result.unique_crashes r);
      Hashtbl.iter
        (fun _key cr ->
          let c = cr.Fuzzing.Fuzz_result.cr_crash in
          let t = Simcomp.Bugdb.triage_of c.Simcomp.Crash.bug_id in
          Fmt.pr "  %-60s first at iter %4d  [%s%s%s]@."
            (Simcomp.Crash.to_string c)
            cr.Fuzzing.Fuzz_result.cr_first_iteration
            (if t.Simcomp.Bugdb.t_confirmed then "confirmed" else "reported")
            (if t.Simcomp.Bugdb.t_fixed then ", fixed" else "")
            (if t.Simcomp.Bugdb.t_duplicate then ", duplicate" else ""))
        r.Fuzzing.Fuzz_result.crashes)
    [ Simcomp.Compiler.Gcc; Simcomp.Compiler.Clang ];
  (* extension: crash-free bugs need differential (EMI-style) testing *)
  Fmt.pr "@.=== wrong-code hunt (O0 vs O2/O3 differencing) ===@.";
  let r =
    Fuzzing.Wrongcode.hunt ~rng:(Cparse.Rng.split rng)
      ~compiler:Simcomp.Compiler.Gcc ~seeds ~iterations:600 ()
  in
  Fmt.pr "%d mutants differenced, %d miscompilations found@."
    r.Fuzzing.Wrongcode.r_checked
    (List.length r.Fuzzing.Wrongcode.r_mismatches)
