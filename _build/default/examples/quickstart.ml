(* Quickstart: mutate a C program with a paper mutator, compile the mutant
   with the simulated compiler, and look at what changed.

     dune exec examples/quickstart.exe *)

let program = {|
int add(int a, int b) { return a + b; }

int main(void) {
  int total = 0;
  for (int i = 0; i < 5; i++)
    total = add(total, i);
  printf("%d\n", total);
  return total;
}
|}

let () =
  (* 1. Parse the program into the typed AST. *)
  let tu =
    match Cparse.Parser.parse program with
    | Ok tu -> tu
    | Error e -> failwith e
  in
  Fmt.pr "Original program:@.%s@." (Cparse.Pretty.tu_to_string tu);

  (* 2. Pick the paper's running-example mutator (Ret2V, Fig. 3-5). *)
  let ret2v =
    Option.get
      (Mutators.Registry.find_opt "ModifyFunctionReturnTypeToVoid")
  in
  Fmt.pr "Applying mutator: %s@.  \"%s\"@.@." ret2v.Mutators.Mutator.name
    ret2v.Mutators.Mutator.description;

  (* 3. Apply it. *)
  let rng = Cparse.Rng.create 2024 in
  let mutant =
    match Mutators.Mutator.apply ret2v ~rng tu with
    | Some tu' -> tu'
    | None -> failwith "mutator was not applicable"
  in
  Fmt.pr "Mutant:@.%s@." (Cparse.Pretty.tu_to_string mutant);

  (* 4. Compile both with the simulated GCC at -O2, comparing coverage. *)
  let compile name tu =
    let cov = Simcomp.Coverage.create () in
    let outcome =
      Simcomp.Compiler.compile ~cov Simcomp.Compiler.Gcc
        Simcomp.Compiler.default_options
        (Cparse.Pretty.tu_to_string tu)
    in
    let status =
      match outcome with
      | Simcomp.Compiler.Compiled { warnings; ir_size; _ } ->
        Fmt.str "compiled (warnings=%d, ir=%d instrs)" warnings ir_size
      | Simcomp.Compiler.Compile_error es ->
        Fmt.str "compile error: %s" (String.concat "; " es)
      | Simcomp.Compiler.Crashed c -> Simcomp.Crash.to_string c
    in
    Fmt.pr "%-10s %-50s covered=%d branches@." name status
      (Simcomp.Coverage.covered cov);
    cov
  in
  let cov_orig = compile "original" tu in
  let cov_mut = compile "mutant" mutant in

  (* 5. The mutant explores compiler behaviour the original did not. *)
  Fmt.pr "mutant covers %s branches the original did not@."
    (if Simcomp.Coverage.has_new_coverage ~seen:cov_orig cov_mut then "NEW"
     else "no new");

  (* 6. And still runs (the reference interpreter). *)
  let o = Simcomp.Interp.run mutant in
  Fmt.pr "mutant executed: exit=%d output=%S@." o.Simcomp.Interp.o_exit
    o.Simcomp.Interp.o_output
