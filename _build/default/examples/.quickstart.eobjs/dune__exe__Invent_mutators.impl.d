examples/invent_mutators.ml: Fmt List Metamut Mutators
