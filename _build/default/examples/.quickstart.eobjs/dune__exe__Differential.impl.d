examples/differential.ml: Cparse Fmt List Simcomp String
