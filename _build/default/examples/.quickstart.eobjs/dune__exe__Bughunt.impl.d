examples/bughunt.ml: Cparse Fmt Fuzzing Hashtbl List Simcomp
