examples/quickstart.mli:
