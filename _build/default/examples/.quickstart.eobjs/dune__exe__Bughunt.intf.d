examples/bughunt.mli:
