examples/invent_mutators.mli:
