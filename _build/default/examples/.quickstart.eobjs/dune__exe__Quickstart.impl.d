examples/quickstart.ml: Cparse Fmt Mutators Option Simcomp String
