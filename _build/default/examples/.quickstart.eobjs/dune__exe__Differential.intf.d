examples/differential.mli:
