(* Run the MetaMut pipeline end to end (Fig. 1): invention →
   implementation synthesis → validation and refinement, with the
   simulated GPT-4 oracle and real validation against unit tests.

     dune exec examples/invent_mutators.exe *)

let () =
  Fmt.pr "Invoking MetaMut 20 times (unsupervised mode)...@.@.";
  let runs = Metamut.Pipeline.run_many ~seed:99 ~n:20 () in
  List.iteri
    (fun i r ->
      let open Metamut.Pipeline in
      let cost = total_cost r in
      let outcome =
        match r.r_outcome with
        | Valid m ->
          Fmt.str "VALID    %s (%s)" m.Mutators.Mutator.name
            (Mutators.Mutator.category_to_string m.Mutators.Mutator.category)
        | Invalid_refinement -> "INVALID  did not survive the refinement loop"
        | Invalid_manual reason -> Fmt.str "INVALID  manual review: %s" reason
        | System_error -> "ERROR    API throttled / timeout"
      in
      Fmt.pr "#%02d %-70s@." (i + 1) outcome;
      if r.r_outcome <> System_error then begin
        Fmt.pr "     tokens=%5d  QA rounds=%2d  wall=%.0fs  cost=$%.2f@."
          cost.sc_tokens cost.sc_qa_rounds
          (cost.sc_wait_s +. cost.sc_prepare_s)
          (dollars_of_tokens cost.sc_tokens);
        List.iter
          (fun (goal, n) ->
            Fmt.pr "     refinement fixed %d violation(s) of goal #%d@." n goal)
          r.r_bugs_fixed
      end)
    runs;
  let s = Metamut.Pipeline.summarize runs in
  Fmt.pr
    "@.summary: %d valid, %d failed refinement, %d rejected by review, %d \
     system errors@."
    s.s_valid s.s_invalid_refinement s.s_invalid_manual s.s_system_errors
