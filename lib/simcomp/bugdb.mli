(** The latent-bug database of the simulated compilers.

    Each bug is keyed on a conjunction of program features ({!Features})
    plus a minimum optimization level, mirroring how the paper's
    real-world bugs required specific program shapes.  Marquee entries
    reproduce GCC #111820 (vectorizer hang), GCC #111819 (fold_offsetof),
    the strlen-optimization crash of §5.2, Clang #63762 (branch folding),
    and Clang #69213 (compound-literal front-end crash).  Bug families
    are graded by threshold so deeper diversity keeps uncovering new
    unique crashes over a campaign (Fig. 9's growth curves). *)

type compiler = Gcc | Clang

val compiler_to_string : compiler -> string

type bug = {
  id : string;
  compiler : compiler;
  stage : Crash.stage;
  kind : Crash.kind;
  frames : string list;
  min_opt : int;
  pass : string option;
      (** optimizer-stage bugs live in a pass: the bug fires only when
          that pass executed, so [-fno-<pass>] masks it and culprit
          bisection can recover it; [None] = stage-wide *)
  pred : Features.text -> Features.ast option -> bool;
      (** the text predicate applies even to inputs that fail to parse;
          the AST predicate requires a successful parse *)
}

val all_bugs : bug list

val bugs_for : compiler -> bug list

val check :
  compiler:compiler ->
  stage:Crash.stage ->
  opt_level:int ->
  ?executed:string list ->
  tx:Features.text ->
  ast:Features.ast option ->
  unit ->
  unit
(** Consult the database at one stage boundary; raises
    {!Crash.Compiler_crash} on the first triggered bug.  [executed] is
    the pass sequence the optimizer ran (pass it at the [Optimization]
    boundary): bugs homed in a pass fire only when that pass appears in
    it. *)

(** Silent wrong-code bugs: when one fires, the optimizer produces wrong
    code without crashing.  Only differential (EMI-style) testing exposes
    them — see [Fuzzing.Wrongcode]. *)
type miscompile = {
  mc_id : string;
  mc_compiler : compiler;
  mc_min_opt : int;
  mc_culprit : string;
      (** the pass whose execution corrupts the IR — the ground truth
          that culprit-pass bisection must recover *)
  mc_requires_absent : string list;
      (** passes whose presence in the pipeline masks the bug *)
  mc_pred : Features.ast -> bool;
}

val miscompiles : miscompile list

val check_miscompile :
  compiler:compiler ->
  opt_level:int ->
  pipeline:string list ->
  ast:Features.ast ->
  miscompile option
(** [pipeline] is the ordered pass-name list the driver is about to run:
    a miscompile fires only when its culprit pass is scheduled and none
    of its masking passes are. *)

(** Pass-ordering ICEs: crashes keyed on the executed pass sequence
    (pass ran twice, ran without a prerequisite, ...) rather than the
    [-O] level alone — only reachable by exploring the pass matrix. *)
type pass_bug = {
  pb_id : string;
  pb_compiler : compiler;
  pb_kind : Crash.kind;
  pb_frames : string list;
  pb_pred : Features.ast -> bool;
  pb_fires : executed:string list -> bool;
}

val pass_bugs : pass_bug list

val check_passes :
  compiler:compiler -> executed:string list -> ast:Features.ast -> unit
(** Consult the pass-ordering bugs after the pipeline ran; raises
    {!Crash.Compiler_crash} on the first triggered bug. *)

(** Bug-report lifecycle model (Table 6). *)
type triage = {
  t_confirmed : bool;
  t_fixed : bool;
  t_duplicate : bool;
  t_priority : int;  (** 1-5 GCC style, 0 when unassigned *)
}

val triage_of : string -> triage
(** Deterministic per bug id, calibrated to Table 6's confirm/fix/dup
    rates. *)
