(** The optimizer of the simulated compiler: a registered pass pipeline.

    Each pass registers a name, a default placement (the lowest [-O]
    level that schedules it), and a [run] over the IR. Optimization
    levels are named pipeline {e specs} — ordered pass-name lists
    resolved against the registry — so drivers can introspect the
    pipeline, disable passes, override the order, and observe each pass
    as it executes (IR dumps, differential testing, culprit bisection).

    Default specs:
    {ul
    {- [-O1]: constfold, simplify-cfg, dce}
    {- [-O2]: + inline, strlen-opt, a second constfold}
    {- [-O3]: + loop-opt (the "vectorizer" of the GCC #111820 hang)}}

    Passes mutate the IR in place, report branch coverage per decision,
    and are semantics-preserving (verified by differential tests against
    {!Ir_interp}). *)

type pass = {
  pass_name : string;
  pass_since : int;
      (** default placement: lowest [-O] level that schedules the pass *)
  run : ?cov:Coverage.t -> Ir.program -> int;  (** returns changes made *)
}

val const_fold_pass : pass
(** Per-block constant folding and copy propagation; folds constant
    branches, switches, and returns. *)

val simplify_cfg_pass : pass
(** Jump threading through empty forwarding blocks and unreachable-block
    elimination. *)

val dce_pass : pass
(** Removes pure instructions whose destinations are never read. *)

val inline_pass : pass
(** Folds calls to functions that immediately return a constant. *)

val strlen_pass : pass
(** The GCC strlen-pass analogue: rewrites the result of
    [sprintf(dst, "%s", src)] into [strlen(src)]. *)

val loop_pass : pass
(** Back-edge detection and trip-count analysis (coverage-bearing; the
    stage where the vectorizer-hang bug is keyed). *)

(** {1 Registry} *)

val register : pass -> unit
(** Append a pass to the registry. Registration order is the canonical
    enumeration order (option fuzzing depends on it).
    @raise Invalid_argument on a duplicate name. *)

val all_passes : unit -> pass list
val pass_names : unit -> string list

val find_pass : string -> pass option

(** {1 Pipeline specs} *)

type spec = { spec_name : string; spec_level : int; spec_passes : string list }

val specs : spec list
(** One spec per optimization level, [O0] through [O3]. *)

val spec_for_level : int -> spec
(** Clamps the level into [0, 3]. *)

val passes_for_level : int -> pass list

val planned :
  ?pass_list:string list -> level:int -> disabled:string list -> unit ->
  string list
(** The ordered pass names the driver will execute: [pass_list] when
    given (an explicit pipeline override), else the spec for [level],
    minus [disabled].
    @raise Invalid_argument if [pass_list] names an unknown pass. *)

val run_pipeline :
  ?cov:Coverage.t ->
  ?observer:(index:int -> pass:pass -> changes:int -> Ir.program -> unit) ->
  ?instrument:(pass -> (unit -> int) -> int) ->
  ?pass_list:string list ->
  level:int ->
  disabled:string list ->
  Ir.program ->
  (string * int) list
(** Run the planned pipeline over the program; returns [(pass, changes)]
    per executed pass. [instrument] wraps each pass execution (spans);
    [observer] fires after each pass with the mutated program (metrics,
    IR snapshots, differential checks).
    @raise Invalid_argument if [pass_list] names an unknown pass. *)
