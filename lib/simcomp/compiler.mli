(** The simulated compiler driver.

    Front-end (parse + type check) → IR generation → optimization →
    back-end, with branch-coverage instrumentation at every stage and the
    latent-bug database ({!Bugdb}) consulted at every stage boundary.

    Two compiler "products" share the pipeline but have distinct bug sets
    and coverage-id salts, modelling GCC vs Clang in the paper's RQ1. *)

type compiler = Bugdb.compiler = Gcc | Clang

(** IR-snapshot requests honoured by {!compile_passes}. *)
type dump_ir =
  | Dump_none
  | Dump_all  (** [-fdump-ir]: snapshot around every pass *)
  | Dump_pass of string  (** [-fdump-ir=PASS]: only around that pass *)

type options = {
  opt_level : int;                (** 0..3; the paper fuzzes at -O2 *)
  disabled_passes : string list;  (** -fno-<pass> *)
  pass_list : string list option;
      (** [-fpasses=a,b,c]: explicit ordered pipeline overriding the
          level's spec (still subject to [disabled_passes]) *)
  dump_ir : dump_ir;
}

val default_options : options
(** [-O2] with every pass enabled, no pipeline override, no dumps. *)

val pipeline_of : options -> string list
(** The ordered pass names the optimizer will run under these options.
    @raise Invalid_argument if [pass_list] names an unknown pass. *)

type outcome =
  | Compiled of { asm : string; warnings : int; ir_size : int; spills : int }
  | Compile_error of string list
  | Crashed of Crash.t
      (** an internal compiler error: a latent bug fired *)

val outcome_is_success : outcome -> bool

val engine_stage : Crash.stage -> Engine.Event.stage
(** Crash stages and engine stages name the same pipeline boundaries. *)

val compile :
  ?cov:Coverage.t -> ?engine:Engine.Ctx.t -> ?faults:Engine.Faults.t ->
  compiler -> options -> string -> outcome
(** Compile C source.  When [cov] is given, every pipeline stage reports
    branch coverage into it (including error-handling paths for inputs
    that fail to lex/parse/type check).  When [engine] is given, each
    stage runs under a span ([span.compile.frontend] / [.lower] / [.opt]
    / [.backend]), outcome counters are bumped, and a
    {!Engine.Event.Compile_finished} event carrying the outcome kind and
    the last stage reached is emitted.  The source is lexed exactly once
    (the parser and lexical coverage share the token array).
    When [faults] is given, the watchdog fuel barrier consults its
    [Compile_hang] site before compiling: a fired fault stands in for a
    compile that would stall its worker and is recorded as a [Crashed]
    hang (stable identity [<compiler>-watchdog-timeout]) with a
    [compile.watchdog_hang] counter bump, instead of wedging the
    scheduler. *)

val compile_tu :
  ?cov:Coverage.t -> ?engine:Engine.Ctx.t -> ?faults:Engine.Faults.t ->
  compiler -> options -> string -> outcome * Cparse.Ast.tu option
(** Like {!compile}, but also returns the parsed translation unit when
    the front-end parse succeeded (always [Some] when the outcome is
    [Compiled]).  Fuzz loops that pool compiled mutants use this to
    avoid re-parsing a source the compiler just parsed; the returned
    tree is exactly what [Parser.parse] of the same source yields. *)

type cache
(** A mutant dedup cache: memoizes compile outcomes.  Lookups go through
    a cheap 64-bit fingerprint of the mutant source (salted with the
    compiler and options), but every entry stores the exact
    (compiler, options, source) triple and probes compare all three —
    a fingerprint collision falls back to the exact key, so decisions
    are identical to a full-text-keyed cache.  The pipeline is
    deterministic in that triple, so byte-identical mutants — which the
    fragility model produces often — skip the whole compile. *)

val cache_create :
  ?capacity:int -> ?fingerprint:(string -> int) -> unit -> cache
(** The table is cleared wholesale when it reaches [capacity]
    (default 2048 entries).  [fingerprint] overrides the source hash —
    meant for tests forcing collisions (e.g. a constant function) to
    exercise the exact-key fallback.  Caches built with the default
    fingerprint survive [Marshal]-based checkpointing; a custom
    fingerprint is a closure and does not. *)

val cache_hits : cache -> int
val cache_misses : cache -> int

val cache_collisions : cache -> int
(** Misses and cross-option probes that landed in an occupied
    fingerprint bucket without an exact-triple match.  A nonzero count
    only costs a bucket walk; outcomes are unaffected. *)

val compile_cached :
  cache:cache -> ?cov:Coverage.t -> ?engine:Engine.Ctx.t ->
  ?faults:Engine.Faults.t -> compiler -> options -> string ->
  outcome * Cparse.Ast.tu option
(** {!compile_tu} through the cache.  On a hit the memoized outcome is
    returned with [None] for the tree, nothing is recorded into [cov]
    (the identical coverage was already produced by the first compile —
    any accumulator the caller merged it into subsumes it), and engine
    accounting is replayed exactly as for a real compile, plus a
    [compile.cached] counter bump.  The [Compile_hang] fault draw
    happens only on misses: a byte-identical mutant replays its
    memoized outcome, injected hang included. *)

type batch
(** A pinned (compiler, options, cache, plumbing) compile session.  Fuzz
    loops compile many mutants of one original under one configuration;
    a batch precomputes the per-configuration fingerprint salt and binds
    the cov/engine/faults plumbing once, so the per-mutant overhead is a
    single scan of the source. *)

val batch_create :
  cache:cache -> ?cov:Coverage.t -> ?engine:Engine.Ctx.t ->
  ?faults:Engine.Faults.t -> compiler -> options -> batch

val batch_compile : batch -> string -> outcome * Cparse.Ast.tu option
(** Exactly {!compile_cached} with the batch's pinned arguments: cache
    decisions, engine accounting, fault draws and outcomes are
    indistinguishable from the unbatched call. *)

(** One executed pipeline step, as recorded by {!compile_passes}. *)
type pass_step = {
  st_pass : string;
  st_index : int;  (** position in the executed pipeline *)
  st_changes : int;
  st_ir_before : string option;  (** per [options.dump_ir] *)
  st_ir_after : string option;
  st_diverged : bool option;
      (** with [verify]: does the IR's observable behaviour after this
          pass differ from the pre-opt IR's?  [None] when either run
          falls outside the interpreter's subset. *)
}

type pass_trace = {
  pt_steps : pass_step list;
  pt_reference : (int * bool) option;
      (** the pre-opt IR's observable behaviour (with [verify]) *)
  pt_first_divergent : string option;
      (** the first pass after which behaviour diverged — per-pass
          differential testing's culprit estimate *)
  pt_program : Ir.program;  (** the final (possibly miscompiled) IR *)
}

val compile_passes :
  ?verify:bool -> compiler -> options -> string ->
  (pass_trace, string) result
(** Run the pipeline step by step, recording each executed pass; with
    [verify] (default false) the IR is interpreted after every pass and
    compared against the pre-opt semantics.  Crash-free like
    {!compile_ir}: seeded ICEs must not mask the wrong-code observation
    channel. *)

val compile_ir : compiler -> options -> string -> (Ir.program, string) result
(** Produce the (possibly silently miscompiled) optimized IR — the hook
    the EMI-style wrong-code detector differences against -O0.
    Equivalent to [compile_passes] without observation. *)

val random_options : Cparse.Rng.t -> options
(** Sample a random command line, as the macro fuzzer does (§3.4). *)

val options_to_string : options -> string
(** Render as a GCC-style command line ("-O2 -fno-dce ..."). *)
