(* The latent-bug database of the simulated compilers.

   Each bug is keyed on a conjunction of program features (features.ml)
   plus a minimum optimization level, mirroring how the paper's
   real-world bugs required specific program shapes.  The marquee bugs
   reproduce the shapes of GCC #111820, GCC #111819, Clang #63762,
   Clang #69213 and the strlen-optimization crash from §5.2.

   Bug families are graded: the same family appears at increasing feature
   thresholds, so deeper program diversity keeps uncovering new unique
   crashes over a campaign (the growth curves of Fig. 9). *)

type compiler = Gcc | Clang

let compiler_to_string = function Gcc -> "GCC" | Clang -> "Clang"

type bug = {
  id : string;
  compiler : compiler;
  stage : Crash.stage;
  kind : Crash.kind;
  frames : string list;
  min_opt : int;
  pass : string option;
  (* optimizer-stage bugs live in a pass: the bug fires only when that
     pass executed, so -fno-<pass> masks it and culprit bisection can
     recover it.  The pass must appear in the spec at [min_opt], or the
     bug becomes unreachable at default options.  [None] = stage-wide. *)
  (* text predicate applies even to non-parsing inputs; ast predicate
     requires a successful parse *)
  pred : Features.text -> Features.ast option -> bool;
}

let tx_only f : Features.text -> Features.ast option -> bool =
 fun tx _ -> f tx

let ast_only f : Features.text -> Features.ast option -> bool =
 fun _ ast -> match ast with Some a -> f a | None -> false

let bug ?(min_opt = 0) ?pass ~compiler ~stage ~kind ~frames id pred =
  { id; compiler; stage; kind; frames; min_opt; pass; pred }

open Crash

(* ------------------------------------------------------------------ *)
(* Marquee bugs (paper case studies)                                   *)
(* ------------------------------------------------------------------ *)

let marquee =
  [
    (* GCC #111820: loop vectorizer hangs on a zero-initialised counter
       driven towards negative infinity with a scalar accumulation chain *)
    bug "gcc-111820" ~compiler:Gcc ~stage:Optimization ~kind:Hang ~pass:"loop-opt"
      ~frames:[ "vect_analyze_loop_form"; "vect_analyze_loop"; "try_vectorize_loop" ]
      ~min_opt:3
      (ast_only (fun a ->
           a.has_zero_init_decreasing_loop && a.has_scalar_accum_chain));
    (* GCC #111819: fold_offsetof assertion on __imag-style pointer
       arithmetic over a casted address *)
    bug "gcc-111819" ~compiler:Gcc ~stage:Front_end ~kind:Assertion_failure
      ~frames:[ "fold_offsetof"; "c_fully_fold_internal"; "c_parser_expression" ]
      (ast_only (fun a -> a.has_ptr_arith_cast_chain));
    (* GCC strlen-optimization crash (§5.2): sprintf of a const buffer to
       itself makes the strlen pass build an invalid range *)
    bug "gcc-strlen-range" ~compiler:Gcc ~stage:Optimization ~pass:"strlen-opt"
      ~kind:Assertion_failure
      ~frames:[ "verify_range"; "strlen_pass_execute"; "execute_one_pass" ]
      ~min_opt:2
      (ast_only (fun a -> a.has_sprintf_self && a.has_const_qual));
    (* Clang #63762: void function, labels, no returns: branch folding
       asserts when nothing follows the jump chain *)
    bug "clang-63762" ~compiler:Clang ~stage:Back_end ~kind:Assertion_failure
      ~frames:[ "verifyBranchTarget"; "BranchFolder::OptimizeBlock"; "runOnMachineFunction" ]
      (ast_only (fun a -> a.has_labels_no_return && a.n_calls >= 1));
    (* Clang #69213: compound literal cast to int accesses a non-existent
       AST node in the front-end *)
    bug "clang-69213" ~compiler:Clang ~stage:Front_end ~kind:Segfault
      ~frames:[ "InitListChecker::CheckSubElementType"; "Sema::ActOnCompoundLiteral" ]
      (ast_only (fun a -> a.has_struct_cast && a.has_compound_literal));
  ]

(* ------------------------------------------------------------------ *)
(* Graded bug families                                                 *)
(* ------------------------------------------------------------------ *)

(* Text-level front-end bugs: reachable by byte-level fuzzers on inputs
   that need not parse. *)
let text_family ~compiler ~prefix ~frames ~kind grades get =
  List.mapi
    (fun i threshold ->
      bug
        (Fmt.str "%s-%d" prefix (i + 1))
        ~compiler ~stage:Front_end ~kind
        ~frames:(List.map (fun f -> Fmt.str "%s@%d" f (i + 1)) frames)
        (tx_only (fun tx -> get tx >= threshold)))
    grades

let ast_family ~compiler ~stage ~prefix ~frames ~kind ?(min_opt = 0) grades get =
  List.mapi
    (fun i threshold ->
      bug
        (Fmt.str "%s-%d" prefix (i + 1))
        ~compiler ~stage ~kind ~min_opt
        ~frames:(List.map (fun f -> Fmt.str "%s@%d" f (i + 1)) frames)
        (ast_only (fun a -> get a >= threshold)))
    grades

let bool_bug ~compiler ~stage ~kind ~frames ?(min_opt = 0) ?pass id pred =
  bug id ~compiler ~stage ~kind ~frames ~min_opt ?pass (ast_only pred)

let gcc_front_text =
  text_family ~compiler:Gcc ~prefix:"gcc-lex-ident" ~kind:Assertion_failure
    ~frames:[ "lex_identifier"; "c_lex_with_flags" ]
    [ 48; 100; 200 ]
    (fun tx -> tx.tx_max_ident_len)
  @ text_family ~compiler:Gcc ~prefix:"gcc-parse-depth" ~kind:Segfault
      ~frames:[ "c_parser_postfix_expression"; "c_parser_cast_expression" ]
      [ 40; 80 ]
      (fun tx -> tx.tx_paren_depth)
  @ text_family ~compiler:Gcc ~prefix:"gcc-lex-number" ~kind:Assertion_failure
      ~frames:[ "interpret_integer"; "cpp_classify_number" ]
      [ 28; 60 ]
      (fun tx -> tx.tx_digit_run)
  @ [
      bug "gcc-lex-ctrl" ~compiler:Gcc ~stage:Front_end ~kind:Segfault
        ~frames:[ "skip_whitespace"; "_cpp_lex_direct" ]
        (tx_only (fun tx -> tx.tx_has_control_chars && tx.tx_quote_imbalance));
      bug "gcc-cpp-hash" ~compiler:Gcc ~stage:Front_end ~kind:Assertion_failure
        ~frames:[ "do_pragma"; "cpp_handle_directive" ]
        (tx_only (fun tx -> tx.tx_hash_count >= 9 && tx.tx_len > 400));
    ]

let clang_front_text =
  text_family ~compiler:Clang ~prefix:"clang-lex-ident" ~kind:Assertion_failure
    ~frames:[ "Lexer::LexIdentifier"; "Preprocessor::Lex" ]
    [ 64; 150 ]
    (fun tx -> tx.tx_max_ident_len)
  @ text_family ~compiler:Clang ~prefix:"clang-parse-depth" ~kind:Segfault
      ~frames:[ "Parser::ParseParenExpression"; "Parser::ParseCastExpression" ]
      [ 32; 64; 128 ]
      (fun tx -> tx.tx_paren_depth)
  @ [
      bug "clang-brace-depth" ~compiler:Clang ~stage:Front_end
        ~kind:Assertion_failure
        ~frames:[ "Parser::ParseCompoundStatement"; "BalancedDelimiterTracker::diagnoseOverflow" ]
        (tx_only (fun tx -> tx.tx_brace_depth >= 26));
      bug "clang-lex-high" ~compiler:Clang ~stage:Front_end ~kind:Segfault
        ~frames:[ "Lexer::LexTokenInternal"; "Lexer::LexUnicode" ]
        (tx_only (fun tx -> tx.tx_has_high_bytes && tx.tx_has_control_chars));
    ]

let gcc_front_ast =
  [
    bool_bug "gcc-call-args" ~compiler:Gcc ~stage:Front_end
      ~kind:Assertion_failure
      ~frames:[ "convert_arguments"; "build_function_call_vec" ]
      (fun a -> a.max_call_args >= 5);
    bool_bug "gcc-comma-chain" ~compiler:Gcc ~stage:Front_end
      ~kind:Assertion_failure
      ~frames:[ "c_process_expr_stmt"; "c_finish_expr_stmt" ]
      (fun a -> a.n_commas >= 2);
    bool_bug "gcc-uninit-const" ~compiler:Gcc ~stage:Front_end ~kind:Segfault
      ~frames:[ "warn_uninit_var"; "c_genericize" ]
      (fun a -> a.has_uninit_use && a.has_const_qual);
  ]

let clang_front_ast =
  [
    bool_bug "clang-cast-chain" ~compiler:Clang ~stage:Front_end
      ~kind:Assertion_failure
      ~frames:[ "Sema::CheckCastTypes"; "Sema::BuildCStyleCastExpr" ]
      (fun a -> a.max_cast_chain >= 4);
    bool_bug "clang-const-write" ~compiler:Clang ~stage:Front_end
      ~kind:Assertion_failure
      ~frames:[ "Sema::CheckForModifiableLvalue"; "Sema::CreateBuiltinBinOp" ]
      (fun a -> a.has_const_write_warning);
  ]

let gcc_irgen =
  ast_family ~compiler:Gcc ~stage:Ir_gen ~prefix:"gcc-gimple-switch"
    ~kind:Assertion_failure
    ~frames:[ "gimplify_switch_expr"; "gimplify_statement" ]
    [ 6; 8; 11 ]
    (fun a -> if a.has_fallthrough then a.max_switch_cases else 0)
  @ [
      bool_bug "gcc-cfg-goto" ~compiler:Gcc ~stage:Ir_gen
        ~kind:Assertion_failure
        ~frames:[ "make_goto_expr_edges"; "build_gimple_cfg" ]
        (fun a -> a.n_gotos >= 2 && a.n_labels >= 2);
      bool_bug "gcc-ptr-lower" ~compiler:Gcc ~stage:Ir_gen ~kind:Segfault
        ~frames:[ "get_memory_rtx"; "expand_builtin_memop" ]
        (fun a -> a.n_ptr_ops >= 4 && a.has_array_param);
      bool_bug "gcc-va-lower" ~compiler:Gcc ~stage:Ir_gen
        ~kind:Assertion_failure
        ~frames:[ "expand_call"; "emit_library_call_value" ]
        (fun a -> a.has_variadic_call && a.max_call_args >= 5);
    ]

let clang_irgen =
  ast_family ~compiler:Clang ~stage:Ir_gen ~prefix:"clang-cgf-cond"
    ~kind:Assertion_failure
    ~frames:[ "CodeGenFunction::EmitBranchOnBoolExpr"; "CodeGenFunction::EmitIfStmt" ]
    [ 2; 3 ]
    (fun a -> if a.n_conds >= 3 then a.max_cast_chain else 0)
  @ [
      bool_bug "clang-cgf-complit" ~compiler:Clang ~stage:Ir_gen
        ~kind:Assertion_failure
        ~frames:[ "CodeGenFunction::EmitCompoundLiteralLValue"; "EmitLValue" ]
        (fun a -> a.has_compound_literal && a.n_conds >= 1);
      bool_bug "clang-cgf-goto" ~compiler:Clang ~stage:Ir_gen ~kind:Segfault
        ~frames:[ "CodeGenFunction::EmitGotoStmt"; "EmitStmt" ]
        (fun a -> a.n_gotos >= 1 && a.n_loops >= 2);
      bool_bug "clang-incdec-mix" ~compiler:Clang ~stage:Ir_gen
        ~kind:Assertion_failure
        ~frames:[ "ScalarExprEmitter::EmitScalarPrePostIncDec"; "VisitUnaryOperator" ]
        (fun a -> a.n_incdec >= 4 && a.has_decreasing_loop && a.has_fallthrough);
    ]

let gcc_opt =
  [
    bool_bug "gcc-ivopts-dec" ~compiler:Gcc ~stage:Optimization
      ~kind:Assertion_failure ~min_opt:2
      ~frames:[ "rewrite_use_nonlinear_expr"; "tree_ssa_iv_optimize" ]
      (fun a ->
           (* fires only when the analysed trip count lands on the buggy
              parity, so qualifying programs crash rarely *)
           a.has_decreasing_loop && a.n_loops >= 5 && a.max_loop_depth >= 3
           && ((7 * a.n_exprs) + a.n_stmts) mod 17 = 5);
    bool_bug "gcc-shift-vrp" ~compiler:Gcc ~stage:Optimization ~pass:"constfold"
      ~kind:Assertion_failure ~min_opt:2
      ~frames:[ "irange::set"; "range_op_handler::fold_range"; "vrp_pass" ]
      (fun a -> a.has_shift_overflow);
    bool_bug "gcc-div0-fold" ~compiler:Gcc ~stage:Optimization ~pass:"constfold"
      ~kind:Assertion_failure ~min_opt:1
      ~frames:[ "const_binop"; "fold_binary_loc" ]
      (fun a -> a.has_div_by_literal_zero);
    bool_bug "gcc-reassoc" ~compiler:Gcc ~stage:Optimization ~pass:"constfold"
      ~kind:Assertion_failure ~min_opt:2
      ~frames:[ "rewrite_expr_tree"; "reassociate_bb" ]
      (fun a -> a.has_scalar_accum_chain && a.has_volatile_qual);
    bool_bug "gcc-loop-interchange" ~compiler:Gcc ~stage:Optimization ~pass:"loop-opt"
      ~kind:Segfault ~min_opt:3
      ~frames:[ "tree_loop_interchange"; "pass_linterchange::execute" ]
      (fun a -> a.max_loop_depth >= 4 && a.n_loops >= 4);
    bool_bug "gcc-cunroll" ~compiler:Gcc ~stage:Optimization ~pass:"loop-opt"
      ~kind:Assertion_failure ~min_opt:3
      ~frames:[ "try_unroll_loop_completely"; "canonicalize_loop_induction_variables" ]
      (fun a -> a.has_decreasing_loop && a.n_loops >= 2);
    bool_bug "gcc-dse-volatile" ~compiler:Gcc ~stage:Optimization ~pass:"dce"
      ~kind:Assertion_failure ~min_opt:2
      ~frames:[ "dse_classify_store"; "pass_dse::execute" ]
      (fun a -> a.has_volatile_qual && a.n_compound_assigns >= 2);
  ]

let clang_opt =
  [
    bool_bug "clang-lsr-dec" ~compiler:Clang ~stage:Optimization
      ~kind:Assertion_failure ~min_opt:2
      ~frames:[ "LSRInstance::GenerateAllReuseFormulae"; "LoopStrengthReduce" ]
      (fun a ->
           a.has_decreasing_loop && a.max_loop_depth >= 4 && a.n_loops >= 4
           && ((5 * a.n_exprs) + a.n_stmts) mod 13 = 3);
    bool_bug "clang-instcombine-shift" ~compiler:Clang ~stage:Optimization ~pass:"constfold"
      ~kind:Assertion_failure ~min_opt:2
      ~frames:[ "InstCombinerImpl::visitShl"; "InstCombinePass::run" ]
      (fun a -> a.has_shift_overflow);
    bool_bug "clang-sccp-div0" ~compiler:Clang ~stage:Optimization ~pass:"constfold"
      ~kind:Assertion_failure ~min_opt:1
      ~frames:[ "ConstantFoldBinaryInstruction"; "SCCPSolver::visitBinaryOperator" ]
      (fun a -> a.has_div_by_literal_zero && a.n_switches >= 1);
    bool_bug "clang-loopdel-hang" ~compiler:Clang ~stage:Optimization ~pass:"dce"
      ~kind:Hang ~min_opt:2
      ~frames:[ "LoopDeletionPass::run"; "FunctionPassManager::run" ]
      (fun a -> a.has_empty_loop_body && a.has_decreasing_loop);
    bool_bug "clang-inline-rec" ~compiler:Clang ~stage:Optimization ~pass:"inline"
      ~kind:Segfault ~min_opt:2
      ~frames:[ "InlineFunction"; "InlinerPass::run" ]
      (fun a -> a.has_recursion && a.n_calls >= 2);
    bool_bug "clang-gvn-casts" ~compiler:Clang ~stage:Optimization ~pass:"constfold"
      ~kind:Assertion_failure ~min_opt:2
      ~frames:[ "GVNPass::processInstruction"; "GVNPass::runImpl" ]
      (fun a -> a.n_casts >= 4 && a.max_cast_chain >= 3);
    bool_bug "clang-licm-volatile" ~compiler:Clang ~stage:Optimization
      ~kind:Assertion_failure ~min_opt:2
      ~frames:[ "LICMPass::hoistRegion"; "LoopPassManager::run" ]
      (fun a -> a.has_volatile_qual && a.n_loops >= 2 && a.max_loop_depth >= 2);
  ]

let gcc_backend =
  [
    bool_bug "gcc-jumptable" ~compiler:Gcc ~stage:Back_end
      ~kind:Assertion_failure
      ~frames:[ "emit_case_dispatch_table"; "expand_case" ]
      (fun a -> a.max_switch_cases >= 8);
    bool_bug "gcc-reload-spill" ~compiler:Gcc ~stage:Back_end ~kind:Segfault
      ~frames:[ "lra_assign"; "lra" ]
      (fun a -> a.n_exprs >= 2500 && a.n_gotos >= 1);
    bool_bug "gcc-branch-relax" ~compiler:Gcc ~stage:Back_end
      ~kind:Assertion_failure
      ~frames:[ "shorten_branches"; "final_start_function" ]
      (fun a -> a.has_labels_no_return && a.n_switches >= 1);
    bool_bug "gcc-cvt-emit" ~compiler:Gcc ~stage:Back_end
      ~kind:Assertion_failure ~min_opt:1
      ~frames:[ "gen_fix_truncdfsi2"; "expand_fix" ]
      (fun a -> a.max_cast_chain >= 3 && a.n_loops >= 1 && a.has_const_qual);
  ]

let clang_backend =
  [
    bool_bug "clang-isel-switch" ~compiler:Clang ~stage:Back_end
      ~kind:Assertion_failure
      ~frames:[ "SelectionDAGBuilder::visitSwitch"; "SelectionDAGISel::runOnMachineFunction" ]
      (fun a -> a.max_switch_cases >= 10);
    bool_bug "clang-ra-greedy" ~compiler:Clang ~stage:Back_end ~kind:Segfault
      ~frames:[ "RAGreedy::selectOrSplit"; "RegAllocBase::allocatePhysRegs" ]
      (fun a -> a.n_exprs >= 3000 && a.max_cast_chain >= 2);
    bool_bug "clang-dag-fptoint" ~compiler:Clang ~stage:Back_end
      ~kind:Assertion_failure ~min_opt:1
      ~frames:[ "DAGTypeLegalizer::PromoteIntRes_FP_TO_XINT"; "LegalizeTypes" ]
      (fun a -> a.max_cast_chain >= 3 && a.n_incdec >= 2 && a.has_volatile_qual);
  ]

let all_bugs : bug list =
  marquee @ gcc_front_text @ clang_front_text @ gcc_front_ast @ clang_front_ast
  @ gcc_irgen @ clang_irgen @ gcc_opt @ clang_opt @ gcc_backend @ clang_backend

let bugs_for compiler =
  List.filter (fun b -> b.compiler = compiler) all_bugs

(* Check the bug database at one pipeline stage; raises on the first
   triggered bug (deterministic order).  [executed] is the pass
   sequence the optimizer actually ran — pass-homed bugs fire only when
   their pass executed, so -fno-<pass> masks them. *)
let check ~compiler ~stage ~opt_level ?executed ~(tx : Features.text)
    ~(ast : Features.ast option) () : unit =
  let pass_ran (b : bug) =
    match b.pass with
    | None -> true
    | Some p -> (
      match executed with
      | Some names -> List.exists (String.equal p) names
      | None -> false)
  in
  List.iter
    (fun (b : bug) ->
      if b.stage = stage && opt_level >= b.min_opt && pass_ran b
         && b.pred tx ast
      then
        raise
          (Crash.Compiler_crash
             { bug_id = b.id; stage = b.stage; kind = b.kind; frames = b.frames }))
    (bugs_for compiler)

(* ------------------------------------------------------------------ *)
(* Silent wrong-code bugs (miscompilations)                             *)
(* ------------------------------------------------------------------ *)

(* Beyond the paper's crash-oriented campaign: a small set of latent
   miscompilations.  When one fires, the optimizer silently produces
   wrong code instead of crashing; only differential (EMI-style) testing
   can expose it -- the extension implemented in Fuzzing.Wrongcode. *)

type miscompile = {
  mc_id : string;
  mc_compiler : compiler;
  mc_min_opt : int;
  mc_culprit : string;
      (* the pass whose execution corrupts the IR; bisection ground truth *)
  mc_requires_absent : string list;
      (* passes whose presence in the pipeline masks the bug *)
  mc_pred : Features.ast -> bool;
}

let miscompiles : miscompile list =
  [
    {
      mc_id = "gcc-wrongcode-reassoc";
      mc_compiler = Gcc;
      mc_min_opt = 2;
      mc_culprit = "constfold";
      mc_requires_absent = [];
      mc_pred =
        (fun a ->
          a.Features.has_scalar_accum_chain && a.Features.n_casts >= 2
          && a.Features.n_loops >= 2);
    };
    {
      mc_id = "gcc-wrongcode-narrowing";
      mc_compiler = Gcc;
      mc_min_opt = 3;
      mc_culprit = "loop-opt";
      mc_requires_absent = [];
      mc_pred =
        (fun a ->
          a.Features.max_cast_chain >= 2 && a.Features.has_decreasing_loop);
    };
    {
      mc_id = "clang-wrongcode-instsimplify";
      mc_compiler = Clang;
      mc_min_opt = 2;
      mc_culprit = "dce";
      mc_requires_absent = [];
      mc_pred =
        (fun a ->
          a.Features.n_commas >= 1 && a.Features.n_conds >= 2
          && a.Features.n_switches >= 1);
    };
    (* Pass-ordering surface: the strlen rewrite miscompiles when the
       folder hasn't canonicalized its operands first — only reachable
       under -fno-constfold, i.e. by pass-matrix exploration. *)
    {
      mc_id = "gcc-wrongcode-strlen-nofold";
      mc_compiler = Gcc;
      mc_min_opt = 2;
      mc_culprit = "strlen-opt";
      mc_requires_absent = [ "constfold" ];
      mc_pred = (fun a -> a.Features.has_sprintf_self);
    };
    {
      mc_id = "clang-wrongcode-jumpthread";
      mc_compiler = Clang;
      mc_min_opt = 1;
      mc_culprit = "simplify-cfg";
      mc_requires_absent = [ "dce" ];
      mc_pred = (fun a -> a.Features.n_gotos >= 1 && a.Features.n_labels >= 1);
    };
  ]

let check_miscompile ~compiler ~opt_level ~(pipeline : string list)
    ~(ast : Features.ast) : miscompile option =
  List.find_opt
    (fun mc ->
      mc.mc_compiler = compiler && opt_level >= mc.mc_min_opt
      && List.mem mc.mc_culprit pipeline
      && not (List.exists (fun p -> List.mem p pipeline) mc.mc_requires_absent)
      && mc.mc_pred ast)
    miscompiles

(* ------------------------------------------------------------------ *)
(* Pass-ordering ICEs                                                  *)
(* ------------------------------------------------------------------ *)

(* Crashes keyed on the *executed pass sequence* rather than the -O
   level alone: they only fire under specific pass orders or disable
   sets, so campaigns exploring an -O/pass matrix keep finding fresh
   unique crashes after the level-gated surface is exhausted. *)

type pass_bug = {
  pb_id : string;
  pb_compiler : compiler;
  pb_kind : Crash.kind;
  pb_frames : string list;
  pb_pred : Features.ast -> bool;
  pb_fires : executed:string list -> bool;
}

(* [target] ran with no prior [prereq] in the executed sequence. *)
let ran_without_prior ~executed target prereq =
  let rec go seen_prereq = function
    | [] -> false
    | p :: _ when String.equal p target -> not seen_prereq
    | p :: rest -> go (seen_prereq || String.equal p prereq) rest
  in
  go false executed

let count_runs ~executed name =
  List.length (List.filter (String.equal name) executed)

let pass_bugs : pass_bug list =
  [
    {
      (* DCE trips over unfolded degenerate branches when no constant
         folding ran before it (-O1+ -fno-constfold). *)
      pb_id = "gcc-dce-unfolded";
      pb_compiler = Gcc;
      pb_kind = Assertion_failure;
      pb_frames =
        [ "eliminate_unnecessary_stmts"; "perform_tree_ssa_dce"; "execute_one_pass" ];
      pb_pred = (fun a -> a.Features.n_conds >= 2);
      pb_fires = (fun ~executed -> ran_without_prior ~executed "dce" "constfold");
    };
    {
      (* The second simplify-cfg run of the -O3 spec re-threads jumps
         it already threaded and corrupts deeply nested loop CFGs. *)
      pb_id = "gcc-cfg-rethread";
      pb_compiler = Gcc;
      pb_kind = Segfault;
      pb_frames = [ "thread_through_loop_header"; "jump_thread_path_registry::update_cfg" ];
      pb_pred = (fun a -> a.Features.max_loop_depth >= 3 && a.Features.n_loops >= 3);
      pb_fires = (fun ~executed -> count_runs ~executed "simplify-cfg" >= 2);
    };
    {
      (* The strlen rewrite asserts on call forms the inliner would have
         collapsed first (-O2 -fno-inline). *)
      pb_id = "clang-strlen-before-inline";
      pb_compiler = Clang;
      pb_kind = Assertion_failure;
      pb_frames = [ "llvm::annotateDereferenceableBytes"; "SimplifyLibCalls" ];
      pb_pred = (fun a -> a.Features.n_calls >= 2);
      pb_fires =
        (fun ~executed -> ran_without_prior ~executed "strlen-opt" "inline");
    };
    {
      (* Trip-count analysis spins on irreducible regions that
         simplify-cfg normally cleans up (-O3 -fno-simplify-cfg). *)
      pb_id = "clang-loopopt-irreducible";
      pb_compiler = Clang;
      pb_kind = Hang;
      pb_frames = [ "llvm::ScalarEvolution::getBackedgeTakenInfo"; "LoopUnrollPass" ];
      pb_pred = (fun a -> a.Features.n_loops >= 2);
      pb_fires =
        (fun ~executed ->
          List.mem "loop-opt" executed && not (List.mem "simplify-cfg" executed));
    };
  ]

let check_passes ~compiler ~(executed : string list) ~(ast : Features.ast) :
    unit =
  List.iter
    (fun pb ->
      if pb.pb_compiler = compiler && pb.pb_fires ~executed && pb.pb_pred ast
      then
        raise
          (Crash.Compiler_crash
             {
               bug_id = pb.pb_id;
               stage = Crash.Optimization;
               kind = pb.pb_kind;
               frames = pb.pb_frames;
             }))
    pass_bugs

(* ------------------------------------------------------------------ *)
(* Bug-report triage model (Table 6 lifecycle)                         *)
(* ------------------------------------------------------------------ *)

type triage = {
  t_confirmed : bool;
  t_fixed : bool;
  t_duplicate : bool;
  t_priority : int; (* 1..5, GCC style; 0 when not assigned *)
}

(* Deterministic per-bug triage calibrated to Table 6: nearly every report
   is confirmed, ~27 % eventually fixed, ~10 % duplicates. *)
let triage_of (bug_id : string) : triage =
  let h = Hashtbl.hash bug_id in
  let roll n = h / n mod 100 in
  let confirmed = roll 1 < 98 in
  let fixed = confirmed && roll 7 < 27 in
  let duplicate = roll 13 < 10 in
  let priority = if confirmed then 1 + (h / 31 mod 5) else 0 in
  { t_confirmed = confirmed; t_fixed = fixed; t_duplicate = duplicate; t_priority = priority }
