(** Back-end of the simulated compiler: instruction selection to a small
    RISC-flavoured target, linear-scan register allocation over
    {!phys_regs} physical registers, and assembly emission.  Selection
    patterns and allocation decisions report branch coverage.

    Selection and emission are fused into one buffer-writing pass over
    the IR (no per-instruction records, no per-operand strings); the
    working tables and the output buffer come from the per-domain
    {!Scratch} arena, so a steady-state compile allocates little beyond
    the returned assembly string. *)

val phys_regs : int
(** Number of physical registers (8). *)

val regalloc : ?cov:Coverage.t -> Ir.func -> (int * int) list * int
(** Linear-scan allocation over live intervals.  Returns the
    [(virtual, physical)] assignment (-1 = spilled; untouched vregs are
    absent) and the spill count. *)

val emit_function : ?cov:Coverage.t -> Ir.func -> string * int
(** Assembly text and spill count for one function. *)

val emit_program : ?cov:Coverage.t -> Ir.program -> string * int
(** Assembly for the whole program (data directives + functions). *)
