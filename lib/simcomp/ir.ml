(* Three-address intermediate representation for the simulated compiler.

   Deliberately GCC-GIMPLE-flavoured: named memory slots for variables,
   virtual registers for temporaries, basic blocks with explicit
   terminators.  The optimizer passes (opt_*.ml) and back-end (backend.ml)
   operate on this form. *)

type reg = int
type label = int

type operand =
  | Reg of reg
  | Imm of int64
  | Fimm of float
  | Sym of string          (* address of a named slot / function / string *)

(* Memory addressing. *)
type address =
  | Avar of string                     (* named scalar slot *)
  | Aindex of string * operand * int   (* base slot, index, element size *)
  | Areg of operand                    (* computed pointer *)

type instr =
  | Ibin of Cparse.Ast.binop * reg * operand * operand
  | Iun of Cparse.Ast.unop * reg * operand
  | Imov of reg * operand
  | Icast of reg * Cparse.Ast.ty * operand
  | Iload of reg * address
  | Istore of address * operand
  | Iaddr of reg * address             (* address-of *)
  | Icall of reg option * string * operand list

type terminator =
  | Tret of operand option
  | Tjmp of label
  | Tbr of operand * label * label     (* cond, then, else *)
  | Tswitch of operand * (int64 * label) list * label
  | Tunreachable

type block = {
  b_label : label;
  mutable b_instrs : instr list;
  mutable b_term : terminator;
}

type func = {
  fn_name : string;
  fn_params : string list;
  fn_ret_void : bool;
  mutable fn_blocks : block list;      (* entry first *)
  mutable fn_nregs : int;
}

type global_slot = {
  g_name : string;
  g_size : int;                        (* element count: 1 for scalars *)
  g_init : int64 option;
  g_finit : float option;             (* initializer for float slots *)
  g_float : bool;
}

type program = {
  p_funcs : func list;
  p_globals : global_slot list;
}

(* ------------------------------------------------------------------ *)
(* Utilities                                                           *)
(* ------------------------------------------------------------------ *)

let block_of func label = List.find_opt (fun b -> b.b_label = label) func.fn_blocks

let successors term =
  match term with
  | Tret _ | Tunreachable -> []
  | Tjmp l -> [ l ]
  | Tbr (_, a, b) -> [ a; b ]
  | Tswitch (_, cases, d) -> d :: List.map snd cases

let instr_count func =
  List.fold_left (fun acc b -> acc + List.length b.b_instrs + 1) 0 func.fn_blocks

let program_size p = List.fold_left (fun acc f -> acc + instr_count f) 0 p.p_funcs

(* Destination register of an instruction, if any. *)
let dest = function
  | Ibin (_, r, _, _) | Iun (_, r, _) | Imov (r, _) | Icast (r, _, _)
  | Iload (r, _) | Iaddr (r, _) -> Some r
  | Icall (r, _, _) -> r
  | Istore _ -> None

(* Register operands read by an instruction. *)
let uses instr =
  let of_op = function Reg r -> [ r ] | Imm _ | Fimm _ | Sym _ -> [] in
  let of_addr = function
    | Avar _ -> []
    | Aindex (_, op, _) -> of_op op
    | Areg op -> of_op op
  in
  match instr with
  | Ibin (_, _, a, b) -> of_op a @ of_op b
  | Iun (_, _, a) | Imov (_, a) | Icast (_, _, a) -> of_op a
  | Iload (_, addr) -> of_addr addr
  | Iaddr (_, addr) -> of_addr addr
  | Istore (addr, v) -> of_addr addr @ of_op v
  | Icall (_, _, args) -> List.concat_map of_op args

let uses_of_term = function
  | Tret (Some op) | Tbr (op, _, _) | Tswitch (op, _, _) -> (
    match op with Reg r -> [ r ] | _ -> [])
  | Tret None | Tjmp _ | Tunreachable -> []

(* Allocation-free visit of an instruction's register operands, in
   exactly [dest]-then-[uses] order (liveness scans run this per
   instruction; the list-building spellings above cost a cons per
   operand). *)
let iter_op f = function Reg r -> f r | Imm _ | Fimm _ | Sym _ -> ()

let iter_addr f = function
  | Avar _ -> ()
  | Aindex (_, op, _) | Areg op -> iter_op f op

let iter_regs f = function
  | Ibin (_, r, a, b) ->
    f r;
    iter_op f a;
    iter_op f b
  | Iun (_, r, a) | Imov (r, a) | Icast (r, _, a) ->
    f r;
    iter_op f a
  | Iload (r, addr) | Iaddr (r, addr) ->
    f r;
    iter_addr f addr
  | Istore (addr, v) ->
    iter_addr f addr;
    iter_op f v
  | Icall (r, _, args) ->
    (match r with Some r -> f r | None -> ());
    List.iter (iter_op f) args

let iter_term_regs f = function
  | Tret (Some op) | Tbr (op, _, _) | Tswitch (op, _, _) -> iter_op f op
  | Tret None | Tjmp _ | Tunreachable -> ()

let iter_uses f = function
  | Ibin (_, _, a, b) ->
    iter_op f a;
    iter_op f b
  | Iun (_, _, a) | Imov (_, a) | Icast (_, _, a) -> iter_op f a
  | Iload (_, addr) | Iaddr (_, addr) -> iter_addr f addr
  | Istore (addr, v) ->
    iter_addr f addr;
    iter_op f v
  | Icall (_, _, args) -> List.iter (iter_op f) args

(* [dest] without the option box: -1 when the instruction has none. *)
let dest_reg = function
  | Ibin (_, r, _, _) | Iun (_, r, _) | Imov (r, _) | Icast (r, _, _)
  | Iload (r, _) | Iaddr (r, _) -> r
  | Icall (Some r, _, _) -> r
  | Icall (None, _, _) | Istore _ -> -1

(* Side-effect-free instructions are candidates for dead-code elimination. *)
let is_pure_instr = function
  | Ibin _ | Iun _ | Imov _ | Icast _ | Iload _ | Iaddr _ -> true
  | Istore _ | Icall _ -> false

(* ------------------------------------------------------------------ *)
(* Printing (for -emit-ir debugging and tests)                         *)
(* ------------------------------------------------------------------ *)

let operand_to_string = function
  | Reg r -> Fmt.str "%%r%d" r
  | Imm v -> Int64.to_string v
  | Fimm f -> Fmt.str "%g" f
  | Sym s -> "@" ^ s

let address_to_string = function
  | Avar s -> "[" ^ s ^ "]"
  | Aindex (b, i, sz) -> Fmt.str "[%s + %s*%d]" b (operand_to_string i) sz
  | Areg op -> Fmt.str "[%s]" (operand_to_string op)

let instr_to_string = function
  | Ibin (op, r, a, b) ->
    Fmt.str "%%r%d = %s %s, %s" r
      (Cparse.Pretty.binop_string op)
      (operand_to_string a) (operand_to_string b)
  | Iun (op, r, a) ->
    Fmt.str "%%r%d = %s %s" r (Cparse.Pretty.unop_string op) (operand_to_string a)
  | Imov (r, a) -> Fmt.str "%%r%d = %s" r (operand_to_string a)
  | Icast (r, ty, a) ->
    Fmt.str "%%r%d = cast<%s> %s" r (Cparse.Pretty.ty_string ty)
      (operand_to_string a)
  | Iload (r, addr) -> Fmt.str "%%r%d = load %s" r (address_to_string addr)
  | Istore (addr, v) -> Fmt.str "store %s, %s" (address_to_string addr) (operand_to_string v)
  | Iaddr (r, addr) -> Fmt.str "%%r%d = addr %s" r (address_to_string addr)
  | Icall (r, f, args) ->
    Fmt.str "%scall %s(%s)"
      (match r with Some r -> Fmt.str "%%r%d = " r | None -> "")
      f
      (String.concat ", " (List.map operand_to_string args))

let term_to_string = function
  | Tret None -> "ret"
  | Tret (Some op) -> "ret " ^ operand_to_string op
  | Tjmp l -> Fmt.str "jmp L%d" l
  | Tbr (c, a, b) -> Fmt.str "br %s, L%d, L%d" (operand_to_string c) a b
  | Tswitch (op, cases, d) ->
    Fmt.str "switch %s [%s] default L%d" (operand_to_string op)
      (String.concat "; " (List.map (fun (v, l) -> Fmt.str "%Ld->L%d" v l) cases))
      d
  | Tunreachable -> "unreachable"

let func_to_string f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Fmt.str "func %s(%s):\n" f.fn_name (String.concat ", " f.fn_params));
  List.iter
    (fun b ->
      Buffer.add_string buf (Fmt.str "L%d:\n" b.b_label);
      List.iter
        (fun i -> Buffer.add_string buf ("  " ^ instr_to_string i ^ "\n"))
        b.b_instrs;
      Buffer.add_string buf ("  " ^ term_to_string b.b_term ^ "\n"))
    f.fn_blocks;
  Buffer.contents buf

let program_to_string p =
  String.concat "\n" (List.map func_to_string p.p_funcs)
