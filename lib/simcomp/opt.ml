(* The optimizer of the simulated compiler: a registered pass pipeline.

   Every pass registers a name, a default placement (the lowest -O level
   that schedules it), and a [run] that mutates the IR in place and
   returns a change count.  Levels are named pipeline specs — ordered
   pass-name lists resolved against the registry, GCC-passes.def style —
   so drivers can introspect the pipeline, disable passes, override the
   order outright ([pass_list]), and observe each pass as it executes
   (per-pass IR dumps, differential testing, culprit bisection).

   Default specs:
     -O1: constfold, simplify-cfg, dce
     -O2: + inline, strlen-opt, a second constfold
     -O3: + loop-opt (unrolling; the "vectorizer" of the GCC hang bug)

   Passes report coverage per decision, so the optimizer's reachable
   behaviour grows with input diversity. *)

open Ir

type pass = {
  pass_name : string;
  pass_since : int; (* default placement: lowest -O level that schedules it *)
  run : ?cov:Coverage.t -> program -> int; (* returns number of changes *)
}

let cov_event cov site a b =
  match cov with
  | Some cov -> Coverage.branch3 cov site a b
  | None -> ()

(* [List.map] that preserves physical identity when [f] changes nothing:
   passes run over every block of every compile, and most visits change
   no instruction, so rebuilding structurally identical lists was pure
   allocation.  Recursion depth is the block size (bounded by function
   length; fine for generated programs). *)
let rec map_same f = function
  | [] -> []
  | x :: tl as l ->
    let x' = f x in
    let tl' = map_same f tl in
    if x' == x && tl' == tl then l else x' :: tl'

(* [List.filter] with the same identity-preserving contract. *)
let rec filter_same pred = function
  | [] -> []
  | x :: tl as l ->
    let tl' = filter_same pred tl in
    if pred x then if tl' == tl then l else x :: tl' else tl'

(* ------------------------------------------------------------------ *)
(* Constant folding + copy propagation (per block)                     *)
(* ------------------------------------------------------------------ *)

let eval_binop op (a : int64) (b : int64) : int64 option =
  let open Int64 in
  let bool_ x = if x then 1L else 0L in
  match (op : Cparse.Ast.binop) with
  | Add -> Some (add a b)
  | Sub -> Some (sub a b)
  | Mul -> Some (mul a b)
  | Div -> if equal b 0L then None else Some (div a b)
  | Mod -> if equal b 0L then None else Some (rem a b)
  | Shl ->
    let s = to_int b in
    if s < 0 || s > 63 then None else Some (shift_left a s)
  | Shr ->
    let s = to_int b in
    if s < 0 || s > 63 then None else Some (shift_right a s)
  | Lt -> Some (bool_ (compare a b < 0))
  | Gt -> Some (bool_ (compare a b > 0))
  | Le -> Some (bool_ (compare a b <= 0))
  | Ge -> Some (bool_ (compare a b >= 0))
  | Eq -> Some (bool_ (equal a b))
  | Ne -> Some (bool_ (not (equal a b)))
  | Band -> Some (logand a b)
  | Bxor -> Some (logxor a b)
  | Bor -> Some (logor a b)
  | Land -> Some (bool_ ((not (equal a 0L)) && not (equal b 0L)))
  | Lor -> Some (bool_ ((not (equal a 0L)) || not (equal b 0L)))

let eval_unop op (a : int64) : int64 =
  match (op : Cparse.Ast.unop) with
  | Neg -> Int64.neg a
  | Uplus -> a
  | Bitnot -> Int64.lognot a
  | Lognot -> if Int64.equal a 0L then 1L else 0L

let const_fold_pass =
  let run ?cov (p : program) =
    let changes = ref 0 in
    (* the per-block constant table comes from the arena: cleared per
       block, never folded/iterated, so recycling cannot affect results *)
    let consts = (Scratch.get ()).Scratch.consts in
    List.iter
      (fun f ->
        List.iter
          (fun b ->
            Hashtbl.clear consts;
            let subst (op : operand) =
              match op with
              | Reg r -> (
                match Hashtbl.find_opt consts r with
                | Some v ->
                  incr changes;
                  Imm v
                | None -> op)
              | _ -> op
            in
            let subst_addr (addr : address) =
              match addr with
              | Aindex (s, op, sz) ->
                let op' = subst op in
                if op' == op then addr else Aindex (s, op', sz)
              | Areg op ->
                let op' = subst op in
                if op' == op then addr else Areg op'
              | a -> a
            in
            b.b_instrs <-
              map_same
                (fun i ->
                  match i with
                  | Ibin (bop, r, a, bb) -> (
                    let a' = subst a and bb' = subst bb in
                    match a', bb' with
                    | Imm va, Imm vb -> (
                      match eval_binop bop va vb with
                      | Some v ->
                        Hashtbl.replace consts r v;
                        cov_event cov 0x3000 (Hashtbl.hash bop land 0xff) 1;
                        (* folded-value bucket: constants drive distinct
                           value-range paths downstream *)
                        let magnitude =
                          let abs = Int64.abs v in
                          let rec log2 x acc =
                            if Int64.compare x 1L <= 0 then acc
                            else log2 (Int64.shift_right_logical x 1) (acc + 1)
                          in
                          log2 abs 0
                        in
                        cov_event cov 0x3001
                          (Hashtbl.hash bop land 0xf)
                          ((2 * magnitude) + if Int64.compare v 0L < 0 then 1 else 0);
                        incr changes;
                        Imov (r, Imm v)
                      | None ->
                        if a' == a && bb' == bb then i else Ibin (bop, r, a', bb'))
                    | _ ->
                      cov_event cov 0x3000 (Hashtbl.hash bop land 0xff) 0;
                      if a' == a && bb' == bb then i else Ibin (bop, r, a', bb'))
                  | Iun (uop, r, a) -> (
                    match subst a with
                    | Imm v ->
                      let v = eval_unop uop v in
                      Hashtbl.replace consts r v;
                      incr changes;
                      Imov (r, Imm v)
                    | a' -> if a' == a then i else Iun (uop, r, a'))
                  | Imov (r, a) -> (
                    match subst a with
                    | Imm v as a' ->
                      Hashtbl.replace consts r v;
                      if a' == a then i else Imov (r, a')
                    | a' -> if a' == a then i else Imov (r, a'))
                  | Icast (r, ty, a) -> (
                    match subst a with
                    | Imm v ->
                      (* integer truncations fold *)
                      let v' =
                        match ty with
                        | Cparse.Ast.Tint (Ichar, true) ->
                          Int64.of_int ((Int64.to_int v land 0xff) - (if Int64.to_int v land 0x80 <> 0 then 0x100 else 0))
                        | Cparse.Ast.Tint (Ichar, false) ->
                          Int64.of_int (Int64.to_int v land 0xff)
                        | Cparse.Ast.Tbool -> if Int64.equal v 0L then 0L else 1L
                        | _ -> v
                      in
                      Hashtbl.replace consts r v';
                      incr changes;
                      Imov (r, Imm v')
                    | a' -> if a' == a then i else Icast (r, ty, a'))
                  | Iload (r, addr) ->
                    Hashtbl.remove consts r;
                    let addr' = subst_addr addr in
                    if addr' == addr then i else Iload (r, addr')
                  | Istore (addr, v) ->
                    let addr' = subst_addr addr in
                    let v' = subst v in
                    if addr' == addr && v' == v then i else Istore (addr', v')
                  | Iaddr (r, _) ->
                    Hashtbl.remove consts r;
                    i
                  | Icall (r, fn, args) ->
                    Option.iter (Hashtbl.remove consts) r;
                    let args' = map_same subst args in
                    if args' == args then i else Icall (r, fn, args'))
                b.b_instrs;
            (* per-block optimization context: block size vs fold count *)
            let nb = List.length b.b_instrs in
            let bucket n =
              if n <= 2 then 0 else if n <= 6 then 1 else if n <= 15 then 2
              else if n <= 40 then 3 else 4
            in
            cov_event cov 0x3002 (bucket nb) (Hashtbl.length consts land 0x7);
            (* fold conditional branches on constants *)
            (match b.b_term with
            | Tbr (Reg r, lt, lf) -> (
              match Hashtbl.find_opt consts r with
              | Some v ->
                cov_event cov 0x3010 1 0;
                incr changes;
                b.b_term <- Tjmp (if Int64.equal v 0L then lf else lt)
              | None -> ())
            | Tbr (Imm v, lt, lf) ->
              incr changes;
              b.b_term <- Tjmp (if Int64.equal v 0L then lf else lt)
            | Tswitch (Imm v, cases, d) ->
              incr changes;
              let target =
                match List.assoc_opt v cases with Some l -> l | None -> d
              in
              b.b_term <- Tjmp target
            | Tret (Some (Reg r)) -> (
              match Hashtbl.find_opt consts r with
              | Some v -> b.b_term <- Tret (Some (Imm v))
              | None -> ())
            | _ -> ()))
          f.fn_blocks)
      p.p_funcs;
    !changes
  in
  { pass_name = "constfold"; pass_since = 1; run }

(* ------------------------------------------------------------------ *)
(* CFG simplification: drop unreachable blocks, thread trivial jumps   *)
(* ------------------------------------------------------------------ *)

let simplify_cfg_pass =
  let run ?cov (p : program) =
    let changes = ref 0 in
    List.iter
      (fun f ->
        match f.fn_blocks with
        | [] -> ()
        | entry :: _ ->
          (* thread jumps to empty forwarding blocks; arena tables are
             only probed (find/mem), never iterated, so recycling is
             result-neutral *)
          let s = Scratch.get () in
          let forward = s.Scratch.forward in
          Hashtbl.clear forward;
          List.iter
            (fun b ->
              match b.b_instrs, b.b_term with
              | [], Tjmp l when l <> b.b_label -> Hashtbl.replace forward b.b_label l
              | _ -> ())
            f.fn_blocks;
          let rec resolve seen l =
            if List.mem l seen then l
            else
              match Hashtbl.find_opt forward l with
              | Some l' ->
                incr changes;
                resolve (l :: seen) l'
              | None -> l
          in
          List.iter
            (fun b ->
              b.b_term <-
                (match b.b_term with
                | Tjmp l as t ->
                  let l' = resolve [] l in
                  if l' = l then t else Tjmp l'
                | Tbr (c, a, b') as t ->
                  let a' = resolve [] a and b'' = resolve [] b' in
                  if a' = a && b'' = b' then t else Tbr (c, a', b'')
                | Tswitch (c, cases, d) as t ->
                  let cases' =
                    map_same
                      (fun ((v, l) as case) ->
                        let l' = resolve [] l in
                        if l' = l then case else (v, l'))
                      cases
                  in
                  let d' = resolve [] d in
                  if cases' == cases && d' = d then t else Tswitch (c, cases', d')
                | t -> t))
            f.fn_blocks;
          (* reachability *)
          let reachable = s.Scratch.reach in
          Hashtbl.clear reachable;
          let rec visit l =
            if not (Hashtbl.mem reachable l) then begin
              Hashtbl.replace reachable l ();
              match block_of f l with
              | Some b -> List.iter visit (successors b.b_term)
              | None -> ()
            end
          in
          visit entry.b_label;
          let before = List.length f.fn_blocks in
          f.fn_blocks <-
            filter_same (fun b -> Hashtbl.mem reachable b.b_label) f.fn_blocks;
          let removed = before - List.length f.fn_blocks in
          if removed > 0 then begin
            cov_event cov 0x3100 removed 0;
            changes := !changes + removed
          end)
      p.p_funcs;
    !changes
  in
  { pass_name = "simplify-cfg"; pass_since = 1; run }

(* ------------------------------------------------------------------ *)
(* Dead code elimination (pure instrs with unused destinations)        *)
(* ------------------------------------------------------------------ *)

let dce_pass =
  let run ?cov (p : program) =
    let changes = ref 0 in
    List.iter
      (fun f ->
        (* arena table: membership-only, so recycling is result-neutral *)
        let used = (Scratch.get ()).Scratch.used in
        Hashtbl.clear used;
        let mark r = Hashtbl.replace used r () in
        List.iter
          (fun b ->
            List.iter (fun i -> iter_uses mark i) b.b_instrs;
            iter_term_regs mark b.b_term)
          f.fn_blocks;
        List.iter
          (fun b ->
            let before = List.length b.b_instrs in
            b.b_instrs <-
              filter_same
                (fun i ->
                  let r = dest_reg i in
                  not (r >= 0 && is_pure_instr i && not (Hashtbl.mem used r)))
                b.b_instrs;
            let removed = before - List.length b.b_instrs in
            if removed > 0 then begin
              cov_event cov 0x3200 removed 0;
              changes := !changes + removed
            end)
          f.fn_blocks)
      p.p_funcs;
    !changes
  in
  { pass_name = "dce"; pass_since = 1; run }

(* ------------------------------------------------------------------ *)
(* Inlining of small leaf functions                                    *)
(* ------------------------------------------------------------------ *)

let inline_pass =
  let run ?cov (p : program) =
    (* inline calls to functions that are a single block with <= 4 instrs,
       no calls, returning a constant or a parameter load: replace the
       call by a move of the return operand when it is an Imm. *)
    let changes = ref 0 in
    let returns_const f =
      (* entry block returns a constant immediately (trailing unreachable
         blocks from lowering are ignored) *)
      match f.fn_blocks with
      | { b_instrs = []; b_term = Tret (Some (Imm v)); _ } :: _ -> Some v
      | _ -> None
    in
    let const_fns =
      List.filter_map
        (fun f -> Option.map (fun v -> (f.fn_name, v)) (returns_const f))
        p.p_funcs
    in
    List.iter
      (fun f ->
        List.iter
          (fun b ->
            b.b_instrs <-
              map_same
                (fun i ->
                  match i with
                  | Icall (Some r, fn, _) -> (
                    match List.assoc_opt fn const_fns with
                    | Some v ->
                      incr changes;
                      cov_event cov 0x3300 (Hashtbl.hash fn land 0xff) 0;
                      Imov (r, Imm v)
                    | None -> i)
                  | i -> i)
                b.b_instrs)
          f.fn_blocks)
      p.p_funcs;
    !changes
  in
  { pass_name = "inline"; pass_since = 2; run }

(* ------------------------------------------------------------------ *)
(* strlen/sprintf optimization (the GCC strlen-pass analogue)          *)
(* ------------------------------------------------------------------ *)

let strlen_pass =
  let run ?cov (p : program) =
    let changes = ref 0 in
    List.iter
      (fun f ->
        List.iter
          (fun b ->
            b.b_instrs <-
              map_same
                (fun i ->
                  match i with
                  | Icall (Some r, "sprintf", [ _; Sym fmt; src ])
                    when String.length fmt > 4 ->
                    (* the return value of sprintf(dst, "%s", src) is
                       strlen(src): rewrite when the format is a literal *)
                    incr changes;
                    cov_event cov 0x3400 1 0;
                    Icall (Some r, "strlen", [ src ])
                  | i -> i)
                b.b_instrs)
          f.fn_blocks)
      p.p_funcs;
    !changes
  in
  { pass_name = "strlen-opt"; pass_since = 2; run }

(* ------------------------------------------------------------------ *)
(* Loop optimization: trip-count analysis + full unrolling             *)
(* ------------------------------------------------------------------ *)

(* Detect single-block counted loops of the canonical shape produced by
   lowering for loops, and fully unroll small trip counts. *)
let loop_pass =
  let run ?cov (p : program) =
    let changes = ref 0 in
    List.iter
      (fun f ->
        (* find back edges: block whose terminator jumps to a dominator;
           approximate by "jumps to an earlier label" *)
        List.iter
          (fun b ->
            match b.b_term with
            | Tjmp l when l < b.b_label ->
              cov_event cov 0x3500 1 0;
              (* loop header found; attempt trip-count estimate: header
                 must end in Tbr (Reg r, body, exit) where r compares a
                 slot against an Imm *)
              (match block_of f l with
              | Some header -> (
                match header.b_term, List.rev header.b_instrs with
                | Tbr (Reg r, _, _), Ibin ((Lt | Gt | Le | Ge), r', Reg _, Imm bound) :: _
                  when r = r' ->
                  cov_event cov 0x3510 (Int64.to_int (Int64.logand bound 63L)) 0;
                  changes := !changes + 1
                | _ -> cov_event cov 0x3511 0 0)
              | None -> ())
            | _ -> ())
          f.fn_blocks)
      p.p_funcs;
    !changes
  in
  { pass_name = "loop-opt"; pass_since = 3; run }

(* ------------------------------------------------------------------ *)
(* Pass registry                                                       *)
(* ------------------------------------------------------------------ *)

let registry : pass list ref = ref []

let register (p : pass) =
  if List.exists (fun q -> String.equal q.pass_name p.pass_name) !registry
  then invalid_arg ("Opt.register: duplicate pass " ^ p.pass_name);
  registry := !registry @ [ p ]

(* Registration order is the canonical pass enumeration order: it feeds
   [Compiler.random_options]' per-pass coin flips, so reordering it
   reshuffles every seeded option stream. Append new passes at the end. *)
let () =
  List.iter register
    [
      const_fold_pass; simplify_cfg_pass; dce_pass; inline_pass;
      strlen_pass; loop_pass;
    ]

let all_passes () = !registry
let pass_names () = List.map (fun p -> p.pass_name) !registry

let find_pass name =
  List.find_opt (fun p -> String.equal p.pass_name name) !registry

let resolve name =
  match find_pass name with
  | Some p -> p
  | None -> invalid_arg ("Opt: unknown pass " ^ name)

(* ------------------------------------------------------------------ *)
(* Pipeline specs                                                      *)
(* ------------------------------------------------------------------ *)

type spec = { spec_name : string; spec_level : int; spec_passes : string list }

let specs =
  [
    { spec_name = "O0"; spec_level = 0; spec_passes = [] };
    {
      spec_name = "O1";
      spec_level = 1;
      spec_passes = [ "constfold"; "simplify-cfg"; "dce" ];
    };
    {
      spec_name = "O2";
      spec_level = 2;
      spec_passes =
        [ "constfold"; "simplify-cfg"; "inline"; "strlen-opt"; "constfold"; "dce" ];
    };
    {
      spec_name = "O3";
      spec_level = 3;
      spec_passes =
        [
          "constfold"; "simplify-cfg"; "inline"; "strlen-opt"; "loop-opt";
          "constfold"; "simplify-cfg"; "dce";
        ];
    };
  ]

(* Every spec entry must resolve against the registry and respect the
   pass's default placement; fail loudly at module init otherwise. *)
let () =
  List.iter
    (fun s ->
      List.iter
        (fun name ->
          let p = resolve name in
          if s.spec_level < p.pass_since then
            invalid_arg
              (Printf.sprintf "Opt: spec %s schedules %s below -O%d"
                 s.spec_name name p.pass_since))
        s.spec_passes)
    specs

let spec_for_level level =
  let level = if level <= 0 then 0 else if level >= 3 then 3 else level in
  List.find (fun s -> s.spec_level = level) specs

let passes_for_level level = List.map resolve (spec_for_level level).spec_passes

let planned ?pass_list ~level ~disabled () : string list =
  let base =
    match pass_list with
    | Some names ->
      List.iter (fun n -> ignore (resolve n)) names;
      names
    | None -> (spec_for_level level).spec_passes
  in
  List.filter (fun n -> not (List.mem n disabled)) base

let run_pipeline ?cov ?observer ?instrument ?pass_list ~level ~disabled
    (p : program) : (string * int) list =
  let names = planned ?pass_list ~level ~disabled () in
  List.mapi
    (fun index name ->
      let pass = resolve name in
      let execute () = pass.run ?cov p in
      let changes =
        match instrument with Some f -> f pass execute | None -> execute ()
      in
      (match observer with
      | Some f -> f ~index ~pass ~changes p
      | None -> ());
      (pass.pass_name, changes))
    names
