(* Reference interpreter for the C subset (AST level).

   Used by: MetaMut's validation loop (mutants must run without crashing
   or hanging), the seed generator's sanity tests, and differential
   property tests against the IR interpreter. *)

open Cparse
open Ast

type value =
  | VInt of int64
  | VFlt of float
  | VStr of string
  | VPtr of cell option
  | VArr of cell array
  | VStruct of (string, cell) Hashtbl.t

and cell = value ref

exception Aborted
exception Exited of int
exception Out_of_fuel
exception Stack_depth_exceeded
exception Runtime_error of string

type outcome = {
  o_exit : int;
  o_output : string;
  o_aborted : bool;
  o_hang : bool;
  o_stack_overflow : bool;
}

type frame = (string, cell) Hashtbl.t

type state = {
  globals : (string, cell) Hashtbl.t;
  funcs : (string, fundef) Hashtbl.t;
  structs : (string, field list) Hashtbl.t;
  out : Buffer.t;
  mutable fuel : int;
  mutable frames : frame list;
  mutable depth : int; (* = List.length frames, maintained incrementally *)
}

exception Return_value of value
exception Break_loop
exception Continue_loop
exception Goto of string

let truthy = function
  | VInt v -> not (Int64.equal v 0L)
  | VFlt f -> f <> 0.0
  | VPtr None -> false
  | VPtr (Some _) -> true
  | VStr _ -> true
  | VArr _ | VStruct _ -> true

let as_int = function
  | VInt v -> v
  | VFlt f -> Int64.of_float f
  | VPtr None -> 0L
  | VPtr (Some _) -> 1L
  | VStr _ | VArr _ | VStruct _ -> 1L

let as_float = function
  | VInt v -> Int64.to_float v
  | VFlt f -> f
  | v -> Int64.to_float (as_int v)

let tick st =
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then raise Out_of_fuel

let rec default_value st (ty : ty) : value =
  match ty with
  | Tfloat | Tdouble -> VFlt 0.0
  | Tptr _ -> VPtr None
  | Tarray (t, Some n) ->
    VArr (Array.init (max 1 n) (fun _ -> ref (default_value st t)))
  | Tarray (t, None) -> VArr (Array.init 8 (fun _ -> ref (default_value st t)))
  | Tstruct tag | Tunion tag ->
    let h = Hashtbl.create 4 in
    (match Hashtbl.find_opt st.structs tag with
    | Some fields ->
      List.iter
        (fun f -> Hashtbl.replace h f.fld_name (ref (default_value st f.fld_ty)))
        fields
    | None -> ());
    VStruct h
  | _ -> VInt 0L

let lookup st name : cell =
  let rec find = function
    | [] -> (
      match Hashtbl.find_opt st.globals name with
      | Some c -> c
      | None -> raise (Runtime_error ("unbound variable " ^ name)))
    | frame :: rest -> (
      match Hashtbl.find_opt frame name with
      | Some c -> c
      | None -> find rest)
  in
  find st.frames

let declare st name v =
  match st.frames with
  | frame :: _ -> Hashtbl.replace frame name (ref v)
  | [] -> Hashtbl.replace st.globals name (ref v)

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                          *)
(* ------------------------------------------------------------------ *)

let int_binop op a b =
  let open Int64 in
  let bool_ x = if x then 1L else 0L in
  match op with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Div -> if equal b 0L then raise Aborted else div a b
  | Mod -> if equal b 0L then raise Aborted else rem a b
  | Shl -> shift_left a (to_int (logand b 63L))
  | Shr -> shift_right a (to_int (logand b 63L))
  | Lt -> bool_ (compare a b < 0)
  | Gt -> bool_ (compare a b > 0)
  | Le -> bool_ (compare a b <= 0)
  | Ge -> bool_ (compare a b >= 0)
  | Eq -> bool_ (equal a b)
  | Ne -> bool_ (not (equal a b))
  | Band -> logand a b
  | Bxor -> logxor a b
  | Bor -> logor a b
  | Land -> bool_ ((not (equal a 0L)) && not (equal b 0L))
  | Lor -> bool_ ((not (equal a 0L)) || not (equal b 0L))

let float_binop op a b =
  let bool_ x = VInt (if x then 1L else 0L) in
  match op with
  | Add -> VFlt (a +. b)
  | Sub -> VFlt (a -. b)
  | Mul -> VFlt (a *. b)
  | Div -> VFlt (a /. b)
  | Mod -> VFlt (Float.rem a b)
  | Lt -> bool_ (a < b)
  | Gt -> bool_ (a > b)
  | Le -> bool_ (a <= b)
  | Ge -> bool_ (a >= b)
  | Eq -> bool_ (a = b)
  | Ne -> bool_ (a <> b)
  | Land -> bool_ (a <> 0. && b <> 0.)
  | Lor -> bool_ (a <> 0. || b <> 0.)
  | Shl | Shr | Band | Bxor | Bor -> VInt (int_binop op (Int64.of_float a) (Int64.of_float b))

(* ------------------------------------------------------------------ *)
(* Builtins                                                            *)
(* ------------------------------------------------------------------ *)

let string_of_value = function
  | VInt v -> Int64.to_string v
  | VFlt f -> Fmt.str "%g" f
  | VStr s -> s
  | VPtr None -> "(nil)"
  | VPtr (Some _) -> "(ptr)"
  | VArr cells ->
    (* char array: render until NUL *)
    let buf = Buffer.create 16 in
    (try
       Array.iter
         (fun c ->
           match !c with
           | VInt 0L -> raise Exit
           | VInt v -> Buffer.add_char buf (Char.chr (Int64.to_int v land 0xff))
           | _ -> raise Exit)
         cells
     with Exit -> ());
    Buffer.contents buf
  | VStruct _ -> "(struct)"

let do_printf st fmt args =
  (* loose printf: substitute each % conversion with the next argument *)
  let buf = Buffer.create 32 in
  let args = ref args in
  let next () =
    match !args with
    | [] -> VInt 0L
    | a :: rest ->
      args := rest;
      a
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    if fmt.[!i] = '%' && !i + 1 < n then begin
      let rec conv j =
        if j >= n then j - 1
        else
          match fmt.[j] with
          | 'd' | 'i' | 'u' | 'x' | 'c' | 's' | 'f' | 'g' | 'e' | 'l' | '%' ->
            j
          | _ -> conv (j + 1)
      in
      let j = conv (!i + 1) in
      (match fmt.[j] with
      | '%' -> Buffer.add_char buf '%'
      | 'l' -> Buffer.add_string buf (string_of_value (next ()))
      | 'c' ->
        let v = as_int (next ()) in
        Buffer.add_char buf (Char.chr (Int64.to_int v land 0xff))
      | 'f' | 'g' | 'e' -> Buffer.add_string buf (Fmt.str "%g" (as_float (next ())))
      | _ -> Buffer.add_string buf (string_of_value (next ())));
      i := j + 1
    end
    else begin
      Buffer.add_char buf fmt.[!i];
      incr i
    end
  done;
  Buffer.add_string st.out (Buffer.contents buf);
  VInt (Int64.of_int (Buffer.length buf))

let write_string_to_arr cells s =
  let n = Array.length cells in
  String.iteri
    (fun i c -> if i < n then cells.(i) := VInt (Int64.of_int (Char.code c)))
    s;
  if String.length s < n then cells.(String.length s) := VInt 0L

let call_builtin st name (args : value list) : value option =
  match name, args with
  | "printf", VStr fmt :: rest -> Some (do_printf st fmt rest)
  | "printf", _ -> Some (VInt 0L)
  | "puts", [ v ] ->
    Buffer.add_string st.out (string_of_value v);
    Buffer.add_char st.out '\n';
    Some (VInt 0L)
  | "putchar", [ v ] ->
    Buffer.add_char st.out (Char.chr (Int64.to_int (as_int v) land 0xff));
    Some (VInt (as_int v))
  | "sprintf", dst :: VStr fmt :: rest ->
    let formatted =
      let b = Buffer.create 16 in
      let saved = st.out in
      ignore saved;
      (* reuse do_printf into a scratch buffer *)
      let scratch = { st with out = b } in
      ignore (do_printf scratch fmt rest);
      Buffer.contents b
    in
    (match dst with
    | VArr cells -> write_string_to_arr cells formatted
    | _ -> ());
    Some (VInt (Int64.of_int (String.length formatted)))
  | "strlen", [ v ] -> Some (VInt (Int64.of_int (String.length (string_of_value v))))
  | "strcmp", [ a; b ] ->
    Some (VInt (Int64.of_int (compare (string_of_value a) (string_of_value b))))
  | "strcpy", [ dst; src ] ->
    (match dst with
    | VArr cells -> write_string_to_arr cells (string_of_value src)
    | _ -> ());
    Some dst
  | "memset", dst :: v :: n :: _ ->
    (match dst with
    | VArr cells ->
      let count = min (Array.length cells) (Int64.to_int (as_int n)) in
      for i = 0 to count - 1 do
        cells.(i) := VInt (as_int v)
      done
    | _ -> ());
    Some dst
  | "memcpy", dst :: src :: _ ->
    (match dst, src with
    | VArr d, VArr s ->
      Array.iteri (fun i c -> if i < Array.length d then d.(i) := !c) s
    | _ -> ());
    Some dst
  | "abort", _ -> raise Aborted
  | "exit", [ v ] -> raise (Exited (Int64.to_int (as_int v)))
  | "exit", [] -> raise (Exited 0)
  | "rand", [] -> Some (VInt 42L) (* deterministic by design *)
  | "abs", [ v ] -> Some (VInt (Int64.abs (as_int v)))
  | "malloc", [ n ] ->
    let count = max 1 (min 4096 (Int64.to_int (as_int n) / 8)) in
    Some (VArr (Array.init count (fun _ -> ref (VInt 0L))))
  | "free", _ -> Some (VInt 0L)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let rec eval st (e : expr) : value =
  tick st;
  match e.ek with
  | Int_lit (v, _, _) -> VInt v
  | Float_lit (f, _) -> VFlt f
  | Char_lit c -> VInt (Int64.of_int (Char.code c))
  | Str_lit s -> VStr s
  | Ident n -> !(lookup st n)
  | Binop (Land, a, b) ->
    if truthy (eval st a) then VInt (if truthy (eval st b) then 1L else 0L)
    else VInt 0L
  | Binop (Lor, a, b) ->
    if truthy (eval st a) then VInt 1L
    else VInt (if truthy (eval st b) then 1L else 0L)
  | Binop (op, a, b) -> (
    let va = eval st a and vb = eval st b in
    match va, vb with
    | VFlt _, _ | _, VFlt _ -> float_binop op (as_float va) (as_float vb)
    | VPtr _, _ | _, VPtr _ | VArr _, _ | _, VArr _ ->
      (* pointer arithmetic is modelled shallowly *)
      VInt (int_binop op (as_int va) (as_int vb))
    | _ -> VInt (int_binop op (as_int va) (as_int vb)))
  | Unop (op, a) -> (
    let v = eval st a in
    match op, v with
    | Neg, VFlt f -> VFlt (-.f)
    | Neg, v -> VInt (Int64.neg (as_int v))
    | Uplus, v -> v
    | Bitnot, v -> VInt (Int64.lognot (as_int v))
    | Lognot, v -> VInt (if truthy v then 0L else 1L))
  | Assign (op, lhs, rhs) ->
    let cell = eval_lvalue st lhs in
    let rv = eval st rhs in
    let v =
      match op with
      | A_none -> rv
      | _ ->
        let bop =
          match op with
          | A_add -> Add | A_sub -> Sub | A_mul -> Mul | A_div -> Div
          | A_mod -> Mod | A_shl -> Shl | A_shr -> Shr
          | A_band -> Band | A_bxor -> Bxor | A_bor -> Bor | A_none -> Add
        in
        (match !cell, rv with
        | VFlt a, _ | _, VFlt a ->
          ignore a;
          float_binop bop (as_float !cell) (as_float rv)
        | _ -> VInt (int_binop bop (as_int !cell) (as_int rv)))
    in
    cell := v;
    v
  | Incdec (inc, prefix, a) ->
    let cell = eval_lvalue st a in
    let old = !cell in
    let nv =
      match old with
      | VFlt f -> VFlt (if inc then f +. 1.0 else f -. 1.0)
      | v -> VInt (Int64.add (as_int v) (if inc then 1L else -1L))
    in
    cell := nv;
    if prefix then nv else old
  | Call ({ ek = Ident fname; _ }, args) -> (
    let vargs = List.map (eval st) args in
    match Hashtbl.find_opt st.funcs fname with
    | Some fd -> call_function st fd vargs
    | None -> (
      match call_builtin st fname vargs with
      | Some v -> v
      | None -> raise (Runtime_error ("call to unknown function " ^ fname))))
  | Call (_, _) -> raise (Runtime_error "indirect call")
  | Index (a, i) ->
    let cell = index_cell st a i in
    !cell
  | Member (a, fld) -> !(member_cell st a fld)
  | Arrow (a, fld) -> (
    match eval st a with
    | VPtr (Some c) -> (
      match !c with
      | VStruct h -> (
        match Hashtbl.find_opt h fld with
        | Some c -> !c
        | None -> raise (Runtime_error ("no field " ^ fld)))
      | v -> v)
    | VPtr None -> raise Aborted
    | v -> v)
  | Deref a -> (
    match eval st a with
    | VPtr (Some c) -> !c
    | VPtr None -> raise Aborted
    | VArr cells when Array.length cells > 0 -> !(cells.(0))
    | v -> v)
  | Addrof a -> (
    match a.ek with
    | Deref inner -> eval st inner
    | _ -> VPtr (Some (eval_lvalue st a)))
  | Cast (ty, a) -> (
    match a.ek with
    | Init_list items -> (
      (* compound literal *)
      match ty with
      | Tstruct _ | Tunion _ | Tarray _ ->
        let v = default_value st ty in
        (match v, items with
        | VStruct h, _ ->
          let fields =
            match ty with
            | Tstruct tag | Tunion tag ->
              Option.value ~default:[] (Hashtbl.find_opt st.structs tag)
            | _ -> []
          in
          List.iteri
            (fun i item ->
              match List.nth_opt fields i with
              | Some f -> (
                match Hashtbl.find_opt h f.fld_name with
                | Some c -> c := eval st item
                | None -> ())
              | None -> ())
            items
        | VArr cells, _ ->
          List.iteri
            (fun i item -> if i < Array.length cells then cells.(i) := eval st item)
            items
        | _ -> ());
        v
      | _ -> (
        match items with
        | [ single ] -> cast_value ty (eval st single)
        | _ -> VInt 0L))
    | _ -> cast_value ty (eval st a))
  | Cond (c, t, f) -> if truthy (eval st c) then eval st t else eval st f
  | Comma (a, b) ->
    ignore (eval st a);
    eval st b
  | Sizeof_expr _ -> VInt 8L
  | Sizeof_ty t -> VInt (Int64.of_int (sizeof_ty t))
  | Init_list items ->
    VArr (Array.of_list (List.map (fun e -> ref (eval st e)) items))

and cast_value ty v =
  match ty with
  | Tfloat | Tdouble -> VFlt (as_float v)
  | Tbool -> VInt (if truthy v then 1L else 0L)
  | Tint (Ichar, true) ->
    let x = Int64.to_int (as_int v) land 0xff in
    VInt (Int64.of_int (if x land 0x80 <> 0 then x - 0x100 else x))
  | Tint (Ichar, false) -> VInt (Int64.of_int (Int64.to_int (as_int v) land 0xff))
  | Tint (Ishort, true) ->
    let x = Int64.to_int (as_int v) land 0xffff in
    VInt (Int64.of_int (if x land 0x8000 <> 0 then x - 0x10000 else x))
  | Tint (Ishort, false) -> VInt (Int64.of_int (Int64.to_int (as_int v) land 0xffff))
  | Tint ((Iint | Ilong | Ilonglong), _) -> VInt (as_int v)
  | Tptr _ -> (
    match v with
    | VPtr _ | VArr _ | VStr _ -> v
    | VInt 0L -> VPtr None
    | _ -> VPtr None)
  | _ -> v

and index_cell st a i : cell =
  let base = eval st a in
  let idx = Int64.to_int (as_int (eval st i)) in
  match base with
  | VArr cells ->
    if idx >= 0 && idx < Array.length cells then cells.(idx)
    else raise Aborted (* out-of-bounds access traps deterministically *)
  | VPtr (Some c) when idx = 0 -> c
  | VPtr _ -> raise Aborted
  | VStr s ->
    if idx >= 0 && idx < String.length s then
      ref (VInt (Int64.of_int (Char.code s.[idx])))
    else ref (VInt 0L)
  | _ -> raise (Runtime_error "subscript of non-array")

and member_cell st a fld : cell =
  match eval st a with
  | VStruct h -> (
    match Hashtbl.find_opt h fld with
    | Some c -> c
    | None ->
      let c = ref (VInt 0L) in
      Hashtbl.replace h fld c;
      c)
  | _ -> ref (VInt 0L)

and eval_lvalue st (e : expr) : cell =
  tick st;
  match e.ek with
  | Ident n -> lookup st n
  | Index (a, i) -> index_cell st a i
  | Member (a, fld) -> member_cell st a fld
  | Arrow (a, fld) -> (
    match eval st a with
    | VPtr (Some c) -> (
      match !c with
      | VStruct h -> (
        match Hashtbl.find_opt h fld with
        | Some c -> c
        | None ->
          let c = ref (VInt 0L) in
          Hashtbl.replace h fld c;
          c)
      | _ -> c)
    | VPtr None -> raise Aborted
    | _ -> ref (VInt 0L))
  | Deref a -> (
    match eval st a with
    | VPtr (Some c) -> c
    | VPtr None -> raise Aborted
    | VArr cells when Array.length cells > 0 -> cells.(0)
    | _ -> ref (VInt 0L))
  | Cast (_, inner) -> eval_lvalue st inner
  | Comma (a, b) ->
    ignore (eval st a);
    eval_lvalue st b
  | _ -> ref (eval st e)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and exec_var_decl st (v : var_decl) =
  let value =
    match v.v_init with
    | Some { ek = Init_list items; _ } -> (
      let base = default_value st v.v_ty in
      (match base with
      | VArr cells ->
        List.iteri
          (fun i item -> if i < Array.length cells then cells.(i) := eval st item)
          items
      | VStruct h -> (
        match v.v_ty with
        | Tstruct tag | Tunion tag -> (
          match Hashtbl.find_opt st.structs tag with
          | Some fields ->
            List.iteri
              (fun i item ->
                match List.nth_opt fields i with
                | Some f -> (
                  match Hashtbl.find_opt h f.fld_name with
                  | Some c -> c := eval st item
                  | None -> ())
                | None -> ())
              items
          | None -> ())
        | _ -> ())
      | _ -> ());
      base)
    | Some init -> eval st init
    | None -> default_value st v.v_ty
  in
  declare st v.v_name value

and exec_stmt st (s : stmt) : unit =
  tick st;
  match s.sk with
  | Sexpr e -> ignore (eval st e)
  | Sdecl vs -> List.iter (exec_var_decl st) vs
  | Snull -> ()
  | Sblock ss -> exec_body st ss
  | Sif (c, t, f) ->
    if truthy (eval st c) then exec_stmt st t
    else Option.iter (exec_stmt st) f
  | Swhile (c, b) ->
    (try
       while truthy (eval st c) do
         tick st;
         try exec_stmt st b with Continue_loop -> ()
       done
     with Break_loop -> ())
  | Sdo (b, c) ->
    (try
       let continue_ = ref true in
       while !continue_ do
         tick st;
         (try exec_stmt st b with Continue_loop -> ());
         continue_ := truthy (eval st c)
       done
     with Break_loop -> ())
  | Sfor (init, cond, step, b) ->
    (match init with
    | Some (Fi_expr e) -> ignore (eval st e)
    | Some (Fi_decl vs) -> List.iter (exec_var_decl st) vs
    | None -> ());
    (try
       let check () =
         match cond with Some c -> truthy (eval st c) | None -> true
       in
       while check () do
         tick st;
         (try exec_stmt st b with Continue_loop -> ());
         match step with Some e -> ignore (eval st e) | None -> ()
       done
     with Break_loop -> ())
  | Sreturn (Some e) -> raise (Return_value (eval st e))
  | Sreturn None -> raise (Return_value (VInt 0L))
  | Sbreak -> raise Break_loop
  | Scontinue -> raise Continue_loop
  | Sswitch (e, cases) -> (
    let v = as_int (eval st e) in
    (* find the first matching case group (or default), then execute with
       fall-through *)
    let matches c =
      List.exists
        (function
          | L_case ce -> (
            match Const_eval.eval_int ce with
            | Some cv -> Int64.equal cv v
            | None -> (
              match eval st ce with
              | VInt cv -> Int64.equal cv v
              | _ -> false))
          | L_default -> false)
        c.case_labels
    in
    let rec find_start i = function
      | [] -> None
      | c :: rest -> if matches c then Some i else find_start (i + 1) rest
    in
    let start =
      match find_start 0 cases with
      | Some i -> Some i
      | None ->
        let rec find_default i = function
          | [] -> None
          | c :: rest ->
            if List.mem L_default c.case_labels then Some i
            else find_default (i + 1) rest
        in
        find_default 0 cases
    in
    match start with
    | None -> ()
    | Some i -> (
      try
        List.iteri
          (fun j c ->
            if j >= i then List.iter (exec_stmt st) c.case_body)
          cases
      with Break_loop -> ()))
  | Sgoto l -> raise (Goto l)
  | Slabel (_, inner) -> exec_stmt st inner

(* Execute a statement list with goto support.  A goto is resolved at the
   innermost statement list that carries the label as a *direct* element
   (possibly under a chain of labels); jumping re-enters at that element.
   Gotos into deeper structured statements propagate to the top and fail —
   a documented subset restriction (the fuzzers never produce them). *)
and exec_body st (ss : stmt list) : unit =
  let rec direct_label l (s : stmt) : bool =
    match s.sk with
    | Slabel (name, inner) -> String.equal name l || direct_label l inner
    | _ -> false
  in
  let rec run_from idx =
    let rest = List.filteri (fun i _ -> i >= idx) ss in
    try List.iter (exec_stmt st) rest with
    | Goto l -> (
      tick st;
      match
        List.mapi (fun i s -> (i, s)) ss
        |> List.find_opt (fun (_, s) -> direct_label l s)
      with
      | Some (i, _) -> run_from i
      | None -> raise (Goto l) (* resolved by an enclosing list, if any *))
  in
  run_from 0

and call_function st (fd : fundef) (args : value list) : value =
  tick st;
  (* deep recursion is a *crash* (what a real process reports as
     SIGSEGV), not a hang: misclassifying it as fuel exhaustion hid
     runaway-recursion mutants from crash bucketing *)
  if st.depth > 200 then raise Stack_depth_exceeded;
  let frame = Hashtbl.create 8 in
  List.iteri
    (fun i p ->
      let v = match List.nth_opt args i with Some v -> v | None -> VInt 0L in
      Hashtbl.replace frame p.p_name (ref v))
    fd.f_params;
  st.frames <- frame :: st.frames;
  st.depth <- st.depth + 1;
  let result =
    try
      exec_body st fd.f_body;
      VInt 0L
    with
    | Return_value v -> v
    | Goto l -> raise (Runtime_error ("goto to unreachable label " ^ l))
  in
  st.frames <- List.tl st.frames;
  st.depth <- st.depth - 1;
  result

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let run ?(fuel = 200_000) (tu : tu) : outcome =
  let st =
    {
      globals = Hashtbl.create 32;
      funcs = Hashtbl.create 16;
      structs = Hashtbl.create 8;
      out = Buffer.create 64;
      fuel;
      frames = [];
      depth = 0;
    }
  in
  List.iter
    (function
      | Gstruct (tag, fields) | Gunion (tag, fields) ->
        Hashtbl.replace st.structs tag fields
      | Gfun fd -> Hashtbl.replace st.funcs fd.f_name fd
      | _ -> ())
    tu.globals;
  (* globals: defaults first, then initializers in order *)
  List.iter
    (function
      | Gvar v ->
        Hashtbl.replace st.globals v.v_name (ref (default_value st v.v_ty))
      | _ -> ())
    tu.globals;
  let finish ?(overflow = false) exit_code aborted hang =
    {
      o_exit = exit_code;
      o_output = Buffer.contents st.out;
      o_aborted = aborted;
      o_hang = hang;
      o_stack_overflow = overflow;
    }
  in
  try
    List.iter
      (function
        | Gvar ({ v_init = Some _; _ } as v) -> exec_var_decl st v
        | _ -> ())
      tu.globals;
    match Hashtbl.find_opt st.funcs "main" with
    | Some main ->
      let v = call_function st main [] in
      finish (Int64.to_int (as_int v) land 0xff) false false
    | None -> finish 0 false false
  with
  | Aborted -> finish 134 true false
  | Exited n -> finish (n land 0xff) false false
  | Out_of_fuel -> finish 124 false true
  | Runtime_error _ -> finish 139 true false
  (* both the interpreter's own depth barrier and a native overflow of
     the host stack report as the process crash they would be (SIGSEGV,
     exit 139), distinct from fuel exhaustion *)
  | Stack_depth_exceeded | Stack_overflow -> finish ~overflow:true 139 false false

let run_src ?fuel (src : string) : (outcome, string) result =
  match Parser.parse src with
  | Ok tu -> Ok (run ?fuel tu)
  | Error e -> Error e
