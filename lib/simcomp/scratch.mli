(** The per-domain compile arena: reusable buffers, IR instruction
    vectors, and pre-sized recycled hashtables shared by the compile hot
    path ({!Lower}, {!Opt}, {!Backend}, {!Typecheck} context reuse) so a
    steady-state compile allocates only what escapes it.

    Every structure is fully cleared by its user around each use, so a
    warm arena produces byte-identical output to a cold one (pinned by
    the scratch-reuse tests via {!reset}).  Arenas are domain-local:
    parallel campaign workers never share one. *)

type t = {
  instrs : Ir.instr Engine.Vec.t;
  consts : (int, int64) Hashtbl.t;
  used : (int, unit) Hashtbl.t;
  forward : (int, int) Hashtbl.t;
  reach : (int, unit) Hashtbl.t;
  live_first : (int, int) Hashtbl.t;
  live_last : (int, int) Hashtbl.t;
  mutable regmap : int array;
  asm_buf : Buffer.t;
  render_buf : Buffer.t;
  types : (int, Cparse.Ast.ty) Hashtbl.t;
}

val get : unit -> t
(** This domain's arena (created on first use). *)

val reset : unit -> unit
(** Drop this domain's arena so the next {!get} builds a cold one — for
    tests that compare warm-arena output against fresh allocation. *)

val regmap_for : t -> int -> int array
(** The vreg assignment array, grown to cover [0..n] and filled with the
    unassigned sentinel (-2) over that range. *)

val render_tu : Cparse.Ast.tu -> string
(** Render a translation unit through the recycled buffer: byte-identical
    to [Pretty.tu_to_string]. *)
