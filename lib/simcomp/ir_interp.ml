(* IR interpreter.

   Executes the register-machine IR produced by Lower, before or after
   optimization passes.  Together with the AST-level Interp this enables
   differential testing: for a deterministic program, the AST semantics,
   the freshly lowered IR, and the optimized IR must all agree — the
   soundness property of the optimizer exercised by the test suite.

   Scope: the integer/float scalar subset plus named slots and arrays
   (what Lower produces for generator output).  Calls reach user
   functions and a few numeric builtins; string-manipulating builtins are
   out of scope and reported as [Unsupported]. *)

open Ir

exception Trap            (* division by zero, out-of-bounds, null deref *)
exception Out_of_fuel
exception Unsupported of string

type value = VI of int64 | VF of float | VAddr of string * int

type outcome = {
  o_exit : int;
  o_trapped : bool;
  o_hang : bool;
  o_unsupported : string option;
}

type state = {
  program : program;
  slots : (string, value array) Hashtbl.t;
  mutable fuel : int;
  mutable depth : int;
}

let as_int = function
  | VI v -> v
  | VF f -> Int64.of_float f
  | VAddr _ -> 1L

let as_float = function
  | VI v -> Int64.to_float v
  | VF f -> f
  | VAddr _ -> 1.

let tick st =
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then raise Out_of_fuel

let slot st name =
  match Hashtbl.find_opt st.slots name with
  | Some cells -> cells
  | None ->
    (* locals are declared lazily: slots not in the table yet get one cell *)
    let cells = [| VI 0L |] in
    Hashtbl.replace st.slots name cells;
    cells

let rec load st (addr : address) (regs : value array) : value =
  match addr with
  | Avar name -> (slot st name).(0)
  | Aindex (name, idx, _) ->
    let cells = slot st name in
    let i = Int64.to_int (as_int (operand_value st regs idx)) in
    if i < 0 || i >= Array.length cells then raise Trap;
    cells.(i)
  | Areg op -> (
    match operand_value st regs op with
    | VAddr (name, i) ->
      let cells = slot st name in
      if i < 0 || i >= Array.length cells then raise Trap;
      cells.(i)
    | VI 0L -> raise Trap
    | _ -> raise (Unsupported "load through a non-address value"))

and store st (addr : address) (regs : value array) (v : value) : unit =
  match addr with
  | Avar name -> (slot st name).(0) <- v
  | Aindex (name, idx, _) ->
    let cells = slot st name in
    let i = Int64.to_int (as_int (operand_value st regs idx)) in
    if i < 0 || i >= Array.length cells then raise Trap;
    cells.(i) <- v
  | Areg op -> (
    match operand_value st regs op with
    | VAddr (name, i) ->
      let cells = slot st name in
      if i < 0 || i >= Array.length cells then raise Trap;
      cells.(i) <- v
    | VI 0L -> raise Trap
    | _ -> raise (Unsupported "store through a non-address value"))

and operand_value st (regs : value array) (op : operand) : value =
  match op with
  | Reg r ->
    if r < Array.length regs then regs.(r)
    else raise (Unsupported "register out of range")
  | Imm v -> VI v
  | Fimm f -> VF f
  | Sym s ->
    (* address of a named slot *)
    ignore (slot st s);
    VAddr (s, 0)

let int_binop op a b =
  let open Int64 in
  let bool_ x = if x then 1L else 0L in
  match (op : Cparse.Ast.binop) with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Div -> if equal b 0L then raise Trap else div a b
  | Mod -> if equal b 0L then raise Trap else rem a b
  | Shl -> shift_left a (to_int (logand b 63L))
  | Shr -> shift_right a (to_int (logand b 63L))
  | Lt -> bool_ (compare a b < 0)
  | Gt -> bool_ (compare a b > 0)
  | Le -> bool_ (compare a b <= 0)
  | Ge -> bool_ (compare a b >= 0)
  | Eq -> bool_ (equal a b)
  | Ne -> bool_ (not (equal a b))
  | Band -> logand a b
  | Bxor -> logxor a b
  | Bor -> logor a b
  | Land -> bool_ ((not (equal a 0L)) && not (equal b 0L))
  | Lor -> bool_ ((not (equal a 0L)) || not (equal b 0L))

let float_binop op a b : value =
  let bool_ x = VI (if x then 1L else 0L) in
  match (op : Cparse.Ast.binop) with
  | Add -> VF (a +. b)
  | Sub -> VF (a -. b)
  | Mul -> VF (a *. b)
  | Div -> VF (a /. b)
  | Mod -> VF (Float.rem a b)
  | Lt -> bool_ (a < b)
  | Gt -> bool_ (a > b)
  | Le -> bool_ (a <= b)
  | Ge -> bool_ (a >= b)
  | Eq -> bool_ (a = b)
  | Ne -> bool_ (a <> b)
  | Land -> bool_ (a <> 0. && b <> 0.)
  | Lor -> bool_ (a <> 0. || b <> 0.)
  | (Shl | Shr | Band | Bxor | Bor) as op ->
    VI (int_binop op (Int64.of_float a) (Int64.of_float b))

(* Pointer arithmetic: address +/- byte offset scaled by the element size
   recorded in the addressing mode is approximated by element-count
   arithmetic (lowering multiplies indices by sizeof, so divide back at
   8-byte granularity like the lowered code uses). *)
let addr_arith op (name, i) k =
  match (op : Cparse.Ast.binop) with
  | Add -> VAddr (name, i + Int64.to_int k)
  | Sub -> VAddr (name, i - Int64.to_int k)
  | _ -> raise (Unsupported "pointer arithmetic")

let eval_binop op (a : value) (b : value) : value =
  match a, b with
  | VF x, _ | _, VF x ->
    ignore x;
    float_binop op (as_float a) (as_float b)
  | VAddr (n, i), VI k -> addr_arith op (n, i) k
  | VI k, VAddr (n, i) -> addr_arith op (n, i) k
  | VAddr (n1, i1), VAddr (n2, i2) -> (
    match op with
    | Sub when String.equal n1 n2 -> VI (Int64.of_int (i1 - i2))
    | Eq -> VI (if n1 = n2 && i1 = i2 then 1L else 0L)
    | Ne -> VI (if n1 = n2 && i1 = i2 then 0L else 1L)
    | _ -> raise (Unsupported "address-address arithmetic"))
  | VI x, VI y -> VI (int_binop op x y)

let eval_unop op (v : value) : value =
  match (op : Cparse.Ast.unop), v with
  | Neg, VF f -> VF (-.f)
  | Neg, v -> VI (Int64.neg (as_int v))
  | Uplus, v -> v
  | Bitnot, v -> VI (Int64.lognot (as_int v))
  | Lognot, VF f -> VI (if f = 0. then 1L else 0L)
  | Lognot, VAddr _ -> VI 0L
  | Lognot, v -> VI (if Int64.equal (as_int v) 0L then 1L else 0L)

let eval_cast (ty : Cparse.Ast.ty) (v : value) : value =
  match ty with
  | Cparse.Ast.Tfloat | Cparse.Ast.Tdouble -> VF (as_float v)
  | Cparse.Ast.Tbool -> VI (if Int64.equal (as_int v) 0L then 0L else 1L)
  | Cparse.Ast.Tint (Ichar, true) ->
    let x = Int64.to_int (as_int v) land 0xff in
    VI (Int64.of_int (if x land 0x80 <> 0 then x - 0x100 else x))
  | Cparse.Ast.Tint (Ichar, false) ->
    VI (Int64.of_int (Int64.to_int (as_int v) land 0xff))
  | Cparse.Ast.Tint (Ishort, true) ->
    let x = Int64.to_int (as_int v) land 0xffff in
    VI (Int64.of_int (if x land 0x8000 <> 0 then x - 0x10000 else x))
  | Cparse.Ast.Tint (Ishort, false) ->
    VI (Int64.of_int (Int64.to_int (as_int v) land 0xffff))
  | Cparse.Ast.Tint _ -> VI (as_int v)
  | Cparse.Ast.Tptr _ -> v
  | _ -> v

let call_builtin name (args : value list) : value =
  match name, args with
  | "abs", [ v ] -> VI (Int64.abs (as_int v))
  | "rand", [] -> VI 42L
  | "abort", _ -> raise Trap
  | _ -> raise (Unsupported ("builtin " ^ name))

let rec call_function st (f : func) (args : value list) : value =
  tick st;
  st.depth <- st.depth + 1;
  if st.depth > 100 then raise Out_of_fuel;
  (* bind arguments to parameter slots *)
  List.iteri
    (fun i slot_name ->
      let v = match List.nth_opt args i with Some v -> v | None -> VI 0L in
      (slot st slot_name).(0) <- v)
    f.fn_params;
  let regs = Array.make (f.fn_nregs + 1) (VI 0L) in
  let result = run_block st f regs (List.hd f.fn_blocks).b_label in
  st.depth <- st.depth - 1;
  result

and run_block st (f : func) (regs : value array) (label : label) : value =
  tick st;
  match block_of f label with
  | None -> raise (Unsupported (Fmt.str "missing block L%d" label))
  | Some b ->
    List.iter
      (fun i ->
        tick st;
        match i with
        | Ibin (op, r, a, bb) ->
          regs.(r) <-
            eval_binop op (operand_value st regs a) (operand_value st regs bb)
        | Iun (op, r, a) -> regs.(r) <- eval_unop op (operand_value st regs a)
        | Imov (r, a) -> regs.(r) <- operand_value st regs a
        | Icast (r, ty, a) -> regs.(r) <- eval_cast ty (operand_value st regs a)
        | Iload (r, addr) -> regs.(r) <- load st addr regs
        | Istore (addr, v) -> store st addr regs (operand_value st regs v)
        | Iaddr (r, addr) -> (
          match addr with
          | Avar name ->
            ignore (slot st name);
            regs.(r) <- VAddr (name, 0)
          | Aindex (name, idx, _) ->
            ignore (slot st name);
            regs.(r) <-
              VAddr (name, Int64.to_int (as_int (operand_value st regs idx)))
          | Areg op -> regs.(r) <- operand_value st regs op)
        | Icall (r, fname, args) -> (
          let vargs = List.map (operand_value st regs) args in
          let v =
            match
              List.find_opt
                (fun f -> String.equal f.fn_name fname)
                st.program.p_funcs
            with
            | Some callee -> call_function st callee vargs
            | None -> call_builtin fname vargs
          in
          match r with Some r -> regs.(r) <- v | None -> ()))
      b.b_instrs;
    (match b.b_term with
    | Tret None -> VI 0L
    | Tret (Some op) -> operand_value st regs op
    | Tjmp l -> run_block st f regs l
    | Tbr (c, lt, lf) ->
      let v = operand_value st regs c in
      let truthy =
        match v with
        | VI x -> not (Int64.equal x 0L)
        | VF x -> x <> 0.
        | VAddr _ -> true
      in
      run_block st f regs (if truthy then lt else lf)
    | Tswitch (c, cases, d) -> (
      let v = as_int (operand_value st regs c) in
      match List.assoc_opt v cases with
      | Some l -> run_block st f regs l
      | None -> run_block st f regs d)
    | Tunreachable -> raise Trap)

let run ?(fuel = 500_000) (p : program) : outcome =
  let st = { program = p; slots = Hashtbl.create 64; fuel; depth = 0 } in
  (* initialise global slots *)
  List.iter
    (fun g ->
      let init =
        if g.g_float then VF (Option.value ~default:0. g.g_finit)
        else VI (Option.value ~default:0L g.g_init)
      in
      Hashtbl.replace st.slots g.g_name
        (Array.make (max 1 g.g_size) init))
    p.p_globals;
  let finish exit trapped hang unsupported =
    { o_exit = exit; o_trapped = trapped; o_hang = hang; o_unsupported = unsupported }
  in
  match List.find_opt (fun f -> String.equal f.fn_name "main") p.p_funcs with
  | None -> finish 0 false false None
  | Some main -> (
    match call_function st main [] with
    | v -> finish (Int64.to_int (as_int v) land 0xff) false false None
    | exception Trap -> finish 134 true false None
    | exception Out_of_fuel -> finish 124 false true None
    | exception Unsupported what -> finish 0 false false (Some what))

let observable ?fuel (p : program) : (int * bool) option =
  let o = run ?fuel p in
  if o.o_hang || Option.is_some o.o_unsupported then None
  else Some (o.o_exit, o.o_trapped)
