(* AST to IR lowering ("IR generation" stage of the simulated compiler).

   Every lowering decision reports branch coverage keyed by node kind and
   type class, so coverage rewards structurally diverse inputs the way an
   instrumented gimplifier would. *)

open Cparse
open Ast
open Ir

exception Lower_error of string

type env = {
  cov : Coverage.t option;
  types : (int, ty) Hashtbl.t;
  mutable nregs : int;
  mutable nlabels : int;
  mutable blocks : block list;               (* reverse order *)
  mutable cur : block;
  pending : Ir.instr Engine.Vec.t;
      (* instructions of [cur], staged in the arena vector: blocks are
         built strictly sequentially (emit only ever targets [cur]), so
         one scratch vector serves the whole function and each block's
         instruction list is materialised once, when the block is sealed
         — the per-instruction [l @ [i]] append was O(n²) per block *)
  mutable scopes : (string * string) list list; (* name -> slot *)
  mutable slot_count : int;
  mutable loop_stack : (label * label) list; (* break, continue *)
  mutable named_labels : (string * label) list;
  mutable locals : global_slot list;         (* local slots for interp *)
  struct_fields : (string, field list) Hashtbl.t;
}

let ekind_tag (e : expr) =
  match e.ek with
  | Int_lit _ -> 1 | Float_lit _ -> 2 | Char_lit _ -> 3 | Str_lit _ -> 4
  | Ident _ -> 5 | Binop _ -> 6 | Unop _ -> 7 | Assign _ -> 8
  | Incdec _ -> 9 | Call _ -> 10 | Index _ -> 11 | Member _ -> 12
  | Arrow _ -> 13 | Deref _ -> 14 | Addrof _ -> 15 | Cast _ -> 16
  | Cond _ -> 17 | Comma _ -> 18 | Sizeof_expr _ -> 19 | Sizeof_ty _ -> 20
  | Init_list _ -> 21

let ty_tag = function
  | Tvoid -> 0 | Tbool -> 1
  | Tint (Ichar, _) -> 2 | Tint (Ishort, _) -> 3 | Tint (Iint, _) -> 4
  | Tint (Ilong, _) -> 5 | Tint (Ilonglong, _) -> 6
  | Tfloat -> 7 | Tdouble -> 8 | Tptr _ -> 9 | Tarray _ -> 10
  | Tstruct _ -> 11 | Tunion _ -> 12 | Tnamed _ -> 13 | Tfunc _ -> 14

let cov_event env site a b =
  match env.cov with
  | Some cov -> Coverage.branch3 cov site a b
  | None -> ()

(* [Hashtbl.hash op land 0xff], memoized by constant-constructor index:
   the polymorphic hash is a C call that instrumentation sites pay per
   binop otherwise.  Cross-domain init races write identical values. *)
let binop_hash_tags = Array.make 32 (-1)

let binop_hash_tag (op : Cparse.Ast.binop) =
  let i : int = Obj.magic op in
  let v = Array.unsafe_get binop_hash_tags i in
  if v >= 0 then v
  else begin
    let v = Hashtbl.hash op land 0xff in
    binop_hash_tags.(i) <- v;
    v
  end

let type_of env (e : expr) : ty =
  match Hashtbl.find_opt env.types e.eid with
  | Some t -> t
  | None -> Tint (Iint, true)

let fresh_reg env =
  env.nregs <- env.nregs + 1;
  env.nregs

let fresh_label env =
  env.nlabels <- env.nlabels + 1;
  env.nlabels

let emit env i = Engine.Vec.push env.pending i

(* Materialise [cur]'s staged instructions; nothing emits into a block
   after it is sealed. *)
let seal env =
  env.cur.b_instrs <- Engine.Vec.to_list env.pending;
  Engine.Vec.clear env.pending

let start_block env label =
  seal env;
  let b = { b_label = label; b_instrs = []; b_term = Tunreachable } in
  env.blocks <- b :: env.blocks;
  env.cur <- b

let terminate env term =
  if env.cur.b_term = Tunreachable then env.cur.b_term <- term

let push_scope env = env.scopes <- [] :: env.scopes
let pop_scope env =
  match env.scopes with _ :: rest -> env.scopes <- rest | [] -> ()

let declare_slot env name ~size ~is_float ~init =
  env.slot_count <- env.slot_count + 1;
  let slot = name ^ "." ^ string_of_int env.slot_count in
  (match env.scopes with
  | scope :: rest -> env.scopes <- ((name, slot) :: scope) :: rest
  | [] -> env.scopes <- [ [ (name, slot) ] ]);
  env.locals <- { g_name = slot; g_size = size; g_init = init; g_finit = None; g_float = is_float } :: env.locals;
  slot

let lookup_slot env name =
  let rec find = function
    | [] -> name (* global or unknown: use the bare name *)
    | scope :: rest -> (
      match List.assoc_opt name scope with
      | Some slot -> slot
      | None -> find rest)
  in
  find env.scopes

let named_label env name =
  match List.assoc_opt name env.named_labels with
  | Some l -> l
  | None ->
    let l = fresh_label env in
    env.named_labels <- (name, l) :: env.named_labels;
    l

(* ------------------------------------------------------------------ *)
(* Expression lowering                                                 *)
(* ------------------------------------------------------------------ *)

let elem_size_of env (base_ty : ty) =
  match base_ty with
  | Tarray (t, _) | Tptr t -> sizeof_ty t
  | _ -> ignore env; 8

(* Lower an expression to an operand. *)
let rec lower_expr env (e : expr) : operand =
  cov_event env 0x1000 (ekind_tag e) (ty_tag (type_of env e));
  match e.ek with
  | Int_lit (v, _, _) -> Imm v
  | Char_lit c -> Imm (Int64.of_int (Char.code c))
  | Float_lit (v, _) -> Fimm v
  | Str_lit s -> Sym ("str$" ^ string_of_int (Hashtbl.hash s land 0xffffff))
  | Ident n ->
    let r = fresh_reg env in
    emit env (Iload (r, Avar (lookup_slot env n)));
    Reg r
  | Binop ((Land | Lor) as op, _, _) -> lower_short_circuit env op e
  | Binop (op, a, b) ->
    let oa = lower_expr env a in
    let ob = lower_expr env b in
    let r = fresh_reg env in
    cov_event env 0x1100 (binop_hash_tag op) (ty_tag (type_of env a));
    emit env (Ibin (op, r, oa, ob));
    Reg r
  | Unop (op, a) ->
    let oa = lower_expr env a in
    let r = fresh_reg env in
    emit env (Iun (op, r, oa));
    Reg r
  | Assign (aop, lhs, rhs) ->
    let rv = lower_expr env rhs in
    let value =
      match aop with
      | A_none -> rv
      | _ ->
        let cur = lower_lvalue_load env lhs in
        let op =
          match aop with
          | A_add -> Add | A_sub -> Sub | A_mul -> Mul | A_div -> Div
          | A_mod -> Mod | A_shl -> Shl | A_shr -> Shr
          | A_band -> Band | A_bxor -> Bxor | A_bor -> Bor | A_none -> Add
        in
        let r = fresh_reg env in
        emit env (Ibin (op, r, cur, rv));
        Reg r
    in
    lower_store env lhs value;
    value
  | Incdec (inc, prefix, a) ->
    let old = lower_lvalue_load env a in
    let r = fresh_reg env in
    emit env (Ibin ((if inc then Add else Sub), r, old, Imm 1L));
    lower_store env a (Reg r);
    if prefix then Reg r else old
  | Call (f, args) ->
    let fname =
      match f.ek with
      | Ident n -> n
      | _ -> raise (Lower_error "indirect calls are not supported")
    in
    let oargs = List.map (lower_expr env) args in
    let callee_tag =
      if List.exists (fun (n, _) -> String.equal n fname) Typecheck.builtins
      then 32 + (Hashtbl.hash fname land 0x1f)
      else 1
    in
    cov_event env 0x1200 callee_tag (List.length args);
    let ret_ty = type_of env e in
    if is_void_ty ret_ty then begin
      emit env (Icall (None, fname, oargs));
      Imm 0L
    end
    else begin
      let r = fresh_reg env in
      emit env (Icall (Some r, fname, oargs));
      Reg r
    end
  | Index (a, i) -> (
    let oi = lower_expr env i in
    match base_slot env a with
    | Some (slot, esz) ->
      let r = fresh_reg env in
      emit env (Iload (r, Aindex (slot, oi, esz)));
      Reg r
    | None ->
      let oa = lower_expr env a in
      let scaled = fresh_reg env in
      emit env (Ibin (Mul, scaled, oi, Imm (Int64.of_int (elem_size_of env (type_of env a)))));
      let addr = fresh_reg env in
      emit env (Ibin (Add, addr, oa, Reg scaled));
      let r = fresh_reg env in
      emit env (Iload (r, Areg (Reg addr)));
      Reg r)
  | Member (a, fld) -> (
    match member_slot env a fld with
    | Some slot ->
      let r = fresh_reg env in
      emit env (Iload (r, Avar slot));
      Reg r
    | None ->
      let _ = lower_expr env a in
      Imm 0L)
  | Arrow (a, _fld) ->
    let oa = lower_expr env a in
    let r = fresh_reg env in
    cov_event env 0x1300 1 0;
    emit env (Iload (r, Areg oa));
    Reg r
  | Deref a ->
    let oa = lower_expr env a in
    let r = fresh_reg env in
    emit env (Iload (r, Areg oa));
    Reg r
  | Addrof a -> (
    match a.ek with
    | Ident n ->
      let r = fresh_reg env in
      emit env (Iaddr (r, Avar (lookup_slot env n)));
      Reg r
    | Index (b, i) -> (
      let oi = lower_expr env i in
      match base_slot env b with
      | Some (slot, esz) ->
        let r = fresh_reg env in
        emit env (Iaddr (r, Aindex (slot, oi, esz)));
        Reg r
      | None ->
        let ob = lower_expr env b in
        let r = fresh_reg env in
        emit env (Ibin (Add, r, ob, oi));
        Reg r)
    | Member (b, fld) -> (
      match member_slot env b fld with
      | Some slot ->
        let r = fresh_reg env in
        emit env (Iaddr (r, Avar slot));
        Reg r
      | None -> lower_expr env b)
    | Deref inner -> lower_expr env inner
    | _ ->
      let _ = lower_expr env a in
      Imm 0L)
  | Cast (ty, a) ->
    (match a.ek with
    | Init_list items ->
      (* compound literal: materialise into a fresh slot *)
      let slot =
        declare_slot env "cpd" ~size:(max 1 (List.length items))
          ~is_float:(is_float_ty ty) ~init:None
      in
      List.iteri
        (fun idx item ->
          match item.ek with
          | Init_list _ -> () (* nested braces of aggregates: ignored *)
          | _ ->
            let ov = lower_expr env item in
            emit env (Istore (Aindex (slot, Imm (Int64.of_int idx), 8), ov)))
        items;
      let r = fresh_reg env in
      emit env (Iload (r, Avar slot));
      Reg r
    | _ ->
      let oa = lower_expr env a in
      let r = fresh_reg env in
      cov_event env 0x1400 (ty_tag ty) (ty_tag (type_of env a));
      emit env (Icast (r, ty, oa));
      Reg r)
  | Cond (c, t, f) ->
    let slot = declare_slot env "cond" ~size:1 ~is_float:false ~init:None in
    let lt = fresh_label env and lf = fresh_label env and lj = fresh_label env in
    let oc = lower_expr env c in
    terminate env (Tbr (oc, lt, lf));
    start_block env lt;
    let ot = lower_expr env t in
    emit env (Istore (Avar slot, ot));
    terminate env (Tjmp lj);
    start_block env lf;
    let of_ = lower_expr env f in
    emit env (Istore (Avar slot, of_));
    terminate env (Tjmp lj);
    start_block env lj;
    let r = fresh_reg env in
    emit env (Iload (r, Avar slot));
    Reg r
  | Comma (a, b) ->
    let _ = lower_expr env a in
    lower_expr env b
  | Sizeof_expr a -> Imm (Int64.of_int (sizeof_ty (type_of env a)))
  | Sizeof_ty t -> Imm (Int64.of_int (sizeof_ty t))
  | Init_list _ -> Imm 0L

(* Short-circuit lowering of && and || in value position. *)
and lower_short_circuit env op (e : expr) : operand =
  match e.ek with
  | Binop (bop, a, b) ->
    let slot = declare_slot env "sc" ~size:1 ~is_float:false ~init:None in
    let lrhs = fresh_label env and lend = fresh_label env in
    let oa = lower_expr env a in
    let ra = fresh_reg env in
    emit env (Ibin (Ne, ra, oa, Imm 0L));
    emit env (Istore (Avar slot, Reg ra));
    (match bop with
    | Land -> terminate env (Tbr (Reg ra, lrhs, lend))
    | _ -> terminate env (Tbr (Reg ra, lend, lrhs)));
    start_block env lrhs;
    let ob = lower_expr env b in
    let rb = fresh_reg env in
    emit env (Ibin (Ne, rb, ob, Imm 0L));
    emit env (Istore (Avar slot, Reg rb));
    terminate env (Tjmp lend);
    start_block env lend;
    let r = fresh_reg env in
    emit env (Iload (r, Avar slot));
    ignore op;
    Reg r
  | _ -> Imm 0L

(* Resolve an expression denoting an array/pointer base to a named slot
   (element size included) when statically known. *)
and base_slot env (e : expr) : (string * int) option =
  match e.ek with
  | Ident n -> (
    match type_of env e with
    | Tarray (t, _) -> Some (lookup_slot env n, sizeof_ty t)
    | Tptr t -> ignore t; None
    | _ -> Some (lookup_slot env n, 8))
  | _ -> None

and member_slot env (e : expr) fld : string option =
  match e.ek with
  | Ident n -> Some (lookup_slot env n ^ "." ^ fld)
  | Member (inner, f2) ->
    Option.map (fun s -> s ^ "." ^ fld) (member_slot env inner f2)
  | _ -> None

and lower_lvalue_load env (e : expr) : operand = lower_expr env e

(* Store [value] into the lvalue [e]. *)
and lower_store env (e : expr) (value : operand) : unit =
  match e.ek with
  | Ident n -> emit env (Istore (Avar (lookup_slot env n), value))
  | Index (a, i) -> (
    let oi = lower_expr env i in
    match base_slot env a with
    | Some (slot, esz) -> emit env (Istore (Aindex (slot, oi, esz), value))
    | None ->
      let oa = lower_expr env a in
      let scaled = fresh_reg env in
      emit env
        (Ibin (Mul, scaled, oi, Imm (Int64.of_int (elem_size_of env (type_of env a)))));
      let addr = fresh_reg env in
      emit env (Ibin (Add, addr, oa, Reg scaled));
      emit env (Istore (Areg (Reg addr), value)))
  | Member (a, fld) -> (
    match member_slot env a fld with
    | Some slot -> emit env (Istore (Avar slot, value))
    | None -> ())
  | Arrow (a, _) | Deref a ->
    let oa = lower_expr env a in
    emit env (Istore (Areg oa, value))
  | Cast (_, inner) -> lower_store env inner value
  | Comma (_, b) -> lower_store env b value
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Statement lowering                                                  *)
(* ------------------------------------------------------------------ *)

let skind_tag (s : stmt) =
  match s.sk with
  | Sexpr _ -> 1 | Sdecl _ -> 2 | Sif _ -> 3 | Swhile _ -> 4 | Sdo _ -> 5
  | Sfor _ -> 6 | Sreturn _ -> 7 | Sbreak -> 8 | Scontinue -> 9
  | Sblock _ -> 10 | Sswitch _ -> 11 | Sgoto _ -> 12 | Slabel _ -> 13
  | Snull -> 14

let lower_decl env (v : var_decl) =
  let size, is_float =
    match v.v_ty with
    | Tarray (t, Some n) -> (n, is_float_ty t)
    | Tarray (t, None) -> (8, is_float_ty t)
    | Tstruct tag | Tunion tag -> (
      match Hashtbl.find_opt env.struct_fields tag with
      | Some fields ->
        (* declare per-field slots *)
        (List.length fields, false)
      | None -> (1, false))
    | t -> (1, is_float_ty t)
  in
  let slot = declare_slot env v.v_name ~size ~is_float ~init:None in
  (* struct fields get their own slots *)
  (match v.v_ty with
  | Tstruct tag | Tunion tag -> (
    match Hashtbl.find_opt env.struct_fields tag with
    | Some fields ->
      List.iter
        (fun f ->
          env.locals <-
            {
              g_name = slot ^ "." ^ f.fld_name;
              g_size = 1;
              g_init = None;
              g_finit = None;
              g_float = is_float_ty f.fld_ty;
            }
            :: env.locals)
        fields
    | None -> ())
  | _ -> ());
  match v.v_init with
  | Some { ek = Init_list items; _ } ->
    List.iteri
      (fun idx item ->
        match item.ek with
        | Init_list _ -> ()
        | _ ->
          let ov = lower_expr env item in
          emit env (Istore (Aindex (slot, Imm (Int64.of_int idx), 8), ov)))
      items
  | Some init ->
    let ov = lower_expr env init in
    emit env (Istore (Avar slot, ov))
  | None ->
    (* zero-initialise so re-entering a declaration (e.g. in a loop body)
       observes a fresh variable, matching the reference interpreter *)
    let zero = if is_float then Fimm 0. else Imm 0L in
    if size = 1 then emit env (Istore (Avar slot, zero))
    else if size <= 64 then
      for i = 0 to size - 1 do
        emit env (Istore (Aindex (slot, Imm (Int64.of_int i), 8), zero))
      done

let rec lower_stmt env (s : stmt) : unit =
  cov_event env 0x2000 (skind_tag s) 0;
  match s.sk with
  | Sexpr e -> ignore (lower_expr env e)
  | Sdecl vs -> List.iter (lower_decl env) vs
  | Snull -> ()
  | Sblock ss ->
    push_scope env;
    List.iter (lower_stmt env) ss;
    pop_scope env
  | Sif (c, t, f) ->
    let lt = fresh_label env and lj = fresh_label env in
    let lf = match f with Some _ -> fresh_label env | None -> lj in
    let oc = lower_expr env c in
    terminate env (Tbr (oc, lt, lf));
    start_block env lt;
    lower_stmt env t;
    terminate env (Tjmp lj);
    (match f with
    | Some f ->
      start_block env lf;
      lower_stmt env f;
      terminate env (Tjmp lj)
    | None -> ());
    start_block env lj
  | Swhile (c, b) ->
    let lhead = fresh_label env and lbody = fresh_label env and lend = fresh_label env in
    terminate env (Tjmp lhead);
    start_block env lhead;
    let oc = lower_expr env c in
    terminate env (Tbr (oc, lbody, lend));
    start_block env lbody;
    env.loop_stack <- (lend, lhead) :: env.loop_stack;
    lower_stmt env b;
    env.loop_stack <- List.tl env.loop_stack;
    terminate env (Tjmp lhead);
    start_block env lend
  | Sdo (b, c) ->
    let lbody = fresh_label env and lcond = fresh_label env and lend = fresh_label env in
    terminate env (Tjmp lbody);
    start_block env lbody;
    env.loop_stack <- (lend, lcond) :: env.loop_stack;
    lower_stmt env b;
    env.loop_stack <- List.tl env.loop_stack;
    terminate env (Tjmp lcond);
    start_block env lcond;
    let oc = lower_expr env c in
    terminate env (Tbr (oc, lbody, lend));
    start_block env lend
  | Sfor (init, cond, step, b) ->
    push_scope env;
    (match init with
    | Some (Fi_expr e) -> ignore (lower_expr env e)
    | Some (Fi_decl vs) -> List.iter (lower_decl env) vs
    | None -> ());
    let lhead = fresh_label env and lbody = fresh_label env in
    let lstep = fresh_label env and lend = fresh_label env in
    terminate env (Tjmp lhead);
    start_block env lhead;
    (match cond with
    | Some c ->
      let oc = lower_expr env c in
      terminate env (Tbr (oc, lbody, lend))
    | None -> terminate env (Tjmp lbody));
    start_block env lbody;
    env.loop_stack <- (lend, lstep) :: env.loop_stack;
    lower_stmt env b;
    env.loop_stack <- List.tl env.loop_stack;
    terminate env (Tjmp lstep);
    start_block env lstep;
    (match step with Some e -> ignore (lower_expr env e) | None -> ());
    terminate env (Tjmp lhead);
    start_block env lend;
    pop_scope env
  | Sreturn e ->
    let op = Option.map (lower_expr env) e in
    terminate env (Tret op);
    start_block env (fresh_label env)
  | Sbreak -> (
    match env.loop_stack with
    | (lend, _) :: _ ->
      terminate env (Tjmp lend);
      start_block env (fresh_label env)
    | [] -> ())
  | Scontinue -> (
    match env.loop_stack with
    | (_, lcont) :: _ ->
      terminate env (Tjmp lcont);
      start_block env (fresh_label env)
    | [] -> ())
  | Sswitch (e, cases) ->
    let oe = lower_expr env e in
    let lend = fresh_label env in
    let case_labels =
      List.map (fun _ -> fresh_label env) cases
    in
    let jumps = ref [] and default = ref lend in
    List.iteri
      (fun i c ->
        List.iter
          (function
            | L_case ce -> (
              match Const_eval.eval_int ce with
              | Some v -> jumps := (v, List.nth case_labels i) :: !jumps
              | None -> ())
            | L_default -> default := List.nth case_labels i)
          c.case_labels)
      cases;
    cov_event env 0x2100 (List.length cases) 0;
    terminate env (Tswitch (oe, List.rev !jumps, !default));
    (* a switch introduces a break target but keeps the enclosing loop's
       continue target *)
    let cont =
      match env.loop_stack with (_, c) :: _ -> c | [] -> lend
    in
    env.loop_stack <- (lend, cont) :: env.loop_stack;
    List.iteri
      (fun i c ->
        start_block env (List.nth case_labels i);
        push_scope env;
        List.iter (lower_stmt env) c.case_body;
        pop_scope env;
        (* fall through to the next case *)
        let next =
          if i + 1 < List.length cases then List.nth case_labels (i + 1)
          else lend
        in
        terminate env (Tjmp next))
      cases;
    env.loop_stack <- List.tl env.loop_stack;
    start_block env lend
  | Sgoto name ->
    terminate env (Tjmp (named_label env name));
    start_block env (fresh_label env)
  | Slabel (name, inner) ->
    let l = named_label env name in
    terminate env (Tjmp l);
    start_block env l;
    lower_stmt env inner

(* ------------------------------------------------------------------ *)
(* Function / program lowering                                         *)
(* ------------------------------------------------------------------ *)

let lower_function ?cov ~types ~struct_fields (fd : fundef) : func * global_slot list =
  let entry = { b_label = 0; b_instrs = []; b_term = Tunreachable } in
  let pending = (Scratch.get ()).Scratch.instrs in
  Engine.Vec.clear pending;
  let env =
    {
      cov;
      types;
      nregs = 0;
      nlabels = 0;
      blocks = [ entry ];
      cur = entry;
      pending;
      scopes = [ [] ];
      slot_count = 0;
      loop_stack = [];
      named_labels = [];
      locals = [];
      struct_fields;
    }
  in
  (* parameters become named slots *)
  let param_slots =
    List.map
      (fun p ->
        declare_slot env p.p_name ~size:1
          ~is_float:(is_float_ty p.p_ty)
          ~init:None)
      fd.f_params
  in
  List.iter (lower_stmt env) fd.f_body;
  terminate env (Tret (if is_void_ty fd.f_ret then None else Some (Imm 0L)));
  seal env;
  let blocks = List.rev env.blocks in
  ( {
      fn_name = fd.f_name;
      fn_params = param_slots;
      fn_ret_void = is_void_ty fd.f_ret;
      fn_blocks = blocks;
      fn_nregs = env.nregs;
    },
    env.locals )

let lower_tu ?cov (tu : tu) (tc : Typecheck.result) : program =
  let struct_fields = Hashtbl.create 8 in
  List.iter
    (function
      | Gstruct (tag, fields) | Gunion (tag, fields) ->
        Hashtbl.replace struct_fields tag fields
      | _ -> ())
    tu.globals;
  let globals = ref [] in
  List.iter
    (function
      | Gvar v ->
        let size =
          match v.v_ty with
          | Tarray (_, Some n) -> n
          | Tarray (_, None) -> 8
          | _ -> 1
        in
        let init =
          match v.v_init with
          | Some e -> Const_eval.eval_int e
          | None -> Some 0L
        in
        let finit =
          match v.v_init with
          | Some { ek = Float_lit (f, _); _ } -> Some f
          | Some e -> Option.map Int64.to_float (Const_eval.eval_int e)
          | None -> Some 0.
        in
        globals :=
          {
            g_name = v.v_name;
            g_size = size;
            g_init = init;
            g_finit = finit;
            g_float = is_float_ty v.v_ty;
          }
          :: !globals;
        (* struct globals also get field slots *)
        (match v.v_ty with
        | Tstruct tag | Tunion tag -> (
          match Hashtbl.find_opt struct_fields tag with
          | Some fields ->
            List.iter
              (fun f ->
                globals :=
                  {
                    g_name = v.v_name ^ "." ^ f.fld_name;
                    g_size = 1;
                    g_init = Some 0L;
                    g_finit = Some 0.;
                    g_float = is_float_ty f.fld_ty;
                  }
                  :: !globals)
              fields
          | None -> ())
        | _ -> ())
      | _ -> ())
    tu.globals;
  let funcs = ref [] in
  List.iter
    (function
      | Gfun fd ->
        let f, locals =
          lower_function ?cov ~types:tc.Typecheck.r_types ~struct_fields fd
        in
        funcs := f :: !funcs;
        globals := locals @ !globals
      | _ -> ())
    tu.globals;
  { p_funcs = List.rev !funcs; p_globals = List.rev !globals }
