(** AST-to-IR lowering (the "IR generation" stage of the simulated
    compiler).

    Variables become named memory slots (one per declaration, so
    shadowing and loop-local re-declaration are handled by slot renaming),
    temporaries become virtual registers, control flow becomes basic
    blocks with explicit terminators, short-circuit operators and
    conditional expressions become branches.  Declarations without an
    initializer are zero-initialised so re-entering a declaration in a
    loop observes a fresh variable, matching the reference interpreter.

    Every lowering decision reports branch coverage keyed by node kind
    and type class. *)

exception Lower_error of string
(** Raised on constructs outside the lowering subset (indirect calls). *)

val ekind_tag : Cparse.Ast.expr -> int
(** Small integer tag per expression kind (coverage context). *)

val skind_tag : Cparse.Ast.stmt -> int

val ty_tag : Cparse.Ast.ty -> int

val binop_hash_tag : Cparse.Ast.binop -> int
(** [Hashtbl.hash op land 0xff], memoized per constructor — the
    allocation- and C-call-free spelling for per-node instrumentation. *)

val lower_tu :
  ?cov:Coverage.t -> Cparse.Ast.tu -> Cparse.Typecheck.result -> Ir.program
(** Lower a type-checked unit.  Local slots are registered in the
    program's slot table alongside globals (the IR interpreter's memory
    model). *)
