(* The per-domain compile arena.

   The compile pipeline used to allocate its working state afresh on
   every compile: an instruction list rebuilt per block in [Lower], a
   constant table per block in [Opt.constfold], liveness/assignment
   tables per function in [Backend.regalloc], and a [Buffer] per
   function/program/render.  None of that state survives a compile, so
   fuzz loops — hundreds of thousands of compiles per campaign — paid
   steady GC tax for structurally identical garbage.

   This module centralises those scratch structures in one record held
   in domain-local storage.  Tables are recycled with [Hashtbl.clear]
   (which keeps the grown bucket array, unlike [Hashtbl.reset]) and
   buffers with [Buffer.clear], so after warm-up the hot path allocates
   only what escapes the compile (the outcome itself).

   Determinism: every structure is fully cleared by its user before (or
   after) each use, so a warm arena and a cold one produce byte-identical
   output — [reset] exists so tests can pin that.  Each domain owns its
   arena; parallel campaign workers never share one. *)

type t = {
  (* Lower: per-block instruction staging (blocks are built strictly
     sequentially, so one vector serves the whole function). *)
  instrs : Ir.instr Engine.Vec.t;
  (* Opt: per-block constant table (constfold), per-function used-reg
     set (dce) and jump-threading/reachability tables (simplify-cfg). *)
  consts : (int, int64) Hashtbl.t;
  used : (int, unit) Hashtbl.t;
  forward : (int, int) Hashtbl.t;
  reach : (int, unit) Hashtbl.t;
  (* Backend: per-function live-interval endpoints and the vreg → phys
     assignment (array indexed by vreg; -2 = unassigned, -1 = spilled). *)
  live_first : (int, int) Hashtbl.t;
  live_last : (int, int) Hashtbl.t;
  mutable regmap : int array;
  (* Backend: whole-program assembly buffer. *)
  asm_buf : Buffer.t;
  (* Mutant rendering (Pretty/Fragility): one buffer per domain. *)
  render_buf : Buffer.t;
  (* Typecheck context reuse: the expression-id → type table threaded
     into [Typecheck.check ~types] by the compile hot path. *)
  types : (int, Cparse.Ast.ty) Hashtbl.t;
}

let create () =
  {
    instrs = Engine.Vec.create ();
    consts = Hashtbl.create 64;
    used = Hashtbl.create 256;
    forward = Hashtbl.create 64;
    reach = Hashtbl.create 64;
    live_first = Hashtbl.create 256;
    live_last = Hashtbl.create 256;
    regmap = Array.make 256 (-2);
    asm_buf = Buffer.create 4096;
    render_buf = Buffer.create 4096;
    types = Hashtbl.create 1024;
  }

let key : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let get () : t =
  let slot = Domain.DLS.get key in
  match !slot with
  | Some s -> s
  | None ->
    let s = create () in
    slot := Some s;
    s

(* Drop this domain's arena; the next [get] builds a cold one.  Lets the
   byte-identity tests compare warm-arena output against a fresh arena. *)
let reset () = Domain.DLS.get key := None

(* Ensure [regmap] covers vregs [1..n] and is filled with the unassigned
   sentinel over that range. *)
let regmap_for (s : t) (n : int) : int array =
  if Array.length s.regmap <= n then
    s.regmap <- Array.make (max (n + 1) (2 * Array.length s.regmap)) (-2)
  else Array.fill s.regmap 0 (n + 1) (-2);
  s.regmap

(* Render a translation unit through the recycled buffer: same bytes as
   [Pretty.tu_to_string], without per-render buffer growth garbage. *)
let render_tu (tu : Cparse.Ast.tu) : string =
  let s = get () in
  Buffer.clear s.render_buf;
  Cparse.Pretty.tu_to_buf s.render_buf tu;
  Buffer.contents s.render_buf
