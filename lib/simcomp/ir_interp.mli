(** IR interpreter.

    Executes the register-machine IR produced by {!Lower}, before or
    after optimizer passes.  Together with the AST-level {!Interp} this
    enables differential testing: for a deterministic program, the AST
    semantics, the freshly lowered IR, and the optimized IR must agree —
    the optimizer-soundness property exercised by the test suite.

    Scope: the integer/float scalar subset with named slots and arrays.
    Programs outside the subset report [o_unsupported] rather than a
    wrong answer. *)

exception Trap
exception Out_of_fuel
exception Unsupported of string

type value = VI of int64 | VF of float | VAddr of string * int

type outcome = {
  o_exit : int;              (** low 8 bits of [main]'s return value *)
  o_trapped : bool;          (** division by zero, OOB, null deref, abort *)
  o_hang : bool;             (** fuel exhausted *)
  o_unsupported : string option;
      (** the program used a feature outside the interpreter's subset *)
}

val run : ?fuel:int -> Ir.program -> outcome
(** Execute from [main] (default fuel 500_000). *)

val observable : ?fuel:int -> Ir.program -> (int * bool) option
(** The program's observable behaviour [(exit, trapped)], or [None] when
    the program hangs or falls outside the interpreter's subset.  The
    comparison key used by wrong-code detection and the per-pass
    differential check. *)
