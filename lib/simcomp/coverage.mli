(** Branch-coverage instrumentation for the simulated compilers.

    Each decision point in the pipeline reports a (site, context) pair —
    context captures what the real compiler's branch would depend on
    (node kind, type class, pass decision) — so coverage grows with
    program diversity the way instrumented GCC/Clang coverage does.

    The representation is an AFL-style edge map: a fixed byte array of
    [map_size] saturating 8-bit hit counters plus an exact total-hits
    count.  {!hit} is allocation-free (no boxing, no hashing of boxed
    tuples), {!covered} is O(1), and {!merge} is a single word-skipping
    scan whose return value is the accept signal of Algorithm 1. *)

type t
(** A mutable coverage map. *)

val map_bits : int
val map_size : int
(** The id space is [\[0, map_size)] ([1 lsl map_bits]). *)

val create : unit -> t
(** A zeroed map.  Allocates [map_size] bytes: fuzz loops should create
    one scratch map per campaign and {!reset} it per mutant rather than
    allocating per compile. *)

val hit : t -> int -> unit
(** Record one execution of branch [id mod map_size].  Performs no heap
    allocation (the benchmark's [coverage_hit_minor_words] pins this). *)

val branch : t -> site:int -> ?a:int -> ?b:int -> unit -> unit
(** Report a branch at [site] with contextual values [a], [b]; the id is
    an inlined integer mix of the triple (no tuple is built).  Each
    supplied optional argument boxes a [Some] at the call site (no
    flambda): fine for one-off sites, not for per-node loops. *)

val branch3 : t -> int -> int -> int -> unit
(** [branch3 cov site a b] = [branch cov ~site ~a ~b ()] without the
    optional-argument boxing — the allocation-free spelling for
    instrumentation that fires per token/node/instruction. *)

val covered : t -> int
(** Number of distinct branches covered.  O(1). *)

val total_hits : t -> int

val branch_ids : t -> int list
(** Covered ids in increasing order. *)

val merge : into:t -> t -> int
(** [merge ~into src] accumulates [src] (saturating per-cell) and
    returns the number of branches new to [into].  [merge ... > 0] is
    exactly {!has_new_coverage} computed in the same pass — fuzz loops
    should use this single call for both the accept decision and the
    accumulation. *)

val merge_consume : into:t -> t -> int
(** {!merge} fused with {!reset}: accumulates the second map into
    [into], zeroes the second map in the same word-skipping pass, and
    returns the fresh-branch count.  After the call the source map is
    pristine, so a scratch map cycled through [merge_consume] never
    needs an up-front {!reset} — the full-map memset collapses into
    zeroing only the words the compile touched. *)

val iter_nonzero : t -> (int -> unit) -> unit
(** Apply the callback to every covered cell index, in increasing
    order, skipping zero words.  For accept-time bookkeeping (corpus
    scheduling) that must run before the map is consumed. *)

val drain : t -> unit
(** {!reset} via the word-skipping scan: zero only the nonzero words.
    For paths that must read the scratch map between the merge and the
    re-zero (scheduling claims) and so cannot use {!merge_consume}. *)

val has_new_coverage : seen:t -> t -> bool
(** Does the second map cover a branch absent from [seen]?  Read-only
    variant of the {!merge} fresh test, for callers that must not
    accumulate. *)

val reset : t -> unit
(** Zero the map in place (no allocation), for scratch-map reuse. *)

val copy : t -> t

val equal : t -> t -> bool
(** Bit-for-bit map equality (plus hit/distinct counts): the
    checkpoint/resume identity check. *)
