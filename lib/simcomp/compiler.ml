(* The simulated compiler driver: front-end → IR generation →
   optimization → back-end, with branch-coverage instrumentation and the
   latent-bug database consulted at every stage boundary.

   Two compiler "products" share the pipeline but have distinct bug sets
   and distinct coverage-id salts (their code bases differ), so fuzzing
   GCC-sim and Clang-sim yields different coverage maps and crash sets,
   as in the paper's RQ1 setup. *)

open Cparse

type compiler = Bugdb.compiler = Gcc | Clang

type dump_ir = Dump_none | Dump_all | Dump_pass of string

type options = {
  opt_level : int;                (* 0..3; the paper uses -O2 *)
  disabled_passes : string list;  (* -fno-<pass> *)
  pass_list : string list option; (* -fpasses=a,b,c: explicit pipeline *)
  dump_ir : dump_ir;              (* -fdump-ir[=PASS]: snapshot IR around passes *)
}

let default_options =
  { opt_level = 2; disabled_passes = []; pass_list = None; dump_ir = Dump_none }

(* The ordered pass names the optimizer will run under [opts]. *)
let pipeline_of (opts : options) : string list =
  Opt.planned ?pass_list:opts.pass_list ~level:opts.opt_level
    ~disabled:opts.disabled_passes ()

type outcome =
  | Compiled of { asm : string; warnings : int; ir_size : int; spills : int }
  | Compile_error of string list
  | Crashed of Crash.t

let outcome_is_success = function Compiled _ -> true | _ -> false

let salt = function Gcc -> 0x5a5a00 | Clang -> 0xc1a600

let cov_event cov ~salt ~site ~a ~b =
  match cov with
  | Some cov -> Coverage.branch3 cov (site lxor salt) a b
  | None -> ()

(* Diagnostics mention user identifiers; a real compiler's branches do
   not depend on spelling, so identifier characters are stripped before
   hashing a message into a coverage id. *)
let sanitize_msg (msg : string) : string =
  let buf = Buffer.create (String.length msg) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
      | c -> Buffer.add_char buf c)
    msg;
  Buffer.contents buf

(* Front-end lexical coverage: token-kind bigrams (error-handling paths of
   the lexer are what byte-level fuzzers explore).  Takes the token array
   the parser already consumed — the source is lexed exactly once per
   compile. *)
(* The lexer branches on token *classes*, not identifier content.  The
   keyword and operator classes hash a constant constructor (resp. its
   spelling) — both deterministic per constructor, so the hashes are
   memoized by constant-constructor index instead of recomputed for
   every token of every compile.  Racing initializations across domains
   write the same value, so the unsynchronized arrays are benign. *)
let kw_lex_tags = Array.make 64 (-1)
let op_lex_tags = Array.make 64 (-1)

let lex_tag (t : Token.t) =
  match t with
  | Token.Ident _ -> 1
  | Token.Int_lit (v, _, _) -> 2 + (if Int64.compare v 256L < 0 then 0 else 1)
  | Token.Float_lit _ -> 4
  | Token.Char_lit _ -> 5
  | Token.Str_lit _ -> 6
  | Token.Kw k ->
    let i : int = Obj.magic k in
    let v = Array.unsafe_get kw_lex_tags i in
    if v >= 0 then v
    else begin
      let v = 8 + (Hashtbl.hash k land 0x1f) in
      kw_lex_tags.(i) <- v;
      v
    end
  | t ->
    (* every remaining constructor is constant (operators, punctuation,
       Eof), so its runtime representation is an immediate index *)
    let i : int = Obj.magic t in
    let v = Array.unsafe_get op_lex_tags i in
    if v >= 0 then v
    else begin
      let v = 48 + (Hashtbl.hash (Token.to_string t) land 0x7) in
      op_lex_tags.(i) <- v;
      v
    end

let lex_coverage ?limit cov ~salt (toks : Lexer.lexeme array) : unit =
  match cov with
  | None -> ()
  | Some _ ->
    (* a recursive-descent front-end stops lexing at the first parse
       error, so coverage beyond [limit] (the error offset) is never
       reached in reality *)
    let toks =
      match limit with
      | None -> toks
      | Some off ->
        let n = ref 0 in
        Array.iter
          (fun l ->
            if l.Lexer.loc.Loc.offset <= off then incr n)
          toks;
        Array.sub toks 0 (max 1 !n)
    in
    if Array.length toks > 1 then begin
      let prev = ref (lex_tag toks.(0).Lexer.tok) in
      for i = 1 to Array.length toks - 1 do
        let t = lex_tag toks.(i).Lexer.tok in
        cov_event cov ~salt ~site:0x100 ~a:!prev ~b:t;
        prev := t
      done
    end

(* The lexer's own error-handling path (malformed input). *)
let lex_error_coverage cov ~salt msg =
  cov_event cov ~salt ~site:0x110
    ~a:(Hashtbl.hash (sanitize_msg msg) land 0x1f)
    ~b:0

(* AST-shape coverage: parent/child node-kind pairs, as a proxy for the
   parser's and semantic analyzer's branch structure. *)
let ast_coverage cov ~salt (tu : Ast.tu) : unit =
  match cov with
  | None -> ()
  | Some _ ->
    let ek (e : Ast.expr) = Lower.ekind_tag e in
    let rec walk_expr parent (e : Ast.expr) =
      cov_event cov ~salt ~site:0x200 ~a:parent ~b:(ek e);
      let p = ek e in
      match e.ek with
      | Binop (op, a, b) ->
        cov_event cov ~salt ~site:0x210 ~a:(Lower.binop_hash_tag op) ~b:p;
        walk_expr p a;
        walk_expr p b
      | Unop (_, a) | Incdec (_, _, a) | Deref a | Addrof a | Cast (_, a)
      | Member (a, _) | Arrow (a, _) | Sizeof_expr a ->
        walk_expr p a
      | Assign (_, a, b) | Index (a, b) | Comma (a, b) ->
        walk_expr p a;
        walk_expr p b
      | Call (f, args) ->
        walk_expr p f;
        List.iter (walk_expr p) args
      | Cond (c, t, f) ->
        walk_expr p c;
        walk_expr p t;
        walk_expr p f
      | Init_list es -> List.iter (walk_expr p) es
      | Int_lit _ | Float_lit _ | Char_lit _ | Str_lit _ | Ident _
      | Sizeof_ty _ -> ()
    in
    let rec walk_stmt parent (s : Ast.stmt) =
      let tag = Lower.skind_tag s in
      cov_event cov ~salt ~site:0x220 ~a:parent ~b:tag;
      match s.sk with
      | Sexpr e -> walk_expr 0 e
      | Sdecl vs ->
        List.iter
          (fun (v : Ast.var_decl) ->
            cov_event cov ~salt ~site:0x230
              ~a:(Lower.ty_tag v.v_ty)
              ~b:(Bool.to_int v.v_quals.q_const lor (2 * Bool.to_int v.v_quals.q_volatile));
            Option.iter (walk_expr 0) v.v_init)
          vs
      | Sif (c, t, f) ->
        walk_expr 0 c;
        walk_stmt tag t;
        Option.iter (walk_stmt tag) f
      | Swhile (c, b) ->
        walk_expr 0 c;
        walk_stmt tag b
      | Sdo (b, c) ->
        walk_stmt tag b;
        walk_expr 0 c
      | Sfor (init, c, st, b) ->
        (match init with
        | Some (Fi_expr e) -> walk_expr 0 e
        | Some (Fi_decl vs) ->
          List.iter (fun (v : Ast.var_decl) -> Option.iter (walk_expr 0) v.v_init) vs
        | None -> ());
        Option.iter (walk_expr 0) c;
        Option.iter (walk_expr 0) st;
        walk_stmt tag b
      | Sreturn e -> Option.iter (walk_expr 0) e
      | Sblock ss -> List.iter (walk_stmt tag) ss
      | Sswitch (e, cases) ->
        walk_expr 0 e;
        List.iter
          (fun (c : Ast.switch_case) ->
            cov_event cov ~salt ~site:0x240
              ~a:(List.length c.case_labels)
              ~b:(List.length c.case_body land 0xf);
            List.iter (walk_stmt tag) c.case_body)
          cases
      | Sgoto _ | Slabel _ | Sbreak | Scontinue | Snull -> ()
    in
    List.iter
      (function
        | Ast.Gfun fd ->
          cov_event cov ~salt ~site:0x250
            ~a:(Lower.ty_tag fd.f_ret)
            ~b:(List.length fd.f_params);
          List.iter (walk_stmt 0) fd.f_body
        | Ast.Gvar v ->
          cov_event cov ~salt ~site:0x260 ~a:(Lower.ty_tag v.v_ty) ~b:0
        | Ast.Gstruct (_, fields) | Ast.Gunion (_, fields) ->
          cov_event cov ~salt ~site:0x270 ~a:(List.length fields) ~b:0
        | Ast.Gtypedef _ | Ast.Genum _ | Ast.Gproto _ ->
          cov_event cov ~salt ~site:0x280 ~a:1 ~b:0)
      tu.globals

(* Semantic-path coverage: pairwise combinations of program features.

   A real compiler's deep branches fire on *conjunctions* of semantic
   properties (a const-qualified buffer AND a self-referential sprintf; a
   decreasing loop AND an accumulation chain).  We model that directly:
   every pair of feature buckets is a potential branch.  Closed-grammar
   generators saturate this space quickly because they can never set the
   rare features; semantic-aware mutators keep opening new pairs. *)
let feature_coverage cov ~salt (a : Features.ast) : unit =
  match cov with
  | None -> ()
  | Some _ ->
    let bucket n =
      if n <= 0 then 0
      else if n <= 2 then 1
      else if n <= 5 then 2
      else if n <= 10 then 3
      else if n <= 20 then 4
      else 5
    in
    let b v = if v then 1 else 0 in
    let feats =
      [|
        b a.has_const_qual; b a.has_volatile_qual; b a.has_const_write_warning;
        b a.has_void_fn_with_labels; b a.has_labels_no_return;
        b a.has_decreasing_loop; b a.has_zero_init_decreasing_loop;
        b a.has_scalar_accum_chain; b a.has_sprintf_self; b a.has_struct_cast;
        b a.has_compound_literal; b a.has_ptr_arith_cast_chain;
        b a.has_fallthrough; b a.has_empty_loop_body; b a.has_shift_overflow;
        b a.has_div_by_literal_zero; b a.has_uninit_use; b a.has_recursion;
        b a.has_variadic_call; b a.has_array_param;
        bucket a.n_gotos; bucket a.n_labels; bucket a.n_commas;
        bucket a.max_cast_chain; bucket a.max_loop_depth;
        bucket a.max_switch_cases; bucket a.max_call_args;
        bucket a.n_conds; bucket a.n_ptr_ops; bucket a.n_switches;
        bucket a.n_casts; bucket a.n_incdec;
      |]
    in
    let n = Array.length feats in
    for i = 0 to n - 1 do
      if feats.(i) > 0 then
        for j = i + 1 to n - 1 do
          cov_event cov ~salt ~site:0x500
            ~a:((i * 64) + feats.(i))
            ~b:((j * 64) + feats.(j))
        done
    done

let diag_coverage cov ~salt (diags : Typecheck.diag list) : unit =
  List.iter
    (fun (d : Typecheck.diag) ->
      cov_event cov ~salt ~site:0x300
        ~a:(Hashtbl.hash (sanitize_msg d.msg) land 0xfff)
        ~b:(match d.sev with Typecheck.Error -> 1 | Typecheck.Warning -> 0))
    diags

(* Deterministically corrupt the optimized IR the way a wrong-code bug
   would: the first subtraction in the largest function gets its operands
   swapped (a classic reassociation-style miscompilation). *)
let miscompile_ir (mc : Bugdb.miscompile) (prog : Ir.program) : unit =
  ignore mc;
  let budget = ref 3 in
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          if !budget > 0 then
            b.Ir.b_instrs <-
              List.map
                (fun i ->
                  match i with
                  | Ir.Ibin (Cparse.Ast.Sub, r, a, bb) when !budget > 0 ->
                    decr budget;
                    Ir.Ibin (Cparse.Ast.Sub, r, bb, a)
                  | i -> i)
                b.Ir.b_instrs)
        f.Ir.fn_blocks)
    prog.Ir.p_funcs

(* ------------------------------------------------------------------ *)
(* Optimizer stage                                                     *)
(* ------------------------------------------------------------------ *)

(* One executed pipeline step, as recorded by [compile_passes]. *)
type pass_step = {
  st_pass : string;
  st_index : int;                 (* position in the executed pipeline *)
  st_changes : int;
  st_ir_before : string option;   (* per [options.dump_ir] *)
  st_ir_after : string option;
  st_diverged : bool option;
      (* with [verify]: does the IR's observable behaviour after this
         pass differ from the pre-opt IR's?  [None] when either run
         falls outside the interpreter's subset. *)
}

type pass_trace = {
  pt_steps : pass_step list;
  pt_reference : (int * bool) option;  (* pre-opt observable, with [verify] *)
  pt_first_divergent : string option;
  pt_program : Ir.program;
}

let interp_fuel = 1_000_000

(* Per-pass optimizer counters (opt.pass.<name>.{runs,changes}),
   pre-resolved per context like [outcome_counters] below: the pipeline
   runs up to eight passes per compile, so per-pass registry lookups on
   the hot path would dwarf the passes themselves on small inputs.  The
   memo is domain-local, so parallel campaign workers never contend. *)
type pass_counters = {
  pc_runs : Engine.Metrics.counter;
  pc_changes : Engine.Metrics.counter;
}

let pass_counters_memo :
    (Engine.Ctx.t * (string, pass_counters) Hashtbl.t) option ref
    Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let pass_counters (ctx : Engine.Ctx.t) (name : string) : pass_counters =
  let memo = Domain.DLS.get pass_counters_memo in
  let tbl =
    match !memo with
    | Some (c, tbl) when c == ctx -> tbl
    | _ ->
      let tbl = Hashtbl.create 16 in
      memo := Some (ctx, tbl);
      tbl
  in
  match Hashtbl.find_opt tbl name with
  | Some k -> k
  | None ->
    let c suffix =
      Engine.Metrics.counter ctx.Engine.Ctx.metrics
        ("opt.pass." ^ name ^ suffix)
    in
    let k = { pc_runs = c ".runs"; pc_changes = c ".changes" } in
    Hashtbl.replace tbl name k;
    k

(* Run the optimizer pipeline over [prog]: per-pass engine accounting
   (spans + opt.pass.<name>.{runs,changes}), the culprit-keyed wrong-code
   injection, and optional per-step IR snapshots / differential checks.
   Shared by [compile_tu] (hot path: no [collect]) and [compile_passes]. *)
let run_opt_stage ?cov ?engine ?collect ?(verify = false)
    (compiler : compiler) (opts : options) (ast : Features.ast)
    (prog : Ir.program) : (string * int) list * (int * bool) option =
  let planned = pipeline_of opts in
  let mc =
    Bugdb.check_miscompile ~compiler ~opt_level:opts.opt_level
      ~pipeline:planned ~ast
  in
  let reference =
    if verify then Ir_interp.observable ~fuel:interp_fuel prog else None
  in
  let dump_wanted name =
    match opts.dump_ir with
    | Dump_none -> false
    | Dump_all -> true
    | Dump_pass p -> String.equal p name
  in
  let mc_applied = ref false in
  let pending_before = ref None in
  let instrument (pass : Opt.pass) execute =
    pending_before :=
      (if Option.is_some collect && dump_wanted pass.Opt.pass_name then
         Some (Ir.program_to_string prog)
       else None);
    Engine.Span.with_opt engine ~name:("opt.pass." ^ pass.Opt.pass_name)
      execute
  in
  let observer ~index ~pass ~changes p =
    let name = pass.Opt.pass_name in
    (match engine with
    | Some ctx ->
      let k = pass_counters ctx name in
      Engine.Metrics.incr k.pc_runs;
      if changes > 0 then Engine.Metrics.incr ~by:changes k.pc_changes
    | None -> ());
    (* a latent wrong-code bug is the culprit pass's own miscompilation:
       the corruption lands when that pass executes, so per-pass dumps
       and differential checks can localize it *)
    (match mc with
    | Some m when (not !mc_applied) && String.equal m.Bugdb.mc_culprit name ->
      mc_applied := true;
      miscompile_ir m p
    | _ -> ());
    match collect with
    | None -> ()
    | Some push ->
      let after =
        if dump_wanted name then Some (Ir.program_to_string p) else None
      in
      let diverged =
        match reference with
        | None -> None
        | Some r -> (
          match Ir_interp.observable ~fuel:interp_fuel p with
          | Some o -> Some (o <> r)
          | None -> None)
      in
      push
        {
          st_pass = name;
          st_index = index;
          st_changes = changes;
          st_ir_before = !pending_before;
          st_ir_after = after;
          st_diverged = diverged;
        }
  in
  let results =
    Opt.run_pipeline ?cov ~observer ~instrument ?pass_list:opts.pass_list
      ~level:opts.opt_level ~disabled:opts.disabled_passes prog
  in
  (results, reference)

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)
(* ------------------------------------------------------------------ *)

(* Crash stages and engine stages name the same pipeline boundaries. *)
let engine_stage = function
  | Crash.Front_end -> Engine.Event.Frontend
  | Crash.Ir_gen -> Engine.Event.Lower
  | Crash.Optimization -> Engine.Event.Opt
  | Crash.Back_end -> Engine.Event.Backend

(* Per-compile engine counters, resolved once per context instead of two
   string-keyed registry lookups (plus a name concatenation) per compile.
   The memo is domain-local: parallel campaign workers each own their
   context, so a one-slot cache per domain never sees contention and
   re-resolves only when the context changes. *)
type outcome_counters = {
  oc_total : Engine.Metrics.counter;
  oc_ok : Engine.Metrics.counter;
  oc_error : Engine.Metrics.counter;
  oc_crash : Engine.Metrics.counter;
  oc_cached : Engine.Metrics.counter;
}

let counters_memo : (Engine.Ctx.t * outcome_counters) option ref Domain.DLS.key
    =
  Domain.DLS.new_key (fun () -> ref None)

let outcome_counters (ctx : Engine.Ctx.t) : outcome_counters =
  let memo = Domain.DLS.get counters_memo in
  match !memo with
  | Some (c, k) when c == ctx -> k
  | _ ->
    let c name = Engine.Metrics.counter ctx.Engine.Ctx.metrics name in
    let outcome k = c ("compile.outcome." ^ Engine.Event.outcome_kind_to_string k) in
    let k =
      {
        oc_total = c "compile.total";
        oc_ok = outcome Engine.Event.Compiled_ok;
        oc_error = outcome Engine.Event.Compile_failed;
        oc_crash = outcome Engine.Event.Crashed;
        oc_cached = c "compile.cached";
      }
    in
    memo := Some (ctx, k);
    k

let record_outcome ?(cached = false) engine (outcome : outcome) =
  match engine with
  | None -> ()
  | Some ctx ->
    let kind, stage =
      match outcome with
      | Compiled _ -> (Engine.Event.Compiled_ok, Engine.Event.Backend)
      | Compile_error _ -> (Engine.Event.Compile_failed, Engine.Event.Frontend)
      | Crashed c -> (Engine.Event.Crashed, engine_stage c.Crash.stage)
    in
    let k = outcome_counters ctx in
    Engine.Metrics.incr k.oc_total;
    Engine.Metrics.incr
      (match kind with
      | Engine.Event.Compiled_ok -> k.oc_ok
      | Engine.Event.Compile_failed -> k.oc_error
      | Engine.Event.Crashed -> k.oc_crash);
    if cached then Engine.Metrics.incr k.oc_cached
    else begin
      (* cache hits replay a memoized outcome without compiling, so they
         don't advance the GC probe batch: minor-words-per-compile means
         per *real* compile *)
      match ctx.Engine.Ctx.probe with
      | Some p -> Engine.Probe.on_compile p
      | None -> ()
    end;
    Engine.Ctx.emit ctx (Engine.Event.Compile_finished (kind, stage))

(* The watchdog fuel barrier: a compile that would stall its worker
   (injected via the Compile_hang fault site; a real harness would kill
   the process on a wall-clock timeout) is recorded as a hang crash at
   a stable identity, instead of wedging the scheduler.  The outcome
   goes through [record_outcome] like any other crash so it lands in
   crash bucketing (Table 4) and the event stream. *)
let watchdog_outcome (compiler : compiler) : outcome =
  Crashed
    {
      bug_id = Fmt.str "%s-watchdog-timeout" (Bugdb.compiler_to_string compiler);
      stage = Crash.Optimization;
      kind = Crash.Hang;
      frames = [ "watchdog_timeout"; "compile_supervisor" ];
    }

let compile_tu ?cov ?engine ?faults (compiler : compiler) (opts : options)
    (src : string) : outcome * Cparse.Ast.tu option =
  match
    Option.map
      (fun f -> Engine.Faults.fire ?ctx:engine f Engine.Faults.Compile_hang)
      faults
  with
  | Some true ->
    Option.iter (fun ctx -> Engine.Ctx.incr ctx "compile.watchdog_hang") engine;
    let outcome = watchdog_outcome compiler in
    record_outcome engine outcome;
    (outcome, None)
  | _ ->
  let salt = salt compiler in
  let tx = Features.text_features src in
  let check ?executed stage ast =
    Bugdb.check ~compiler ~stage ~opt_level:opts.opt_level ?executed ~tx ~ast ()
  in
  let span name f = Engine.Span.with_opt engine ~name f in
  let parsed_tu = ref None in
  let outcome =
    try
      let frontend =
        span "compile.frontend" (fun () ->
            (* tokenize exactly once: the same array feeds the parser and
               lexical coverage (which, for parse errors, stops at the
               point where a real single-pass front-end would stop) *)
            match Lexer.tokenize src with
            | exception Lexer.Error (msg, _loc) ->
              lex_error_coverage cov ~salt msg;
              check Crash.Front_end None;
              cov_event cov ~salt ~site:0x120
                ~a:(Hashtbl.hash (sanitize_msg msg) land 0x1f)
                ~b:0;
              Error [ msg ]
            | toks -> (
              let parsed =
                match Parser.parse_tokens toks with
                | tu -> Ok tu
                | exception Parser.Error (msg, loc) -> Error (msg, Some loc)
                | exception Stack_overflow ->
                  Error ("parser stack overflow", None)
              in
              match parsed with
              | Error (msg, loc) ->
                lex_coverage ?limit:(Option.map (fun l -> l.Loc.offset) loc)
                  cov ~salt toks;
                check Crash.Front_end None;
                cov_event cov ~salt ~site:0x120
                  ~a:(Hashtbl.hash (sanitize_msg msg) land 0x1f)
                  ~b:0;
                Error [ msg ]
              | Ok tu ->
                parsed_tu := Some tu;
                lex_coverage cov ~salt toks;
                ast_coverage cov ~salt tu;
                let ast = Features.ast_features tu in
                feature_coverage cov ~salt ast;
                check Crash.Front_end (Some ast);
                (* the expression-type table is recycled from the arena:
                   [tc] does not outlive this compile (lowering is its
                   last reader) *)
                let tc = Typecheck.check ~types:(Scratch.get ()).Scratch.types tu in
                diag_coverage cov ~salt tc.r_diags;
                if not tc.r_ok then
                  Error
                    (List.map Typecheck.diag_to_string (Typecheck.errors tc))
                else Ok (tu, tc, ast)))
      in
      match frontend with
      | Error msgs -> Compile_error msgs
      | Ok (tu, tc, ast) ->
        let warnings = List.length (Typecheck.warnings tc) in
        (* IR generation *)
        let prog =
          span "compile.lower" (fun () ->
              let prog = Lower.lower_tu ?cov tu tc in
              check Crash.Ir_gen (Some ast);
              prog)
        in
        (* optimization: the stage runner handles per-pass accounting
           and the culprit-keyed wrong-code injection *)
        span "compile.opt" (fun () ->
            let results, _ =
              run_opt_stage ?cov ?engine compiler opts ast prog
            in
            let executed = List.map fst results in
            Bugdb.check_passes ~compiler ~executed ~ast;
            check ~executed Crash.Optimization (Some ast));
        (* back-end *)
        let asm, spills =
          span "compile.backend" (fun () ->
              let r = Backend.emit_program ?cov prog in
              check Crash.Back_end (Some ast);
              r)
        in
        Compiled { asm; warnings; ir_size = Ir.program_size prog; spills }
    with
    | Crash.Compiler_crash c -> Crashed c
    | Lexer.Error (msg, _) ->
      check Crash.Front_end None;
      Compile_error [ "lex error: " ^ msg ]
    | Stack_overflow ->
      Crashed
        {
          bug_id =
            Fmt.str "%s-stack-overflow" (Bugdb.compiler_to_string compiler);
          stage = Crash.Front_end;
          kind = Crash.Segfault;
          frames = [ "recursive_descent"; "parse_expression" ];
        }
  in
  record_outcome engine outcome;
  (outcome, !parsed_tu)

let compile ?cov ?engine ?faults (compiler : compiler) (opts : options)
    (src : string) : outcome =
  fst (compile_tu ?cov ?engine ?faults compiler opts src)

(* Run the pipeline step by step, recording each executed pass: change
   counts, IR snapshots per [opts.dump_ir], and (with [verify]) a
   per-pass differential check against the pre-opt IR semantics.  Like
   [compile_ir] this is crash-free — the observation channel for
   wrong-code triage must not be masked by seeded ICEs. *)
let compile_passes ?(verify = false) (compiler : compiler) (opts : options)
    (src : string) : (pass_trace, string) result =
  match Parser.parse src with
  | Error e -> Error e
  | Ok tu ->
    let tc = Typecheck.check tu in
    if not tc.Typecheck.r_ok then Error "type errors"
    else begin
      let ast = Features.ast_features tu in
      let prog = Lower.lower_tu tu tc in
      let steps = ref [] in
      let collect st = steps := st :: !steps in
      let _, reference =
        run_opt_stage ~collect ~verify compiler opts ast prog
      in
      let steps = List.rev !steps in
      let first_divergent =
        List.find_map
          (fun st ->
            match st.st_diverged with
            | Some true -> Some st.st_pass
            | _ -> None)
          steps
      in
      Ok
        {
          pt_steps = steps;
          pt_reference = reference;
          pt_first_divergent = first_divergent;
          pt_program = prog;
        }
    end

(* Produce the (possibly silently corrupted) optimized IR: the hook the
   EMI-style wrong-code detector (Fuzzing.Wrongcode) differences against
   the -O0 lowering. *)
let compile_ir (compiler : compiler) (opts : options) (src : string) :
    (Ir.program, string) result =
  Result.map (fun tr -> tr.pt_program) (compile_passes compiler opts src)

(* Sample a random command line the way the macro fuzzer does.  The pass
   universe comes from the registry, so a newly registered pass joins
   option fuzzing automatically. *)
let random_options (rng : Rng.t) : options =
  let opt_level = Rng.int rng 4 in
  let disabled_passes =
    List.filter (fun _ -> Rng.flip rng 0.15) (Opt.pass_names ())
  in
  { default_options with opt_level; disabled_passes }

let options_to_string (o : options) =
  Fmt.str "-O%d%s%s%s" o.opt_level
    (String.concat ""
       (List.map (fun p -> " -fno-" ^ p) o.disabled_passes))
    (match o.pass_list with
    | None -> ""
    | Some l -> " -fpasses=" ^ String.concat "," l)
    (match o.dump_ir with
    | Dump_none -> ""
    | Dump_all -> " -fdump-ir"
    | Dump_pass p -> " -fdump-ir=" ^ p)

(* ------------------------------------------------------------------ *)
(* Mutant dedup cache                                                  *)
(* ------------------------------------------------------------------ *)

(* The pipeline is deterministic in (compiler, options, source), and the
   fragility model frequently re-renders byte-identical mutants, so a
   repeated source can skip the whole compile.

   The table is keyed by a cheap 64-bit FNV-1a fingerprint of the mutant
   source (mixed with a per-(compiler, options) salt), consulted *before*
   any key construction: the old full-text key concatenated
   compiler+options+source into a fresh string — a source-sized
   allocation plus a full-string hash — on every probe, hits included.
   Soundness is unchanged: each fingerprint bucket stores the exact
   (compiler, options, source) triple and a probe compares all three, so
   a fingerprint collision falls back to the exact key and at worst
   costs a bucket walk, never a wrong outcome.  The table is dropped
   wholesale when it reaches capacity (the working set of a fuzz run is
   recent mutants; an LRU would buy little over epoch clearing). *)

type cache_entry = {
  ce_compiler : compiler;
  ce_opts : options;
  ce_src : string;
  ce_outcome : outcome;
}

(* The source fingerprint is injectable so tests can force collisions
   (e.g. a constant fingerprint) and pin the exact-key fallback.  A
   variant rather than a bare closure: the default case must survive
   [Marshal] inside checkpoint snapshots. *)
type fingerprint_fn = Fp_default | Fp_custom of (string -> int)

type cache = {
  c_tbl : (int, cache_entry list) Hashtbl.t;
  c_capacity : int;
  c_fingerprint : fingerprint_fn;
  mutable c_len : int; (* total entries across buckets *)
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_collisions : int; (* probes that had to walk past a bucket *)
}

let cache_create ?(capacity = 2048) ?fingerprint () =
  {
    c_tbl = Hashtbl.create 256;
    c_capacity = max 1 capacity;
    c_fingerprint =
      (match fingerprint with None -> Fp_default | Some f -> Fp_custom f);
    c_len = 0;
    c_hits = 0;
    c_misses = 0;
    c_collisions = 0;
  }

let cache_hits c = c.c_hits
let cache_misses c = c.c_misses
let cache_collisions c = c.c_collisions

(* FNV-1a over the source bytes in native-int arithmetic (wraps mod
   2^63): one pass, no allocation. *)
let fp_source (s : string) : int =
  let h = ref 0x3bf29ce484222325 in
  for i = 0 to String.length s - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * 0x100000001b3
  done;
  !h

(* The per-(compiler, options) salt — precomputed once per batch so the
   per-mutant cost is the source scan alone. *)
let fp_salt (compiler : compiler) (opts : options) : int =
  let ctag = match compiler with Gcc -> 0x9e01 | Clang -> 0x3c75 in
  (Hashtbl.hash opts * 0x9E3779B1) lxor (ctag * 0x85EBCA77)

let fp_of cache ~salt src =
  let base =
    match cache.c_fingerprint with
    | Fp_default -> fp_source src
    | Fp_custom f -> f src
  in
  base lxor salt

let entry_matches (compiler : compiler) (opts : options) (src : string)
    (e : cache_entry) =
  e.ce_compiler = compiler && String.equal e.ce_src src && e.ce_opts = opts

(* The shared cached-compile core: [fp] is the already-salted
   fingerprint. *)
let cached_compile ~cache ~fp ?cov ?engine ?faults (compiler : compiler)
    (opts : options) (src : string) : outcome * Cparse.Ast.tu option =
  let bucket = Hashtbl.find_opt cache.c_tbl fp in
  let hit =
    match bucket with
    | None -> None
    | Some entries -> List.find_opt (entry_matches compiler opts src) entries
  in
  match hit with
  | Some e ->
    cache.c_hits <- cache.c_hits + 1;
    (* A byte-identical source was already compiled: its outcome is
       deterministic and its coverage map is identical to the first
       run's, so recording into [cov] is skipped — any map the caller
       previously merged that coverage into already subsumes it, making
       the fresh-branch count 0 either way.  Engine accounting is still
       replayed so compile.total/compile.outcome.* match an uncached
       run exactly. *)
    record_outcome ~cached:true engine e.ce_outcome;
    (e.ce_outcome, None)
  | None ->
    cache.c_misses <- cache.c_misses + 1;
    (match bucket with
    | Some _ ->
      (* fingerprint collision (or same source under other options):
         the exact-key comparison above kept the probe sound *)
      cache.c_collisions <- cache.c_collisions + 1
    | None -> ());
    (* the fault draw happens only on real compiles (a cache hit replays
       the memoized outcome, injected hang included), so a pathological
       mutant is pathological every time it is seen *)
    let outcome, tu = compile_tu ?cov ?engine ?faults compiler opts src in
    if cache.c_len >= cache.c_capacity then begin
      Hashtbl.reset cache.c_tbl;
      cache.c_len <- 0
    end;
    let prev =
      match Hashtbl.find_opt cache.c_tbl fp with Some l -> l | None -> []
    in
    Hashtbl.replace cache.c_tbl fp
      ({ ce_compiler = compiler; ce_opts = opts; ce_src = src;
         ce_outcome = outcome }
       :: prev);
    cache.c_len <- cache.c_len + 1;
    (outcome, tu)

let compile_cached ~cache ?cov ?engine ?faults (compiler : compiler)
    (opts : options) (src : string) : outcome * Cparse.Ast.tu option =
  let fp = fp_of cache ~salt:(fp_salt compiler opts) src in
  cached_compile ~cache ~fp ?cov ?engine ?faults compiler opts src

(* ------------------------------------------------------------------ *)
(* Batch compile sessions                                              *)
(* ------------------------------------------------------------------ *)

(* A fuzz loop compiles many mutants of one original under one
   (compiler, options) pair.  A batch pins that pair once: the
   fingerprint salt (an options traversal) is precomputed, the
   cov/engine/faults plumbing is bound up front instead of re-boxed per
   call, and every compile shares the cache — decisions are exactly
   those of [compile_cached] called with the same arguments (pinned by
   the batch-equivalence test). *)
type batch = {
  bt_cache : cache;
  bt_compiler : compiler;
  bt_opts : options;
  bt_salt : int;
  bt_cov : Coverage.t option;
  bt_engine : Engine.Ctx.t option;
  bt_faults : Engine.Faults.t option;
}

let batch_create ~cache ?cov ?engine ?faults (compiler : compiler)
    (opts : options) : batch =
  {
    bt_cache = cache;
    bt_compiler = compiler;
    bt_opts = opts;
    bt_salt = fp_salt compiler opts;
    bt_cov = cov;
    bt_engine = engine;
    bt_faults = faults;
  }

let batch_compile (b : batch) (src : string) : outcome * Cparse.Ast.tu option =
  let fp = fp_of b.bt_cache ~salt:b.bt_salt src in
  cached_compile ~cache:b.bt_cache ~fp ?cov:b.bt_cov ?engine:b.bt_engine
    ?faults:b.bt_faults b.bt_compiler b.bt_opts src
