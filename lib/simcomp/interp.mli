(** Reference interpreter for the C subset (AST level).

    Used by MetaMut's validation loop (mutants must run without crashing
    or hanging), by seed-generator sanity tests, and by differential
    property tests.  Execution is bounded by a fuel counter, so the
    interpreter itself always terminates. *)

type value =
  | VInt of int64
  | VFlt of float
  | VStr of string
  | VPtr of cell option
  | VArr of cell array
  | VStruct of (string, cell) Hashtbl.t

and cell = value ref

type outcome = {
  o_exit : int;      (** process exit code (0-255) *)
  o_output : string; (** everything written via printf/puts/putchar *)
  o_aborted : bool;  (** abort(), trap (division by zero, OOB, null deref) *)
  o_hang : bool;     (** ran out of fuel *)
  o_stack_overflow : bool;
      (** call depth exceeded 200 frames (or the host stack overflowed):
          a crash (exit 139), distinct from fuel exhaustion *)
}

val run : ?fuel:int -> Cparse.Ast.tu -> outcome
(** Execute from [main] (default fuel 200_000 ticks).  Builtins include
    printf/sprintf/puts/putchar/strlen/strcpy/strcmp/memset/memcpy/
    abort/exit/malloc/free/rand/abs; [rand] is deterministic by design. *)

val run_src : ?fuel:int -> string -> (outcome, string) result
(** Parse then {!run}. *)
