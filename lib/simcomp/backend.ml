(* Back-end of the simulated compiler: instruction selection to a small
   RISC-flavoured target, linear-scan register allocation over 8 physical
   registers, and assembly emission. *)

open Ir

type asm_instr = {
  mnemonic : string;
  operands : string list;
}

let phys_regs = 8

(* ------------------------------------------------------------------ *)
(* Instruction selection                                               *)
(* ------------------------------------------------------------------ *)

let mnemonic_of_binop (op : Cparse.Ast.binop) =
  match op with
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Mod -> "rem"
  | Shl -> "sll" | Shr -> "srl"
  | Lt -> "slt" | Gt -> "sgt" | Le -> "sle" | Ge -> "sge"
  | Eq -> "seq" | Ne -> "sne"
  | Band -> "and" | Bxor -> "xor" | Bor -> "or"
  | Land -> "andl" | Lor -> "orl"

(* String building here is hot (every operand of every instruction of
   every compile); plain concatenation avoids the Format machinery. *)
let vreg r = "v" ^ string_of_int r
let label l = "L" ^ string_of_int l

let sel_operand = function
  | Reg r -> vreg r
  | Imm v -> "#" ^ Int64.to_string v
  | Fimm f -> Printf.sprintf "#%g" f
  | Sym s -> "@" ^ s

let sel_addr = function
  | Avar s -> [ "@" ^ s ]
  | Aindex (s, op, sz) -> [ "@" ^ s; sel_operand op; string_of_int sz ]
  | Areg op -> [ sel_operand op ]

(* Select instructions for one IR instruction; reports the pattern used. *)
let select ?cov (i : instr) : asm_instr list =
  let event a b =
    match cov with
    | Some cov -> Coverage.branch cov ~site:0x4000 ~a ~b ()
    | None -> ()
  in
  match i with
  | Ibin (op, r, a, b) ->
    (* immediate forms when the second operand is a small constant *)
    let imm_form = match b with Imm v when Int64.abs v < 2048L -> true | _ -> false in
    let opk = function Reg _ -> 0 | Imm _ -> 1 | Fimm _ -> 2 | Sym _ -> 3 in
    event (Hashtbl.hash op land 0xff) ((4 * opk a) + opk b);
    let m = mnemonic_of_binop op ^ if imm_form then "i" else "" in
    [ { mnemonic = m; operands = [ vreg r; sel_operand a; sel_operand b ] } ]
  | Iun (op, r, a) ->
    event 200 (Hashtbl.hash op land 0xff);
    let m =
      match op with
      | Neg -> "neg" | Lognot -> "not" | Bitnot -> "inv" | Uplus -> "mov"
    in
    [ { mnemonic = m; operands = [ vreg r; sel_operand a ] } ]
  | Imov (r, a) ->
    event 201 0;
    [ { mnemonic = "mov"; operands = [ vreg r; sel_operand a ] } ]
  | Icast (r, ty, a) ->
    let tag = Lower.ty_tag ty in
    event 202 tag;
    let m =
      match ty with
      | Cparse.Ast.Tfloat | Cparse.Ast.Tdouble -> "cvtf"
      | Cparse.Ast.Tint (Ichar, _) -> "sext8"
      | Cparse.Ast.Tint (Ishort, _) -> "sext16"
      | _ -> "mov"
    in
    [ { mnemonic = m; operands = [ vreg r; sel_operand a ] } ]
  | Iload (r, addr) ->
    event 203 (match addr with Avar _ -> 0 | Aindex _ -> 1 | Areg _ -> 2);
    [ { mnemonic = "ld"; operands = vreg r :: sel_addr addr } ]
  | Istore (addr, v) ->
    event 204 (match addr with Avar _ -> 0 | Aindex _ -> 1 | Areg _ -> 2);
    [ { mnemonic = "st"; operands = sel_addr addr @ [ sel_operand v ] } ]
  | Iaddr (r, addr) ->
    event 205 0;
    [ { mnemonic = "lea"; operands = vreg r :: sel_addr addr } ]
  | Icall (r, fn, args) ->
    event 206 (List.length args);
    let setup =
      List.mapi
        (fun i a -> { mnemonic = "arg"; operands = [ string_of_int i; sel_operand a ] })
        args
    in
    setup
    @ [ { mnemonic = "call"; operands = [ fn ] } ]
    @ (match r with
      | Some r -> [ { mnemonic = "mov"; operands = [ vreg r; "rv" ] } ]
      | None -> [])

let select_term ?cov (t : terminator) : asm_instr list =
  let event a =
    match cov with
    | Some cov -> Coverage.branch cov ~site:0x4100 ~a ()
    | None -> ()
  in
  match t with
  | Tret None ->
    event 0;
    [ { mnemonic = "ret"; operands = [] } ]
  | Tret (Some op) ->
    event 1;
    [ { mnemonic = "mov"; operands = [ "rv"; sel_operand op ] };
      { mnemonic = "ret"; operands = [] } ]
  | Tjmp l ->
    event 2;
    [ { mnemonic = "jmp"; operands = [ label l ] } ]
  | Tbr (c, a, b) ->
    event 3;
    [ { mnemonic = "bnez"; operands = [ sel_operand c; label a ] };
      { mnemonic = "jmp"; operands = [ label b ] } ]
  | Tswitch (c, cases, d) ->
    (* dense case sets use a jump table, sparse ones a compare chain *)
    let dense =
      match cases with
      | [] -> false
      | _ ->
        let vs = List.map fst cases in
        let lo = List.fold_left min (List.hd vs) vs in
        let hi = List.fold_left max (List.hd vs) vs in
        Int64.to_int (Int64.sub hi lo) < 2 * List.length cases + 8
    in
    event (if dense then 4 else 5);
    if dense then
      [ { mnemonic = "jtab"; operands = sel_operand c :: List.map (fun (v, l) -> Int64.to_string v ^ ":" ^ label l) cases @ [ label d ] } ]
    else
      List.map
        (fun (v, l) ->
          { mnemonic = "beq"; operands = [ sel_operand c; "#" ^ Int64.to_string v; label l ] })
        cases
      @ [ { mnemonic = "jmp"; operands = [ label d ] } ]
  | Tunreachable ->
    event 6;
    [ { mnemonic = "trap"; operands = [] } ]

(* ------------------------------------------------------------------ *)
(* Linear-scan register allocation                                     *)
(* ------------------------------------------------------------------ *)

(* Compute live intervals of virtual registers over the linear instruction
   order, then allocate [phys_regs] registers; the rest spill. *)
let regalloc ?cov (f : func) : (int * int) list * int =
  (* returns (vreg -> phys or -1 for spill), spill count *)
  let first = Hashtbl.create 64 and last = Hashtbl.create 64 in
  let pos = ref 0 in
  let touch r =
    if not (Hashtbl.mem first r) then Hashtbl.replace first r !pos;
    Hashtbl.replace last r !pos
  in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          incr pos;
          Option.iter touch (dest i);
          List.iter touch (uses i))
        b.b_instrs;
      incr pos;
      List.iter touch (uses_of_term b.b_term))
    f.fn_blocks;
  let intervals =
    Hashtbl.fold
      (fun r s acc -> (r, s, Hashtbl.find last r) :: acc)
      first []
    |> List.sort (fun (_, s1, _) (_, s2, _) -> compare s1 s2)
  in
  let active = Array.make phys_regs (-1) (* expiry position *) in
  let assignment = ref [] in
  let spills = ref 0 in
  List.iter
    (fun (r, s, e) ->
      (* find a free or expired physical register *)
      let found = ref (-1) in
      Array.iteri (fun i expiry -> if !found < 0 && expiry < s then found := i) active;
      if !found >= 0 then begin
        active.(!found) <- e;
        assignment := (r, !found) :: !assignment
      end
      else begin
        incr spills;
        assignment := (r, -1) :: !assignment
      end)
    intervals;
  (match cov with
  | Some cov ->
    Coverage.branch cov ~site:0x4200 ~a:(min 31 !spills)
      ~b:(List.length intervals land 0xf) ();
    (* live-interval shape: length buckets per allocation order position *)
    List.iteri
      (fun i (_, s, e) ->
        if i < 64 then
          let len = e - s in
          let bucket =
            if len <= 2 then 0 else if len <= 8 then 1
            else if len <= 32 then 2 else if len <= 128 then 3 else 4
          in
          Coverage.branch cov ~site:0x4210 ~a:(i land 0x3f) ~b:bucket ())
      intervals
  | None -> ());
  (!assignment, !spills)

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let emit_function ?cov (f : func) : string * int =
  let assignment, spills = regalloc ?cov f in
  (* assoc-list lookups per operand are quadratic in the vreg count;
     index the assignment once *)
  let assigned = Hashtbl.create (List.length assignment) in
  List.iter (fun (vr, p) -> Hashtbl.replace assigned vr p) assignment;
  let rename s =
    if String.length s > 1 && s.[0] = 'v' then
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some vr -> (
        match Hashtbl.find_opt assigned vr with
        | Some p when p >= 0 -> "r" ^ string_of_int p
        | Some _ -> "[sp+" ^ string_of_int (vr * 8) ^ "]"
        | None -> s)
      | None -> s
    else s
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf f.fn_name;
  Buffer.add_string buf ":\n";
  List.iter
    (fun b ->
      Buffer.add_string buf ".L";
      Buffer.add_string buf (string_of_int b.b_label);
      Buffer.add_string buf ":\n";
      let emit a =
        (* "  %-6s %s\n" without the Format machinery *)
        Buffer.add_string buf "  ";
        Buffer.add_string buf a.mnemonic;
        for _ = String.length a.mnemonic to 5 do
          Buffer.add_char buf ' '
        done;
        Buffer.add_char buf ' ';
        List.iteri
          (fun i op ->
            if i > 0 then Buffer.add_string buf ", ";
            Buffer.add_string buf (rename op))
          a.operands;
        Buffer.add_char buf '\n'
      in
      List.iter (fun i -> List.iter emit (select ?cov i)) b.b_instrs;
      List.iter emit (select_term ?cov b.b_term))
    f.fn_blocks;
  (Buffer.contents buf, spills)

let emit_program ?cov (p : program) : string * int =
  let buf = Buffer.create 1024 in
  List.iter
    (fun g ->
      Buffer.add_string buf
        (".data " ^ g.g_name ^ " size=" ^ string_of_int g.g_size ^ " init="
        ^ (match g.g_init with Some v -> Int64.to_string v | None -> "0")
        ^ "\n"))
    p.p_globals;
  let total_spills = ref 0 in
  List.iter
    (fun f ->
      let asm, spills = emit_function ?cov f in
      total_spills := !total_spills + spills;
      Buffer.add_string buf asm)
    p.p_funcs;
  (Buffer.contents buf, !total_spills)
