(* Back-end of the simulated compiler: instruction selection to a small
   RISC-flavoured target, linear-scan register allocation over 8 physical
   registers, and assembly emission.

   Selection and emission are fused: operands are written straight into
   the arena's assembly buffer instead of materialising per-instruction
   [asm_instr] records with per-operand strings that were immediately
   re-parsed by the renaming step.  The emitted bytes (and every coverage
   event) are identical to the old two-phase pipeline — the scratch-reuse
   byte-identity test pins this. *)

open Ir

let phys_regs = 8

(* ------------------------------------------------------------------ *)
(* Mnemonics                                                           *)
(* ------------------------------------------------------------------ *)

let mnemonic_of_binop (op : Cparse.Ast.binop) =
  match op with
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Mod -> "rem"
  | Shl -> "sll" | Shr -> "srl"
  | Lt -> "slt" | Gt -> "sgt" | Le -> "sle" | Ge -> "sge"
  | Eq -> "seq" | Ne -> "sne"
  | Band -> "and" | Bxor -> "xor" | Bor -> "or"
  | Land -> "andl" | Lor -> "orl"

(* Immediate forms, pre-concatenated so the hot path never builds the
   mnemonic string ([m ^ "i"] per instruction). *)
let mnemonic_of_binop_imm (op : Cparse.Ast.binop) =
  match op with
  | Add -> "addi" | Sub -> "subi" | Mul -> "muli" | Div -> "divi"
  | Mod -> "remi"
  | Shl -> "slli" | Shr -> "srli"
  | Lt -> "slti" | Gt -> "sgti" | Le -> "slei" | Ge -> "sgei"
  | Eq -> "seqi" | Ne -> "snei"
  | Band -> "andi" | Bxor -> "xori" | Bor -> "ori"
  | Land -> "andli" | Lor -> "orli"

let phys_name = [| "r0"; "r1"; "r2"; "r3"; "r4"; "r5"; "r6"; "r7" |]

(* ------------------------------------------------------------------ *)
(* Linear-scan register allocation                                     *)
(* ------------------------------------------------------------------ *)

(* Compute live intervals of virtual registers over the linear instruction
   order, then allocate [phys_regs] registers; the rest spill.  Fills the
   arena's [regmap] (vreg → phys; -1 = spilled, -2 = untouched) and
   returns it with the spill count.

   The interval order — which drives both allocation under pressure and
   the 0x4210 coverage events — comes from [Hashtbl.fold] over [first],
   so it depends on that table's internal layout.  The arena recycles the
   table with [Hashtbl.reset] (not [clear]): reset restores the bucket
   array to its creation size, making the layout — and therefore the fold
   order — exactly that of the freshly created table the old code
   allocated per function. *)
let regalloc_into ?cov (s : Scratch.t) (f : func) : int array * int =
  let first = s.Scratch.live_first and last = s.Scratch.live_last in
  Hashtbl.reset first;
  Hashtbl.reset last;
  let pos = ref 0 in
  let touch r =
    if not (Hashtbl.mem first r) then Hashtbl.replace first r !pos;
    Hashtbl.replace last r !pos
  in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          incr pos;
          (* dest-then-uses visit order matches the list-building
             [dest]/[uses] spellings exactly *)
          iter_regs touch i)
        b.b_instrs;
      incr pos;
      iter_term_regs touch b.b_term)
    f.fn_blocks;
  let intervals =
    Hashtbl.fold
      (fun r s acc -> (r, s, Hashtbl.find last r) :: acc)
      first []
    |> List.sort (fun (_, s1, _) (_, s2, _) -> compare s1 s2)
  in
  let regmap = Scratch.regmap_for s f.fn_nregs in
  let active = Array.make phys_regs (-1) (* expiry position *) in
  let spills = ref 0 in
  List.iter
    (fun (r, s, e) ->
      (* find a free or expired physical register *)
      let found = ref (-1) in
      Array.iteri (fun i expiry -> if !found < 0 && expiry < s then found := i) active;
      if !found >= 0 then begin
        active.(!found) <- e;
        regmap.(r) <- !found
      end
      else begin
        incr spills;
        regmap.(r) <- -1
      end)
    intervals;
  (match cov with
  | Some cov ->
    Coverage.branch3 cov 0x4200 (min 31 !spills)
      (List.length intervals land 0xf);
    (* live-interval shape: length buckets per allocation order position *)
    List.iteri
      (fun i (_, s, e) ->
        if i < 64 then
          let len = e - s in
          let bucket =
            if len <= 2 then 0 else if len <= 8 then 1
            else if len <= 32 then 2 else if len <= 128 then 3 else 4
          in
          Coverage.branch3 cov 0x4210 (i land 0x3f) bucket)
      intervals
  | None -> ());
  (regmap, !spills)

let regalloc ?cov (f : func) : (int * int) list * int =
  let regmap, spills = regalloc_into ?cov (Scratch.get ()) f in
  let acc = ref [] in
  for r = f.fn_nregs downto 0 do
    if regmap.(r) <> -2 then acc := (r, regmap.(r)) :: !acc
  done;
  (!acc, spills)

(* ------------------------------------------------------------------ *)
(* Fused selection + emission                                          *)
(* ------------------------------------------------------------------ *)

(* Non-negative decimal straight into the buffer (no [string_of_int]
   intermediate; register/label/size numbers are never negative). *)
let rec add_pos_int buf n =
  if n >= 10 then add_pos_int buf (n / 10);
  Buffer.add_char buf (Char.unsafe_chr (48 + (n mod 10)))

let add_int buf n =
  if n < 0 then begin
    Buffer.add_char buf '-';
    add_pos_int buf (-n)
  end
  else add_pos_int buf n

let add_sep buf = Buffer.add_string buf ", "

(* "  %-6s " — the line prefix of one assembly instruction. *)
let start_instr buf m =
  Buffer.add_string buf "  ";
  Buffer.add_string buf m;
  for _ = String.length m to 5 do
    Buffer.add_char buf ' '
  done;
  Buffer.add_char buf ' '

let end_instr buf = Buffer.add_char buf '\n'

let add_label buf l =
  Buffer.add_char buf 'L';
  add_pos_int buf l

(* A vreg operand after renaming: physical name, spill slot, or (when the
   allocator never saw it) the virtual name itself. *)
let add_vreg buf regmap nregs r =
  let a =
    if r >= 0 && r <= nregs then regmap.(r) else -2
  in
  if a >= 0 then Buffer.add_string buf phys_name.(a)
  else if a = -1 then begin
    Buffer.add_string buf "[sp+";
    add_pos_int buf (r * 8);
    Buffer.add_char buf ']'
  end
  else begin
    Buffer.add_char buf 'v';
    add_pos_int buf r
  end

let add_operand buf regmap nregs (op : operand) =
  match op with
  | Reg r -> add_vreg buf regmap nregs r
  | Imm v ->
    Buffer.add_char buf '#';
    Buffer.add_string buf (Int64.to_string v)
  | Fimm f -> Buffer.add_string buf (Printf.sprintf "#%g" f)
  | Sym s ->
    Buffer.add_char buf '@';
    Buffer.add_string buf s

(* Address operands; [lead] prefixes a separator before the first one
   (they follow a destination register for ld/lea but open the operand
   list for st). *)
let add_addr buf regmap nregs ~lead (addr : address) =
  if lead then add_sep buf;
  match addr with
  | Avar s ->
    Buffer.add_char buf '@';
    Buffer.add_string buf s
  | Aindex (s, op, sz) ->
    Buffer.add_char buf '@';
    Buffer.add_string buf s;
    add_sep buf;
    add_operand buf regmap nregs op;
    add_sep buf;
    add_pos_int buf sz
  | Areg op -> add_operand buf regmap nregs op

(* The old pipeline renamed every operand *string*, so a call target that
   happens to parse as "v<int>" was renamed like a register; the emitted
   bytes replicate that quirk. *)
let add_maybe_vreg_string buf regmap nregs s =
  if String.length s > 1 && s.[0] = 'v' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some vr ->
      let a = if vr >= 0 && vr <= nregs then regmap.(vr) else -2 in
      if a >= 0 then Buffer.add_string buf phys_name.(a)
      else if a = -1 then begin
        Buffer.add_string buf "[sp+";
        add_pos_int buf (vr * 8);
        Buffer.add_char buf ']'
      end
      else Buffer.add_string buf s
    | None -> Buffer.add_string buf s
  else Buffer.add_string buf s

(* Select and emit one IR instruction; reports the pattern used. *)
let emit_instr ?cov buf regmap nregs (i : instr) : unit =
  let event a b =
    match cov with
    | Some cov -> Coverage.branch3 cov 0x4000 a b
    | None -> ()
  in
  match i with
  | Ibin (op, r, a, b) ->
    (* immediate forms when the second operand is a small constant *)
    let imm_form = match b with Imm v when Int64.abs v < 2048L -> true | _ -> false in
    let opk = function Reg _ -> 0 | Imm _ -> 1 | Fimm _ -> 2 | Sym _ -> 3 in
    event (Hashtbl.hash op land 0xff) ((4 * opk a) + opk b);
    let m = if imm_form then mnemonic_of_binop_imm op else mnemonic_of_binop op in
    start_instr buf m;
    add_vreg buf regmap nregs r;
    add_sep buf;
    add_operand buf regmap nregs a;
    add_sep buf;
    add_operand buf regmap nregs b;
    end_instr buf
  | Iun (op, r, a) ->
    event 200 (Hashtbl.hash op land 0xff);
    let m =
      match op with
      | Neg -> "neg" | Lognot -> "not" | Bitnot -> "inv" | Uplus -> "mov"
    in
    start_instr buf m;
    add_vreg buf regmap nregs r;
    add_sep buf;
    add_operand buf regmap nregs a;
    end_instr buf
  | Imov (r, a) ->
    event 201 0;
    start_instr buf "mov";
    add_vreg buf regmap nregs r;
    add_sep buf;
    add_operand buf regmap nregs a;
    end_instr buf
  | Icast (r, ty, a) ->
    let tag = Lower.ty_tag ty in
    event 202 tag;
    let m =
      match ty with
      | Cparse.Ast.Tfloat | Cparse.Ast.Tdouble -> "cvtf"
      | Cparse.Ast.Tint (Ichar, _) -> "sext8"
      | Cparse.Ast.Tint (Ishort, _) -> "sext16"
      | _ -> "mov"
    in
    start_instr buf m;
    add_vreg buf regmap nregs r;
    add_sep buf;
    add_operand buf regmap nregs a;
    end_instr buf
  | Iload (r, addr) ->
    event 203 (match addr with Avar _ -> 0 | Aindex _ -> 1 | Areg _ -> 2);
    start_instr buf "ld";
    add_vreg buf regmap nregs r;
    add_addr buf regmap nregs ~lead:true addr;
    end_instr buf
  | Istore (addr, v) ->
    event 204 (match addr with Avar _ -> 0 | Aindex _ -> 1 | Areg _ -> 2);
    start_instr buf "st";
    add_addr buf regmap nregs ~lead:false addr;
    add_sep buf;
    add_operand buf regmap nregs v;
    end_instr buf
  | Iaddr (r, addr) ->
    event 205 0;
    start_instr buf "lea";
    add_vreg buf regmap nregs r;
    add_addr buf regmap nregs ~lead:true addr;
    end_instr buf
  | Icall (r, fn, args) ->
    event 206 (List.length args);
    List.iteri
      (fun i a ->
        start_instr buf "arg";
        add_pos_int buf i;
        add_sep buf;
        add_operand buf regmap nregs a;
        end_instr buf)
      args;
    start_instr buf "call";
    add_maybe_vreg_string buf regmap nregs fn;
    end_instr buf;
    (match r with
    | Some r ->
      start_instr buf "mov";
      add_vreg buf regmap nregs r;
      add_sep buf;
      Buffer.add_string buf "rv";
      end_instr buf
    | None -> ())

let emit_term ?cov buf regmap nregs (t : terminator) : unit =
  let event a =
    match cov with
    | Some cov -> Coverage.branch3 cov 0x4100 a 0
    | None -> ()
  in
  match t with
  | Tret None ->
    event 0;
    start_instr buf "ret";
    end_instr buf
  | Tret (Some op) ->
    event 1;
    start_instr buf "mov";
    Buffer.add_string buf "rv";
    add_sep buf;
    add_operand buf regmap nregs op;
    end_instr buf;
    start_instr buf "ret";
    end_instr buf
  | Tjmp l ->
    event 2;
    start_instr buf "jmp";
    add_label buf l;
    end_instr buf
  | Tbr (c, a, b) ->
    event 3;
    start_instr buf "bnez";
    add_operand buf regmap nregs c;
    add_sep buf;
    add_label buf a;
    end_instr buf;
    start_instr buf "jmp";
    add_label buf b;
    end_instr buf
  | Tswitch (c, cases, d) ->
    (* dense case sets use a jump table, sparse ones a compare chain *)
    let dense =
      match cases with
      | [] -> false
      | _ ->
        let vs = List.map fst cases in
        let lo = List.fold_left min (List.hd vs) vs in
        let hi = List.fold_left max (List.hd vs) vs in
        Int64.to_int (Int64.sub hi lo) < 2 * List.length cases + 8
    in
    event (if dense then 4 else 5);
    if dense then begin
      start_instr buf "jtab";
      add_operand buf regmap nregs c;
      List.iter
        (fun (v, l) ->
          add_sep buf;
          Buffer.add_string buf (Int64.to_string v);
          Buffer.add_char buf ':';
          add_label buf l)
        cases;
      add_sep buf;
      add_label buf d;
      end_instr buf
    end
    else begin
      List.iter
        (fun (v, l) ->
          start_instr buf "beq";
          add_operand buf regmap nregs c;
          add_sep buf;
          Buffer.add_char buf '#';
          Buffer.add_string buf (Int64.to_string v);
          add_sep buf;
          add_label buf l;
          end_instr buf)
        cases;
      start_instr buf "jmp";
      add_label buf d;
      end_instr buf
    end
  | Tunreachable ->
    event 6;
    start_instr buf "trap";
    end_instr buf

(* ------------------------------------------------------------------ *)
(* Function / program emission                                         *)
(* ------------------------------------------------------------------ *)

let emit_function_into ?cov (s : Scratch.t) buf (f : func) : int =
  let regmap, spills = regalloc_into ?cov s f in
  let nregs = f.fn_nregs in
  Buffer.add_string buf f.fn_name;
  Buffer.add_string buf ":\n";
  List.iter
    (fun b ->
      Buffer.add_string buf ".L";
      add_pos_int buf b.b_label;
      Buffer.add_string buf ":\n";
      List.iter (fun i -> emit_instr ?cov buf regmap nregs i) b.b_instrs;
      emit_term ?cov buf regmap nregs b.b_term)
    f.fn_blocks;
  spills

let emit_function ?cov (f : func) : string * int =
  let buf = Buffer.create 256 in
  let spills = emit_function_into ?cov (Scratch.get ()) buf f in
  (Buffer.contents buf, spills)

let emit_program ?cov (p : program) : string * int =
  let s = Scratch.get () in
  let buf = s.Scratch.asm_buf in
  Buffer.clear buf;
  List.iter
    (fun g ->
      Buffer.add_string buf ".data ";
      Buffer.add_string buf g.g_name;
      Buffer.add_string buf " size=";
      add_int buf g.g_size;
      Buffer.add_string buf " init=";
      Buffer.add_string buf
        (match g.g_init with Some v -> Int64.to_string v | None -> "0");
      Buffer.add_char buf '\n')
    p.p_globals;
  let total_spills = ref 0 in
  List.iter
    (fun f -> total_spills := !total_spills + emit_function_into ?cov s buf f)
    p.p_funcs;
  (Buffer.contents buf, !total_spills)
