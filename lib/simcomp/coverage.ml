(* Branch-coverage instrumentation for the simulated compilers.

   Each decision point in the pipeline reports a (site, context) pair;
   context captures what the real compiler's branch would depend on (node
   kind, type class, pass decision...), so coverage grows with program
   diversity exactly as it does when fuzzing an instrumented GCC/Clang.

   The representation is AFL's edge map taken literally: a fixed byte
   array of [map_size] saturating 8-bit hit counters.  [hit] is a
   branch-predictable unboxed byte bump — no tuple, no [Hashtbl.hash],
   no heap traffic of any kind — because it fires thousands of times per
   compile (the feature-pair loop alone is O(n²) in feature buckets).
   The distinct-branch count is maintained incrementally so [covered]
   is O(1); [merge] is a word-at-a-time scan that skips the (almost
   always zero) empty stretches of the mutant's map and returns the
   fresh-branch count, which is Algorithm 1's acceptance signal. *)

type t = {
  map : Bytes.t;           (* map_size saturating 8-bit hit counters *)
  mutable hits : int;      (* total branch events, unsaturated *)
  mutable distinct : int;  (* number of nonzero cells *)
}

let map_bits = 20
let map_size = 1 lsl map_bits

let create () = { map = Bytes.make map_size '\000'; hits = 0; distinct = 0 }

let hit cov id =
  let i = id land (map_size - 1) in
  cov.hits <- cov.hits + 1;
  let c = Char.code (Bytes.unsafe_get cov.map i) in
  if c = 0 then cov.distinct <- cov.distinct + 1;
  if c < 255 then Bytes.unsafe_set cov.map i (Char.unsafe_chr (c + 1))

(* An integer mixer over the (site, a, b) triple: xmix/murmur-style
   multiply-shift rounds, entirely on immediates.  Replaces
   [Hashtbl.hash (site, a, b)], which boxed the triple on every event. *)
let[@inline] mix3 site a b =
  let h = site * 0x9E3779B1 in
  let h = (h lxor a) * 0x85EBCA77 in
  let h = (h lxor b) * 0xC2B2AE3D in
  let h = h lxor (h lsr 16) in
  let h = h * 0x27D4EB2F in
  h lxor (h lsr 13)

(* Report a branch at [site] with contextual values.  [branch3] is the
   hot-path spelling: without flambda, [branch]'s optional arguments box
   a [Some] per supplied value at every call site — thousands of events
   per compile, all allocating for nothing.  Instrumentation sites that
   fire per token/node/instruction must use [branch3]. *)
let branch3 cov site a b = hit cov (mix3 site a b)
let branch cov ~site ?(a = 0) ?(b = 0) () = branch3 cov site a b

let covered cov = cov.distinct

let total_hits cov = cov.hits

let branch_ids cov =
  let acc = ref [] in
  for i = map_size - 1 downto 0 do
    if Bytes.unsafe_get cov.map i <> '\000' then acc := i :: !acc
  done;
  !acc

let words = map_size / 8

(* Merge [src] into [dst] (the macro fuzzer's shared coverage map).
   Returns the number of branches new to [dst] — [fresh > 0] is the
   acceptance test of the paper's Algorithm 1, so callers need exactly
   one pass for both the accept decision and the accumulation. *)
let merge ~into:dst src =
  let fresh = ref 0 in
  for w = 0 to words - 1 do
    if Bytes.get_int64_ne src.map (w * 8) <> 0L then begin
      let base = w * 8 in
      for i = base to base + 7 do
        let s = Char.code (Bytes.unsafe_get src.map i) in
        if s <> 0 then begin
          let d = Char.code (Bytes.unsafe_get dst.map i) in
          if d = 0 then begin
            incr fresh;
            dst.distinct <- dst.distinct + 1
          end;
          let sum = d + s in
          Bytes.unsafe_set dst.map i
            (Char.unsafe_chr (if sum > 255 then 255 else sum))
        end
      done
    end
  done;
  dst.hits <- dst.hits + src.hits;
  !fresh

(* [merge] fused with the scratch-map reset: accumulate [src] into
   [dst] and zero [src] in the same word-skipping pass.  Fuzz loops
   reuse one scratch map per mutant; with this call the 1 MiB
   [Bytes.fill] that [reset] would do before every compile collapses
   into zeroing only the words the compile actually touched.  On return
   [src] is pristine (all-zero map, hits = distinct = 0). *)
let merge_consume ~into:dst src =
  let fresh = ref 0 in
  for w = 0 to words - 1 do
    let base = w * 8 in
    if Bytes.get_int64_ne src.map base <> 0L then begin
      for i = base to base + 7 do
        let s = Char.code (Bytes.unsafe_get src.map i) in
        if s <> 0 then begin
          let d = Char.code (Bytes.unsafe_get dst.map i) in
          if d = 0 then begin
            incr fresh;
            dst.distinct <- dst.distinct + 1
          end;
          let sum = d + s in
          Bytes.unsafe_set dst.map i
            (Char.unsafe_chr (if sum > 255 then 255 else sum))
        end
      done;
      Bytes.set_int64_ne src.map base 0L
    end
  done;
  dst.hits <- dst.hits + src.hits;
  src.hits <- 0;
  src.distinct <- 0;
  !fresh

(* Word-skipping iteration over covered cell indices, in increasing
   order.  The corpus scheduler uses this to update per-edge top-entry
   claims on accept without materializing [branch_ids]'s list. *)
let iter_nonzero cov f =
  for w = 0 to words - 1 do
    if Bytes.get_int64_ne cov.map (w * 8) <> 0L then begin
      let base = w * 8 in
      for i = base to base + 7 do
        if Bytes.unsafe_get cov.map i <> '\000' then f i
      done
    end
  done

(* [reset] with the word-skipping scan of [merge_consume]: zero only
   the words that are actually nonzero.  The scheduling path reads the
   scratch map after the merge (claim bookkeeping needs the mutant's own
   cells), so it cannot use [merge_consume]; this keeps the
   full-map-memset-per-mutant from coming back. *)
let drain cov =
  for w = 0 to words - 1 do
    let base = w * 8 in
    if Bytes.get_int64_ne cov.map base <> 0L then
      Bytes.set_int64_ne cov.map base 0L
  done;
  cov.hits <- 0;
  cov.distinct <- 0

(* Does [src] cover any branch absent from [dst]?  Same word-skipping
   scan as [merge] with an early exit; kept for read-only callers —
   accept-and-accumulate paths should use [merge]'s return instead. *)
let has_new_coverage ~seen:dst src =
  let rec go w =
    if w >= words then false
    else if Bytes.get_int64_ne src.map (w * 8) = 0L then go (w + 1)
    else begin
      let base = w * 8 in
      let found = ref false in
      for i = base to base + 7 do
        if
          Bytes.unsafe_get src.map i <> '\000'
          && Bytes.unsafe_get dst.map i = '\000'
        then found := true
      done;
      !found || go (w + 1)
    end
  in
  go 0

let reset cov =
  Bytes.fill cov.map 0 map_size '\000';
  cov.hits <- 0;
  cov.distinct <- 0

let copy cov = { map = Bytes.copy cov.map; hits = cov.hits; distinct = cov.distinct }

(* Exact structural equality, for the checkpoint/resume tests: a resumed
   run must reproduce the uninterrupted run's map bit-for-bit. *)
let equal a b =
  a.hits = b.hits && a.distinct = b.distinct && Bytes.equal a.map b.map
