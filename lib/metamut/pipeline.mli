(** The end-to-end MetaMut pipeline (Fig. 1): invention → implementation
    synthesis → validation and refinement, with per-step cost accounting
    (Tables 1-3). *)

type step_cost = {
  sc_tokens : int;
  sc_qa_rounds : int;
  sc_wait_s : float;     (** time awaiting LLM responses *)
  sc_prepare_s : float;  (** request preparation: compile/run/collect *)
}

val zero_cost : step_cost

type outcome =
  | Valid of Mutators.Mutator.t
  | Invalid_refinement
      (** did not survive validation goals #1-#6 within the repair budget *)
  | Invalid_manual of string
      (** survived the loop, rejected by the authors' review (§4.1) *)
  | System_error  (** API throttle / timeout *)

type run = {
  r_outcome : outcome;
  r_name : string;
  r_invention : step_cost;
  r_implementation : step_cost;
  r_bugfix : step_cost;
  r_bugs_fixed : (int * int) list;  (** validation goal -> fixes (Table 1) *)
}

val total_cost : run -> step_cost

val dollars_of_tokens : int -> float
(** GPT-4 pricing approximation (the paper's ~$0.50 per mutator). *)

type config = {
  max_repair_attempts : int;  (** the paper terminates after 27 *)
  unit_tests : int;           (** generated programs per test pool *)
  system_error_rate : float;  (** 24 of 100 invocations in §4 *)
  pool : Mutators.Mutator.t list;
      (** design space the oracle invents from *)
}

val default_config : config

val run_once :
  ?cfg:config -> ?engine:Engine.Ctx.t -> Llm_sim.t ->
  accepted_names:string list -> run
(** One full mutator-generation attempt.  With [engine]: per-step token
    and QA-round counters ([pipeline.tokens.*], [pipeline.qa_rounds.*]),
    outcome counters ([pipeline.outcome.*]), spans around invention,
    synthesis, validation, and each per-goal repair
    ([span.pipeline.goal<N>]), and a {!Engine.Event.Pipeline_goal} event
    per repair attempt. *)

val run_many :
  ?cfg:config -> ?seed:int -> ?engine:Engine.Ctx.t -> n:int -> unit ->
  run list
(** The §4 unsupervised experiment: [n] independent invocations
    (deterministic per [seed]; instrumentation does not consume RNG). *)

type summary = {
  s_runs : int;
  s_system_errors : int;
  s_valid : int;
  s_invalid_refinement : int;
  s_invalid_manual : int;
  s_bugs_fixed_by_goal : (int * int) list;
}

val summarize : run list -> summary

val stats : float list -> float * float * float * float
(** [(min, max, median, mean)] of a sample, as reported in Table 2. *)
