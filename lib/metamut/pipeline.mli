(** The end-to-end MetaMut pipeline (Fig. 1): invention → implementation
    synthesis → validation and refinement, with per-step cost accounting
    (Tables 1-3). *)

type step_cost = {
  sc_tokens : int;
  sc_qa_rounds : int;
  sc_wait_s : float;     (** time awaiting LLM responses *)
  sc_prepare_s : float;  (** request preparation: compile/run/collect *)
}

val zero_cost : step_cost

type outcome =
  | Valid of Mutators.Mutator.t
  | Invalid_refinement
      (** did not survive validation goals #1-#6 within the repair budget *)
  | Invalid_manual of string
      (** survived the loop, rejected by the authors' review (§4.1) *)
  | System_error  (** API throttle / timeout *)

type run = {
  r_outcome : outcome;
  r_name : string;
  r_invention : step_cost;
  r_implementation : step_cost;
  r_bugfix : step_cost;
  r_retry : step_cost;
      (** backoff waits after throttled attempts ([sc_wait_s] only) *)
  r_attempts : int;
      (** pipeline invocations made, including the terminal one *)
  r_bugs_fixed : (int * int) list;  (** validation goal -> fixes (Table 1) *)
}

val total_cost : run -> step_cost
(** Sums all four step costs, retry backoff included. *)

val dollars_of_tokens : int -> float
(** GPT-4 pricing approximation (the paper's ~$0.50 per mutator). *)

type config = {
  max_repair_attempts : int;  (** the paper terminates after 27 *)
  unit_tests : int;           (** generated programs per test pool *)
  system_error_rate : float;  (** 24 of 100 invocations in §4 *)
  retry : Engine.Retry.policy;
      (** backoff budget for [System_error]; [max_attempts = 1]
          restores the paper's no-retry behaviour *)
  faults : Engine.Faults.t option;
      (** extra [Llm_throttle] injection on top of the modelled rate *)
  pool : Mutators.Mutator.t list;
      (** design space the oracle invents from *)
}

val default_config : config
(** The paper's parameters plus {!Engine.Retry.default_policy}: with 4
    attempts at a 0.24 throttle rate, ~98.6 % of throttled invocations
    recover. *)

val run_once :
  ?cfg:config -> ?engine:Engine.Ctx.t -> Llm_sim.t ->
  accepted_names:string list -> run
(** One full mutator-generation invocation, retried through
    {!Engine.Retry} while it terminates in [System_error] (bounded by
    [cfg.retry]; jitter drawn from the session RNG, so runs reproduce
    from the seed; backoff waits are charged to [r_retry.sc_wait_s],
    not slept).  With [engine]: per-step token and QA-round counters
    ([pipeline.tokens.*], [pipeline.qa_rounds.*]), per-invocation
    outcome counters ([pipeline.outcome.*], including
    [.recovered_after_retry]), retry counters ([pipeline.retry.*]), a
    span per attempt ([span.pipeline.attempt]), spans around invention,
    synthesis, validation, and each per-goal repair
    ([span.pipeline.goal<N>]), and a {!Engine.Event.Pipeline_goal} event
    per repair attempt. *)

val run_many :
  ?cfg:config -> ?seed:int -> ?engine:Engine.Ctx.t -> n:int -> unit ->
  run list
(** The §4 unsupervised experiment: [n] independent invocations
    (deterministic per [seed]; instrumentation does not consume RNG). *)

type summary = {
  s_runs : int;
  s_system_errors : int;
  s_valid : int;
  s_invalid_refinement : int;
  s_invalid_manual : int;
  s_bugs_fixed_by_goal : (int * int) list;
}

val summarize : run list -> summary

val stats : float list -> float * float * float * float
(** [(min, max, median, mean)] of a sample, as reported in Table 2. *)
