(* The end-to-end MetaMut pipeline (Fig. 1): invention → synthesis →
   validation/refinement, with cost accounting per step.

   [run_once] performs one full mutator-generation attempt;
   [run_many] reproduces the 100-invocation unsupervised experiment of
   §4 (system errors included). *)

open Cparse

type step_cost = {
  sc_tokens : int;
  sc_qa_rounds : int;
  sc_wait_s : float;
  sc_prepare_s : float;
}

let zero_cost = { sc_tokens = 0; sc_qa_rounds = 0; sc_wait_s = 0.; sc_prepare_s = 0. }

let add_usage (c : step_cost) (u : Llm_sim.usage) =
  {
    sc_tokens = c.sc_tokens + Llm_sim.tokens u;
    sc_qa_rounds = c.sc_qa_rounds + 1;
    sc_wait_s = c.sc_wait_s +. u.Llm_sim.u_wait_s;
    sc_prepare_s = c.sc_prepare_s +. u.Llm_sim.u_prepare_s;
  }

type outcome =
  | Valid of Mutators.Mutator.t
  | Invalid_refinement     (* did not survive goals #1-#6 *)
  | Invalid_manual of string (* survived the loop, rejected by review *)
  | System_error           (* API throttle / timeout *)

type run = {
  r_outcome : outcome;
  r_name : string;
  r_invention : step_cost;
  r_implementation : step_cost;
  r_bugfix : step_cost;
  r_retry : step_cost; (* backoff waits after throttled attempts *)
  r_attempts : int;    (* pipeline invocations incl. the successful one *)
  r_bugs_fixed : (int * int) list; (* goal -> count *)
}

let total_cost (r : run) =
  let add a b =
    {
      sc_tokens = a.sc_tokens + b.sc_tokens;
      sc_qa_rounds = a.sc_qa_rounds + b.sc_qa_rounds;
      sc_wait_s = a.sc_wait_s +. b.sc_wait_s;
      sc_prepare_s = a.sc_prepare_s +. b.sc_prepare_s;
    }
  in
  add (add (add r.r_invention r.r_implementation) r.r_bugfix) r.r_retry

(* Price per 1k tokens approximating the paper's GPT-4 pricing (~$0.5 for
   a mean of ~8.6k tokens). *)
let dollars_of_tokens tokens = float_of_int tokens *. 0.0582 /. 1000.

type config = {
  max_repair_attempts : int; (* the paper terminates after 27 *)
  unit_tests : int;
  system_error_rate : float; (* 24 of 100 invocations in §4 *)
  retry : Engine.Retry.policy;
  faults : Engine.Faults.t option; (* extra Llm_throttle injection *)
  pool : Mutators.Mutator.t list;
}

(* The paper treats its 24 throttled invocations as dead; the default
   retry budget (4 attempts) recovers ~98.6% of them (1 - 0.24^3), which
   the recovery test pins at >= 80%.  [retry.max_attempts = 1] restores
   the paper's no-retry behaviour exactly. *)
let default_config =
  {
    max_repair_attempts = 27;
    unit_tests = 5;
    system_error_rate = 0.24;
    retry = Engine.Retry.default_policy;
    faults = None;
    pool = Mutators.Registry.unsupervised;
  }

(* Per-step token-cost accounting into the engine registry. *)
let charge engine step (u : Llm_sim.usage) =
  match engine with
  | None -> ()
  | Some ctx ->
    Engine.Ctx.incr ~by:(Llm_sim.tokens u) ctx ("pipeline.tokens." ^ step);
    Engine.Ctx.incr ctx ("pipeline.qa_rounds." ^ step)

(* One pipeline invocation as the paper performs it: may terminate in
   [System_error] (the modelled §4 throttle rate, plus any injected
   [Llm_throttle] faults).  Retry orchestration lives in [run_once]. *)
let attempt_once ~cfg ?engine (llm : Llm_sim.t)
    ~(accepted_names : string list) : run =
  let span name f = Engine.Span.with_opt engine ~name f in
  let rng = Rng.split llm.Llm_sim.rng in
  let throttled =
    (* both draws happen unconditionally, so the session-RNG and
       fault-harness stream positions advance identically per attempt *)
    let modelled = Rng.flip rng cfg.system_error_rate in
    let injected =
      match cfg.faults with
      | Some f -> Engine.Faults.fire ?ctx:engine f Engine.Faults.Llm_throttle
      | None -> false
    in
    modelled || injected
  in
  if throttled then
    {
      r_outcome = System_error;
      r_name = "<system-error>";
      r_invention = zero_cost;
      r_implementation = zero_cost;
      r_bugfix = zero_cost;
      r_retry = zero_cost;
      r_attempts = 1;
      r_bugs_fixed = [];
    }
  else begin
    (* step 1: invention *)
    let inv, u1 = span "pipeline.invent" (fun () -> Llm_sim.invent llm ~pool:cfg.pool) in
    charge engine "invention" u1;
    let invention = add_usage zero_cost u1 in
    (* step 2: synthesis *)
    let impl, u2 = span "pipeline.synthesize" (fun () -> Llm_sim.synthesize llm inv) in
    charge engine "implementation" u2;
    let implementation = add_usage zero_cost u2 in
    (* step 3: validation and refinement *)
    (* the unit-test pool; each refinement round validates against a
       fresh sample, like the paper's regenerated test cases *)
    let test_pool = Llm_sim.generate_tests llm ~count:cfg.unit_tests in
    let sample_tests () =
      List.filteri (fun i _ -> i < 8) (Rng.shuffle rng test_pool)
    in
    let tests = ref (sample_tests ()) in
    let bugfix = ref zero_cost in
    let fixed : (int, int) Hashtbl.t = Hashtbl.create 6 in
    let rec refine impl attempts real_repairs =
      match
        span "pipeline.validate" (fun () ->
            Validation.validate ~rng ~pool:test_pool impl !tests)
      with
      | Validation.Pass -> Some impl
      | Validation.Fail gv ->
        if attempts >= cfg.max_repair_attempts then None
        else begin
          let goal = gv.Validation.gv_goal in
          (* each validation goal gets its own repair span, so the
             metrics table shows where refinement time goes per goal *)
          let impl', usage, success =
            span
              (Fmt.str "pipeline.goal%d" goal)
              (fun () -> Llm_sim.fix llm impl ~goal)
          in
          charge engine "bugfix" usage;
          (match engine with
          | None -> ()
          | Some ctx ->
            (* per-goal repair outcomes as a counter family, so metrics
               snapshots show *which* validation goals resist fixing
               without replaying the event stream *)
            Engine.Ctx.incr ctx
              (Fmt.str "pipeline.goal.%s.%d"
                 (if success then "fixed" else "unfixed")
                 goal);
            Engine.Ctx.emit ctx (Engine.Event.Pipeline_goal (goal, success)));
          bugfix := add_usage !bugfix usage;
          if success then begin
            let g = gv.Validation.gv_goal in
            Hashtbl.replace fixed g
              (1 + Option.value ~default:0 (Hashtbl.find_opt fixed g))
          end;
          (* a *real* goal-5/6 failure (the intended mutator misbehaving
             on the concrete tests, not a flagged defect) is repaired by
             adjusting the implementation's checks and regenerating the
             unit tests; a few such repairs are allowed before giving up *)
          let real_failure =
            success && impl'.Llm_sim.im_defects = impl.Llm_sim.im_defects
          in
          if real_failure then begin
            if real_repairs >= 4 then None
            else begin
              tests := sample_tests ();
              refine impl' (attempts + 1) (real_repairs + 1)
            end
          end
          else refine impl' (attempts + 1) real_repairs
        end
    in
    let bugs_fixed () =
      Hashtbl.fold (fun g n acc -> (g, n) :: acc) fixed []
      |> List.sort compare
    in
    let r =
      match refine impl 0 0 with
    | None ->
      {
        r_outcome = Invalid_refinement;
        r_name = inv.Llm_sim.i_name;
        r_invention = invention;
        r_implementation = implementation;
        r_bugfix = !bugfix;
        r_retry = zero_cost;
        r_attempts = 1;
        r_bugs_fixed = bugs_fixed ();
      }
    | Some impl -> (
      match Validation.manual_review impl ~accepted_names with
      | Validation.Accepted -> (
        match impl.Llm_sim.im_invention.Llm_sim.i_intended with
        | Some m ->
          {
            r_outcome = Valid m;
            r_name = inv.Llm_sim.i_name;
            r_invention = invention;
            r_implementation = implementation;
            r_bugfix = !bugfix;
            r_retry = zero_cost;
            r_attempts = 1;
            r_bugs_fixed = bugs_fixed ();
          }
        | None ->
          {
            r_outcome = Invalid_manual "implementation does not match description";
            r_name = inv.Llm_sim.i_name;
            r_invention = invention;
            r_implementation = implementation;
            r_bugfix = !bugfix;
            r_retry = zero_cost;
            r_attempts = 1;
            r_bugs_fixed = bugs_fixed ();
          })
      | Validation.Rejected reason ->
        {
          r_outcome = Invalid_manual reason;
          r_name = inv.Llm_sim.i_name;
          r_invention = invention;
          r_implementation = implementation;
          r_bugfix = !bugfix;
          r_retry = zero_cost;
          r_attempts = 1;
          r_bugs_fixed = bugs_fixed ();
        })
    in
    r
  end

let outcome_key = function
  | Valid _ -> "valid"
  | Invalid_refinement -> "invalid_refinement"
  | Invalid_manual _ -> "invalid_manual"
  | System_error -> "system_error"

let run_once ?(cfg = default_config) ?engine (llm : Llm_sim.t)
    ~(accepted_names : string list) : run =
  let out =
    Engine.Retry.run ?ctx:engine ~name:"pipeline.retry" cfg.retry
      ~retryable:(fun r -> r.r_outcome = System_error)
      (* jitter comes from the session RNG, so faulted runs reproduce
         bit-for-bit from the seed *)
      ~jitter:(fun () -> Rng.float llm.Llm_sim.rng)
      (fun ~attempt:_ ->
        Engine.Span.with_opt engine ~name:"pipeline.attempt" (fun () ->
            attempt_once ~cfg ?engine llm ~accepted_names))
  in
  let r =
    {
      out.Engine.Retry.value with
      r_attempts = out.Engine.Retry.attempts;
      r_retry = { zero_cost with sc_wait_s = out.Engine.Retry.waited_s };
    }
  in
  (match engine with
  | None -> ()
  | Some ctx ->
    (* outcome counters count *invocations*, not attempts — transient
       throttles surface under pipeline.retry.* instead, and a run that
       needed retries to complete is also counted as recovered *)
    Engine.Ctx.incr ctx ("pipeline.outcome." ^ outcome_key r.r_outcome);
    if out.Engine.Retry.recovered then
      Engine.Ctx.incr ctx "pipeline.outcome.recovered_after_retry");
  r

(* The §4 unsupervised experiment: invoke the pipeline [n] times. *)
let run_many ?(cfg = default_config) ?(seed = 7) ?engine ~(n : int) () :
    run list =
  let llm = Llm_sim.create ~seed () in
  let accepted = ref [] in
  List.init n (fun _ ->
      let r = run_once ~cfg ?engine llm ~accepted_names:!accepted in
      (match r.r_outcome with
      | Valid m -> accepted := m.Mutators.Mutator.name :: !accepted
      | _ -> ());
      r)

(* ------------------------------------------------------------------ *)
(* Aggregates for Tables 1-3                                           *)
(* ------------------------------------------------------------------ *)

type summary = {
  s_runs : int;
  s_system_errors : int;
  s_valid : int;
  s_invalid_refinement : int;
  s_invalid_manual : int;
  s_bugs_fixed_by_goal : (int * int) list;
}

let summarize (runs : run list) : summary =
  let by_goal = Hashtbl.create 6 in
  List.iter
    (fun r ->
      List.iter
        (fun (g, n) ->
          Hashtbl.replace by_goal g
            (n + Option.value ~default:0 (Hashtbl.find_opt by_goal g)))
        r.r_bugs_fixed)
    runs;
  {
    s_runs = List.length runs;
    s_system_errors =
      List.length (List.filter (fun r -> r.r_outcome = System_error) runs);
    s_valid =
      List.length
        (List.filter (fun r -> match r.r_outcome with Valid _ -> true | _ -> false) runs);
    s_invalid_refinement =
      List.length (List.filter (fun r -> r.r_outcome = Invalid_refinement) runs);
    s_invalid_manual =
      List.length
        (List.filter
           (fun r -> match r.r_outcome with Invalid_manual _ -> true | _ -> false)
           runs);
    s_bugs_fixed_by_goal =
      List.init 6 (fun i ->
          (i + 1, Option.value ~default:0 (Hashtbl.find_opt by_goal (i + 1))));
  }

(* Distribution statistics over per-run values, as in Table 2. *)
let stats (values : float list) : float * float * float * float =
  match List.sort compare values with
  | [] -> (0., 0., 0., 0.)
  | sorted ->
    let n = List.length sorted in
    let min_v = List.hd sorted in
    let max_v = List.nth sorted (n - 1) in
    let median = List.nth sorted (n / 2) in
    let mean = List.fold_left ( +. ) 0. sorted /. float_of_int n in
    (min_v, max_v, median, mean)
