(** Markdown builders for the post-run [campaign-report.md]: headings,
    pipe tables, fenced code blocks, bullet lists.  Strings in, string
    out — no model types, so any layer can render a report. *)

val heading : ?level:int -> string -> string
(** [heading ~level t] (default level 2), newline-terminated. *)

val paragraph : string -> string

val code_block : ?lang:string -> string -> string
(** Fenced block; the body gains a trailing newline if it lacks one. *)

val bullet : string list -> string

val table : header:string list -> string list list -> string
(** GitHub pipe table: first column left-aligned, the rest right-
    aligned; ['|'] in cells is escaped. *)

(** {2 Document accumulation} *)

type doc

val doc : unit -> doc
val add : doc -> string -> unit
val contents : doc -> string
