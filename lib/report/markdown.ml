(* Small markdown builders for the post-run report: GitHub-flavoured
   pipe tables, headings and fenced code blocks, assembled into one
   document string.  Kept dependency-free (strings in, string out) so
   both the fuzzing layer and the CLI can render reports. *)

let heading ?(level = 2) title =
  String.make (max 1 (min 6 level)) '#' ^ " " ^ title ^ "\n\n"

let paragraph s = s ^ "\n\n"

let code_block ?(lang = "") body =
  let body =
    if String.length body > 0 && body.[String.length body - 1] = '\n' then body
    else body ^ "\n"
  in
  "```" ^ lang ^ "\n" ^ body ^ "```\n\n"

let bullet items =
  String.concat "" (List.map (fun s -> "- " ^ s ^ "\n") items) ^ "\n"

(* A pipe table; cells are escaped just enough ('|' would break the
   row structure) and the first column is left-aligned, the rest right-
   aligned, matching the numeric tables this report is made of. *)
let escape_cell s =
  String.concat "\\|" (String.split_on_char '|' s)

let table ~header rows =
  let row cells =
    "| " ^ String.concat " | " (List.map escape_cell cells) ^ " |\n"
  in
  let align =
    "|:---"
    ^ String.concat "" (List.map (fun _ -> "|---:") (List.tl header))
    ^ "|\n"
  in
  row header ^ align ^ String.concat "" (List.map row rows) ^ "\n"

type doc = Buffer.t

let doc () : doc = Buffer.create 4096
let add (d : doc) s = Buffer.add_string d s
let contents (d : doc) = Buffer.contents d
