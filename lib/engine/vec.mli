(** An amortized-doubling vector.

    The growable pools of the fuzz loops: [push] is amortized O(1)
    (versus the O(n) [Array.append pool [| x |]] idiom, which makes a
    long campaign quadratic in accepts). *)

type 'a t

val create : unit -> 'a t
val of_list : 'a list -> 'a t
val length : 'a t -> int

val get : 'a t -> int -> 'a
(** @raise Invalid_argument when the index is out of bounds. *)

val push : 'a t -> 'a -> unit
val iter : ('a -> unit) -> 'a t -> unit
val to_list : 'a t -> 'a list
