(** An amortized-doubling vector.

    The growable pools of the fuzz loops: [push] is amortized O(1)
    (versus the O(n) [Array.append pool [| x |]] idiom, which makes a
    long campaign quadratic in accepts). *)

type 'a t

val create : unit -> 'a t
val of_list : 'a list -> 'a t
val length : 'a t -> int

val get : 'a t -> int -> 'a
(** @raise Invalid_argument when the index is out of bounds. *)

val push : 'a t -> 'a -> unit
val iter : ('a -> unit) -> 'a t -> unit
val to_list : 'a t -> 'a list

val clear : 'a t -> unit
(** Set the length to 0 without shrinking the backing array: a scratch
    vector reused across compiles reaches a steady state where [push]
    never allocates.  Elements beyond the new length stay referenced
    until overwritten. *)

val to_array : 'a t -> 'a array
(** A fresh array of the live elements — the direct serialization form
    for checkpoints (no intermediate list). *)

val of_array : 'a array -> 'a t
(** A vector over a copy of [a] (the argument is not aliased). *)
