(** Leveled structured JSON-lines logging with a deterministic body.

    Records carry no wall clock.  Identity is (scope, phase, emission
    order); the monotonic [seq] is assigned at render time after
    grouping records by scope, so the rendered body is byte-identical
    across job and shard counts whenever each scope's record stream is
    (which the fault/verdict determinism contracts guarantee). *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
val level_of_string : string -> level option
val severity : level -> int

type record = {
  lr_level : level;
  lr_event : string;  (** dotted event name, e.g. ["lease.verdict"] *)
  lr_scope : string;  (** unit/cell name; [""] is the driver *)
  lr_phase : int;  (** render order within a scope: 0 body, 1 supervision *)
  lr_fields : (string * string) list;
}

type t

val create : ?level:level -> unit -> t
(** [level] defaults to [Info]. *)

val level : t -> level
val set_scope : t -> string -> unit
(** Scope stamped on subsequently emitted records (mirrors
    {!Trace.set_tid}). *)

val enabled : t -> level -> bool
val length : t -> int
val records : t -> record list

val record :
  t ->
  ?scope:string ->
  ?phase:int ->
  level:level ->
  event:string ->
  (string * string) list ->
  unit
(** Emit one record; dropped when below the logger's level.  [scope]
    defaults to the current scope, [phase] to 0. *)

val merge : into:t -> ?scope:string -> t -> unit
(** Append [src]'s records, overriding their scope when given (the join
    barrier stamps the worker's canonical cell name). *)

val record_to_json : seq:int -> record -> string
(** One JSON object, no trailing newline.  All field values render as
    JSON strings. *)

val to_json_lines : ?scope_order:string list -> t -> string list
(** Scope render order: driver ([""]) first, then [scope_order], then
    unmentioned scopes alphabetically; within a scope, stable-sorted by
    phase.  [seq] is assigned in output order. *)

val to_string : ?scope_order:string list -> t -> string

val write : ?scope_order:string list -> path:string -> t -> unit
(** Atomic tmp+rename write of {!to_string}. *)

val parse_spec : string -> (string * level, string) result
(** Parse a [--log FILE[:LEVEL]] argument.  A suffix that is not a
    known level is treated as part of the path. *)
