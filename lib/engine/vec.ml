(* An amortized-doubling vector: the growable pools of the fuzz loops.

   [Array.append pool [| x |]] per accept is O(n) and turns a long
   campaign quadratic; push here is amortized O(1).  The backing array
   grows by doubling and uses the pushed element as the fill value, so
   no dummy element is ever required. *)

type 'a t = {
  mutable arr : 'a array;
  mutable len : int;
}

let create () = { arr = [||]; len = 0 }

let of_list xs =
  let arr = Array.of_list xs in
  { arr; len = Array.length arr }

let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get: index out of bounds";
  v.arr.(i)

let push v x =
  if v.len = Array.length v.arr then begin
    let cap = max 8 (2 * Array.length v.arr) in
    let arr = Array.make cap x in
    Array.blit v.arr 0 arr 0 v.len;
    v.arr <- arr
  end;
  v.arr.(v.len) <- x;
  v.len <- v.len + 1

let iter f v =
  for i = 0 to v.len - 1 do
    f v.arr.(i)
  done

let to_list v =
  let acc = ref [] in
  for i = v.len - 1 downto 0 do
    acc := v.arr.(i) :: !acc
  done;
  !acc

(* The backing array is kept, so a scratch vector reused across compiles
   reaches a steady state where push never allocates.  The stale slots
   beyond [len] still reference their old elements; scratch vectors hold
   short-lived per-compile data, so the retention window is one compile. *)
let clear v = v.len <- 0

let to_array v = Array.sub v.arr 0 v.len

let of_array a =
  let arr = Array.copy a in
  { arr; len = Array.length arr }
