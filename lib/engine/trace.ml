(* Span-instance buffer behind the Chrome trace-event export.

   The metrics registry keeps only per-name histograms; loading a run in
   Perfetto/chrome://tracing needs the individual span instances with
   their wall-clock timestamps.  Each context owns one buffer (a Vec of
   unboxed-ish records, appended on the Span hot path only when tracing
   was explicitly enabled); parallel campaigns give each worker its own
   buffer tagged with the cell's stable tid and merge them in canonical
   cell order at the join barrier, so the merged event list is
   deterministic up to the timestamps themselves. *)

type span_rec = {
  sr_name : string;
  sr_ts_ns : int64;   (* wall-clock start, nanoseconds *)
  sr_dur_ns : int64;
  sr_tid : int;       (* Chrome thread id: the stable cell/worker tag *)
}

type t = {
  mutable cur_tid : int;  (* tid stamped on subsequently recorded spans *)
  spans : span_rec Vec.t;
  mutable labels : (int * string) list;  (* tid -> display name *)
}

let create ?(tid = 0) () = { cur_tid = tid; spans = Vec.create (); labels = [] }

let set_tid (t : t) tid = t.cur_tid <- tid

let label_tid (t : t) ~tid ~label =
  if not (List.mem_assoc tid t.labels) then
    t.labels <- t.labels @ [ (tid, label) ]

let record (t : t) ~name ~ts_ns ~dur_ns =
  Vec.push t.spans
    { sr_name = name; sr_ts_ns = ts_ns; sr_dur_ns = dur_ns; sr_tid = t.cur_tid }

let length (t : t) = Vec.length t.spans
let spans (t : t) = Vec.to_list t.spans

(* Append a worker buffer, retagging its spans with the worker's stable
   tid (the worker recorded under its own [cur_tid], usually the same
   value, but the barrier is authoritative). *)
let merge ~into:(dst : t) ?tid (src : t) =
  Vec.iter
    (fun (r : span_rec) ->
      let tid = Option.value ~default:r.sr_tid tid in
      Vec.push dst.spans { r with sr_tid = tid })
    src.spans;
  List.iter (fun (tid, l) -> label_tid dst ~tid ~label:l) src.labels

(* ------------------------------------------------------------------ *)
(* Chrome trace-event rendering                                        *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Chrome trace timestamps are microseconds. *)
let us ns = Int64.to_float ns /. 1e3

(* The JSON Array Format: one complete ("ph":"X") event object per line,
   metadata events naming the process and each tid, wrapped in [ ].  The
   line orientation is what makes the file streamable and greppable; the
   wrapping keeps it a single valid JSON document for jq and Perfetto. *)
let to_chrome_lines ?(pid = 1) ?(process_name = "metamut") (t : t) :
    string list =
  let meta =
    Fmt.str
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"%s\"}}"
      pid (json_escape process_name)
    :: List.map
         (fun (tid, label) ->
           Fmt.str
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
             pid tid (json_escape label))
         t.labels
  in
  let events =
    List.map
      (fun (r : span_rec) ->
        Fmt.str
          "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}"
          (json_escape r.sr_name) pid r.sr_tid (us r.sr_ts_ns) (us r.sr_dur_ns))
      (spans t)
  in
  let body = meta @ events in
  let n = List.length body in
  ("[" :: List.mapi (fun i l -> if i = n - 1 then l else l ^ ",") body) @ [ "]" ]

let to_chrome_string ?pid ?process_name (t : t) =
  String.concat "\n" (to_chrome_lines ?pid ?process_name t) ^ "\n"

(* ------------------------------------------------------------------ *)
(* Folded-stack export (flamegraph.pl / speedscope)                    *)
(* ------------------------------------------------------------------ *)

(* Span records carry no parent pointers, so nesting is reconstructed
   per tid from interval containment: sorted by (start asc, duration
   desc), a span's ancestors are exactly the stack entries that have not
   yet ended when it starts.  [fold_self] charges each span's duration
   to its own path and subtracts it from its parent's, so the values are
   *self* times — by construction, a parent's self time plus its
   children's totals equals the parent's total, which is the invariant
   the "Where the time goes" table and the acceptance check rely on. *)
let fold_self (t : t) : (string list * int64) list =
  let by_tid : (int, span_rec Vec.t) Hashtbl.t = Hashtbl.create 8 in
  Vec.iter
    (fun (r : span_rec) ->
      let v =
        match Hashtbl.find_opt by_tid r.sr_tid with
        | Some v -> v
        | None ->
          let v = Vec.create () in
          Hashtbl.add by_tid r.sr_tid v;
          v
      in
      Vec.push v r)
    t.spans;
  let self : (string list, int64 ref) Hashtbl.t = Hashtbl.create 64 in
  let charge path by =
    match Hashtbl.find_opt self path with
    | Some r -> r := Int64.add !r by
    | None -> Hashtbl.add self path (ref by)
  in
  let tids = Hashtbl.fold (fun tid _ acc -> tid :: acc) by_tid [] in
  List.iter
    (fun tid ->
      let root =
        match List.assoc_opt tid t.labels with
        | Some l -> l
        | None -> if tid = 0 then "main" else Fmt.str "tid-%d" tid
      in
      let spans =
        List.sort
          (fun (a : span_rec) (b : span_rec) ->
            match Int64.compare a.sr_ts_ns b.sr_ts_ns with
            | 0 -> Int64.compare b.sr_dur_ns a.sr_dur_ns
            | c -> c)
          (Vec.to_list (Hashtbl.find by_tid tid))
      in
      (* stack: (path, end_ts) with the deepest open span on top *)
      let stack = ref [] in
      List.iter
        (fun (r : span_rec) ->
          let rec unwind () =
            match !stack with
            | (_, end_ns) :: rest when end_ns <= r.sr_ts_ns ->
              stack := rest;
              unwind ()
            | _ -> ()
          in
          unwind ();
          let parent =
            match !stack with [] -> [ root ] | (p, _) :: _ -> p
          in
          let path = parent @ [ r.sr_name ] in
          charge path r.sr_dur_ns;
          charge parent (Int64.neg r.sr_dur_ns);
          stack := (path, Int64.add r.sr_ts_ns r.sr_dur_ns) :: !stack)
        spans)
    (List.sort compare tids);
  Hashtbl.fold (fun path r acc -> (path, !r) :: acc) self []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* One "a;b;c <microseconds>" line per stack with positive self time.
   flamegraph.pl and speedscope both take this directly. *)
let to_folded (t : t) : string =
  let lines =
    fold_self t
    |> List.filter_map (fun (path, ns) ->
           let us = Int64.div ns 1000L in
           if Int64.compare us 0L > 0 then
             Some (Fmt.str "%s %Ld" (String.concat ";" path) us)
           else None)
  in
  match lines with [] -> "" | ls -> String.concat "\n" ls ^ "\n"

(* Self time per span *name* (summed over every stack the name appears
   at the tip of), for the report's "Where the time goes" table. *)
let self_time_by_name (t : t) : (string * int64) list =
  let acc : (string, int64 ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (path, ns) ->
      match List.rev path with
      | [] -> ()
      | name :: _ -> (
        match Hashtbl.find_opt acc name with
        | Some r -> r := Int64.add !r ns
        | None -> Hashtbl.add acc name (ref ns)))
    (fold_self t);
  Hashtbl.fold (fun name r l -> (name, !r) :: l) acc []
  |> List.sort (fun (_, a) (_, b) -> Int64.compare b a)
