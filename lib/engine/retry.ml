(* Exponential backoff with jitter, in *simulated* time.

   The reproduction charges wait time to cost accounting instead of
   sleeping (campaigns are iteration-budgeted, not wall-clock-budgeted),
   so [run] returns the total backoff delay for the caller to charge —
   the pipeline adds it to [sc_wait_s] — and mirrors it into a
   [<name>.wait_ms] counter for the metrics table. *)

type policy = {
  max_attempts : int;    (* total attempts, including the first *)
  base_delay_s : float;  (* delay before the 2nd attempt *)
  multiplier : float;    (* exponential growth factor *)
  max_delay_s : float;   (* per-wait cap *)
  jitter : float;        (* +/- fraction of the computed delay *)
}

let default_policy =
  {
    max_attempts = 4;
    base_delay_s = 1.0;
    multiplier = 2.0;
    max_delay_s = 30.0;
    jitter = 0.5;
  }

let delay_for (p : policy) ~attempt ~jitter01 =
  if attempt < 1 then invalid_arg "Retry.delay_for: attempt < 1";
  let exp = p.base_delay_s *. (p.multiplier ** float_of_int (attempt - 1)) in
  let capped = Float.min p.max_delay_s exp in
  (* jitter01 in [0,1) maps to a factor in [1-j, 1+j) *)
  let factor = 1. -. p.jitter +. (2. *. p.jitter *. jitter01) in
  Float.max 0. (capped *. factor)

type 'a outcome = {
  value : 'a;
  attempts : int;
  waited_s : float;   (* simulated backoff total *)
  recovered : bool;   (* a retryable value was followed by a final one *)
}

let run ?ctx ?(name = "retry") (p : policy) ~(retryable : 'a -> bool)
    ~(jitter : unit -> float) (f : attempt:int -> 'a) : 'a outcome =
  let bump ?(by = 1) suffix =
    Option.iter (fun c -> Ctx.incr ~by c (name ^ suffix)) ctx
  in
  let max_attempts = max 1 p.max_attempts in
  let rec go attempt waited =
    let v = f ~attempt in
    bump ".attempts";
    if not (retryable v) then begin
      let recovered = attempt > 1 in
      if recovered then bump ".recovered";
      { value = v; attempts = attempt; waited_s = waited; recovered }
    end
    else if attempt >= max_attempts then begin
      bump ".exhausted";
      { value = v; attempts = attempt; waited_s = waited; recovered = false }
    end
    else begin
      let d = delay_for p ~attempt ~jitter01:(jitter ()) in
      bump ".retried";
      bump ~by:(int_of_float (d *. 1000.)) ".wait_ms";
      Option.iter
        (fun c ->
          Ctx.log_event c ~level:Log.Debug ~event:"retry.backoff"
            [
              ("name", name);
              ("attempt", string_of_int attempt);
              ("wait_ms", string_of_int (int_of_float (d *. 1000.)));
            ])
        ctx;
      go (attempt + 1) (waited +. d)
    end
  in
  go 1 0.
