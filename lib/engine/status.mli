(** Live TTY status line for long-running fuzz/campaign loops.

    A bus sink folds the event stream into a single line — iteration,
    execs/s, covered edges, crashes, retry recoveries, plateau streak —
    rewritten in place on stderr (or a custom [out]) at most once per
    [interval_ns].  Plateau detection counts consecutive
    [Coverage_sampled] events that gained no edges. *)

type t

val set_tty_owner : bool -> unit
(** Process-global terminal ownership (default [true]).  When false,
    this process renders nothing — sharded workers relinquish ownership
    so K processes sharing a stderr don't interleave [\r] rewrites; the
    coordinator keeps it and draws the one aggregated line. *)

val tty_owner : unit -> bool

val attach :
  ?out:(string -> unit) ->
  ?interval_ns:int64 ->
  ?label:string ->
  Ctx.t ->
  t
(** Install the status sink on the context bus.  [out] defaults to
    writing stderr (with [\r\027\[K] in-place rewriting); [interval_ns]
    defaults to 200ms; [label] prefixes the line (default ["fuzz"]). *)

val line : t -> string
(** The current status line (no control characters) — used by tests. *)

val fold_heartbeats : (int * int * int) list -> int * int * int
(** Fold per-shard [(execs, covered, crashes)] heartbeats into campaign
    totals: execs and crashes (disjoint work) sum, covered (each
    shard's view of one global map) takes the max.  Zero-exec shards
    contribute nothing. *)

val update :
  t -> ?iteration:int -> execs:int -> covered:int -> crashes:int -> unit -> unit
(** Feed absolute aggregate totals from outside the event bus and
    render (throttled).  The sharded coordinator folds worker
    heartbeats into one line this way — no events reach its own bus.
    Covered is monotone (a regressing feed — e.g. a crashed shard's
    beat dropping out of the fold — never un-counts edges). *)

val finish : t -> unit
(** Detach the sink and, if anything was rendered, leave a final
    newline-terminated summary so scrollback keeps the last state. *)
