(* Multi-process sharding: framed IPC over Unix sockets plus the
   coordinator/worker pool.

   The wire format is deliberately dumb: a 4-byte magic whose last byte
   is the protocol version, a type byte, a big-endian length, and the
   payload.  Dumb is what makes a hung or garbled peer detectable — the
   coordinator validates every header before trusting the length, and
   every read carries a deadline, so a worker that writes junk (or
   nothing) is killed and its lease requeued instead of being waited on
   forever.

   Work distribution is pull-based: idle workers send Request and the
   coordinator deals the next lease off one queue.  That is the whole
   work-stealing story — a slow worker simply claims fewer leases, so
   the tail of a campaign never serializes behind a straggler. *)

let protocol_version = 1
let magic = Printf.sprintf "MSF%c" (Char.chr protocol_version)
let max_frame_len = 1 lsl 28 (* 256 MB: far above any real lease/result *)

type frame =
  | Hello of { shard : int }
  | Request
  | Lease of { seq : int; attempt : int; body : string }
  | Result of { seq : int; body : string }
  | Heartbeat of { execs : int; covered : int; crashes : int }
  | Shutdown

(* An internal frame: a lease that failed on its own merits (the work
   function raised).  Distinct from a worker death — the worker is
   healthy and immediately requests more work. *)
type internal_frame = Plain of frame | Failed of { seq : int; msg : string }

type conn = { c_fd : Unix.file_descr }

let of_fd fd = { c_fd = fd }
let fd (c : conn) = c.c_fd

type recv_error = Timeout | Closed | Garbled of string

let recv_error_to_string = function
  | Timeout -> "timeout"
  | Closed -> "connection closed"
  | Garbled msg -> "garbled frame: " ^ msg

(* ------------------------------------------------------------------ *)
(* Wire encoding                                                       *)
(* ------------------------------------------------------------------ *)

let tag_of = function
  | Plain (Hello _) -> 0
  | Plain Request -> 1
  | Plain (Lease _) -> 2
  | Plain (Result _) -> 3
  | Plain (Heartbeat _) -> 4
  | Plain Shutdown -> 5
  | Failed _ -> 6

let payload_of = function
  | Plain (Hello { shard }) ->
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 (Int32.of_int shard);
    Bytes.unsafe_to_string b
  | Plain Request | Plain Shutdown -> ""
  | Plain (Lease { seq; attempt; body }) ->
    let b = Bytes.create (8 + String.length body) in
    Bytes.set_int32_be b 0 (Int32.of_int seq);
    Bytes.set_int32_be b 4 (Int32.of_int attempt);
    Bytes.blit_string body 0 b 8 (String.length body);
    Bytes.unsafe_to_string b
  | Plain (Result { seq; body }) ->
    let b = Bytes.create (4 + String.length body) in
    Bytes.set_int32_be b 0 (Int32.of_int seq);
    Bytes.blit_string body 0 b 4 (String.length body);
    Bytes.unsafe_to_string b
  | Plain (Heartbeat { execs; covered; crashes }) ->
    let b = Bytes.create 16 in
    Bytes.set_int64_be b 0 (Int64.of_int execs);
    Bytes.set_int32_be b 8 (Int32.of_int covered);
    Bytes.set_int32_be b 12 (Int32.of_int crashes);
    Bytes.unsafe_to_string b
  | Failed { seq; msg } ->
    let b = Bytes.create (4 + String.length msg) in
    Bytes.set_int32_be b 0 (Int32.of_int seq);
    Bytes.blit_string msg 0 b 4 (String.length msg);
    Bytes.unsafe_to_string b

let i32 b off = Int32.to_int (Bytes.get_int32_be b off)

let parse_payload tag (p : Bytes.t) : (internal_frame, string) result =
  let len = Bytes.length p in
  let body off = Bytes.sub_string p off (len - off) in
  match tag with
  | 0 when len = 4 -> Ok (Plain (Hello { shard = i32 p 0 }))
  | 1 when len = 0 -> Ok (Plain Request)
  | 2 when len >= 8 ->
    Ok (Plain (Lease { seq = i32 p 0; attempt = i32 p 4; body = body 8 }))
  | 3 when len >= 4 -> Ok (Plain (Result { seq = i32 p 0; body = body 4 }))
  | 4 when len = 16 ->
    Ok
      (Plain
         (Heartbeat
            {
              execs = Int64.to_int (Bytes.get_int64_be p 0);
              covered = i32 p 8;
              crashes = i32 p 12;
            }))
  | 5 when len = 0 -> Ok (Plain Shutdown)
  | 6 when len >= 4 -> Ok (Failed { seq = i32 p 0; msg = body 4 })
  | t when t >= 0 && t <= 6 ->
    Error (Printf.sprintf "frame type %d with bad payload length %d" t len)
  | t -> Error (Printf.sprintf "unknown frame type %d" t)

let write_all fd (b : Bytes.t) =
  let n = Bytes.length b in
  let pos = ref 0 in
  while !pos < n do
    match Unix.write fd b !pos (n - !pos) with
    | k -> pos := !pos + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let send_internal (c : conn) fr =
  let payload = payload_of fr in
  let plen = String.length payload in
  let b = Bytes.create (9 + plen) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set_uint8 b 4 (tag_of fr);
  Bytes.set_int32_be b 5 (Int32.of_int plen);
  Bytes.blit_string payload 0 b 9 plen;
  write_all c.c_fd b

let send (c : conn) (f : frame) = send_internal c (Plain f)

(* Read exactly [len] bytes, honouring the shared [deadline].  [eof]
   and [stall] name the error for a peer that closes or goes silent at
   this position — EOF at a frame boundary is an orderly [Closed], EOF
   or junk inside a frame is [Garbled]. *)
let read_exact fd buf off len ~deadline ~eof ~stall =
  let pos = ref off and remaining = ref len in
  let result = ref (Ok ()) in
  let continue = ref true in
  while !continue && !remaining > 0 do
    let timeout =
      match deadline with
      | None -> -1.
      | Some d -> d -. Unix.gettimeofday ()
    in
    if deadline <> None && timeout <= 0. then begin
      result := Error stall;
      continue := false
    end
    else begin
      match Unix.select [ fd ] [] [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> () (* select timed out; the deadline check above decides *)
      | _ -> (
        match Unix.read fd buf !pos !remaining with
        | 0 ->
          result := Error eof;
          continue := false
        | k ->
          pos := !pos + k;
          remaining := !remaining - k
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          result := Error eof;
          continue := false)
    end
  done;
  !result

let recv_internal ?timeout_s (c : conn) : (internal_frame, recv_error) result =
  let deadline = Option.map (fun t -> Unix.gettimeofday () +. t) timeout_s in
  let header = Bytes.create 9 in
  (* the first header byte decides boundary-vs-midframe errors; read it
     separately so a clean EOF is Closed, not Garbled *)
  match
    read_exact c.c_fd header 0 1 ~deadline ~eof:Closed ~stall:Timeout
  with
  | Error e -> Error e
  | Ok () -> (
    match
      read_exact c.c_fd header 1 8 ~deadline
        ~eof:(Garbled "EOF inside frame header") ~stall:Timeout
    with
    | Error e -> Error e
    | Ok () ->
      if Bytes.sub_string header 0 4 <> magic then
        Error
          (Garbled
             (Printf.sprintf "bad magic %S (speaking protocol %d?)"
                (Bytes.sub_string header 0 4)
                protocol_version))
      else begin
        let tag = Bytes.get_uint8 header 4 in
        let len = i32 header 5 in
        if len < 0 || len > max_frame_len then
          Error (Garbled (Printf.sprintf "frame length %d out of bounds" len))
        else begin
          let payload = Bytes.create len in
          match
            read_exact c.c_fd payload 0 len ~deadline
              ~eof:(Garbled "EOF inside frame payload") ~stall:Timeout
          with
          | Error e -> Error e
          | Ok () -> (
            match parse_payload tag payload with
            | Ok f -> Ok f
            | Error msg -> Error (Garbled msg))
        end
      end)

let recv ?timeout_s (c : conn) : (frame, recv_error) result =
  match recv_internal ?timeout_s c with
  | Ok (Plain f) -> Ok f
  | Ok (Failed _) -> Error (Garbled "unexpected Failed frame")
  | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Marshal helpers                                                     *)
(* ------------------------------------------------------------------ *)

let encode v = Marshal.to_string v []

let decode (s : string) =
  if String.length s < Marshal.header_size then
    Error "decode: input shorter than a Marshal header"
  else if Marshal.total_size (Bytes.unsafe_of_string s) 0 > String.length s
  then Error "decode: truncated Marshal payload"
  else
    match Marshal.from_string s 0 with
    | v -> Ok v
    | exception Failure msg -> Error ("decode: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Worker side                                                         *)
(* ------------------------------------------------------------------ *)

let in_worker_flag = ref false
let in_worker () = !in_worker_flag

let worker_loop (c : conn) ~f =
  in_worker_flag := true;
  (* K workers share the coordinator's stderr: none of them may draw *)
  Status.set_tty_owner false;
  let continue = ref true in
  let safe_send fr = try send_internal c fr with _ -> continue := false in
  safe_send (Plain (Hello { shard = Unix.getpid () }));
  while !continue do
    safe_send (Plain Request);
    if !continue then begin
      match recv c with
      | Ok (Lease { seq; attempt; body }) -> (
        let heartbeat ~execs ~covered ~crashes =
          try send c (Heartbeat { execs; covered; crashes }) with _ -> ()
        in
        match f ~heartbeat ~seq ~attempt body with
        | r -> safe_send (Plain (Result { seq; body = r }))
        | exception e -> safe_send (Failed { seq; msg = Printexc.to_string e })
        )
      | Ok Shutdown -> continue := false
      | Ok _ | Error _ -> continue := false (* dead or confused coordinator *)
    end
  done

(* ------------------------------------------------------------------ *)
(* Coordinator side                                                    *)
(* ------------------------------------------------------------------ *)

type backend = Fork | Spawn of (Unix.file_descr -> int)

type stats = {
  mutable st_spawned : int;
  mutable st_died : int;
  mutable st_garbled : int;
  mutable st_hung : int;
  mutable st_requeued : int;
  mutable st_inline : int;
}

type worker = {
  w_shard : int;
  w_pid : int;
  w_conn : conn;
  mutable w_lease : (int * int) option; (* seq, attempt *)
  mutable w_last_active : float;
  mutable w_alive : bool;
}

let run_pool ~shards ?(backend = Fork) ?(hang_timeout_s = 120.)
    ?(max_attempts = 3) ?ctx ?on_heartbeat ?on_result ~f
    (leases : string array) : (string, string) result array * stats =
  let n = Array.length leases in
  let results : (string, string) result option array = Array.make n None in
  let attempts = Array.make n 0 in
  let stats =
    {
      st_spawned = 0;
      st_died = 0;
      st_garbled = 0;
      st_hung = 0;
      st_requeued = 0;
      st_inline = 0;
    }
  in
  let bump name = Option.iter (fun c -> Ctx.incr c name) ctx in
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    Queue.add i queue
  done;
  let commit seq r =
    if results.(seq) = None then begin
      results.(seq) <- Some r;
      match r with
      | Ok _ -> Option.iter (fun g -> g ~seq) on_result
      | Error _ -> ()
    end
  in
  let finished () = Array.for_all Option.is_some results in
  (* Inline execution on the calling process: the sequential degenerate
     mode, and the last-resort fallback when no worker can be spawned.
     Retries mirror the requeue semantics so the final Ok/Error verdict
     per lease is identical to the pooled path. *)
  let run_inline seq =
    let rec go () =
      attempts.(seq) <- attempts.(seq) + 1;
      let heartbeat ~execs ~covered ~crashes =
        Option.iter
          (fun g -> g ~shard:0 ~execs ~covered ~crashes)
          on_heartbeat
      in
      match f ~heartbeat ~seq ~attempt:(attempts.(seq) - 1) leases.(seq) with
      | r -> commit seq (Ok r)
      | exception e ->
        if attempts.(seq) >= max_attempts then
          commit seq (Error (Printexc.to_string e))
        else go ()
    in
    go ()
  in
  if shards <= 1 || n = 0 then begin
    while not (Queue.is_empty queue) do
      run_inline (Queue.pop queue)
    done;
    ( Array.map
        (function Some r -> r | None -> Error "lease never ran") results,
      stats )
  end
  else begin
    let previous_sigpipe =
      (* a worker dying mid-write must surface as EPIPE, not kill us *)
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ -> None
    in
    let workers : worker list ref = ref [] in
    let alive () = List.filter (fun w -> w.w_alive) !workers in
    let parent_fds () = List.map (fun w -> w.w_conn.c_fd) (alive ()) in
    let spawn shard =
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let pid =
        match backend with
        | Fork -> (
          flush stdout;
          flush stderr;
          match Unix.fork () with
          | 0 ->
            (* the child serves leases on [b]; every inherited parent
               end is closed so a sibling's death is visible as EOF in
               the coordinator, not masked by our copy of its fd *)
            List.iter
              (fun fd -> try Unix.close fd with _ -> ())
              (a :: parent_fds ());
            (try worker_loop (of_fd b) ~f with _ -> ());
            Unix._exit 0
          | pid -> pid)
        | Spawn start -> start b
      in
      Unix.close b;
      stats.st_spawned <- stats.st_spawned + 1;
      let w =
        {
          w_shard = shard;
          w_pid = pid;
          w_conn = of_fd a;
          w_lease = None;
          w_last_active = Unix.gettimeofday ();
          w_alive = true;
        }
      in
      workers := w :: !workers;
      w
    in
    let reap w =
      (try Unix.close w.w_conn.c_fd with _ -> ());
      try ignore (Unix.waitpid [] w.w_pid) with _ -> ()
    in
    (* orderly retirement after Shutdown: not a death, nothing requeued *)
    let retire w =
      w.w_alive <- false;
      reap w
    in
    let kill_worker w ~reason =
      if w.w_alive then begin
        w.w_alive <- false;
        (try Unix.kill w.w_pid Sys.sigkill with _ -> ());
        reap w;
        stats.st_died <- stats.st_died + 1;
        bump "shard.worker_died";
        match w.w_lease with
        | None -> ()
        | Some (seq, _) ->
          w.w_lease <- None;
          if results.(seq) = None then begin
            if attempts.(seq) >= max_attempts then
              commit seq
                (Error
                   (Printf.sprintf "lease failed after %d attempts (%s)"
                      attempts.(seq) reason))
            else begin
              stats.st_requeued <- stats.st_requeued + 1;
              bump "shard.requeued";
              Queue.add seq queue
            end
          end
      end
    in
    let deal w =
      if Queue.is_empty queue then begin
        (match try Some (send w.w_conn Shutdown) with _ -> None with
        | Some () -> retire w
        | None -> kill_worker w ~reason:"write failed at shutdown")
      end
      else begin
        let seq = Queue.pop queue in
        attempts.(seq) <- attempts.(seq) + 1;
        w.w_lease <- Some (seq, attempts.(seq) - 1);
        w.w_last_active <- Unix.gettimeofday ();
        try
          send w.w_conn
            (Lease { seq; attempt = attempts.(seq) - 1; body = leases.(seq) })
        with _ -> kill_worker w ~reason:"write failed on lease grant"
      end
    in
    let handle w =
      match recv_internal ~timeout_s:10. w.w_conn with
      | Ok (Plain (Hello _)) -> w.w_last_active <- Unix.gettimeofday ()
      | Ok (Plain Request) ->
        w.w_last_active <- Unix.gettimeofday ();
        deal w
      | Ok (Plain (Result { seq; body })) ->
        w.w_last_active <- Unix.gettimeofday ();
        w.w_lease <- None;
        commit seq (Ok body)
      | Ok (Failed { seq; msg }) ->
        w.w_last_active <- Unix.gettimeofday ();
        w.w_lease <- None;
        if results.(seq) = None then begin
          if attempts.(seq) >= max_attempts then commit seq (Error msg)
          else Queue.add seq queue (* a healthy worker retries elsewhere *)
        end
      | Ok (Plain (Heartbeat { execs; covered; crashes })) ->
        w.w_last_active <- Unix.gettimeofday ();
        Option.iter
          (fun g -> g ~shard:w.w_shard ~execs ~covered ~crashes)
          on_heartbeat
      | Ok (Plain (Lease _)) | Ok (Plain Shutdown) ->
        stats.st_garbled <- stats.st_garbled + 1;
        bump "shard.garbled";
        kill_worker w ~reason:"protocol violation (coordinator-only frame)"
      | Error Closed -> kill_worker w ~reason:"worker closed its socket"
      | Error (Garbled msg) ->
        stats.st_garbled <- stats.st_garbled + 1;
        bump "shard.garbled";
        kill_worker w ~reason:("garbled frame: " ^ msg)
      | Error Timeout -> () (* partial frame in flight; hang scan decides *)
    in
    let spawn_budget = ref (shards * max_attempts) in
    let maybe_spawn () =
      (* keep one worker per queued lease up to [shards], while the
         respawn budget lasts (bounded: each death consumes attempts) *)
      let want = min shards (Queue.length queue + List.length (alive ())) in
      while List.length (alive ()) < want && !spawn_budget > 0 do
        decr spawn_budget;
        let shard = List.length (alive ()) in
        match spawn shard with
        | (_ : worker) ->
          if stats.st_spawned > shards then bump "shard.respawned"
        | exception _ -> spawn_budget := 0
      done
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun w -> kill_worker w ~reason:"coordinator exit") (alive ());
        match previous_sigpipe with
        | Some b -> (try Sys.set_signal Sys.sigpipe b with _ -> ())
        | None -> ())
      (fun () ->
        for i = 0 to min shards n - 1 do
          ignore (spawn i : worker)
        done;
        while not (finished ()) || alive () <> [] do
          let live = alive () in
          if live = [] then begin
            if not (finished ()) then begin
              maybe_spawn ();
              if alive () = [] then begin
                (* nothing spawnable: finish the queue on this process *)
                while not (Queue.is_empty queue) do
                  stats.st_inline <- stats.st_inline + 1;
                  bump "shard.inline";
                  run_inline (Queue.pop queue)
                done;
                (* leases neither queued nor committed were lost with
                   their workers; fail them explicitly *)
                Array.iteri
                  (fun seq r ->
                    if r = None then
                      commit seq (Error "lease lost: no worker survived"))
                  results
              end
            end
          end
          else begin
            let fds = List.map (fun w -> w.w_conn.c_fd) live in
            let readable =
              match Unix.select fds [] [] 0.25 with
              | r, _, _ -> r
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
            in
            List.iter
              (fun w ->
                if w.w_alive && List.mem w.w_conn.c_fd readable then handle w)
              live;
            let now = Unix.gettimeofday () in
            List.iter
              (fun w ->
                if
                  w.w_alive && w.w_lease <> None
                  && now -. w.w_last_active > hang_timeout_s
                then begin
                  stats.st_hung <- stats.st_hung + 1;
                  bump "shard.hung";
                  kill_worker w ~reason:"hang timeout"
                end)
              (alive ());
            if not (Queue.is_empty queue) then maybe_spawn ()
          end
        done);
    ( Array.map
        (function Some r -> r | None -> Error "lease never ran") results,
      stats )
  end
