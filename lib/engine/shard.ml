(* Multi-process sharding: framed IPC over Unix sockets plus the
   coordinator/worker pool.

   The wire format is deliberately dumb: a 4-byte magic whose last byte
   is the protocol version, a type byte, a big-endian length, and the
   payload.  Dumb is what makes a hung or garbled peer detectable — the
   coordinator validates every header before trusting the length, and
   every read carries a deadline, so a worker that writes junk (or
   nothing) is killed and its lease requeued instead of being waited on
   forever.

   Work distribution is pull-based: idle workers send Request and the
   coordinator deals the next lease off one queue.  That is the whole
   work-stealing story — a slow worker simply claims fewer leases, so
   the tail of a campaign never serializes behind a straggler.

   Chaos crosses the process boundary here: the shard-layer fault sites
   (frame_garble / frame_stall / worker_oom / coordinator_crash) are
   drawn from a child harness derived per (lease, attempt), so which
   attempt of which lease a fault hits is a pure function of the root
   seed — the inline degenerate mode draws the identical stream, which
   keeps verdicts shard-count-invariant even under injected chaos. *)

let protocol_version = 1
let magic = Printf.sprintf "MSF%c" (Char.chr protocol_version)
let max_frame_len = 1 lsl 28 (* 256 MB: far above any real lease/result *)

type frame =
  | Hello of { shard : int }
  | Request
  | Lease of { seq : int; attempt : int; body : string }
  | Result of { seq : int; body : string }
  | Heartbeat of { execs : int; covered : int; crashes : int }
  | Shutdown

(* An internal frame: a lease that failed on its own merits (the work
   function raised).  Distinct from a worker death — the worker is
   healthy and immediately requests more work. *)
type internal_frame = Plain of frame | Failed of { seq : int; msg : string }

type conn = { c_fd : Unix.file_descr }

let of_fd fd = { c_fd = fd }
let fd (c : conn) = c.c_fd

type recv_error = Timeout | Closed | Garbled of string

let recv_error_to_string = function
  | Timeout -> "timeout"
  | Closed -> "connection closed"
  | Garbled msg -> "garbled frame: " ^ msg

(* ------------------------------------------------------------------ *)
(* Wire encoding                                                       *)
(* ------------------------------------------------------------------ *)

let tag_of = function
  | Plain (Hello _) -> 0
  | Plain Request -> 1
  | Plain (Lease _) -> 2
  | Plain (Result _) -> 3
  | Plain (Heartbeat _) -> 4
  | Plain Shutdown -> 5
  | Failed _ -> 6

let payload_of = function
  | Plain (Hello { shard }) ->
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 (Int32.of_int shard);
    Bytes.unsafe_to_string b
  | Plain Request | Plain Shutdown -> ""
  | Plain (Lease { seq; attempt; body }) ->
    let b = Bytes.create (8 + String.length body) in
    Bytes.set_int32_be b 0 (Int32.of_int seq);
    Bytes.set_int32_be b 4 (Int32.of_int attempt);
    Bytes.blit_string body 0 b 8 (String.length body);
    Bytes.unsafe_to_string b
  | Plain (Result { seq; body }) ->
    let b = Bytes.create (4 + String.length body) in
    Bytes.set_int32_be b 0 (Int32.of_int seq);
    Bytes.blit_string body 0 b 4 (String.length body);
    Bytes.unsafe_to_string b
  | Plain (Heartbeat { execs; covered; crashes }) ->
    let b = Bytes.create 16 in
    Bytes.set_int64_be b 0 (Int64.of_int execs);
    Bytes.set_int32_be b 8 (Int32.of_int covered);
    Bytes.set_int32_be b 12 (Int32.of_int crashes);
    Bytes.unsafe_to_string b
  | Failed { seq; msg } ->
    let b = Bytes.create (4 + String.length msg) in
    Bytes.set_int32_be b 0 (Int32.of_int seq);
    Bytes.blit_string msg 0 b 4 (String.length msg);
    Bytes.unsafe_to_string b

let i32 b off = Int32.to_int (Bytes.get_int32_be b off)

let parse_payload tag (p : Bytes.t) : (internal_frame, string) result =
  let len = Bytes.length p in
  let body off = Bytes.sub_string p off (len - off) in
  match tag with
  | 0 when len = 4 -> Ok (Plain (Hello { shard = i32 p 0 }))
  | 1 when len = 0 -> Ok (Plain Request)
  | 2 when len >= 8 ->
    Ok (Plain (Lease { seq = i32 p 0; attempt = i32 p 4; body = body 8 }))
  | 3 when len >= 4 -> Ok (Plain (Result { seq = i32 p 0; body = body 4 }))
  | 4 when len = 16 ->
    Ok
      (Plain
         (Heartbeat
            {
              execs = Int64.to_int (Bytes.get_int64_be p 0);
              covered = i32 p 8;
              crashes = i32 p 12;
            }))
  | 5 when len = 0 -> Ok (Plain Shutdown)
  | 6 when len >= 4 -> Ok (Failed { seq = i32 p 0; msg = body 4 })
  | t when t >= 0 && t <= 6 ->
    Error (Printf.sprintf "frame type %d with bad payload length %d" t len)
  | t -> Error (Printf.sprintf "unknown frame type %d" t)

let write_all fd (b : Bytes.t) =
  let n = Bytes.length b in
  let pos = ref 0 in
  while !pos < n do
    match Unix.write fd b !pos (n - !pos) with
    | k -> pos := !pos + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let send_internal (c : conn) fr =
  let payload = payload_of fr in
  let plen = String.length payload in
  let b = Bytes.create (9 + plen) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set_uint8 b 4 (tag_of fr);
  Bytes.set_int32_be b 5 (Int32.of_int plen);
  Bytes.blit_string payload 0 b 9 plen;
  write_all c.c_fd b

let send (c : conn) (f : frame) = send_internal c (Plain f)

(* Read exactly [len] bytes, honouring the shared [deadline].  [eof]
   and [stall] name the error for a peer that closes or goes silent at
   this position — EOF at a frame boundary is an orderly [Closed], EOF
   or junk inside a frame is [Garbled]. *)
let read_exact fd buf off len ~deadline ~eof ~stall =
  let pos = ref off and remaining = ref len in
  let result = ref (Ok ()) in
  let continue = ref true in
  while !continue && !remaining > 0 do
    let timeout =
      match deadline with
      | None -> -1.
      | Some d -> d -. Unix.gettimeofday ()
    in
    if deadline <> None && timeout <= 0. then begin
      result := Error stall;
      continue := false
    end
    else begin
      match Unix.select [ fd ] [] [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> () (* select timed out; the deadline check above decides *)
      | _ -> (
        match Unix.read fd buf !pos !remaining with
        | 0 ->
          result := Error eof;
          continue := false
        | k ->
          pos := !pos + k;
          remaining := !remaining - k
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          result := Error eof;
          continue := false)
    end
  done;
  !result

let recv_internal ?timeout_s (c : conn) : (internal_frame, recv_error) result =
  let deadline = Option.map (fun t -> Unix.gettimeofday () +. t) timeout_s in
  let header = Bytes.create 9 in
  (* the first header byte decides boundary-vs-midframe errors; read it
     separately so a clean EOF is Closed, not Garbled *)
  match
    read_exact c.c_fd header 0 1 ~deadline ~eof:Closed ~stall:Timeout
  with
  | Error e -> Error e
  | Ok () -> (
    match
      read_exact c.c_fd header 1 8 ~deadline
        ~eof:(Garbled "EOF inside frame header") ~stall:Timeout
    with
    | Error e -> Error e
    | Ok () ->
      if Bytes.sub_string header 0 4 <> magic then
        Error
          (Garbled
             (Printf.sprintf "bad magic %S (speaking protocol %d?)"
                (Bytes.sub_string header 0 4)
                protocol_version))
      else begin
        let tag = Bytes.get_uint8 header 4 in
        let len = i32 header 5 in
        if len < 0 || len > max_frame_len then
          Error (Garbled (Printf.sprintf "frame length %d out of bounds" len))
        else begin
          let payload = Bytes.create len in
          match
            read_exact c.c_fd payload 0 len ~deadline
              ~eof:(Garbled "EOF inside frame payload") ~stall:Timeout
          with
          | Error e -> Error e
          | Ok () -> (
            match parse_payload tag payload with
            | Ok f -> Ok f
            | Error msg -> Error (Garbled msg))
        end
      end)

let recv ?timeout_s (c : conn) : (frame, recv_error) result =
  match recv_internal ?timeout_s c with
  | Ok (Plain f) -> Ok f
  | Ok (Failed _) -> Error (Garbled "unexpected Failed frame")
  | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Marshal helpers                                                     *)
(* ------------------------------------------------------------------ *)

let encode v = Marshal.to_string v []

let decode (s : string) =
  if String.length s < Marshal.header_size then
    Error "decode: input shorter than a Marshal header"
  else if Marshal.total_size (Bytes.unsafe_of_string s) 0 > String.length s
  then Error "decode: truncated Marshal payload"
  else
    match Marshal.from_string s 0 with
    | v -> Ok v
    | exception Failure msg -> Error ("decode: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Verdicts and limits                                                 *)
(* ------------------------------------------------------------------ *)

type verdict =
  | Done of string
  | Failed of string
  | Quarantined of { q_reason : string; q_attempts : int }

let verdict_to_result = function
  | Done body -> Ok body
  | Failed msg -> Error msg
  | Quarantined { q_reason; q_attempts } ->
    Error
      (Printf.sprintf "quarantined after %d attempts: %s" q_attempts q_reason)

type limits = {
  hang_timeout_s : float;
  lease_deadline_s : float;
  alloc_budget_words : float;
  max_attempts : int;
  breaker_deaths : int;
}

let default_limits =
  {
    hang_timeout_s = 120.;
    lease_deadline_s = infinity;
    alloc_budget_words = infinity;
    max_attempts = 3;
    breaker_deaths = 3;
  }

(* Per-(lease, attempt) chaos stream, derived identically by workers and
   by the inline path: which attempt of which lease a shard-layer fault
   hits is a pure function of the root seed, never of scheduling.  The
   tag space (0x5EED +) sits far above the campaign-cell tags derived
   from the same root. *)
let lease_faults root ~seq ~attempt =
  Faults.derive root ~tag:(0x5EED + (seq * 101) + attempt)

let allocated_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

(* ------------------------------------------------------------------ *)
(* Worker side                                                         *)
(* ------------------------------------------------------------------ *)

let in_worker_flag = ref false
let in_worker () = !in_worker_flag

let worker_loop ?faults ?(alloc_budget_words = infinity) (c : conn) ~f =
  in_worker_flag := true;
  (* K workers share the coordinator's stderr: none of them may draw *)
  Status.set_tty_owner false;
  let lease_base = ref infinity in
  if alloc_budget_words < infinity then
    (* End-of-major-cycle watermark: a lease that allocates past its
       budget exits with the kernel's OOM-kill status.  The alarm stays
       armed for the worker's lifetime; [lease_base] is +inf between
       leases so it can only trip while work is in flight. *)
    ignore
      (Gc.create_alarm (fun () ->
           if allocated_words () -. !lease_base > alloc_budget_words then
             Unix._exit 137));
  let continue = ref true in
  let safe_send fr = try send_internal c fr with _ -> continue := false in
  safe_send (Plain (Hello { shard = Unix.getpid () }));
  while !continue do
    safe_send (Plain Request);
    if !continue then begin
      match recv c with
      | Ok (Lease { seq; attempt; body }) -> (
        let fh = Option.map (fun r -> lease_faults r ~seq ~attempt) faults in
        let inj site =
          match fh with Some h -> Faults.fire h site | None -> false
        in
        (* simulated OOM kill before any work: the coordinator reaps
           exit 137 and classifies the death as worker-oom *)
        if inj Faults.Worker_oom then Unix._exit 137;
        lease_base := allocated_words ();
        let heartbeat ~execs ~covered ~crashes =
          try send c (Heartbeat { execs; covered; crashes }) with _ -> ()
        in
        match f ~heartbeat ~seq ~attempt body with
        | r ->
          lease_base := infinity;
          if inj Faults.Frame_garble then begin
            (* junk where the Result frame belongs: the magic check on
               the coordinator rejects it and kills us *)
            (try write_all c.c_fd (Bytes.of_string "GARBLEDFRAME")
             with _ -> ());
            Unix._exit 1
          end
          else if inj Faults.Frame_stall then begin
            (* a partial header, then silence: a mid-frame stall only
               the coordinator's hang scan can clear *)
            (try write_all c.c_fd (Bytes.of_string (String.sub magic 0 3))
             with _ -> ());
            while true do
              Unix.sleepf 3600.
            done
          end
          else safe_send (Plain (Result { seq; body = r }))
        | exception e ->
          lease_base := infinity;
          safe_send (Failed { seq; msg = Printexc.to_string e }))
      | Ok Shutdown -> continue := false
      | Ok _ | Error _ -> continue := false (* dead or confused coordinator *)
    end
  done

(* ------------------------------------------------------------------ *)
(* Coordinator side                                                    *)
(* ------------------------------------------------------------------ *)

type backend = Fork | Spawn of (Unix.file_descr -> int)

(* Supervision notifications, for the structured log and the flight
   recorder.  Emitted identically by the pooled and inline paths (same
   call sites, same fault streams), so a consumer that renders them per
   lease sees the same stream at any shard count — modulo the
   wall-clock-driven categories (stalls on healthy workers, deadline
   kills), which only occur under those real-time limits. *)
type pool_event =
  | Lease_infra of { category : string; attempt : int; requeued : bool }
      (** an attempt was lost to infrastructure (death/garble/stall/OOM/
          deadline); [requeued] is false when the loss quarantined it *)
  | Lease_retry of { attempt : int; msg : string }
      (** the work function failed on a healthy worker; lease requeued *)
  | Lease_verdict of verdict  (** final, exactly once per lease *)

type stats = {
  mutable st_spawned : int;
  mutable st_died : int;
  mutable st_garbled : int;
  mutable st_hung : int;
  mutable st_oom : int;
  mutable st_deadline : int;
  mutable st_requeued : int;
  mutable st_quarantined : int;
  mutable st_crash_restarts : int;
  mutable st_inline : int;
}

type worker = {
  w_shard : int;
  w_pid : int;
  w_conn : conn;
  mutable w_lease : (int * int) option; (* seq, attempt *)
  mutable w_granted : float; (* when the current lease was dealt *)
  mutable w_last_active : float;
  mutable w_alive : bool;
}

let run_pool ~shards ?(backend = Fork) ?(limits = default_limits) ?faults
    ?ctx ?on_heartbeat ?on_result ?on_event ?on_tick ?journal ~f
    (leases : string array) : verdict array * stats =
  let n = Array.length leases in
  let results : verdict option array = Array.make n None in
  let attempts = Array.make n 0 in
  let deaths = Array.make n 0 in
  let stats =
    {
      st_spawned = 0;
      st_died = 0;
      st_garbled = 0;
      st_hung = 0;
      st_oom = 0;
      st_deadline = 0;
      st_requeued = 0;
      st_quarantined = 0;
      st_crash_restarts = 0;
      st_inline = 0;
    }
  in
  let bump name = Option.iter (fun c -> Ctx.incr c name) ctx in
  let notify seq ev = Option.iter (fun g -> g ~seq ev) on_event in
  let tick () = Option.iter (fun g -> g ()) on_tick in
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    Queue.add i queue
  done;
  let commit seq (v : verdict) =
    if results.(seq) = None then begin
      results.(seq) <- Some v;
      (match v with
      | Done body ->
        Option.iter (fun j -> j ~seq body) journal;
        Option.iter (fun g -> g ~seq) on_result
      | Quarantined _ ->
        stats.st_quarantined <- stats.st_quarantined + 1;
        bump "shard.quarantined"
      | Failed _ -> ());
      notify seq (Lease_verdict v)
    end
  in
  (* One infrastructure-caused attempt loss (death, garble, stall, OOM,
     deadline).  The campaign never fails on infrastructure: a lease
     that exhausts its attempts — or trips the circuit breaker by
     deterministically killing workers — is quarantined, recorded, and
     the rest of the run continues. *)
  let infra_failure seq ~category =
    if results.(seq) = None then begin
      deaths.(seq) <- deaths.(seq) + 1;
      let breaker = deaths.(seq) >= limits.breaker_deaths in
      let exhausted = attempts.(seq) >= limits.max_attempts in
      notify seq
        (Lease_infra
           {
             category;
             attempt = attempts.(seq) - 1;
             requeued = not (breaker || exhausted);
           });
      if breaker then begin
        bump "shard.breaker_tripped";
        commit seq
          (Quarantined
             {
               q_reason =
                 Printf.sprintf "circuit breaker: %d worker deaths (%s)"
                   deaths.(seq) category;
               q_attempts = attempts.(seq);
             })
      end
      else if exhausted then
        commit seq
          (Quarantined { q_reason = category; q_attempts = attempts.(seq) })
      else begin
        stats.st_requeued <- stats.st_requeued + 1;
        bump "shard.requeued";
        Queue.add seq queue
      end
    end
  in
  let finished () = Array.for_all Option.is_some results in
  (* One inline attempt on the calling process: the sequential
     degenerate mode, and the last-resort fallback when no worker can
     be spawned.  Draws the same per-(lease, attempt) fault stream as a
     worker would and mirrors the death accounting, so the final
     verdict per lease is identical to the pooled path. *)
  let run_inline seq =
    attempts.(seq) <- attempts.(seq) + 1;
    let attempt = attempts.(seq) - 1 in
    let fh = Option.map (fun r -> lease_faults r ~seq ~attempt) faults in
    let inj site =
      match fh with Some h -> Faults.fire ?ctx h site | None -> false
    in
    let die ~category =
      stats.st_died <- stats.st_died + 1;
      bump "shard.worker_died";
      infra_failure seq ~category
    in
    if inj Faults.Worker_oom then begin
      stats.st_oom <- stats.st_oom + 1;
      bump "shard.oom_killed";
      die ~category:"worker-oom"
    end
    else begin
      let heartbeat ~execs ~covered ~crashes =
        Option.iter
          (fun g -> g ~shard:0 ~execs ~covered ~crashes)
          on_heartbeat
      in
      match f ~heartbeat ~seq ~attempt leases.(seq) with
      | r ->
        if inj Faults.Frame_garble then begin
          stats.st_garbled <- stats.st_garbled + 1;
          bump "shard.garbled";
          die ~category:"garbled-frame"
        end
        else if inj Faults.Frame_stall then begin
          stats.st_hung <- stats.st_hung + 1;
          bump "shard.hung";
          die ~category:"stalled"
        end
        else commit seq (Done r)
      | exception e ->
        let msg = Printexc.to_string e in
        if attempts.(seq) >= limits.max_attempts then commit seq (Failed msg)
        else begin
          notify seq (Lease_retry { attempt = attempts.(seq) - 1; msg });
          Queue.add seq queue
        end
    end
  in
  if shards <= 1 || n = 0 then begin
    while not (Queue.is_empty queue) do
      tick ();
      run_inline (Queue.pop queue)
    done;
    tick ();
    ( Array.map
        (function Some r -> r | None -> Failed "lease never ran") results,
      stats )
  end
  else begin
    let previous_sigpipe =
      (* a worker dying mid-write must surface as EPIPE, not kill us *)
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ -> None
    in
    let workers : worker list ref = ref [] in
    let alive () = List.filter (fun w -> w.w_alive) !workers in
    let parent_fds () = List.map (fun w -> w.w_conn.c_fd) (alive ()) in
    let spawn shard =
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let pid =
        match backend with
        | Fork -> (
          flush stdout;
          flush stderr;
          match Unix.fork () with
          | 0 ->
            (* the child serves leases on [b]; every inherited parent
               end is closed so a sibling's death is visible as EOF in
               the coordinator, not masked by our copy of its fd *)
            List.iter
              (fun fd -> try Unix.close fd with _ -> ())
              (a :: parent_fds ());
            (try
               worker_loop ?faults
                 ~alloc_budget_words:limits.alloc_budget_words (of_fd b) ~f
             with _ -> ());
            Unix._exit 0
          | pid -> pid)
        | Spawn start -> start b
      in
      Unix.close b;
      stats.st_spawned <- stats.st_spawned + 1;
      let w =
        {
          w_shard = shard;
          w_pid = pid;
          w_conn = of_fd a;
          w_lease = None;
          w_granted = Unix.gettimeofday ();
          w_last_active = Unix.gettimeofday ();
          w_alive = true;
        }
      in
      workers := w :: !workers;
      w
    in
    let reap w =
      (try Unix.close w.w_conn.c_fd with _ -> ());
      match Unix.waitpid [] w.w_pid with
      | _, st -> Some st
      | exception _ -> None
    in
    (* orderly retirement after Shutdown: not a death, nothing requeued *)
    let retire w =
      w.w_alive <- false;
      ignore (reap w)
    in
    let kill_worker ?(category = "worker-death") w =
      if w.w_alive then begin
        w.w_alive <- false;
        (try Unix.kill w.w_pid Sys.sigkill with _ -> ());
        let status = reap w in
        (* a worker that was already dead with the OOM status was killed
           by its resource governor, not by us *)
        let category =
          match (category, status) with
          | "worker-death", Some (Unix.WEXITED 137) ->
            stats.st_oom <- stats.st_oom + 1;
            bump "shard.oom_killed";
            "worker-oom"
          | _ -> category
        in
        stats.st_died <- stats.st_died + 1;
        bump "shard.worker_died";
        match w.w_lease with
        | None -> ()
        | Some (seq, _) ->
          w.w_lease <- None;
          infra_failure seq ~category
      end
    in
    let deal w =
      if Queue.is_empty queue then begin
        match try Some (send w.w_conn Shutdown) with _ -> None with
        | Some () -> retire w
        | None -> kill_worker w
      end
      else begin
        let seq = Queue.pop queue in
        attempts.(seq) <- attempts.(seq) + 1;
        w.w_lease <- Some (seq, attempts.(seq) - 1);
        w.w_granted <- Unix.gettimeofday ();
        w.w_last_active <- Unix.gettimeofday ();
        try
          send w.w_conn
            (Lease { seq; attempt = attempts.(seq) - 1; body = leases.(seq) })
        with _ -> kill_worker w
      end
    in
    (* coordinator_crash draws on its own derived stream, one draw per
       Result frame received; the restart is processed between select
       rounds, never mid-iteration *)
    let coord_faults =
      Option.map (fun r -> Faults.derive r ~tag:0xC0DE) faults
    in
    let restart_requested = ref false in
    let recv_timeout = Float.min 10. limits.hang_timeout_s in
    let handle w =
      match recv_internal ~timeout_s:recv_timeout w.w_conn with
      | Ok (Plain (Hello _)) -> w.w_last_active <- Unix.gettimeofday ()
      | Ok (Plain Request) ->
        w.w_last_active <- Unix.gettimeofday ();
        deal w
      | Ok (Plain (Result { seq; body })) ->
        w.w_last_active <- Unix.gettimeofday ();
        w.w_lease <- None;
        commit seq (Done body);
        (match coord_faults with
        | Some h when Faults.fire ?ctx h Faults.Coordinator_crash ->
          restart_requested := true
        | _ -> ())
      | Ok (Failed { seq; msg }) ->
        w.w_last_active <- Unix.gettimeofday ();
        w.w_lease <- None;
        if results.(seq) = None then begin
          if attempts.(seq) >= limits.max_attempts then
            commit seq (Failed msg)
          else begin
            (* a healthy worker retries elsewhere *)
            notify seq (Lease_retry { attempt = attempts.(seq) - 1; msg });
            Queue.add seq queue
          end
        end
      | Ok (Plain (Heartbeat { execs; covered; crashes })) ->
        w.w_last_active <- Unix.gettimeofday ();
        Option.iter
          (fun g -> g ~shard:w.w_shard ~execs ~covered ~crashes)
          on_heartbeat
      | Ok (Plain (Lease _)) | Ok (Plain Shutdown) ->
        stats.st_garbled <- stats.st_garbled + 1;
        bump "shard.garbled";
        kill_worker w ~category:"garbled-frame"
      | Error Closed -> kill_worker w
      | Error (Garbled _) ->
        stats.st_garbled <- stats.st_garbled + 1;
        bump "shard.garbled";
        kill_worker w ~category:"garbled-frame"
      | Error Timeout -> () (* partial frame in flight; hang scan decides *)
    in
    let spawn_budget = ref (shards * limits.max_attempts) in
    let maybe_spawn () =
      (* keep one worker per queued lease up to [shards], while the
         respawn budget lasts (bounded: each death consumes attempts) *)
      let want = min shards (Queue.length queue + List.length (alive ())) in
      while List.length (alive ()) < want && !spawn_budget > 0 do
        decr spawn_budget;
        let shard = List.length (alive ()) in
        match spawn shard with
        | (_ : worker) ->
          if stats.st_spawned > shards then bump "shard.respawned"
        | exception _ -> spawn_budget := 0
      done
    in
    (* Simulated coordinator crash-restart: the "new" coordinator keeps
       every committed (journaled) result, loses its workers, and
       re-deals in-flight leases.  The attempt charge on those leases is
       refunded so each retry re-draws the same (lease, attempt) fault
       stream an uninterrupted coordinator would have. *)
    let crash_restart () =
      stats.st_crash_restarts <- stats.st_crash_restarts + 1;
      bump "shard.crash_restart";
      List.iter
        (fun w ->
          if w.w_alive then begin
            w.w_alive <- false;
            (match w.w_lease with
            | Some (seq, _) when results.(seq) = None ->
              attempts.(seq) <- attempts.(seq) - 1;
              Queue.add seq queue
            | _ -> ());
            w.w_lease <- None;
            (try Unix.kill w.w_pid Sys.sigkill with _ -> ());
            ignore (reap w)
          end)
        !workers;
      spawn_budget := shards * limits.max_attempts
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun w -> kill_worker w) (alive ());
        match previous_sigpipe with
        | Some b -> (try Sys.set_signal Sys.sigpipe b with _ -> ())
        | None -> ())
      (fun () ->
        for i = 0 to min shards n - 1 do
          match spawn i with
          | (_ : worker) -> ()
          | exception _ -> spawn_budget := 0
        done;
        while not (finished ()) || alive () <> [] do
          tick ();
          let live = alive () in
          if live = [] then begin
            if not (finished ()) then begin
              maybe_spawn ();
              if alive () = [] then begin
                (* nothing spawnable: finish the queue on this process *)
                while not (Queue.is_empty queue) do
                  tick ();
                  stats.st_inline <- stats.st_inline + 1;
                  bump "shard.inline";
                  run_inline (Queue.pop queue)
                done;
                (* leases neither queued nor committed were lost with
                   their workers; fail them explicitly *)
                Array.iteri
                  (fun seq r ->
                    if r = None then
                      commit seq (Failed "lease lost: no worker survived"))
                  results
              end
            end
          end
          else begin
            let fds = List.map (fun w -> w.w_conn.c_fd) live in
            let readable =
              match Unix.select fds [] [] 0.25 with
              | r, _, _ -> r
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
            in
            List.iter
              (fun w ->
                if w.w_alive && List.mem w.w_conn.c_fd readable then handle w)
              live;
            if !restart_requested then begin
              restart_requested := false;
              crash_restart ()
            end;
            let now = Unix.gettimeofday () in
            List.iter
              (fun w ->
                if w.w_alive && w.w_lease <> None then begin
                  if now -. w.w_last_active > limits.hang_timeout_s then begin
                    stats.st_hung <- stats.st_hung + 1;
                    bump "shard.hung";
                    kill_worker w ~category:"stalled"
                  end
                  else if now -. w.w_granted > limits.lease_deadline_s
                  then begin
                    stats.st_deadline <- stats.st_deadline + 1;
                    bump "shard.deadline_killed";
                    kill_worker w ~category:"deadline"
                  end
                end)
              (alive ());
            if not (Queue.is_empty queue) then maybe_spawn ()
          end
        done);
    ( Array.map
        (function Some r -> r | None -> Failed "lease never ran") results,
      stats )
  end
