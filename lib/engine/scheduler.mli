(** Domain-parallel fan-out over a work list.

    Workers claim items off a shared atomic counter; results return in
    input order, so a deterministic per-item function yields identical
    output at any job count. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Map [f] over the list with up to [jobs] domains (default
    {!recommended_jobs}; [jobs <= 1] degrades to [List.map]).  [f] must
    not share mutable state across items.  If any application raises,
    the first exception in input order is re-raised after all workers
    join. *)
