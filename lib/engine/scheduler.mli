(** Domain-parallel fan-out over a work list.

    Workers claim items off a shared atomic counter; results return in
    input order, so a deterministic per-item function yields identical
    output at any job count. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val try_map : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** Map [f] over the list with up to [jobs] domains (default
    {!recommended_jobs}; [jobs <= 1] degrades to a sequential map).
    [f] must not share mutable state across items.  Each item's
    exception is captured in its own slot, so one raising item never
    discards siblings' completed results. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!try_map} with the raising contract: if any application raised, the
    first exception in input order is re-raised after all workers join
    (every other item still ran to completion first). *)

exception Worker_killed
(** The injected domain death ({!Faults.Worker_crash}).  Raised between
    items, never mid-item. *)

type error = {
  e_exn : exn;       (** the last attempt's exception *)
  e_attempts : int;  (** how many attempts were made *)
}

val supervised_map :
  ?jobs:int -> ?attempts:int -> ?faults:Faults.t -> ?ctx:Ctx.t ->
  ('a -> 'b) -> 'a list -> ('b, error) result list
(** Crash-isolated map: each item runs behind its own exception barrier
    and is retried up to [attempts] times (default 2); a persistent
    failure becomes that item's [Error] without disturbing siblings.
    With [faults], each worker derives a private stream for
    {!Faults.Worker_crash} and a fired fault kills that domain after
    claiming an item but *before* running it; orphaned items are
    requeued on the calling domain after the join, so every item
    completes (or fails on its own merits) even if every worker dies.
    Because items are retried/requeued whole and [f] is deterministic,
    the result list is identical at any job count and fault rate — only
    the accounting varies.  With [ctx], bumps [scheduler.retried],
    [.requeued], [.worker_crashed], [.failed] when they occur, and
    [scheduler.ok] once supervision intervened; a healthy run is
    metrics-silent, so registries stay job-count-invariant. *)
