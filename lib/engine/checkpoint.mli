(** Atomic snapshot store for checkpoint/resume.

    Files are [magic · fingerprint · Marshal payload]; writes go to a
    temp file renamed into place, so a kill mid-write leaves either the
    previous or the new complete snapshot, never a torn one.  The
    fingerprint names everything the payload is valid for; {!load}
    refuses a mismatch. *)

val mkdir_p : string -> unit
(** Create the directory (and parents) if missing; best-effort. *)

val save :
  ?faults:Faults.t -> ?ctx:Ctx.t -> ?retry:Retry.policy ->
  path:string -> fingerprint:string -> 'a -> (unit, string) result
(** Atomically write a snapshot.  Each attempt consults the
    [Io_failure] fault site (when [faults] is given) and real
    [Sys_error]s are retried under [retry] (default
    {!Retry.default_policy}); with [ctx], bumps [checkpoint.saved] /
    [checkpoint.save_failed] and [checkpoint.retry.*].
    The payload must be Marshal-safe (no closures, no custom blocks). *)

val load : path:string -> fingerprint:string -> ('a, string) result
(** Read a snapshot back.  [Error] on missing file, foreign format,
    fingerprint mismatch, or a corrupt payload — resume callers treat
    any [Error] as "start from scratch".  The result type must match
    what was saved ([Marshal] is untyped). *)
