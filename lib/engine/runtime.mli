(** Process-level runtime tuning for throughput-oriented binaries. *)

val minor_heap_words : int
(** Minor-heap size (in words, per domain) that {!tune} installs. *)

val tune : unit -> unit
(** Enlarge the minor heap to {!minor_heap_words} (worth ~10 % wall
    time on the fuzzing microbench; allocation counts are unaffected).
    Never shrinks a heap already enlarged via [OCAMLRUNPARAM].  Called
    from binary entry points only — the library itself must not change
    a host program's GC policy. *)
