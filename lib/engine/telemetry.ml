(* The telemetry export layer: machine-readable artifacts over the
   existing metrics/event/span machinery.

   Attaching telemetry to a context enables span tracing and the GC
   probe and installs a periodic sink that rewrites the metrics
   snapshot files every few Coverage_sampled events; finalize writes
   the at-exit snapshot, the Chrome trace, and (optionally) the
   post-run markdown report.

   Determinism rules: wall-clock timestamps appear only in exported
   artifacts (the trace, snapshot mtimes), never in checkpoint
   snapshots or RNG-visible state, so enabling --telemetry cannot
   change fuzz results.  GC and span values are machine-dependent;
   [deterministic_snapshot] strips those families for the jobs:N
   invariance checks. *)

type t = {
  dir : string;
  ctx : Ctx.t;
  flush_every : int;          (* metrics flush per N Coverage_sampled *)
  mutable samples_seen : int;
  mutable sink : Event.sink;
  c_flushes : Metrics.counter;
}

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

(* Prometheus metric names admit [a-zA-Z0-9_:]; the registry's dotted
   families (and per-mutator name suffixes) map onto that with '_'. *)
let prom_name name =
  let buf = Buffer.create (String.length name + 8) in
  Buffer.add_string buf "metamut_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

(* %.17g-style shortest-exact is overkill for counters; render floats
   compactly but losslessly enough for round-trip tests. *)
let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Fmt.str "%.0f" v
  else Fmt.str "%g" v

(* HELP text is a pure function of the family name, so adding it keeps
   every byte-identity contract (jobs:N, shards:K, resume) intact. *)
let prom_help name =
  let pre p = String.starts_with ~prefix:p name in
  if pre "compile." then "compile pipeline outcome and stage tallies"
  else if pre "mucfuzz.fresh_edges." then
    "fresh coverage edges credited to the mutator's accepted mutants"
  else if pre "mucfuzz." then "muCFuzz loop tallies (aggregate and per-mutator)"
  else if pre "opt." then "optimizer pass tallies"
  else if pre "span." then "span duration histogram, nanoseconds (wall clock)"
  else if pre "gc." then "GC probe reading (machine-dependent)"
  else if pre "shard." then "shard pool supervision tally"
  else if pre "faults.injected." then
    "deterministic fault injections fired at this site"
  else if pre "checkpoint." then "checkpoint store operation tally"
  else if pre "pipeline." then "MetaMut pipeline progress tally"
  else if pre "scheduler." then "supervised scheduler tally"
  else if pre "telemetry." then "telemetry exporter bookkeeping (wall clock)"
  else if pre "bisect." then "culprit-pass bisection tally"
  else "metamut engine metric"

let prometheus_of_snapshot (snapshot : (string * Metrics.value) list) : string
    =
  let buf = Buffer.create 2048 in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter
    (fun (name, v) ->
      let pn = prom_name name in
      line "# HELP %s %s" pn (prom_help name);
      match v with
      | Metrics.Counter n ->
        line "# TYPE %s counter" pn;
        line "%s %d" pn n
      | Metrics.Gauge g ->
        line "# TYPE %s gauge" pn;
        line "%s %s" pn (prom_float g)
      | Metrics.Histogram { edges; counts; sum; total } ->
        line "# TYPE %s histogram" pn;
        let cum = ref 0 in
        Array.iteri
          (fun i edge ->
            cum := !cum + counts.(i);
            line "%s_bucket{le=\"%s\"} %d" pn (prom_float edge) !cum)
          edges;
        line "%s_bucket{le=\"+Inf\"} %d" pn total;
        line "%s_sum %s" pn (prom_float sum);
        line "%s_count %d" pn total)
    snapshot;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON snapshot                                                       *)
(* ------------------------------------------------------------------ *)

let json_of_snapshot (snapshot : (string * Metrics.value) list) : string =
  let buf = Buffer.create 2048 in
  let items kind f =
    List.filter_map
      (fun (name, v) -> Option.map (Fmt.str "    %S: %s" name) (f v))
      (List.filter (fun (_, v) -> kind v) snapshot)
  in
  let section last title lines =
    Buffer.add_string buf (Fmt.str "  %S: {\n" title);
    Buffer.add_string buf (String.concat ",\n" lines);
    if lines <> [] then Buffer.add_char buf '\n';
    Buffer.add_string buf (if last then "  }\n" else "  },\n")
  in
  Buffer.add_string buf "{\n";
  section false "counters"
    (items
       (function Metrics.Counter _ -> true | _ -> false)
       (function Metrics.Counter n -> Some (string_of_int n) | _ -> None));
  section false "gauges"
    (items
       (function Metrics.Gauge _ -> true | _ -> false)
       (function Metrics.Gauge g -> Some (prom_float g) | _ -> None));
  let histogram = function
    | Metrics.Histogram { edges; counts; sum; total } ->
      let arr f xs =
        "[" ^ String.concat "," (List.map f (Array.to_list xs)) ^ "]"
      in
      Some
        (Fmt.str
           "{\"edges\": %s, \"counts\": %s, \"sum\": %s, \"total\": %d, \
            \"p50\": %s, \"p95\": %s}"
           (arr prom_float edges)
           (arr string_of_int counts)
           (prom_float sum) total
           (prom_float (Metrics.quantile_of ~edges ~counts ~total 0.5))
           (prom_float (Metrics.quantile_of ~edges ~counts ~total 0.95)))
    | _ -> None
  in
  section true "histograms"
    (items (function Metrics.Histogram _ -> true | _ -> false) histogram);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Determinism filter                                                  *)
(* ------------------------------------------------------------------ *)

(* Families whose values are wall-clock or machine state: span duration
   histograms, GC probe readings, and telemetry's own flush counter
   (periodic flushes ride main-bus events, which parallel workers never
   deliver).  Everything else — counters, event tallies, per-mutator
   families — must be identical at any job count. *)
let nondeterministic_family name =
  String.starts_with ~prefix:"span." name
  || String.starts_with ~prefix:"gc." name
  || String.starts_with ~prefix:"telemetry." name

let deterministic_snapshot (m : Metrics.t) : (string * Metrics.value) list =
  List.filter (fun (name, _) -> not (nondeterministic_family name))
    (Metrics.snapshot m)

(* ------------------------------------------------------------------ *)
(* Per-mutator yield                                                   *)
(* ------------------------------------------------------------------ *)

(* The accept / fresh-edge series a bandit scheduler would consume
   (ROADMAP item 4), sorted by yield so the artifact doubles as a
   leaderboard.  [None] when the registry has no mutator families (a
   run that never fuzzed). *)
let mutator_yield_json (m : Metrics.t) : string option =
  let fam prefix = Metrics.counters_with_prefix m ~prefix in
  let attempts = fam "mucfuzz.attempt." in
  let accepts = fam "mucfuzz.accept." in
  let rejects = fam "mucfuzz.reject." in
  let inapplicable = fam "mucfuzz.inapplicable." in
  let fresh = fam "mucfuzz.fresh_edges." in
  if attempts = [] then None
  else begin
    let names =
      List.concat [ attempts; accepts; rejects; inapplicable; fresh ]
      |> List.map fst |> List.sort_uniq compare
    in
    let get assoc n = Option.value ~default:0 (List.assoc_opt n assoc) in
    let rows =
      names
      |> List.map (fun n ->
             ( n,
               get attempts n,
               get accepts n,
               get rejects n,
               get inapplicable n,
               get fresh n ))
      |> List.sort (fun (na, _, aca, _, _, fa) (nb, _, acb, _, _, fb) ->
             match compare fb fa with
             | 0 -> ( match compare acb aca with 0 -> compare na nb | c -> c)
             | c -> c)
    in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i (n, at, ac, rj, inap, fr) ->
        Buffer.add_string buf
          (Fmt.str
             "  {\"mutator\": %S, \"attempts\": %d, \"accepts\": %d, \
              \"rejects\": %d, \"inapplicable\": %d, \"fresh_edges\": %d}%s\n"
             n at ac rj inap fr
             (if i = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string buf "]\n";
    Some (Buffer.contents buf)
  end

(* ------------------------------------------------------------------ *)
(* File output                                                         *)
(* ------------------------------------------------------------------ *)

let trace_file = "trace.jsonl"
let prom_file = "metrics.prom"
let json_file = "metrics.json"
let report_file = "campaign-report.md"
let folded_file = "profile.folded"
let yield_file = "mutator-yield.json"

let write_file path contents =
  (* snapshot rewrites race nothing (single writer) but a reader tailing
     the file mid-write should never see a torn snapshot *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp path

let flush_metrics (t : t) =
  Metrics.incr t.c_flushes;
  let snapshot = Metrics.snapshot t.ctx.Ctx.metrics in
  write_file (Filename.concat t.dir prom_file)
    (prometheus_of_snapshot snapshot);
  write_file (Filename.concat t.dir json_file) (json_of_snapshot snapshot)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let attach ?(flush_every = 4) ?(tid = 0) ?probe_batch ~dir (ctx : Ctx.t) : t =
  mkdir_p dir;
  ignore (Ctx.enable_trace ~tid ctx);
  ignore (Ctx.enable_probe ?batch:probe_batch ctx);
  let t =
    {
      dir;
      ctx;
      flush_every = max 1 flush_every;
      samples_seen = 0;
      sink = Event.null_sink;
      c_flushes = Metrics.counter ctx.Ctx.metrics "telemetry.flushes";
    }
  in
  (* periodic snapshots ride the coverage-trend cadence: one metrics
     rewrite every [flush_every] Coverage_sampled events keeps long
     campaigns observable without touching the per-mutant hot path *)
  let sink =
    {
      Event.sink_name = "telemetry";
      emit =
        (function
        | Event.Coverage_sampled _ ->
          t.samples_seen <- t.samples_seen + 1;
          if t.samples_seen mod t.flush_every = 0 then flush_metrics t
        | _ -> ());
    }
  in
  t.sink <- sink;
  Event.add_sink ctx.Ctx.bus sink;
  t

let write_trace (t : t) =
  match t.ctx.Ctx.trace with
  | None -> ()
  | Some tr ->
    write_file (Filename.concat t.dir trace_file) (Trace.to_chrome_string tr);
    let folded = Trace.to_folded tr in
    if folded <> "" then
      write_file (Filename.concat t.dir folded_file) folded

let finalize ?report (t : t) =
  Option.iter Probe.sample t.ctx.Ctx.probe;
  Event.remove_sink t.ctx.Ctx.bus t.sink;
  (* the flush counter is part of the snapshot, so bump before writing *)
  flush_metrics t;
  write_trace t;
  Option.iter
    (fun yield -> write_file (Filename.concat t.dir yield_file) yield)
    (mutator_yield_json t.ctx.Ctx.metrics);
  Option.iter
    (fun md -> write_file (Filename.concat t.dir report_file) md)
    report
