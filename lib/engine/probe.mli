(** GC/allocation probes: [Gc.quick_stat] deltas sampled every compile
    batch into the metrics registry, so allocation regressions on the
    compile hot path show up in telemetry snapshots without a bench run.

    Instruments: ["gc.minor_words_per_compile"] (histogram of per-batch
    means), ["gc.promoted_words"] and ["gc.major_collections"] (Sum
    gauges of accumulated deltas), ["gc.heap_words"] (Max gauge).

    GC readings are machine- and schedule-dependent: probe instruments
    are excluded from determinism comparisons (see
    {!Telemetry.deterministic_snapshot}) and never feed RNG-visible
    state. *)

type t

val minor_words_edges : float array

val create : ?batch:int -> Metrics.t -> t
(** Register the probe instruments in a registry and snapshot the
    current GC counters as the baseline.  [batch] (default 64) is the
    number of compiles per sample. *)

val on_compile : t -> unit
(** Count one compile; every [batch] compiles, take a sample. *)

val sample : t -> unit
(** Force a sample of whatever partial batch has accumulated (call at
    run end so the tail batch is not lost). *)

val minor_words_mean : t -> float

val minor_words_p50 : t -> float
val minor_words_p95 : t -> float
(** Quantile estimates over the per-batch minor-words histogram
    ({!Metrics.histogram_quantile}): the distribution's centre and tail,
    which a mean alone hides (one pathological mutant can dominate). *)

val promoted_words : t -> float
val major_collections : t -> float
