(* Domain-parallel fan-out with a work-stealing index counter.

   [try_map] is the primitive: each worker pulls the next unclaimed item
   off a shared Atomic counter and records a per-item [result], so one
   raising item never discards its siblings' completed work.
   [parallel_map] keeps the original raising contract on top of it;
   [supervised_map] adds per-item retries, injected worker deaths, and a
   requeue pass for items orphaned by a dead domain. *)

let recommended_jobs () = Domain.recommended_domain_count ()

let try_map ?(jobs = Domain.recommended_domain_count ()) (f : 'a -> 'b)
    (items : 'a list) : ('b, exn) result list =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  if n = 0 then []
  else if jobs = 1 then
    List.map (fun x -> match f x with v -> Ok v | exception e -> Error e) items
  else begin
    let results : ('b, exn) result option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (* each slot is written by exactly one worker: claiming [i]
             through the atomic counter is the synchronisation *)
          (results.(i) <-
            (match f arr.(i) with
            | v -> Some (Ok v)
            | exception e -> Some (Error e)));
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.to_list results
    |> List.map (function Some r -> r | None -> assert false)
  end

let parallel_map ?jobs (f : 'a -> 'b) (items : 'a list) : 'b list =
  try_map ?jobs f items
  |> List.map (function Ok v -> v | Error e -> raise e)

(* ------------------------------------------------------------------ *)
(* Supervised execution                                                *)
(* ------------------------------------------------------------------ *)

exception Worker_killed
(* The injected domain death: raised *between* items (after claiming,
   before executing), so a killed worker never leaves a half-executed
   item behind — the orphaned item is requeued whole. *)

type error = { e_exn : exn; e_attempts : int }

let supervised_map ?(jobs = Domain.recommended_domain_count ())
    ?(attempts = 2) ?faults ?ctx (f : 'a -> 'b) (items : 'a list) :
    ('b, error) result list =
  let attempts = max 1 attempts in
  let arr = Array.of_list items in
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  if n = 0 then []
  else begin
    (* Per-item barrier: every exception [f] raises is caught here and
       retried up to [attempts] times; the error result carries the last
       exception.  Returns the retry count for accounting. *)
    let run_item x : ('b, error) result * int =
      let rec go k =
        match f x with
        | v -> (Ok v, k - 1)
        | exception e ->
          if k < attempts then go (k + 1)
          else (Error { e_exn = e; e_attempts = k }, k - 1)
      in
      go 1
    in
    let retried = Atomic.make 0 in
    let crashed = Atomic.make 0 in
    let results : ('b, error) result option array = Array.make n None in
    if jobs = 1 then
      Array.iteri
        (fun i x ->
          let r, retries = run_item x in
          Atomic.fetch_and_add retried retries |> ignore;
          results.(i) <- Some r)
        arr
    else begin
      let next = Atomic.make 0 in
      let worker wid () =
        (* each worker draws domain deaths from its own derived stream;
           a fired Worker_crash kills the domain after it claimed an
           item but before running it, so the item is requeued whole *)
        let wf = Option.map (fun t -> Faults.derive t ~tag:(1_000 + wid)) faults in
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (match wf with
            | Some t when Faults.fire t Faults.Worker_crash ->
              raise Worker_killed
            | _ -> ());
            let r, retries = run_item arr.(i) in
            Atomic.fetch_and_add retried retries |> ignore;
            results.(i) <- Some r;
            loop ()
          end
        in
        loop ()
      in
      let guard g =
        match g () with
        | () -> ()
        | exception _ -> Atomic.incr crashed
      in
      let domains =
        List.init (jobs - 1) (fun k -> Domain.spawn (fun () -> guard (worker (k + 1))))
      in
      guard (worker 0);
      List.iter (fun d -> guard (fun () -> Domain.join d)) domains;
      (* graceful degradation: items claimed by a domain that died (or
         never claimed because every domain died) run here, on the main
         domain, with the same per-item barrier *)
      Array.iteri
        (fun i r ->
          if r = None then begin
            Option.iter (fun c -> Ctx.incr c "scheduler.requeued") ctx;
            let r, retries = run_item arr.(i) in
            Atomic.fetch_and_add retried retries |> ignore;
            results.(i) <- Some r
          end)
        results
    end;
    let out =
      Array.to_list results
      |> List.map (function Some r -> r | None -> assert false)
    in
    (* a healthy run is metrics-silent — the registry stays identical to
       a sequential run's, preserving job-count metric invariance; the
       [ok] tally appears only once supervision actually intervened *)
    Option.iter
      (fun c ->
        let count by name = if by > 0 then Ctx.incr ~by c ("scheduler." ^ name) in
        let retried_n = Atomic.get retried in
        let crashed_n = Atomic.get crashed in
        let failed_n = List.length (List.filter Result.is_error out) in
        count retried_n "retried";
        count crashed_n "worker_crashed";
        count failed_n "failed";
        if retried_n + crashed_n + failed_n > 0 then
          count (List.length (List.filter Result.is_ok out)) "ok")
      ctx;
    out
  end
