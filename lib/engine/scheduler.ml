(* Domain-parallel fan-out with a work-stealing index counter.

   [parallel_map] spawns up to [jobs] domains (OCaml 5 Domain.spawn),
   each pulling the next unclaimed item off a shared Atomic counter, and
   joins them all before returning.  Results come back in input order
   regardless of which worker ran which item, so a deterministic
   per-item function gives byte-identical output at any job count. *)

let recommended_jobs () = Domain.recommended_domain_count ()

let parallel_map ?(jobs = Domain.recommended_domain_count ()) (f : 'a -> 'b)
    (items : 'a list) : 'b list =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  if n = 0 then []
  else if jobs = 1 then List.map f items
  else begin
    let results : ('b, exn) result option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (* each slot is written by exactly one worker: claiming [i]
             through the atomic counter is the synchronisation *)
          (results.(i) <-
            (match f arr.(i) with
            | v -> Some (Ok v)
            | exception e -> Some (Error e)));
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error e) -> raise e
         | None -> assert false)
  end
