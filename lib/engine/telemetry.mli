(** The telemetry export layer: machine-readable artifacts over the
    metrics/event/span machinery, written under a [--telemetry DIR].

    {!attach} enables span tracing and the GC probe on a context and
    installs a periodic sink that rewrites the metrics snapshot files
    ([metrics.prom], [metrics.json]) every few [Coverage_sampled]
    events; {!finalize} writes the at-exit snapshot, the Chrome trace
    ([trace.jsonl]), and optionally the post-run markdown report
    ([campaign-report.md]).

    Determinism: wall-clock timestamps live only in the exported
    artifacts, never in checkpoint snapshots or RNG-visible state —
    enabling telemetry cannot change fuzz results.  Span and GC
    families are machine-dependent; {!deterministic_snapshot} strips
    them for jobs:N invariance checks. *)

type t

val attach :
  ?flush_every:int -> ?tid:int -> ?probe_batch:int -> dir:string -> Ctx.t -> t
(** Create [dir], enable tracing (spans tagged [tid], default 0) and
    the GC probe on the context, and start periodic metrics snapshots
    (one rewrite per [flush_every] (default 4) [Coverage_sampled]
    events). *)

val flush_metrics : t -> unit
(** Atomically rewrite [metrics.prom] and [metrics.json] from the
    current registry (write-temp + rename: a tailing reader never sees
    a torn snapshot).  Also bumps the ["telemetry.flushes"] counter. *)

val finalize : ?report:string -> t -> unit
(** Final probe sample, detach the periodic sink, write the at-exit
    metrics snapshot, [trace.jsonl], [profile.folded], and
    [mutator-yield.json] (when the registry has mutator families), and
    — when [report] is given — [campaign-report.md]. *)

(** {2 Pure exporters (used directly by golden tests)} *)

val prom_name : string -> string
(** Registry name to Prometheus name: ["mucfuzz.accept.X"] becomes
    ["metamut_mucfuzz_accept_X"]. *)

val prometheus_of_snapshot : (string * Metrics.value) list -> string
(** Prometheus text exposition format: [# HELP] and [# TYPE] lines per
    family, counters and gauges as single samples, histograms as
    cumulative [_bucket{le="..."}] samples plus [_sum]/[_count]. *)

val mutator_yield_json : Metrics.t -> string option
(** The per-mutator yield leaderboard (attempts / accepts / rejects /
    inapplicable / fresh edges), as a JSON array sorted by fresh-edge
    yield then accepts.  [None] when the registry never fuzzed. *)

val json_of_snapshot : (string * Metrics.value) list -> string
(** One JSON object with ["counters"], ["gauges"], and ["histograms"]
    sections. *)

val deterministic_snapshot : Metrics.t -> (string * Metrics.value) list
(** {!Metrics.snapshot} minus the wall-clock/machine-dependent families
    ([span.*], [gc.*]): the part of telemetry that must be identical at
    any job count. *)

(** {2 Artifact file names under the telemetry dir} *)

val trace_file : string
val prom_file : string
val json_file : string
val report_file : string
val folded_file : string
val yield_file : string

val write_file : string -> string -> unit
(** Atomic write-temp + rename (shared by the flight-recorder dumps). *)
