(** Structured events and the bus that fans them out to pluggable
    sinks.  Events are typed; sinks decide retention (drop, ring, text
    line, per-kind counters). *)

type stage = Frontend | Lower | Opt | Backend
(** Compiler pipeline stages as the engine sees them ({!Lower} is IR
    generation). *)

val stage_to_string : stage -> string

type outcome_kind = Compiled_ok | Compile_failed | Crashed

val outcome_kind_to_string : outcome_kind -> string

type t =
  | Mutant_attempted of { mutator : string }
  | Compile_finished of outcome_kind * stage
      (** [stage] is the last pipeline stage reached *)
  | Coverage_gained of { iteration : int; fresh : int }
  | Coverage_sampled of { iteration : int; covered : int }
      (** periodic coverage-trend sample (iteration 0 = seed baseline) *)
  | Crash_found of { key : string; stage : stage; iteration : int }
  | Pipeline_goal of int * bool
      (** MetaMut validation goal hit, and whether the fix succeeded *)
  | Custom of string

val kind_name : t -> string
val to_string : t -> string

type sink = { sink_name : string; emit : t -> unit }

val null_sink : sink

type ring
(** Fixed-capacity memory ring: keeps the newest [capacity] events. *)

val ring_sink : capacity:int -> ring * sink
(** @raise Invalid_argument when [capacity <= 0]. *)

val ring_seen : ring -> int
(** Total events ever emitted into the ring. *)

val ring_dropped : ring -> int
(** Events evicted by overflow ([seen - capacity], at least 0). *)

val ring_contents : ring -> t list
(** Retained events, oldest first. *)

val text_sink : out:(string -> unit) -> sink
(** Line-oriented sink: one rendered line per event. *)

val metrics_sink : Metrics.t -> sink
(** Counts events by kind into ["event.<kind>"] counters. *)

type bus

val bus : unit -> bus
val add_sink : bus -> sink -> unit

val remove_sink : bus -> sink -> unit
(** Detach by physical identity (scoped listeners remove themselves). *)

val emit : bus -> t -> unit
(** Fan an event out to every sink; O(1) when no sink is attached. *)
