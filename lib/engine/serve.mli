(** Live HTTP scrape surface for running campaigns.

    A minimal HTTP/1.1 server with no thread of its own: the campaign
    calls {!poll} at natural pause points and each poll does a bounded
    amount of non-blocking work (same deadline discipline as
    [Shard.read_exact] — a stalled client is dropped, never waited on).

    Endpoints: [/metrics] (Prometheus text, live registry snapshot),
    [/status.json] (campaign totals, per-shard heartbeat table,
    quarantine list), [/healthz] (200 until the circuit breaker trips,
    503 after), [/series.json] (ring-buffered coverage/exec/crash time
    series). *)

type t

val listen : addr:string -> Ctx.t -> (t, string) result
(** Bind and listen.  [addr] is [HOST:PORT] (TCP; port 0 picks an
    ephemeral port) or a filesystem path (Unix-domain socket).  Ignores
    SIGPIPE for the server's lifetime. *)

val bound_addr : t -> string
(** The actual bound address ([host:port] after ephemeral-port
    resolution, or the socket path). *)

val poll : t -> unit
(** Accept queued connections, read what has arrived, answer complete
    requests.  Non-blocking; bounded by per-connection deadlines. *)

val attach_sink : t -> unit
(** Install a bus sink that folds execs/crashes/coverage from the event
    stream (single-process campaigns), pushes a series point per
    [Coverage_sampled], and polls the socket throttled by the context
    clock. *)

val note_shard :
  t -> shard:int -> execs:int -> covered:int -> crashes:int -> unit
(** Feed one shard heartbeat into the [/status.json] table (sharded
    campaigns, where no events reach the coordinator bus). *)

val note_quarantine : t -> unit_name:string -> reason:string -> unit

val set_done : t -> unit
(** Mark the campaign finished; [/status.json] reports ["done": true]
    so pollers know the registry is final. *)

val linger : t -> seconds:float -> unit
(** Keep serving for [seconds] after campaign end (lets a smoke test
    scrape the final registry without racing shutdown). *)

val close : t -> unit
(** Detach the sink, drop connections, close (and unlink) the socket,
    restore SIGPIPE. *)

val requests_served : t -> int
