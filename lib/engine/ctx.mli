(** The execution context threaded through the compiler, the fuzzers
    and the MetaMut pipeline: one metrics registry, one event bus, and
    a nanosecond clock — plus, when telemetry is enabled, a span-trace
    buffer and a GC probe.

    A context is owned by a single domain; parallel campaigns give each
    worker its own and {!Metrics.merge} the registries (and
    {!Trace.merge} the buffers) at the join barrier. *)

type t = {
  metrics : Metrics.t;
  bus : Event.bus;
  clock : unit -> int64;
  mutable trace : Trace.t option;
  mutable probe : Probe.t option;
  mutable log : Log.t option;
}

val default_clock : unit -> int64
(** Wall clock in nanoseconds ([Unix.gettimeofday]-based). *)

val create : ?clock:(unit -> int64) -> unit -> t
(** Fresh context with no sinks attached (events are dropped until a
    sink is added — the null configuration), tracing and probing off. *)

val emit : t -> Event.t -> unit
val now_ns : t -> int64

val incr : ?by:int -> t -> string -> unit
(** Convenience counter bump (does the name lookup; hot paths should
    pre-resolve with {!Metrics.counter} instead). *)

val enable_trace : ?tid:int -> t -> Trace.t
(** Start recording span instances into a fresh buffer (idempotent:
    returns the existing buffer when already enabled). *)

val enable_probe : ?batch:int -> t -> Probe.t
(** Start GC sampling every [batch] compiles (idempotent). *)

val enable_log : ?level:Log.level -> t -> Log.t
(** Start collecting structured log records (idempotent). *)

val log_event :
  t ->
  ?scope:string ->
  ?phase:int ->
  level:Log.level ->
  event:string ->
  (string * string) list ->
  unit
(** Emit a structured record when logging is enabled; no-op otherwise. *)
