(** The execution context threaded through the compiler, the fuzzers
    and the MetaMut pipeline: one metrics registry, one event bus, and
    a nanosecond clock.

    A context is owned by a single domain; parallel campaigns give each
    worker its own and {!Metrics.merge} the registries at the join
    barrier. *)

type t = {
  metrics : Metrics.t;
  bus : Event.bus;
  clock : unit -> int64;
}

val default_clock : unit -> int64
(** Wall clock in nanoseconds ([Unix.gettimeofday]-based). *)

val create : ?clock:(unit -> int64) -> unit -> t
(** Fresh context with no sinks attached (events are dropped until a
    sink is added — the null configuration). *)

val emit : t -> Event.t -> unit
val now_ns : t -> int64

val incr : ?by:int -> t -> string -> unit
(** Convenience counter bump (does the name lookup; hot paths should
    pre-resolve with {!Metrics.counter} instead). *)
