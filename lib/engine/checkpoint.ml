(* Atomic snapshot store.

   A checkpoint file is [magic]\n[fingerprint]\n[Marshal payload].  The
   fingerprint is the caller's description of everything the payload is
   only valid for (campaign parameters, fault spec, ...): [load] refuses
   a file whose fingerprint differs, so a resumed run can never silently
   continue somebody else's campaign.

   Writes are atomic by the classic temp-file + [Sys.rename] dance: a
   reader (or a resume after a kill) sees either the previous complete
   snapshot or the new complete snapshot, never a torn one.  Saves go
   through {!Retry} and consult the [Io_failure] fault site per attempt,
   so the fault-injection suite exercises the retry path for real. *)

let magic = "METAMUT-CKPT2"

let mkdir_p (dir : string) =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      (try Sys.mkdir d 0o755 with Sys_error _ -> ())
    end
  in
  go dir

let write_file ~path ~fingerprint payload =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (magic ^ "\n");
      output_string oc (fingerprint ^ "\n");
      Marshal.to_channel oc payload []);
  Sys.rename tmp path

let save ?faults ?ctx ?(retry = Retry.default_policy) ~path ~fingerprint
    (payload : 'a) : (unit, string) result =
  let attempt ~attempt:_ =
    let injected =
      match faults with
      | Some f -> Faults.fire ?ctx f Faults.Io_failure
      | None -> false
    in
    if injected then Error "injected i/o failure"
    else
      match write_file ~path ~fingerprint payload with
      | () -> Ok ()
      | exception Sys_error msg -> Error msg
  in
  let out =
    Retry.run ?ctx ~name:"checkpoint.retry" retry
      ~retryable:(function Error _ -> true | Ok _ -> false)
      ~jitter:(fun () -> 0.5) (* waits are simulated; no entropy needed *)
      attempt
  in
  Option.iter
    (fun c ->
      match out.Retry.value with
      | Ok () ->
        Ctx.incr c "checkpoint.saved";
        Ctx.log_event c ~level:Log.Debug ~event:"checkpoint.saved"
          [
            ("file", Filename.basename path);
            ("attempts", string_of_int out.Retry.attempts);
          ]
      | Error msg ->
        Ctx.incr c "checkpoint.save_failed";
        Ctx.log_event c ~level:Log.Error ~event:"checkpoint.save_failed"
          [ ("file", Filename.basename path); ("error", msg) ])
    ctx;
  out.Retry.value

let load ~path ~fingerprint : ('a, string) result =
  if not (Sys.file_exists path) then Error (Fmt.str "no checkpoint at %s" path)
  else
    match open_in_bin path with
    | exception Sys_error msg -> Error msg
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match
            let m = input_line ic in
            let fp = input_line ic in
            (m, fp)
          with
          | exception End_of_file -> Error (Fmt.str "%s: truncated header" path)
          | m, _ when m <> magic -> Error (Fmt.str "%s: not a checkpoint" path)
          | _, fp when fp <> fingerprint ->
            Error
              (Fmt.str "%s: fingerprint mismatch (have %S, want %S)" path fp
                 fingerprint)
          | _ -> (
            match Marshal.from_channel ic with
            | payload -> Ok payload
            | exception (Failure _ | End_of_file) ->
              Error (Fmt.str "%s: corrupt payload" path)))
