(** Tracing spans: wall-clock nanoseconds per named region.

    Durations land in the context registry as ["span.<name>"] histograms
    with {!Metrics.default_time_edges_ns} buckets; the histogram's total
    and sum give call count and cumulative time. *)

val record : Ctx.t -> name:string -> int64 -> unit
(** Record an externally measured duration (nanoseconds). *)

val with_ : Ctx.t -> name:string -> (unit -> 'a) -> 'a
(** Time [f] and record the duration — also when [f] raises (a crashing
    compiler stage still spent the time). *)

val with_opt : Ctx.t option -> name:string -> (unit -> 'a) -> 'a
(** [with_] when a context is present, plain [f ()] otherwise. *)
