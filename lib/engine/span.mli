(** Tracing spans: wall-clock nanoseconds per named region.

    Durations land in the context registry as ["span.<name>"] histograms
    with {!Metrics.default_time_edges_ns} buckets; the histogram's total
    and sum give call count and cumulative time. *)

val record : Ctx.t -> name:string -> int64 -> unit
(** Record an externally measured duration (nanoseconds) into the
    histogram only (no trace instance — there is no start time). *)

val record_instance : Ctx.t -> name:string -> t0:int64 -> t1:int64 -> unit
(** Record a span with explicit endpoints: histogram observation plus,
    when the context traces, a {!Trace} instance. *)

val with_ : Ctx.t -> name:string -> (unit -> 'a) -> 'a
(** Time [f] and record the duration — also when [f] raises (a crashing
    compiler stage still spent the time).  When the context has tracing
    enabled the span instance lands in its {!Trace} buffer too. *)

val with_opt : Ctx.t option -> name:string -> (unit -> 'a) -> 'a
(** [with_] when a context is present, plain [f ()] otherwise. *)
