(* The execution context threaded through the compiler, the fuzzers and
   the MetaMut pipeline: one metrics registry + one event bus + a clock,
   plus (when telemetry is enabled) a span-trace buffer and a GC probe.

   A context is owned by a single domain.  Parallel campaigns give each
   worker its own context and Metrics.merge the registries (and
   Trace.merge the buffers) at the join barrier. *)

type t = {
  metrics : Metrics.t;
  bus : Event.bus;
  clock : unit -> int64;  (* monotonic-enough wall clock, nanoseconds *)
  mutable trace : Trace.t option;  (* span instances, for Chrome export *)
  mutable probe : Probe.t option;  (* GC sampling, per compile batch *)
  mutable log : Log.t option;      (* structured records, for --log *)
}

let default_clock () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let create ?(clock = default_clock) () =
  {
    metrics = Metrics.create ();
    bus = Event.bus ();
    clock;
    trace = None;
    probe = None;
    log = None;
  }

let emit (t : t) e = Event.emit t.bus e
let now_ns (t : t) = t.clock ()

let incr ?(by = 1) (t : t) name =
  Metrics.incr ~by (Metrics.counter t.metrics name)

let enable_trace ?(tid = 0) (t : t) : Trace.t =
  match t.trace with
  | Some tr -> tr
  | None ->
    let tr = Trace.create ~tid () in
    t.trace <- Some tr;
    tr

let enable_probe ?batch (t : t) : Probe.t =
  match t.probe with
  | Some p -> p
  | None ->
    let p = Probe.create ?batch t.metrics in
    t.probe <- Some p;
    p

let enable_log ?level (t : t) : Log.t =
  match t.log with
  | Some lg -> lg
  | None ->
    let lg = Log.create ?level () in
    t.log <- Some lg;
    lg

let log_event (t : t) ?scope ?phase ~level ~event fields =
  match t.log with
  | None -> ()
  | Some lg -> Log.record lg ?scope ?phase ~level ~event fields
