(* The execution context threaded through the compiler, the fuzzers and
   the MetaMut pipeline: one metrics registry + one event bus + a clock.

   A context is owned by a single domain.  Parallel campaigns give each
   worker its own context and Metrics.merge the registries at the join
   barrier. *)

type t = {
  metrics : Metrics.t;
  bus : Event.bus;
  clock : unit -> int64;  (* monotonic-enough wall clock, nanoseconds *)
}

let default_clock () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let create ?(clock = default_clock) () =
  { metrics = Metrics.create (); bus = Event.bus (); clock }

let emit (t : t) e = Event.emit t.bus e
let now_ns (t : t) = t.clock ()

let incr ?(by = 1) (t : t) name =
  Metrics.incr ~by (Metrics.counter t.metrics name)
