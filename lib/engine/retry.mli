(** Bounded retry with exponential backoff + jitter, in simulated time.

    Waits are charged, not slept: {!run} accumulates the backoff it
    would have spent and returns it for the caller's cost accounting
    (the pipeline adds it to [sc_wait_s]). *)

type policy = {
  max_attempts : int;   (** total attempts including the first; >= 1 *)
  base_delay_s : float; (** delay before the 2nd attempt *)
  multiplier : float;   (** exponential growth per retry *)
  max_delay_s : float;  (** per-wait cap, applied before jitter *)
  jitter : float;       (** delay scaled by a factor in [1±jitter] *)
}

val default_policy : policy
(** 4 attempts, 1 s base, ×2, 30 s cap, ±50 % jitter. *)

val delay_for : policy -> attempt:int -> jitter01:float -> float
(** Backoff after failed attempt [n >= 1], with [jitter01] in [\[0,1)]
    selecting the point inside the jitter window.  Pure. *)

type 'a outcome = {
  value : 'a;        (** the last attempt's result *)
  attempts : int;
  waited_s : float;  (** total simulated backoff *)
  recovered : bool;  (** retryable result(s), then a non-retryable one *)
}

val run :
  ?ctx:Ctx.t -> ?name:string -> policy -> retryable:('a -> bool) ->
  jitter:(unit -> float) -> (attempt:int -> 'a) -> 'a outcome
(** Call [f] until [retryable] is false or the budget is exhausted.
    [jitter] is drawn once per backoff (callers pass a deterministic
    session-RNG closure).  With [ctx], bumps [<name>.attempts],
    [.retried], [.recovered], [.exhausted] and [.wait_ms]
    (default name ["retry"]). *)
