(** Multi-process sharding: a length-prefixed binary frame protocol over
    Unix sockets, and a fork/spawn worker pool that deals leases from a
    shared work queue.

    The coordinator owns a queue of opaque lease bodies.  Idle workers
    {i pull}: each sends {!Request} and is granted the next {!Lease}
    (work-stealing — a straggler never serializes the tail, it just
    claims fewer leases).  A worker that dies, hangs past the timeout,
    garbles a frame, blows its allocation budget, or outlives its lease
    deadline is killed and its uncommitted lease is requeued with an
    incremented attempt counter; a lease that exhausts its attempts (or
    trips the circuit breaker by deterministically killing workers) is
    {!Quarantined} — recorded, skipped, campaign continues.  If no
    worker can be respawned the remaining leases run on the calling
    process, so every lease reaches a verdict even if every worker dies
    — the process-level mirror of {!Scheduler.supervised_map}.

    Chaos crosses the process boundary here: with a {!Faults} harness,
    the shard-layer sites ([frame_garble], [frame_stall], [worker_oom],
    [coordinator_crash]) are drawn from a child stream derived per
    (lease, attempt), identically on workers and on the inline path —
    so verdicts stay shard-count-invariant even under injected chaos.

    Framing is versioned: a peer speaking another protocol revision (or
    writing garbage) is detected by the magic check on the next frame
    boundary, never waited on. *)

(** {2 Wire format}

    Every frame is [magic(4) · type(1) · length(4, big-endian) ·
    payload(length)].  The magic's last byte is the protocol version, so
    a cross-version peer fails the magic check rather than being
    misparsed.  Integer payload fields are fixed-width big-endian; lease
    and result bodies are opaque strings (callers typically
    {!encode}/{!decode} them). *)

val protocol_version : int
val magic : string
(** 4 bytes, ["MSF" ^ version byte]. *)

val max_frame_len : int
(** Upper bound on a payload length; longer frames are garbled. *)

type frame =
  | Hello of { shard : int }  (** worker announces itself once *)
  | Request                   (** worker is idle and wants a lease *)
  | Lease of { seq : int; attempt : int; body : string }
  | Result of { seq : int; body : string }
  | Heartbeat of { execs : int; covered : int; crashes : int }
      (** liveness + progress: counters cumulative over the worker's
          lifetime, so the coordinator's per-shard fold is monotone *)
  | Shutdown                  (** coordinator: no more work, exit *)

type conn
(** One end of a worker socket. *)

val of_fd : Unix.file_descr -> conn
val fd : conn -> Unix.file_descr

type recv_error =
  | Timeout          (** no complete frame within the deadline *)
  | Closed           (** EOF at a frame boundary: orderly death *)
  | Garbled of string
      (** bad magic, foreign version, oversized length, or EOF mid-frame *)

val recv_error_to_string : recv_error -> string

val send : conn -> frame -> unit
(** Write one frame.  Raises [Unix.Unix_error] (e.g. [EPIPE]) when the
    peer is gone — {!run_pool} treats that as a worker death. *)

val recv : ?timeout_s:float -> conn -> (frame, recv_error) result
(** Read one complete frame, waiting at most [timeout_s] (default: wait
    forever).  Never blocks past the deadline: a peer that stalls
    mid-frame is a {!Timeout}, one that wrote junk is {!Garbled}. *)

(** {2 Marshal helpers for lease/result bodies} *)

val encode : 'a -> string
val decode : string -> ('a, string) result
(** [decode] catches truncated/corrupt input as [Error] instead of
    raising.  As with any [Marshal], the type is the caller's claim. *)

(** {2 Verdicts and limits} *)

type verdict =
  | Done of string  (** the result body *)
  | Failed of string
      (** the work function failed on its own merits after the full
          attempt budget: a campaign-level failure *)
  | Quarantined of { q_reason : string; q_attempts : int }
      (** infrastructure failed the lease [q_attempts] times (worker
          death/OOM, garbled frame, stall, deadline) or the circuit
          breaker tripped; the lease is set aside and the run continues.
          [q_reason] is a stable category string, identical between the
          pooled and inline paths for injected faults *)

val verdict_to_result : verdict -> (string, string) result
(** [Done] → [Ok]; [Failed] and [Quarantined] → [Error] with a
    human-readable message. *)

type limits = {
  hang_timeout_s : float;
      (** silence while holding a lease before the worker is killed
          (default 120) *)
  lease_deadline_s : float;
      (** total wall-clock per lease attempt, enforced from grant time
          on the coordinator (default [infinity] = off) *)
  alloc_budget_words : float;
      (** per-lease allocation watermark in the worker ([Gc] alarm);
          a lease that allocates past it is OOM-killed with exit 137
          (default [infinity] = off) *)
  max_attempts : int;  (** deal budget per lease (default 3) *)
  breaker_deaths : int;
      (** worker deaths charged to one lease before the circuit breaker
          quarantines it instead of respawning again (default 3) *)
}

val default_limits : limits

(** {2 Worker side} *)

val in_worker : unit -> bool
(** True inside a pool worker process (set by the fork backend and by
    {!worker_loop}).  Test hooks that deliberately kill a worker guard
    on this so they can never take down the coordinator. *)

val worker_loop :
  ?faults:Faults.t ->
  ?alloc_budget_words:float ->
  conn ->
  f:
    (heartbeat:(execs:int -> covered:int -> crashes:int -> unit) ->
    seq:int ->
    attempt:int ->
    string ->
    string) ->
  unit
(** The worker protocol: request, execute, reply, repeat until
    {!Shutdown} (or a dead coordinator socket).  [f] receives the lease
    body and a [heartbeat] it may call during long work; its return
    value is sent back as the {!Result} body.  Marks {!in_worker} and
    relinquishes {!Status} TTY ownership (workers never draw).

    [faults] must be the {i root} harness the coordinator holds (the
    worker derives the per-(lease, attempt) child itself); it arms the
    worker-side chaos sites [worker_oom], [frame_garble], [frame_stall].
    [alloc_budget_words] arms the per-lease allocation watermark. *)

(** {2 Coordinator side} *)

type backend =
  | Fork
      (** [Unix.fork]: the child runs [f] via {!worker_loop} and
          [_exit]s.  Must be chosen before any Domain workers exist. *)
  | Spawn of (Unix.file_descr -> int)
      (** custom spawner: given the child's socket end, start a process
          whose {!worker_loop} serves it (e.g. exec ["metamut worker"]
          with the socket as stdin) and return the pid.  The spawned
          process arms its own faults/budget, typically from the
          environment ({!Faults.export_to_env}/{!Faults.from_env}). *)

type pool_event =
  | Lease_infra of { category : string; attempt : int; requeued : bool }
      (** an attempt was lost to infrastructure (death / garbled frame /
          stall / OOM / deadline); [requeued] is false when the loss
          quarantined the lease *)
  | Lease_retry of { attempt : int; msg : string }
      (** the work function failed on a healthy worker; lease requeued *)
  | Lease_verdict of verdict  (** final, exactly once per lease *)
(** Supervision notifications for the structured log and the flight
    recorder.  The pooled and inline paths emit them from the same call
    sites over the same per-(lease, attempt) fault streams, so per-lease
    event streams are shard-count-invariant (modulo the wall-clock
    categories: real stalls and deadline kills). *)

type stats = {
  mutable st_spawned : int;       (** workers started, incl. respawns *)
  mutable st_died : int;          (** deaths: EOF, kill, garble, hang *)
  mutable st_garbled : int;       (** frames rejected by the magic/length check *)
  mutable st_hung : int;          (** workers killed by the hang timeout *)
  mutable st_oom : int;           (** workers dead with the OOM status (137) *)
  mutable st_deadline : int;      (** workers killed by the lease deadline *)
  mutable st_requeued : int;      (** leases re-dealt after a death *)
  mutable st_quarantined : int;   (** leases set aside by the governor *)
  mutable st_crash_restarts : int;(** simulated coordinator crash-restarts *)
  mutable st_inline : int;        (** lease attempts run on the calling process *)
}

val run_pool :
  shards:int ->
  ?backend:backend ->
  ?limits:limits ->
  ?faults:Faults.t ->
  ?ctx:Ctx.t ->
  ?on_heartbeat:(shard:int -> execs:int -> covered:int -> crashes:int -> unit) ->
  ?on_result:(seq:int -> unit) ->
  ?on_event:(seq:int -> pool_event -> unit) ->
  ?on_tick:(unit -> unit) ->
  ?journal:(seq:int -> string -> unit) ->
  f:
    (heartbeat:(execs:int -> covered:int -> crashes:int -> unit) ->
    seq:int ->
    attempt:int ->
    string ->
    string) ->
  string array ->
  verdict array * stats
(** Deal the lease bodies to [shards] worker processes and collect the
    verdicts in input order.  [shards <= 1] runs every lease on the
    calling process — the degenerate mode sharded runs are compared
    against for determinism, including under injected chaos.

    Failure handling: a worker that EOFs, garbles a frame, goes silent
    for [limits.hang_timeout_s] while holding a lease, exceeds
    [limits.lease_deadline_s] since its grant, or dies with the OOM
    status (exit 137, as the allocation governor does) is killed
    ([SIGKILL] + reap) and the lease requeued; a replacement worker is
    spawned while work remains.  A lease dealt [limits.max_attempts]
    times without a result — or charged [limits.breaker_deaths] worker
    deaths — is {!Quarantined}; only a work-function exception after
    the full attempt budget yields {!Failed}.  If every worker is gone
    and none can be spawned, the remaining queue runs inline.

    [faults] arms the shard-layer chaos sites; [coordinator_crash]
    triggers a simulated coordinator crash-restart (workers lost,
    committed results kept, in-flight leases re-dealt without charging
    their attempt).

    [journal] fires with the result body as each lease commits — before
    the join barrier — so a caller can persist results incrementally
    and survive a real coordinator death.

    With [ctx], bumps [shard.worker_died], [shard.requeued],
    [shard.garbled], [shard.hung], [shard.oom_killed],
    [shard.deadline_killed], [shard.quarantined],
    [shard.breaker_tripped], [shard.crash_restart], [shard.inline],
    [shard.respawned] {i only when the event occurs} — a healthy pool
    is metrics-silent, so merged registries stay shard-count-invariant.

    [on_heartbeat] observes worker progress (for an aggregated status
    line); [on_result] fires as each lease commits; [on_event] receives
    every {!pool_event}; [on_tick] fires once per supervision round
    (at most every select timeout — where a live scrape server polls
    its socket).  All are called on the coordinator, never
    concurrently. *)
