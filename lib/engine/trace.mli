(** Span-instance buffer behind the Chrome trace-event export.

    A context that has tracing enabled appends every {!Span} instance
    here; {!to_chrome_lines} renders the buffer as a Chrome trace-event
    JSON document (one event per line) loadable in Perfetto or
    chrome://tracing.  Parallel campaigns merge per-worker buffers at
    the join barrier in canonical cell order, each under the cell's
    stable tid. *)

type span_rec = {
  sr_name : string;
  sr_ts_ns : int64;   (** wall-clock start, nanoseconds *)
  sr_dur_ns : int64;
  sr_tid : int;       (** Chrome thread id: the stable cell/worker tag *)
}

type t

val create : ?tid:int -> unit -> t
(** Empty buffer; spans record under [tid] (default 0) until {!set_tid}. *)

val set_tid : t -> int -> unit
(** Change the tid stamped on subsequently recorded spans (sequential
    campaigns re-tag one shared buffer per cell). *)

val label_tid : t -> tid:int -> label:string -> unit
(** Attach a display name to a tid (rendered as a [thread_name]
    metadata event).  First label per tid wins. *)

val record : t -> name:string -> ts_ns:int64 -> dur_ns:int64 -> unit

val length : t -> int
val spans : t -> span_rec list

val merge : into:t -> ?tid:int -> t -> unit
(** Append a worker buffer; [tid] retags every appended span (the join
    barrier is authoritative over what the worker stamped). *)

val to_chrome_lines : ?pid:int -> ?process_name:string -> t -> string list
(** The buffer as Chrome trace-event JSON: ["["], one event object per
    line (["ph":"X"] complete events plus [process_name]/[thread_name]
    metadata), ["]"]. *)

val to_chrome_string : ?pid:int -> ?process_name:string -> t -> string
