(** Span-instance buffer behind the Chrome trace-event export.

    A context that has tracing enabled appends every {!Span} instance
    here; {!to_chrome_lines} renders the buffer as a Chrome trace-event
    JSON document (one event per line) loadable in Perfetto or
    chrome://tracing.  Parallel campaigns merge per-worker buffers at
    the join barrier in canonical cell order, each under the cell's
    stable tid. *)

type span_rec = {
  sr_name : string;
  sr_ts_ns : int64;   (** wall-clock start, nanoseconds *)
  sr_dur_ns : int64;
  sr_tid : int;       (** Chrome thread id: the stable cell/worker tag *)
}

type t

val create : ?tid:int -> unit -> t
(** Empty buffer; spans record under [tid] (default 0) until {!set_tid}. *)

val set_tid : t -> int -> unit
(** Change the tid stamped on subsequently recorded spans (sequential
    campaigns re-tag one shared buffer per cell). *)

val label_tid : t -> tid:int -> label:string -> unit
(** Attach a display name to a tid (rendered as a [thread_name]
    metadata event).  First label per tid wins. *)

val record : t -> name:string -> ts_ns:int64 -> dur_ns:int64 -> unit

val length : t -> int
val spans : t -> span_rec list

val merge : into:t -> ?tid:int -> t -> unit
(** Append a worker buffer; [tid] retags every appended span (the join
    barrier is authoritative over what the worker stamped). *)

val to_chrome_lines : ?pid:int -> ?process_name:string -> t -> string list
(** The buffer as Chrome trace-event JSON: ["["], one event object per
    line (["ph":"X"] complete events plus [process_name]/[thread_name]
    metadata), ["]"]. *)

val to_chrome_string : ?pid:int -> ?process_name:string -> t -> string

val json_escape : string -> string
(** JSON string-body escaping (shared with the structured log writer). *)

val fold_self : t -> (string list * int64) list
(** Self time per call stack, reconstructed per tid from interval
    containment (spans carry no parent pointers).  Each stack is rooted
    at the tid's label ([main] for tid 0, [tid-N] otherwise); values are
    nanoseconds of *self* time — a parent's self time plus its
    children's totals equals the parent's total.  Sorted by path. *)

val to_folded : t -> string
(** {!fold_self} rendered as folded-stack lines
    (["campaign;compile.opt;opt.pass.constfold 1234"], microseconds),
    consumable directly by flamegraph.pl or speedscope.  Stacks with
    non-positive self time (< 1µs) are dropped. *)

val self_time_by_name : t -> (string * int64) list
(** Self time (ns) summed per span name, sorted descending — the
    report's "Where the time goes" table.  Synthetic stack roots (tid
    labels) appear with non-positive values; display layers filter. *)
