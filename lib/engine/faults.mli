(** Deterministic fault-injection harness.

    Any layer may consult a harness at one of four {!site}s; the
    decision stream per site is a pure function of (seed, site, draw
    index), so one site's decisions are independent of how other sites'
    draws interleave — the property that keeps faulted campaigns
    byte-identical at any job count.

    A harness is single-domain: parallel consumers must {!derive} a
    child per worker or per campaign cell.  Derivation does not consume
    parent state, so children are stable regardless of creation order. *)

type site =
  | Llm_throttle  (** the §4 API throttle/timeout, a.k.a. [System_error] *)
  | Compile_hang  (** pathological mutant stalling the compiler *)
  | Worker_crash  (** a scheduler domain dying mid-item *)
  | Io_failure    (** checkpoint write failing *)

val all_sites : site list
val site_to_string : site -> string

type config = {
  llm_throttle : float;
  compile_hang : float;
  worker_crash : float;
  io_failure : float;
}
(** Per-site injection probabilities, each in [\[0,1\]]. *)

val no_faults : config
val rate : config -> site -> float

type t
(** A seeded harness (mutable per-site draw counters). *)

val create : ?seed:int -> config -> t
val config_of : t -> config

val derive : t -> tag:int -> t
(** Child harness with the same config and a seed mixed from [tag].
    Distinct tags give independent streams; equal tags reproduce. *)

val fire : ?ctx:Ctx.t -> t -> site -> bool
(** Draw the site's next decision.  A zero-rate site never fires and
    consumes no draw.  With [ctx], fired faults bump
    [faults.injected.<site>]. *)

val parse_spec : string -> (config, string) result
(** ["llm=0.2,hang=0.01,crash=0.05,io=0.02"] (long site names accepted);
    [""], ["off"] and ["none"] mean {!no_faults}. *)

val spec_to_string : config -> string
(** Canonical spec (["off"] for {!no_faults}); round-trips through
    {!parse_spec}. *)

val fingerprint : t -> string
(** Spec + seed, for checkpoint compatibility checks. *)

val config_from_env : unit -> config option
(** Parse [METAMUT_FAULTS] (unset/empty → [None]; malformed → raises
    [Invalid_argument] — CI must not silently run fault-free). *)

val seed_from_env : unit -> int
(** [METAMUT_FAULT_SEED], default 0. *)

val from_env : unit -> t option
(** Harness from both variables, when [METAMUT_FAULTS] is set. *)
