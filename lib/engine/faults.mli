(** Deterministic fault-injection harness.

    Any layer may consult a harness at one of eight {!site}s; the
    decision stream per site is a pure function of (seed, site, draw
    index), so one site's decisions are independent of how other sites'
    draws interleave — the property that keeps faulted campaigns
    byte-identical at any job count.

    The first four sites live inside one process; the last four are the
    shard layer's ({!Shard}) protocol- and resource-level chaos:
    garbled frames, mid-frame stalls, worker OOM kills, and coordinator
    crash-restarts.

    A harness is single-domain: parallel consumers must {!derive} a
    child per worker or per campaign cell.  Derivation does not consume
    parent state, so children are stable regardless of creation order. *)

type site =
  | Llm_throttle  (** the §4 API throttle/timeout, a.k.a. [System_error] *)
  | Compile_hang  (** pathological mutant stalling the compiler *)
  | Worker_crash  (** a scheduler domain dying mid-item *)
  | Io_failure    (** checkpoint write failing *)
  | Frame_garble  (** worker emits a corrupt frame instead of its Result *)
  | Frame_stall   (** worker stalls mid-frame, holding the connection *)
  | Worker_oom    (** worker is OOM-killed at lease start (exit 137) *)
  | Coordinator_crash
      (** coordinator crash-restart after committing a result *)

val all_sites : site list
val site_to_string : site -> string

type config = {
  llm_throttle : float;
  compile_hang : float;
  worker_crash : float;
  io_failure : float;
  frame_garble : float;
  frame_stall : float;
  worker_oom : float;
  coordinator_crash : float;
}
(** Per-site injection probabilities, each in [\[0,1\]]. *)

val no_faults : config
val rate : config -> site -> float

type t
(** A seeded harness (mutable per-site draw counters). *)

val create : ?seed:int -> config -> t
val config_of : t -> config
val seed_of : t -> int

val derive : t -> tag:int -> t
(** Child harness with the same config and a seed mixed from [tag].
    Distinct tags give independent streams; equal tags reproduce. *)

val fire : ?ctx:Ctx.t -> t -> site -> bool
(** Draw the site's next decision.  A zero-rate site never fires and
    consumes no draw.  With [ctx], fired faults bump
    [faults.injected.<site>]. *)

val parse_spec : string -> (config, string) result
(** ["llm=0.2,hang=0.01,crash=0.05,io=0.02,frame=0.1,stall=0.05,oom=0.01,coord=0.02"]
    (long site names accepted); [""], ["off"] and ["none"] mean
    {!no_faults}.  Legacy four-site specs parse to the same config as
    before with the shard-layer rates at zero. *)

val spec_to_string : config -> string
(** Canonical spec (["off"] for {!no_faults}); round-trips through
    {!parse_spec}. *)

val fingerprint : t -> string
(** Spec + seed, for checkpoint compatibility checks. *)

val config_from_env : unit -> config option
(** Parse [METAMUT_FAULTS] (unset/empty → [None]; malformed → raises
    [Invalid_argument] — CI must not silently run fault-free). *)

val seed_from_env : unit -> int
(** [METAMUT_FAULT_SEED], default 0. *)

val from_env : unit -> t option
(** Harness from both variables, when [METAMUT_FAULTS] is set. *)

val export_to_env : t -> unit
(** Write the harness back into [METAMUT_FAULTS]/[METAMUT_FAULT_SEED] so
    spawned worker processes rebuild the same root via {!from_env}. *)
