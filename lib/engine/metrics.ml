(* The metrics registry: counters, gauges and fixed-bucket histograms.

   Hot paths pre-resolve their instruments once (a Hashtbl lookup at
   set-up time) and then pay a single unboxed mutation per event;
   snapshotting and merging are cold paths used only for reporting and
   for joining per-worker registries after a parallel campaign. *)

type counter = { c_name : string; mutable c_count : int }

(* How a gauge joins its per-worker copies at the merge barrier.  A
   last-writer-wins gauge depends on worker join order (and on
   supervised_map requeues), so [Last] is only for values where any
   worker's reading is as good as another's; order-independent campaigns
   want [Max] (high-water marks) or [Sum] (accumulated deltas). *)
type gauge_policy = Max | Sum | Last

type gauge = {
  g_name : string;
  mutable g_value : float;
  g_policy : gauge_policy;
}

type histogram = {
  h_name : string;
  h_edges : float array;  (* strictly increasing upper bounds *)
  h_counts : int array;   (* length = |edges| + 1; last = overflow *)
  mutable h_sum : float;
  mutable h_total : int;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let counter (t : t) name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_count = 0 } in
    Hashtbl.replace t.counters name c;
    c

let incr ?(by = 1) (c : counter) = c.c_count <- c.c_count + by
let counter_value (c : counter) = c.c_count

let gauge ?(policy = Max) (t : t) name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_value = 0.; g_policy = policy } in
    Hashtbl.replace t.gauges name g;
    g

let set (g : gauge) v = g.g_value <- v
let add (g : gauge) v = g.g_value <- g.g_value +. v
let gauge_value (g : gauge) = g.g_value
let gauge_policy (g : gauge) = g.g_policy

(* Wall-clock span buckets: 1us .. 10s, in decades of nanoseconds. *)
let default_time_edges_ns =
  [| 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9; 1e10 |]

let validate_edges edges =
  let n = Array.length edges in
  if n = 0 then invalid_arg "Metrics.histogram: empty bucket edges";
  for i = 1 to n - 1 do
    if edges.(i) <= edges.(i - 1) then
      invalid_arg "Metrics.histogram: bucket edges must strictly increase"
  done

let histogram ?(edges = default_time_edges_ns) (t : t) name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    validate_edges edges;
    let h =
      {
        h_name = name;
        h_edges = Array.copy edges;
        h_counts = Array.make (Array.length edges + 1) 0;
        h_sum = 0.;
        h_total = 0;
      }
    in
    Hashtbl.replace t.histograms name h;
    h

(* Smallest bucket whose upper bound admits [v]; |edges| = overflow. *)
let bucket_index (h : histogram) v =
  let n = Array.length h.h_edges in
  if v > h.h_edges.(n - 1) then n
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= h.h_edges.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  end

let observe (h : histogram) v =
  let i = bucket_index h v in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_total <- h.h_total + 1

let histogram_mean (h : histogram) =
  if h.h_total = 0 then 0. else h.h_sum /. float_of_int h.h_total

(* Prometheus-style quantile estimate from bucket counts: find the
   bucket holding the q-th observation and interpolate linearly inside
   it.  The overflow bucket has no upper bound, so values landing there
   clamp to the top edge — like `histogram_quantile` over `+Inf`. *)
let quantile_of ~(edges : float array) ~(counts : int array) ~total q =
  if total = 0 then 0.
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank = q *. float_of_int total in
    let n = Array.length edges in
    let rec go i cum =
      if i >= n then edges.(n - 1)
      else begin
        let cum' = cum + counts.(i) in
        if float_of_int cum' >= rank then begin
          let lo = if i = 0 then 0. else edges.(i - 1) in
          let hi = edges.(i) in
          if counts.(i) = 0 then hi
          else
            lo
            +. (hi -. lo)
               *. ((rank -. float_of_int cum) /. float_of_int counts.(i))
        end
        else go (i + 1) cum'
      end
    in
    go 0 0
  end

let histogram_quantile (h : histogram) q =
  quantile_of ~edges:h.h_edges ~counts:h.h_counts ~total:h.h_total q

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      edges : float array;
      counts : int array;
      sum : float;
      total : int;
    }

let snapshot (t : t) : (string * value) list =
  let acc = ref [] in
  Hashtbl.iter (fun k c -> acc := (k, Counter c.c_count) :: !acc) t.counters;
  Hashtbl.iter (fun k g -> acc := (k, Gauge g.g_value) :: !acc) t.gauges;
  Hashtbl.iter
    (fun k h ->
      acc :=
        ( k,
          Histogram
            {
              edges = Array.copy h.h_edges;
              counts = Array.copy h.h_counts;
              sum = h.h_sum;
              total = h.h_total;
            } )
        :: !acc)
    t.histograms;
  List.sort (fun (a, _) (b, _) -> compare a b) !acc

let counters_with_prefix (t : t) ~prefix : (string * int) list =
  Hashtbl.fold
    (fun k c acc ->
      if String.starts_with ~prefix k then
        (String.sub k (String.length prefix)
           (String.length k - String.length prefix),
         c.c_count)
        :: acc
      else acc)
    t.counters []
  |> List.sort compare

(* Join a worker's registry into the main one (counters and histogram
   buckets add; gauges join under their declared policy, so the merged
   value is independent of worker join order for Max and Sum). *)
let merge ~into:(dst : t) (src : t) =
  Hashtbl.iter
    (fun k (c : counter) -> incr ~by:c.c_count (counter dst k))
    src.counters;
  Hashtbl.iter
    (fun k (g : gauge) ->
      let d = gauge ~policy:g.g_policy dst k in
      match d.g_policy with
      | Max -> if g.g_value > d.g_value then set d g.g_value
      | Sum -> add d g.g_value
      | Last -> set d g.g_value)
    src.gauges;
  Hashtbl.iter
    (fun k (h : histogram) ->
      let d = histogram ~edges:h.h_edges dst k in
      if d.h_edges <> h.h_edges then
        invalid_arg
          (Fmt.str "Metrics.merge: histogram %s has mismatched bucket edges" k);
      Array.iteri
        (fun i n -> d.h_counts.(i) <- d.h_counts.(i) + n)
        h.h_counts;
      d.h_sum <- d.h_sum +. h.h_sum;
      d.h_total <- d.h_total + h.h_total)
    src.histograms
