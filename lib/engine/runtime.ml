(* Process-level runtime tuning for throughput-oriented binaries.

   The fuzzing hot path is allocation-lean but still minor-heap bound:
   with the default 256k-word minor heap the 2k-iteration microbench
   spends ~10 % of wall time in minor collections.  An 8M-word minor
   heap (64 MiB per domain) recovers that without touching any
   per-compile accounting — [Gc.minor_words] counts allocation, not
   collections, so the benchmark's minor-words-per-compile metric is
   unaffected.

   This lives in a function the binaries call, not a library side
   effect: linking the engine must never change the GC policy of a
   host program. *)

let minor_heap_words = 8 * 1024 * 1024

let tune () =
  let g = Gc.get () in
  (* never shrink a heap the user enlarged via OCAMLRUNPARAM *)
  if g.Gc.minor_heap_size < minor_heap_words then
    Gc.set { g with Gc.minor_heap_size = minor_heap_words }
