(* Structured events and the bus that fans them out to pluggable sinks.

   Events are typed (no string parsing on the hot path); sinks decide
   what to retain: nothing (null), the last N events (memory ring), a
   line per event (text), or per-kind counters (metrics). *)

type stage = Frontend | Lower | Opt | Backend

let stage_to_string = function
  | Frontend -> "frontend"
  | Lower -> "lower"
  | Opt -> "opt"
  | Backend -> "backend"

type outcome_kind = Compiled_ok | Compile_failed | Crashed

let outcome_kind_to_string = function
  | Compiled_ok -> "compiled"
  | Compile_failed -> "compile-error"
  | Crashed -> "crash"

type t =
  | Mutant_attempted of { mutator : string }
  | Compile_finished of outcome_kind * stage
      (* stage = last pipeline stage reached *)
  | Coverage_gained of { iteration : int; fresh : int }
  | Coverage_sampled of { iteration : int; covered : int }
  | Crash_found of { key : string; stage : stage; iteration : int }
  | Pipeline_goal of int * bool  (* validation goal, fix succeeded *)
  | Custom of string

let kind_name = function
  | Mutant_attempted _ -> "mutant_attempted"
  | Compile_finished _ -> "compile_finished"
  | Coverage_gained _ -> "coverage_gained"
  | Coverage_sampled _ -> "coverage_sampled"
  | Crash_found _ -> "crash_found"
  | Pipeline_goal _ -> "pipeline_goal"
  | Custom _ -> "custom"

let to_string = function
  | Mutant_attempted { mutator } -> Fmt.str "mutant-attempted %s" mutator
  | Compile_finished (k, s) ->
    Fmt.str "compile-finished %s @@%s" (outcome_kind_to_string k)
      (stage_to_string s)
  | Coverage_gained { iteration; fresh } ->
    Fmt.str "coverage-gained +%d @@%d" fresh iteration
  | Coverage_sampled { iteration; covered } ->
    Fmt.str "coverage-sampled %d @@%d" covered iteration
  | Crash_found { key; stage; iteration } ->
    Fmt.str "crash-found %s @@%s @@%d" key (stage_to_string stage) iteration
  | Pipeline_goal (goal, fixed) ->
    Fmt.str "pipeline-goal #%d %s" goal (if fixed then "fixed" else "unfixed")
  | Custom s -> Fmt.str "custom %s" s

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

type sink = { sink_name : string; emit : t -> unit }

let null_sink = { sink_name = "null"; emit = (fun _ -> ()) }

type ring = {
  r_capacity : int;
  r_buf : t option array;
  mutable r_seen : int;  (* total events ever emitted *)
}

let ring_sink ~capacity : ring * sink =
  if capacity <= 0 then invalid_arg "Event.ring_sink: capacity must be > 0";
  let r = { r_capacity = capacity; r_buf = Array.make capacity None; r_seen = 0 } in
  let emit e =
    r.r_buf.(r.r_seen mod r.r_capacity) <- Some e;
    r.r_seen <- r.r_seen + 1
  in
  (r, { sink_name = "ring"; emit })

let ring_seen (r : ring) = r.r_seen
let ring_dropped (r : ring) = max 0 (r.r_seen - r.r_capacity)

(* Oldest-to-newest retained events. *)
let ring_contents (r : ring) : t list =
  let kept = min r.r_seen r.r_capacity in
  List.init kept (fun i ->
      match r.r_buf.((r.r_seen - kept + i) mod r.r_capacity) with
      | Some e -> e
      | None -> assert false)

let text_sink ~out = { sink_name = "text"; emit = (fun e -> out (to_string e)) }

(* Counts events by kind into "event.<kind>" counters. *)
let metrics_sink (m : Metrics.t) =
  {
    sink_name = "metrics";
    emit = (fun e -> Metrics.incr (Metrics.counter m ("event." ^ kind_name e)));
  }

(* ------------------------------------------------------------------ *)
(* Bus                                                                 *)
(* ------------------------------------------------------------------ *)

type bus = { mutable sinks : sink list }

let bus () = { sinks = [] }
let add_sink (b : bus) s = b.sinks <- b.sinks @ [ s ]

(* Removal is by physical identity: scoped listeners (e.g. μCFuzz's
   trend sink) detach exactly themselves at tear-down. *)
let remove_sink (b : bus) (s : sink) =
  b.sinks <- List.filter (fun s' -> s' != s) b.sinks

let emit (b : bus) e =
  match b.sinks with
  | [] -> ()
  | sinks -> List.iter (fun s -> s.emit e) sinks
