(* Deterministic fault injection.

   Each harness owns eight independent draw streams, one per fault site.
   A draw at site S is a pure function of (harness seed, site, per-site
   draw index), NOT of a shared mutable RNG state — so the sequence of
   decisions a given site sees is independent of how draws at other
   sites interleave with it.  That is what makes faulted campaigns
   byte-identical at any job count: a cell's compile-hang stream does
   not shift because a sibling worker consulted its own crash stream
   first.

   The first four sites live inside one process (pipeline, compiler,
   scheduler, checkpoint); the last four cross the process boundary and
   are consulted by the shard layer (Engine.Shard): garbled frames,
   mid-frame stalls, worker OOM kills, and coordinator crash-restarts.

   A harness is single-domain by construction (the per-site counters are
   plain mutable ints).  Parallel consumers must [derive] a child
   harness per worker / per campaign cell; derivation mixes the tag into
   the seed without consuming parent state, so children are stable
   regardless of creation order. *)

type site =
  | Llm_throttle
  | Compile_hang
  | Worker_crash
  | Io_failure
  | Frame_garble
  | Frame_stall
  | Worker_oom
  | Coordinator_crash

let all_sites =
  [
    Llm_throttle; Compile_hang; Worker_crash; Io_failure; Frame_garble;
    Frame_stall; Worker_oom; Coordinator_crash;
  ]

let site_to_string = function
  | Llm_throttle -> "llm_throttle"
  | Compile_hang -> "compile_hang"
  | Worker_crash -> "worker_crash"
  | Io_failure -> "io_failure"
  | Frame_garble -> "frame_garble"
  | Frame_stall -> "frame_stall"
  | Worker_oom -> "worker_oom"
  | Coordinator_crash -> "coordinator_crash"

let site_index = function
  | Llm_throttle -> 0
  | Compile_hang -> 1
  | Worker_crash -> 2
  | Io_failure -> 3
  | Frame_garble -> 4
  | Frame_stall -> 5
  | Worker_oom -> 6
  | Coordinator_crash -> 7

let site_count = 8

type config = {
  llm_throttle : float;
  compile_hang : float;
  worker_crash : float;
  io_failure : float;
  frame_garble : float;
  frame_stall : float;
  worker_oom : float;
  coordinator_crash : float;
}

let no_faults =
  {
    llm_throttle = 0.;
    compile_hang = 0.;
    worker_crash = 0.;
    io_failure = 0.;
    frame_garble = 0.;
    frame_stall = 0.;
    worker_oom = 0.;
    coordinator_crash = 0.;
  }

let rate (c : config) = function
  | Llm_throttle -> c.llm_throttle
  | Compile_hang -> c.compile_hang
  | Worker_crash -> c.worker_crash
  | Io_failure -> c.io_failure
  | Frame_garble -> c.frame_garble
  | Frame_stall -> c.frame_stall
  | Worker_oom -> c.worker_oom
  | Coordinator_crash -> c.coordinator_crash

let with_rate (c : config) site r =
  match site with
  | Llm_throttle -> { c with llm_throttle = r }
  | Compile_hang -> { c with compile_hang = r }
  | Worker_crash -> { c with worker_crash = r }
  | Io_failure -> { c with io_failure = r }
  | Frame_garble -> { c with frame_garble = r }
  | Frame_stall -> { c with frame_stall = r }
  | Worker_oom -> { c with worker_oom = r }
  | Coordinator_crash -> { c with coordinator_crash = r }

type t = {
  config : config;
  seed : int64;
  counts : int array; (* per-site draw index; single-domain *)
}

let create ?(seed = 0) config =
  { config; seed = Int64.of_int seed; counts = Array.make site_count 0 }

let config_of (t : t) = t.config
let seed_of (t : t) = Int64.to_int t.seed

(* splitmix64 finalizer: full avalanche over the 64-bit input. *)
let mix64 (z : int64) : int64 =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let golden = 0x9E3779B97F4A7C15L

let derive (t : t) ~tag =
  {
    config = t.config;
    seed = mix64 (Int64.add t.seed (Int64.mul golden (Int64.of_int (tag + 1))));
    counts = Array.make site_count 0;
  }

(* Uniform float in [0,1) from the (seed, site, k) triple: two rounds of
   the finalizer over seed + site·φ + k·φ², 53 mantissa bits. *)
let draw (t : t) site k =
  let open Int64 in
  let salt = mul golden (of_int (site_index site + 11)) in
  let x = add t.seed (add salt (mul (mul golden golden) (of_int (k + 1)))) in
  let bits = shift_right_logical (mix64 (mix64 x)) 11 in
  Int64.to_float bits /. 9007199254740992. (* 2^53 *)

(* The shard-layer sites are drawn with the coordinator's context in the
   inline degenerate pool but with no context at all in a real worker
   process, so logging them here would make log bodies depend on the
   shard count.  Their injections surface through the pool's supervision
   events instead; only the in-process sites log at the draw. *)
let in_process_site = function
  | Llm_throttle | Compile_hang | Worker_crash | Io_failure -> true
  | Frame_garble | Frame_stall | Worker_oom | Coordinator_crash -> false

let fire ?ctx (t : t) site =
  let r = rate t.config site in
  if r <= 0. then false
  else begin
    let i = site_index site in
    let k = t.counts.(i) in
    t.counts.(i) <- k + 1;
    let hit = draw t site k < r in
    if hit then
      Option.iter
        (fun c ->
          Ctx.incr c ("faults.injected." ^ site_to_string site);
          if in_process_site site then
            Ctx.log_event c ~level:Log.Warn ~event:"fault.injected"
              [ ("site", site_to_string site); ("draw", string_of_int k) ])
        ctx;
    hit
  end

(* ------------------------------------------------------------------ *)
(* Spec syntax:                                                        *)
(*   "llm=0.2,hang=0.01,crash=0.05,io=0.02,frame=0.1,stall=0.05,       *)
(*    oom=0.01,coord=0.02"                                             *)
(* ------------------------------------------------------------------ *)

let key_of_site = function
  | Llm_throttle -> "llm"
  | Compile_hang -> "hang"
  | Worker_crash -> "crash"
  | Io_failure -> "io"
  | Frame_garble -> "frame"
  | Frame_stall -> "stall"
  | Worker_oom -> "oom"
  | Coordinator_crash -> "coord"

let site_of_key = function
  | "llm" | "llm_throttle" -> Some Llm_throttle
  | "hang" | "compile_hang" -> Some Compile_hang
  | "crash" | "worker_crash" -> Some Worker_crash
  | "io" | "io_failure" -> Some Io_failure
  | "frame" | "frame_garble" -> Some Frame_garble
  | "stall" | "frame_stall" -> Some Frame_stall
  | "oom" | "worker_oom" -> Some Worker_oom
  | "coord" | "coordinator_crash" -> Some Coordinator_crash
  | _ -> None

let parse_spec (s : string) : (config, string) result =
  let s = String.trim s in
  if s = "" || s = "off" || s = "none" then Ok no_faults
  else
    let parts = String.split_on_char ',' s in
    List.fold_left
      (fun acc part ->
        match acc with
        | Error _ -> acc
        | Ok cfg -> (
          match String.index_opt part '=' with
          | None -> Error (Fmt.str "fault spec %S: expected key=rate" part)
          | Some i -> (
            let key = String.trim (String.sub part 0 i) in
            let v = String.trim (String.sub part (i + 1) (String.length part - i - 1)) in
            match (site_of_key key, float_of_string_opt v) with
            | None, _ -> Error (Fmt.str "fault spec: unknown site %S" key)
            | _, None -> Error (Fmt.str "fault spec: bad rate %S" v)
            | Some _, Some r when r < 0. || r > 1. ->
              Error (Fmt.str "fault spec: rate %g outside [0,1]" r)
            | Some site, Some r -> Ok (with_rate cfg site r))))
      (Ok no_faults) parts

let spec_to_string (c : config) : string =
  all_sites
  |> List.filter_map (fun s ->
         let r = rate c s in
         if r > 0. then Some (Fmt.str "%s=%g" (key_of_site s) r) else None)
  |> function
  | [] -> "off"
  | kvs -> String.concat "," kvs

let fingerprint (t : t) = Fmt.str "%s#%Ld" (spec_to_string t.config) t.seed

(* CI hook: METAMUT_FAULTS holds a spec, METAMUT_FAULT_SEED the harness
   seed.  An unset or empty variable means "no override"; a malformed
   spec is an error worth failing loudly on (a CI job that silently ran
   fault-free would defeat its purpose). *)
let config_from_env () : config option =
  match Sys.getenv_opt "METAMUT_FAULTS" with
  | None -> None
  | Some s when String.trim s = "" -> None
  | Some s -> (
    match parse_spec s with
    | Ok c -> Some c
    | Error msg -> invalid_arg ("METAMUT_FAULTS: " ^ msg))

let seed_from_env () : int =
  match Sys.getenv_opt "METAMUT_FAULT_SEED" with
  | None -> 0
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n -> n | None -> 0)

let from_env () : t option =
  Option.map (fun c -> create ~seed:(seed_from_env ()) c) (config_from_env ())

(* The CLI arms worker subprocesses (the Spawn backend execs a fresh
   binary) by exporting the harness back into the same variables the
   workers read with [from_env]. *)
let export_to_env (t : t) =
  Unix.putenv "METAMUT_FAULTS" (spec_to_string t.config);
  Unix.putenv "METAMUT_FAULT_SEED" (string_of_int (seed_of t))
