(* The live scrape surface: a minimal HTTP/1.1 server polled from the
   campaign's own control flow.

   No threads, no event loop of its own: the owner calls [poll] at
   natural pause points (the coordinator's select rounds, a throttled
   event sink on the single-process path) and [poll] does a bounded
   amount of non-blocking work — accept whatever is queued, read
   whatever has arrived, answer whatever is complete — under the same
   deadline discipline as [Shard.read_exact].  A stalled or hostile
   client therefore costs the campaign one failed syscall per poll,
   never a wedge; its connection is dropped when its deadline passes.

   Everything served is a *read* of state the engine already maintains
   (the metrics registry, the heartbeat table, the quarantine list), so
   serving cannot change fuzz results. *)

type sample = {
  sa_iteration : int;
  sa_execs : int;
  sa_covered : int;
  sa_crashes : int;
  sa_elapsed_s : float;
}

type conn = {
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;
  c_deadline : float;  (* gettimeofday; request must complete by then *)
}

type t = {
  ctx : Ctx.t;
  sock : Unix.file_descr;
  bound : string;
  unix_path : string option;  (* unlink on close *)
  mutable conns : conn list;
  series : sample option array;  (* ring, newest overwrites oldest *)
  mutable series_seen : int;
  shard_tbl : (int, int * int * int) Hashtbl.t;
  mutable quarantined : (string * string) list;  (* newest first *)
  mutable execs : int;
  mutable crashes : int;
  mutable covered : int;
  mutable iteration : int;
  mutable plateau : int;
  mutable done_flag : bool;
  mutable requests : int;
  started_ns : int64;
  mutable last_poll_ns : int64;
  mutable last_shard_sample_ns : int64;
  mutable sink : Event.sink option;
  prev_sigpipe : Sys.signal_behavior option;
}

let series_capacity = 512
let request_deadline_s = 0.25
let write_deadline_s = 1.0
let max_request_bytes = 8192

(* ------------------------------------------------------------------ *)
(* Listen                                                              *)
(* ------------------------------------------------------------------ *)

(* ADDR grammar: a '/' anywhere means a Unix-domain socket path;
   otherwise HOST:PORT (port 0 asks the kernel for an ephemeral port —
   [bound_addr] reports what it picked). *)
let parse_addr (addr : string) :
    (Unix.sockaddr * string option, string) result =
  if String.contains addr '/' then Ok (Unix.ADDR_UNIX addr, Some addr)
  else
    match String.rindex_opt addr ':' with
    | None -> Error (Fmt.str "--serve %S: expected HOST:PORT or a path" addr)
    | Some i -> (
      let host = String.sub addr 0 i in
      let port_s = String.sub addr (i + 1) (String.length addr - i - 1) in
      match int_of_string_opt port_s with
      | None -> Error (Fmt.str "--serve %S: bad port %S" addr port_s)
      | Some port -> (
        let host = if host = "" then "127.0.0.1" else host in
        match Unix.inet_addr_of_string host with
        | ip -> Ok (Unix.ADDR_INET (ip, port), None)
        | exception Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
            Error (Fmt.str "--serve %S: unknown host %S" addr host)
          | { Unix.h_addr_list; _ } ->
            Ok (Unix.ADDR_INET (h_addr_list.(0), port), None))))

let describe_sockaddr = function
  | Unix.ADDR_UNIX path -> path
  | Unix.ADDR_INET (ip, port) ->
    Fmt.str "%s:%d" (Unix.string_of_inet_addr ip) port

let listen ~addr (ctx : Ctx.t) : (t, string) result =
  match parse_addr addr with
  | Error _ as e -> e
  | Ok (sockaddr, unix_path) -> (
    match
      let domain = Unix.domain_of_sockaddr sockaddr in
      let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
      (try
         if domain = Unix.PF_UNIX then
           Option.iter (fun p -> try Sys.remove p with Sys_error _ -> ())
             unix_path
         else Unix.setsockopt sock Unix.SO_REUSEADDR true;
         Unix.bind sock sockaddr;
         Unix.listen sock 16;
         Unix.set_nonblock sock
       with e ->
         Unix.close sock;
         raise e);
      sock
    with
    | exception Unix.Unix_error (err, _, _) ->
      Error (Fmt.str "--serve %s: %s" addr (Unix.error_message err))
    | sock ->
      let prev_sigpipe =
        (* a scrape client that disconnects mid-response must cost an
           EPIPE, not the process *)
        try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
        with Invalid_argument _ -> None
      in
      let now = Ctx.now_ns ctx in
      Ok
        {
          ctx;
          sock;
          bound = describe_sockaddr (Unix.getsockname sock);
          unix_path;
          conns = [];
          series = Array.make series_capacity None;
          series_seen = 0;
          shard_tbl = Hashtbl.create 8;
          quarantined = [];
          execs = 0;
          crashes = 0;
          covered = 0;
          iteration = 0;
          plateau = 0;
          done_flag = false;
          requests = 0;
          started_ns = now;
          last_poll_ns = 0L;
          last_shard_sample_ns = 0L;
          sink = None;
          prev_sigpipe;
        })

let bound_addr (t : t) = t.bound

(* ------------------------------------------------------------------ *)
(* Folded state feeds                                                  *)
(* ------------------------------------------------------------------ *)

let elapsed_s (t : t) =
  Int64.to_float (Int64.sub (Ctx.now_ns t.ctx) t.started_ns) /. 1e9

let totals (t : t) : int * int * int =
  if Hashtbl.length t.shard_tbl = 0 then (t.execs, t.covered, t.crashes)
  else
    Status.fold_heartbeats
      (Hashtbl.fold (fun _ beat acc -> beat :: acc) t.shard_tbl [])

let push_sample (t : t) =
  let execs, covered, crashes = totals t in
  t.series.(t.series_seen mod series_capacity) <-
    Some
      {
        sa_iteration = t.iteration;
        sa_execs = execs;
        sa_covered = covered;
        sa_crashes = crashes;
        sa_elapsed_s = elapsed_s t;
      };
  t.series_seen <- t.series_seen + 1

let note_shard (t : t) ~shard ~execs ~covered ~crashes =
  Hashtbl.replace t.shard_tbl shard (execs, covered, crashes);
  let _, folded_covered, _ = totals t in
  if folded_covered > t.covered then begin
    t.covered <- folded_covered;
    t.plateau <- 0
  end;
  (* heartbeats arrive ~1/s per shard; one series point per second is
     plenty for a sparkline *)
  let now = Ctx.now_ns t.ctx in
  if Int64.sub now t.last_shard_sample_ns >= 1_000_000_000L then begin
    t.last_shard_sample_ns <- now;
    push_sample t
  end

let note_quarantine (t : t) ~unit_name ~reason =
  t.quarantined <- (unit_name, reason) :: t.quarantined

let set_done (t : t) =
  t.done_flag <- true;
  push_sample t

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let esc = Trace.json_escape

let status_json (t : t) : string =
  let execs, covered, crashes = totals t in
  let el = elapsed_s t in
  let rate = if el <= 0. then 0. else float_of_int execs /. el in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Fmt.str
       "{\"done\": %b, \"elapsed_s\": %.3f, \"iteration\": %d, \"execs\": \
        %d, \"execs_per_sec\": %.1f, \"covered\": %d, \"crashes\": %d, \
        \"plateau\": %d,\n"
       t.done_flag el t.iteration execs rate covered crashes t.plateau);
  let shard_rows =
    Hashtbl.fold (fun id beat acc -> (id, beat) :: acc) t.shard_tbl []
    |> List.sort compare
    |> List.map (fun (id, (e, c, k)) ->
           Fmt.str
             "  {\"shard\": %d, \"execs\": %d, \"covered\": %d, \
              \"crashes\": %d}"
             id e c k)
  in
  Buffer.add_string buf " \"shards\": [";
  if shard_rows <> [] then
    Buffer.add_string buf ("\n" ^ String.concat ",\n" shard_rows ^ "\n");
  Buffer.add_string buf "],\n";
  let q_rows =
    List.rev_map
      (fun (u, reason) ->
        Fmt.str "  {\"unit\": \"%s\", \"reason\": \"%s\"}" (esc u)
          (esc reason))
      t.quarantined
  in
  Buffer.add_string buf " \"quarantined\": [";
  if q_rows <> [] then
    Buffer.add_string buf ("\n" ^ String.concat ",\n" q_rows ^ "\n");
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let series_json (t : t) : string =
  let n = min t.series_seen series_capacity in
  let first = t.series_seen - n in
  let rows = ref [] in
  for i = t.series_seen - 1 downto first do
    match t.series.(i mod series_capacity) with
    | None -> ()
    | Some s ->
      rows :=
        Fmt.str
          "  {\"elapsed_s\": %.3f, \"iteration\": %d, \"execs\": %d, \
           \"covered\": %d, \"crashes\": %d}"
          s.sa_elapsed_s s.sa_iteration s.sa_execs s.sa_covered s.sa_crashes
        :: !rows
  done;
  match !rows with
  | [] -> "[]\n"
  | rows -> "[\n" ^ String.concat ",\n" rows ^ "\n]\n"

(* Read-only registry probe: [Metrics.counter] is find-or-create, and a
   scrape must never materialize an instrument (the live registry has to
   stay byte-identical to the one the final metrics.prom snapshots). *)
let healthy (t : t) =
  Metrics.counters_with_prefix t.ctx.Ctx.metrics
    ~prefix:"shard.breaker_tripped"
  |> List.for_all (fun (_, v) -> v = 0)

let respond (t : t) (path : string) : int * string * string =
  let path =
    match String.index_opt path '?' with
    | Some i -> String.sub path 0 i
    | None -> path
  in
  match path with
  | "/metrics" ->
    ( 200,
      "text/plain; version=0.0.4",
      Telemetry.prometheus_of_snapshot (Metrics.snapshot t.ctx.Ctx.metrics) )
  | "/status.json" -> (200, "application/json", status_json t)
  | "/series.json" -> (200, "application/json", series_json t)
  | "/healthz" ->
    if healthy t then (200, "text/plain", "ok\n")
    else (503, "text/plain", "breaker tripped\n")
  | _ -> (404, "text/plain", "not found\n")

let http_response ~code ~content_type ~body : string =
  let reason =
    match code with
    | 200 -> "OK"
    | 404 -> "Not Found"
    | 405 -> "Method Not Allowed"
    | 503 -> "Service Unavailable"
    | _ -> "Error"
  in
  Fmt.str
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    code reason content_type (String.length body) body

(* ------------------------------------------------------------------ *)
(* Non-blocking request handling                                       *)
(* ------------------------------------------------------------------ *)

(* Bounded write: the fd is non-blocking, so a full socket buffer costs
   a select with the remaining deadline, and a client that refuses to
   read is abandoned mid-response (it asked for a scrape and stopped
   listening; the campaign does not wait). *)
let write_all_bounded fd (s : string) ~deadline =
  let len = String.length s in
  let buf = Bytes.unsafe_of_string s in
  let off = ref 0 in
  (try
     while !off < len do
       match Unix.write fd buf !off (len - !off) with
       | n -> off := !off + n
       | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
         ->
         let remaining = deadline -. Unix.gettimeofday () in
         if remaining <= 0. then raise Exit;
         ignore (Unix.select [] [ fd ] [] remaining)
     done
   with Exit | Unix.Unix_error (_, _, _) -> ());
  ()

let close_conn (c : conn) = try Unix.close c.c_fd with Unix.Unix_error _ -> ()

(* One read step for a connection: returns [`Keep] while the request is
   still arriving, [`Done] once it has been answered or dropped. *)
let step_conn (t : t) (c : conn) ~now : [ `Keep | `Done ] =
  let chunk = Bytes.create 1024 in
  let rec drain () =
    match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
    | 0 -> `Eof
    | n ->
      Buffer.add_subbytes c.c_buf chunk 0 n;
      if Buffer.length c.c_buf > max_request_bytes then `Eof else drain ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      `Again
    | exception Unix.Unix_error (_, _, _) -> `Eof
  in
  let state = drain () in
  let data = Buffer.contents c.c_buf in
  let header_end =
    (* headers end at the first blank line; tolerate bare-LF clients *)
    match Astring.String.find_sub ~sub:"\r\n\r\n" data with
    | Some i -> Some i
    | None -> Astring.String.find_sub ~sub:"\n\n" data
  in
  match header_end with
  | Some _ ->
    t.requests <- t.requests + 1;
    let request_line =
      match String.index_opt data '\n' with
      | Some i -> String.trim (String.sub data 0 i)
      | None -> data
    in
    let response =
      match String.split_on_char ' ' request_line with
      | "GET" :: path :: _ ->
        let code, content_type, body = respond t path in
        http_response ~code ~content_type ~body
      | _ ->
        http_response ~code:405 ~content_type:"text/plain"
          ~body:"only GET is served\n"
    in
    write_all_bounded c.c_fd response
      ~deadline:(Unix.gettimeofday () +. write_deadline_s);
    close_conn c;
    `Done
  | None ->
    if state = `Eof || now > c.c_deadline then begin
      close_conn c;
      `Done
    end
    else `Keep

let poll (t : t) =
  (* accept everything queued *)
  let rec accept_loop () =
    match Unix.accept t.sock with
    | fd, _ ->
      Unix.set_nonblock fd;
      t.conns <-
        {
          c_fd = fd;
          c_buf = Buffer.create 256;
          c_deadline = Unix.gettimeofday () +. request_deadline_s;
        }
        :: t.conns;
      accept_loop ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  accept_loop ();
  if t.conns <> [] then begin
    let now = Unix.gettimeofday () in
    t.conns <-
      List.filter (fun c -> step_conn t c ~now = `Keep) t.conns
  end

(* ------------------------------------------------------------------ *)
(* Event-sink feed (single-process campaigns)                          *)
(* ------------------------------------------------------------------ *)

(* The sink folds the same stream the status line folds, pushes a
   series point per Coverage_sampled, and polls the socket throttled by
   the context clock — one comparison per event on the hot path. *)
let attach_sink (t : t) =
  match t.sink with
  | Some _ -> ()
  | None ->
    let poll_interval_ns = 50_000_000L in
    let sink =
      {
        Event.sink_name = "serve";
        emit =
          (fun e ->
            (match e with
            | Event.Compile_finished _ -> t.execs <- t.execs + 1
            | Event.Crash_found _ -> t.crashes <- t.crashes + 1
            | Event.Coverage_sampled { iteration; covered } ->
              t.iteration <- iteration;
              if covered > t.covered then begin
                t.covered <- covered;
                t.plateau <- 0
              end
              else t.plateau <- t.plateau + 1;
              push_sample t
            | _ -> ());
            let now = Ctx.now_ns t.ctx in
            if Int64.sub now t.last_poll_ns >= poll_interval_ns then begin
              t.last_poll_ns <- now;
              poll t
            end);
      }
    in
    t.sink <- Some sink;
    Event.add_sink t.ctx.Ctx.bus sink

(* Keep answering scrapes for [seconds] after the campaign finished —
   how a CI smoke reads the final registry without racing shutdown. *)
let linger (t : t) ~seconds =
  let until = Unix.gettimeofday () +. seconds in
  while Unix.gettimeofday () < until do
    poll t;
    (try ignore (Unix.select [ t.sock ] [] [] 0.05)
     with Unix.Unix_error _ -> ())
  done

let close (t : t) =
  Option.iter (fun s -> Event.remove_sink t.ctx.Ctx.bus s) t.sink;
  t.sink <- None;
  List.iter close_conn t.conns;
  t.conns <- [];
  (try Unix.close t.sock with Unix.Unix_error _ -> ());
  Option.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) t.unix_path;
  match t.prev_sigpipe with
  | Some b -> ( try Sys.set_signal Sys.sigpipe b with _ -> ())
  | None -> ()

let requests_served (t : t) = t.requests
