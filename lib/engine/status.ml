(* The live TTY status line: a bus sink that folds the event stream into
   a one-line summary (execs/s, covered edges, crashes, retry
   recoveries) rewritten in place with \r.

   Long campaigns plateau; the line calls it out by counting consecutive
   Coverage_sampled events with no new edges.  Rendering is throttled by
   the context clock so a hot fuzz loop pays one comparison per event,
   not one terminal write. *)

type t = {
  ctx : Ctx.t;
  out : string -> unit;
  interval_ns : int64;
  label : string;
  mutable sink : Event.sink;
  mutable last_render_ns : int64;
  mutable started_ns : int64;
  mutable execs : int;            (* Compile_finished events *)
  mutable crashes : int;          (* distinct Crash_found events seen *)
  mutable covered : int;          (* last Coverage_sampled value *)
  mutable iteration : int;        (* last sampled iteration *)
  mutable plateau : int;          (* consecutive flat coverage samples *)
  mutable rendered : bool;        (* something was written (needs clearing) *)
}

(* Exactly one process may own the terminal.  Sharded campaigns set
   this to false in every worker so K processes sharing a stderr don't
   interleave K \r-rewriting lines; the coordinator keeps ownership and
   renders the one aggregated line. *)
let tty_owner_flag = ref true
let set_tty_owner b = tty_owner_flag := b
let tty_owner () = !tty_owner_flag

let counter_value (ctx : Ctx.t) name =
  Metrics.counter_value (Metrics.counter ctx.Ctx.metrics name)

(* Recoveries across the retry/supervision layers, surfaced as one
   number: transient failures the run absorbed rather than died from. *)
let recoveries (ctx : Ctx.t) =
  counter_value ctx "pipeline.retry.recovered"
  + counter_value ctx "scheduler.retried"
  + counter_value ctx "scheduler.requeued"

let line (t : t) : string =
  let elapsed_s =
    Int64.to_float (Int64.sub (Ctx.now_ns t.ctx) t.started_ns) /. 1e9
  in
  let rate =
    if elapsed_s <= 0. then 0. else float_of_int t.execs /. elapsed_s
  in
  let buf = Buffer.create 96 in
  Buffer.add_string buf
    (Fmt.str "%s it %d | %d execs (%.0f/s) | %d edges | %d crashes" t.label
       t.iteration t.execs rate t.covered t.crashes);
  let rec_ = recoveries t.ctx in
  if rec_ > 0 then Buffer.add_string buf (Fmt.str " | %d recovered" rec_);
  (* units the governor set aside: visible the moment it happens, since
     the report only lands at the end of the run *)
  let quarantined = counter_value t.ctx "shard.quarantined" in
  if quarantined > 0 then
    Buffer.add_string buf (Fmt.str " | %d quarantined" quarantined);
  if t.plateau >= 3 then
    Buffer.add_string buf (Fmt.str " | plateau x%d" t.plateau);
  Buffer.contents buf

let render (t : t) =
  if tty_owner () then begin
    t.rendered <- true;
    t.out ("\r\027[K" ^ line t)
  end

let maybe_render (t : t) =
  let now = Ctx.now_ns t.ctx in
  if Int64.sub now t.last_render_ns >= t.interval_ns then begin
    t.last_render_ns <- now;
    render t
  end

let default_out s =
  output_string stderr s;
  flush stderr

let attach ?(out = default_out) ?(interval_ns = 200_000_000L)
    ?(label = "fuzz") (ctx : Ctx.t) : t =
  let now = Ctx.now_ns ctx in
  let t =
    {
      ctx;
      out;
      interval_ns;
      label;
      sink = Event.null_sink;
      last_render_ns = now;
      started_ns = now;
      execs = 0;
      crashes = 0;
      covered = 0;
      iteration = 0;
      plateau = 0;
      rendered = false;
    }
  in
  let sink =
    {
      Event.sink_name = "status";
      emit =
        (fun e ->
          (match e with
          | Event.Compile_finished _ -> t.execs <- t.execs + 1
          | Event.Crash_found _ -> t.crashes <- t.crashes + 1
          | Event.Coverage_sampled { iteration; covered } ->
            t.iteration <- iteration;
            if covered > t.covered then t.plateau <- 0
            else t.plateau <- t.plateau + 1;
            t.covered <- covered
          | _ -> ());
          maybe_render t);
    }
  in
  t.sink <- sink;
  Event.add_sink ctx.Ctx.bus sink;
  t

(* Heartbeat folding: execs and crashes are per-shard disjoint work, so
   they add; covered is each shard's view of one global coverage map, so
   the fold takes the max — summing would double-count every edge two
   shards both hit.  A shard that has not compiled anything yet
   contributes (0, 0, 0) and must not drag the fold down. *)
let fold_heartbeats (beats : (int * int * int) list) : int * int * int =
  List.fold_left
    (fun (ae, ac, ak) (e, c, k) -> (ae + e, max ac c, ak + k))
    (0, 0, 0) beats

(* Aggregated external feed: the sharded coordinator has no events on
   its own bus (work happens in worker processes), so it pushes absolute
   totals folded from heartbeats instead.  Coverage is monotone: a
   heartbeat fold can transiently regress (a crashed shard's last beat
   drops out of the table), and the line must not un-count edges. *)
let update (t : t) ?iteration ~execs ~covered ~crashes () =
  t.execs <- execs;
  t.crashes <- crashes;
  (match iteration with Some i -> t.iteration <- i | None -> ());
  if covered > t.covered then begin
    t.plateau <- 0;
    t.covered <- covered
  end;
  maybe_render t

(* Final render + clear: leave the summary as an ordinary stderr line so
   the terminal scrollback keeps the last state. *)
let finish (t : t) =
  Event.remove_sink t.ctx.Ctx.bus t.sink;
  if t.rendered && tty_owner () then t.out ("\r\027[K" ^ line t ^ "\n")
