(** The metrics registry: counters, gauges, and histograms with fixed
    bucket edges.

    Hot paths resolve an instrument once ({!counter}, {!histogram}) and
    then pay O(1) per increment/observation; {!snapshot} and {!merge}
    are cold reporting paths. *)

type counter

type gauge_policy =
  | Max   (** merged value is the maximum across workers (high-water marks) *)
  | Sum   (** worker values add (accumulated deltas, e.g. GC promotions) *)
  | Last  (** last merged worker wins — join-order dependent; only for
              gauges where any worker's reading is representative *)

type gauge
type histogram

type t
(** A registry.  Not domain-safe: each worker owns its registry and the
    join barrier {!merge}s them into the main one. *)

val create : unit -> t

val counter : t -> string -> counter
(** Find-or-create by name. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : ?policy:gauge_policy -> t -> string -> gauge
(** Find-or-create; [policy] (default {!Max}) only applies on creation. *)

val set : gauge -> float -> unit
val add : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_policy : gauge -> gauge_policy

val default_time_edges_ns : float array
(** Decade buckets from 1us to 10s, in nanoseconds. *)

val histogram : ?edges:float array -> t -> string -> histogram
(** Find-or-create; [edges] are strictly increasing upper bounds (a value
    [v] lands in the first bucket with [v <= edge], else overflow).
    [edges] is ignored when the histogram already exists.
    @raise Invalid_argument on empty or non-increasing edges. *)

val bucket_index : histogram -> float -> int
(** Bucket a value would land in; [Array.length edges] is overflow. *)

val observe : histogram -> float -> unit
val histogram_mean : histogram -> float

val quantile_of :
  edges:float array -> counts:int array -> total:int -> float -> float
(** Prometheus-style quantile estimate from raw bucket data: locate the
    bucket holding the q-th observation and interpolate linearly within
    it.  Observations in the overflow bucket clamp to the top edge;
    an empty histogram reads 0.  [q] is clamped to [\[0, 1\]]. *)

val histogram_quantile : histogram -> float -> float
(** {!quantile_of} over a live instrument ([histogram_quantile h 0.95]
    is the p95 estimate). *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      edges : float array;
      counts : int array;
      sum : float;
      total : int;
    }

val snapshot : t -> (string * value) list
(** All instruments as a name-sorted assoc list, for reporting. *)

val counters_with_prefix : t -> prefix:string -> (string * int) list
(** Counters whose name starts with [prefix], keyed by the suffix —
    the idiom behind per-mutator counter families
    ("mucfuzz.accept.<mutator>"). *)

val merge : into:t -> t -> unit
(** Join a worker registry: counters and histogram buckets add, gauges
    join under their {!gauge_policy} (the destination's when both
    exist).
    @raise Invalid_argument on histogram bucket-edge mismatch. *)
