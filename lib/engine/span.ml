(* Tracing spans: wall-clock nanoseconds per named region, recorded
   into the context's metrics registry as "span.<name>" histograms
   (decade buckets, 1us..10s).  A span records even when the wrapped
   computation raises — a compiler stage that crashes still spent the
   time. *)

let record (ctx : Ctx.t) ~name ns =
  Metrics.observe
    (Metrics.histogram ctx.Ctx.metrics ("span." ^ name))
    (Int64.to_float ns)

let with_ (ctx : Ctx.t) ~name f =
  let t0 = Ctx.now_ns ctx in
  match f () with
  | v ->
    record ctx ~name (Int64.sub (Ctx.now_ns ctx) t0);
    v
  | exception e ->
    record ctx ~name (Int64.sub (Ctx.now_ns ctx) t0);
    raise e

let with_opt (ctx : Ctx.t option) ~name f =
  match ctx with None -> f () | Some ctx -> with_ ctx ~name f
