(* Tracing spans: wall-clock nanoseconds per named region, recorded
   into the context's metrics registry as "span.<name>" histograms
   (decade buckets, 1us..10s) and — when the context has tracing
   enabled — as individual span instances in its Trace buffer for the
   Chrome trace-event export.  A span records even when the wrapped
   computation raises: a compiler stage that crashes still spent the
   time. *)

let record (ctx : Ctx.t) ~name ns =
  Metrics.observe
    (Metrics.histogram ctx.Ctx.metrics ("span." ^ name))
    (Int64.to_float ns)

let record_instance (ctx : Ctx.t) ~name ~t0 ~t1 =
  let dur = Int64.sub t1 t0 in
  record ctx ~name dur;
  match ctx.Ctx.trace with
  | None -> ()
  | Some tr -> Trace.record tr ~name ~ts_ns:t0 ~dur_ns:dur

let with_ (ctx : Ctx.t) ~name f =
  let t0 = Ctx.now_ns ctx in
  match f () with
  | v ->
    record_instance ctx ~name ~t0 ~t1:(Ctx.now_ns ctx);
    v
  | exception e ->
    record_instance ctx ~name ~t0 ~t1:(Ctx.now_ns ctx);
    raise e

let with_opt (ctx : Ctx.t option) ~name f =
  match ctx with None -> f () | Some ctx -> with_ ctx ~name f
