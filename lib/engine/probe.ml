(* GC/allocation probes: Gc.quick_stat deltas per compile batch, so the
   allocation profile of the hot path (the thing PR 2 optimised) is
   visible in every telemetry snapshot without a bench run.

   quick_stat reads counters without walking the heap, so a sample every
   [batch] compiles is noise even at bench iteration counts.  The
   instruments use the explicit gauge merge policies: accumulated deltas
   (promoted words, major collections) are Sum gauges, the heap size is
   a Max high-water mark — either way the merged campaign value is
   independent of worker join order. *)

type t = {
  p_batch : int;
  mutable p_compiles : int;       (* since the last sample *)
  mutable p_last_minor : float;
  mutable p_last_promoted : float;
  mutable p_last_major : int;
  h_minor_per_compile : Metrics.histogram;
  g_promoted : Metrics.gauge;
  g_major : Metrics.gauge;
  g_heap : Metrics.gauge;
}

(* Minor words allocated per compile: ~1e4 (cached hit) .. ~1e7 (large
   mutant); decade-ish buckets centred on that range. *)
let minor_words_edges =
  [| 1e2; 1e3; 1e4; 3e4; 1e5; 3e5; 1e6; 3e6; 1e7; 1e8 |]

let create ?(batch = 64) (m : Metrics.t) : t =
  let qs = Gc.quick_stat () in
  {
    p_batch = max 1 batch;
    p_compiles = 0;
    (* Gc.minor_words (not quick_stat.minor_words): the dedicated
       primitive includes the words behind the live allocation pointer,
       while quick_stat's field only advances at collection boundaries —
       a small batch would read a delta of zero *)
    p_last_minor = Gc.minor_words ();
    p_last_promoted = qs.Gc.promoted_words;
    p_last_major = qs.Gc.major_collections;
    h_minor_per_compile =
      Metrics.histogram ~edges:minor_words_edges m "gc.minor_words_per_compile";
    g_promoted = Metrics.gauge ~policy:Metrics.Sum m "gc.promoted_words";
    g_major = Metrics.gauge ~policy:Metrics.Sum m "gc.major_collections";
    g_heap = Metrics.gauge ~policy:Metrics.Max m "gc.heap_words";
  }

let sample (t : t) =
  if t.p_compiles > 0 then begin
    let qs = Gc.quick_stat () in
    let minor_now = Gc.minor_words () in
    let minor = minor_now -. t.p_last_minor in
    Metrics.observe t.h_minor_per_compile (minor /. float_of_int t.p_compiles);
    Metrics.add t.g_promoted (qs.Gc.promoted_words -. t.p_last_promoted);
    Metrics.add t.g_major
      (float_of_int (qs.Gc.major_collections - t.p_last_major));
    let heap = float_of_int qs.Gc.heap_words in
    if heap > Metrics.gauge_value t.g_heap then Metrics.set t.g_heap heap;
    t.p_last_minor <- minor_now;
    t.p_last_promoted <- qs.Gc.promoted_words;
    t.p_last_major <- qs.Gc.major_collections;
    t.p_compiles <- 0
  end

let on_compile (t : t) =
  t.p_compiles <- t.p_compiles + 1;
  if t.p_compiles >= t.p_batch then sample t

let minor_words_mean (t : t) = Metrics.histogram_mean t.h_minor_per_compile
let minor_words_p50 (t : t) = Metrics.histogram_quantile t.h_minor_per_compile 0.5
let minor_words_p95 (t : t) = Metrics.histogram_quantile t.h_minor_per_compile 0.95
let promoted_words (t : t) = Metrics.gauge_value t.g_promoted
let major_collections (t : t) = Metrics.gauge_value t.g_major
