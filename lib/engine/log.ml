(* Leveled structured logging with deterministic rendering.

   A record carries no wall clock: its identity is (scope, phase,
   emission order), and the monotonic [seq] field is assigned at render
   time, after records have been grouped by scope.  That is what lets
   the determinism contracts of the campaign layer extend to the log
   body: a cell's records are a pure function of the cell's inputs, the
   supervision records of a lease are a pure function of its fault
   stream, and only the *interleaving* of scopes across workers is
   timing-dependent — which the scope grouping erases.

   Phases order records within a scope: phase 0 is the unit body (what
   the cell itself logged, merged in at the join barrier), phase 1 is
   supervision (verdicts, requeues, journal saves logged by the
   coordinator as they commit).  Sorting by phase makes the inline
   degenerate pool and the multi-process pool render identically even
   though they interleave body and supervision work differently. *)

type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type record = {
  lr_level : level;
  lr_event : string;                   (* dotted event name, e.g. "lease.verdict" *)
  lr_scope : string;                   (* unit/cell name; "" is the driver *)
  lr_phase : int;                      (* render order within a scope *)
  lr_fields : (string * string) list;  (* deterministic payload *)
}

type t = {
  mutable min_level : level;
  mutable cur_scope : string;  (* stamped on subsequently emitted records *)
  records : record Vec.t;
}

let create ?(level = Info) () =
  { min_level = level; cur_scope = ""; records = Vec.create () }

let level (t : t) = t.min_level
let set_scope (t : t) scope = t.cur_scope <- scope
let enabled (t : t) l = severity l >= severity t.min_level
let length (t : t) = Vec.length t.records
let records (t : t) = Vec.to_list t.records

let record (t : t) ?scope ?(phase = 0) ~level ~event fields =
  if enabled t level then
    Vec.push t.records
      {
        lr_level = level;
        lr_event = event;
        lr_scope = Option.value ~default:t.cur_scope scope;
        lr_phase = phase;
        lr_fields = fields;
      }

(* Append a worker buffer; the barrier overrides the scope because the
   worker logged under its private default (the empty driver scope). *)
let merge ~into:(dst : t) ?scope (src : t) =
  Vec.iter
    (fun (r : record) ->
      let lr_scope = Option.value ~default:r.lr_scope scope in
      Vec.push dst.records { r with lr_scope })
    src.records

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let record_to_json ~seq (r : record) =
  let buf = Buffer.create 128 in
  let field k v =
    Buffer.add_string buf ",\"";
    Buffer.add_string buf (Trace.json_escape k);
    Buffer.add_string buf "\":\"";
    Buffer.add_string buf (Trace.json_escape v);
    Buffer.add_string buf "\""
  in
  Buffer.add_string buf (Fmt.str "{\"seq\":%d" seq);
  field "level" (level_to_string r.lr_level);
  field "scope" r.lr_scope;
  field "event" r.lr_event;
  List.iter (fun (k, v) -> field k v) r.lr_fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* Scope render order: the driver first, then [scope_order] (the
   canonical unit order the campaign registered), then any scope neither
   mentioned, alphabetically.  Within a scope, a stable sort by phase
   keeps body records ahead of supervision records while preserving
   emission order inside each phase. *)
let to_json_lines ?(scope_order = []) (t : t) : string list =
  let by_scope : (string, record Vec.t) Hashtbl.t = Hashtbl.create 16 in
  let scopes_seen = Vec.create () in
  Vec.iter
    (fun (r : record) ->
      let v =
        match Hashtbl.find_opt by_scope r.lr_scope with
        | Some v -> v
        | None ->
          let v = Vec.create () in
          Hashtbl.add by_scope r.lr_scope v;
          Vec.push scopes_seen r.lr_scope;
          v
      in
      Vec.push v r)
    t.records;
  let known = "" :: scope_order in
  let extras =
    Vec.to_list scopes_seen
    |> List.filter (fun s -> not (List.mem s known))
    |> List.sort_uniq compare
  in
  let seq = ref 0 in
  let lines = Vec.create () in
  List.iter
    (fun scope ->
      match Hashtbl.find_opt by_scope scope with
      | None -> ()
      | Some v ->
        let rs = List.stable_sort
            (fun a b -> compare a.lr_phase b.lr_phase)
            (Vec.to_list v)
        in
        List.iter
          (fun r ->
            Vec.push lines (record_to_json ~seq:!seq r);
            incr seq)
          rs)
    (known @ extras);
  Vec.to_list lines

let to_string ?scope_order (t : t) =
  match to_json_lines ?scope_order t with
  | [] -> ""
  | lines -> String.concat "\n" lines ^ "\n"

(* Atomic tmp+rename, mirroring the telemetry writers: a tail -f or a
   crashed run never sees a half-written log. *)
let write ?scope_order ~path (t : t) =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (to_string ?scope_order t);
  close_out oc;
  Sys.rename tmp path

(* --log FILE[:LEVEL] — the suffix is only a level when it parses as
   one, so plain paths containing ':' stay usable. *)
let parse_spec (s : string) : (string * level, string) result =
  match String.rindex_opt s ':' with
  | Some i when i > 0 && i < String.length s - 1 -> (
    let suffix = String.sub s (i + 1) (String.length s - i - 1) in
    match level_of_string suffix with
    | Some l -> Ok (String.sub s 0 i, l)
    | None -> Ok (s, Info))
  | _ -> if String.trim s = "" then Error "empty --log spec" else Ok (s, Info)
