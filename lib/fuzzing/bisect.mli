(** Automatic culprit-pass bisection: GCC's [debug-bisect-passes]
    workflow, done natively against the pass manager.

    Given a source that produces a finding — an ICE or an EMI-style
    wrong-code mismatch — re-compile it with individual passes (then
    pass subsets) additionally disabled and report the minimal set of
    passes whose disabling makes the finding vanish.  For wrong-code
    findings the per-pass differential channel
    ({!Simcomp.Compiler.compile_passes}) supplies an independent
    first-divergent-pass estimate. *)

type finding =
  | Ice of { key : string; bug_id : string }
      (** internal compiler error, identified by its crash key *)
  | Wrong_code of { reference : int * bool; observed : int * bool }
      (** observable behaviour at the target options vs [-O0] *)

val finding_to_string : finding -> string

type verdict = {
  v_finding : finding;
  v_pipeline : string list;  (** the planned pass sequence bisected over *)
  v_culprits : string list;
      (** minimal pass set whose disabling clears the finding, in
          pipeline order; empty when [v_attributable] is false *)
  v_first_divergent : string option;
      (** wrong-code only: first pass whose output diverges from the
          pre-opt semantics (per-pass differential testing) *)
  v_attributable : bool;
      (** false when the finding persists with every pass disabled
          (front-end or level-gated, not pass-attributable) *)
  v_recompiles : int;  (** probe compiles spent *)
}

val run :
  ?engine:Engine.Ctx.t ->
  Simcomp.Compiler.compiler ->
  Simcomp.Compiler.options ->
  string ->
  verdict option
(** Detect a finding for [src] under the given options (compile for an
    ICE, then the wrong-code differential) and bisect it; [None] when
    the compile is clean.  With [engine], bumps [bisect.runs],
    [bisect.recompiles], and [bisect.unattributable] counters.
    Deterministic in (compiler, options, source). *)

type attribution = {
  at_compiler : Simcomp.Compiler.compiler;
  at_bug_id : string;  (** the seeded bug behind the recorded crash *)
  at_input : string;   (** the triggering source, from the campaign *)
  at_verdict : verdict;
}

val attribute :
  ?engine:Engine.Ctx.t ->
  ?options:Simcomp.Compiler.options ->
  Campaign.t ->
  attribution list
(** Bisect every unique optimizer-stage crash a campaign recorded
    (deduplicated by compiler and crash key, sorted canonically — the
    result is identical at any job count).  Non-optimizer crashes are
    skipped: bisecting a front-end crash always yields an
    unattributable verdict. *)
