(* The macro fuzzer (§3.4): μCFuzz plus the engineering used for the
   eight-month bug hunt —

   1. random sampling of compiler command-line options,
   2. the Havoc strategy: several mutation rounds per mutant,
   3. a shared coverage map across parallel instances,
   4. resource limits (program-size caps standing in for OOM guards). *)

open Cparse

type config = {
  mutators : Mutators.Mutator.t list;
  havoc_rounds_max : int;
  instances : int;           (* simulated parallel fuzzing processes *)
  max_program_bytes : int;   (* resource limit *)
  sample_every : int;
  fragility : bool;
}

let default_config =
  {
    mutators = Mutators.Registry.core;
    havoc_rounds_max = 6;
    instances = 4;
    max_program_bytes = 65536;
    sample_every = 50;
  fragility = true;
  }

type instance = {
  i_rng : Rng.t;
  i_pool : (string * Ast.tu) Engine.Vec.t;
}

let run ?(cfg = default_config) ~rng ~compiler ~seeds ~iterations () :
    Fuzz_result.t =
  let shared = Fuzz_result.make ~fuzzer_name:"MacroFuzzer" ~compiler in
  let parse_pool seeds =
    List.filter_map
      (fun src ->
        match Parser.parse src with
        | Ok tu -> Some (src, tu)
        | Error _ -> None)
      seeds
  in
  let instances =
    List.init cfg.instances (fun _ ->
        { i_rng = Rng.split rng; i_pool = Engine.Vec.of_list (parse_pool seeds) })
  in
  let result = ref shared in
  let trend = ref [] in
  (* one scratch map for the whole run: reset per compile, never realloc'd *)
  let scratch = Simcomp.Coverage.create () in
  (* seed coverage once *)
  List.iteri
    (fun idx src ->
      if idx < 50 then begin
        Simcomp.Coverage.reset scratch;
        ignore
          (Simcomp.Compiler.compile ~cov:scratch compiler
             Simcomp.Compiler.default_options src);
        ignore
          (Simcomp.Coverage.merge ~into:!result.Fuzz_result.coverage scratch)
      end)
    seeds;
  for i = 1 to iterations do
    (* round-robin over simulated parallel instances *)
    let inst = List.nth instances (i mod cfg.instances) in
    if Engine.Vec.length inst.i_pool > 0 then begin
      let _, base_tu =
        Engine.Vec.get inst.i_pool
          (Rng.int inst.i_rng (Engine.Vec.length inst.i_pool))
      in
      (* Havoc: stack several mutators *)
      let rounds = 1 + Rng.int inst.i_rng cfg.havoc_rounds_max in
      let mutated = ref base_tu in
      let last_mutator = ref None in
      for _ = 1 to rounds do
        let m = Rng.choose inst.i_rng cfg.mutators in
        match Mutators.Mutator.apply m ~rng:inst.i_rng !mutated with
        | Some tu' ->
          mutated := tu';
          last_mutator := Some m
        | None -> ()
      done;
      match !last_mutator with
      | None -> ()
      | Some m ->
        let src' =
          if cfg.fragility then Fragility.render inst.i_rng m !mutated
          else Simcomp.Scratch.render_tu !mutated
        in
        (* resource limit: discard over-sized mutants *)
        if String.length src' <= cfg.max_program_bytes then begin
          (* random command-line sampling *)
          let options = Simcomp.Compiler.random_options inst.i_rng in
          result :=
            {
              !result with
              total_mutants = !result.total_mutants + 1;
              throughput_mutants = !result.throughput_mutants + 1;
            };
          Simcomp.Coverage.reset scratch;
          let outcome, parsed =
            Simcomp.Compiler.compile_tu ~cov:scratch compiler options src'
          in
          (match outcome with
          | Simcomp.Compiler.Compiled _ ->
            result :=
              { !result with compilable_mutants = !result.compilable_mutants + 1 }
          | Simcomp.Compiler.Crashed c ->
            Fuzz_result.record_crash !result ~iteration:i ~input:src' c
          | Simcomp.Compiler.Compile_error _ -> ());
          (* shared coverage across instances; the merged fresh count is
             the accept signal (one scan, not a has_new + merge pair) *)
          let fresh =
            Simcomp.Coverage.merge ~into:!result.Fuzz_result.coverage scratch
          in
          if fresh > 0 then
            match parsed with
            | Some tu'' -> Engine.Vec.push inst.i_pool (src', tu'')
            | None -> ()
        end
    end;
    if i mod cfg.sample_every = 0 then
      trend := (i, Simcomp.Coverage.covered !result.Fuzz_result.coverage) :: !trend
  done;
  { !result with iterations; coverage_trend = List.rev !trend }
