(* μCFuzz: the paper's micro coverage-guided fuzzer (Algorithm 1).

   Given seed programs S, mutators M and a compiler C, each iteration
   picks a random pool program P, shuffles M, and applies mutators until
   one produces a mutant P' covering a branch not covered by the pool;
   P' then joins the pool.  No havoc, no forking, no pool culling.

   Every run owns an Engine.Ctx: attempts/accepts/rejects are counted
   per mutator, compile outcomes and crashes become events, and the
   coverage trend is collected by a Coverage_sampled sink instead of a
   hand-rolled list. *)

open Cparse

type config = {
  mutators : Mutators.Mutator.t list;
  fragility : bool;       (* apply the text-rewriting fragility model *)
  coverage_guided : bool; (* ablation: accept every mutant when false *)
  max_attempts_per_iteration : int; (* |M| in the paper *)
  sample_every : int;     (* coverage-trend sampling period *)
  schedule : bool;        (* AFL-style favored-entry corpus scheduling *)
  pool_max : int;         (* trim target when [schedule] is on *)
}

let default_config ?(mutators = Mutators.Registry.core) () =
  {
    mutators;
    fragility = true;
    coverage_guided = true;
    max_attempts_per_iteration = List.length mutators;
    sample_every = 25;
    (* off by default: the paper's Algorithm 1 has no culling, and the
       default RNG stream must stay byte-identical to pre-scheduling
       builds *)
    schedule = false;
    pool_max = 4096;
  }

type pool_entry = {
  src : string;
  tu : Ast.tu;
  pe_len : int;          (* String.length src: the scheduling rank *)
  mutable pe_tops : int; (* edges this entry currently claims (favored iff > 0) *)
}

let make_entry src tu = { src; tu; pe_len = String.length src; pe_tops = 0 }

(* Pre-resolved per-mutator instruments: one Hashtbl lookup at set-up,
   O(1) bumps on the hot path. *)
type mutator_counters = {
  mc_attempt : Engine.Metrics.counter;
  mc_inapplicable : Engine.Metrics.counter;
  mc_accept : Engine.Metrics.counter;
  mc_reject : Engine.Metrics.counter;
  mc_fresh : Engine.Metrics.counter;
      (* fresh edges attributed to this mutator's mutants: the numerator
         of the per-mutator yield table *)
}

type state = {
  cfg : config;
  rng : Rng.t;
  compiler : Simcomp.Compiler.compiler;
  options : Simcomp.Compiler.options;
  engine : Engine.Ctx.t;
  per_mutator : (string, mutator_counters) Hashtbl.t;
  trend_rev : (int * int) list ref;  (* fed by the trend sink *)
  trend_sink : Engine.Event.sink;
  (* pool/cache/faults are replaced wholesale on checkpoint resume *)
  mutable pool : pool_entry Engine.Vec.t; (* amortized-O(1) accepts *)
  scratch : Simcomp.Coverage.t; (* per-mutant map, consumed not realloc'd *)
  mutable cache : Simcomp.Compiler.cache; (* byte-identical mutant dedup *)
  mutable batch : Simcomp.Compiler.batch; (* per-TU setup hoisted out *)
  mutable faults : Engine.Faults.t option;
  sched_top : Bytes.t;
  (* per-coverage-cell claimant: little-endian u16 pool index per cell,
     0xFFFF = unclaimed.  Only written when [cfg.schedule] is on. *)
  sched_scratch : int Engine.Vec.t; (* favored-index scan buffer *)
  mutable result : Fuzz_result.t;
}

(* ------------------------------------------------------------------ *)
(* AFL-style corpus scheduling (opt-in via [cfg.schedule]).            *)
(*                                                                     *)
(* Each covered edge is "claimed" by the smallest pool entry whose     *)
(* compile touched it (AFL's top_rated[] with source length as the     *)
(* rank).  Entries holding at least one claim are *favored*; the       *)
(* picker prefers favored entries 4:1, and when the pool outgrows      *)
(* [pool_max] the non-favored tail is trimmed oldest-first.  All of it *)
(* is deterministic: claims update in cell order, trims keep relative  *)
(* order, and the extra RNG draws only happen when [schedule] is on    *)
(* (the default stream is byte-identical to pre-scheduling builds).    *)
(* ------------------------------------------------------------------ *)

let sched_none = 0xFFFF

(* Record the freshly accepted entry at [idx] as claimant of every edge
   its compile covered and the incumbent doesn't beat: an unclaimed
   edge, or an incumbent with a strictly larger source (ties keep the
   incumbent, so re-running claims is idempotent). *)
let sched_claim (st : state) idx (e : pool_entry) cov =
  Simcomp.Coverage.iter_nonzero cov (fun cell ->
      let off = cell * 2 in
      let cur = Bytes.get_uint16_le st.sched_top off in
      let better =
        cur = sched_none
        || e.pe_len < (Engine.Vec.get st.pool cur).pe_len
      in
      if better then begin
        if cur <> sched_none then begin
          let inc = Engine.Vec.get st.pool cur in
          inc.pe_tops <- inc.pe_tops - 1
        end;
        Bytes.set_uint16_le st.sched_top off idx;
        e.pe_tops <- e.pe_tops + 1
      end)

(* Drop non-favored entries, oldest first, until the pool is back to
   [pool_max] (favored entries are never dropped, even past the limit).
   Claim indices are remapped in the same pass; dropped entries hold no
   claims by construction, so every stored index survives the remap. *)
let sched_trim (st : state) =
  let n = Engine.Vec.length st.pool in
  let keep = Array.make n false in
  let n_fav = ref 0 in
  for i = 0 to n - 1 do
    if (Engine.Vec.get st.pool i).pe_tops > 0 then begin
      keep.(i) <- true;
      incr n_fav
    end
  done;
  let budget = ref (st.cfg.pool_max - !n_fav) in
  for i = n - 1 downto 0 do
    if (not keep.(i)) && !budget > 0 then begin
      keep.(i) <- true;
      decr budget
    end
  done;
  let remap = Array.make n sched_none in
  let pool' = Engine.Vec.create () in
  for i = 0 to n - 1 do
    if keep.(i) then begin
      remap.(i) <- Engine.Vec.length pool';
      Engine.Vec.push pool' (Engine.Vec.get st.pool i)
    end
  done;
  st.pool <- pool';
  for cell = 0 to Simcomp.Coverage.map_size - 1 do
    let off = cell * 2 in
    let cur = Bytes.get_uint16_le st.sched_top off in
    if cur <> sched_none then Bytes.set_uint16_le st.sched_top off remap.(cur)
  done

(* Called after an accepted push: claim, then trim once the pool is 25%
   past the limit (the slack amortizes the map-wide remap over many
   accepts instead of paying it on every one). *)
let sched_accept (st : state) cov =
  let idx = Engine.Vec.length st.pool - 1 in
  sched_claim st idx (Engine.Vec.get st.pool idx) cov;
  if st.cfg.pool_max > 0
     && Engine.Vec.length st.pool > st.cfg.pool_max + (st.cfg.pool_max / 4)
  then sched_trim st

(* Pool pick: uniform by default; with scheduling on, an 0.8-biased
   coin picks uniformly among favored entries when there are any. *)
let pick_entry (st : state) =
  let n = Engine.Vec.length st.pool in
  if not st.cfg.schedule then Engine.Vec.get st.pool (Rng.int st.rng n)
  else begin
    Engine.Vec.clear st.sched_scratch;
    for i = 0 to n - 1 do
      if (Engine.Vec.get st.pool i).pe_tops > 0 then
        Engine.Vec.push st.sched_scratch i
    done;
    let nf = Engine.Vec.length st.sched_scratch in
    if nf > 0 && Rng.flip st.rng 0.8 then
      Engine.Vec.get st.pool
        (Engine.Vec.get st.sched_scratch (Rng.int st.rng nf))
    else Engine.Vec.get st.pool (Rng.int st.rng n)
  end

(* The batch handle pre-resolves everything [compile_cached] would
   recompute per mutant (fingerprint salt, optional args).  Rebuilt
   whenever cache or faults are replaced wholesale (checkpoint
   resume). *)
let make_batch ~cache ~cov ~engine ~faults compiler options =
  Simcomp.Compiler.batch_create ~cache ~cov ~engine ?faults compiler options

let mutator_counters (st : state) (m : Mutators.Mutator.t) =
  let name = m.Mutators.Mutator.name in
  match Hashtbl.find_opt st.per_mutator name with
  | Some c -> c
  | None ->
    let reg = st.engine.Engine.Ctx.metrics in
    let c =
      {
        mc_attempt = Engine.Metrics.counter reg ("mucfuzz.attempt." ^ name);
        mc_inapplicable =
          Engine.Metrics.counter reg ("mucfuzz.inapplicable." ^ name);
        mc_accept = Engine.Metrics.counter reg ("mucfuzz.accept." ^ name);
        mc_reject = Engine.Metrics.counter reg ("mucfuzz.reject." ^ name);
        mc_fresh =
          Engine.Metrics.counter reg ("mucfuzz.fresh_edges." ^ name);
      }
    in
    Hashtbl.replace st.per_mutator name c;
    c

let init ?(options = Simcomp.Compiler.default_options) ?engine ?faults ~cfg
    ~rng ~compiler ~(seeds : string list) () : state =
  let pool =
    List.filter_map
      (fun src ->
        match Parser.parse src with
        | Ok tu -> Some (make_entry src tu)
        | Error _ -> None)
      seeds
  in
  let engine =
    match engine with Some e -> e | None -> Engine.Ctx.create ()
  in
  (* the coverage trend is an event stream: sample_trend emits
     Coverage_sampled and this sink (detached at the end of [run])
     collects the samples *)
  let trend_rev = ref [] in
  let trend_sink =
    {
      Engine.Event.sink_name = "mucfuzz.trend";
      emit =
        (function
        | Engine.Event.Coverage_sampled { iteration; covered } ->
          trend_rev := (iteration, covered) :: !trend_rev
        | _ -> ());
    }
  in
  Engine.Event.add_sink engine.Engine.Ctx.bus trend_sink;
  let scratch = Simcomp.Coverage.create () in
  let cache = Simcomp.Compiler.cache_create () in
  let st =
    {
      cfg;
      rng;
      compiler;
      options;
      engine;
      per_mutator = Hashtbl.create 160;
      trend_rev;
      trend_sink;
      pool = Engine.Vec.of_list pool;
      scratch;
      cache;
      batch = make_batch ~cache ~cov:scratch ~engine ~faults compiler options;
      faults;
      sched_top = Bytes.make (Simcomp.Coverage.map_size * 2) '\xFF';
      sched_scratch = Engine.Vec.create ();
      result =
        Fuzz_result.make
          ~fuzzer_name:
            (if cfg.mutators == Mutators.Registry.supervised then "uCFuzz.s"
             else "uCFuzz")
          ~compiler;
    }
  in
  (* the pool's baseline coverage comes from compiling the seeds; a seed
     that crashes the compiler is a finding like any other (iteration 0)
     and fresh branches feed the baseline trend sample *)
  for i = 0 to Engine.Vec.length st.pool - 1 do
    let e = Engine.Vec.get st.pool i in
    let cov = st.scratch in
    (match fst (Simcomp.Compiler.batch_compile st.batch e.src) with
    | Simcomp.Compiler.Compiled _ | Simcomp.Compiler.Compile_error _ -> ()
    | Simcomp.Compiler.Crashed c ->
      Fuzz_result.record_crash st.result ~iteration:0 ~input:e.src c;
      Engine.Ctx.emit engine
        (Engine.Event.Crash_found
           {
             key = Simcomp.Crash.unique_key c;
             stage = Simcomp.Compiler.engine_stage c.Simcomp.Crash.stage;
             iteration = 0;
           }));
    (* seeds claim their edges before the scratch map is consumed, so
       the scheduler starts from a fully-ranked baseline *)
    if cfg.schedule then sched_claim st i e cov;
    (* consume: merge and re-zero the scratch map in one pass, so the
       next compile starts from a pristine map without a full memset *)
    let fresh =
      Simcomp.Coverage.merge_consume ~into:st.result.Fuzz_result.coverage cov
    in
    if fresh > 0 then
      Engine.Ctx.emit engine
        (Engine.Event.Coverage_gained { iteration = 0; fresh })
  done;
  Engine.Ctx.emit engine
    (Engine.Event.Coverage_sampled
       {
         iteration = 0;
         covered = Simcomp.Coverage.covered st.result.Fuzz_result.coverage;
       });
  st

(* One iteration of Algorithm 1. *)
let step (st : state) ~iteration : unit =
  if Engine.Vec.length st.pool = 0 then ()
  else begin
    let entry = pick_entry st in
    (* one semantic context for the whole iteration: every attempt
       mutates the same program, so the typecheck behind [Uast.Ctx] is
       shared instead of redone per attempt (apply_ctx rewinds the name
       supply, keeping each attempt identical to a fresh-context
       apply) *)
    let ctx = Uast.Ctx.create ~rng:st.rng entry.tu in
    let shuffled = Rng.shuffle st.rng st.cfg.mutators in
    let attempts = ref 0 in
    let found = ref false in
    let rec try_mutators = function
      | [] -> ()
      | m :: rest ->
        if !found || !attempts >= st.cfg.max_attempts_per_iteration then ()
        else begin
          incr attempts;
          let mc = mutator_counters st m in
          Engine.Metrics.incr mc.mc_attempt;
          Engine.Ctx.emit st.engine
            (Engine.Event.Mutant_attempted
               { mutator = m.Mutators.Mutator.name });
          (match Mutators.Mutator.apply_ctx m ctx with
          | None -> Engine.Metrics.incr mc.mc_inapplicable
          | Some tu' ->
            let src' =
              if st.cfg.fragility then Fragility.render st.rng m tu'
              else Simcomp.Scratch.render_tu tu'
            in
            st.result <-
              {
                st.result with
                total_mutants = st.result.total_mutants + 1;
                throughput_mutants = st.result.throughput_mutants + 1;
              };
            let cov = st.scratch in
            (* the scratch map is pristine here: merge_consume below
               re-zeroes it every cycle.  Byte-identical mutants
               (frequent under the fragility model) short-circuit in
               the cache: the memoized outcome comes back and the
               scratch map stays empty, which is equivalent — the first
               compile's coverage was already merged below, so its
               fresh count would be 0 anyway *)
            let outcome, parsed =
              Simcomp.Compiler.batch_compile st.batch src'
            in
            (match outcome with
            | Simcomp.Compiler.Compiled _ ->
              st.result <-
                {
                  st.result with
                  compilable_mutants = st.result.compilable_mutants + 1;
                }
            | Simcomp.Compiler.Crashed c ->
              Fuzz_result.record_crash st.result ~iteration ~input:src' c;
              Engine.Ctx.emit st.engine
                (Engine.Event.Crash_found
                   {
                     key = Simcomp.Crash.unique_key c;
                     stage =
                       Simcomp.Compiler.engine_stage c.Simcomp.Crash.stage;
                     iteration;
                   })
            | Simcomp.Compiler.Compile_error _ -> ());
            (* one pass: the merged fresh count IS the accept signal,
               and consuming re-zeroes the scratch for the next compile.
               The scheduler must read the mutant's own cells *after*
               the accept decision (claim bookkeeping), so it merges
               without consuming and drains below instead. *)
            let fresh =
              if st.cfg.schedule then
                Simcomp.Coverage.merge ~into:st.result.Fuzz_result.coverage
                  cov
              else
                Simcomp.Coverage.merge_consume
                  ~into:st.result.Fuzz_result.coverage cov
            in
            if fresh > 0 then begin
              Engine.Metrics.incr ~by:fresh mc.mc_fresh;
              Engine.Ctx.emit st.engine
                (Engine.Event.Coverage_gained { iteration; fresh })
            end;
            let accepted = ref false in
            if (fresh > 0 || not st.cfg.coverage_guided) && not !found then begin
              (* P' joins the pool only when it compiles: broken mutants
                 still contribute (error-path) coverage but breeding from
                 them would collapse the pool's compilable ratio *)
              match outcome with
              | Simcomp.Compiler.Compiled _ -> (
                (* the compiler already parsed this exact source; fall
                   back to a fresh parse only on a cache hit *)
                let reparsed =
                  match parsed with
                  | Some tu'' -> Ok tu''
                  | None -> Parser.parse src'
                in
                match reparsed with
                | Ok tu'' ->
                  Engine.Vec.push st.pool (make_entry src' tu'');
                  if st.cfg.schedule then sched_accept st cov;
                  found := true;
                  accepted := true
                | Error _ -> ())
              | Simcomp.Compiler.Compile_error _
              | Simcomp.Compiler.Crashed _ -> ()
            end;
            if st.cfg.schedule then Simcomp.Coverage.drain cov;
            Engine.Metrics.incr
              (if !accepted then mc.mc_accept else mc.mc_reject));
          try_mutators rest
        end
    in
    try_mutators shuffled
  end

let sample_trend (st : state) ~iteration =
  if iteration mod st.cfg.sample_every = 0 then
    Engine.Ctx.emit st.engine
      (Engine.Event.Coverage_sampled
         {
           iteration;
           covered = Simcomp.Coverage.covered st.result.Fuzz_result.coverage;
         })

(* Everything [step] reads or writes, captured at an iteration boundary.
   The compile cache is included because cache hits skip coverage
   recording: a resumed run with a cold cache would re-accumulate hit
   counts the uninterrupted run deduplicated, diverging in
   [coverage.hits].  The fault harness is included because its per-site
   draw counters are part of the deterministic stream position. *)
type snapshot = {
  sn_iteration : int;
  sn_rng_state : int64;
  sn_pool : pool_entry array;
  (* serialized straight from the pool vector ([Vec.to_array]), not via
     an intermediate list: one array instead of a cons per entry, and
     resume restores it byte-identically with [Vec.of_array] *)
  sn_result : Fuzz_result.t;
  sn_trend_rev : (int * int) list;
  sn_cache : Simcomp.Compiler.cache;
  sn_faults : Engine.Faults.t option;
  sn_sched_top : Bytes.t option;
  (* per-edge claim table, present iff the run schedules; entry claim
     counts ride along inside [sn_pool] ([pe_tops] is part of the
     entry), so restoring both reproduces the scheduler's exact state *)
}

let run ?options ?(cfg = default_config ()) ?engine ?faults ?checkpoint
    ?resume ~rng ~compiler ~seeds ~iterations ~name () : Fuzz_result.t =
  let st = init ?options ?engine ?faults ~cfg ~rng ~compiler ~seeds () in
  st.result <- { st.result with fuzzer_name = name };
  let fingerprint =
    Fmt.str "mucfuzz|%s|%s|it=%d|%s|%s" name
      (Simcomp.Bugdb.compiler_to_string compiler)
      iterations
      (match faults with
      | None -> "faults=off"
      | Some f -> "faults=" ^ Engine.Faults.fingerprint f)
      (* the schedule mode changes the RNG stream and the pool shape, so
         a snapshot from one mode must not resume a run in the other *)
      (if cfg.schedule then Fmt.str "sched=on,max=%d" cfg.pool_max
       else "sched=off")
  in
  (* resume replaces the freshly initialised run state wholesale (the
     seed compiles [init] just performed drew from streams the snapshot
     supersedes); a stale or unreadable snapshot falls back to a full
     run from iteration 1 *)
  let start =
    match resume with
    | None -> 1
    | Some path -> (
      match Engine.Checkpoint.load ~path ~fingerprint with
      | Ok (sn : snapshot) ->
        Rng.set_state st.rng sn.sn_rng_state;
        st.pool <- Engine.Vec.of_array sn.sn_pool;
        (match sn.sn_sched_top with
        | Some b -> Bytes.blit b 0 st.sched_top 0 (Bytes.length b)
        | None -> ());
        st.result <- sn.sn_result;
        st.trend_rev := sn.sn_trend_rev;
        st.cache <- sn.sn_cache;
        st.faults <- sn.sn_faults;
        st.batch <-
          make_batch ~cache:st.cache ~cov:st.scratch ~engine:st.engine
            ~faults:st.faults st.compiler st.options;
        Engine.Ctx.incr st.engine "mucfuzz.resumed";
        sn.sn_iteration + 1
      | Error _ ->
        Engine.Ctx.incr st.engine "mucfuzz.resume_failed";
        1)
  in
  let save_checkpoint i =
    match checkpoint with
    | Some (path, every) when every > 0 && i mod every = 0 ->
      let sn =
        {
          sn_iteration = i;
          sn_rng_state = Rng.state st.rng;
          sn_pool = Engine.Vec.to_array st.pool;
          sn_result = st.result;
          sn_trend_rev = !(st.trend_rev);
          sn_cache = st.cache;
          sn_faults = st.faults;
          sn_sched_top = (if cfg.schedule then Some st.sched_top else None);
        }
      in
      (* best-effort: a failed save (exhausted Io_failure retries) costs
         resume granularity, not campaign correctness *)
      ignore
        (Engine.Checkpoint.save ?faults:st.faults ~ctx:st.engine ~path
           ~fingerprint sn)
    | _ -> ()
  in
  Engine.Span.with_ st.engine ~name:"mucfuzz.run" (fun () ->
      for i = start to iterations do
        step st ~iteration:i;
        sample_trend st ~iteration:i;
        save_checkpoint i
      done);
  (* the trend always ends at the final iteration, even when
     [iterations mod sample_every <> 0] — downstream plots and reports
     otherwise truncate the tail.  Guarded on the trend head so a run
     resumed from a snapshot taken at the last iteration (whose loop
     body never executes) doesn't append a duplicate sample. *)
  (match !(st.trend_rev) with
  | (last, _) :: _ when last = iterations -> ()
  | _ ->
    Engine.Ctx.emit st.engine
      (Engine.Event.Coverage_sampled
         {
           iteration = iterations;
           covered = Simcomp.Coverage.covered st.result.Fuzz_result.coverage;
         }));
  (* detach the trend listener so a shared engine context can host
     subsequent runs without cross-feeding *)
  Engine.Event.remove_sink st.engine.Engine.Ctx.bus st.trend_sink;
  {
    st.result with
    iterations;
    coverage_trend = List.rev !(st.trend_rev);
  }
