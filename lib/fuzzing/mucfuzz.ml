(* μCFuzz: the paper's micro coverage-guided fuzzer (Algorithm 1).

   Given seed programs S, mutators M and a compiler C, each iteration
   picks a random pool program P, shuffles M, and applies mutators until
   one produces a mutant P' covering a branch not covered by the pool;
   P' then joins the pool.  No havoc, no forking, no pool culling.

   Every run owns an Engine.Ctx: attempts/accepts/rejects are counted
   per mutator, compile outcomes and crashes become events, and the
   coverage trend is collected by a Coverage_sampled sink instead of a
   hand-rolled list. *)

open Cparse

type config = {
  mutators : Mutators.Mutator.t list;
  fragility : bool;       (* apply the text-rewriting fragility model *)
  coverage_guided : bool; (* ablation: accept every mutant when false *)
  max_attempts_per_iteration : int; (* |M| in the paper *)
  sample_every : int;     (* coverage-trend sampling period *)
}

let default_config ?(mutators = Mutators.Registry.core) () =
  {
    mutators;
    fragility = true;
    coverage_guided = true;
    max_attempts_per_iteration = List.length mutators;
    sample_every = 25;
  }

type pool_entry = { src : string; tu : Ast.tu }

(* Pre-resolved per-mutator instruments: one Hashtbl lookup at set-up,
   O(1) bumps on the hot path. *)
type mutator_counters = {
  mc_attempt : Engine.Metrics.counter;
  mc_inapplicable : Engine.Metrics.counter;
  mc_accept : Engine.Metrics.counter;
  mc_reject : Engine.Metrics.counter;
}

type state = {
  cfg : config;
  rng : Rng.t;
  compiler : Simcomp.Compiler.compiler;
  options : Simcomp.Compiler.options;
  engine : Engine.Ctx.t;
  per_mutator : (string, mutator_counters) Hashtbl.t;
  trend_rev : (int * int) list ref;  (* fed by the trend sink *)
  trend_sink : Engine.Event.sink;
  (* pool/cache/faults are replaced wholesale on checkpoint resume *)
  mutable pool : pool_entry Engine.Vec.t; (* amortized-O(1) accepts *)
  scratch : Simcomp.Coverage.t;      (* per-mutant map, reset not realloc'd *)
  mutable cache : Simcomp.Compiler.cache; (* byte-identical mutant dedup *)
  mutable faults : Engine.Faults.t option;
  mutable result : Fuzz_result.t;
}

let mutator_counters (st : state) (m : Mutators.Mutator.t) =
  let name = m.Mutators.Mutator.name in
  match Hashtbl.find_opt st.per_mutator name with
  | Some c -> c
  | None ->
    let reg = st.engine.Engine.Ctx.metrics in
    let c =
      {
        mc_attempt = Engine.Metrics.counter reg ("mucfuzz.attempt." ^ name);
        mc_inapplicable =
          Engine.Metrics.counter reg ("mucfuzz.inapplicable." ^ name);
        mc_accept = Engine.Metrics.counter reg ("mucfuzz.accept." ^ name);
        mc_reject = Engine.Metrics.counter reg ("mucfuzz.reject." ^ name);
      }
    in
    Hashtbl.replace st.per_mutator name c;
    c

let init ?(options = Simcomp.Compiler.default_options) ?engine ?faults ~cfg
    ~rng ~compiler ~(seeds : string list) () : state =
  let pool =
    List.filter_map
      (fun src ->
        match Parser.parse src with
        | Ok tu -> Some { src; tu }
        | Error _ -> None)
      seeds
  in
  let engine =
    match engine with Some e -> e | None -> Engine.Ctx.create ()
  in
  (* the coverage trend is an event stream: sample_trend emits
     Coverage_sampled and this sink (detached at the end of [run])
     collects the samples *)
  let trend_rev = ref [] in
  let trend_sink =
    {
      Engine.Event.sink_name = "mucfuzz.trend";
      emit =
        (function
        | Engine.Event.Coverage_sampled { iteration; covered } ->
          trend_rev := (iteration, covered) :: !trend_rev
        | _ -> ());
    }
  in
  Engine.Event.add_sink engine.Engine.Ctx.bus trend_sink;
  let st =
    {
      cfg;
      rng;
      compiler;
      options;
      engine;
      per_mutator = Hashtbl.create 160;
      trend_rev;
      trend_sink;
      pool = Engine.Vec.of_list pool;
      scratch = Simcomp.Coverage.create ();
      cache = Simcomp.Compiler.cache_create ();
      faults;
      result =
        Fuzz_result.make
          ~fuzzer_name:
            (if cfg.mutators == Mutators.Registry.supervised then "uCFuzz.s"
             else "uCFuzz")
          ~compiler;
    }
  in
  (* the pool's baseline coverage comes from compiling the seeds; a seed
     that crashes the compiler is a finding like any other (iteration 0)
     and fresh branches feed the baseline trend sample *)
  Engine.Vec.iter
    (fun e ->
      Simcomp.Coverage.reset st.scratch;
      let cov = st.scratch in
      (match
         fst
           (Simcomp.Compiler.compile_cached ~cache:st.cache ~cov ~engine
              ?faults:st.faults compiler options e.src)
       with
      | Simcomp.Compiler.Compiled _ | Simcomp.Compiler.Compile_error _ -> ()
      | Simcomp.Compiler.Crashed c ->
        Fuzz_result.record_crash st.result ~iteration:0 ~input:e.src c;
        Engine.Ctx.emit engine
          (Engine.Event.Crash_found
             {
               key = Simcomp.Crash.unique_key c;
               stage = Simcomp.Compiler.engine_stage c.Simcomp.Crash.stage;
               iteration = 0;
             }));
      let fresh =
        Simcomp.Coverage.merge ~into:st.result.Fuzz_result.coverage cov
      in
      if fresh > 0 then
        Engine.Ctx.emit engine
          (Engine.Event.Coverage_gained { iteration = 0; fresh }))
    st.pool;
  Engine.Ctx.emit engine
    (Engine.Event.Coverage_sampled
       {
         iteration = 0;
         covered = Simcomp.Coverage.covered st.result.Fuzz_result.coverage;
       });
  st

(* One iteration of Algorithm 1. *)
let step (st : state) ~iteration : unit =
  if Engine.Vec.length st.pool = 0 then ()
  else begin
    let entry = Engine.Vec.get st.pool (Rng.int st.rng (Engine.Vec.length st.pool)) in
    let shuffled = Rng.shuffle st.rng st.cfg.mutators in
    let attempts = ref 0 in
    let found = ref false in
    let rec try_mutators = function
      | [] -> ()
      | m :: rest ->
        if !found || !attempts >= st.cfg.max_attempts_per_iteration then ()
        else begin
          incr attempts;
          let mc = mutator_counters st m in
          Engine.Metrics.incr mc.mc_attempt;
          Engine.Ctx.emit st.engine
            (Engine.Event.Mutant_attempted
               { mutator = m.Mutators.Mutator.name });
          (match Mutators.Mutator.apply m ~rng:st.rng entry.tu with
          | None -> Engine.Metrics.incr mc.mc_inapplicable
          | Some tu' ->
            let src' =
              if st.cfg.fragility then Fragility.render st.rng m tu'
              else Pretty.tu_to_string tu'
            in
            st.result <-
              {
                st.result with
                total_mutants = st.result.total_mutants + 1;
                throughput_mutants = st.result.throughput_mutants + 1;
              };
            Simcomp.Coverage.reset st.scratch;
            let cov = st.scratch in
            (* byte-identical mutants (frequent under the fragility
               model) short-circuit in the cache: the memoized outcome
               comes back and the scratch map stays empty, which is
               equivalent — the first compile's coverage was already
               merged below, so its fresh count would be 0 anyway *)
            let outcome, parsed =
              Simcomp.Compiler.compile_cached ~cache:st.cache ~cov
                ~engine:st.engine ?faults:st.faults st.compiler st.options src'
            in
            (match outcome with
            | Simcomp.Compiler.Compiled _ ->
              st.result <-
                {
                  st.result with
                  compilable_mutants = st.result.compilable_mutants + 1;
                }
            | Simcomp.Compiler.Crashed c ->
              Fuzz_result.record_crash st.result ~iteration ~input:src' c;
              Engine.Ctx.emit st.engine
                (Engine.Event.Crash_found
                   {
                     key = Simcomp.Crash.unique_key c;
                     stage =
                       Simcomp.Compiler.engine_stage c.Simcomp.Crash.stage;
                     iteration;
                   })
            | Simcomp.Compiler.Compile_error _ -> ());
            (* one pass: the merged fresh count IS the accept signal *)
            let fresh =
              Simcomp.Coverage.merge ~into:st.result.Fuzz_result.coverage cov
            in
            if fresh > 0 then
              Engine.Ctx.emit st.engine
                (Engine.Event.Coverage_gained { iteration; fresh });
            let accepted = ref false in
            if (fresh > 0 || not st.cfg.coverage_guided) && not !found then begin
              (* P' joins the pool only when it compiles: broken mutants
                 still contribute (error-path) coverage but breeding from
                 them would collapse the pool's compilable ratio *)
              match outcome with
              | Simcomp.Compiler.Compiled _ -> (
                (* the compiler already parsed this exact source; fall
                   back to a fresh parse only on a cache hit *)
                let reparsed =
                  match parsed with
                  | Some tu'' -> Ok tu''
                  | None -> Parser.parse src'
                in
                match reparsed with
                | Ok tu'' ->
                  Engine.Vec.push st.pool { src = src'; tu = tu'' };
                  found := true;
                  accepted := true
                | Error _ -> ())
              | Simcomp.Compiler.Compile_error _
              | Simcomp.Compiler.Crashed _ -> ()
            end;
            Engine.Metrics.incr
              (if !accepted then mc.mc_accept else mc.mc_reject));
          try_mutators rest
        end
    in
    try_mutators shuffled
  end

let sample_trend (st : state) ~iteration =
  if iteration mod st.cfg.sample_every = 0 then
    Engine.Ctx.emit st.engine
      (Engine.Event.Coverage_sampled
         {
           iteration;
           covered = Simcomp.Coverage.covered st.result.Fuzz_result.coverage;
         })

(* Everything [step] reads or writes, captured at an iteration boundary.
   The compile cache is included because cache hits skip coverage
   recording: a resumed run with a cold cache would re-accumulate hit
   counts the uninterrupted run deduplicated, diverging in
   [coverage.hits].  The fault harness is included because its per-site
   draw counters are part of the deterministic stream position. *)
type snapshot = {
  sn_iteration : int;
  sn_rng_state : int64;
  sn_pool : pool_entry list;
  sn_result : Fuzz_result.t;
  sn_trend_rev : (int * int) list;
  sn_cache : Simcomp.Compiler.cache;
  sn_faults : Engine.Faults.t option;
}

let run ?options ?(cfg = default_config ()) ?engine ?faults ?checkpoint
    ?resume ~rng ~compiler ~seeds ~iterations ~name () : Fuzz_result.t =
  let st = init ?options ?engine ?faults ~cfg ~rng ~compiler ~seeds () in
  st.result <- { st.result with fuzzer_name = name };
  let fingerprint =
    Fmt.str "mucfuzz|%s|%s|it=%d|%s" name
      (Simcomp.Bugdb.compiler_to_string compiler)
      iterations
      (match faults with
      | None -> "faults=off"
      | Some f -> "faults=" ^ Engine.Faults.fingerprint f)
  in
  (* resume replaces the freshly initialised run state wholesale (the
     seed compiles [init] just performed drew from streams the snapshot
     supersedes); a stale or unreadable snapshot falls back to a full
     run from iteration 1 *)
  let start =
    match resume with
    | None -> 1
    | Some path -> (
      match Engine.Checkpoint.load ~path ~fingerprint with
      | Ok (sn : snapshot) ->
        Rng.set_state st.rng sn.sn_rng_state;
        st.pool <- Engine.Vec.of_list sn.sn_pool;
        st.result <- sn.sn_result;
        st.trend_rev := sn.sn_trend_rev;
        st.cache <- sn.sn_cache;
        st.faults <- sn.sn_faults;
        Engine.Ctx.incr st.engine "mucfuzz.resumed";
        sn.sn_iteration + 1
      | Error _ ->
        Engine.Ctx.incr st.engine "mucfuzz.resume_failed";
        1)
  in
  let save_checkpoint i =
    match checkpoint with
    | Some (path, every) when every > 0 && i mod every = 0 ->
      let sn =
        {
          sn_iteration = i;
          sn_rng_state = Rng.state st.rng;
          sn_pool = Engine.Vec.to_list st.pool;
          sn_result = st.result;
          sn_trend_rev = !(st.trend_rev);
          sn_cache = st.cache;
          sn_faults = st.faults;
        }
      in
      (* best-effort: a failed save (exhausted Io_failure retries) costs
         resume granularity, not campaign correctness *)
      ignore
        (Engine.Checkpoint.save ?faults:st.faults ~ctx:st.engine ~path
           ~fingerprint sn)
    | _ -> ()
  in
  Engine.Span.with_ st.engine ~name:"mucfuzz.run" (fun () ->
      for i = start to iterations do
        step st ~iteration:i;
        sample_trend st ~iteration:i;
        save_checkpoint i
      done);
  (* the trend always ends at the final iteration, even when
     [iterations mod sample_every <> 0] — downstream plots and reports
     otherwise truncate the tail.  Guarded on the trend head so a run
     resumed from a snapshot taken at the last iteration (whose loop
     body never executes) doesn't append a duplicate sample. *)
  (match !(st.trend_rev) with
  | (last, _) :: _ when last = iterations -> ()
  | _ ->
    Engine.Ctx.emit st.engine
      (Engine.Event.Coverage_sampled
         {
           iteration = iterations;
           covered = Simcomp.Coverage.covered st.result.Fuzz_result.coverage;
         }));
  (* detach the trend listener so a shared engine context can host
     subsequent runs without cross-feeding *)
  Engine.Event.remove_sink st.engine.Engine.Ctx.bus st.trend_sink;
  {
    st.result with
    iterations;
    coverage_trend = List.rev !(st.trend_rev);
  }
