(* Automatic culprit-pass bisection (GCC debug-bisect-passes, natively).

   Triage after fuzzing: a campaign attributes findings to a whole
   compiler invocation, but the expensive question is *which pass*.
   With the pass manager this is answerable by experiment — re-compile
   the offending source with passes disabled and watch the finding
   (crash identity, or the wrong-code differential) appear and vanish.

   The search is greedy rather than a full ddmin: first probe each
   planned pass individually (a pass whose lone disabling clears the
   finding is individually necessary — the common single-culprit case),
   and only when no single pass is decisive fall back to shrinking the
   full disable-set.  Probe order follows the pipeline, so verdicts are
   deterministic in (compiler, options, source). *)

type finding =
  | Ice of { key : string; bug_id : string }
  | Wrong_code of { reference : int * bool; observed : int * bool }

let behaviour_to_string (exit, trapped) =
  if trapped then "trap" else Printf.sprintf "exit %d" exit

let finding_to_string = function
  | Ice { bug_id; key } -> Printf.sprintf "ICE %s [%s]" bug_id key
  | Wrong_code { reference; observed } ->
    Printf.sprintf "wrong-code (%s at -O0, %s optimized)"
      (behaviour_to_string reference)
      (behaviour_to_string observed)

type verdict = {
  v_finding : finding;
  v_pipeline : string list;
  v_culprits : string list;
  v_first_divergent : string option;
  v_attributable : bool;
  v_recompiles : int;
}

let detect (compiler : Simcomp.Compiler.compiler)
    (opts : Simcomp.Compiler.options) (src : string) : finding option =
  match Simcomp.Compiler.compile compiler opts src with
  | Simcomp.Compiler.Crashed c ->
    Some (Ice { key = Simcomp.Crash.unique_key c; bug_id = c.Simcomp.Crash.bug_id })
  | Simcomp.Compiler.Compile_error _ -> None
  | Simcomp.Compiler.Compiled _ -> (
    match Wrongcode.check_program compiler opts src with
    | Some mm ->
      Some
        (Wrong_code
           {
             reference = mm.Wrongcode.mm_reference;
             observed = mm.Wrongcode.mm_observed;
           })
    | None -> None)

let dedup_keep_order names =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then false
      else begin
        Hashtbl.replace seen n ();
        true
      end)
    names

let run ?engine (compiler : Simcomp.Compiler.compiler)
    (opts : Simcomp.Compiler.options) (src : string) : verdict option =
  match detect compiler opts src with
  | None -> None
  | Some finding ->
    Option.iter (fun ctx -> Engine.Ctx.incr ctx "bisect.runs") engine;
    let recompiles = ref 0 in
    (* is the *same* finding still present with [extra] passes also
       disabled?  Crash identity must match; for wrong-code any
       remaining divergence counts (the corrupted values legitimately
       shift as the downstream pipeline changes). *)
    let present extra =
      incr recompiles;
      Option.iter (fun ctx -> Engine.Ctx.incr ctx "bisect.recompiles") engine;
      let probe_opts =
        {
          opts with
          Simcomp.Compiler.disabled_passes =
            opts.Simcomp.Compiler.disabled_passes @ extra;
        }
      in
      match finding with
      | Ice { key; _ } -> (
        match Simcomp.Compiler.compile compiler probe_opts src with
        | Simcomp.Compiler.Crashed c ->
          String.equal (Simcomp.Crash.unique_key c) key
        | _ -> false)
      | Wrong_code _ ->
        Option.is_some (Wrongcode.check_program compiler probe_opts src)
    in
    let pipeline = Simcomp.Compiler.pipeline_of opts in
    let uniq = dedup_keep_order pipeline in
    let singles = List.filter (fun p -> not (present [ p ])) uniq in
    let culprits, attributable =
      match singles with
      | _ :: _ -> (singles, true)
      | [] ->
        if present uniq then ([], false)
        else
          (* no single pass is decisive but the finding is still
             pass-borne: shrink the full disable-set greedily *)
          let keep = ref uniq in
          List.iter
            (fun p ->
              let without = List.filter (fun q -> not (String.equal q p)) !keep in
              if not (present without) then keep := without)
            uniq;
          (!keep, true)
    in
    if not attributable then
      Option.iter (fun ctx -> Engine.Ctx.incr ctx "bisect.unattributable") engine;
    let first_divergent =
      match finding with
      | Ice _ -> None
      | Wrong_code _ -> (
        match
          Simcomp.Compiler.compile_passes ~verify:true compiler opts src
        with
        | Ok tr -> tr.Simcomp.Compiler.pt_first_divergent
        | Error _ -> None)
    in
    Some
      {
        v_finding = finding;
        v_pipeline = pipeline;
        v_culprits = culprits;
        v_first_divergent = first_divergent;
        v_attributable = attributable;
        v_recompiles = !recompiles;
      }

type attribution = {
  at_compiler : Simcomp.Compiler.compiler;
  at_bug_id : string;
  at_input : string;
  at_verdict : verdict;
}

let attribute ?engine ?(options = Simcomp.Compiler.default_options)
    (t : Campaign.t) : attribution list =
  (* unique optimizer-stage crashes across all cells, keyed by
     (compiler, crash key); sorted so the result is identical no matter
     which worker found each crash first *)
  let seen = Hashtbl.create 16 in
  let candidates = ref [] in
  List.iter
    (fun ((_, compiler), (r : Fuzz_result.t)) ->
      Hashtbl.iter
        (fun key (cr : Fuzz_result.crash_record) ->
          if cr.Fuzz_result.cr_crash.Simcomp.Crash.stage = Simcomp.Crash.Optimization
          then begin
            let id = (Simcomp.Bugdb.compiler_to_string compiler, key) in
            if not (Hashtbl.mem seen id) then begin
              Hashtbl.replace seen id ();
              candidates :=
                (id, compiler, cr.Fuzz_result.cr_crash.Simcomp.Crash.bug_id,
                 cr.Fuzz_result.cr_input)
                :: !candidates
            end
          end)
        r.Fuzz_result.crashes)
    t.Campaign.results;
  let candidates =
    List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b) !candidates
  in
  List.filter_map
    (fun (_, compiler, bug_id, input) ->
      Option.map
        (fun v ->
          {
            at_compiler = compiler;
            at_bug_id = bug_id;
            at_input = input;
            at_verdict = v;
          })
        (run ?engine compiler options input))
    candidates
