(** The RQ1 experiment driver: run all six fuzzers against both simulated
    compilers under an equal *wall-clock* budget (per-tool throughput
    factors from Table 5) and collect the statistics behind Figures 7-9
    and Tables 4-5. *)

type fuzzer_id =
  | MuCFuzz_s   (** μCFuzz with the 68 supervised mutators *)
  | MuCFuzz_u   (** μCFuzz with the 50 unsupervised mutators *)
  | AFLpp       (** byte-level havoc baseline *)
  | GrayC       (** five semantic-aware mutators *)
  | Csmith      (** generation-based, closed grammar *)
  | YARPGen     (** generation-based, loop-focused *)

val fuzzer_name : fuzzer_id -> string
val all_fuzzers : fuzzer_id list

val fuzzer_tag : fuzzer_id -> int
(** Stable RNG-derivation tag (1-6): unlike [Hashtbl.hash], an explicit
    cross-version determinism guarantee. *)

val compiler_tag : Simcomp.Compiler.compiler -> int
(** Stable RNG-derivation tag (1-2). *)

type config = {
  iterations : int;    (** time-unit budget (generators get a fraction) *)
  seeds : int;         (** seed-corpus size *)
  sample_every : int;
  seed_value : int;    (** RNG seed: campaigns are deterministic *)
  max_attempts : int;  (** μCFuzz per-iteration mutator budget *)
  jobs : int;
      (** Domain workers over the fuzzer × compiler matrix; [<= 1] runs
          sequentially.  Results are identical at any job count. *)
  schedule : bool;
      (** enable {!Mucfuzz} corpus scheduling in the μCFuzz cells (the
          baselines are unaffected); off by default *)
}

val default_config : config
(** [jobs] defaults to [Domain.recommended_domain_count ()]. *)

val cell_tag : fuzzer_id -> Simcomp.Compiler.compiler -> int
(** Stable per-cell fault-stream derivation tag, independent of the
    cell's position in the work list. *)

val run_one :
  ?engine:Engine.Ctx.t ->
  ?faults:Engine.Faults.t ->
  ?checkpoint:string * int ->
  ?resume:string ->
  ?options:Simcomp.Compiler.options ->
  config -> fuzzer_id -> Simcomp.Compiler.compiler -> Fuzz_result.t
(** One cell.  [faults] is the *campaign* harness: the cell derives its
    own stream with {!cell_tag}.  [checkpoint]/[resume] are forwarded to
    {!Mucfuzz.run} (ignored by the baselines other than GrayC).
    [options] selects the compiler configuration every mutant is
    compiled under (default [-O2]) — the {!Coordinator}'s opt-matrix
    axis runs the same cell at several [-O] levels. *)

type cell = fuzzer_id * Simcomp.Compiler.compiler

val cell_name : cell -> string
(** Stable display name, ["<fuzzer>-<compiler>"] — also the Chrome-trace
    thread label and the checkpoint file stem. *)

val cell_ckpt_file : string -> cell -> string
(** [cell_ckpt_file dir cell]: the mid-run snapshot path {!run} uses for
    this cell.  Exposed so the sharded {!Coordinator} writes the same
    files — a sequential campaign interrupted under [--shards 1] resumes
    under [--shards K] and vice versa. *)

val cell_done_file : string -> cell -> string
(** The completed-cell result path ({!run} restores these on resume). *)

val cell_fingerprint :
  config -> ?faults:Engine.Faults.t -> cell -> string
(** The validity stamp those files are saved under: every parameter the
    snapshot depends on ([jobs] deliberately excluded). *)

type t = {
  config : config;
  results : (cell * Fuzz_result.t) list;
  failures : (cell * string) list;
      (** cells whose computation kept failing (supervised mode);
          empty in a healthy campaign *)
  resumed_cells : int;
      (** cells restored from completed-cell checkpoints, not recomputed *)
}

val run :
  ?cfg:config ->
  ?fuzzers:fuzzer_id list ->
  ?compilers:Simcomp.Compiler.compiler list ->
  ?engine:Engine.Ctx.t ->
  ?faults:Engine.Faults.t ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?progress:(completed:int -> total:int -> string -> unit) ->
  unit ->
  t
(** Run every (fuzzer, compiler) cell, fanning out over [cfg.jobs]
    Domain workers.  Each cell owns its RNG stream, fault stream, and
    coverage map, so coverage/crash results are byte-identical at any
    job count and any fault configuration.  With [engine]: in
    sequential mode the context is threaded straight through; in
    parallel mode each worker gets a private context and the join
    barrier {!Engine.Metrics.merge}s worker registries into [engine] in
    cell order (per-worker events are not forwarded).  When [engine]
    has tracing enabled, spans carry the stable {!cell_tag} as their
    Chrome-trace thread id (sequential mode re-tags the shared buffer;
    parallel workers trace privately and {!Engine.Trace.merge} happens
    at the join barrier in canonical cell order), so merged traces are
    deterministic up to timestamps.  [progress] is called once per
    completed cell with its display name — from whichever domain
    finished it, so callers synchronise when [cfg.jobs > 1].

    Parallel cells run under {!Engine.Scheduler.supervised_map}: a cell
    that keeps failing lands in [failures] instead of destroying
    sibling results, and injected worker deaths are requeued.

    With [checkpoint:dir], each cell periodically snapshots its μCFuzz
    state to [dir] (atomic write-temp + rename) and saves its final
    result on completion; with [resume:true], completed cells are
    restored outright and interrupted μCFuzz cells continue from their
    last snapshot — the reassembled [results] are identical to an
    uninterrupted run with the same config. *)

val result : t -> fuzzer_id -> Simcomp.Compiler.compiler -> Fuzz_result.t option

val crash_set : t -> fuzzer_id -> (string, unit) Hashtbl.t
(** Crashes of one fuzzer across both compilers; keys are prefixed with
    the compiler name so GCC and Clang crashes never collide. *)

val all_crashes : t -> string list
(** Sorted union of all crash keys (the Fig. 8 universe). *)
