(* The RQ1 experiment driver: run all six fuzzers against both simulated
   compilers under an identical iteration budget and collect the
   coverage / crash / compilable-mutant statistics behind Figures 7-9 and
   Tables 4-5. *)

open Cparse

type fuzzer_id =
  | MuCFuzz_s
  | MuCFuzz_u
  | AFLpp
  | GrayC
  | Csmith
  | YARPGen

let fuzzer_name = function
  | MuCFuzz_s -> "uCFuzz.s"
  | MuCFuzz_u -> "uCFuzz.u"
  | AFLpp -> "AFL++"
  | GrayC -> "GrayC"
  | Csmith -> "Csmith"
  | YARPGen -> "YARPGen"

let all_fuzzers = [ MuCFuzz_s; MuCFuzz_u; AFLpp; GrayC; Csmith; YARPGen ]

(* Stable per-fuzzer/per-compiler RNG-derivation tags.  Hashtbl.hash is
   not a cross-version (or cross-domain-layout) determinism guarantee;
   these are, and worker-parallel runs must reproduce the sequential
   streams exactly. *)
let fuzzer_tag = function
  | MuCFuzz_s -> 1
  | MuCFuzz_u -> 2
  | AFLpp -> 3
  | GrayC -> 4
  | Csmith -> 5
  | YARPGen -> 6

let compiler_tag = function Simcomp.Compiler.Gcc -> 1 | Clang -> 2

type config = {
  iterations : int;
  seeds : int;            (* seed-corpus size *)
  sample_every : int;
  seed_value : int;       (* RNG seed for determinism *)
  max_attempts : int;     (* μCFuzz per-iteration mutator budget *)
  jobs : int;             (* Domain.spawn workers over the matrix *)
}

let default_config =
  {
    iterations = 400;
    seeds = 60;
    sample_every = 20;
    seed_value = 2024;
    max_attempts = 16;
    jobs = Domain.recommended_domain_count ();
  }

let run_one ?engine (cfg : config) (fuzzer : fuzzer_id)
    (compiler : Simcomp.Compiler.compiler) : Fuzz_result.t =
  (* every fuzzer gets its own deterministic RNG stream and the same seed
     corpus (except the generation-based ones, which are seedless) *)
  let rng =
    Rng.create
      (cfg.seed_value + (1000 * fuzzer_tag fuzzer) + compiler_tag compiler)
  in
  let seed_rng = Rng.create cfg.seed_value in
  let seeds = Seeds.corpus ~n:cfg.seeds seed_rng in
  let mucfuzz_cfg mutators name =
    ignore name;
    {
      (Mucfuzz.default_config ~mutators ()) with
      Mucfuzz.sample_every = cfg.sample_every;
      max_attempts_per_iteration = cfg.max_attempts;
    }
  in
  (* Equal *wall-clock*, not equal program counts: per Table 5, in 24 h
     AFL++ produces ~2.2x the mutants of μCFuzz while Csmith and YARPGen
     produce ~3% and ~8% (program generation is expensive).  The
     iteration budget is scaled by those throughput factors. *)
  let gen_iters factor = max 10 (cfg.iterations * factor / 100) in
  match fuzzer with
  | MuCFuzz_s ->
    Mucfuzz.run
      ~cfg:(mucfuzz_cfg Mutators.Registry.supervised "uCFuzz.s")
      ?engine ~rng ~compiler ~seeds ~iterations:cfg.iterations
      ~name:"uCFuzz.s" ()
  | MuCFuzz_u ->
    Mucfuzz.run
      ~cfg:(mucfuzz_cfg Mutators.Registry.unsupervised "uCFuzz.u")
      ?engine ~rng ~compiler ~seeds ~iterations:cfg.iterations
      ~name:"uCFuzz.u" ()
  | AFLpp ->
    Baselines.run_aflpp ?engine ~rng ~compiler ~seeds
      ~iterations:cfg.iterations ~sample_every:cfg.sample_every ()
  | GrayC ->
    Baselines.run_grayc ?engine ~rng ~compiler ~seeds
      ~iterations:cfg.iterations ~sample_every:cfg.sample_every ()
  | Csmith ->
    Baselines.run_csmith ?engine ~rng ~compiler ~iterations:(gen_iters 8)
      ~sample_every:(max 1 (cfg.sample_every / 8)) ()
  | YARPGen ->
    Baselines.run_yarpgen ?engine ~rng ~compiler ~iterations:(gen_iters 20)
      ~sample_every:(max 1 (cfg.sample_every / 4)) ()

type t = {
  config : config;
  results : ((fuzzer_id * Simcomp.Compiler.compiler) * Fuzz_result.t) list;
}

(* Fan the fuzzer × compiler matrix out over Domain workers.  Each cell
   derives its own RNG stream, coverage map, and (in parallel mode) its
   own Engine context, so the per-cell computation is identical at any
   job count; the join barrier merges worker registries into [engine] in
   deterministic cell order. *)
let run ?(cfg = default_config)
    ?(fuzzers = all_fuzzers)
    ?(compilers = Simcomp.Compiler.[ Gcc; Clang ]) ?engine () : t =
  let cells =
    List.concat_map
      (fun fuzzer -> List.map (fun compiler -> (fuzzer, compiler)) compilers)
      fuzzers
  in
  let results =
    if cfg.jobs <= 1 then
      List.map
        (fun (fuzzer, compiler) ->
          ((fuzzer, compiler), run_one ?engine cfg fuzzer compiler))
        cells
    else begin
      let worker (fuzzer, compiler) =
        let ctx = Engine.Ctx.create () in
        let r = run_one ~engine:ctx cfg fuzzer compiler in
        (ctx, ((fuzzer, compiler), r))
      in
      let out = Engine.Scheduler.parallel_map ~jobs:cfg.jobs worker cells in
      (match engine with
      | None -> ()
      | Some main ->
        List.iter
          (fun (ctx, _) ->
            Engine.Metrics.merge ~into:main.Engine.Ctx.metrics
              ctx.Engine.Ctx.metrics)
          out);
      List.map snd out
    end
  in
  { config = cfg; results }

let result (t : t) fuzzer compiler = List.assoc_opt (fuzzer, compiler) t.results

(* Crashes of one fuzzer across both compilers (crash keys are prefixed
   with the compiler so GCC and Clang crashes never collide). *)
let crash_set (t : t) fuzzer : (string, unit) Hashtbl.t =
  let set = Hashtbl.create 16 in
  List.iter
    (fun ((f, comp), r) ->
      if f = fuzzer then
        List.iter
          (fun k ->
            Hashtbl.replace set
              (Simcomp.Bugdb.compiler_to_string comp ^ ":" ^ k)
              ())
          (Fuzz_result.crash_keys r))
    t.results;
  set

(* Union of all crashes across fuzzers. *)
let all_crashes (t : t) : string list =
  let set = Hashtbl.create 64 in
  List.iter
    (fun f ->
      Hashtbl.iter (fun k () -> Hashtbl.replace set k ()) (crash_set t f))
    all_fuzzers;
  Hashtbl.fold (fun k () acc -> k :: acc) set []
  |> List.sort compare
