(* The RQ1 experiment driver: run all six fuzzers against both simulated
   compilers under an identical iteration budget and collect the
   coverage / crash / compilable-mutant statistics behind Figures 7-9 and
   Tables 4-5. *)

open Cparse

type fuzzer_id =
  | MuCFuzz_s
  | MuCFuzz_u
  | AFLpp
  | GrayC
  | Csmith
  | YARPGen

let fuzzer_name = function
  | MuCFuzz_s -> "uCFuzz.s"
  | MuCFuzz_u -> "uCFuzz.u"
  | AFLpp -> "AFL++"
  | GrayC -> "GrayC"
  | Csmith -> "Csmith"
  | YARPGen -> "YARPGen"

let all_fuzzers = [ MuCFuzz_s; MuCFuzz_u; AFLpp; GrayC; Csmith; YARPGen ]

(* Stable per-fuzzer/per-compiler RNG-derivation tags.  Hashtbl.hash is
   not a cross-version (or cross-domain-layout) determinism guarantee;
   these are, and worker-parallel runs must reproduce the sequential
   streams exactly. *)
let fuzzer_tag = function
  | MuCFuzz_s -> 1
  | MuCFuzz_u -> 2
  | AFLpp -> 3
  | GrayC -> 4
  | Csmith -> 5
  | YARPGen -> 6

let compiler_tag = function Simcomp.Compiler.Gcc -> 1 | Clang -> 2

type config = {
  iterations : int;
  seeds : int;            (* seed-corpus size *)
  sample_every : int;
  seed_value : int;       (* RNG seed for determinism *)
  max_attempts : int;     (* μCFuzz per-iteration mutator budget *)
  jobs : int;             (* Domain.spawn workers over the matrix *)
  schedule : bool;        (* μCFuzz corpus scheduling (AFL-style) *)
}

let default_config =
  {
    iterations = 400;
    seeds = 60;
    sample_every = 20;
    seed_value = 2024;
    max_attempts = 16;
    jobs = Domain.recommended_domain_count ();
    schedule = false;
  }

(* Per-cell fault-harness derivation tag: distinct per (fuzzer, compiler)
   and independent of the cell's position in the work list, so a faulted
   campaign is identical at any job count and any fuzzer subset. *)
let cell_tag fuzzer compiler = (10 * fuzzer_tag fuzzer) + compiler_tag compiler

let run_one ?engine ?faults ?checkpoint ?resume ?options (cfg : config)
    (fuzzer : fuzzer_id) (compiler : Simcomp.Compiler.compiler) :
    Fuzz_result.t =
  (* every fuzzer gets its own deterministic RNG stream, fault stream,
     and the same seed corpus (except the generation-based ones, which
     are seedless) *)
  let rng =
    Rng.create
      (cfg.seed_value + (1000 * fuzzer_tag fuzzer) + compiler_tag compiler)
  in
  let faults =
    Option.map
      (fun f -> Engine.Faults.derive f ~tag:(cell_tag fuzzer compiler))
      faults
  in
  let seed_rng = Rng.create cfg.seed_value in
  let seeds = Seeds.corpus ~n:cfg.seeds seed_rng in
  let mucfuzz_cfg mutators name =
    ignore name;
    {
      (Mucfuzz.default_config ~mutators ()) with
      Mucfuzz.sample_every = cfg.sample_every;
      max_attempts_per_iteration = cfg.max_attempts;
      schedule = cfg.schedule;
    }
  in
  (* Equal *wall-clock*, not equal program counts: per Table 5, in 24 h
     AFL++ produces ~2.2x the mutants of μCFuzz while Csmith and YARPGen
     produce ~3% and ~8% (program generation is expensive).  The
     iteration budget is scaled by those throughput factors. *)
  let gen_iters factor = max 10 (cfg.iterations * factor / 100) in
  match fuzzer with
  | MuCFuzz_s ->
    Mucfuzz.run ?options
      ~cfg:(mucfuzz_cfg Mutators.Registry.supervised "uCFuzz.s")
      ?engine ?faults ?checkpoint ?resume ~rng ~compiler ~seeds
      ~iterations:cfg.iterations ~name:"uCFuzz.s" ()
  | MuCFuzz_u ->
    Mucfuzz.run ?options
      ~cfg:(mucfuzz_cfg Mutators.Registry.unsupervised "uCFuzz.u")
      ?engine ?faults ?checkpoint ?resume ~rng ~compiler ~seeds
      ~iterations:cfg.iterations ~name:"uCFuzz.u" ()
  | AFLpp ->
    Baselines.run_aflpp ?engine ?faults ?options ~rng ~compiler ~seeds
      ~iterations:cfg.iterations ~sample_every:cfg.sample_every ()
  | GrayC ->
    Baselines.run_grayc ?engine ?faults ?options ~rng ~compiler ~seeds
      ~iterations:cfg.iterations ~sample_every:cfg.sample_every ()
  | Csmith ->
    Baselines.run_csmith ?engine ?faults ?options ~rng ~compiler
      ~iterations:(gen_iters 8)
      ~sample_every:(max 1 (cfg.sample_every / 8)) ()
  | YARPGen ->
    Baselines.run_yarpgen ?engine ?faults ?options ~rng ~compiler
      ~iterations:(gen_iters 20)
      ~sample_every:(max 1 (cfg.sample_every / 4)) ()

type cell = fuzzer_id * Simcomp.Compiler.compiler

type t = {
  config : config;
  results : (cell * Fuzz_result.t) list;
  failures : (cell * string) list;
  resumed_cells : int;
}

(* Checkpointing is per cell: each (fuzzer, compiler) pair snapshots its
   own μCFuzz state under a stable file name, and a completed cell's
   final result is saved as a second file so resume can skip it
   entirely.  The fingerprint covers every parameter the snapshot is
   only valid for; [jobs] is deliberately excluded (resuming at a
   different job count is fine — results are job-count-invariant). *)
let cell_name (fuzzer, compiler) =
  Fmt.str "%s-%s" (fuzzer_name fuzzer) (Simcomp.Bugdb.compiler_to_string compiler)

let cell_ckpt_file dir cell =
  Filename.concat dir ("cell-" ^ cell_name cell ^ ".ckpt")

let cell_done_file dir cell =
  Filename.concat dir ("done-" ^ cell_name cell ^ ".ckpt")

let cell_fingerprint (cfg : config) ?faults cell =
  Fmt.str "campaign|%s|it=%d|seeds=%d|every=%d|seed=%d|ma=%d|sched=%b|%s"
    (cell_name cell) cfg.iterations cfg.seeds cfg.sample_every cfg.seed_value
    cfg.max_attempts cfg.schedule
    (match faults with
    | None -> "faults=off"
    | Some f -> "faults=" ^ Engine.Faults.fingerprint f)

(* Fan the fuzzer × compiler matrix out over Domain workers.  Each cell
   derives its own RNG stream, fault stream, coverage map, and (in
   parallel mode) its own Engine context, so the per-cell computation is
   identical at any job count; the join barrier merges worker registries
   into [engine] in deterministic cell order.  Parallel cells run under
   {!Engine.Scheduler.supervised_map}: a cell that keeps failing becomes
   its own [failures] entry instead of destroying sibling results. *)
let run ?(cfg = default_config)
    ?(fuzzers = all_fuzzers)
    ?(compilers = Simcomp.Compiler.[ Gcc; Clang ]) ?engine ?faults
    ?checkpoint ?(resume = false) ?progress () : t =
  let cells =
    List.concat_map
      (fun fuzzer -> List.map (fun compiler -> (fuzzer, compiler)) compilers)
      fuzzers
  in
  Option.iter Engine.Checkpoint.mkdir_p checkpoint;
  let fingerprint cell = cell_fingerprint cfg ?faults cell in
  (* the mid-run snapshot cadence: frequent enough that a killed
     campaign loses little, coarse enough that Marshal cost stays noise *)
  let ckpt_every = max 1 (cfg.sample_every * 5) in
  let compute ?ctx cell =
    let fuzzer, compiler = cell in
    let checkpoint =
      Option.map (fun dir -> (cell_ckpt_file dir cell, ckpt_every)) checkpoint
    in
    let resume =
      match checkpoint with
      | Some (path, _) when resume -> Some path
      | _ -> None
    in
    run_one ?engine:ctx ?faults ?checkpoint ?resume cfg fuzzer compiler
  in
  (* a finished cell is written as done-<cell>.ckpt: on resume those
     cells are restored outright and never recomputed *)
  let save_done ?ctx cell r =
    Option.iter
      (fun dir ->
        ignore
          (Engine.Checkpoint.save ?ctx ~path:(cell_done_file dir cell)
             ~fingerprint:(fingerprint cell) r))
      checkpoint
  in
  (* completion ticks for the live status line: invoked from whichever
     domain finished the cell (callers synchronise if jobs > 1) *)
  let completed_cells = Atomic.make 0 in
  let tick cell =
    match progress with
    | None -> ()
    | Some f ->
      let completed = 1 + Atomic.fetch_and_add completed_cells 1 in
      f ~completed ~total:(List.length cells) (cell_name cell)
  in
  (* Chrome-trace thread identity: the stable cell tag, not the (work-
     stealing, nondeterministic) worker domain id.  Sequential campaigns
     re-tag the one shared buffer per cell; parallel workers trace into
     their own buffer under the cell tag and the join barrier merges in
     canonical cell order. *)
  let main_trace =
    Option.bind engine (fun (e : Engine.Ctx.t) -> e.Engine.Ctx.trace)
  in
  let main_probe =
    Option.bind engine (fun (e : Engine.Ctx.t) -> e.Engine.Ctx.probe)
  in
  let main_log =
    Option.bind engine (fun (e : Engine.Ctx.t) -> e.Engine.Ctx.log)
  in
  let restored, todo =
    match checkpoint with
    | Some dir when resume ->
      List.partition_map
        (fun cell ->
          match
            Engine.Checkpoint.load ~path:(cell_done_file dir cell)
              ~fingerprint:(fingerprint cell)
          with
          | Ok (r : Fuzz_result.t) -> Left (cell, r)
          | Error _ -> Right cell)
        cells
    | _ -> ([], cells)
  in
  let computed =
    if cfg.jobs <= 1 then begin
      let out =
        List.map
          (fun cell ->
            (match main_trace with
            | Some tr ->
              let f, c = cell in
              let tid = cell_tag f c in
              Engine.Trace.set_tid tr tid;
              Engine.Trace.label_tid tr ~tid ~label:(cell_name cell)
            | None -> ());
            (* log records carry a scope, not a wall clock: the renderer
               groups by scope, so jobs:1 and jobs:K render identically *)
            Option.iter
              (fun lg -> Engine.Log.set_scope lg (cell_name cell))
              main_log;
            match compute ?ctx:engine cell with
            | r ->
              save_done ?ctx:engine cell r;
              tick cell;
              (cell, Ok r)
            | exception e -> (cell, Error (Printexc.to_string e)))
          todo
      in
      (* spans recorded after the campaign belong to the driver again *)
      Option.iter (fun tr -> Engine.Trace.set_tid tr 0) main_trace;
      Option.iter (fun lg -> Engine.Log.set_scope lg "") main_log;
      out
    end
    else begin
      let worker cell =
        let ctx = Engine.Ctx.create () in
        let f, c = cell in
        if Option.is_some main_trace then
          ignore (Engine.Ctx.enable_trace ~tid:(cell_tag f c) ctx);
        if Option.is_some main_probe then ignore (Engine.Ctx.enable_probe ctx);
        Option.iter
          (fun lg ->
            ignore (Engine.Ctx.enable_log ~level:(Engine.Log.level lg) ctx))
          main_log;
        let r = compute ~ctx cell in
        (* flush the partial GC batch so the merge sees this cell's tail *)
        Option.iter Engine.Probe.sample ctx.Engine.Ctx.probe;
        save_done ~ctx cell r;
        tick cell;
        (ctx, r)
      in
      let out =
        Engine.Scheduler.supervised_map ~jobs:cfg.jobs ?faults ?ctx:engine
          worker todo
      in
      (* join barrier: merge worker registries (and trace buffers, each
         retagged under its cell tid) into the main context in
         deterministic cell order *)
      (match engine with
      | None -> ()
      | Some main ->
        List.iter2
          (fun cell -> function
            | Ok (ctx, _) ->
              Engine.Metrics.merge ~into:main.Engine.Ctx.metrics
                ctx.Engine.Ctx.metrics;
              (match (main_trace, ctx.Engine.Ctx.trace) with
              | Some into, Some src ->
                let f, c = cell in
                let tid = cell_tag f c in
                Engine.Trace.label_tid into ~tid ~label:(cell_name cell);
                Engine.Trace.merge ~into ~tid src
              | _ -> ());
              (match (main_log, ctx.Engine.Ctx.log) with
              | Some into, Some src ->
                Engine.Log.merge ~into ~scope:(cell_name cell) src
              | _ -> ())
            | Error _ -> ())
          todo out);
      List.map2
        (fun cell -> function
          | Ok (_, r) -> (cell, Ok r)
          | Error { Engine.Scheduler.e_exn; _ } ->
            (cell, Error (Printexc.to_string e_exn)))
        todo out
    end
  in
  (* reassemble in canonical cell order (restored cells interleave with
     computed ones), so output ordering is independent of resume *)
  let completed = restored @ List.filter_map
    (fun (cell, r) -> match r with Ok r -> Some (cell, r) | Error _ -> None)
    computed
  in
  {
    config = cfg;
    results =
      List.filter_map
        (fun cell ->
          Option.map (fun r -> (cell, r)) (List.assoc_opt cell completed))
        cells;
    failures =
      List.filter_map
        (fun (cell, r) ->
          match r with Ok _ -> None | Error msg -> Some (cell, msg))
        computed;
    resumed_cells = List.length restored;
  }

let result (t : t) fuzzer compiler = List.assoc_opt (fuzzer, compiler) t.results

(* Crashes of one fuzzer across both compilers (crash keys are prefixed
   with the compiler so GCC and Clang crashes never collide). *)
let crash_set (t : t) fuzzer : (string, unit) Hashtbl.t =
  let set = Hashtbl.create 16 in
  List.iter
    (fun ((f, comp), r) ->
      if f = fuzzer then
        List.iter
          (fun k ->
            Hashtbl.replace set
              (Simcomp.Bugdb.compiler_to_string comp ^ ":" ^ k)
              ())
          (Fuzz_result.crash_keys r))
    t.results;
  set

(* Union of all crashes across fuzzers. *)
let all_crashes (t : t) : string list =
  let set = Hashtbl.create 64 in
  List.iter
    (fun f ->
      Hashtbl.iter (fun k () -> Hashtbl.replace set k ()) (crash_set t f))
    all_fuzzers;
  Hashtbl.fold (fun k () acc -> k :: acc) set []
  |> List.sort compare
