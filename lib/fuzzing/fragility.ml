(* Text-rewriting fragility model.

   The paper's mutators edit source *text* through the Clang Rewriter;
   the classic failure modes it reports (§4.1 "unthorough test cases",
   Table 1 goal #6 "creates compile-error mutants") are local textual
   slips: a missed call-site rewrite, a dangling token, an overlapping
   edit.  Our mutators are AST-level and therefore type-safe by
   construction, so to preserve the paper's compilable-mutant ratios
   (Table 5: ~72-75 % for μCFuzz vs ~99 % for generators) we re-introduce
   this fragility explicitly: with a per-provenance probability, the
   rendered mutant suffers one Rewriter-style slip.

   Supervised mutators were manually debugged by the authors, hence the
   lower slip probability. *)

open Cparse

let supervised_slip_probability = 0.20
let unsupervised_slip_probability = 0.25

let slip_probability (p : Mutators.Mutator.provenance) =
  match p with
  | Mutators.Mutator.Supervised -> supervised_slip_probability
  | Mutators.Mutator.Unsupervised -> unsupervised_slip_probability

(* One local textual corruption, mimicking Rewriter edit mistakes. *)
let corrupt (rng : Rng.t) (src : string) : string =
  let n = String.length src in
  if n < 8 then src
  else begin
    let pos = Rng.int rng (n - 4) in
    match Rng.int rng 5 with
    | 0 ->
      (* dropped token: delete a few characters *)
      let len = 1 + Rng.int rng 3 in
      String.sub src 0 pos ^ String.sub src (pos + len) (n - pos - len)
    | 1 ->
      (* duplicated range: an edit applied twice *)
      let len = 2 + Rng.int rng 8 in
      let len = min len (n - pos) in
      String.sub src 0 (pos + len)
      ^ String.sub src pos len
      ^ String.sub src (pos + len) (n - pos - len)
    | 2 ->
      (* dangling semicolon / stray delimiter insertion *)
      let c = Rng.choose rng [ ";"; ")"; "}"; "("; "{"; "," ] in
      String.sub src 0 pos ^ c ^ String.sub src pos (n - pos)
    | 3 ->
      (* missed identifier rewrite: mangle one identifier occurrence *)
      String.sub src 0 pos ^ "__missed_rewrite" ^ String.sub src pos (n - pos)
    | _ ->
      (* truncated replacement *)
      let cut = pos + Rng.int rng (n - pos) in
      String.sub src 0 cut
  end

(* Render a mutated unit to text, applying the fragility model.  The
   pretty-printing goes through the compile arena's render buffer — the
   bytes are identical to [Pretty.tu_to_string]'s, without growing a
   fresh buffer per mutant. *)
let render (rng : Rng.t) (m : Mutators.Mutator.t) (tu : Cparse.Ast.tu) : string =
  let src = Simcomp.Scratch.render_tu tu in
  if Rng.flip rng (slip_probability m.Mutators.Mutator.provenance) then
    corrupt rng src
  else src
