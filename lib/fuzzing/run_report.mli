(** The post-run markdown report ([campaign-report.md]): per-fuzzer
    summary, coverage trends, crash buckets by pipeline stage, and —
    when an engine context is supplied — the per-mutator accept/reject
    table, the fault/retry recovery summary, and the span-time table
    from its metrics registry. *)

val render :
  title:string ->
  ?preamble:string ->
  ?engine:Engine.Ctx.t ->
  (string * Fuzz_result.t) list ->
  string
(** The generic assembler over labelled results. *)

val fuzz : ?engine:Engine.Ctx.t -> Fuzz_result.t -> string
(** Report for a single fuzz run. *)

val campaign : ?engine:Engine.Ctx.t -> Campaign.t -> string
(** Report for a campaign: one summary row per cell, failed/restored
    cell accounting in the preamble. *)
