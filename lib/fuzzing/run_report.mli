(** The post-run markdown report ([campaign-report.md]): per-fuzzer
    summary, coverage trends, crash buckets by pipeline stage, and —
    when an engine context is supplied — the per-mutator accept/reject
    table, the fault/retry recovery summary, and the span-time table
    from its metrics registry. *)

val render :
  title:string ->
  ?preamble:string ->
  ?engine:Engine.Ctx.t ->
  ?attribution:Bisect.attribution list ->
  ?quarantined:(string * string * int * string) list ->
  (string * Fuzz_result.t) list ->
  string
(** The generic assembler over labelled results.  With [attribution], a
    "Culprit-pass attribution" table (one row per bisected
    optimizer-stage finding) lands between the crash buckets and the
    metrics sections.  [quarantined] rows are
    [(unit, reason, attempts, cell fingerprint)]; the "Quarantined
    units" section renders only when the list is non-empty, so healthy
    reports are unchanged. *)

val fuzz : ?engine:Engine.Ctx.t -> Fuzz_result.t -> string
(** Report for a single fuzz run. *)

val campaign :
  ?engine:Engine.Ctx.t ->
  ?attribution:Bisect.attribution list ->
  ?quarantined:(string * string * int * string) list ->
  Campaign.t ->
  string
(** Report for a campaign: one summary row per cell, failed-cell
    accounting in the preamble, and (when non-empty) the
    quarantined-unit table.  Checkpoint-restore counts are deliberately
    not in the body — a resumed campaign's report is byte-identical to
    the uninterrupted one; resume accounting surfaces through the
    engine-gated recovery section instead. *)
