(* EMI-style wrong-code detection (extension beyond the paper's
   crash-oriented campaign).

   The paper's related work (Orion/EMI, Athena, Hermes) finds
   miscompilations by comparing semantics across equivalent programs or
   configurations.  This module implements the configuration-differential
   variant: compile the same program at -O0 and at the target level, run
   both IRs in the IR interpreter, and flag any observable difference.
   μCFuzz's mutators supply the program diversity. *)

open Cparse

type mismatch = {
  mm_source : string;
  mm_options : Simcomp.Compiler.options;
  mm_reference : int * bool;  (* exit code, trapped — at -O0 *)
  mm_observed : int * bool;   (* at the target level *)
}

let run_ir p = Simcomp.Ir_interp.observable ~fuel:1_000_000 p

(* Check one program at one optimization level against the -O0 baseline. *)
let check_program (compiler : Simcomp.Compiler.compiler)
    (options : Simcomp.Compiler.options) (src : string) : mismatch option =
  let observe opts =
    match Simcomp.Compiler.compile_ir compiler opts src with
    | Ok p -> run_ir p
    | Error _ -> None
  in
  (* the reference must be truly unoptimized: clear any explicit
     pipeline override along with the level *)
  let reference_opts =
    {
      options with
      Simcomp.Compiler.opt_level = 0;
      disabled_passes = [];
      pass_list = None;
    }
  in
  match observe reference_opts, observe options with
  | Some reference, Some observed when reference <> observed ->
    Some
      { mm_source = src; mm_options = options; mm_reference = reference; mm_observed = observed }
  | _ -> None

type report = {
  r_mismatches : mismatch list;
  r_checked : int;
}

(* Hunt: mutate seeds with the corpus and difference every mutant. *)
let hunt ?(mutators = Mutators.Registry.core) ~(rng : Rng.t)
    ~(compiler : Simcomp.Compiler.compiler) ~(seeds : string list)
    ~(iterations : int) () : report =
  let pool =
    List.filter_map
      (fun src ->
        match Parser.parse src with Ok tu -> Some tu | Error _ -> None)
      seeds
    |> Array.of_list
  in
  let mismatches = ref [] in
  let checked = ref 0 in
  let seen = Hashtbl.create 8 in
  for _ = 1 to iterations do
    if Array.length pool > 0 then begin
      let tu = pool.(Rng.int rng (Array.length pool)) in
      (* stack a few mutators (havoc style): wrong-code gates require
         feature conjunctions a single mutation rarely produces *)
      let rounds = 1 + Rng.int rng 4 in
      let mutated = ref tu and changed = ref false in
      for _ = 1 to rounds do
        let m = Rng.choose rng mutators in
        match Mutators.Mutator.apply m ~rng !mutated with
        | Some tu' ->
          mutated := tu';
          changed := true
        | None -> ()
      done;
      match if !changed then Some !mutated else None with
      | None -> ()
      | Some tu' ->
        let src = Pretty.tu_to_string tu' in
        incr checked;
        let options =
          {
            Simcomp.Compiler.default_options with
            opt_level = 2 + Rng.int rng 2;
          }
        in
        (match check_program compiler options src with
        | Some mm ->
          (* deduplicate by the observable difference signature *)
          let key = (mm.mm_reference, mm.mm_observed, String.length src / 64) in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            mismatches := mm :: !mismatches
          end
        | None -> ())
    end
  done;
  { r_mismatches = List.rev !mismatches; r_checked = !checked }
