(* Shared result types for all fuzzers in the RQ1/RQ2 experiments. *)

type crash_record = {
  cr_crash : Simcomp.Crash.t;
  cr_first_iteration : int;
  cr_input : string; (* the triggering source *)
}

type t = {
  fuzzer_name : string;
  compiler : Simcomp.Compiler.compiler;
  iterations : int;
  total_mutants : int;
  compilable_mutants : int;
  coverage : Simcomp.Coverage.t;      (* cumulative over the run *)
  coverage_trend : (int * int) list;  (* (iteration, covered branches) *)
  crashes : (string, crash_record) Hashtbl.t; (* key = top-2 frames *)
  throughput_mutants : int;           (* same as total_mutants; kept for clarity *)
}

let make ~fuzzer_name ~compiler =
  {
    fuzzer_name;
    compiler;
    iterations = 0;
    total_mutants = 0;
    compilable_mutants = 0;
    coverage = Simcomp.Coverage.create ();
    coverage_trend = [];
    crashes = Hashtbl.create 16;
    throughput_mutants = 0;
  }

let unique_crashes (r : t) = Hashtbl.length r.crashes

let crash_keys (r : t) =
  Hashtbl.fold (fun k _ acc -> k :: acc) r.crashes []

let record_crash (r : t) ~iteration ~input (c : Simcomp.Crash.t) =
  let key = Simcomp.Crash.unique_key c in
  if not (Hashtbl.mem r.crashes key) then
    Hashtbl.replace r.crashes key
      { cr_crash = c; cr_first_iteration = iteration; cr_input = input }

let compilable_ratio (r : t) =
  if r.total_mutants = 0 then 0.
  else 100. *. float_of_int r.compilable_mutants /. float_of_int r.total_mutants

(* Exact equality over everything a fuzz run reports, for the
   checkpoint/resume identity check: crash tables compare as sorted
   bindings (insertion order is not part of the result). *)
let equal (a : t) (b : t) =
  let bindings h =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [] |> List.sort compare
  in
  a.fuzzer_name = b.fuzzer_name
  && a.compiler = b.compiler
  && a.iterations = b.iterations
  && a.total_mutants = b.total_mutants
  && a.compilable_mutants = b.compilable_mutants
  && a.throughput_mutants = b.throughput_mutants
  && a.coverage_trend = b.coverage_trend
  && Simcomp.Coverage.equal a.coverage b.coverage
  && bindings a.crashes = bindings b.crashes

let crashes_by_stage (r : t) : (Simcomp.Crash.stage * int) list =
  let count stage =
    Hashtbl.fold
      (fun _ rec_ acc ->
        if rec_.cr_crash.Simcomp.Crash.stage = stage then acc + 1 else acc)
      r.crashes 0
  in
  List.map
    (fun s -> (s, count s))
    Simcomp.Crash.[ Front_end; Ir_gen; Optimization; Back_end ]
