(* Sharded campaign coordinator: deal Campaign cells (optionally crossed
   with -O levels) to an Engine.Shard worker pool and merge the pieces
   back into one aggregated view.

   Determinism is inherited, not re-proven: a unit's RNG stream, fault
   stream, and coverage map are pure functions of (config, unit id) —
   the same property Campaign.run relies on for job-count invariance —
   and every merge below walks the canonical unit list, never the
   completion order.  So shards:1 and shards:K produce byte-identical
   coverage, crash sets, and reports. *)

type unit_id = {
  u_fuzzer : Campaign.fuzzer_id;
  u_compiler : Simcomp.Compiler.compiler;
  u_opt : int option;
}

let unit_name (u : unit_id) =
  let base = Campaign.cell_name (u.u_fuzzer, u.u_compiler) in
  match u.u_opt with None -> base | Some l -> Fmt.str "%s-O%d" base l

(* Cell tags are 11..62; opt units shift to a disjoint range so a trace
   mixing both axes never aliases thread ids. *)
let unit_tag (u : unit_id) =
  let t = Campaign.cell_tag u.u_fuzzer u.u_compiler in
  match u.u_opt with None -> t | Some l -> (t * 10) + l + 1

let units ?(fuzzers = Campaign.all_fuzzers)
    ?(compilers = Simcomp.Compiler.[ Gcc; Clang ]) ?(opt_levels = []) () :
    unit_id list =
  List.concat_map
    (fun f ->
      List.concat_map
        (fun c ->
          match opt_levels with
          | [] -> [ { u_fuzzer = f; u_compiler = c; u_opt = None } ]
          | ls ->
            List.map (fun l -> { u_fuzzer = f; u_compiler = c; u_opt = Some l }) ls)
        compilers)
    fuzzers

(* Default-axis units reuse Campaign.run's snapshot paths and
   fingerprints verbatim — that is what lets a sequential campaign
   resume sharded (and back).  Opt units get level-suffixed names. *)
let unit_ckpt_file dir (u : unit_id) =
  match u.u_opt with
  | None -> Campaign.cell_ckpt_file dir (u.u_fuzzer, u.u_compiler)
  | Some _ -> Filename.concat dir ("cell-" ^ unit_name u ^ ".ckpt")

let unit_done_file dir (u : unit_id) =
  match u.u_opt with
  | None -> Campaign.cell_done_file dir (u.u_fuzzer, u.u_compiler)
  | Some _ -> Filename.concat dir ("done-" ^ unit_name u ^ ".ckpt")

(* The journal holds the unit's full encoded [worker_result] (result +
   metrics + trace), written by the coordinator as each Result commits
   — before the join barrier.  A coordinator killed mid-campaign loses
   at most the in-flight leases: on --resume, journaled units restore
   with full telemetry fidelity, and the rest recompute
   deterministically.  The done file (Fuzz_result only, sequential
   Campaign compatible) stays the cross-mode fallback. *)
let unit_journal_file dir (u : unit_id) =
  Filename.concat dir ("journal-" ^ unit_name u ^ ".ckpt")

let unit_fingerprint cfg ?faults (u : unit_id) =
  let base = Campaign.cell_fingerprint cfg ?faults (u.u_fuzzer, u.u_compiler) in
  match u.u_opt with None -> base | Some l -> Fmt.str "%s|O%d" base l

let unit_options (u : unit_id) =
  Option.map
    (fun l -> { Simcomp.Compiler.default_options with opt_level = l })
    u.u_opt

(* The fault stream: default units hand run_one the root harness (so
   their draws match Campaign.run exactly); opt units interpose one
   per-level derivation so the same cell at -O0 and -O3 doesn't replay
   identical faults.  Both are pure in (root, unit), hence
   shard-count-invariant. *)
let unit_faults root (u : unit_id) =
  match (root, u.u_opt) with
  | None, _ -> None
  | Some f, None -> Some f
  | Some f, Some l -> Some (Engine.Faults.derive f ~tag:(900 + l))

(* ------------------------------------------------------------------ *)
(* The lease and its execution (runs on a worker or inline)            *)
(* ------------------------------------------------------------------ *)

type lease = {
  l_cfg : Campaign.config;
  l_unit : unit_id;
  l_faults : Engine.Faults.t option; (* root harness; derived per unit *)
  l_checkpoint : string option;
  l_resume : bool;
  l_trace : bool; (* the coordinator's engine wants trace buffers back *)
  l_probe : bool;
  l_log : Engine.Log.level option; (* collect structured records *)
}

type worker_result = {
  wr_result : Fuzz_result.t;
  wr_metrics : Engine.Metrics.t;
  wr_trace : Engine.Trace.t option;
  wr_log : Engine.Log.record list;
  (* the flight recorder: the lease's last events (capped ring), riding
     every clean Result frame so a postmortem of a *later* failure has
     the previous attempt's tail without rerunning under tracing *)
  wr_flight_seen : int;
  wr_flight : string list;
}

let flight_capacity = 64

(* [counters] are worker-lifetime cumulative (see the Heartbeat frame
   doc): the coordinator's per-shard fold stays monotone across leases. *)
let exec_lease ~heartbeat ~counters (l : lease) : worker_result =
  let u = l.l_unit in
  let ctx = Engine.Ctx.create () in
  if l.l_trace then ignore (Engine.Ctx.enable_trace ~tid:(unit_tag u) ctx);
  if l.l_probe then ignore (Engine.Ctx.enable_probe ctx);
  Option.iter
    (fun level -> ignore (Engine.Ctx.enable_log ~level ctx))
    l.l_log;
  let flight, flight_sink = Engine.Event.ring_sink ~capacity:flight_capacity in
  Engine.Event.add_sink ctx.Engine.Ctx.bus flight_sink;
  let execs, covered, crashes = counters in
  let beat () =
    heartbeat ~execs:!execs ~covered:!covered ~crashes:!crashes
  in
  let sink =
    {
      Engine.Event.sink_name = "shard-heartbeat";
      emit =
        (fun e ->
          match e with
          | Engine.Event.Compile_finished _ ->
            incr execs;
            (* throttled: one frame per ~200 compiles keeps the socket
               quiet while the line still moves every second *)
            if !execs mod 200 = 0 then beat ()
          | Engine.Event.Crash_found _ -> incr crashes
          | Engine.Event.Coverage_sampled { covered = c; _ } -> covered := c
          | _ -> ());
    }
  in
  Engine.Event.add_sink ctx.Engine.Ctx.bus sink;
  let cfg = l.l_cfg in
  let ckpt_every = max 1 (cfg.Campaign.sample_every * 5) in
  let checkpoint =
    Option.map (fun dir -> (unit_ckpt_file dir u, ckpt_every)) l.l_checkpoint
  in
  let resume =
    match checkpoint with
    | Some (path, _) when l.l_resume -> Some path
    | _ -> None
  in
  let r =
    Fun.protect
      ~finally:(fun () -> Engine.Event.remove_sink ctx.Engine.Ctx.bus sink)
      (fun () ->
        Campaign.run_one ~engine:ctx
          ?faults:(unit_faults l.l_faults u)
          ?checkpoint ?resume
          ?options:(unit_options u)
          cfg u.u_fuzzer u.u_compiler)
  in
  (* flush the partial GC batch so the merge sees this unit's tail *)
  Option.iter Engine.Probe.sample ctx.Engine.Ctx.probe;
  Option.iter
    (fun dir ->
      ignore
        (Engine.Checkpoint.save ~ctx ~path:(unit_done_file dir u)
           ~fingerprint:(unit_fingerprint cfg ?faults:l.l_faults u)
           r))
    l.l_checkpoint;
  beat ();
  Engine.Event.remove_sink ctx.Engine.Ctx.bus flight_sink;
  {
    wr_result = r;
    wr_metrics = ctx.Engine.Ctx.metrics;
    wr_trace = ctx.Engine.Ctx.trace;
    wr_log =
      (match ctx.Engine.Ctx.log with
      | Some lg -> Engine.Log.records lg
      | None -> []);
    wr_flight_seen = Engine.Event.ring_seen flight;
    wr_flight =
      List.map Engine.Event.to_string (Engine.Event.ring_contents flight);
  }

(* The pool work function: decode, execute, encode.  One server closure
   per process — fork children inherit fresh counters, worker_main makes
   its own. *)
let server () =
  let counters = (ref 0, ref 0, ref 0) in
  fun ~heartbeat ~seq:_ ~attempt (body : string) ->
    match Engine.Shard.decode body with
    | Error msg -> failwith ("coordinator: undecodable lease: " ^ msg)
    | Ok (l : lease) ->
      (* test hook: die mid-lease, first attempt only, workers only —
         the requeue/recovery path without hand-rolled process murder *)
      if
        Engine.Shard.in_worker () && attempt = 0
        && Sys.getenv_opt "METAMUT_SHARD_KILL" = Some (unit_name l.l_unit)
      then Unix._exit 42;
      Engine.Shard.encode (exec_lease ~heartbeat ~counters l)

let worker_main () =
  Engine.Status.set_tty_owner false;
  (* a spawned worker is a fresh exec: it rebuilds the root fault
     harness and the allocation budget from the environment the CLI
     exported, so its per-(lease, attempt) chaos streams match the
     coordinator's *)
  let faults = Engine.Faults.from_env () in
  let alloc_budget_words =
    Option.bind
      (Sys.getenv_opt "METAMUT_SHARD_ALLOC_BUDGET")
      float_of_string_opt
  in
  Engine.Shard.worker_loop ?faults ?alloc_budget_words
    (Engine.Shard.of_fd Unix.stdin) ~f:(server ())

(* ------------------------------------------------------------------ *)
(* The coordinator                                                     *)
(* ------------------------------------------------------------------ *)

type quarantined_unit = {
  qu_unit : unit_id;
  qu_reason : string;
  qu_attempts : int;
  qu_fingerprint : string;
}

type t = {
  config : Campaign.config;
  shards : int;
  opt_levels : int list;
  results : (unit_id * Fuzz_result.t) list;
  failures : (unit_id * string) list;
  quarantined : quarantined_unit list;
  resumed_units : int;
  shard_stats : Engine.Shard.stats;
}

let run ?(cfg = Campaign.default_config) ?fuzzers ?compilers
    ?(opt_levels = []) ?engine ?faults ?checkpoint ?(resume = false)
    ?(shards = 1) ?backend ?limits ?status ?progress ?serve ?flight_dir () :
    t =
  let us = units ?fuzzers ?compilers ~opt_levels () in
  Option.iter Engine.Checkpoint.mkdir_p checkpoint;
  let fingerprint u = unit_fingerprint cfg ?faults u in
  (* journal first (full worker_result, telemetry intact), done file as
     the sequential-compatible fallback *)
  let restored, todo =
    match checkpoint with
    | Some dir when resume ->
      List.partition_map
        (fun u ->
          let fp = fingerprint u in
          let from_done () =
            match
              Engine.Checkpoint.load ~path:(unit_done_file dir u)
                ~fingerprint:fp
            with
            | Ok (r : Fuzz_result.t) -> Either.Left (u, r, None)
            | Error _ -> Either.Right u
          in
          match
            Engine.Checkpoint.load ~path:(unit_journal_file dir u)
              ~fingerprint:fp
          with
          | Ok (body : string) -> (
            match Engine.Shard.decode body with
            | Ok (wr : worker_result) ->
              Either.Left (u, wr.wr_result, Some wr)
            | Error _ -> from_done ())
          | Error _ -> from_done ())
        us
    | _ -> ([], us)
  in
  (* resume accounting is telemetry, not report body: the counter is
     intervention-only, so an uninterrupted run never writes it *)
  Option.iter
    (fun (main : Engine.Ctx.t) ->
      List.iter (fun _ -> Engine.Ctx.incr main "mucfuzz.resumed") restored)
    engine;
  let todo_arr = Array.of_list todo in
  let main_trace =
    Option.bind engine (fun (e : Engine.Ctx.t) -> e.Engine.Ctx.trace)
  in
  let main_probe =
    Option.bind engine (fun (e : Engine.Ctx.t) -> e.Engine.Ctx.probe)
  in
  let main_log =
    Option.bind engine (fun (e : Engine.Ctx.t) -> e.Engine.Ctx.log)
  in
  let leases =
    Array.map
      (fun u ->
        Engine.Shard.encode
          {
            l_cfg = cfg;
            l_unit = u;
            l_faults = faults;
            l_checkpoint = checkpoint;
            l_resume = resume;
            l_trace = Option.is_some main_trace;
            l_probe = Option.is_some main_probe;
            l_log = Option.map Engine.Log.level main_log;
          })
      todo_arr
  in
  (* Live aggregation: latest worker-cumulative numbers per shard,
     folded into the one status line.  Execs and crashes sum; covered
     shows the max (cells have independent maps, a sum would read as a
     coverage number no single run ever reaches). *)
  let live : (int, int * int * int) Hashtbl.t = Hashtbl.create 8 in
  let on_heartbeat ~shard ~execs ~covered ~crashes =
    Hashtbl.replace live shard (execs, covered, crashes);
    Option.iter
      (fun st ->
        let e, c, k =
          Engine.Status.fold_heartbeats
            (Hashtbl.fold (fun _ beat acc -> beat :: acc) live [])
        in
        Engine.Status.update st ~execs:e ~covered:c ~crashes:k ())
      status;
    Option.iter
      (fun s -> Engine.Serve.note_shard s ~shard ~execs ~covered ~crashes)
      serve
  in
  let total = List.length us in
  let completed = ref (List.length restored) in
  let on_result ~seq =
    incr completed;
    Option.iter
      (fun f -> f ~completed:!completed ~total (unit_name todo_arr.(seq)))
      progress
  in
  let journal =
    Option.map
      (fun dir ->
        fun ~seq body ->
         (* scope the save's log records by the unit so their render
            position doesn't depend on completion order *)
         let scoped f =
           match main_log with
           | None -> f ()
           | Some lg ->
             Engine.Log.set_scope lg (unit_name todo_arr.(seq));
             Fun.protect ~finally:(fun () -> Engine.Log.set_scope lg "") f
         in
         scoped (fun () ->
             ignore
               (Engine.Checkpoint.save ?faults ?ctx:engine
                  ~path:(unit_journal_file dir todo_arr.(seq))
                  ~fingerprint:(fingerprint todo_arr.(seq))
                  body)))
      checkpoint
  in
  (* Supervision events: one structured record each (into the log, in
     the unit's scope so render order is completion-order-free) and one
     entry on the per-lease flight trail.  A quarantine verdict dumps
     the trail to flight-<unit>.json — the postmortem a chaos run needs
     without rerunning under tracing. *)
  let trails : (int, Engine.Log.record list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let trail seq =
    match Hashtbl.find_opt trails seq with
    | Some t -> t
    | None ->
      let t = ref [] in
      Hashtbl.add trails seq t;
      t
  in
  let event_record seq (ev : Engine.Shard.pool_event) : Engine.Log.record =
    let scope = unit_name todo_arr.(seq) in
    let mk level event fields =
      {
        Engine.Log.lr_level = level;
        lr_event = event;
        lr_scope = scope;
        lr_phase = 1;
        lr_fields = fields;
      }
    in
    match ev with
    | Engine.Shard.Lease_infra { category; attempt; requeued } ->
      mk Engine.Log.Warn "lease.infra"
        [
          ("category", category);
          ("attempt", string_of_int attempt);
          ("requeued", string_of_bool requeued);
        ]
    | Engine.Shard.Lease_retry { attempt; msg } ->
      mk Engine.Log.Warn "lease.retry"
        [ ("attempt", string_of_int attempt); ("error", msg) ]
    | Engine.Shard.Lease_verdict (Engine.Shard.Done _) ->
      mk Engine.Log.Info "lease.verdict" [ ("verdict", "done") ]
    | Engine.Shard.Lease_verdict (Engine.Shard.Failed msg) ->
      mk Engine.Log.Error "lease.verdict"
        [ ("verdict", "failed"); ("error", msg) ]
    | Engine.Shard.Lease_verdict
        (Engine.Shard.Quarantined { q_reason; q_attempts }) ->
      mk Engine.Log.Error "lease.verdict"
        [
          ("verdict", "quarantined");
          ("reason", q_reason);
          ("attempts", string_of_int q_attempts);
        ]
  in
  let dump_flight seq ~reason ~attempts =
    Option.iter
      (fun dir ->
        let u = todo_arr.(seq) in
        let records = List.rev !(trail seq) in
        let lines =
          List.mapi
            (fun i r -> "  " ^ Engine.Log.record_to_json ~seq:i r)
            records
        in
        let esc = Engine.Trace.json_escape in
        let body =
          Fmt.str
            "{\"unit\": \"%s\", \"reason\": \"%s\", \"attempts\": %d,\n \
             \"events\": [\n%s\n]}\n"
            (esc (unit_name u)) (esc reason) attempts
            (String.concat ",\n" lines)
        in
        Engine.Checkpoint.mkdir_p dir;
        Engine.Telemetry.write_file
          (Filename.concat dir ("flight-" ^ unit_name u ^ ".json"))
          body)
      flight_dir
  in
  let on_event ~seq (ev : Engine.Shard.pool_event) =
    let r = event_record seq ev in
    let t = trail seq in
    t := r :: !t;
    Option.iter
      (fun lg ->
        Engine.Log.record lg ~scope:r.Engine.Log.lr_scope ~phase:1
          ~level:r.Engine.Log.lr_level ~event:r.Engine.Log.lr_event
          r.Engine.Log.lr_fields)
      main_log;
    match ev with
    | Engine.Shard.Lease_verdict
        (Engine.Shard.Quarantined { q_reason; q_attempts }) ->
      Option.iter
        (fun s ->
          Engine.Serve.note_quarantine s
            ~unit_name:(unit_name todo_arr.(seq))
            ~reason:q_reason)
        serve;
      dump_flight seq ~reason:q_reason ~attempts:q_attempts
    | _ -> ()
  in
  let on_tick () = Option.iter Engine.Serve.poll serve in
  let raw, stats =
    Engine.Shard.run_pool ~shards ?backend ?limits ?faults ?ctx:engine
      ~on_heartbeat ~on_result ~on_event ~on_tick ?journal ~f:(server ())
      leases
  in
  let decoded =
    Array.map
      (function
        | Engine.Shard.Done body -> (
          match Engine.Shard.decode body with
          | Ok (wr : worker_result) -> `Ok wr
          | Error msg -> `Failed ("undecodable worker result: " ^ msg))
        | Engine.Shard.Failed msg -> `Failed msg
        | Engine.Shard.Quarantined { q_reason; q_attempts } ->
          `Quarantined (q_reason, q_attempts))
      raw
  in
  let computed =
    Array.to_list (Array.mapi (fun i r -> (todo_arr.(i), r)) decoded)
  in
  (* join barrier: merge worker registries and traces into the main
     context in canonical unit order — the Campaign.run join, one
     process level up.  Journal-restored units carry their original
     telemetry, so a resumed run's merge matches the uninterrupted one. *)
  let wr_of =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (u, _, wro) ->
        Option.iter (fun wr -> Hashtbl.replace tbl u wr) wro)
      restored;
    List.iter
      (fun (u, r) ->
        match r with `Ok wr -> Hashtbl.replace tbl u wr | _ -> ())
      computed;
    fun u -> Hashtbl.find_opt tbl u
  in
  (match engine with
  | None -> ()
  | Some main ->
    List.iter
      (fun u ->
        match wr_of u with
        | Some wr ->
          Engine.Metrics.merge ~into:main.Engine.Ctx.metrics wr.wr_metrics;
          (match (main_trace, wr.wr_trace) with
          | Some into, Some src ->
            let tid = unit_tag u in
            Engine.Trace.label_tid into ~tid ~label:(unit_name u);
            Engine.Trace.merge ~into ~tid src
          | _ -> ());
          (match main_log with
          | Some lg when wr.wr_log <> [] ->
            (* replay the worker's log body under the unit's scope: the
               renderer groups by scope in canonical unit order, so the
               rendered log matches the sequential run byte for byte *)
            List.iter
              (fun (r : Engine.Log.record) ->
                Engine.Log.record lg ~scope:(unit_name u)
                  ~phase:r.Engine.Log.lr_phase ~level:r.Engine.Log.lr_level
                  ~event:r.Engine.Log.lr_event r.Engine.Log.lr_fields)
              wr.wr_log
          | _ -> ())
        | None -> ())
      us);
  let done_units =
    List.map (fun (u, r, _) -> (u, r)) restored
    @ List.filter_map
        (fun (u, r) ->
          match r with `Ok wr -> Some (u, wr.wr_result) | _ -> None)
        computed
  in
  {
    config = cfg;
    shards;
    opt_levels;
    (* canonical order, independent of restore/completion interleaving *)
    results =
      List.filter_map
        (fun u -> Option.map (fun r -> (u, r)) (List.assoc_opt u done_units))
        us;
    failures =
      List.filter_map
        (fun (u, r) ->
          match r with `Failed msg -> Some (u, msg) | _ -> None)
        computed;
    quarantined =
      List.filter_map
        (fun (u, r) ->
          match r with
          | `Quarantined (reason, att) ->
            Some
              {
                qu_unit = u;
                qu_reason = reason;
                qu_attempts = att;
                qu_fingerprint = fingerprint u;
              }
          | _ -> None)
        computed;
    resumed_units = List.length restored;
    shard_stats = stats;
  }

(* ------------------------------------------------------------------ *)
(* Aggregated views                                                    *)
(* ------------------------------------------------------------------ *)

let to_campaign (t : t) : Campaign.t =
  {
    Campaign.config = t.config;
    results =
      List.map (fun (u, r) -> ((u.u_fuzzer, u.u_compiler), r)) t.results;
    failures =
      List.map (fun (u, msg) -> ((u.u_fuzzer, u.u_compiler), msg)) t.failures;
    resumed_cells = t.resumed_units;
  }

let aggregate_coverage (t : t) : Simcomp.Coverage.t =
  let cov = Simcomp.Coverage.create () in
  List.iter
    (fun (_, (r : Fuzz_result.t)) ->
      ignore (Simcomp.Coverage.merge ~into:cov r.Fuzz_result.coverage))
    t.results;
  cov

let all_crashes (t : t) : string list =
  let set = Hashtbl.create 64 in
  List.iter
    (fun (u, r) ->
      List.iter
        (fun k ->
          Hashtbl.replace set
            (Simcomp.Bugdb.compiler_to_string u.u_compiler ^ ":" ^ k)
            ())
        (Fuzz_result.crash_keys r))
    t.results;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) set [])

(* (unit, reason, attempts, fingerprint) rows for the report's
   quarantine table, in canonical unit order. *)
let quarantine_rows (t : t) =
  List.map
    (fun q -> (unit_name q.qu_unit, q.qu_reason, q.qu_attempts, q.qu_fingerprint))
    t.quarantined

let report ?engine ?attribution (t : t) : string =
  if t.opt_levels = [] then
    Run_report.campaign ?engine ?attribution ~quarantined:(quarantine_rows t)
      (to_campaign t)
  else begin
    let failures =
      match t.failures with
      | [] -> ""
      | fs ->
        "\n\n**Failed units:**\n\n"
        ^ Report.Markdown.bullet
            (List.map (fun (u, msg) -> unit_name u ^ ": " ^ msg) fs)
    in
    (* the shard count and the restored-unit count are deliberately
       absent: the report is part of the shards:1 ≡ shards:K and
       crash-resume byte-identity contracts; resume accounting lives in
       the engine-gated recovery section *)
    let preamble =
      Fmt.str
        "%d units across -O{%s} (%d failed); iterations=%d seeds=%d.%s"
        (List.length t.results + List.length t.failures)
        (String.concat "," (List.map string_of_int t.opt_levels))
        (List.length t.failures)
        t.config.Campaign.iterations t.config.Campaign.seeds failures
    in
    Run_report.render ~title:"Campaign report (opt matrix)" ~preamble ?engine
      ?attribution ~quarantined:(quarantine_rows t)
      (List.map (fun (u, r) -> (unit_name u, r)) t.results)
  end
