(** Multi-process sharded campaigns: {!Campaign} cells dealt as leases
    to an {!Engine.Shard} worker pool.

    The work unit is one campaign cell — (fuzzer, compiler), optionally
    crossed with a [-O] level ({!run}'s [opt_levels] axis).  Each unit
    derives its own RNG stream, fault stream, and coverage map exactly
    as {!Campaign.run_one} does, and the coordinator merges worker
    registries, trace buffers, coverage, and crash sets in canonical
    unit order — so coverage, crashes, and the campaign report are
    byte-identical at any shard count ([shards:1 ≡ shards:K], the same
    invariant the Domain scheduler upholds for [jobs]).

    Worker failure flows into the existing supervision story: a worker
    that dies, hangs, or garbles a frame loses its lease back to the
    queue ({!Engine.Shard.run_pool}), and with [checkpoint] the
    default-axis units write the {e same} snapshot files as
    {!Campaign.run}, so a campaign interrupted sequentially resumes
    sharded and vice versa. *)

type unit_id = {
  u_fuzzer : Campaign.fuzzer_id;
  u_compiler : Simcomp.Compiler.compiler;
  u_opt : int option;
      (** [-O] level; [None] = the campaign default ([-O2]) and the
          unit is checkpoint-compatible with {!Campaign.run} *)
}

val unit_name : unit_id -> string
(** ["<fuzzer>-<compiler>"], suffixed ["-O<l>"] on the opt axis. *)

val unit_tag : unit_id -> int
(** Stable trace/derivation tag (cell tag, disambiguated per level). *)

val units :
  ?fuzzers:Campaign.fuzzer_id list ->
  ?compilers:Simcomp.Compiler.compiler list ->
  ?opt_levels:int list ->
  unit ->
  unit_id list
(** The canonical work list: fuzzers × compilers (× levels when
    [opt_levels <> []]) in deterministic order. *)

type quarantined_unit = {
  qu_unit : unit_id;
  qu_reason : string;      (** stable category, e.g. ["worker-oom"] *)
  qu_attempts : int;
  qu_fingerprint : string; (** the unit's cell fingerprint, for re-runs *)
}

type t = {
  config : Campaign.config;
  shards : int;
  opt_levels : int list;
  results : (unit_id * Fuzz_result.t) list;  (** canonical unit order *)
  failures : (unit_id * string) list;
  quarantined : quarantined_unit list;
      (** units set aside by the resource governor / circuit breaker *)
  resumed_units : int;
  shard_stats : Engine.Shard.stats;
}

val run :
  ?cfg:Campaign.config ->
  ?fuzzers:Campaign.fuzzer_id list ->
  ?compilers:Simcomp.Compiler.compiler list ->
  ?opt_levels:int list ->
  ?engine:Engine.Ctx.t ->
  ?faults:Engine.Faults.t ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?shards:int ->
  ?backend:Engine.Shard.backend ->
  ?limits:Engine.Shard.limits ->
  ?status:Engine.Status.t ->
  ?progress:(completed:int -> total:int -> string -> unit) ->
  ?serve:Engine.Serve.t ->
  ?flight_dir:string ->
  unit ->
  t
(** Run the unit matrix across [shards] worker processes (default 1 =
    in-process sequential, the mode sharded runs are compared against).

    Each lease carries the campaign config, the unit id, and the root
    fault harness; the worker executes it with a {e fresh}
    {!Engine.Ctx} and ships back the result plus its metrics registry
    and trace buffer.  At the join the coordinator
    {!Engine.Metrics.merge}s registries and {!Engine.Trace.merge}s
    buffers (tagged {!unit_tag}, labelled {!unit_name}) into [engine]
    in canonical unit order — the process-level mirror of
    {!Campaign.run}'s Domain join barrier.  [engine] also receives the
    [shard.*] intervention counters, which stay silent in a healthy
    run, so merged registries are shard-count-invariant.

    [faults] additionally arms the shard-layer chaos sites (see
    {!Engine.Faults.site}) in the pool and its Fork workers; Spawn
    workers arm themselves from the environment.  [limits] is the
    per-lease resource governor ({!Engine.Shard.limits}): leases that
    blow their deadline/budget are retried and eventually
    {!quarantined_unit}-ed, never fatal to the run.

    [status] receives aggregated heartbeat totals (one line for the
    whole pool; workers relinquish TTY ownership).  [progress] ticks
    once per completed unit with its display name.

    [serve] wires the pool into a live scrape server: heartbeats feed
    its per-shard table, quarantines its list, and the socket is polled
    once per supervision round.  [flight_dir] enables the flight
    recorder: each quarantined unit dumps its supervision trail to
    [flight-<unit>.json] there, and clean worker results ship their
    last in-process events back in the result frame.

    When [engine] carries a {!Engine.Log.t}, leases instruct workers to
    record at the same level; worker log bodies are replayed into the
    coordinator log under the unit's scope at the join barrier, so the
    rendered log is byte-identical at any shard count (for the
    shard-count-invariant event categories).

    With [checkpoint]/[resume], completed units are restored — journal
    files first (full [worker_result], written as each Result arrives
    at the coordinator, so a coordinator SIGKILL mid-campaign resumes
    with telemetry intact), done-files as the sequential-compatible
    fallback — and interrupted μCFuzz units continue from their cell
    snapshots; default-axis file names and fingerprints match
    {!Campaign.run}'s exactly. *)

val to_campaign : t -> Campaign.t
(** View a default-axis run as a {!Campaign.t} (for the RQ1 table and
    {!Run_report.campaign}).  Opt-axis units keep their level only in
    the {!t}; calling this on an opt-matrix run collapses levels onto
    the same cell, so callers gate on [opt_levels = []]. *)

val report : ?engine:Engine.Ctx.t -> ?attribution:Bisect.attribution list
  -> t -> string
(** The aggregated [campaign-report.md]: {!Run_report.campaign} on the
    default axis, an opt-matrix variant (one summary row per unit)
    otherwise.  Quarantined units render as their own table (unit,
    reason, attempts, cell fingerprint) only when any exist. *)

val aggregate_coverage : t -> Simcomp.Coverage.t
(** Fresh map holding the union of every unit's coverage. *)

val all_crashes : t -> string list
(** Sorted union of compiler-prefixed crash keys across all units. *)

val worker_main : unit -> unit
(** Entry point for a spawned [worker] subprocess: serve leases over
    stdin (the coordinator passes its socket end as the child's stdin)
    until {!Engine.Shard.frame.Shutdown}.  Relinquishes TTY ownership;
    never returns normally before shutdown. *)
