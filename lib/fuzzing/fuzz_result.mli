(** Shared result type for all fuzzers in the RQ1/RQ2 experiments. *)

type crash_record = {
  cr_crash : Simcomp.Crash.t;
  cr_first_iteration : int;  (** earliest discovery (Fig. 9) *)
  cr_input : string;         (** the triggering source *)
}

type t = {
  fuzzer_name : string;
  compiler : Simcomp.Compiler.compiler;
  iterations : int;
  total_mutants : int;
  compilable_mutants : int;
  coverage : Simcomp.Coverage.t;      (** cumulative over the run *)
  coverage_trend : (int * int) list;  (** (iteration, covered branches) *)
  crashes : (string, crash_record) Hashtbl.t;
      (** keyed by top-2-frame identity *)
  throughput_mutants : int;
}

val make : fuzzer_name:string -> compiler:Simcomp.Compiler.compiler -> t

val unique_crashes : t -> int

val crash_keys : t -> string list

val record_crash : t -> iteration:int -> input:string -> Simcomp.Crash.t -> unit
(** Deduplicates on the crash key, keeping the first discovery. *)

val compilable_ratio : t -> float
(** Percentage of compilable mutants (Table 5). *)

val equal : t -> t -> bool
(** Exact equality over every reported field (coverage bit-for-bit,
    crash tables as sorted bindings): the checkpoint/resume and
    jobs-count determinism identity check. *)

val crashes_by_stage : t -> (Simcomp.Crash.stage * int) list
(** Crash histogram per compiler component (Table 4). *)
