(* The post-run markdown report ([campaign-report.md]): what happened,
   assembled from the result records and the engine's metrics registry —
   per-fuzzer summary, coverage trends, crash buckets by pipeline stage,
   the per-mutator accept/reject table, and the fault/retry recovery
   summary.  Everything here is derived from deterministic state; wall-
   clock only appears in the span-time table, which readers expect to
   vary. *)

let pct num den = if den = 0 then 0. else 100. *. float_of_int num /. float_of_int den

let summary_section (results : (string * Fuzz_result.t) list) =
  Report.Markdown.heading ~level:2 "Run summary"
  ^ Report.Markdown.table
      ~header:
        [
          "fuzzer"; "compiler"; "iterations"; "mutants"; "compilable %";
          "covered edges"; "unique crashes";
        ]
      (List.map
         (fun (label, (r : Fuzz_result.t)) ->
           [
             label;
             Simcomp.Bugdb.compiler_to_string r.compiler;
             string_of_int r.iterations;
             string_of_int r.total_mutants;
             Fmt.str "%.1f" (Fuzz_result.compilable_ratio r);
             string_of_int (Simcomp.Coverage.covered r.coverage);
             string_of_int (Fuzz_result.unique_crashes r);
           ])
         results)

let trend_section (results : (string * Fuzz_result.t) list) =
  let series =
    List.filter_map
      (fun (label, (r : Fuzz_result.t)) ->
        if r.coverage_trend = [] then None
        else Some (Report.Series.make ~label ~points:r.coverage_trend))
      results
  in
  if series = [] then ""
  else
    Report.Markdown.heading ~level:2 "Coverage trend"
    ^ Report.Markdown.code_block
        (Report.Series.render_plot ~title:"covered branches" series)
    ^ Report.Markdown.code_block
        (Report.Series.render_data ~title:"samples (iteration:covered)" series)

let crash_section (results : (string * Fuzz_result.t) list) =
  let stages =
    [ Simcomp.Crash.Front_end; Ir_gen; Optimization; Back_end ]
  in
  let any_crash =
    List.exists (fun (_, r) -> Fuzz_result.unique_crashes r > 0) results
  in
  if not any_crash then
    Report.Markdown.heading ~level:2 "Crash buckets"
    ^ Report.Markdown.paragraph "No unique crashes found."
  else
    Report.Markdown.heading ~level:2 "Crash buckets (by pipeline stage)"
    ^ Report.Markdown.table
        ~header:
          ("fuzzer"
          :: List.map Simcomp.Crash.stage_to_string stages
          @ [ "total" ])
        (List.filter_map
           (fun (label, (r : Fuzz_result.t)) ->
             let total = Fuzz_result.unique_crashes r in
             if total = 0 then None
             else
               let by_stage = Fuzz_result.crashes_by_stage r in
               Some
                 (label
                 :: List.map
                      (fun s ->
                        string_of_int
                          (Option.value ~default:0 (List.assoc_opt s by_stage)))
                      stages
                 @ [ string_of_int total ]))
           results)

(* The per-mutator table: the "mucfuzz.<verb>.<mutator>" counter
   families joined on the mutator name, sorted by accepts (the paper's
   per-operator productivity ranking).  "fresh edges" is the yield
   signal: coverage actually attributable to each operator's mutants,
   not just how often its output compiled. *)
let mutator_section (m : Engine.Metrics.t) =
  let family verb = Engine.Metrics.counters_with_prefix m ~prefix:("mucfuzz." ^ verb ^ ".") in
  let attempts = family "attempt" in
  if attempts = [] then ""
  else begin
    let accepts = family "accept"
    and rejects = family "reject"
    and inapplicable = family "inapplicable"
    and fresh = family "fresh_edges" in
    let get tbl name = Option.value ~default:0 (List.assoc_opt name tbl) in
    let rows =
      attempts
      |> List.map (fun (name, att) ->
             let acc = get accepts name in
             ( name,
               att,
               acc,
               get rejects name,
               get inapplicable name,
               get fresh name ))
      |> List.sort (fun (n1, _, a1, _, _, _) (n2, _, a2, _, _, _) ->
             match compare a2 a1 with 0 -> compare n1 n2 | c -> c)
    in
    Report.Markdown.heading ~level:2 "Per-mutator outcomes"
    ^ Report.Markdown.table
        ~header:
          [
            "mutator"; "attempts"; "accepts"; "rejects"; "inapplicable";
            "accept %"; "fresh edges";
          ]
        (List.map
           (fun (name, att, acc, rej, inap, fr) ->
             [
               name;
               string_of_int att;
               string_of_int acc;
               string_of_int rej;
               string_of_int inap;
               Fmt.str "%.1f" (pct acc (acc + rej));
               string_of_int fr;
             ])
           rows)
  end

(* Supervision/fault accounting: the counters the retry, scheduler,
   checkpoint and watchdog layers only write when they intervened.  A
   healthy run renders the "no interventions" line. *)
let recovery_section (m : Engine.Metrics.t) =
  let interesting =
    [
      ("scheduler.retried", "per-item retries (supervised scheduler)");
      ("scheduler.requeued", "items requeued after a worker death");
      ("scheduler.worker_crashed", "worker domains that died");
      ("scheduler.failed", "items that exhausted their retry budget");
      ("pipeline.retry.attempts", "pipeline retry attempts");
      ("pipeline.retry.recovered", "pipeline calls recovered by retrying");
      ("pipeline.retry.exhausted", "pipeline calls that exhausted retries");
      ("compile.watchdog_hang", "compiles killed by the watchdog");
      ("mucfuzz.resumed", "cells resumed from a checkpoint");
      ("mucfuzz.resume_failed", "stale/unreadable checkpoints ignored");
      ("checkpoint.save_failed", "checkpoint saves that failed");
      ("shard.worker_died", "shard workers that died");
      ("shard.requeued", "leases re-dealt after a worker death");
      ("shard.garbled", "frames rejected by the protocol check");
      ("shard.hung", "shard workers killed by the hang timeout");
      ("shard.oom_killed", "shard workers killed by the allocation governor");
      ("shard.deadline_killed", "shard workers killed by the lease deadline");
      ("shard.quarantined", "leases quarantined by the governor");
      ("shard.breaker_tripped", "leases quarantined by the circuit breaker");
      ("shard.crash_restart", "coordinator crash-restarts survived");
      ("shard.inline", "lease attempts run inline on the coordinator");
    ]
  in
  let snapshot = Engine.Metrics.snapshot m in
  let rows =
    List.filter_map
      (fun (name, what) ->
        match List.assoc_opt name snapshot with
        | Some (Engine.Metrics.Counter n) when n > 0 ->
          Some [ name; string_of_int n; what ]
        | _ -> None)
      interesting
  in
  Report.Markdown.heading ~level:2 "Fault & retry recovery"
  ^
  if rows = [] then
    Report.Markdown.paragraph
      "No supervision interventions: every compile, cell and checkpoint \
       succeeded first try."
  else Report.Markdown.table ~header:[ "counter"; "count"; "meaning" ] rows

(* Units the resource governor set aside: infrastructure failed them
   [max_attempts] times (or the circuit breaker tripped), the campaign
   carried on without them.  The cell fingerprint is printed so the
   quarantined work can be re-run in isolation with an identical stream.
   Rendered only when non-empty: a healthy run's report is byte-identical
   to one produced by a governor-free build. *)
let quarantine_section (qs : (string * string * int * string) list) =
  if qs = [] then ""
  else
    Report.Markdown.heading ~level:2 "Quarantined units"
    ^ Report.Markdown.table
        ~header:[ "unit"; "reason"; "attempts"; "cell fingerprint" ]
        (List.map
           (fun (name, reason, attempts, fp) ->
             [ name; reason; string_of_int attempts; Fmt.str "`%s`" fp ])
           qs)

(* Which pass broke it: one row per bisected optimizer-stage finding.
   Everything here is deterministic in the campaign results, so the
   section is byte-identical at any job count. *)
let attribution_section (ats : Bisect.attribution list) =
  Report.Markdown.heading ~level:2 "Culprit-pass attribution"
  ^
  if ats = [] then
    Report.Markdown.paragraph
      "No optimizer-stage findings to bisect: every recorded crash lives \
       outside the pass pipeline."
  else
    Report.Markdown.table
      ~header:
        [
          "compiler"; "bug"; "finding"; "culprit passes"; "first divergent";
          "recompiles";
        ]
      (List.map
         (fun (a : Bisect.attribution) ->
           let v = a.Bisect.at_verdict in
           [
             Simcomp.Bugdb.compiler_to_string a.Bisect.at_compiler;
             a.Bisect.at_bug_id;
             Bisect.finding_to_string v.Bisect.v_finding;
             (if v.Bisect.v_attributable then
                String.concat ", " v.Bisect.v_culprits
              else "(unattributable)");
             Option.value ~default:"-" v.Bisect.v_first_divergent;
             string_of_int v.Bisect.v_recompiles;
           ])
         ats)

(* Where the time went: span histograms, cumulative and mean, sorted by
   total time.  Wall-clock — the one machine-dependent table. *)
let span_section (m : Engine.Metrics.t) =
  let spans =
    List.filter_map
      (function
        | name, Engine.Metrics.Histogram { sum; total; _ }
          when String.starts_with ~prefix:"span." name && total > 0 ->
          Some (String.sub name 5 (String.length name - 5), sum, total)
        | _ -> None)
      (Engine.Metrics.snapshot m)
    |> List.sort (fun (_, s1, _) (_, s2, _) -> compare s2 s1)
  in
  if spans = [] then ""
  else
    Report.Markdown.heading ~level:2 "Time by span"
    ^ Report.Markdown.table
        ~header:[ "span"; "calls"; "total ms"; "mean us" ]
        (List.map
           (fun (name, sum, total) ->
             [
               name;
               string_of_int total;
               Fmt.str "%.1f" (sum /. 1e6);
               Fmt.str "%.1f" (sum /. float_of_int total /. 1e3);
             ])
           spans)

(* Where the time goes, properly attributed: per-span *self* time from
   the trace buffer (child time subtracted — a pass that spends all its
   time in sub-spans charges them, not itself).  Wall-clock, like the
   span table; rendered only when tracing was on. *)
let self_time_section (ctx : Engine.Ctx.t) =
  match ctx.Engine.Ctx.trace with
  | None -> ""
  | Some tr ->
    let entries =
      Engine.Trace.self_time_by_name tr
      |> List.filter (fun (_, ns) -> Int64.compare ns 0L > 0)
    in
    if entries = [] then ""
    else
      let total =
        List.fold_left (fun acc (_, ns) -> Int64.add acc ns) 0L entries
      in
      let totalf = Int64.to_float total in
      Report.Markdown.heading ~level:2 "Where the time goes (self time)"
      ^ Report.Markdown.table
          ~header:[ "span"; "self ms"; "% of traced" ]
          (List.map
             (fun (name, ns) ->
               let f = Int64.to_float ns in
               [
                 name;
                 Fmt.str "%.1f" (f /. 1e6);
                 Fmt.str "%.1f" (100. *. f /. totalf);
               ])
             entries)

let render ~title ?(preamble = "") ?engine ?attribution ?(quarantined = [])
    (results : (string * Fuzz_result.t) list) : string =
  let d = Report.Markdown.doc () in
  Report.Markdown.add d (Report.Markdown.heading ~level:1 title);
  if preamble <> "" then Report.Markdown.add d (Report.Markdown.paragraph preamble);
  Report.Markdown.add d (summary_section results);
  Report.Markdown.add d (trend_section results);
  Report.Markdown.add d (crash_section results);
  Report.Markdown.add d (quarantine_section quarantined);
  Option.iter
    (fun ats -> Report.Markdown.add d (attribution_section ats))
    attribution;
  (match engine with
  | None -> ()
  | Some (ctx : Engine.Ctx.t) ->
    let m = ctx.Engine.Ctx.metrics in
    Report.Markdown.add d (mutator_section m);
    Report.Markdown.add d (recovery_section m);
    Report.Markdown.add d (span_section m);
    Report.Markdown.add d (self_time_section ctx));
  Report.Markdown.contents d

let fuzz ?engine (r : Fuzz_result.t) : string =
  render ~title:("Fuzz report: " ^ r.fuzzer_name) ?engine
    [ (r.fuzzer_name, r) ]

let campaign ?engine ?attribution ?quarantined (t : Campaign.t) : string =
  let preamble =
    let failures =
      match t.Campaign.failures with
      | [] -> ""
      | fs ->
        "\n\n**Failed cells:**\n\n"
        ^ Report.Markdown.bullet
            (List.map
               (fun (cell, msg) -> Campaign.cell_name cell ^ ": " ^ msg)
               fs)
    in
    (* no restored-from-checkpoint count here: a resumed run's report
       must be byte-identical to the uninterrupted one; resume
       accounting lives in the engine-gated recovery section *)
    Fmt.str
      "%d cells (%d failed); iterations=%d seeds=%d jobs=%d.%s"
      (List.length t.Campaign.results + List.length t.Campaign.failures)
      (List.length t.Campaign.failures)
      t.Campaign.config.Campaign.iterations t.Campaign.config.Campaign.seeds
      t.Campaign.config.Campaign.jobs failures
  in
  render ~title:"Campaign report" ~preamble ?engine ?attribution ?quarantined
    (List.map
       (fun (cell, r) -> (Campaign.cell_name cell, r))
       t.Campaign.results)
