(** μCFuzz: the paper's micro coverage-guided fuzzer (Algorithm 1).

    Given seed programs S, mutators M, and a compiler C, each iteration
    picks a random pool program P, shuffles M, and applies mutators until
    one produces a mutant covering a branch the pool has not covered; the
    mutant then joins the pool (only if it compiles — breeding from broken
    mutants would collapse the pool).  No havoc, no forking, no culling.

    Every run owns an {!Engine.Ctx}: mutator attempts/accepts/rejects are
    counted per mutator ([mucfuzz.attempt.<m>] / [.accept.<m>] /
    [.reject.<m>] / [.inapplicable.<m>]), crashes and coverage gains are
    emitted as events, and the coverage trend is collected by a
    [Coverage_sampled] event sink. *)

type config = {
  mutators : Mutators.Mutator.t list;
  fragility : bool;
      (** apply the text-rewriting fragility model (see {!Fragility}) *)
  coverage_guided : bool;
      (** ablation switch: accept every mutant when [false] *)
  max_attempts_per_iteration : int;
      (** mutator budget per iteration (|M| in the paper) *)
  sample_every : int;  (** coverage-trend sampling period *)
  schedule : bool;
      (** AFL-style corpus scheduling: per-edge claims by the smallest
          covering entry, 4:1 favored-entry picks, non-favored trimming
          past [pool_max].  Off by default — the paper's Algorithm 1
          has no culling, and the default RNG stream stays
          byte-identical to pre-scheduling builds. *)
  pool_max : int;
      (** pool size the scheduler trims back to (favored entries are
          never dropped); ignored unless [schedule] is on *)
}

val default_config : ?mutators:Mutators.Mutator.t list -> unit -> config
(** Defaults to the 118-mutator core corpus with fragility and coverage
    guidance on, scheduling off, [pool_max = 4096]. *)

type pool_entry = {
  src : string;
  tu : Cparse.Ast.tu;
  pe_len : int;  (** [String.length src]: the scheduling rank *)
  mutable pe_tops : int;
      (** number of coverage edges this entry currently claims (the
          entry is {e favored} iff positive); maintained only when the
          run schedules *)
}

type mutator_counters = {
  mc_attempt : Engine.Metrics.counter;
  mc_inapplicable : Engine.Metrics.counter;
  mc_accept : Engine.Metrics.counter;
  mc_reject : Engine.Metrics.counter;
  mc_fresh : Engine.Metrics.counter;
      (** fresh coverage edges attributed to this mutator's mutants
          ([mucfuzz.fresh_edges.<name>]) — the per-mutator yield signal *)
}
(** Pre-resolved per-mutator instruments (O(1) hot-path bumps). *)

type state = {
  cfg : config;
  rng : Cparse.Rng.t;
  compiler : Simcomp.Compiler.compiler;
  options : Simcomp.Compiler.options;
  engine : Engine.Ctx.t;
  per_mutator : (string, mutator_counters) Hashtbl.t;
  trend_rev : (int * int) list ref;
  trend_sink : Engine.Event.sink;
  mutable pool : pool_entry Engine.Vec.t;
      (** amortized-O(1) accepts (an [Array.append] pool is quadratic);
          replaced wholesale on checkpoint resume *)
  scratch : Simcomp.Coverage.t;
      (** the per-mutant coverage map, consumed (merged-and-zeroed in
          one pass) between compiles instead of reallocated *)
  mutable cache : Simcomp.Compiler.cache;
      (** byte-identical mutant dedup (see {!Simcomp.Compiler.compile_cached}) *)
  mutable batch : Simcomp.Compiler.batch;
      (** pre-resolved compile handle over [cache]/[scratch]; rebuilt on
          checkpoint resume *)
  mutable faults : Engine.Faults.t option;
      (** consulted (as [Compile_hang]) on every real compile *)
  sched_top : Bytes.t;
      (** per-coverage-cell claimant (little-endian u16 pool index,
          [0xFFFF] = unclaimed); written only when [cfg.schedule] *)
  sched_scratch : int Engine.Vec.t;
      (** reusable favored-index buffer for the scheduled pick *)
  mutable result : Fuzz_result.t;
}

val init :
  ?options:Simcomp.Compiler.options ->
  ?engine:Engine.Ctx.t ->
  ?faults:Engine.Faults.t ->
  cfg:config ->
  rng:Cparse.Rng.t ->
  compiler:Simcomp.Compiler.compiler ->
  seeds:string list ->
  unit ->
  state
(** Parse the seeds into the pool and record their baseline coverage.
    A seed that crashes the compiler is recorded in the result (as
    iteration 0), and the baseline coverage becomes the trend's first
    sample.  When [engine] is omitted a private context is created. *)

val step : state -> iteration:int -> unit
(** One iteration of Algorithm 1. *)

val sample_trend : state -> iteration:int -> unit
(** Emit a [Coverage_sampled] event every [sample_every] iterations. *)

val run :
  ?options:Simcomp.Compiler.options ->
  ?cfg:config ->
  ?engine:Engine.Ctx.t ->
  ?faults:Engine.Faults.t ->
  ?checkpoint:string * int ->
  ?resume:string ->
  rng:Cparse.Rng.t ->
  compiler:Simcomp.Compiler.compiler ->
  seeds:string list ->
  iterations:int ->
  name:string ->
  unit ->
  Fuzz_result.t
(** Run a whole campaign and return the accumulated statistics.  The
    trend sink is detached on return, so a shared [engine] can host
    subsequent runs.

    [checkpoint:(path, every)] snapshots the complete run state (RNG,
    pool, result, compile cache, fault-harness counters) atomically to
    [path] every [every] iterations; saves are best-effort and consult
    the [Io_failure] fault site.  [resume:path] restores a snapshot
    whose fingerprint (name, compiler, budget, fault spec) matches and
    continues from the saved iteration — producing a result *identical*
    to an uninterrupted run with the same inputs; a missing or
    mismatched snapshot falls back to a full run. *)
