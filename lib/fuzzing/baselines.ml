(* Baseline fuzzers for RQ1, each reproducing the search-space property
   the paper attributes to the original tool:

   - AFL++-sim: coverage-guided *byte-level* havoc; syntax-blind, so most
     mutants fail to compile but error-handling paths get explored.
   - Csmith-sim: generation-based, UB-avoiding, closed grammar; nearly
     100 % compilable but the feature space saturates.
   - YARPGen-sim: generation-based with a loop/arithmetic focus.
   - GrayC-sim: coverage-guided with five hand-written semantic-aware
     mutators (one of them, InjectControlFlow, deliberately outside
     MetaMut's "[Action] on [Program Structure]" space). *)

open Cparse

(* ------------------------------------------------------------------ *)
(* AFL++-sim                                                           *)
(* ------------------------------------------------------------------ *)

let havoc_byte_mutation (rng : Rng.t) (src : string) : string =
  let b = Bytes.of_string src in
  let n = Bytes.length b in
  if n = 0 then src
  else begin
    (* a few stacked havoc operations, like AFL's havoc stage; kept small
       so the compilable-mutant ratio lands near the paper's 3.5 % *)
    let ops = 1 + Rng.int rng 2 in
    let buf = ref b in
    for _ = 1 to ops do
      let b = !buf in
      let n = Bytes.length b in
      if n > 0 then
        match Rng.int rng 7 with
        | 0 ->
          (* bit flip *)
          let i = Rng.int rng n in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Rng.int rng 8) land 0xff))
        | 1 ->
          (* random byte *)
          let i = Rng.int rng n in
          Bytes.set b i (Char.chr (Rng.int rng 256))
        | 2 ->
          (* replace a digit with another digit: often still parses *)
          let start = Rng.int rng n in
          let rec find i steps =
            if steps > 64 || i >= n then None
            else
              match Bytes.get b i with
              | '0' .. '9' -> Some i
              | _ -> find (i + 1) (steps + 1)
          in
          (match find start 0 with
          | Some i -> Bytes.set b i (Char.chr (Char.code '0' + Rng.int rng 10))
          | None ->
            let i = Rng.int rng n in
            Bytes.set b i
              (Char.chr ((Char.code (Bytes.get b i) + Rng.int rng 35 - 17) land 0xff)))
        | 3 when n > 4 ->
          (* delete a block *)
          let len = 1 + Rng.int rng (min 32 (n - 1)) in
          let pos = Rng.int rng (n - len) in
          buf :=
            Bytes.cat (Bytes.sub b 0 pos) (Bytes.sub b (pos + len) (n - pos - len))
        | 4 when n > 4 ->
          (* duplicate a block *)
          let len = 1 + Rng.int rng (min 32 (n - 1)) in
          let pos = Rng.int rng (n - len) in
          let chunk = Bytes.sub b pos len in
          buf := Bytes.concat Bytes.empty [ Bytes.sub b 0 pos; chunk; chunk; Bytes.sub b (pos + len) (n - pos - len) ]
        | 5 when n > 8 ->
          (* swap two blocks *)
          let len = 1 + Rng.int rng (min 8 (n / 2 - 1)) in
          let p1 = Rng.int rng (n - 2 * len) in
          let p2 = p1 + len + Rng.int rng (n - p1 - 2 * len + 1) in
          let c1 = Bytes.sub b p1 len and c2 = Bytes.sub b p2 len in
          Bytes.blit c2 0 b p1 len;
          Bytes.blit c1 0 b p2 len
        | _ ->
          (* insert interesting token *)
          let tok =
            Rng.choose rng
              [ "0"; ";"; "}"; "{"; "("; "2147483647"; "-1"; "int"; "if"; "aaaaaaaaaaaaaaaa"; "#"; "\"" ]
          in
          let pos = Rng.int rng n in
          buf :=
            Bytes.concat Bytes.empty
              [ Bytes.sub b 0 pos; Bytes.of_string tok; Bytes.sub b pos (n - pos) ]
    done;
    Bytes.to_string !buf
  end

(* Trend sampling for the hand-rolled baseline loops: record the point
   and, when an engine context is threaded, publish it as a
   Coverage_sampled event so telemetry snapshots and the status line see
   baseline cells too. *)
let sample_point ?engine trend ~iteration (result : Fuzz_result.t) =
  let covered = Simcomp.Coverage.covered result.Fuzz_result.coverage in
  trend := (iteration, covered) :: !trend;
  match engine with
  | None -> ()
  | Some ctx ->
    Engine.Ctx.emit ctx
      (Engine.Event.Coverage_sampled { iteration; covered })

(* The trend always ends at the final iteration (the satellite rule
   Mucfuzz.run also follows): skip only when the periodic cadence
   already landed there. *)
let sample_final ?engine trend ~iterations result =
  match !trend with
  | (last, _) :: _ when last = iterations -> ()
  | _ -> sample_point ?engine trend ~iteration:iterations result

let emit_crash ?engine ~iteration (c : Simcomp.Crash.t) =
  match engine with
  | None -> ()
  | Some ctx ->
    Engine.Ctx.emit ctx
      (Engine.Event.Crash_found
         {
           key = Simcomp.Crash.unique_key c;
           stage = Simcomp.Compiler.engine_stage c.Simcomp.Crash.stage;
           iteration;
         })

let run_aflpp ?engine ?faults ?(options = Simcomp.Compiler.default_options)
    ~rng ~compiler ~seeds ~iterations ~sample_every () : Fuzz_result.t =
  let result = Fuzz_result.make ~fuzzer_name:"AFL++" ~compiler in
  let pool = Engine.Vec.of_list seeds in
  let scratch = Simcomp.Coverage.create () in
  (* seed coverage *)
  Engine.Vec.iter
    (fun src ->
      Simcomp.Coverage.reset scratch;
      ignore
        (Simcomp.Compiler.compile ~cov:scratch ?engine ?faults compiler options
           src);
      ignore (Simcomp.Coverage.merge ~into:result.Fuzz_result.coverage scratch))
    pool;
  let trend = ref [] in
  let result = ref result in
  for i = 1 to iterations do
    let base = Engine.Vec.get pool (Rng.int rng (Engine.Vec.length pool)) in
    (* AFL mutates faster than μCFuzz compiles: several mutants/iteration *)
    for _ = 1 to 3 do
      let mutant = havoc_byte_mutation rng base in
      result :=
        {
          !result with
          total_mutants = !result.total_mutants + 1;
          throughput_mutants = !result.throughput_mutants + 1;
        };
      Simcomp.Coverage.reset scratch;
      (match
         Simcomp.Compiler.compile ~cov:scratch ?engine ?faults compiler options
           mutant
       with
      | Simcomp.Compiler.Compiled _ ->
        result := { !result with compilable_mutants = !result.compilable_mutants + 1 }
      | Simcomp.Compiler.Crashed c ->
        Fuzz_result.record_crash !result ~iteration:i ~input:mutant c;
        emit_crash ?engine ~iteration:i c
      | Simcomp.Compiler.Compile_error _ -> ());
      (* the merged fresh count doubles as the accept signal: one scan *)
      let fresh =
        Simcomp.Coverage.merge ~into:!result.Fuzz_result.coverage scratch
      in
      if fresh > 0 then Engine.Vec.push pool mutant
    done;
    if i mod sample_every = 0 then sample_point ?engine trend ~iteration:i !result
  done;
  sample_final ?engine trend ~iterations !result;
  { !result with iterations; coverage_trend = List.rev !trend }

(* ------------------------------------------------------------------ *)
(* Generation-based baselines                                          *)
(* ------------------------------------------------------------------ *)

let run_generator ?engine ?faults ?(options = Simcomp.Compiler.default_options)
    ~name ~(cfg : Ast_gen.config) ~rng ~compiler ~iterations ~sample_every () :
    Fuzz_result.t =
  let result = ref (Fuzz_result.make ~fuzzer_name:name ~compiler) in
  let trend = ref [] in
  let scratch = Simcomp.Coverage.create () in
  for i = 1 to iterations do
    let src = Ast_gen.gen_source ~cfg rng in
    result :=
      {
        !result with
        total_mutants = !result.total_mutants + 1;
        throughput_mutants = !result.throughput_mutants + 1;
      };
    Simcomp.Coverage.reset scratch;
    (match
       Simcomp.Compiler.compile ~cov:scratch ?engine ?faults compiler options src
     with
    | Simcomp.Compiler.Compiled _ ->
      result := { !result with compilable_mutants = !result.compilable_mutants + 1 }
    | Simcomp.Compiler.Crashed c ->
      Fuzz_result.record_crash !result ~iteration:i ~input:src c;
      emit_crash ?engine ~iteration:i c
    | Simcomp.Compiler.Compile_error _ -> ());
    ignore (Simcomp.Coverage.merge ~into:!result.Fuzz_result.coverage scratch);
    if i mod sample_every = 0 then sample_point ?engine trend ~iteration:i !result
  done;
  sample_final ?engine trend ~iterations !result;
  { !result with iterations; coverage_trend = List.rev !trend }

let run_csmith ?engine ?faults ?options ~rng ~compiler ~iterations
    ~sample_every () =
  run_generator ?engine ?faults ?options ~name:"Csmith"
    ~cfg:Ast_gen.csmith_like_config ~rng ~compiler ~iterations ~sample_every ()

let run_yarpgen ?engine ?faults ?options ~rng ~compiler ~iterations
    ~sample_every () =
  run_generator ?engine ?faults ?options ~name:"YARPGen"
    ~cfg:Ast_gen.yarpgen_like_config ~rng ~compiler ~iterations ~sample_every ()

(* ------------------------------------------------------------------ *)
(* GrayC-sim                                                           *)
(* ------------------------------------------------------------------ *)

(* GrayC's InjectControlFlow: wrap a statement in a fresh bounded loop
   with an early break — outside MetaMut's description template. *)
let inject_control_flow =
  Mutators.Mutator.make ~name:"GrayC.InjectControlFlow"
    ~description:
      "Inject a control-flow construct (loop with early break) around an \
       existing statement."
    ~category:Statement ~provenance:Supervised ~creative:true
    (fun ctx ->
      let open Cparse.Ast in
      let stmts =
        Cparse.Visit.collect_stmts
          (fun s -> match s.sk with Sexpr _ -> true | _ -> false)
          ctx.Uast.Ctx.tu
      in
      match Uast.Ctx.rand_element ctx stmts with
      | None -> None
      | Some s ->
        let g = Uast.Ctx.generate_unique_name ctx "cf" in
        let decl =
          mk_stmt
            (Sdecl
               [
                 {
                   v_name = g;
                   v_ty = Tint (Iint, true);
                   v_quals = no_quals;
                   v_storage = S_none;
                   v_init = Some (int_lit 0);
                 };
               ])
        in
        let body =
          sblock
            [
              { s with sid = no_id };
              mk_stmt
                (Sif (binop Ge (ident g) (int_lit 1), mk_stmt Sbreak, None));
              sexpr (mk_expr (Incdec (true, false, ident g)));
            ]
        in
        let loop = mk_stmt (Swhile (binop Lt (ident g) (int_lit 4), body)) in
        Some
          (Cparse.Visit.replace_stmt ctx.Uast.Ctx.tu ~sid:s.sid
             ~repl:(sblock [ decl; loop ])))

(* The five GrayC mutators (./grayc --list-mutations in the paper). *)
let grayc_mutators : Mutators.Mutator.t list =
  let find n =
    match Mutators.Registry.find_opt n with
    | Some m -> m
    | None -> invalid_arg ("grayc mutator missing: " ^ n)
  in
  [
    find "ModifyIntegerLiteral";      (* constant replacement *)
    find "DeleteStatement";
    find "DuplicateStatement";
    find "SwapCallArguments";
    inject_control_flow;
  ]

let run_grayc ?engine ?faults ?options ~rng ~compiler ~seeds ~iterations
    ~sample_every () : Fuzz_result.t =
  let cfg =
    {
      (Mucfuzz.default_config ~mutators:grayc_mutators ()) with
      Mucfuzz.fragility = false; (* GrayC's mutators are battle-tested *)
      sample_every;
    }
  in
  Mucfuzz.run ?options ~cfg ?engine ?faults ~rng ~compiler ~seeds ~iterations
    ~name:"GrayC" ()
