(** Baseline fuzzers for RQ1, each reproducing the search-space property
    the paper attributes to the original tool:

    - AFL++-sim: coverage-guided byte-level havoc; syntax-blind, so most
      mutants fail to compile while error-handling paths get explored;
    - Csmith-sim: generation-based, UB-avoiding, closed grammar — nearly
      100 % compilable but saturating;
    - YARPGen-sim: generation-based with a loop/arithmetic focus;
    - GrayC-sim: coverage-guided with exactly five hand-written
      semantic-aware mutators. *)

val havoc_byte_mutation : Cparse.Rng.t -> string -> string
(** One AFL-style havoc round: stacked bit flips, byte edits, block
    deletion/duplication/swap, token insertion. *)

val run_aflpp :
  ?engine:Engine.Ctx.t ->
  ?faults:Engine.Faults.t ->
  ?options:Simcomp.Compiler.options ->
  rng:Cparse.Rng.t ->
  compiler:Simcomp.Compiler.compiler ->
  seeds:string list ->
  iterations:int ->
  sample_every:int ->
  unit ->
  Fuzz_result.t

val run_csmith :
  ?engine:Engine.Ctx.t ->
  ?faults:Engine.Faults.t ->
  ?options:Simcomp.Compiler.options ->
  rng:Cparse.Rng.t ->
  compiler:Simcomp.Compiler.compiler ->
  iterations:int ->
  sample_every:int ->
  unit ->
  Fuzz_result.t

val run_yarpgen :
  ?engine:Engine.Ctx.t ->
  ?faults:Engine.Faults.t ->
  ?options:Simcomp.Compiler.options ->
  rng:Cparse.Rng.t ->
  compiler:Simcomp.Compiler.compiler ->
  iterations:int ->
  sample_every:int ->
  unit ->
  Fuzz_result.t

val inject_control_flow : Mutators.Mutator.t
(** GrayC's InjectControlFlow — deliberately outside MetaMut's
    "[Action] on [Program Structure]" description space (§5.2). *)

val grayc_mutators : Mutators.Mutator.t list
(** The five GrayC mutators ([./grayc --list-mutations] in the paper). *)

val run_grayc :
  ?engine:Engine.Ctx.t ->
  ?faults:Engine.Faults.t ->
  ?options:Simcomp.Compiler.options ->
  rng:Cparse.Rng.t ->
  compiler:Simcomp.Compiler.compiler ->
  seeds:string list ->
  iterations:int ->
  sample_every:int ->
  unit ->
  Fuzz_result.t
