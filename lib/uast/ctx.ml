(* Mutation context: the state a mutator sees.

   Mirrors the paper's Mutator base class (Fig. 6): the context bundles the
   translation unit under mutation, its semantic analysis (types of every
   expression), a deterministic RNG, and a unique-name supply. *)

open Cparse

type t = {
  rng : Rng.t;
  tu : Ast.tu;
  tc : Typecheck.result;
  name_base : int;
  mutable name_counter : int;
}

let create ~rng (tu : Ast.tu) : t =
  let tu = if Ast_ids.well_formed tu then tu else Ast_ids.renumber tu in
  let base = Ast_ids.max_id tu in
  (* [tc] may outlive a compile of the same source (a fuzz iteration
     holds the context across several mutation attempts and compiles),
     so it must own its type table — never the compile arena's. *)
  { rng; tu; tc = Typecheck.check tu; name_base = base; name_counter = base }

let reset_names ctx = ctx.name_counter <- ctx.name_base

(* Semantic type of an expression, as computed by the front-end.  [None]
   for nodes synthesised after the last renumbering. *)
let type_of ctx (e : Ast.expr) : Ast.ty option =
  Hashtbl.find_opt ctx.tc.r_types e.eid

let type_of_exn ctx e =
  match type_of ctx e with
  | Some t -> t
  | None -> Ast.Tint (Ast.Iint, true)

(* μAST: generateUniqueName *)
let generate_unique_name ctx base =
  ctx.name_counter <- ctx.name_counter + 1;
  Fmt.str "%s_%d" base ctx.name_counter

(* μAST: randElement *)
let rand_element ctx xs = Rng.choose_opt ctx.rng xs

let rand_int ctx n = Rng.int ctx.rng n

let flip ctx p = Rng.flip ctx.rng p
