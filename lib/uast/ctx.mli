(** Mutation context: the state a mutator sees.

    Mirrors the paper's [Mutator] base class (Fig. 6): the translation
    unit under mutation, its semantic analysis (types of every
    expression), a deterministic RNG, and a unique-name supply. *)

type t = {
  rng : Cparse.Rng.t;
  tu : Cparse.Ast.tu;
  tc : Cparse.Typecheck.result;
  name_base : int;  (** [name_counter]'s value at creation (the max id) *)
  mutable name_counter : int;
}

val create : rng:Cparse.Rng.t -> Cparse.Ast.tu -> t
(** Runs the type checker; renumbers the unit first if its node ids are
    not well formed.  Creation is the expensive part (a full semantic
    analysis), so callers applying several mutators to the same unit
    should create one context and reuse it (see
    {!Mutators.Mutator.apply_ctx}). *)

val reset_names : t -> unit
(** Rewind the unique-name supply to its creation state, so a reused
    context hands out the same names a fresh one would. *)

val type_of : t -> Cparse.Ast.expr -> Cparse.Ast.ty option
(** Semantic type of an expression as computed by the front-end; [None]
    for nodes synthesised after the last renumbering. *)

val type_of_exn : t -> Cparse.Ast.expr -> Cparse.Ast.ty
(** Like {!type_of} with an [int] fallback. *)

val generate_unique_name : t -> string -> string
(** μAST [generateUniqueName]: a fresh identifier built from a base. *)

val rand_element : t -> 'a list -> 'a option
(** μAST [randElement]. *)

val rand_int : t -> int -> int

val flip : t -> float -> bool
