(** Type checker for the C subset — the arbiter of "compilable" for every
    experiment in the reproduction.

    Produces diagnostics (errors and warnings) plus a map from expression
    ids to computed types.  A translation unit compiles iff it has no
    errors; warnings mirror GCC's permissiveness (implicit
    integer/pointer conversions warn but compile). *)

type severity = Error | Warning

type diag = { sev : severity; msg : string; in_func : string option }

type result = {
  r_diags : diag list;
  r_types : (int, Ast.ty) Hashtbl.t;  (** expression id -> computed type *)
  r_ok : bool;                         (** no errors *)
}

val builtins : (string * (Ast.ty * Ast.ty list * bool)) list
(** libc functions treated as implicitly declared: printf, sprintf, puts,
    putchar, abort, exit, strlen, strcpy, strcmp, memset, memcpy, malloc,
    free, rand, abs.  [(name, (return, params, variadic))]. *)

val decay : Ast.ty -> Ast.ty
(** Array-to-pointer decay at use sites. *)

val arith_conv : Ast.ty -> Ast.ty -> Ast.ty
(** Usual arithmetic conversions (integer promotion, float domination). *)

val check : ?types:(int, Ast.ty) Hashtbl.t -> Ast.tu -> result
(** Check a whole translation unit.  [types] recycles a caller-owned
    table for the [r_types] map (it is cleared here and returned as
    [r_types]): the compile hot path passes its arena table so each
    compile skips re-growing a fresh one.  Callers that retain [r_types]
    across compiles must not pass a shared table. *)

val errors : result -> diag list
val warnings : result -> diag list
val diag_to_string : diag -> string

val compiles_src : string -> bool
(** Parse + check: does this source compile? *)
