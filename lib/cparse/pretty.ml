(* Pretty-printer: AST back to compilable C text.

   Printing is precedence-aware so that `parse (print tu)` yields a tree
   equal to `tu` up to node ids (the round-trip property tested in
   test/test_cparse.ml). *)

open Ast

let ikind_to_string signed = function
  | Ichar -> if signed then "char" else "unsigned char"
  | Ishort -> if signed then "short" else "unsigned short"
  | Iint -> if signed then "int" else "unsigned int"
  | Ilong -> if signed then "long" else "unsigned long"
  | Ilonglong -> if signed then "long long" else "unsigned long long"

(* Render a type applied to a declarator string (possibly empty for
   abstract type names).  Handles the inside-out C declarator syntax for
   pointers and arrays. *)
let rec decl_string (ty : ty) (name : string) : string =
  match ty with
  | Tvoid -> ("void" ^ pad name)
  | Tbool -> ("_Bool" ^ pad name)
  | Tint (k, signed) -> ikind_to_string signed k ^ pad name
  | Tfloat -> "float" ^ pad name
  | Tdouble -> "double" ^ pad name
  | Tstruct tag -> "struct " ^ tag ^ pad name
  | Tunion tag -> "union " ^ tag ^ pad name
  | Tnamed n -> n ^ pad name
  | Tptr inner ->
    let name' =
      match inner with
      | Tarray _ | Tfunc _ -> "(*" ^ name ^ ")"
      | _ -> "*" ^ name
    in
    decl_string inner name'
  | Tarray (inner, n) ->
    let dim = match n with Some n -> string_of_int n | None -> "" in
    decl_string inner (name ^ "[" ^ dim ^ "]")
  | Tfunc (ret, params, variadic) ->
    let ps =
      (List.map (fun t -> ty_string t) params
      @ if variadic then [ "..." ] else [])
    in
    let ps = if ps = [] then "void" else String.concat ", " ps in
    decl_string ret (name ^ "(" ^ ps ^ ")")

and pad name = if name = "" then "" else " " ^ name

and ty_string ty = decl_string ty ""

let quals_prefix q =
  (if q.q_const then "const " else "") ^ (if q.q_volatile then "volatile " else "")

let storage_prefix = function
  | S_none -> ""
  | S_static -> "static "
  | S_extern -> "extern "
  | S_register -> "register "

let binop_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Shl -> "<<" | Shr -> ">>"
  | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | Band -> "&" | Bxor -> "^" | Bor -> "|"
  | Land -> "&&" | Lor -> "||"

let assign_op_string = function
  | A_none -> "=" | A_add -> "+=" | A_sub -> "-=" | A_mul -> "*="
  | A_div -> "/=" | A_mod -> "%=" | A_shl -> "<<=" | A_shr -> ">>="
  | A_band -> "&=" | A_bxor -> "^=" | A_bor -> "|="

let unop_string = function
  | Neg -> "-" | Lognot -> "!" | Bitnot -> "~" | Uplus -> "+"

let binop_prec = function
  | Mul | Div | Mod -> 10
  | Add | Sub -> 9
  | Shl | Shr -> 8
  | Lt | Gt | Le | Ge -> 7
  | Eq | Ne -> 6
  | Band -> 5
  | Bxor -> 4
  | Bor -> 3
  | Land -> 2
  | Lor -> 1

(* Expression precedence for parenthesisation decisions. *)
let expr_prec e =
  match e.ek with
  | Comma _ -> 0
  | Assign _ -> 1
  | Cond _ -> 2
  | Binop (op, _, _) -> 2 + binop_prec op (* 3..12 *)
  | Cast _ | Unop _ | Deref _ | Addrof _ | Sizeof_expr _ | Sizeof_ty _
  | Incdec (_, true, _) -> 13
  | Call _ | Index _ | Member _ | Arrow _ | Incdec (_, false, _) -> 14
  | Int_lit _ | Float_lit _ | Char_lit _ | Str_lit _ | Ident _ | Init_list _ ->
    15

let escape_char c =
  match c with
  | '\n' -> "\\n" | '\t' -> "\\t" | '\r' -> "\\r" | '\\' -> "\\\\"
  | '\'' -> "\\'" | '\000' -> "\\0"
  | c when Char.code c >= 32 && Char.code c < 127 -> String.make 1 c
  | c -> Fmt.str "\\x%02x" (Char.code c)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\'' -> Buffer.add_char buf '\''
      | c -> Buffer.add_string buf (escape_char c))
    s;
  Buffer.contents buf

let int_suffix kind unsigned =
  (if unsigned then "U" else "")
  ^ (match kind with Ilong -> "L" | Ilonglong -> "LL" | _ -> "")

let rec expr_to_buf buf prec (e : expr) =
  let p = expr_prec e in
  let need_paren = p < prec in
  if need_paren then Buffer.add_char buf '(';
  (match e.ek with
  | Int_lit (v, k, u) ->
    if Int64.compare v 0L < 0 then begin
      (* print negative literals parenthesised to survive re-parsing *)
      Buffer.add_char buf '(';
      Buffer.add_string buf (Int64.to_string v);
      Buffer.add_string buf (int_suffix k u);
      Buffer.add_char buf ')'
    end
    else begin
      Buffer.add_string buf (Int64.to_string v);
      Buffer.add_string buf (int_suffix k u)
    end
  | Float_lit (v, is_double) ->
    let s =
      if Float.is_integer v && Float.abs v < 1e16 then
        Fmt.str "%.1f" v
      else Fmt.str "%.17g" v
    in
    Buffer.add_string buf s;
    if not is_double then Buffer.add_char buf 'f'
  | Char_lit c ->
    Buffer.add_char buf '\'';
    Buffer.add_string buf (escape_char c);
    Buffer.add_char buf '\''
  | Str_lit s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape_string s);
    Buffer.add_char buf '"'
  | Ident n -> Buffer.add_string buf n
  | Binop (op, a, b) ->
    let bp = 2 + binop_prec op in
    expr_to_buf buf bp a;
    Buffer.add_char buf ' ';
    Buffer.add_string buf (binop_string op);
    Buffer.add_char buf ' ';
    expr_to_buf buf (bp + 1) b
  | Unop (op, a) ->
    Buffer.add_string buf (unop_string op);
    (* avoid gluing - -x into --x *)
    (match op, a.ek with
    | (Neg | Uplus), (Unop ((Neg | Uplus), _) | Int_lit _ | Float_lit _)
      when (match a.ek with
           | Int_lit (v, _, _) -> Int64.compare v 0L < 0
           | Float_lit (v, _) -> v < 0.
           | Unop _ -> true
           | _ -> false) ->
      Buffer.add_char buf ' '
    | _ -> ());
    expr_to_buf buf 13 a
  | Assign (op, lhs, rhs) ->
    expr_to_buf buf 2 lhs;
    Buffer.add_char buf ' ';
    Buffer.add_string buf (assign_op_string op);
    Buffer.add_char buf ' ';
    expr_to_buf buf 1 rhs
  | Incdec (inc, prefix, a) ->
    let op = if inc then "++" else "--" in
    if prefix then begin
      Buffer.add_string buf op;
      expr_to_buf buf 13 a
    end
    else begin
      expr_to_buf buf 14 a;
      Buffer.add_string buf op
    end
  | Call (f, args) ->
    expr_to_buf buf 14 f;
    Buffer.add_char buf '(';
    List.iteri
      (fun i a ->
        if i > 0 then Buffer.add_string buf ", ";
        expr_to_buf buf 1 a)
      args;
    Buffer.add_char buf ')'
  | Index (a, i) ->
    expr_to_buf buf 14 a;
    Buffer.add_char buf '[';
    expr_to_buf buf 0 i;
    Buffer.add_char buf ']'
  | Member (a, n) ->
    expr_to_buf buf 14 a;
    Buffer.add_char buf '.';
    Buffer.add_string buf n
  | Arrow (a, n) ->
    expr_to_buf buf 14 a;
    Buffer.add_string buf "->";
    Buffer.add_string buf n
  | Deref a ->
    Buffer.add_char buf '*';
    expr_to_buf buf 13 a
  | Addrof a ->
    Buffer.add_char buf '&';
    expr_to_buf buf 13 a
  | Cast (t, a) ->
    Buffer.add_char buf '(';
    Buffer.add_string buf (ty_string t);
    Buffer.add_char buf ')';
    expr_to_buf buf 13 a
  | Cond (c, t, f) ->
    expr_to_buf buf 3 c;
    Buffer.add_string buf " ? ";
    expr_to_buf buf 0 t;
    Buffer.add_string buf " : ";
    expr_to_buf buf 2 f
  | Comma (a, b) ->
    expr_to_buf buf 1 a;
    Buffer.add_string buf ", ";
    expr_to_buf buf 0 b
  | Sizeof_expr a ->
    Buffer.add_string buf "sizeof ";
    expr_to_buf buf 13 a
  | Sizeof_ty t ->
    Buffer.add_string buf "sizeof(";
    Buffer.add_string buf (ty_string t);
    Buffer.add_char buf ')'
  | Init_list es ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_string buf ", ";
        expr_to_buf buf 1 e)
      es;
    Buffer.add_char buf '}');
  if need_paren then Buffer.add_char buf ')'

let expr_to_string e =
  let buf = Buffer.create 32 in
  expr_to_buf buf 0 e;
  Buffer.contents buf

let indent buf n = Buffer.add_string buf (String.make (2 * n) ' ')

let var_decl_to_buf buf (v : var_decl) =
  Buffer.add_string buf (storage_prefix v.v_storage);
  Buffer.add_string buf (quals_prefix v.v_quals);
  Buffer.add_string buf (decl_string v.v_ty v.v_name);
  (match v.v_init with
  | Some e ->
    Buffer.add_string buf " = ";
    expr_to_buf buf 1 e
  | None -> ())

let rec stmt_to_buf buf lvl (s : stmt) =
  match s.sk with
  | Sexpr e ->
    indent buf lvl;
    expr_to_buf buf 0 e;
    Buffer.add_string buf ";\n"
  | Sdecl vs ->
    List.iter
      (fun v ->
        indent buf lvl;
        var_decl_to_buf buf v;
        Buffer.add_string buf ";\n")
      vs
  | Sif (c, t, f) ->
    indent buf lvl;
    Buffer.add_string buf "if (";
    expr_to_buf buf 0 c;
    Buffer.add_string buf ")\n";
    stmt_as_block buf lvl t;
    (match f with
    | Some f ->
      indent buf lvl;
      Buffer.add_string buf "else\n";
      stmt_as_block buf lvl f
    | None -> ())
  | Swhile (c, b) ->
    indent buf lvl;
    Buffer.add_string buf "while (";
    expr_to_buf buf 0 c;
    Buffer.add_string buf ")\n";
    stmt_as_block buf lvl b
  | Sdo (b, c) ->
    indent buf lvl;
    Buffer.add_string buf "do\n";
    stmt_as_block buf lvl b;
    indent buf lvl;
    Buffer.add_string buf "while (";
    expr_to_buf buf 0 c;
    Buffer.add_string buf ");\n"
  | Sfor (init, cond, step, b) ->
    indent buf lvl;
    Buffer.add_string buf "for (";
    (match init with
    | Some (Fi_expr e) -> expr_to_buf buf 0 e
    | Some (Fi_decl vs) ->
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ", ";
          if i = 0 then var_decl_to_buf buf v
          else begin
            (* subsequent declarators share the specifier *)
            Buffer.add_string buf v.v_name;
            match v.v_init with
            | Some e ->
              Buffer.add_string buf " = ";
              expr_to_buf buf 1 e
            | None -> ()
          end)
        vs
    | None -> ());
    Buffer.add_string buf "; ";
    (match cond with Some c -> expr_to_buf buf 0 c | None -> ());
    Buffer.add_string buf "; ";
    (match step with Some s -> expr_to_buf buf 0 s | None -> ());
    Buffer.add_string buf ")\n";
    stmt_as_block buf lvl b
  | Sreturn e ->
    indent buf lvl;
    Buffer.add_string buf "return";
    (match e with
    | Some e ->
      Buffer.add_char buf ' ';
      expr_to_buf buf 0 e
    | None -> ());
    Buffer.add_string buf ";\n"
  | Sbreak ->
    indent buf lvl;
    Buffer.add_string buf "break;\n"
  | Scontinue ->
    indent buf lvl;
    Buffer.add_string buf "continue;\n"
  | Sblock ss ->
    indent buf lvl;
    Buffer.add_string buf "{\n";
    List.iter (stmt_to_buf buf (lvl + 1)) ss;
    indent buf lvl;
    Buffer.add_string buf "}\n"
  | Sswitch (e, cases) ->
    indent buf lvl;
    Buffer.add_string buf "switch (";
    expr_to_buf buf 0 e;
    Buffer.add_string buf ") {\n";
    List.iter
      (fun c ->
        List.iter
          (fun l ->
            indent buf lvl;
            match l with
            | L_case e ->
              Buffer.add_string buf "case ";
              expr_to_buf buf 3 e;
              Buffer.add_string buf ":\n"
            | L_default -> Buffer.add_string buf "default:\n")
          c.case_labels;
        List.iter (stmt_to_buf buf (lvl + 1)) c.case_body)
      cases;
    indent buf lvl;
    Buffer.add_string buf "}\n"
  | Sgoto l ->
    indent buf lvl;
    Buffer.add_string buf ("goto " ^ l ^ ";\n")
  | Slabel (l, inner) ->
    indent buf lvl;
    Buffer.add_string buf (l ^ ":\n");
    (match inner.sk with
    | Snull ->
      indent buf (lvl + 1);
      Buffer.add_string buf ";\n"
    | _ -> stmt_to_buf buf lvl inner)
  | Snull ->
    indent buf lvl;
    Buffer.add_string buf ";\n"

and stmt_as_block buf lvl s =
  match s.sk with
  | Sblock _ -> stmt_to_buf buf lvl s
  | _ -> stmt_to_buf buf (lvl + 1) s

let fundef_to_buf buf (fd : fundef) =
  if fd.f_static then Buffer.add_string buf "static ";
  if fd.f_inline then Buffer.add_string buf "inline ";
  let params =
    (List.map (fun p -> decl_string p.p_ty p.p_name) fd.f_params
    @ if fd.f_variadic then [ "..." ] else [])
  in
  let params = if params = [] then "void" else String.concat ", " params in
  Buffer.add_string buf (decl_string fd.f_ret (fd.f_name ^ "(" ^ params ^ ")"));
  Buffer.add_string buf " {\n";
  List.iter (stmt_to_buf buf 1) fd.f_body;
  Buffer.add_string buf "}\n"

let global_to_buf buf = function
  | Gfun fd -> fundef_to_buf buf fd
  | Gvar v ->
    var_decl_to_buf buf v;
    Buffer.add_string buf ";\n"
  | Gtypedef (name, ty) ->
    Buffer.add_string buf "typedef ";
    Buffer.add_string buf (decl_string ty name);
    Buffer.add_string buf ";\n"
  | Gstruct (tag, fields) ->
    Buffer.add_string buf ("struct " ^ tag ^ " {\n");
    List.iter
      (fun f ->
        Buffer.add_string buf "  ";
        Buffer.add_string buf (decl_string f.fld_ty f.fld_name);
        Buffer.add_string buf ";\n")
      fields;
    Buffer.add_string buf "};\n"
  | Gunion (tag, fields) ->
    Buffer.add_string buf ("union " ^ tag ^ " {\n");
    List.iter
      (fun f ->
        Buffer.add_string buf "  ";
        Buffer.add_string buf (decl_string f.fld_ty f.fld_name);
        Buffer.add_string buf ";\n")
      fields;
    Buffer.add_string buf "};\n"
  | Genum (tag, items) ->
    Buffer.add_string buf ("enum " ^ tag ^ " { ");
    List.iteri
      (fun i (n, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf n;
        match v with
        | Some v -> Buffer.add_string buf (" = " ^ Int64.to_string v)
        | None -> ())
      items;
    Buffer.add_string buf " };\n"
  | Gproto p ->
    let params =
      (List.map ty_string p.pr_params
      @ if p.pr_variadic then [ "..." ] else [])
    in
    let params = if params = [] then "void" else String.concat ", " params in
    Buffer.add_string buf (decl_string p.pr_ret (p.pr_name ^ "(" ^ params ^ ")"));
    Buffer.add_string buf ";\n"

let tu_to_buf buf (tu : tu) : unit =
  List.iteri
    (fun i g ->
      if i > 0 then Buffer.add_char buf '\n';
      global_to_buf buf g)
    tu.globals

let tu_to_string (tu : tu) : string =
  let buf = Buffer.create 1024 in
  tu_to_buf buf tu;
  Buffer.contents buf

let print = tu_to_string
