(* Unique node-id management.

   Parsing and program generation produce nodes with [Ast.no_id]; mutators
   create fresh nodes the same way.  [renumber] walks a translation unit and
   assigns every expression, statement, and function a fresh sequential id,
   restoring the invariant that ids are unique within the unit. *)

open Ast

(* canonicalise negated literals (the parser folds them, so keeping
   them folded makes print/parse round trips stable) *)
let fold_neg (e : expr) : expr =
  match e.ek with
  | Unop (Neg, { ek = Int_lit (v, k, u); _ }) ->
    { e with ek = Int_lit (Int64.neg v, k, u) }
  | Unop (Neg, { ek = Float_lit (v, d); _ }) ->
    { e with ek = Float_lit (-.v, d) }
  | _ -> e

let canonicalize (tu : tu) : tu = Visit.map_tu tu ~fe:fold_neg

let renumber (tu : tu) : tu =
  let next = ref 0 in
  let fresh () = incr next; !next in
  let fe e = { (fold_neg e) with eid = fresh () } in
  let fs s = { s with sid = fresh () } in
  let globals =
    List.map
      (function
        | Gfun fd ->
          Gfun { (Visit.map_fundef ~fe ~fs fd) with f_id = fresh () }
        | Gvar v -> Gvar (Visit.map_var_decl fe v)
        | (Gtypedef _ | Gstruct _ | Gunion _ | Genum _ | Gproto _) as g -> g)
      tu.globals
  in
  { globals }

let max_id (tu : tu) : int =
  let m = ref 0 in
  Visit.iter_tu tu
    ~fe:(fun e -> if e.eid > !m then m := e.eid)
    ~fs:(fun s -> if s.sid > !m then m := s.sid);
  List.iter
    (function Gfun fd -> if fd.f_id > !m then m := fd.f_id | _ -> ())
    tu.globals;
  !m

(* Check the uniqueness invariant; used by tests and the validation loop. *)
let well_formed (tu : tu) : bool =
  let seen = Hashtbl.create 64 in
  let ok = ref true in
  let check id =
    if id = no_id || Hashtbl.mem seen id then ok := false
    else Hashtbl.add seen id ()
  in
  Visit.iter_tu tu ~fe:(fun e -> check e.eid) ~fs:(fun s -> check s.sid);
  !ok
