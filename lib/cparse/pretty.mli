(** Pretty-printer: AST back to compilable C text.

    Printing is precedence-aware, so [Parser.parse (tu_to_string tu)]
    yields a tree equal to [tu] up to node ids, and printing is a
    fixpoint: [tu_to_string (parse (tu_to_string tu)) = tu_to_string tu]. *)

val decl_string : Ast.ty -> string -> string
(** [decl_string ty name] renders a C declarator — the paper's μAST
    [formatAsDecl].  [name] may be empty for abstract type names; handles
    the inside-out pointer/array declarator syntax. *)

val ty_string : Ast.ty -> string
(** Abstract type name, e.g. for casts. *)

val binop_string : Ast.binop -> string
val assign_op_string : Ast.assign_op -> string
val unop_string : Ast.unop -> string

val expr_prec : Ast.expr -> int
(** Precedence level used for parenthesisation (higher binds tighter). *)

val expr_to_buf : Buffer.t -> int -> Ast.expr -> unit
(** Print an expression in a context of the given minimum precedence. *)

val expr_to_string : Ast.expr -> string
(** Render one expression — the paper's μAST [getSourceText] for
    expressions. *)

val stmt_to_buf : Buffer.t -> int -> Ast.stmt -> unit
(** Print a statement at the given indentation level. *)

val tu_to_buf : Buffer.t -> Ast.tu -> unit
(** Render a whole translation unit into [buf] — the scratch-buffer form
    of {!tu_to_string} used by the fuzz loops' render hot path. *)

val tu_to_string : Ast.tu -> string
(** Render a whole translation unit as compilable C. *)

val print : Ast.tu -> string
(** Alias of {!tu_to_string}. *)
