(** Recursive-descent parser for the C subset.

    Accepts the language described in the repository README: functions,
    prototypes, globals, typedefs, structs/unions/enums, the full
    statement set (including [goto]/labels and structured [switch]), and
    the full expression grammar with C precedence.  Preprocessor lines
    are skipped by the lexer.

    Typedef names are tracked during parsing to disambiguate declarations
    from expressions.  Negated literals are canonicalised ([- 5] parses
    as the literal [-5]) so pretty-printing round-trips. *)

exception Error of string * Loc.t
(** Raised by {!parse_tu} on syntax errors. *)

val parse_tokens : Lexer.lexeme array -> Ast.tu
(** Parse an already-lexed translation unit (the buffer must end with an
    [Eof] lexeme, as {!Lexer.tokenize} guarantees); raises {!Error}.
    Lets the compile pipeline tokenize once for both parsing and lexical
    coverage.  The result has fresh unique node ids
    ({!Ast_ids.renumber}). *)

val parse_tu : string -> Ast.tu
(** Parse a full translation unit; raises {!Error} or {!Lexer.Error}.
    The result has fresh unique node ids ({!Ast_ids.renumber}). *)

val parse : string -> (Ast.tu, string) result
(** Total wrapper around {!parse_tu}: lexer errors, parse errors, and
    parser stack overflow are rendered as [Error message]. *)
