(* Hand-written lexer for the C subset.

   Preprocessor lines (`#include`, `#define`, ...) are skipped wholesale:
   the seed corpus and all generated programs are self-contained, and the
   type checker treats a small set of libc functions as builtins. *)

exception Error of string * Loc.t

type lexeme = { tok : Token.t; loc : Loc.t }

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
}

let make src = { src; pos = 0; line = 1; bol = 0 }

let loc_of st =
  Loc.make ~line:st.line ~col:(st.pos - st.bol + 1) ~offset:st.pos

let error st msg = raise (Error (msg, loc_of st))

(* [peek] runs several times per input byte; returning a fresh [Some c]
   each call dominates the lexer's allocation.  Sharing one immutable
   [Some] block per byte value makes peeking allocation-free while
   keeping every call site's pattern match unchanged. *)
let some_char : char option array = Array.init 256 (fun i -> Some (Char.chr i))

let peek st =
  if st.pos < String.length st.src then
    Array.unsafe_get some_char (Char.code (String.unsafe_get st.src st.pos))
  else None

let peek2 st =
  if st.pos + 1 < String.length st.src then
    Array.unsafe_get some_char (Char.code (String.unsafe_get st.src (st.pos + 1)))
  else None

let advance st =
  if
    st.pos < String.length st.src
    && String.unsafe_get st.src st.pos = '\n'
  then begin
    st.line <- st.line + 1;
    st.bol <- st.pos + 1
  end;
  st.pos <- st.pos + 1

(* Advance over [pred]-matching characters without the per-byte option
   round trip of [peek]/[advance]; only for character classes that
   exclude newlines (no line accounting needed). *)
let scan_while st pred =
  let src = st.src in
  let n = String.length src in
  let p = ref st.pos in
  while !p < n && pred (String.unsafe_get src !p) do
    incr p
  done;
  st.pos <- !p

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

(* The trivia skipper runs between every pair of tokens and visits every
   blank/comment byte, so it reads characters directly instead of going
   through [peek]'s option per byte. *)
let skip_trivia st =
  let src = st.src in
  let n = String.length src in
  let continue = ref true in
  while !continue do
    if st.pos >= n then continue := false
    else
      match String.unsafe_get src st.pos with
      | ' ' | '\t' | '\r' -> st.pos <- st.pos + 1
      | '\n' ->
        st.pos <- st.pos + 1;
        st.line <- st.line + 1;
        st.bol <- st.pos
      | '#' ->
        (* preprocessor line: skip to end of (logical) line *)
        let stop = ref false in
        while not !stop do
          if st.pos >= n then stop := true
          else
            match String.unsafe_get src st.pos with
            | '\n' -> stop := true
            | '\\' when st.pos + 1 < n
                        && String.unsafe_get src (st.pos + 1) = '\n' ->
              st.pos <- st.pos + 2;
              st.line <- st.line + 1;
              st.bol <- st.pos
            | _ -> st.pos <- st.pos + 1
        done
      | '/' when st.pos + 1 < n && String.unsafe_get src (st.pos + 1) = '/'
        ->
        while
          st.pos < n && String.unsafe_get src st.pos <> '\n'
        do
          st.pos <- st.pos + 1
        done
      | '/' when st.pos + 1 < n && String.unsafe_get src (st.pos + 1) = '*'
        ->
        st.pos <- st.pos + 2;
        let closed = ref false in
        while not !closed do
          if st.pos >= n then error st "unterminated comment"
          else
            match String.unsafe_get src st.pos with
            | '*' when st.pos + 1 < n
                       && String.unsafe_get src (st.pos + 1) = '/' ->
              st.pos <- st.pos + 2;
              closed := true
            | '\n' ->
              st.pos <- st.pos + 1;
              st.line <- st.line + 1;
              st.bol <- st.pos
            | _ -> st.pos <- st.pos + 1
        done
      | _ -> continue := false
  done

let lex_escape st =
  (* after the backslash *)
  match peek st with
  | None -> error st "unterminated escape"
  | Some c ->
    advance st;
    (match c with
    | 'n' -> '\n'
    | 't' -> '\t'
    | 'r' -> '\r'
    | '0' -> '\000'
    | '\\' -> '\\'
    | '\'' -> '\''
    | '"' -> '"'
    | 'a' -> '\007'
    | 'b' -> '\b'
    | 'f' -> '\012'
    | 'v' -> '\011'
    | 'x' ->
      let rec hex acc n =
        match peek st with
        | Some c when is_hex c && n < 2 ->
          advance st;
          let d =
            if is_digit c then Char.code c - Char.code '0'
            else (Char.code (Char.lowercase_ascii c) - Char.code 'a') + 10
          in
          hex ((acc * 16) + d) (n + 1)
        | _ -> acc
      in
      Char.chr (hex 0 0 land 0xff)
    | c when is_digit c ->
      (* octal escape, first digit already consumed *)
      let rec oct acc n =
        match peek st with
        | Some c when c >= '0' && c <= '7' && n < 2 ->
          advance st;
          oct ((acc * 8) + (Char.code c - Char.code '0')) (n + 1)
        | _ -> acc
      in
      Char.chr (oct (Char.code c - Char.code '0') 2 land 0xff)
    | c -> c)

let lex_number st =
  let start = st.pos in
  let is_hex_lit =
    peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X')
  in
  if is_hex_lit then begin
    advance st; advance st;
    scan_while st is_hex
  end
  else scan_while st is_digit;
  let is_float = ref false in
  if (not is_hex_lit) && peek st = Some '.' then begin
    is_float := true;
    advance st;
    scan_while st is_digit
  end;
  if (not is_hex_lit) && (peek st = Some 'e' || peek st = Some 'E') then begin
    is_float := true;
    advance st;
    (match peek st with Some ('+' | '-') -> advance st | _ -> ());
    scan_while st is_digit
  end;
  let digits = String.sub st.src start (st.pos - start) in
  if !is_float then begin
    let is_double =
      match peek st with
      | Some ('f' | 'F') -> advance st; false
      | Some ('l' | 'L') -> advance st; true
      | _ -> true
    in
    match float_of_string_opt digits with
    | Some v -> Token.Float_lit (v, is_double)
    | None -> error st ("bad float literal: " ^ digits)
  end
  else begin
    (* suffixes *)
    let unsigned = ref false and longs = ref 0 in
    let rec suffixes () =
      match peek st with
      | Some ('u' | 'U') -> unsigned := true; advance st; suffixes ()
      | Some ('l' | 'L') -> incr longs; advance st; suffixes ()
      | _ -> ()
    in
    suffixes ();
    let kind : Ast.ikind =
      if !longs >= 2 then Ilonglong else if !longs = 1 then Ilong else Iint
    in
    match Int64.of_string_opt digits with
    | Some v -> Token.Int_lit (v, kind, !unsigned)
    | None -> error st ("bad integer literal: " ^ digits)
  end

let lex_string st =
  advance st; (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' -> advance st; Buffer.add_char buf (lex_escape st); go ()
    | Some '\n' -> error st "newline in string literal"
    | Some c -> advance st; Buffer.add_char buf c; go ()
  in
  go ();
  Token.Str_lit (Buffer.contents buf)

let lex_char st =
  advance st; (* opening quote *)
  let c =
    match peek st with
    | None -> error st "unterminated char literal"
    | Some '\\' -> advance st; lex_escape st
    | Some c -> advance st; c
  in
  (match peek st with
  | Some '\'' -> advance st
  | _ -> error st "unterminated char literal");
  Token.Char_lit c

let next_token st : lexeme =
  skip_trivia st;
  let loc = loc_of st in
  let mk tok = { tok; loc } in
  match peek st with
  | None -> mk Token.Eof
  | Some c when is_ident_start c ->
    let start = st.pos in
    scan_while st is_ident_char;
    let s = String.sub st.src start (st.pos - start) in
    (match Token.keyword_of_string s with
    | Some k -> mk (Token.Kw k)
    | None -> mk (Token.Ident s))
  | Some c when is_digit c -> mk (lex_number st)
  | Some '.' when (match peek2 st with Some c -> is_digit c | None -> false) ->
    mk (lex_number st)
  | Some '"' -> mk (lex_string st)
  | Some '\'' -> mk (lex_char st)
  | Some c ->
    (* Multi-character operators: try alternatives of decreasing length. *)
    let open Token in
    let tok =
      match c with
      | '(' -> advance st; Lparen
      | ')' -> advance st; Rparen
      | '{' -> advance st; Lbrace
      | '}' -> advance st; Rbrace
      | '[' -> advance st; Lbracket
      | ']' -> advance st; Rbracket
      | ';' -> advance st; Semi
      | ',' -> advance st; Comma
      | '?' -> advance st; Question
      | ':' -> advance st; Colon
      | '~' -> advance st; Tilde
      | '.' ->
        advance st;
        if peek st = Some '.' && peek2 st = Some '.' then begin
          advance st; advance st; Ellipsis
        end
        else Dot
      | '+' ->
        advance st;
        (match peek st with
        | Some '+' -> advance st; PlusPlus
        | Some '=' -> advance st; PlusEq
        | _ -> Plus)
      | '-' ->
        advance st;
        (match peek st with
        | Some '-' -> advance st; MinusMinus
        | Some '=' -> advance st; MinusEq
        | Some '>' -> advance st; Arrow
        | _ -> Minus)
      | '*' ->
        advance st;
        (match peek st with Some '=' -> advance st; StarEq | _ -> Star)
      | '/' ->
        advance st;
        (match peek st with Some '=' -> advance st; SlashEq | _ -> Slash)
      | '%' ->
        advance st;
        (match peek st with Some '=' -> advance st; PercentEq | _ -> Percent)
      | '^' ->
        advance st;
        (match peek st with Some '=' -> advance st; CaretEq | _ -> Caret)
      | '!' ->
        advance st;
        (match peek st with Some '=' -> advance st; BangEq | _ -> Bang)
      | '=' ->
        advance st;
        (match peek st with Some '=' -> advance st; EqEq | _ -> Eq)
      | '&' ->
        advance st;
        (match peek st with
        | Some '&' -> advance st; AmpAmp
        | Some '=' -> advance st; AmpEq
        | _ -> Amp)
      | '|' ->
        advance st;
        (match peek st with
        | Some '|' -> advance st; PipePipe
        | Some '=' -> advance st; PipeEq
        | _ -> Pipe)
      | '<' ->
        advance st;
        (match peek st with
        | Some '=' -> advance st; Le
        | Some '<' ->
          advance st;
          (match peek st with Some '=' -> advance st; ShlEq | _ -> Shl)
        | _ -> Lt)
      | '>' ->
        advance st;
        (match peek st with
        | Some '=' -> advance st; Ge
        | Some '>' ->
          advance st;
          (match peek st with Some '=' -> advance st; ShrEq | _ -> Shr)
        | _ -> Gt)
      | c -> error st (Fmt.str "unexpected character %C" c)
    in
    mk tok

(* Lex an entire source buffer into a token array (with locations).  The
   array is built by doubling in place — the list-accumulate/reverse/
   [Array.of_list] idiom allocated ~7 words per token versus ~3 here,
   and this runs once per compile. *)
let tokenize src : lexeme array =
  let st = make src in
  let first = next_token st in
  let arr = ref (Array.make 64 first) in
  let len = ref 1 in
  let push l =
    if !len = Array.length !arr then begin
      let a = Array.make (2 * !len) l in
      Array.blit !arr 0 a 0 !len;
      arr := a
    end;
    !arr.(!len) <- l;
    incr len
  in
  let rec go last =
    if last.tok <> Token.Eof then begin
      let l = next_token st in
      push l;
      go l
    end
  in
  go first;
  if !len = Array.length !arr then !arr else Array.sub !arr 0 !len
